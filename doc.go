// Package repro is a from-scratch Go reproduction of "Mining Top-K Large
// Structural Patterns in a Massive Network" (Zhu, Qu, Lo, Yan, Han, Yu;
// PVLDB 4(11), 2011) — the SpiderMine algorithm, every baseline it is
// evaluated against (SUBDUE, SEuS, MoSS/gSpan-style complete mining,
// ORIGAMI, plus a GREW-style extension), the synthetic workload
// generators of the evaluation, and a harness that regenerates every
// table and figure.
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package contains only the benchmark harness
// (bench_test.go); the implementation lives under internal/, and the
// public surface is the mine package.
//
// # API layer: the mine façade
//
// Package mine is the single public entry point: a string-keyed registry
// of engines behind one interface,
//
//	Mine(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error)
//
// Six miners register at init — "spidermine" and the five baselines —
// and each serves both host settings (a single massive network, or a
// graph-transaction database mined via its disjoint union). Options
// carries the support threshold, top-K semantics, worker count, and three
// budgets (MaxPatterns, MaxWallClock, MaxEmbeddings); Result carries
// patterns, uniform Stats, and a Truncation reason. Budget exhaustion is
// a truncated Result, not an error; caller-context cancellation is an
// error plus deterministic committed partials. Both CLIs (cmd/spidermine
// -miner/-timeout, cmd/spiderbench -timeout), all examples/*, and the
// experiment suite's cross-miner comparison ("miners") go through this
// façade; new serving surfaces must too.
//
// # Serving layer
//
// internal/serve (daemon: cmd/spiderserved) is the first serving
// subsystem over the façade: an HTTP/JSON mining service comprising a
// graph store (upload hosts in LG format; content-addressed by a stable
// 128-bit fingerprint, so identical uploads deduplicate), a bounded FIFO
// job scheduler (N concurrent runners, each job's context a child of the
// scheduler's, so DELETE /jobs/{id} cancels into the façade's
// deterministic committed partials and SIGTERM drains gracefully), an
// LRU result cache keyed by (host fingerprint, miner name, fingerprint
// of mine.Options.Canonical) making repeated queries O(1), and NDJSON
// progress streaming backed by Options.OnProgress. The HTTP surface
// preserves the truncation-vs-error contract: budget-stopped runs finish
// "done" with a truncation reason; cancelled runs finish "canceled" with
// an error *and* their partial result still retrievable. See the
// internal/serve package comment for the endpoint reference and
// README.md for the job lifecycle.
//
// # Persistence
//
// internal/store is the durable storage engine under the serving layer:
// a Backend interface — content-addressed blob namespaces plus a small
// fsynced record journal — with two implementations. store.Memory keeps
// everything in process maps (the default; serving behavior is
// byte-identical to the pre-durability server), and store.Disk is a
// pure-Go append-only segment log of CRC-framed records with a sidecar
// index for O(1) clean reopen and a recovery scan that truncates torn
// tails (a crashed write never poisons the log; it is cut at the last
// intact frame and overwritten by the next append). Uploaded graphs
// persist through a versioned binary CSR codec
// (graph.AppendBinary/DecodeBinary — round-trips Builder.Build output
// exactly, so the content fingerprint re-verifies on load), cacheable
// mining results through mine.EncodeResult/DecodeResult, and terminal
// job records as JSON journal appends. cmd/spiderserved -data-dir turns
// it on: a restart recovers the graph store, the persistent result
// cache, and /jobs history (resuming the job-ID sequence) before the
// listener opens. Durable: registered graphs, deterministically
// cacheable results, terminal job records. Deliberately not durable:
// non-terminal jobs, progress event logs, and wall-clock-truncated or
// failed results — all recomputable or timing-dependent. Injected
// storage faults (failpoints store/disk/put, store/disk/get,
// store/disk/sync) surface as 503 backpressure on upload or silent
// cache degradation on reads — never a 404, never a dead daemon
// (persist_test.go asserts this through the HTTP surface).
//
// # Out-of-core
//
// internal/graph additionally defines SPC1, a versioned flat CSR image
// format (graph.WriteImage / graph.OpenMapped): a fixed 128-byte header
// with per-section CRC-32C descriptors, then 8-aligned sections holding
// the graph's label, offset, neighbor and sketch arrays exactly as the
// in-RAM representation lays them out. OpenMapped mmaps the file and
// aliases the Graph's slices onto the mapping — zero decode, O(1)
// allocations, page-cache-resident adjacency — so hosts beyond RAM mine
// with flat heap growth, byte-identically to their built twins at every
// worker count (TestMappedEqualsBuilt, TestOutOfCoreMillionEdge at the
// repo root are the enforcing gates; FuzzOpenImage holds the
// hostile-input never-panic line). Verification is two-tier: OpenMapped
// runs an allocation-free streaming validation of checksums, CSR
// monotonicity, neighbor order, adjacency symmetry and sketches;
// OpenMappedTrusted skips it (O(1)) for images already verified.
// Platforms without mmap fall back to a heap read transparently, and
// Clone always deep-copies a mapped graph onto the heap. The serving
// layer write-throughs an SPC1 image for hosts past
// serve.DefaultImageEdgeThreshold into the store's file tier
// (store.FileBackend, implemented by store.Disk) and recovery remaps it
// — fingerprint-re-verified, falling back to SPG1 decode and rebuilding
// the image if it is missing or corrupt. The mine façade re-exports the
// open functions (mine.OpenMapped); cmd/gengraph -format spc1 writes
// images, and cmd/spidermine / cmd/spiderbench take -mmap.
//
// # Failure semantics
//
// The serving layer degrades, never corrupts (README §Failure semantics
// has the operator view). Four mechanisms, each independently tested and
// all exercised together by the chaos suite
// (internal/serve/chaos_test.go):
//
//   - Panic containment: a panicking miner is recovered at the job
//     boundary (and a second, last-resort recover guards the runner
//     itself), converted to a *serve.PanicError carrying the panic value
//     and goroutine stack, and the job fails while the daemon keeps
//     serving. No job is ever left non-terminal.
//   - Retry classification: transient-classed failures (mine.IsTransient:
//     wraps mine.ErrTransient or exposes Transient() bool; context errors
//     and panics are always permanent) re-run up to a bounded retry
//     budget with exponential full-jitter backoff. A retry re-runs the
//     miner from scratch with the same Options — under the determinism
//     contract it is a fresh equivalent computation, never a resume — so
//     the parallel- and cancel-determinism invariants are unaffected.
//   - Backpressure: full queues, draining, and injected infrastructure
//     faults all answer 503 with a Retry-After header and a structured
//     JSON body; /healthz (liveness) and /readyz (readiness, flips at
//     the queue high-water mark) split the health surface so restarts
//     and traffic-shedding key on different signals.
//   - Failpoints: internal/fault provides registry-driven named
//     injection sites (error / transient error / panic / delay, one-in-N
//     cadence, trip limits) compiled into the store, scheduler, miner
//     and cache boundaries. Disarmed sites cost one atomic pointer load
//     and zero allocations — the matcher/canonizer hot paths stay
//     0 allocs/op — and arming needs no rebuild (test API or the
//     SPIDERSERVED_FAULTS env DSL).
//
// # Observability
//
// internal/obs is the zero-dependency metrics substrate: named counters,
// gauges, and fixed-bucket histograms (p50/p95/p99 estimated from bucket
// counts by linear interpolation) registered in a per-Server Registry.
// Record sites follow internal/fault's discipline — a handful of atomic
// operations and zero allocations on the hot path, enforced by an alloc
// test — and all reads (Prometheus exposition, JSON snapshots,
// quantiles) are lock-free over the same atomics, so scraping never
// stalls recording. Component-owned counters (cache hits, store reads,
// scheduler retry/panic totals) surface through scrape-time
// CounterFunc/GaugeFunc reads, so each component stays the single source
// of truth and /stats and /metrics can never drift apart; event-time
// metrics (queue-wait, per-miner run latency, per-stage mining
// wall-clock from mine.Stats.Stages, rejections by cause) record where
// the event happens through nil-safe helpers. The serving surface
// exposes GET /metrics (Prometheus text exposition 0.0.4), folds the
// same snapshot into GET /stats, and cmd/spiderserved offers opt-in
// net/http/pprof behind -debug-addr. cmd/spiderload generates mixed
// traffic (uploads, fresh/repeat submits, cancels, event streamers) and
// records client-observed latency quantiles per endpoint class plus the
// cache hit rate; SLO_PR7.json is the committed baseline scaling work
// is measured against.
//
// # Cancellation architecture
//
// context.Context threads from the façade through every mining layer down
// to the worker-pool substrate (internal/par), under two invariants:
//
//   - Zero cost when uncancellable: every check is gated on
//     ctx.Done() != nil, so a Background run executes the exact
//     pre-context code path — byte-identical results, no hot-path cost
//     (the matcher stays 0 allocs/op; sequential stage benchmarks are
//     unchanged). Checks are amortized: internal/par polls every
//     seqCheckStride items sequentially and reads one watcher-set atomic
//     flag per item claim in parallel mode; the mining stages check at
//     pattern / merge-key / iteration granularity.
//   - Deterministic partials when cancelled: SpiderMine commits its
//     reduced working set at every grow+merge and recovery iteration
//     boundary (shallow pattern snapshots, taken only when the context is
//     cancellable); an iteration aborted mid-flight rolls back wholesale,
//     and the run returns ctx.Err() plus the committed patterns (σ- and
//     Dmax-filtered, size-ordered, and — since the automorphism-pruned
//     Canonizer made identity checks cheap even on unpruned hub patterns
//     — structurally deduped like a completed run's, gated by
//     Config.DisablePartialDedupe). Cancellation observed at a given
//     boundary therefore
//     yields byte-identical partial results; progress callbacks run
//     synchronously between parallel sections, so a callback-pinned
//     cancel is deterministic end to end (TestCancelDeterministic,
//     TestFacadeCancelDeterministic). Baselines return their loop-boundary
//     partials the same way.
//
// # Performance architecture
//
// The hot path of every stage bottoms out in the graph substrate and the
// subgraph matcher, which are engineered as an indexed, allocation-free
// embedding engine:
//
//   - internal/graph stores adjacency in CSR form — one flat []V neighbor
//     array, per-vertex sorted, indexed by an []int32 offsets table — so
//     neighbor scans are contiguous and HasEdge is a branch-light binary
//     search. Builder.Build sorts and dedupes the edge list in a single
//     pass and fills the CSR in two sweeps that leave each range sorted
//     without per-vertex sorting.
//   - Build also precomputes a per-vertex neighbor-label frequency sketch
//     (16 four-bit saturating counters in one uint64; see
//     graph.SketchDominates) and, lazily on first use, a label index
//     grouping vertex ids by label (graph.VerticesWithLabel).
//   - internal/canon's Matcher keeps all search state — partial mapping,
//     used-host bitset, match order, distinct-image hash table, key
//     buffers — in a reusable struct, so a warm matcher enumerates
//     embeddings with zero heap allocation. Root candidates come from the
//     label index (the root is the pattern vertex with the rarest host
//     label, ties toward higher degree), and every candidate is filtered
//     by label, degree and sketch domination before exact adjacency
//     checks. EnumerateEmbeddingsReference retains the naive matcher as
//     the correctness oracle; differential tests assert identical
//     distinct-image sets.
//   - Growth and merging (internal/spidermine) reuse pooled scratch:
//     epoch-stamped host marks instead of per-embedding maps, hash-deduped
//     union subgraphs, early-exit diameter checks (graph.DiameterAtMost),
//     and pooled BFS buffers for all eccentricity work.
//
// # Pattern identity
//
// Deciding whether two patterns are the same structure — the paper's
// §4.2.2 economy — is tiered so the cheap necessary conditions absorb
// almost every comparison: a 64-bit Weisfeiler–Leman invariant hash, then
// the spider-set signature (Theorem 2: the multiset of canonical rooted
// r-neighborhood codes, hashed), and only for signature-equal pairs an
// exact check. The exact tier, and every rooted spider code beneath the
// signatures, bottoms out in canon.Canonizer: a reusable, scratch-owning
// individualization–refinement search with counting-sort equitable
// refinement, node-invariant (trace) pruning, and automorphism/orbit
// pruning with backjumping — so the hub-with-k-interchangeable-legs
// shapes SpiderMine mass-produces canonicalize in O(k²) search nodes
// (microseconds) where a naive search explores ~k! leaf orderings. Exact
// identity is a comparison of per-pattern cached canonical codes, so a
// pattern canonicalizes at most once however many pairs it appears in,
// and a warm Canonizer runs allocation-free. This is why cancelled runs
// now afford the same structural dedupe as completed ones, and
// mine.Stats.CanonRun/CanonNodes quantify the search effort.
//
// # Concurrency architecture
//
// Config.Workers shards all three mining stages over the deterministic
// worker-pool substrate in internal/par, under three invariants that every
// future parallel change must preserve (TestParallelEqualsSequential in
// internal/spidermine is the enforcing harness):
//
//   - Shared-immutable: the host graph (whose label index builds lazily
//     behind a sync.Once, so first use may happen on any worker), the
//     frequent-pair table, the spider catalog, and the run Config are only
//     read by workers. Randomness is drawn on the coordinating goroutine
//     before any fan-out — workers never touch the rng (and rng streams
//     are consumed in full before any cancellable section, so a cancelled
//     run leaves the stream where an uncancelled one would).
//   - Per-worker scratch: each worker owns its canon.Matcher,
//     spider.Materializer, grow scratch, and accumulator slot; package
//     sync.Pools (BFS buffers, pooled matchers) remain as race-free
//     backstops for code off the sharded paths. Scratch contents may
//     affect allocation behavior, never results.
//   - Ordered reduction: parallel stages write results into item-indexed
//     slots (par.Map) and all cross-worker combination — concatenating
//     Stage I expansions, accepting Stage II merges, assigning pattern
//     IDs — happens afterwards in item order (pattern/vertex id order),
//     never completion order and never map-iteration order. Merge rounds
//     evaluate candidate pairs in bounded waves and re-apply the
//     sequential consumed-pair filter during the reduction, so accepted
//     merges are bit-identical to the sequential engine's.
//
// Consequence: for a fixed Config (including Seed), the Result is
// byte-for-byte identical for every Workers setting; only wall-clock and
// the speculative-work counter Stats.IsoRun vary.
package repro
