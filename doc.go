// Package repro is a from-scratch Go reproduction of "Mining Top-K Large
// Structural Patterns in a Massive Network" (Zhu, Qu, Lo, Yan, Han, Yu;
// PVLDB 4(11), 2011) — the SpiderMine algorithm, every baseline it is
// evaluated against (SUBDUE, SEuS, MoSS/gSpan-style complete mining,
// ORIGAMI), the synthetic workload generators of the evaluation, and a
// harness that regenerates every table and figure.
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package contains only the benchmark harness
// (bench_test.go); the implementation lives under internal/.
package repro
