package gen

import (
	"math/rand"
	"testing"

	"repro/internal/canon"
	"repro/internal/graph"
)

func TestErdosRenyiBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(500, 4, 20, rng)
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	wantM := 1000
	if g.M() != wantM {
		t.Fatalf("m=%d, want %d", g.M(), wantM)
	}
	if g.NumLabels() > 20 {
		t.Fatalf("labels %d > 20", g.NumLabels())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 3, 10, rand.New(rand.NewSource(7)))
	b := ErdosRenyi(100, 3, 10, rand.New(rand.NewSource(7)))
	if a.M() != b.M() {
		t.Fatal("same seed, different graphs")
	}
	for v := 0; v < a.N(); v++ {
		if a.Label(graph.V(v)) != b.Label(graph.V(v)) {
			t.Fatal("labels differ")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := BarabasiAlbert(1000, 2, 50, rng)
	if g.N() != 1000 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// Scale-free: max degree far above average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("no hub: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRandomConnectedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		nv := 5 + rng.Intn(25)
		p := RandomConnectedPattern(nv, nv/5, 10, 4, rng)
		if p.N() != nv {
			t.Fatalf("nv=%d, want %d", p.N(), nv)
		}
		if !p.IsConnected() {
			t.Fatal("pattern not connected")
		}
		if p.M() < nv-1 {
			t.Fatal("fewer edges than a spanning tree")
		}
	}
}

func TestSyntheticInjection(t *testing.T) {
	cfg := GIDConfig(1, 99)
	g, larges := Synthetic(cfg)
	if g.N() != 400 {
		t.Fatalf("n=%d", g.N())
	}
	if len(larges) != 5 {
		t.Fatalf("injected %d large patterns, want 5", len(larges))
	}
	// Every injected large pattern must actually occur at least Lsup=2
	// times in the generated graph.
	for i, p := range larges {
		if got := canon.CountEmbeddings(p, g, 2); got < 2 {
			t.Errorf("pattern %d: %d embeddings found, want >= 2", i, got)
		}
	}
}

func TestSyntheticSupportRange(t *testing.T) {
	cfg := SyntheticConfig{
		N: 2000, AvgDeg: 2, NumLabels: 100, Seed: 5,
		Large: InjectSpec{NV: 10, Count: 2, Support: 3, SupportMax: 5},
	}
	g, larges := Synthetic(cfg)
	for i, p := range larges {
		if got := canon.CountEmbeddings(p, g, 3); got < 3 {
			t.Errorf("pattern %d: %d embeddings, want >= 3", i, got)
		}
	}
}

func TestGIDConfigsTable1(t *testing.T) {
	wantN := map[int]int{1: 400, 2: 400, 3: 1000, 4: 1000, 5: 600}
	wantF := map[int]int{1: 70, 2: 70, 3: 250, 4: 250, 5: 130}
	for gid := 1; gid <= 5; gid++ {
		c := GIDConfig(gid, 1)
		if c.N != wantN[gid] || c.NumLabels != wantF[gid] {
			t.Errorf("GID %d: N=%d f=%d", gid, c.N, c.NumLabels)
		}
		if c.Large.NV != 30 || c.Large.Count != 5 {
			t.Errorf("GID %d large spec wrong", gid)
		}
	}
}

func TestGIDConfigPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GIDConfig(6, 1)
}

func TestGIDConfigLargeTable3(t *testing.T) {
	wantN := map[int]int{6: 20490, 7: 31110, 8: 37595, 9: 47410, 10: 56740}
	for gid := 6; gid <= 10; gid++ {
		c := GIDConfigLarge(gid, 1)
		if c.N != wantN[gid] {
			t.Errorf("GID %d: N=%d, want %d", gid, c.N, wantN[gid])
		}
		if c.Large.NV != 50 || c.Large.Count != 5 || c.Small.Count != 50 {
			t.Errorf("GID %d inject specs wrong", gid)
		}
	}
}

func TestDBLPLike(t *testing.T) {
	g, pats := DBLPLike(DBLPConfig{Authors: 1500, Seed: 4})
	if g.N() != 1500 {
		t.Fatalf("n=%d", g.N())
	}
	if g.NumLabels() != 4 {
		t.Fatalf("labels=%d, want 4 seniority classes", g.NumLabels())
	}
	if len(pats) == 0 {
		t.Fatal("no collaborative patterns")
	}
	// Average degree should be in a plausible co-authorship range.
	if g.AvgDegree() < 2 || g.AvgDegree() > 12 {
		t.Fatalf("avg degree %.1f implausible", g.AvgDegree())
	}
}

func TestCallGraphLike(t *testing.T) {
	g, motifs := CallGraphLike(CallGraphConfig{Seed: 4})
	if g.N() != 835 {
		t.Fatalf("n=%d, want 835 (Jeti)", g.N())
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs")
	}
	if g.MaxDegree() < 20 {
		t.Fatalf("no API hub: max degree %d", g.MaxDegree())
	}
	// every motif must occur at least 10 times (σ=10 in Fig. 21)
	for i, m := range motifs {
		if got := canon.CountEmbeddings(m, g, 10); got < 10 {
			t.Errorf("motif %d: %d occurrences, want >= 10", i, got)
		}
	}
}
