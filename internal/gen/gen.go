// Package gen generates the synthetic networks of the paper's evaluation:
// Erdős–Rényi backgrounds with injected large/small patterns (Tables 1–3),
// Barabási–Albert scale-free graphs (Fig. 13/17), and structured stand-ins
// for the two real datasets (DBLP co-authorship, Fig. 20; Jeti call graph,
// Fig. 21). All generators are deterministic given their seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi builds a G(n, m) random graph with m = round(n*avgDeg/2)
// distinct edges and uniform labels drawn from [0, numLabels).
func ErdosRenyi(n int, avgDeg float64, numLabels int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, int(float64(n)*avgDeg/2))
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(numLabels)))
	}
	target := int(float64(n) * avgDeg / 2)
	seen := make(map[graph.Edge]struct{}, target)
	for len(seen) < target && len(seen) < n*(n-1)/2 {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		if u == w {
			continue
		}
		e := graph.NormEdge(u, w)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		b.AddEdge(u, w)
	}
	return b.Build()
}

// BarabasiAlbert builds a scale-free graph by preferential attachment:
// each new vertex attaches to attach existing vertices chosen with
// probability proportional to degree. Labels are uniform from
// [0, numLabels).
func BarabasiAlbert(n, attach, numLabels int, rng *rand.Rand) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	b := graph.NewBuilder(n, n*attach)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(numLabels)))
	}
	// repeated-endpoints trick: pick attachment targets uniformly from the
	// endpoint multiset, which realizes degree-proportional sampling.
	var endpoints []graph.V
	// seed clique over the first attach+1 vertices
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			endpoints = append(endpoints, graph.V(i), graph.V(j))
		}
	}
	chosen := make([]graph.V, 0, attach)
	for v := attach + 1; v < n; v++ {
		chosen = chosen[:0]
	draw:
		for len(chosen) < attach {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) == v {
				continue
			}
			for _, c := range chosen {
				if c == t {
					continue draw
				}
			}
			chosen = append(chosen, t)
		}
		// Append in draw order — the endpoint multiset's order feeds later
		// degree-proportional draws, so it must not depend on map iteration
		// (a map here once made the generated graph differ across runs).
		for _, t := range chosen {
			b.AddEdge(graph.V(v), t)
			endpoints = append(endpoints, graph.V(v), t)
		}
	}
	return b.Build()
}

// RandomConnectedPattern generates a connected labeled pattern with nv
// vertices: a random spanning tree plus extraEdges additional random
// edges, labels uniform from [0, numLabels). With maxDiam > 0 the tree is
// built breadth-biased until the diameter bound holds (best effort: the
// attachment point is re-drawn among shallow vertices).
func RandomConnectedPattern(nv, extraEdges, numLabels, maxDiam int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(nv, nv+extraEdges)
	for i := 0; i < nv; i++ {
		b.AddVertex(graph.Label(rng.Intn(numLabels)))
	}
	depth := make([]int, nv)
	for v := 1; v < nv; v++ {
		// attach to a random earlier vertex, preferring shallow ones when a
		// diameter bound is requested
		parent := rng.Intn(v)
		if maxDiam > 0 {
			for try := 0; try < 8 && 2*(depth[parent]+1) > maxDiam; try++ {
				parent = rng.Intn(v)
			}
		}
		depth[v] = depth[parent] + 1
		b.AddEdge(graph.V(v), graph.V(parent))
	}
	added := 0
	for try := 0; added < extraEdges && try < extraEdges*16+64; try++ {
		u := graph.V(rng.Intn(nv))
		w := graph.V(rng.Intn(nv))
		if u == w || b.HasEdge(u, w) {
			continue
		}
		b.AddEdge(u, w)
		added++
	}
	return b.Build()
}

// InjectSpec describes a family of injected patterns.
type InjectSpec struct {
	NV      int // vertices per pattern
	Count   int // number of distinct patterns (the paper's m or n)
	Support int // embeddings per pattern (Lsup / Ssup)
	// SupportMax, if > Support, draws each pattern's support uniformly
	// from [Support, SupportMax] (Table 3 uses ranges like "10 to 15").
	SupportMax int
}

// SyntheticConfig assembles an ER background plus injected patterns,
// reproducing the construction of §5.1.
type SyntheticConfig struct {
	N         int
	AvgDeg    float64
	NumLabels int
	Large     InjectSpec
	Small     InjectSpec
	Seed      int64
}

// Synthetic builds the configured graph. It returns the graph and the
// injected large pattern graphs (for recovery checks in tests and
// experiments).
func Synthetic(cfg SyntheticConfig) (*graph.Graph, []*graph.Graph) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bg := ErdosRenyi(cfg.N, cfg.AvgDeg, cfg.NumLabels, rng)

	// Rebuild into a Builder so injections can relabel and add edges.
	b := graph.NewBuilder(bg.N(), bg.M()*2)
	for v := 0; v < bg.N(); v++ {
		b.AddVertex(bg.Label(graph.V(v)))
	}
	for _, e := range bg.Edges() {
		b.AddEdge(e.U, e.W)
	}
	used := make(map[graph.V]bool)
	var larges []*graph.Graph
	inject := func(spec InjectSpec, diamBound int) []*graph.Graph {
		var pats []*graph.Graph
		for i := 0; i < spec.Count; i++ {
			extra := spec.NV / 5
			p := RandomConnectedPattern(spec.NV, extra, cfg.NumLabels, diamBound, rng)
			pats = append(pats, p)
			sup := spec.Support
			if spec.SupportMax > spec.Support {
				sup += rng.Intn(spec.SupportMax - spec.Support + 1)
			}
			for s := 0; s < sup; s++ {
				embedPattern(b, p, used, rng)
			}
		}
		return pats
	}
	larges = inject(cfg.Large, 4)
	inject(cfg.Small, 2)
	return b.Build(), larges
}

// EmbedInto plants one embedding of p into builder b, avoiding vertices
// already claimed by earlier injections (tracked in used). Exported for
// the transaction-database generator.
func EmbedInto(b *graph.Builder, p *graph.Graph, used map[graph.V]bool, rng *rand.Rand) {
	embedPattern(b, p, used, rng)
}

// embedPattern plants one embedding of p into the builder: it picks
// |V(p)| vertices not used by any earlier injection, overwrites their
// labels, and adds p's edges among them. When fewer unused vertices remain
// than the pattern needs, previously used vertices may be re-picked (their
// labels are overwritten, possibly perturbing an earlier injection — the
// generator prefers terminating over strict separation on tiny graphs).
func embedPattern(b *graph.Builder, p *graph.Graph, used map[graph.V]bool, rng *rand.Rand) {
	n := b.N()
	free := 0
	for v := 0; v < n; v++ {
		if !used[graph.V(v)] {
			free++
		}
	}
	allowReuse := free < p.N()
	chosen := make([]graph.V, 0, p.N())
	seen := make(map[graph.V]bool, p.N())
	for len(chosen) < p.N() {
		v := graph.V(rng.Intn(n))
		if (used[v] && !allowReuse) || seen[v] {
			continue
		}
		seen[v] = true
		chosen = append(chosen, v)
	}
	for i, v := range chosen {
		b.SetLabel(v, p.Label(graph.V(i)))
		used[v] = true
	}
	for _, e := range p.Edges() {
		b.AddEdge(chosen[e.U], chosen[e.W])
	}
}

// GIDConfig returns the Table 1 configuration for GID 1..5.
func GIDConfig(gid int, seed int64) SyntheticConfig {
	base := SyntheticConfig{Seed: seed}
	switch gid {
	case 1:
		base.N, base.NumLabels, base.AvgDeg = 400, 70, 2
		base.Large = InjectSpec{NV: 30, Count: 5, Support: 2}
		base.Small = InjectSpec{NV: 3, Count: 5, Support: 2}
	case 2:
		base.N, base.NumLabels, base.AvgDeg = 400, 70, 4
		base.Large = InjectSpec{NV: 30, Count: 5, Support: 2}
		base.Small = InjectSpec{NV: 3, Count: 5, Support: 2}
	case 3:
		base.N, base.NumLabels, base.AvgDeg = 1000, 250, 2
		base.Large = InjectSpec{NV: 30, Count: 5, Support: 2}
		base.Small = InjectSpec{NV: 3, Count: 5, Support: 20}
	case 4:
		base.N, base.NumLabels, base.AvgDeg = 1000, 250, 4
		base.Large = InjectSpec{NV: 30, Count: 5, Support: 2}
		base.Small = InjectSpec{NV: 3, Count: 5, Support: 20}
	case 5:
		base.N, base.NumLabels, base.AvgDeg = 600, 130, 4
		base.Large = InjectSpec{NV: 30, Count: 5, Support: 2}
		base.Small = InjectSpec{NV: 3, Count: 20, Support: 2}
	default:
		panic(fmt.Sprintf("gen: unknown GID %d (want 1..5)", gid))
	}
	return base
}

// GIDConfigLarge returns the Table 3 configuration for GID 6..10 (the
// robustness experiment, Fig. 18). Sizes follow Table 3; the small-pattern
// support range shifts upward with the GID.
func GIDConfigLarge(gid int, seed int64) SyntheticConfig {
	type row struct {
		n, f             int
		smallLo, smallHi int
	}
	rows := map[int]row{
		6:  {20490, 1064, 5, 15},
		7:  {31110, 1658, 10, 20},
		8:  {37595, 2062, 15, 25},
		9:  {47410, 2610, 20, 30},
		10: {56740, 3138, 25, 35},
	}
	r, ok := rows[gid]
	if !ok {
		panic(fmt.Sprintf("gen: unknown GID %d (want 6..10)", gid))
	}
	return SyntheticConfig{
		N:         r.n,
		AvgDeg:    3.05, // Table 3 edge counts are ≈1.52·|V|
		NumLabels: r.f,
		Large:     InjectSpec{NV: 50, Count: 5, Support: 10, SupportMax: 15},
		Small:     InjectSpec{NV: 5, Count: 50, Support: r.smallLo, SupportMax: r.smallHi},
		Seed:      seed,
	}
}
