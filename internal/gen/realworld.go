package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// DBLP seniority labels (the paper buckets authors by publication count).
const (
	LabelProlific graph.Label = 0 // "P": >= 50 papers
	LabelSenior   graph.Label = 1 // "S": 20–49
	LabelJunior   graph.Label = 2 // "J": 10–19
	LabelBeginner graph.Label = 3 // "B": 5–9
)

// DBLPConfig sizes the synthetic co-authorship network. Defaults match the
// paper's extracted graph: 6,508 vertices, 24,402 edges, 4 labels.
type DBLPConfig struct {
	Authors     int // default 6508
	Communities int // research communities (default 60)
	// PatternSize and PatternCount control the injected collaborative
	// patterns (the "common collaborative patterns" of Fig. 22/23).
	PatternSize  int // default 16 authors
	PatternCount int // default 8 distinct patterns
	PatternSup   int // embeddings per pattern (default 6 clusters)
	Seed         int64
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.Authors <= 0 {
		c.Authors = 6508
	}
	if c.Communities <= 0 {
		c.Communities = 60
	}
	if c.PatternSize <= 0 {
		c.PatternSize = 16
	}
	if c.PatternCount <= 0 {
		c.PatternCount = 8
	}
	if c.PatternSup <= 0 {
		c.PatternSup = 6
	}
	return c
}

// DBLPLike synthesizes a co-authorship network with the structural
// properties the paper's DBLP extraction exhibits: few labels with a
// seniority-skewed distribution, dense intra-community collaboration,
// sparse cross-community edges, and repeated large collaborative patterns
// whose embeddings cluster on communities. Substitutes for the
// unavailable DBLP dataset in the Fig. 20/22/23 experiments.
func DBLPLike(cfg DBLPConfig) (*graph.Graph, []*graph.Graph) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Authors
	b := graph.NewBuilder(n, n*4)
	// Seniority distribution: few prolific, many beginners.
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.06:
			b.AddVertex(LabelProlific)
		case r < 0.22:
			b.AddVertex(LabelSenior)
		case r < 0.50:
			b.AddVertex(LabelJunior)
		default:
			b.AddVertex(LabelBeginner)
		}
	}
	// Communities: assign authors round-robin with jitter; wire
	// intra-community edges preferentially around community "anchors"
	// (prolific authors attract collaborations).
	comm := make([]int, n)
	for i := range comm {
		comm[i] = rng.Intn(cfg.Communities)
	}
	members := make([][]graph.V, cfg.Communities)
	for v, c := range comm {
		members[c] = append(members[c], graph.V(v))
	}
	edgeSet := make(map[graph.Edge]struct{})
	addEdge := func(u, w graph.V) {
		if u == w {
			return
		}
		e := graph.NormEdge(u, w)
		if _, dup := edgeSet[e]; dup {
			return
		}
		edgeSet[e] = struct{}{}
		b.AddEdge(u, w)
	}
	for _, ms := range members {
		if len(ms) < 2 {
			continue
		}
		// ~3.4 intra edges per member approximates the paper's 24,402
		// edges over 6,508 authors, concentrated within communities.
		target := len(ms) * 17 / 5
		for t := 0; t < target; t++ {
			u := ms[rng.Intn(len(ms))]
			w := ms[rng.Intn(len(ms))]
			addEdge(u, w)
		}
	}
	// Sparse cross-community collaboration.
	for t := 0; t < n/10; t++ {
		addEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	// Inject collaborative patterns: each pattern's embeddings land on
	// distinct communities (the paper's Fig. 23 observation that a
	// discriminative pattern's embeddings cluster on a researcher group).
	used := make(map[graph.V]bool)
	var pats []*graph.Graph
	for pi := 0; pi < cfg.PatternCount; pi++ {
		p := collaborativePattern(cfg.PatternSize, rng)
		pats = append(pats, p)
		for s := 0; s < cfg.PatternSup; s++ {
			c := rng.Intn(cfg.Communities)
			planted := plantInCommunity(b, p, members[c], used, rng)
			if !planted {
				embedPattern(b, p, used, rng)
			}
		}
	}
	return b.Build(), pats
}

// collaborativePattern builds a plausible research-group motif: a prolific
// hub, senior co-leads connected to the hub and each other, juniors and
// beginners hanging off seniors.
func collaborativePattern(size int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(size, size*2)
	hub := b.AddVertex(LabelProlific)
	var seniors []graph.V
	nSen := 2 + rng.Intn(3)
	for i := 0; i < nSen && b.N() < size; i++ {
		s := b.AddVertex(LabelSenior)
		b.AddEdge(hub, s)
		for _, t := range seniors {
			if rng.Float64() < 0.5 {
				b.AddEdge(s, t)
			}
		}
		seniors = append(seniors, s)
	}
	for b.N() < size {
		var l graph.Label = LabelJunior
		if rng.Float64() < 0.5 {
			l = LabelBeginner
		}
		v := b.AddVertex(l)
		anchor := seniors[rng.Intn(len(seniors))]
		b.AddEdge(v, anchor)
		if rng.Float64() < 0.3 {
			b.AddEdge(v, hub)
		}
	}
	return b.Build()
}

// plantInCommunity embeds p onto unused members of one community; returns
// false if the community is too small.
func plantInCommunity(b *graph.Builder, p *graph.Graph, members []graph.V, used map[graph.V]bool, rng *rand.Rand) bool {
	var free []graph.V
	for _, v := range members {
		if !used[v] {
			free = append(free, v)
		}
	}
	if len(free) < p.N() {
		return false
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	chosen := free[:p.N()]
	for i, v := range chosen {
		b.SetLabel(v, p.Label(graph.V(i)))
		used[v] = true
	}
	for _, e := range p.Edges() {
		b.AddEdge(chosen[e.U], chosen[e.W])
	}
	return true
}

// CallGraphConfig sizes the synthetic software call graph. Defaults match
// the paper's Jeti extraction: 835 nodes, 1,764 edges, 267 class labels,
// average degree 2.13, max degree 69.
type CallGraphConfig struct {
	Methods int // default 835
	Classes int // default 267
	// MotifSize / MotifCount / MotifSup control repeated library-usage
	// motifs (e.g. the GregorianCalendar/Calendar/SimpleDateFormat pattern
	// of Fig. 24).
	MotifSize  int // methods per motif (default 12)
	MotifCount int // distinct motifs (default 5)
	MotifSup   int // occurrences each (default 12)
	Seed       int64
}

func (c CallGraphConfig) withDefaults() CallGraphConfig {
	if c.Methods <= 0 {
		c.Methods = 835
	}
	if c.Classes <= 0 {
		c.Classes = 267
	}
	if c.MotifSize <= 0 {
		c.MotifSize = 12
	}
	if c.MotifCount <= 0 {
		c.MotifCount = 5
	}
	if c.MotifSup <= 0 {
		c.MotifSup = 12
	}
	return c
}

// CallGraphLike synthesizes a method-call graph labeled by declaring
// class: most methods call within their class neighborhood, a few API hub
// methods have very high in-degree, and library-usage motifs repeat across
// the codebase. Substitutes for the unavailable Jeti dataset (Fig. 21/24).
func CallGraphLike(cfg CallGraphConfig) (*graph.Graph, []*graph.Graph) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Methods
	b := graph.NewBuilder(n, n*3)
	// Methods per class follow a skewed distribution; class labels are
	// assigned in runs so same-class methods are id-adjacent.
	for i := 0; i < n; {
		cls := graph.Label(rng.Intn(cfg.Classes))
		run := 1 + rng.Intn(6)
		for j := 0; j < run && i < n; j++ {
			b.AddVertex(cls)
			i++
		}
	}
	edgeSet := make(map[graph.Edge]struct{})
	addEdge := func(u, w graph.V) {
		if u == w {
			return
		}
		e := graph.NormEdge(u, w)
		if _, dup := edgeSet[e]; dup {
			return
		}
		edgeSet[e] = struct{}{}
		b.AddEdge(u, w)
	}
	// Intra-class calls: mostly local (id-adjacent) calls.
	for v := 0; v < n-1; v++ {
		if rng.Float64() < 0.55 {
			addEdge(graph.V(v), graph.V(v+1+rng.Intn(3)%max(1, n-v-1)))
		}
	}
	// API hubs: a handful of utility methods everyone calls (max degree
	// ~69 in Jeti).
	nHubs := 6
	for h := 0; h < nHubs; h++ {
		hub := graph.V(rng.Intn(n))
		fan := 20 + rng.Intn(50)
		for f := 0; f < fan; f++ {
			addEdge(hub, graph.V(rng.Intn(n)))
		}
	}
	// Background calls.
	for t := 0; t < n/3; t++ {
		addEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	// Library-usage motifs.
	used := make(map[graph.V]bool)
	var motifs []*graph.Graph
	for mi := 0; mi < cfg.MotifCount; mi++ {
		m := libraryMotif(cfg.MotifSize, cfg.Classes, rng)
		motifs = append(motifs, m)
		for s := 0; s < cfg.MotifSup; s++ {
			embedPattern(b, m, used, rng)
		}
	}
	return b.Build(), motifs
}

// libraryMotif models a tight call cluster over 3 library classes (the
// Fig. 24 shape: Calendar/GregorianCalendar/SimpleDateFormat methods
// calling each other) — a dense-ish connected subgraph over 3 labels.
func libraryMotif(size, classes int, rng *rand.Rand) *graph.Graph {
	libs := []graph.Label{
		graph.Label(rng.Intn(classes)),
		graph.Label(rng.Intn(classes)),
		graph.Label(rng.Intn(classes)),
	}
	b := graph.NewBuilder(size, size*2)
	for i := 0; i < size; i++ {
		b.AddVertex(libs[rng.Intn(3)])
	}
	// spanning chain + extra calls
	for v := 1; v < size; v++ {
		b.AddEdge(graph.V(v), graph.V(rng.Intn(v)))
	}
	for t := 0; t < size/2; t++ {
		u, w := graph.V(rng.Intn(size)), graph.V(rng.Intn(size))
		if u != w {
			b.AddEdge(u, w)
		}
	}
	return b.Build()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
