package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (text/plain; version 0.0.4): a # HELP and
// # TYPE line per family, counter/gauge samples as bare numbers,
// histograms as cumulative le-bucket series plus _sum and _count.
// Families appear in registration order (stable across scrapes);
// vec children in sorted label order. Histogram bucket bounds and sums
// are exported in the family's scaled unit (seconds for duration
// histograms), per Prometheus base-unit convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		m := r.families[name]
		if m.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(m.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(m.kind)
		bw.WriteByte('\n')
		switch {
		case m.children != nil:
			for _, lv := range m.sortedChildren() {
				c := m.children[lv]
				if c.counter != nil {
					writeSample(bw, name, m.label, lv, "", float64(c.counter.Value()))
				} else {
					writeHistogram(bw, name, m.label, lv, c.histogram)
				}
			}
		case m.counter != nil:
			writeSample(bw, name, "", "", "", float64(m.counter.Value()))
		case m.counterFn != nil:
			writeSample(bw, name, "", "", "", float64(m.counterFn()))
		case m.gaugeFn != nil:
			writeSample(bw, name, "", "", "", m.gaugeFn())
		case m.gauge != nil:
			writeSample(bw, name, "", "", "", float64(m.gauge.Value()))
		case m.histogram != nil:
			writeHistogram(bw, name, "", "", m.histogram)
		}
	}
	return bw.Flush()
}

// writeSample emits `name{label="value"} v` (label optional, an extra
// le pair for histogram buckets).
func writeSample(w *bufio.Writer, name, label, value, le string, v float64) {
	w.WriteString(name)
	if label != "" || le != "" {
		w.WriteByte('{')
		if label != "" {
			w.WriteString(label)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(value))
			w.WriteByte('"')
			if le != "" {
				w.WriteByte(',')
			}
		}
		if le != "" {
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket series, _sum and _count
// for one histogram (optionally labelled).
func writeHistogram(w *bufio.Writer, name, label, value string, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) * h.scale)
		}
		writeSample(w, name+"_bucket", label, value, le, float64(cum))
	}
	writeSample(w, name+"_sum", label, value, "", float64(h.sum.Load())*h.scale)
	writeSample(w, name+"_count", label, value, "", float64(cum))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
