package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	// nil receivers are safe no-ops (metrics are optional wiring).
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Error("nil metrics recorded something")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "")
}

// TestHistogramBuckets pins the bucket assignment rule: le bounds are
// inclusive, values past the last bound land in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 1, []int64{100, 200, 300})
	for _, v := range []int64{1, 100, 101, 200, 250, 301, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // le=100: {1,100}; le=200: {101,200}; le=300: {250}; +Inf: {301,1000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1+100+101+200+250+301+1000 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// TestHistogramQuantiles pins the interpolation: uniform mass within a
// bucket yields exact mid-bucket quantiles, bucket-boundary ranks yield
// the bound itself, and overflow mass clamps to the largest finite
// bound.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", 1, []int64{100, 200, 300, 400})
	// 100 observations, all inside the first bucket: the estimator
	// assumes uniform in-bucket mass, so pN = N (bucket spans 0..100).
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	if got := h.Quantile(0.50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %v, want 100 (first bound)", got)
	}

	// Two equal buckets: the p50 rank sits exactly at the first bound.
	h2 := r.Histogram("q2", "", 1, []int64{100, 200})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
		h2.Observe(150)
	}
	if got := h2.Quantile(0.5); got != 100 {
		t.Errorf("p50 = %v, want 100 (bucket boundary)", got)
	}
	if got := h2.Quantile(0.75); got != 150 {
		t.Errorf("p75 = %v, want 150 (mid second bucket)", got)
	}

	// Overflow-bucket quantiles clamp to the largest finite bound.
	h3 := r.Histogram("q3", "", 1, []int64{100})
	h3.Observe(5000)
	if got := h3.Quantile(0.99); got != 100 {
		t.Errorf("overflow p99 = %v, want clamp to 100", got)
	}

	// Empty histogram: quantiles are 0, not NaN.
	h4 := r.Histogram("q4", "", 1, []int64{100})
	if got := h4.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
}

func TestHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", SecondsScale, []int64{int64(time.Millisecond), int64(time.Second)})
	h.Observe(int64(500 * time.Microsecond))
	snap := snapshotHistogram(h)
	if snap.Sum != 0.0005 {
		t.Errorf("scaled sum = %v, want 0.0005", snap.Sum)
	}
	if snap.P50 <= 0 || snap.P50 > 0.001 {
		t.Errorf("scaled p50 = %v, want within first bucket (0, 0.001]", snap.P50)
	}
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte:
// HELP/TYPE framing, label rendering, cumulative le buckets, _sum and
// _count, and the registration-order/sorted-label layout.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs accepted")
	g := r.Gauge("queue_depth", "queued jobs")
	cv := r.CounterVec("rejects_total", "rejections by cause", "cause")
	h := r.Histogram("wait_seconds", "queue wait", SecondsScale,
		[]int64{int64(time.Millisecond), int64(10 * time.Millisecond)})

	c.Add(3)
	g.Set(2)
	cv.With("queue_full").Add(2)
	cv.With("draining").Inc()
	h.Observe(int64(500 * time.Microsecond))
	h.Observe(int64(2 * time.Millisecond))
	h.Observe(int64(3 * time.Second))

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total jobs accepted
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth queued jobs
# TYPE queue_depth gauge
queue_depth 2
# HELP rejects_total rejections by cause
# TYPE rejects_total counter
rejects_total{cause="draining"} 1
rejects_total{cause="queue_full"} 2
# HELP wait_seconds queue wait
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.001"} 1
wait_seconds_bucket{le="0.01"} 2
wait_seconds_bucket{le="+Inf"} 3
wait_seconds_sum 3.0025000000000004
wait_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionLabelledHistogram: vec histograms render one bucket
// series per label value with the label before le.
func TestExpositionLabelledHistogram(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("run_seconds", "run wall-clock", "miner", SecondsScale, []int64{int64(time.Second)})
	hv.With("spidermine").Observe(int64(100 * time.Millisecond))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`run_seconds_bucket{miner="spidermine",le="1"} 1`,
		`run_seconds_bucket{miner="spidermine",le="+Inf"} 1`,
		`run_seconds_sum{miner="spidermine"} 0.1`,
		`run_seconds_count{miner="spidermine"} 1`,
	} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("exposition missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("weird_total", "", "what")
	cv.With(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `weird_total{what="a\"b\\c\n"} 1`) {
		t.Errorf("unescaped label:\n%s", buf.String())
	}
}

func TestVecChildrenIndependentAndStable(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("v_total", "", "k")
	a1 := cv.With("a")
	a1.Inc()
	cv.With("b").Add(5)
	if a2 := cv.With("a"); a2 != a1 {
		t.Error("With returned a different child for the same label")
	}
	if cv.With("a").Value() != 1 || cv.With("b").Value() != 5 {
		t.Error("children shared state")
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "").Set(-3)
	r.GaugeFunc("gf", "", func() float64 { return 1.5 })
	r.Histogram("h_seconds", "", SecondsScale, DurationBuckets()).Observe(int64(3 * time.Millisecond))
	cv := r.CounterVec("cv_total", "", "k")
	cv.With("x").Inc()

	snap := r.Snapshot()
	if snap["c_total"] != uint64(2) {
		t.Errorf("counter snapshot %v", snap["c_total"])
	}
	if snap["g"] != int64(-3) {
		t.Errorf("gauge snapshot %v", snap["g"])
	}
	if snap["gf"] != 1.5 {
		t.Errorf("gaugefunc snapshot %v", snap["gf"])
	}
	hs, ok := snap["h_seconds"].(HistogramSnapshot)
	if !ok || hs.Count != 1 || hs.P50 <= 0 {
		t.Errorf("histogram snapshot %#v", snap["h_seconds"])
	}
	byLabel, ok := snap["cv_total"].(map[string]any)
	if !ok || byLabel["x"] != uint64(1) {
		t.Errorf("vec snapshot %#v", snap["cv_total"])
	}
}

// TestRecordSiteNoAlloc enforces the hot-path contract: recording on
// any registered metric allocates nothing (the obs analogue of
// fault.TestPointDisarmedNoAlloc).
func TestRecordSiteNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", SecondsScale, DurationBuckets())
	child := r.CounterVec("cv_total", "", "k").With("hot") // held, not looked up per record
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(3) }},
		{"Histogram.Observe", func() { h.Observe(int64(2 * time.Millisecond)) }},
		{"Vec child Inc", func() { child.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestConcurrentScrapeUnderLoad races recorders against scrapers: the
// invariant is no torn reads (cumulative bucket series monotone, counts
// consistent) and a correct final tally. Run under -race in CI.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", SecondsScale, DurationBuckets())
	hv := r.HistogramVec("hv_seconds", "", "k", SecondsScale, DurationBuckets())

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers: exposition + snapshot + quantiles in a loop until the
	// recorders finish.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = r.Snapshot()
				_ = h.Quantile(0.99)
			}
		}()
	}
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			child := hv.With("w") // shared child: contended atomics
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i%50) * int64(time.Millisecond))
				child.Observe(int64(time.Millisecond))
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := hv.With("w").Count(); got != workers*perWorker {
		t.Errorf("vec histogram count = %d, want %d", got, workers*perWorker)
	}
}

func BenchmarkRecordSite(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", SecondsScale, DurationBuckets())
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		v := int64(3 * time.Millisecond)
		for i := 0; i < b.N; i++ {
			h.Observe(v)
		}
	})
}
