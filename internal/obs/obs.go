// Package obs is a zero-dependency metrics substrate: named counters,
// gauges, and fixed-bucket histograms registered in a Registry that can
// render itself in the Prometheus text exposition format (GET /metrics)
// and as a JSON-friendly snapshot (folded into /stats).
//
// The package follows internal/fault's discipline for production code
// paths: a record site on the hot path is a handful of atomic operations
// and zero allocations —
//
//	var submits = reg.Counter("submits_total", "jobs submitted")
//	submits.Inc()                      // one atomic add
//	queueWait.Observe(int64(elapsed))  // bucket scan + two atomic adds
//
// — enforced by TestRecordSiteNoAlloc / BenchmarkRecordSite. All reads
// (exposition, snapshots, quantiles) are lock-free over the same atomics,
// so scraping never stalls recording.
//
// Histograms record int64 values in a raw unit (nanoseconds for
// durations, bytes for sizes) against a fixed ascending bucket-bound
// slice; the exported unit is raw × Scale (1e-9 for ns → seconds), so
// exposition speaks Prometheus-conventional base units while the hot
// path never touches floating point. Quantiles (p50/p95/p99) are
// estimated from the bucket counts by linear interpolation within the
// target bucket — exact at bucket boundaries, bounded by bucket width
// in between, which is the standard trade a fixed-bucket histogram
// makes for its O(1) memory and wait-free writes.
//
// Metric families may carry one label dimension (Vec variants): label
// children are created lazily under a mutex and cached by the caller or
// looked up per record — the lookup is a map read, so hot paths that
// care hold the child.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n is a delta; counters only grow).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution of int64 observations. The
// bucket layout is immutable after construction; observing and reading
// are wait-free atomic operations. Values are recorded in a raw unit
// (e.g. nanoseconds) and exported multiplied by Scale (e.g. 1e-9 →
// seconds), so the hot path is integer-only.
type Histogram struct {
	bounds []int64         // ascending upper bounds (le, inclusive)
	counts []atomic.Uint64 // len(bounds)+1: one per bound + overflow (+Inf)
	sum    atomic.Int64    // sum of raw observed values
	scale  float64         // raw → exported unit
}

// Observe records one value: a linear scan over the (small, fixed)
// bound slice to find the bucket, then two atomic adds. No allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t0 in nanoseconds — the
// idiom for duration histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of raw observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution in raw units, by linear interpolation inside the bucket
// holding the target rank. The overflow bucket clamps to the largest
// finite bound (a +Inf estimate is useless for an SLO readout). Returns
// 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	// Snapshot counts once so a concurrent Observe cannot tear the
	// cumulative walk.
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantileFromCounts(q, h.bounds, counts, total)
}

// quantileFromCounts is the pure estimation core, shared with snapshots
// that already hold a consistent copy of the counts.
func quantileFromCounts(q float64, bounds []int64, counts []uint64, total uint64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return float64(bounds[len(bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	if len(bounds) == 0 {
		return 0
	}
	return float64(bounds[len(bounds)-1])
}

// DurationBuckets is the default latency layout: 100µs to 60s in a
// coarse exponential ladder, wide enough for both sub-millisecond cache
// hits and multi-second mining runs. Raw unit: nanoseconds.
func DurationBuckets() []int64 {
	ms := int64(time.Millisecond)
	return []int64{
		int64(100 * time.Microsecond), int64(250 * time.Microsecond), int64(500 * time.Microsecond),
		1 * ms, 2 * ms, 5 * ms, 10 * ms, 25 * ms, 50 * ms, 100 * ms, 250 * ms, 500 * ms,
		int64(time.Second), int64(2500 * time.Millisecond), int64(5 * time.Second),
		int64(10 * time.Second), int64(30 * time.Second), int64(60 * time.Second),
	}
}

// ByteBuckets is the default size layout: 256B to 256MiB in powers of
// four. Raw unit: bytes.
func ByteBuckets() []int64 {
	out := make([]int64, 0, 11)
	for b := int64(256); b <= 256<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// SecondsScale converts nanosecond observations to Prometheus-convention
// seconds at exposition time.
const SecondsScale = 1e-9

// metric is one registered family; kind drives exposition.
type metric struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	// exactly one of the following is set, depending on kind and
	// labelling; vec maps are guarded by the registry mutex.
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram

	label    string // label key for vec families ("" = unlabelled)
	children map[string]*metric
	// histogram construction template for vec children
	bounds []int64
	scale  float64
}

// Registry is a set of named metric families. Registration (typically
// at component construction) takes a mutex; recording on registered
// metrics is atomic-only.
type Registry struct {
	mu       sync.Mutex
	families map[string]*metric
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*metric)}
}

// register installs a family; duplicate or empty names panic (metric
// wiring is program structure — a collision is a bug worth failing
// loudly on, the same stance as the mine and fault registries).
func (r *Registry) register(m *metric) {
	if m.name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.families[m.name] = m
	r.order = append(r.order, m.name)
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: "counter", counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time — the
// shape for occupancy values another component already tracks (queue
// depth, cache entries). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: "gauge", gaugeFn: fn})
}

// CounterFunc registers a counter whose value is read at scrape time —
// for monotonic tallies another component already maintains (a cache's
// hit count, a scheduler's retry total), so the component stays the
// single source of truth instead of double-counting into a mirror. fn
// must be monotonic and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: "counter", counterFn: fn})
}

// Histogram registers and returns a fixed-bucket histogram. bounds must
// be ascending; scale converts raw observations to the exported unit
// (use SecondsScale for nanosecond durations, 1 for bytes).
func (r *Registry) Histogram(name, help string, scale float64, bounds []int64) *Histogram {
	h := newHistogram(scale, bounds)
	r.register(&metric{name: name, help: help, kind: "histogram", histogram: h, bounds: bounds, scale: scale})
	return h
}

func newHistogram(scale float64, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d (%d after %d)", i, bounds[i], bounds[i-1]))
		}
	}
	if scale == 0 {
		scale = 1
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1), scale: scale}
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct {
	r *Registry
	m *metric
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := &metric{name: name, help: help, kind: "counter", label: label, children: make(map[string]*metric)}
	r.register(m)
	return &CounterVec{r: r, m: m}
}

// With returns the child counter for the label value, creating it on
// first use. Hot paths should hold the child rather than look it up per
// record.
func (v *CounterVec) With(value string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	child, ok := v.m.children[value]
	if !ok {
		child = &metric{name: v.m.name, kind: "counter", counter: &Counter{}}
		v.m.children[value] = child
	}
	return child.counter
}

// HistogramVec is a histogram family with one label dimension; children
// share the family's bucket layout and scale.
type HistogramVec struct {
	r *Registry
	m *metric
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string, scale float64, bounds []int64) *HistogramVec {
	if scale == 0 {
		scale = 1
	}
	m := &metric{
		name: name, help: help, kind: "histogram", label: label,
		children: make(map[string]*metric), bounds: bounds, scale: scale,
	}
	r.register(m)
	return &HistogramVec{r: r, m: m}
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	child, ok := v.m.children[value]
	if !ok {
		child = &metric{name: v.m.name, kind: "histogram", histogram: newHistogram(v.m.scale, v.m.bounds)}
		v.m.children[value] = child
	}
	return child.histogram
}

// sortedChildren returns the vec children in label order (stable
// exposition and snapshots); callers hold r.mu.
func (m *metric) sortedChildren() []string {
	keys := make([]string, 0, len(m.children))
	for k := range m.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramSnapshot is the JSON-friendly readout of one histogram: the
// count, the sum and quantiles in the exported unit.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return HistogramSnapshot{
		Count: total,
		Sum:   float64(h.sum.Load()) * h.scale,
		P50:   quantileFromCounts(0.50, h.bounds, counts, total) * h.scale,
		P95:   quantileFromCounts(0.95, h.bounds, counts, total) * h.scale,
		P99:   quantileFromCounts(0.99, h.bounds, counts, total) * h.scale,
	}
}

// Snapshot renders every family as a JSON-friendly value keyed by
// metric name: counters and gauges as numbers, histograms as
// HistogramSnapshot, vec families as a map keyed by label value. The
// same numbers /metrics exposes, shaped for a JSON stats blob.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.order))
	for _, name := range r.order {
		m := r.families[name]
		switch {
		case m.children != nil:
			byLabel := make(map[string]any, len(m.children))
			for _, lv := range m.sortedChildren() {
				c := m.children[lv]
				if c.counter != nil {
					byLabel[lv] = c.counter.Value()
				} else {
					byLabel[lv] = snapshotHistogram(c.histogram)
				}
			}
			out[name] = byLabel
		case m.counter != nil:
			out[name] = m.counter.Value()
		case m.counterFn != nil:
			out[name] = m.counterFn()
		case m.gaugeFn != nil:
			out[name] = m.gaugeFn()
		case m.gauge != nil:
			out[name] = m.gauge.Value()
		case m.histogram != nil:
			out[name] = snapshotHistogram(m.histogram)
		}
	}
	return out
}
