package pattern

import (
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
)

// headMarker is added to the head vertex's label when canonicalizing a
// rooted spider so the head is distinguishable from same-labeled vertices.
// Pattern labels in practice are tiny integers, so no collision arises.
const headMarker graph.Label = 1 << 24

// RootedSpiderCode returns a canonical code for the r-neighborhood of v
// inside p, rooted at v: the code of s_h[v] in the paper's notation. Two
// vertices get equal codes iff their r-neighborhood subgraphs are
// isomorphic by a head-preserving isomorphism.
func RootedSpiderCode(p *graph.Graph, v graph.V, r int) string {
	cz := canon.GetCanonizer()
	code := RootedSpiderCodeWith(cz, p, v, r)
	canon.PutCanonizer(cz)
	return code
}

// RootedSpiderCodeWith is RootedSpiderCode canonicalizing through the
// caller's Canonizer; hot paths that code many spiders reuse one
// Canonizer's scratch (and its Runs/Nodes counters) across all of them.
func RootedSpiderCodeWith(cz *canon.Canonizer, p *graph.Graph, v graph.V, r int) string {
	sub, orig := p.Neighborhood(v, r)
	// Find v's index in the neighborhood and individualize its label.
	b := graph.NewBuilder(sub.N(), sub.M())
	for i := 0; i < sub.N(); i++ {
		l := sub.Label(graph.V(i))
		if orig[i] == v {
			l += headMarker
		}
		b.AddVertex(l)
	}
	for _, e := range sub.Edges() {
		b.AddEdge(e.U, e.W)
	}
	return cz.Code(b.Build())
}

// SpiderSet returns the spider-set representation S[P]: the multiset of
// rooted r-neighborhood spider codes, one per pattern vertex, sorted.
// (Figure 3 of the paper; Theorem 2: isomorphic patterns have equal
// spider-sets.)
func SpiderSet(p *graph.Graph, r int) []string {
	cz := canon.GetCanonizer()
	codes := SpiderSetWith(cz, p, r)
	canon.PutCanonizer(cz)
	return codes
}

// SpiderSetWith is SpiderSet canonicalizing every rooted spider through
// the caller's Canonizer.
func SpiderSetWith(cz *canon.Canonizer, p *graph.Graph, r int) []string {
	codes := make([]string, p.N())
	for v := 0; v < p.N(); v++ {
		codes[v] = RootedSpiderCodeWith(cz, p, graph.V(v), r)
	}
	sort.Strings(codes)
	return codes
}

// SpiderSetSignature returns a 64-bit hash of the spider-set
// representation at radius r, cached on the pattern. Patterns with unequal
// signatures cannot be isomorphic (spider-set pruning); equal signatures
// require an exact check.
func (p *Pattern) SpiderSetSignature(r int) uint64 {
	if p.sigOK && p.sigRadius == r {
		return p.spiderSig
	}
	cz := canon.GetCanonizer()
	sig := p.SpiderSetSignatureWith(cz, r)
	canon.PutCanonizer(cz)
	return sig
}

// SpiderSetSignatureWith is SpiderSetSignature computing a signature miss
// through the caller's Canonizer. The cache itself is unsynchronized:
// concurrent calls are only safe on distinct patterns.
func (p *Pattern) SpiderSetSignatureWith(cz *canon.Canonizer, r int) uint64 {
	if p.sigOK && p.sigRadius == r {
		return p.spiderSig
	}
	p.spiderSig = HashSpiderSet(SpiderSetWith(cz, p.G, r))
	p.sigOK = true
	p.sigRadius = r
	return p.spiderSig
}

// HashSpiderSet hashes a sorted spider-set into 64 bits.
func HashSpiderSet(codes []string) uint64 {
	var h uint64 = 14695981039346656037
	const prime = 1099511628211
	for _, c := range codes {
		for i := 0; i < len(c); i++ {
			h ^= uint64(c[i])
			h *= prime
		}
		h ^= 0xfe
		h *= prime
	}
	return h
}

// SpiderSetEqual compares the exact spider-set representations of two
// pattern graphs (not just the hashes).
func SpiderSetEqual(a, b *graph.Graph, r int) bool {
	sa := SpiderSet(a, r)
	sb := SpiderSet(b, r)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
