package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func path(labels ...graph.Label) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i+1 < len(labels); i++ {
		edges = append(edges, graph.Edge{U: graph.V(i), W: graph.V(i + 1)})
	}
	return graph.FromEdges(labels, edges)
}

func star(head graph.Label, leaves ...graph.Label) *graph.Graph {
	labels := append([]graph.Label{head}, leaves...)
	var edges []graph.Edge
	for i := range leaves {
		edges = append(edges, graph.Edge{U: 0, W: graph.V(i + 1)})
	}
	return graph.FromEdges(labels, edges)
}

func TestPatternBasics(t *testing.T) {
	p := New(path(1, 2, 3), []Embedding{{10, 11, 12}})
	if p.Size() != 2 || p.NV() != 3 || p.SupportCount() != 1 {
		t.Fatalf("basics wrong: %v", p)
	}
	if !p.Emb[0].Contains(11) || p.Emb[0].Contains(99) {
		t.Fatal("Contains wrong")
	}
}

func TestDedupeEmbeddings(t *testing.T) {
	pg := path(0, 0)
	p := New(pg, []Embedding{{5, 6}, {6, 5}, {7, 8}})
	removed := p.DedupeEmbeddings()
	if removed != 1 || len(p.Emb) != 2 {
		t.Fatalf("dedupe: removed=%d len=%d, want 1, 2 (5-6 and 6-5 are the same subgraph)", removed, len(p.Emb))
	}
}

func TestBoundary(t *testing.T) {
	p := New(path(0, 0, 0, 0, 0), nil)
	p.Origin = 2 // center of P5
	b0 := p.Boundary(0)
	if len(b0) != 1 || b0[0] != 2 {
		t.Fatalf("radius-0 boundary: %v", b0)
	}
	b1 := p.Boundary(1)
	if len(b1) != 2 {
		t.Fatalf("radius-1 boundary: %v", b1)
	}
	b2 := p.Boundary(2)
	if len(b2) != 2 || b2[0] != 0 || b2[1] != 4 {
		t.Fatalf("radius-2 boundary: %v", b2)
	}
}

func TestBoundaryNoOrigin(t *testing.T) {
	p := New(path(0, 0, 0), nil)
	p.Origin = -1
	if got := p.Boundary(5); len(got) != 3 {
		t.Fatalf("merged-pattern boundary should be all vertices, got %v", got)
	}
}

func TestUsesHostVertex(t *testing.T) {
	p := New(path(0, 0), []Embedding{{3, 4}, {7, 8}})
	if i, ok := p.UsesHostVertex(7); !ok || i != 1 {
		t.Fatalf("UsesHostVertex(7) = %d, %v", i, ok)
	}
	if _, ok := p.UsesHostVertex(99); ok {
		t.Fatal("phantom host vertex")
	}
}

func TestRootedSpiderCodeDistinguishesHead(t *testing.T) {
	// P3 with labels 1-1-2: the two label-1 vertices have different
	// neighborhoods at r=1 (one sees {1}, the other {1,2}).
	g := path(1, 1, 2)
	c0 := RootedSpiderCode(g, 0, 1)
	c1 := RootedSpiderCode(g, 1, 1)
	if c0 == c1 {
		t.Fatal("distinct neighborhoods share a rooted code")
	}
}

func TestRootedSpiderCodeHeadMatters(t *testing.T) {
	// Symmetric P3 0-0-0: ends are equivalent, center is not.
	g := path(0, 0, 0)
	e0 := RootedSpiderCode(g, 0, 1)
	e2 := RootedSpiderCode(g, 2, 1)
	c := RootedSpiderCode(g, 1, 1)
	if e0 != e2 {
		t.Fatal("symmetric ends should share a code")
	}
	if e0 == c {
		t.Fatal("end and center should differ")
	}
}

func TestSpiderSetTheorem2(t *testing.T) {
	// Theorem 2: isomorphic graphs have equal spider-sets. Build a graph
	// and a relabeled copy.
	g := star(1, 2, 2, 3)
	h := graph.FromEdges([]graph.Label{3, 1, 2, 2}, // same star, different vertex order
		[]graph.Edge{{U: 1, W: 0}, {U: 1, W: 2}, {U: 1, W: 3}})
	if !SpiderSetEqual(g, h, 1) {
		t.Fatal("isomorphic graphs with different vertex order must share spider-sets")
	}
	if HashSpiderSet(SpiderSet(g, 1)) != HashSpiderSet(SpiderSet(h, 1)) {
		t.Fatal("spider-set hashes differ")
	}
}

func TestSpiderSetPrunesNonIsomorphic(t *testing.T) {
	p4 := path(0, 0, 0, 0)
	s4 := star(0, 0, 0, 0) // K1,3 plus... star(0,0,0,0) has 4 leaves; build K1,3
	k13 := star(0, 0, 0)
	_ = s4
	if SpiderSetEqual(p4, k13, 1) {
		t.Fatal("P4 and K1,3 share spider-sets at r=1")
	}
}

// TestSpiderSetRadiusPower reproduces the Figure 3(II) phenomenon: two
// non-isomorphic graphs whose r=1 spider-sets coincide but whose r=2
// spider-sets differ — larger r gives the heuristic more separating power.
func TestSpiderSetRadiusPower(t *testing.T) {
	// C8 vs 2xC4 (all labels equal, triangle-free, 2-regular): every
	// vertex's induced 1-neighborhood is a P3 with the head in the middle,
	// so the r=1 spider-sets agree. At r=2, C8's neighborhoods are P5s
	// while C4's close into the whole 4-cycle.
	cycle := func(offsets []graph.V, n int) []graph.Edge {
		var es []graph.Edge
		for _, off := range offsets {
			for i := 0; i < n; i++ {
				es = append(es, graph.Edge{U: off + graph.V(i), W: off + graph.V((i+1)%n)})
			}
		}
		return es
	}
	labels := make([]graph.Label, 8)
	c8 := graph.FromEdges(labels, cycle([]graph.V{0}, 8))
	c44 := graph.FromEdges(labels, append(cycle([]graph.V{0}, 4), cycle([]graph.V{4}, 4)...))
	if !SpiderSetEqual(c8, c44, 1) {
		t.Fatal("C8 and 2xC4 should share r=1 spider-sets (the pruning blind spot)")
	}
	if SpiderSetEqual(c8, c44, 2) {
		t.Fatal("r=2 spider-sets must separate C8 from 2xC4")
	}
}

func TestSpiderSetSignatureCache(t *testing.T) {
	p := New(path(0, 1, 0), nil)
	s1 := p.SpiderSetSignature(1)
	s2 := p.SpiderSetSignature(1)
	if s1 != s2 {
		t.Fatal("cached signature changed")
	}
	// different radius recomputes
	s3 := p.SpiderSetSignature(2)
	_ = s3
	if p.SpiderSetSignature(1) != s1 {
		t.Fatal("signature at r=1 not stable after r=2 query")
	}
}

func TestSameStructure(t *testing.T) {
	a := New(path(1, 2, 3), nil)
	b := New(path(3, 2, 1), nil) // reversed: isomorphic
	c := New(path(1, 3, 2), nil) // different adjacency of labels
	if !SameStructure(a, b, 1) {
		t.Fatal("reversed path should match")
	}
	if SameStructure(a, c, 1) {
		t.Fatal("different label arrangement should not match")
	}
}

// Property: Theorem 2 on random graphs — permuted copies share spider-set
// hashes at r=1 and r=2.
func TestQuickTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		b := graph.NewBuilder(n, 2*n)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
		}
		g := b.Build()
		// permute
		perm := rng.Perm(n)
		pb := graph.NewBuilder(n, g.M())
		inv := make([]graph.V, n)
		for newV := 0; newV < n; newV++ {
			pb.AddVertex(g.Label(graph.V(perm[newV])))
		}
		for newV, oldV := range perm {
			inv[oldV] = graph.V(newV)
		}
		for _, e := range g.Edges() {
			pb.AddEdge(inv[e.U], inv[e.W])
		}
		h := pb.Build()
		return SpiderSetEqual(g, h, 1) && SpiderSetEqual(g, h, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
