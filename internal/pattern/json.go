package pattern

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
)

// patternJSON is the wire form of a Pattern: explicit vertex labels, edge
// list, and embeddings, so downstream tooling needs no Go types.
type patternJSON struct {
	Labels     []graph.Label `json:"labels"`
	Edges      [][2]graph.V  `json:"edges"`
	Embeddings [][]graph.V   `json:"embeddings,omitempty"`
	Origin     graph.V       `json:"origin"`
	Merged     bool          `json:"merged,omitempty"`
	ID         int           `json:"id,omitempty"`
}

// MarshalJSON encodes the pattern graph, its embeddings, and growth
// metadata.
func (p *Pattern) MarshalJSON() ([]byte, error) {
	pj := patternJSON{
		Labels: append([]graph.Label(nil), p.G.Labels()...),
		Origin: p.Origin,
		Merged: p.Merged,
		ID:     p.ID,
	}
	for _, e := range p.G.Edges() {
		pj.Edges = append(pj.Edges, [2]graph.V{e.U, e.W})
	}
	for _, e := range p.Emb {
		pj.Embeddings = append(pj.Embeddings, append([]graph.V(nil), e...))
	}
	return json.Marshal(pj)
}

// UnmarshalJSON decodes a pattern previously written by MarshalJSON,
// validating edge endpoints and embedding lengths.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var pj patternJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	b := graph.NewBuilder(len(pj.Labels), len(pj.Edges))
	for _, l := range pj.Labels {
		b.AddVertex(l)
	}
	n := len(pj.Labels)
	for _, e := range pj.Edges {
		if int(e[0]) >= n || int(e[1]) >= n || e[0] < 0 || e[1] < 0 {
			return fmt.Errorf("pattern: edge %v out of range (n=%d)", e, n)
		}
		b.AddEdge(e[0], e[1])
	}
	p.G = b.Build()
	p.Emb = nil
	for i, raw := range pj.Embeddings {
		if len(raw) != n {
			return fmt.Errorf("pattern: embedding %d has %d vertices, want %d", i, len(raw), n)
		}
		p.Emb = append(p.Emb, Embedding(raw))
	}
	p.Origin = pj.Origin
	p.Merged = pj.Merged
	p.ID = pj.ID
	p.InvalidateCaches()
	return nil
}
