package pattern

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/canon"
	"repro/internal/graph"
)

func TestPatternJSONRoundTrip(t *testing.T) {
	pg := graph.FromEdges([]graph.Label{1, 2, 3},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	orig := New(pg, []Embedding{{10, 11, 12}, {20, 21, 22}})
	orig.ID = 7
	orig.Origin = 1
	orig.Merged = true

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Pattern
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Origin != 1 || !back.Merged {
		t.Fatalf("metadata lost: %+v", back)
	}
	if !canon.Isomorphic(orig.G, back.G) {
		t.Fatal("graph changed through JSON")
	}
	if len(back.Emb) != 2 || back.Emb[0][0] != 10 || back.Emb[1][2] != 22 {
		t.Fatalf("embeddings wrong: %v", back.Emb)
	}
}

func TestPatternJSONValidation(t *testing.T) {
	cases := []struct{ name, in string }{
		{"edge out of range", `{"labels":[1,2],"edges":[[0,5]]}`},
		{"negative endpoint", `{"labels":[1,2],"edges":[[-1,0]]}`},
		{"embedding length", `{"labels":[1,2],"edges":[[0,1]],"embeddings":[[3]]}`},
		{"garbage", `{`},
	}
	for _, c := range cases {
		var p Pattern
		if err := json.Unmarshal([]byte(c.in), &p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPatternJSONShape(t *testing.T) {
	pg := graph.FromEdges([]graph.Label{4, 5}, []graph.Edge{{U: 0, W: 1}})
	p := New(pg, nil)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"labels":[4,5]`, `"edges":[[0,1]]`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s: %s", want, s)
		}
	}
}
