package pattern

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/canon"
	"repro/internal/graph"
)

// randomConnected builds a small random connected pattern graph.
func randomConnected(n, labels int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		b.AddEdge(graph.V(i), graph.V(rng.Intn(i)))
	}
	for i := 0; i < n/2; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

// TestSpiderSetSignatureConcurrent exercises signature caching from many
// goroutines — each on its own Pattern (the supported contract; the cache
// fields are unsynchronized per pattern) — all drawing Canonizers from
// the shared package pool. Signatures must match a sequentially computed
// baseline, and the run must be clean under -race.
func TestSpiderSetSignatureConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const nPatterns = 24
	graphs := make([]*graph.Graph, nPatterns)
	want := make([]uint64, nPatterns)
	for i := range graphs {
		graphs[i] = randomConnected(4+rng.Intn(10), 3, rng)
		want[i] = New(graphs[i], nil).SpiderSetSignature(1)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, g := range graphs {
				p := New(g, nil)
				if got := p.SpiderSetSignature(1); got != want[i] {
					errs <- "concurrent signature mismatch"
					return
				}
				// Second read hits the per-pattern cache.
				if got := p.SpiderSetSignature(1); got != want[i] {
					errs <- "cached signature mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestCanonicalCodeWithConcurrent drives the cached canonical code the
// same way: distinct patterns per goroutine, Canonizers shared via the
// pool, codes compared against a sequential baseline.
func TestCanonicalCodeWithConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const nPatterns = 24
	graphs := make([]*graph.Graph, nPatterns)
	want := make([]string, nPatterns)
	for i := range graphs {
		graphs[i] = randomConnected(4+rng.Intn(10), 3, rng)
		cz := canon.GetCanonizer()
		want[i] = New(graphs[i], nil).CanonicalCodeWith(cz)
		canon.PutCanonizer(cz)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cz := canon.GetCanonizer()
			defer canon.PutCanonizer(cz)
			for i, g := range graphs {
				p := New(g, nil)
				if p.CanonicalCodeWith(cz) != want[i] {
					errs <- "concurrent canonical code mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
