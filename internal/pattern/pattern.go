// Package pattern defines the frequent-pattern representation shared by
// SpiderMine and the baseline miners: a small labeled pattern graph
// together with the explicit list of its embeddings in the host graph, the
// spider-set representation of Section 4.2.2, and boundary bookkeeping for
// spider growth.
package pattern

import (
	"fmt"
	"sync"

	"repro/internal/canon"
	"repro/internal/graph"
)

// Embedding maps each pattern vertex (by index) to a host vertex. It is a
// concrete subgraph of the host graph (the paper's e_P).
type Embedding []graph.V

// Clone returns a copy of the embedding.
func (e Embedding) Clone() Embedding { return append(Embedding(nil), e...) }

// Contains reports whether the embedding's image includes host vertex hv.
func (e Embedding) Contains(hv graph.V) bool {
	for _, x := range e {
		if x == hv {
			return true
		}
	}
	return false
}

// ImageKey returns a canonical key identifying the embedded subgraph:
// sorted (host) edge list of the pattern's image. Two embeddings with the
// same key denote the same subgraph of the host.
func (e Embedding) ImageKey(p *graph.Graph) string {
	return canon.ImageKey(p, canon.Mapping(e))
}

// Pattern is a frequent pattern: a connected labeled pattern graph plus all
// of its known embeddings in the host graph. Pattern size follows the
// paper: |P| is the number of edges.
type Pattern struct {
	// ID is a process-unique identifier assigned by the miner.
	ID int
	// G is the pattern graph.
	G *graph.Graph
	// Emb is the embedding list E[P]. All entries map to distinct
	// subgraphs of the host (distinct ImageKeys).
	Emb []Embedding
	// Origin is the pattern vertex the seed spider was headed at; growth
	// radius is measured from it. -1 when not seed-grown (e.g. merged
	// patterns re-rooted, baseline patterns).
	Origin graph.V
	// Merged records whether the pattern resulted from a CheckMerge (used
	// by Stage II pruning).
	Merged bool

	inv       uint64
	invOK     bool
	spiderSig uint64
	sigOK     bool
	sigRadius int
	canonCode string
	codeOK    bool
}

// New creates a pattern with the given graph and embeddings.
func New(g *graph.Graph, embs []Embedding) *Pattern {
	return &Pattern{G: g, Emb: embs, Origin: -1}
}

// Size returns the pattern size |P| = number of edges, per the paper.
func (p *Pattern) Size() int { return p.G.M() }

// NV returns the number of pattern vertices.
func (p *Pattern) NV() int { return p.G.N() }

// SupportCount returns the raw number of stored embeddings. Overlap-aware
// measures live in internal/support.
func (p *Pattern) SupportCount() int { return len(p.Emb) }

// Invariant returns the cached isomorphism-invariant hash of the pattern
// graph.
func (p *Pattern) Invariant() uint64 {
	if !p.invOK {
		p.inv = canon.Invariant(p.G)
		p.invOK = true
	}
	return p.inv
}

// InvalidateCaches drops cached hashes after the pattern graph is replaced.
func (p *Pattern) InvalidateCaches() {
	p.invOK = false
	p.sigOK = false
	p.codeOK = false
}

// CanonicalCodeWith returns the canonical code of the pattern graph,
// cached; a miss canonicalizes through the caller's Canonizer. Equal
// codes iff isomorphic pattern graphs, so repeated exact identity checks
// against a pattern pay for one canonicalization, then compare strings.
// The cache is unsynchronized: concurrent calls are only safe on distinct
// patterns.
func (p *Pattern) CanonicalCodeWith(cz *canon.Canonizer) string {
	if !p.codeOK {
		p.canonCode = cz.Code(p.G)
		p.codeOK = true
	}
	return p.canonCode
}

// String summarizes the pattern.
func (p *Pattern) String() string {
	return fmt.Sprintf("pattern{id=%d v=%d e=%d emb=%d}", p.ID, p.NV(), p.Size(), len(p.Emb))
}

// dedupeScratch pools the image-hash set and edge buffer DedupeEmbeddings
// probes with, so per-seed dedupe passes stop allocating a string per
// embedding (128-bit image hashes stand in for ImageKey strings — the
// accepted collision trade-off, see canon.HashEdges).
type dedupeScratch struct {
	seen map[[2]uint64]struct{}
	buf  []graph.Edge
}

var dedupePool = sync.Pool{
	New: func() any { return &dedupeScratch{seen: make(map[[2]uint64]struct{})} },
}

// DedupeEmbeddings removes embeddings that denote the same host subgraph,
// keeping first occurrences, and returns the number removed.
func (p *Pattern) DedupeEmbeddings() int {
	s := dedupePool.Get().(*dedupeScratch)
	clear(s.seen)
	kept := p.Emb[:0]
	removed := 0
	for _, e := range p.Emb {
		var h [2]uint64
		h, s.buf = canon.ImageHash(s.buf, p.G, canon.Mapping(e))
		if _, dup := s.seen[h]; dup {
			removed++
			continue
		}
		s.seen[h] = struct{}{}
		kept = append(kept, e)
	}
	p.Emb = kept
	dedupePool.Put(s)
	return removed
}

// Boundary returns the pattern vertices at exactly the given distance from
// Origin — the frontier B[P] that SpiderGrow extends. If Origin is -1 the
// boundary is every vertex (merged patterns grow from their whole rim).
// Vertices are returned sorted, matching the paper's lexicographic queue.
func (p *Pattern) Boundary(radius int) []graph.V {
	return p.AppendBoundary(nil, radius)
}

// AppendBoundary is Boundary into caller-owned scratch: the boundary
// vertices (ascending) are appended to dst and the extended slice
// returned. The growth loop reuses one buffer per worker this way; the
// BFS behind it is pooled (graph.AppendAtDistance), so warm calls only
// allocate if dst must grow.
func (p *Pattern) AppendBoundary(dst []graph.V, radius int) []graph.V {
	if p.Origin < 0 {
		for i := 0; i < p.NV(); i++ {
			dst = append(dst, graph.V(i))
		}
		return dst
	}
	return p.G.AppendAtDistance(dst, p.Origin, radius)
}

// UsesHostVertex reports whether any embedding of p covers hv, and returns
// the index of the first such embedding.
func (p *Pattern) UsesHostVertex(hv graph.V) (int, bool) {
	for i, e := range p.Emb {
		if e.Contains(hv) {
			return i, true
		}
	}
	return -1, false
}

// SameStructure reports whether two patterns have isomorphic pattern
// graphs, using the tiered check: invariant hash, then spider-set
// signature, then exact identity via cached canonical codes (each
// pattern canonicalizes once, however many pairs it is compared in).
func SameStructure(a, b *Pattern, r int) bool {
	if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		return false
	}
	if a.Invariant() != b.Invariant() {
		return false
	}
	cz := canon.GetCanonizer()
	defer canon.PutCanonizer(cz)
	if a.SpiderSetSignatureWith(cz, r) != b.SpiderSetSignatureWith(cz, r) {
		return false
	}
	return a.CanonicalCodeWith(cz) == b.CanonicalCodeWith(cz)
}
