package store

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func TestDiskFileBackendRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var fb FileBackend = d // compile-time: Disk implements the capability
	if _, err := fb.FilePath("images", "abc123"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: got %v, want ErrNotFound", err)
	}
	content := []byte("spc1 image payload stand-in")
	if err := fb.PutFile("images", "abc123", bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	path, err := fb.FilePath("images", "abc123")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("file content %q, want %q", got, content)
	}

	// Overwrite replaces atomically.
	repl := []byte("replacement")
	if err := fb.PutFile("images", "abc123", bytes.NewReader(repl)); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); !bytes.Equal(got, repl) {
		t.Fatalf("after overwrite: %q, want %q", got, repl)
	}

	st := d.Stats()
	if st.FilePuts != 2 {
		t.Fatalf("FilePuts = %d, want 2", st.FilePuts)
	}
	if st.BytesWritten < uint64(len(content)+len(repl)) {
		t.Fatalf("BytesWritten = %d, too small", st.BytesWritten)
	}

	if err := fb.DeleteFile("images", "abc123"); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.FilePath("images", "abc123"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file: got %v, want ErrNotFound", err)
	}
	if err := fb.DeleteFile("images", "abc123"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestDiskFileBackendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutFile("images", "deadbeef", bytes.NewReader([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.FilePath("images", "deadbeef"); err != nil {
		t.Fatalf("file lost across reopen: %v", err)
	}
}

func TestFileBackendRejectsHostileNames(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, bad := range [][2]string{
		{"", "k"}, {"images", ""}, {"..", "k"}, {"images", ".."},
		{"images", "a/b"}, {"images", `a\b`}, {"a/b", "k"}, {".", "k"},
		{"images", "k\x00x"},
	} {
		if err := d.PutFile(bad[0], bad[1], bytes.NewReader(nil)); err == nil {
			t.Errorf("PutFile(%q, %q) accepted", bad[0], bad[1])
		}
		if _, err := d.FilePath(bad[0], bad[1]); err == nil {
			t.Errorf("FilePath(%q, %q) accepted", bad[0], bad[1])
		}
		if err := d.DeleteFile(bad[0], bad[1]); err == nil {
			t.Errorf("DeleteFile(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestMemoryIsNotFileBackend(t *testing.T) {
	var b Backend = NewMemory()
	if _, ok := b.(FileBackend); ok {
		t.Fatal("Memory unexpectedly implements FileBackend; the serving layer's feature-test would stop exercising the fallback path")
	}
}
