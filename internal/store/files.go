package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FileBackend is an optional Backend capability: whole-file artifacts
// stored outside the segment log, addressable by path so callers can
// mmap them in place. The Disk backend implements it; Memory does not —
// callers must feature-test with a type assertion and treat absence as
// "no file tier" (the serving layer falls back to decoding the SPG1
// blob from the log).
//
// Files are a cache-like side tier, not part of the log's crash-safety
// story: PutFile is atomic (temp file + fsync + rename, so a crash
// leaves either the old file or the new one, never a torn one), but a
// file's existence is not journaled — recovery must tolerate a missing
// or stale file for a key the log knows, which the serving layer does
// by re-verifying content fingerprints before trusting a mapped image.
type FileBackend interface {
	// PutFile atomically writes wt's content as the file for (kind, key),
	// replacing any previous file.
	PutFile(kind, key string, wt io.WriterTo) error
	// FilePath returns the path of the file stored for (kind, key). A
	// miss returns an error wrapping ErrNotFound.
	FilePath(kind, key string) (string, error)
	// DeleteFile removes the file for (kind, key); deleting an absent
	// file is a no-op.
	DeleteFile(kind, key string) error
}

const filesDirName = "files"

// checkFileName rejects (kind, key) pairs that could escape the files
// directory. Serving-layer keys are hex fingerprints and kinds are
// fixed literals, so anything else is a programming error surfaced
// loudly rather than a traversal waiting to happen.
func checkFileName(kind, key string) error {
	for _, s := range [2]string{kind, key} {
		if s == "" || s == "." || s == ".." ||
			strings.ContainsAny(s, "/\\") || strings.ContainsRune(s, 0) {
			return fmt.Errorf("store: bad file name %q/%q", kind, key)
		}
	}
	return nil
}

func (d *Disk) filePath(kind, key string) string {
	return filepath.Join(d.dir, filesDirName, kind, key)
}

// PutFile atomically writes wt's content under dir/files/<kind>/<key>:
// temp file in the same directory, fsync, rename. Shares the log's
// put/sync failpoints so chaos suites cover the file tier too.
func (d *Disk) PutFile(kind, key string, wt io.WriterTo) error {
	if err := checkFileName(kind, key); err != nil {
		return err
	}
	if err := fpDiskPut.Hit(); err != nil {
		return err
	}
	path := d.filePath(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put file %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: put file %s/%s: %w", kind, key, err)
	}
	n, err := wt.WriteTo(tmp)
	if err == nil {
		if err = fpDiskSync.Hit(); err == nil {
			if err = tmp.Sync(); err == nil {
				d.stats.fsyncs.Add(1)
			}
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put file %s/%s: %w", kind, key, err)
	}
	d.stats.filePuts.Add(1)
	d.stats.bytesWritten.Add(uint64(n))
	return nil
}

// FilePath returns the on-disk path for (kind, key), stat'ing it so a
// missing file surfaces as ErrNotFound here rather than as a confusing
// open failure later.
func (d *Disk) FilePath(kind, key string) (string, error) {
	if err := checkFileName(kind, key); err != nil {
		return "", err
	}
	if err := fpDiskGet.Hit(); err != nil {
		return "", err
	}
	path := d.filePath(kind, key)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("%w: file %s/%s", ErrNotFound, kind, key)
		}
		return "", fmt.Errorf("store: file %s/%s: %w", kind, key, err)
	}
	return path, nil
}

// DeleteFile removes the file for (kind, key) if present.
func (d *Disk) DeleteFile(kind, key string) error {
	if err := checkFileName(kind, key); err != nil {
		return err
	}
	if err := fpDiskPut.Hit(); err != nil {
		return err
	}
	if err := os.Remove(d.filePath(kind, key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete file %s/%s: %w", kind, key, err)
	}
	return nil
}
