package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the in-process Backend: the serving layer's original maps
// refactored behind the interface. It is the default when no -data-dir
// is configured — zero behavior change, nothing survives the process.
type Memory struct {
	mu      sync.Mutex
	kinds   map[string]*memKind
	journal [][]byte

	stats backendStats
}

type memKind struct {
	blobs map[string][]byte
	order []string
}

// NewMemory returns an empty in-process backend.
func NewMemory() *Memory {
	return &Memory{kinds: make(map[string]*memKind)}
}

// backendStats is the shared counter block behind Stats(): wait-free
// atomics so hot paths never serialize on a stats lock.
type backendStats struct {
	puts, gets, deletes, appends atomic.Uint64
	filePuts                     atomic.Uint64
	bytesWritten, bytesRead      atomic.Uint64
	fsyncs                       atomic.Uint64
	recoveryTruncations          atomic.Uint64
	recoveredBlobs               atomic.Uint64
	recoveredJournal             atomic.Uint64
}

func (s *backendStats) snapshot() Stats {
	return Stats{
		Puts:                    s.puts.Load(),
		Gets:                    s.gets.Load(),
		Deletes:                 s.deletes.Load(),
		JournalAppends:          s.appends.Load(),
		FilePuts:                s.filePuts.Load(),
		BytesWritten:            s.bytesWritten.Load(),
		BytesRead:               s.bytesRead.Load(),
		Fsyncs:                  s.fsyncs.Load(),
		RecoveryTruncations:     s.recoveryTruncations.Load(),
		RecoveredBlobs:          s.recoveredBlobs.Load(),
		RecoveredJournalRecords: s.recoveredJournal.Load(),
	}
}

func (m *Memory) kind(name string) *memKind {
	k, ok := m.kinds[name]
	if !ok {
		k = &memKind{blobs: make(map[string][]byte)}
		m.kinds[name] = k
	}
	return k
}

// Put stores a copy of data under (kind, key).
func (m *Memory) Put(kind, key string, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	k := m.kind(kind)
	if _, existed := k.blobs[key]; !existed {
		k.order = append(k.order, key)
	}
	k.blobs[key] = cp
	m.mu.Unlock()
	m.stats.puts.Add(1)
	m.stats.bytesWritten.Add(uint64(len(data)))
	return nil
}

// Get returns the blob under (kind, key). The returned slice is shared
// with the store and must not be modified.
func (m *Memory) Get(kind, key string) ([]byte, error) {
	m.mu.Lock()
	var (
		data []byte
		ok   bool
	)
	if k, has := m.kinds[kind]; has {
		data, ok = k.blobs[key]
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	m.stats.gets.Add(1)
	m.stats.bytesRead.Add(uint64(len(data)))
	return data, nil
}

// List returns the keys of a kind in first-Put order.
func (m *Memory) List(kind string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.kinds[kind]
	if !ok {
		return nil, nil
	}
	return append([]string(nil), k.order...), nil
}

// Delete removes the blob under (kind, key).
func (m *Memory) Delete(kind, key string) error {
	m.mu.Lock()
	if k, ok := m.kinds[kind]; ok {
		if _, existed := k.blobs[key]; existed {
			delete(k.blobs, key)
			for i, id := range k.order {
				if id == key {
					k.order = append(k.order[:i], k.order[i+1:]...)
					break
				}
			}
			m.stats.deletes.Add(1)
		}
	}
	m.mu.Unlock()
	return nil
}

// Append adds one record (copied) to the journal.
func (m *Memory) Append(rec []byte) error {
	cp := append([]byte(nil), rec...)
	m.mu.Lock()
	m.journal = append(m.journal, cp)
	m.mu.Unlock()
	m.stats.appends.Add(1)
	m.stats.bytesWritten.Add(uint64(len(rec)))
	return nil
}

// Journal returns the journal records in append order. The records are
// shared with the store and must not be modified.
func (m *Memory) Journal() ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]byte(nil), m.journal...), nil
}

// Sync is a no-op: process memory has no medium to flush to.
func (m *Memory) Sync() error { return nil }

// Close is a no-op.
func (m *Memory) Close() error { return nil }

// Stats snapshots the backend's I/O counters.
func (m *Memory) Stats() Stats { return m.stats.snapshot() }
