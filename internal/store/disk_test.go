package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// reopen closes d and opens the same directory again.
func reopen(t *testing.T, d *Disk) *Disk {
	t.Helper()
	dir := d.dir
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk(%s): %v", dir, err)
	}
	return nd
}

func TestDiskReopenRestoresEverything(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put("graphs", fmt.Sprintf("g%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete("graphs", "g1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("results", "r0", []byte("result")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Append([]byte(fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	d = reopen(t, d) // clean Close → sidecar index path
	defer d.Close()
	if _, err := os.Stat(filepath.Join(d.dir, idxName)); err != nil {
		t.Fatalf("sidecar index not written at Close: %v", err)
	}
	keys, _ := d.List("graphs")
	if fmt.Sprint(keys) != "[g0 g2 g3]" {
		t.Fatalf("graphs after reopen = %v, want [g0 g2 g3]", keys)
	}
	for _, k := range []string{"g0", "g2", "g3"} {
		got, err := d.Get("graphs", k)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", k, err)
		}
		if len(got) != 64 {
			t.Fatalf("Get(%s) = %d bytes, want 64", k, len(got))
		}
	}
	if _, err := d.Get("graphs", "g1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted blob resurfaced after reopen: %v", err)
	}
	recs, err := d.Journal()
	if err != nil || len(recs) != 3 {
		t.Fatalf("journal after reopen = %d records (%v), want 3", len(recs), err)
	}
	st := d.Stats()
	if st.RecoveredBlobs != 4 || st.RecoveredJournalRecords != 3 {
		t.Fatalf("recovery stats = %+v, want 4 blobs + 3 journal records", st)
	}
	if st.RecoveryTruncations != 0 {
		t.Fatalf("clean reopen counted %d truncations, want 0", st.RecoveryTruncations)
	}
}

// crash simulates a process dying without Close: the file handle is
// closed directly, leaving whatever sidecar (if any) a previous clean
// Close wrote — now stale.
func crash(t *testing.T, d *Disk) string {
	t.Helper()
	if err := d.f.Close(); err != nil {
		t.Fatal(err)
	}
	return d.dir
}

func TestDiskCrashWithoutCloseScansLog(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("g", "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	d = reopen(t, d) // writes a sidecar at size S
	if err := d.Put("g", "b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	dir := crash(t, d) // sidecar now stale (describes size S, log is larger)

	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	keys, _ := nd.List("g")
	if fmt.Sprint(keys) != "[a b]" {
		t.Fatalf("after crash-reopen List = %v, want [a b] (stale sidecar must be ignored)", keys)
	}
	if got, err := nd.Get("g", "b"); err != nil || string(got) != "two" {
		t.Fatalf("Get(b) = %q, %v", got, err)
	}
}

func TestDiskTornTailTruncated(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Put("g", fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := d.size
	dir := crash(t, d)

	// Simulate a crash mid-append: a frame header claiming a payload the
	// write never finished.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, frameHeaderSize+7)
	copy(torn, []byte{0x53, 0x50, 0x46, 0x52}) // valid magic ("SPFR")
	torn[4] = 200                              // claims a 200-byte payload; only 7 follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk over torn tail: %v", err)
	}
	defer nd.Close()
	if got := nd.Stats().RecoveryTruncations; got != 1 {
		t.Fatalf("RecoveryTruncations = %d, want 1", got)
	}
	if nd.size != goodSize {
		t.Fatalf("recovered size = %d, want %d (torn tail truncated)", nd.size, goodSize)
	}
	keys, _ := nd.List("g")
	if len(keys) != 3 {
		t.Fatalf("List after torn-tail recovery = %v, want 3 intact blobs", keys)
	}
	// The log is writable again and a further reopen is clean.
	if err := nd.Put("g", "k3", []byte("after")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	nd = reopen(t, nd)
	defer nd.Close()
	if got := nd.Stats().RecoveryTruncations; got != 0 {
		t.Fatalf("second reopen counted %d truncations, want 0", got)
	}
	if got, err := nd.Get("g", "k3"); err != nil || string(got) != "after" {
		t.Fatalf("Get(k3) = %q, %v", got, err)
	}
}

func TestDiskTornTailMidFrame(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("g", "keep", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("g", "lost", bytes.Repeat([]byte("y"), 500)); err != nil {
		t.Fatal(err)
	}
	truncAt := d.size - 5 // tear the last frame's final bytes off
	dir := crash(t, d)
	if err := os.Truncate(filepath.Join(dir, logName), truncAt); err != nil {
		t.Fatal(err)
	}

	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if got := nd.Stats().RecoveryTruncations; got != 1 {
		t.Fatalf("RecoveryTruncations = %d, want 1", got)
	}
	if got, err := nd.Get("g", "keep"); err != nil || string(got) != "intact" {
		t.Fatalf("intact prefix lost: Get(keep) = %q, %v", got, err)
	}
	if _, err := nd.Get("g", "lost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn blob must be gone, got %v", err)
	}
}

func TestDiskCorruptSidecarFallsBackToScan(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("g", "a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	d = reopen(t, d)
	dir := crash(t, d)
	if err := os.WriteFile(filepath.Join(dir, idxName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk with corrupt sidecar: %v", err)
	}
	defer nd.Close()
	if got, err := nd.Get("g", "a"); err != nil || string(got) != "data" {
		t.Fatalf("Get after corrupt-sidecar fallback = %q, %v", got, err)
	}
}

func TestDiskFailpoints(t *testing.T) {
	defer fault.DisarmAll()
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("g", "a", []byte("pre")); err != nil {
		t.Fatal(err)
	}

	fpDiskPut.Arm(fault.Spec{Kind: fault.KindError, Msg: "injected put"})
	if err := d.Put("g", "b", []byte("x")); !fault.IsInjected(err) {
		t.Fatalf("Put under store/disk/put: want injected error, got %v", err)
	}
	if err := d.Append([]byte("rec")); !fault.IsInjected(err) {
		t.Fatalf("Append under store/disk/put: want injected error, got %v", err)
	}
	fpDiskPut.Disarm()

	fpDiskGet.Arm(fault.Spec{Kind: fault.KindError, Msg: "injected get"})
	if _, err := d.Get("g", "a"); !fault.IsInjected(err) {
		t.Fatalf("Get under store/disk/get: want injected error, got %v", err)
	}
	if _, err := d.Journal(); !fault.IsInjected(err) {
		t.Fatalf("Journal under store/disk/get: want injected error, got %v", err)
	}
	fpDiskGet.Disarm()

	// A sync fault fails the mutation without advancing the committed
	// size: the index never learns of the blob, and the next successful
	// append overwrites the torn bytes.
	fpDiskSync.Arm(fault.Spec{Kind: fault.KindError, Msg: "injected sync"})
	if err := d.Put("g", "c", []byte("y")); !fault.IsInjected(err) {
		t.Fatalf("Put under store/disk/sync: want injected error, got %v", err)
	}
	fpDiskSync.Disarm()
	if _, err := d.Get("g", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blob committed despite failed sync: %v", err)
	}
	if err := d.Put("g", "c", []byte("y2")); err != nil {
		t.Fatalf("Put after sync fault cleared: %v", err)
	}
	if got, err := d.Get("g", "c"); err != nil || string(got) != "y2" {
		t.Fatalf("Get(c) = %q, %v", got, err)
	}
	if got, err := d.Get("g", "a"); err != nil || string(got) != "pre" {
		t.Fatalf("pre-fault blob damaged: %q, %v", got, err)
	}
}
