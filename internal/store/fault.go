package store

import "repro/internal/fault"

// The disk-backend failpoint catalog, in the style of the serve catalog
// (internal/serve/fault.go): every named injection site of the durable
// tier, declared in one place. Each site documents its observable
// failure semantics as seen from the serving stack above — the chaos
// suite (internal/serve/persist_test.go) asserts injected I/O faults
// surface as 503 backpressure or a degraded cache, never as 404 or
// daemon death.
//
// Sites are disarmed no-ops in production (one atomic load; see
// internal/fault). Arm them from tests via fault.Arm, or in a running
// daemon via the SPIDERSERVED_FAULTS environment DSL.
var (
	// store/disk/put: every durable write — blob puts, tombstones, and
	// journal appends. An error trip fails the mutation before any bytes
	// hit the log: an upload surfaces it as 503 (the graph is not
	// registered — clients retry), a result-cache store drops silently
	// (the result is still served), a job-journal append is counted and
	// the job still reaches its terminal status.
	fpDiskPut = fault.New("store/disk/put")

	// store/disk/get: every durable read — blob gets and journal
	// replays. An error trip fails the read; the result cache degrades
	// it to a miss (the job re-mines; never 404, never an error to the
	// client), and a recovery-time trip fails Open loudly rather than
	// serving a partial view.
	fpDiskGet = fault.New("store/disk/get")

	// store/disk/sync: the fsync after a framed append. An error trip
	// fails the mutation after the write but before the commit — the
	// committed size does not advance, so the torn bytes are invisible,
	// exactly like a crash mid-append. Surfaces like store/disk/put.
	fpDiskSync = fault.New("store/disk/sync")
)
