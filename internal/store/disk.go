package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Disk is the on-disk Backend: a single append-only segment log of
// CRC-framed records plus an in-memory index rebuilt at Open — from a
// sidecar index file when it matches the log, by a full recovery scan
// otherwise. Every mutation is one framed append followed by an fsync,
// so a crash can only lose (or tear) the record being written; the
// recovery scan truncates a torn tail at the first frame whose header,
// length, or checksum does not verify, restoring the longest valid
// prefix.
//
// Frame layout (all integers little-endian):
//
//	u32 magic "SPFR" | u32 payload length | u32 CRC-32C(payload) | payload
//
// Payload layout:
//
//	u8 op (1 blob-put, 2 blob-delete, 3 journal-append)
//	uvarint kind length | kind | uvarint key length | key   (empty for journal)
//	data
//
// Deletes are tombstone frames; space from overwritten and deleted
// blobs is not reclaimed (log compaction is out of scope — see the
// package comment of internal/serve for the serving-tier bounds that
// keep the live set small).
//
// A Disk must have a single owner: two processes opening the same
// directory corrupt each other (no lock file is taken).
type Disk struct {
	dir string

	mu   sync.Mutex // guards writes, size, and the index
	f    *os.File
	size int64 // committed log size; bytes past it are garbage

	kinds   map[string]*diskKind
	journal []frameRef

	stats backendStats
	buf   []byte // frame assembly scratch, reused across writes
}

type diskKind struct {
	refs  map[string]frameRef
	order []string
}

// frameRef locates one whole frame (header included) in the log.
type frameRef struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

const (
	logName = "store.log"
	idxName = "store.idx"

	frameMagic      = 0x52465053 // "SPFR" little-endian
	frameHeaderSize = 12
	// maxFramePayload bounds a single record; a header claiming more is
	// treated as torn/corrupt rather than attempted.
	maxFramePayload = 1 << 30

	opBlobPut    = 1
	opBlobDelete = 2
	opJournal    = 3
)

// castagnoli is the CRC-32C table; Castagnoli detects short bursts
// better than IEEE and is hardware-accelerated on common platforms.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpenDisk opens (creating if needed) the on-disk backend rooted at
// dir. If a sidecar index matching the log's exact size exists the
// index loads from it; otherwise the log is scanned from the start and
// a torn tail — a crash mid-append — is truncated away, counted in
// Stats.RecoveryTruncations.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{dir: dir, f: f, kinds: make(map[string]*diskKind)}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if !d.loadSidecar(fi.Size()) {
		if err := d.scan(fi.Size()); err != nil {
			f.Close()
			return nil, err
		}
	}
	var blobs uint64
	for _, k := range d.kinds {
		blobs += uint64(len(k.order))
	}
	d.stats.recoveredBlobs.Store(blobs)
	d.stats.recoveredJournal.Store(uint64(len(d.journal)))
	return d, nil
}

// sidecar is the JSON index written at Close: the committed log size it
// describes plus every live blob and journal frame. Any mismatch with
// the log on disk (missing file, unparseable, stale size) simply falls
// back to the recovery scan — the sidecar is a startup optimization,
// never a source of truth.
type sidecar struct {
	Version int                       `json:"version"`
	LogSize int64                     `json:"log_size"`
	Kinds   map[string][]sidecarEntry `json:"kinds"`
	Journal []frameRef                `json:"journal"`
}

type sidecarEntry struct {
	Key string   `json:"key"`
	Ref frameRef `json:"ref"`
}

// loadSidecar tries to restore the index from the sidecar; it reports
// success only when the sidecar exactly describes a log of logSize
// bytes (a crash after further appends leaves a stale sidecar, detected
// here by the size mismatch).
func (d *Disk) loadSidecar(logSize int64) bool {
	raw, err := os.ReadFile(filepath.Join(d.dir, idxName))
	if err != nil {
		return false
	}
	var sc sidecar
	if json.Unmarshal(raw, &sc) != nil || sc.Version != 1 || sc.LogSize != logSize {
		return false
	}
	for kind, entries := range sc.Kinds {
		k := &diskKind{refs: make(map[string]frameRef, len(entries))}
		for _, e := range entries {
			if e.Ref.Off < 0 || e.Ref.Len < frameHeaderSize || e.Ref.Off+e.Ref.Len > logSize {
				return false
			}
			k.refs[e.Key] = e.Ref
			k.order = append(k.order, e.Key)
		}
		d.kinds[kind] = k
	}
	for _, ref := range sc.Journal {
		if ref.Off < 0 || ref.Len < frameHeaderSize || ref.Off+ref.Len > logSize {
			d.kinds = make(map[string]*diskKind)
			d.journal = nil
			return false
		}
		d.journal = append(d.journal, ref)
	}
	d.size = logSize
	return true
}

// scan replays the log from the start, rebuilding the index, and
// truncates a torn tail: the first frame that fails to verify — short
// header, bad magic, impossible length, short payload, CRC mismatch —
// ends the valid prefix, and everything from there on is discarded.
func (d *Disk) scan(logSize int64) error {
	var off int64
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	for off+frameHeaderSize <= logSize {
		if _, err := d.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: scan %s: %w", d.dir, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
			break
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if plen > maxFramePayload || off+frameHeaderSize+plen > logSize {
			break
		}
		if int64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := d.f.ReadAt(payload, off+frameHeaderSize); err != nil {
			return fmt.Errorf("store: scan %s: %w", d.dir, err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[8:12]) {
			break
		}
		ref := frameRef{Off: off, Len: frameHeaderSize + plen}
		op, kind, key, _, err := parsePayload(payload)
		if err != nil {
			break
		}
		d.applyScanned(op, kind, key, ref)
		off += ref.Len
	}
	if off < logSize {
		if err := d.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", d.dir, err)
		}
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", d.dir, err)
		}
		d.stats.recoveryTruncations.Add(1)
	}
	d.size = off
	return nil
}

// applyScanned replays one verified frame into the index.
func (d *Disk) applyScanned(op byte, kind, key string, ref frameRef) {
	switch op {
	case opBlobPut:
		k := d.kindLocked(kind)
		if _, existed := k.refs[key]; !existed {
			k.order = append(k.order, key)
		}
		k.refs[key] = ref
	case opBlobDelete:
		if k, ok := d.kinds[kind]; ok {
			if _, existed := k.refs[key]; existed {
				delete(k.refs, key)
				for i, id := range k.order {
					if id == key {
						k.order = append(k.order[:i], k.order[i+1:]...)
						break
					}
				}
			}
		}
	case opJournal:
		d.journal = append(d.journal, ref)
	}
}

func (d *Disk) kindLocked(name string) *diskKind {
	k, ok := d.kinds[name]
	if !ok {
		k = &diskKind{refs: make(map[string]frameRef)}
		d.kinds[name] = k
	}
	return k
}

// buildPayload assembles op | kind | key | data into d.buf (after the
// frame header, which appendFrame fills in); callers hold d.mu.
func (d *Disk) buildPayload(op byte, kind, key string, data []byte) []byte {
	buf := d.buf[:0]
	buf = append(buf, make([]byte, frameHeaderSize)...) // header placeholder
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(kind)))
	buf = append(buf, kind...)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = append(buf, data...)
	d.buf = buf
	return buf
}

// parsePayload is buildPayload's inverse.
func parsePayload(p []byte) (op byte, kind, key string, data []byte, err error) {
	if len(p) < 1 {
		return 0, "", "", nil, errors.New("store: empty frame payload")
	}
	op, p = p[0], p[1:]
	readStr := func() (string, bool) {
		n, w := binary.Uvarint(p)
		if w <= 0 || n > uint64(len(p)-w) {
			return "", false
		}
		s := string(p[w : w+int(n)])
		p = p[w+int(n):]
		return s, true
	}
	var ok bool
	if kind, ok = readStr(); !ok {
		return 0, "", "", nil, errors.New("store: truncated frame payload (kind)")
	}
	if key, ok = readStr(); !ok {
		return 0, "", "", nil, errors.New("store: truncated frame payload (key)")
	}
	return op, kind, key, p, nil
}

// appendFrame frames the payload sitting in frame[frameHeaderSize:],
// writes it at the committed tail, and fsyncs. Only after a successful
// sync does the committed size advance — a failed or torn write leaves
// garbage past d.size that the next append overwrites (and that a
// post-crash recovery scan truncates). Callers hold d.mu.
func (d *Disk) appendFrame(frame []byte) (frameRef, error) {
	payload := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:4], frameMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, castagnoli))
	if _, err := d.f.WriteAt(frame, d.size); err != nil {
		return frameRef{}, err
	}
	if err := d.fsync(); err != nil {
		return frameRef{}, err
	}
	ref := frameRef{Off: d.size, Len: int64(len(frame))}
	d.size += ref.Len
	d.stats.bytesWritten.Add(uint64(ref.Len))
	return ref, nil
}

// fsync flushes the log, counting the sync; the store/disk/sync
// failpoint injects sync-layer failures here.
func (d *Disk) fsync() error {
	if err := fpDiskSync.Hit(); err != nil {
		return err
	}
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.stats.fsyncs.Add(1)
	return nil
}

// Put durably stores data under (kind, key): one framed append + fsync.
func (d *Disk) Put(kind, key string, data []byte) error {
	if err := fpDiskPut.Hit(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ref, err := d.appendFrame(d.buildPayload(opBlobPut, kind, key, data))
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	k := d.kindLocked(kind)
	if _, existed := k.refs[key]; !existed {
		k.order = append(k.order, key)
	}
	k.refs[key] = ref
	d.stats.puts.Add(1)
	return nil
}

// Get reads the blob under (kind, key), re-verifying the frame's CRC on
// every read — a blob that rots on disk surfaces as an I/O error, never
// as silently wrong bytes.
func (d *Disk) Get(kind, key string) ([]byte, error) {
	if err := fpDiskGet.Hit(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	var (
		ref frameRef
		ok  bool
	)
	if k, has := d.kinds[kind]; has {
		ref, ok = k.refs[key]
	}
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	_, _, _, data, err := d.readFrame(ref)
	if err != nil {
		return nil, fmt.Errorf("store: get %s/%s: %w", kind, key, err)
	}
	return data, nil
}

// readFrame reads and verifies one whole frame. The returned data slice
// is freshly allocated and owned by the caller.
func (d *Disk) readFrame(ref frameRef) (op byte, kind, key string, data []byte, err error) {
	frame := make([]byte, ref.Len)
	if _, err := d.f.ReadAt(frame, ref.Off); err != nil {
		return 0, "", "", nil, err
	}
	if binary.LittleEndian.Uint32(frame[0:4]) != frameMagic {
		return 0, "", "", nil, errors.New("bad frame magic")
	}
	payload := frame[frameHeaderSize:]
	if int64(binary.LittleEndian.Uint32(frame[4:8])) != int64(len(payload)) {
		return 0, "", "", nil, errors.New("frame length mismatch")
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[8:12]) {
		return 0, "", "", nil, errors.New("frame CRC mismatch")
	}
	d.stats.bytesRead.Add(uint64(ref.Len))
	d.stats.gets.Add(1)
	return parsePayload(payload)
}

// List returns the keys of a kind in first-Put order.
func (d *Disk) List(kind string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := d.kinds[kind]
	if !ok {
		return nil, nil
	}
	return append([]string(nil), k.order...), nil
}

// Delete appends a tombstone frame and drops the blob from the index.
func (d *Disk) Delete(kind, key string) error {
	if err := fpDiskPut.Hit(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := d.kinds[kind]
	if !ok {
		return nil
	}
	if _, existed := k.refs[key]; !existed {
		return nil
	}
	if _, err := d.appendFrame(d.buildPayload(opBlobDelete, kind, key, nil)); err != nil {
		return fmt.Errorf("store: delete %s/%s: %w", kind, key, err)
	}
	delete(k.refs, key)
	for i, id := range k.order {
		if id == key {
			k.order = append(k.order[:i], k.order[i+1:]...)
			break
		}
	}
	d.stats.deletes.Add(1)
	return nil
}

// Append durably adds one record to the metadata journal.
func (d *Disk) Append(rec []byte) error {
	if err := fpDiskPut.Hit(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ref, err := d.appendFrame(d.buildPayload(opJournal, "", "", rec))
	if err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	d.journal = append(d.journal, ref)
	d.stats.appends.Add(1)
	return nil
}

// Journal reads back every journal record in append order.
func (d *Disk) Journal() ([][]byte, error) {
	if err := fpDiskGet.Hit(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	refs := append([]frameRef(nil), d.journal...)
	d.mu.Unlock()
	out := make([][]byte, 0, len(refs))
	for _, ref := range refs {
		_, _, _, data, err := d.readFrame(ref)
		if err != nil {
			return nil, fmt.Errorf("store: journal read: %w", err)
		}
		out = append(out, data)
	}
	return out, nil
}

// Sync fsyncs the log.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fsync()
}

// Close writes the sidecar index (so the next Open skips the recovery
// scan) and closes the log. The sidecar is written to a temp file and
// renamed into place: a crash mid-Close leaves either the old sidecar
// (stale size → rescan) or the new one, never a half-written index that
// parses.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sc := sidecar{Version: 1, LogSize: d.size, Kinds: make(map[string][]sidecarEntry, len(d.kinds))}
	for name, k := range d.kinds {
		entries := make([]sidecarEntry, 0, len(k.order))
		for _, key := range k.order {
			entries = append(entries, sidecarEntry{Key: key, Ref: k.refs[key]})
		}
		sc.Kinds[name] = entries
	}
	sc.Journal = d.journal
	raw, err := json.Marshal(sc)
	if err == nil {
		tmp := filepath.Join(d.dir, idxName+".tmp")
		if werr := os.WriteFile(tmp, raw, 0o644); werr == nil {
			err = os.Rename(tmp, filepath.Join(d.dir, idxName))
		} else {
			err = werr
		}
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: close %s: %w", d.dir, err)
	}
	return nil
}

// Stats snapshots the backend's I/O counters.
func (d *Disk) Stats() Stats { return d.stats.snapshot() }
