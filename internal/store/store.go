// Package store is the durable tier under the serving stack: a
// content-addressed blob store plus a small append-only metadata
// journal, behind one Backend interface with two implementations —
// Memory (the serving layer's original in-process maps, still the
// default) and Disk (a pure-Go append-only CRC-framed segment log with
// a sidecar index and a torn-tail-truncating recovery scan).
//
// The split mirrors the design argument of the LSST multi-petabyte
// database and provenance-based data skipping (see PAPERS.md): keep a
// durable, content-addressed storage tier separate from the serving
// tier, so computed artifacts — uploaded host graphs, mined results,
// terminal job records — survive restarts and equivalent requests never
// recompute.
//
// Keys are opaque strings chosen by the caller; the serving layer uses
// content fingerprints (internal/serve.FingerprintGraph), which is what
// makes the store content-addressed: a blob's key is a collision-
// resistant function of its content, so re-verifying the fingerprint on
// load detects corruption end to end.
//
// Like internal/obs, the package has zero dependencies outside the
// standard library (and internal/fault for chaos injection sites).
package store

import "errors"

// ErrNotFound reports a blob lookup miss: no blob is stored under that
// (kind, key). Backends wrap it with the kind and key; any other Get
// error is an I/O failure — the blob may well exist, so callers must
// treat it as retryable, never as "not found".
var ErrNotFound = errors.New("store: not found")

// Backend is the durable tier's contract. Implementations must be safe
// for concurrent use.
//
// Durability semantics: a nil-error return from Put, Delete, or Append
// means the mutation is durable to the backend's medium (the Disk
// backend fsyncs every mutation before returning; Memory is durable to
// process memory only). Slices passed to Put and Append are copied (or
// written out) before return and may be reused by the caller; slices
// returned by Get and Journal are owned by the caller but must be
// treated as read-only if the backend shares them (Memory does).
type Backend interface {
	// Put stores data under (kind, key), overwriting any previous blob.
	Put(kind, key string, data []byte) error
	// Get returns the blob stored under (kind, key). A miss returns an
	// error wrapping ErrNotFound; any other error is an I/O failure.
	Get(kind, key string) ([]byte, error)
	// List returns the keys of a kind in first-Put order (an overwrite
	// keeps the original position; a Delete followed by a Put re-adds at
	// the end).
	List(kind string) ([]string, error)
	// Delete removes the blob under (kind, key); deleting an absent key
	// is a no-op.
	Delete(kind, key string) error
	// Append adds one record to the metadata journal.
	Append(rec []byte) error
	// Journal returns every journal record in append order.
	Journal() ([][]byte, error)
	// Sync flushes buffered state to the backend's medium. Backends that
	// sync on every mutation (Disk) make it a no-op beyond the flush.
	Sync() error
	// Close releases the backend's resources. The Disk backend also
	// writes its sidecar index so the next Open skips the recovery scan.
	Close() error
	// Stats snapshots the backend's I/O counters.
	Stats() Stats
}

// Stats is a point-in-time snapshot of a backend's I/O counters. All
// fields are monotonic over the backend's lifetime except the Recovered*
// pair, which is set once by the opening recovery scan. The serving
// layer exposes them as spiderserved_store_disk_* metric families
// (reported by every backend so the metrics schema is backend-
// independent; Memory simply never fsyncs or truncates).
type Stats struct {
	// Puts / Gets / Deletes / JournalAppends count successful operations.
	Puts           uint64 `json:"puts"`
	Gets           uint64 `json:"gets"`
	Deletes        uint64 `json:"deletes"`
	JournalAppends uint64 `json:"journal_appends"`
	// FilePuts counts whole-file artifacts written through the optional
	// FileBackend capability (Disk only).
	FilePuts uint64 `json:"file_puts"`
	// BytesWritten / BytesRead count payload traffic to and from the
	// medium (for Disk: framed log bytes; for Memory: blob bytes).
	BytesWritten uint64 `json:"bytes_written"`
	BytesRead    uint64 `json:"bytes_read"`
	// Fsyncs counts file syncs (Disk only).
	Fsyncs uint64 `json:"fsyncs"`
	// RecoveryTruncations counts torn log tails truncated by the opening
	// recovery scan (Disk only): each is one crash caught mid-write.
	RecoveryTruncations uint64 `json:"recovery_truncations"`
	// RecoveredBlobs / RecoveredJournalRecords report what the opening
	// scan (or sidecar index load) restored.
	RecoveredBlobs          uint64 `json:"recovered_blobs"`
	RecoveredJournalRecords uint64 `json:"recovered_journal_records"`
}
