package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// backends returns one fresh instance of every Backend implementation,
// so the contract tests below run identically against both.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return map[string]Backend{"memory": NewMemory(), "disk": d}
}

func TestBackendBlobRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Get("g", "a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store: want ErrNotFound, got %v", err)
			}
			blobs := map[string][]byte{
				"a": []byte("alpha"),
				"b": {},
				"c": bytes.Repeat([]byte{0xde, 0xad}, 1000),
			}
			for _, k := range []string{"a", "b", "c"} {
				if err := b.Put("g", k, blobs[k]); err != nil {
					t.Fatalf("Put(%q): %v", k, err)
				}
			}
			for k, want := range blobs {
				got, err := b.Get("g", k)
				if err != nil {
					t.Fatalf("Get(%q): %v", k, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("Get(%q) = %d bytes, want %d", k, len(got), len(want))
				}
			}
			// Kinds are namespaces: the same key in another kind is absent.
			if _, err := b.Get("other", "a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get in wrong kind: want ErrNotFound, got %v", err)
			}
		})
	}
}

func TestBackendListOrderAndOverwrite(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"x", "y", "z"} {
				if err := b.Put("g", k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			// Overwriting keeps the original position; the new bytes win.
			if err := b.Put("g", "x", []byte("x2")); err != nil {
				t.Fatal(err)
			}
			keys, err := b.List("g")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(keys) != "[x y z]" {
				t.Fatalf("List = %v, want [x y z]", keys)
			}
			got, err := b.Get("g", "x")
			if err != nil || string(got) != "x2" {
				t.Fatalf("Get after overwrite = %q, %v; want \"x2\"", got, err)
			}
			if keys, _ := b.List("missing"); len(keys) != 0 {
				t.Fatalf("List of unknown kind = %v, want empty", keys)
			}
		})
	}
}

func TestBackendDelete(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"x", "y", "z"} {
				if err := b.Put("g", k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Delete("g", "y"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("g", "y"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: want ErrNotFound, got %v", err)
			}
			keys, _ := b.List("g")
			if fmt.Sprint(keys) != "[x z]" {
				t.Fatalf("List after Delete = %v, want [x z]", keys)
			}
			// Deleting an absent key (and an absent kind) is a no-op.
			if err := b.Delete("g", "y"); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("nope", "y"); err != nil {
				t.Fatal(err)
			}
			// Re-Put after Delete re-adds at the end.
			if err := b.Put("g", "y", []byte("y2")); err != nil {
				t.Fatal(err)
			}
			keys, _ = b.List("g")
			if fmt.Sprint(keys) != "[x z y]" {
				t.Fatalf("List after re-Put = %v, want [x z y]", keys)
			}
		})
	}
}

func TestBackendJournal(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			recs, err := b.Journal()
			if err != nil || len(recs) != 0 {
				t.Fatalf("empty journal: %v, %v", recs, err)
			}
			for i := 0; i < 5; i++ {
				if err := b.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			recs, err = b.Journal()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 5 {
				t.Fatalf("Journal returned %d records, want 5", len(recs))
			}
			for i, r := range recs {
				if want := fmt.Sprintf("rec-%d", i); string(r) != want {
					t.Fatalf("record %d = %q, want %q", i, r, want)
				}
			}
			if err := b.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
		})
	}
}

func TestBackendStatsCount(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Put("g", "k", []byte("data")); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("g", "k"); err != nil {
				t.Fatal(err)
			}
			if err := b.Append([]byte("rec")); err != nil {
				t.Fatal(err)
			}
			st := b.Stats()
			if st.Puts != 1 || st.Gets != 1 || st.JournalAppends != 1 {
				t.Fatalf("Stats = %+v, want puts/gets/appends = 1", st)
			}
			if st.BytesWritten == 0 || st.BytesRead == 0 {
				t.Fatalf("Stats = %+v, want nonzero byte counters", st)
			}
		})
	}
}
