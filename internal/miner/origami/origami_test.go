package origami

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/txdb"
)

func smallDB() *txdb.DB {
	// 4 graphs each containing the path 1-2-3 plus unique noise.
	var gs []*graph.Graph
	for i := 0; i < 4; i++ {
		b := graph.NewBuilder(5, 4)
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		n := b.AddVertex(graph.Label(10 + i))
		b.AddEdge(v1, n)
		gs = append(gs, b.Build())
	}
	return txdb.New(gs...)
}

func TestOrigamiFindsSharedPattern(t *testing.T) {
	db := smallDB()
	res := Mine(db, Config{MinSupport: 4, Samples: 20, Seed: 1})
	if len(res) == 0 {
		t.Fatal("no representatives")
	}
	// The shared 1-2-3 path (support 4) must be representable; every
	// result must meet σ.
	for _, r := range res {
		if r.Support < 4 {
			t.Fatalf("infrequent representative: %d", r.Support)
		}
	}
	best := res[0]
	if best.P.Size() < 2 {
		t.Fatalf("maximal walk should reach the full shared path, got %d edges", best.P.Size())
	}
}

func TestOrigamiDeterministicPerSeed(t *testing.T) {
	db := smallDB()
	a := Mine(db, Config{MinSupport: 4, Samples: 10, Seed: 7})
	b := Mine(db, Config{MinSupport: 4, Samples: 10, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("same seed, different result count")
	}
	for i := range a {
		if a[i].P.Size() != b[i].P.Size() || a[i].Support != b[i].Support {
			t.Fatal("same seed, different results")
		}
	}
}

func TestOrigamiAlphaOrthogonal(t *testing.T) {
	db := smallDB()
	res := Mine(db, Config{MinSupport: 4, Samples: 30, Alpha: 0.3, Seed: 2})
	for i := 0; i < len(res); i++ {
		for j := i + 1; j < len(res); j++ {
			if s := Similarity(res[i].P.G, res[j].P.G); s > 0.3 {
				t.Fatalf("representatives %d and %d have similarity %f > α", i, j, s)
			}
		}
	}
}

func TestOrigamiBeta(t *testing.T) {
	db := smallDB()
	res := Mine(db, Config{MinSupport: 4, Samples: 30, Beta: 1, Seed: 3})
	if len(res) > 1 {
		t.Fatalf("β=1 violated: %d representatives", len(res))
	}
}

func TestSimilarity(t *testing.T) {
	a := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	if s := Similarity(a, a); s != 1 {
		t.Fatalf("self-similarity %f", s)
	}
	b := graph.FromEdges([]graph.Label{3, 4}, []graph.Edge{{U: 0, W: 1}})
	if s := Similarity(a, b); s != 0 {
		t.Fatalf("disjoint similarity %f", s)
	}
}

// TestOrigamiSmallPatternBias reproduces the Fig. 15 mechanism: with many
// small maximal patterns, random walks rarely reach large patterns.
func TestOrigamiSmallPatternBias(t *testing.T) {
	db, _ := txdb.SyntheticTx(txdb.SyntheticTxConfig{
		NumGraphs: 4, N: 60, AvgDeg: 4, NumLabels: 30,
		Large: gen.InjectSpec{NV: 15, Count: 1, Support: 1},
		Small: gen.InjectSpec{NV: 4, Count: 20, Support: 1},
		Seed:  5,
	})
	res := Mine(db, Config{MinSupport: 3, Samples: 8, Seed: 5, MaxEdges: 25, MaxEmbPerPattern: 64})
	if len(res) == 0 {
		t.Skip("nothing frequent at this seed")
	}
	small := 0
	for _, r := range res {
		if r.P.NV() <= 8 {
			small++
		}
	}
	if small == 0 {
		t.Fatal("expected a small-pattern-heavy representative set")
	}
}
