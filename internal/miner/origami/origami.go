// Package origami implements an ORIGAMI-style representative-pattern miner
// for the graph-transaction setting (Hasan et al., ICDM 2007): randomized
// walks sample maximal frequent patterns, then an α-orthogonal selection
// keeps a pairwise-dissimilar representative subset.
//
// As its authors note — and Figure 15 of the SpiderMine paper exploits —
// the random walks terminate at the *first* maximal pattern they hit, so
// with many small maximal patterns in the data the sample leans heavily
// toward small patterns and misses the large ones.
package origami

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/support"
	"repro/internal/txdb"
)

// Config parameterizes the miner.
type Config struct {
	// MinSupport is σ in transaction terms (# containing graphs).
	MinSupport int
	// Samples is the number of random maximal-pattern walks (default 100).
	Samples int
	// Alpha is the orthogonality threshold: kept patterns have pairwise
	// similarity <= Alpha (default 0.5).
	Alpha float64
	// Beta is the representativeness target size (default 20): selection
	// stops after Beta representatives.
	Beta int
	// Seed drives the randomized walks.
	Seed int64
	// MaxEmbPerPattern caps embedding bookkeeping (default 256).
	MaxEmbPerPattern int
	// MaxEdges safety-caps walk length (default 200).
	MaxEdges int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.Samples <= 0 {
		c.Samples = 100
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Beta <= 0 {
		c.Beta = 20
	}
	if c.MaxEmbPerPattern <= 0 {
		c.MaxEmbPerPattern = 256
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 200
	}
	return c
}

// Result is one representative maximal pattern.
type Result struct {
	P       *pattern.Pattern
	Support int // transaction support
}

// Mine samples maximal patterns from the database and returns the
// α-orthogonal representative set, largest-first.
func Mine(db *txdb.DB, cfg Config) []Result {
	out, _ := MineContext(context.Background(), db, cfg)
	return out
}

// MineContext is Mine with cooperative cancellation, observed between
// sampling walks: a cancelled run selects representatives from the walks
// that completed and returns them with ctx.Err().
func MineContext(ctx context.Context, db *txdb.DB, cfg Config) ([]Result, error) {
	union, txOf := db.Union()
	supFn := func(embs []pattern.Embedding) int {
		return support.TransactionSupport(embs, txOf)
	}
	return mineOn(ctx, union, supFn, cfg)
}

// MineGraph runs the ORIGAMI sampler in the single-graph setting: walks
// sample maximal frequent patterns of g directly, and support is the raw
// distinct-embedding count (the transaction measure degenerates to 0/1 on
// one graph).
func MineGraph(g *graph.Graph, cfg Config) []Result {
	out, _ := MineGraphContext(context.Background(), g, cfg)
	return out
}

// MineGraphContext is MineGraph with cooperative cancellation, under the
// same partial-result contract as MineContext.
func MineGraphContext(ctx context.Context, g *graph.Graph, cfg Config) ([]Result, error) {
	supFn := func(embs []pattern.Embedding) int { return len(embs) }
	return mineOn(ctx, g, supFn, cfg)
}

// mineOn is the sampler core shared by the transaction and single-graph
// settings: union is the graph the walks explore, supFn the σ-comparable
// support of an embedding list.
func mineOn(ctx context.Context, union *graph.Graph, supFn func([]pattern.Embedding) int, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	lim := miner.Limits{MaxEmbPerPattern: cfg.MaxEmbPerPattern}
	var ctxErr error

	seeds := miner.SingleEdgeSeeds(union, cfg.MinSupport, lim, supFn)
	if len(seeds) == 0 {
		return nil, ctx.Err()
	}

	var maximal []*pattern.Pattern
	for s := 0; s < cfg.Samples; s++ {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		p := seeds[rng.Intn(len(seeds))]
		// Random walk: pick uniformly among frequent one-edge extensions
		// until none remain (a maximal frequent pattern). The per-step
		// check matters for cancellation latency: one Extensions call on a
		// large pattern costs far more than a whole small walk, so a walk
		// cut short mid-flight still enters the sample (not maximal, but
		// frequent — and deterministic for a fixed cancellation boundary).
		cur := pattern.New(p.G, append([]pattern.Embedding(nil), p.Emb...))
		for cur.Size() < cfg.MaxEdges && ctx.Err() == nil {
			exts := miner.Extensions(union, cur, cfg.MinSupport, lim, supFn)
			if len(exts) == 0 {
				break
			}
			cur = exts[rng.Intn(len(exts))]
		}
		maximal = append(maximal, cur)
	}
	maximal = miner.DedupeStructures(maximal)

	// α-orthogonal selection, scanning largest-first so representatives
	// favor maximal coverage of the size spectrum.
	sort.SliceStable(maximal, func(i, j int) bool { return maximal[i].Size() > maximal[j].Size() })
	var chosen []*pattern.Pattern
	for _, p := range maximal {
		ok := true
		for _, q := range chosen {
			if Similarity(p.G, q.G) > cfg.Alpha {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, p)
			if len(chosen) >= cfg.Beta {
				break
			}
		}
	}
	out := make([]Result, 0, len(chosen))
	for _, p := range chosen {
		out = append(out, Result{P: p, Support: supFn(p.Emb)})
	}
	return out, ctxErr
}

// Similarity is the Jaccard similarity of the two graphs' labeled-edge
// multisets (the feature-vector similarity ORIGAMI uses, on the cheapest
// informative feature: edges typed by endpoint labels).
func Similarity(a, b *graph.Graph) float64 {
	fa := edgeFeatures(a)
	fb := edgeFeatures(b)
	inter, union := 0, 0
	for k, ca := range fa {
		cb := fb[k]
		if ca < cb {
			inter += ca
			union += cb
		} else {
			inter += cb
			union += ca
		}
	}
	for k, cb := range fb {
		if _, ok := fa[k]; !ok {
			union += cb
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func edgeFeatures(g *graph.Graph) map[[2]graph.Label]int {
	out := make(map[[2]graph.Label]int)
	for _, e := range g.Edges() {
		la, lb := g.Label(e.U), g.Label(e.W)
		if la > lb {
			la, lb = lb, la
		}
		out[[2]graph.Label{la, lb}]++
	}
	return out
}
