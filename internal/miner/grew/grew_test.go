package grew

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// motifForest builds k copies of a labeled path 1-2-3-4 plus isolated
// noise vertices.
func motifForest(k int) *graph.Graph {
	b := graph.NewBuilder(5*k, 3*k)
	for i := 0; i < k; i++ {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		v4 := b.AddVertex(4)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v3, v4)
		b.AddVertex(graph.Label(100 + i)) // isolated noise
	}
	return b.Build()
}

func TestGrewContractsRepeatedMotif(t *testing.T) {
	g := motifForest(5)
	res := Mine(g, Config{MinSupport: 3})
	if len(res) == 0 {
		t.Fatal("no patterns")
	}
	best := res[0]
	if best.P.Size() < 2 {
		t.Fatalf("best pattern only %d edges; contraction did not cascade", best.P.Size())
	}
	if best.Instances < 3 {
		t.Fatalf("instances %d < σ", best.Instances)
	}
	// Instances must be vertex-disjoint.
	seen := map[graph.V]bool{}
	for _, e := range best.P.Emb {
		for _, hv := range e {
			if seen[hv] {
				t.Fatal("instances share a vertex")
			}
			seen[hv] = true
		}
	}
}

func TestGrewEmbeddingsValid(t *testing.T) {
	g := motifForest(4)
	for _, r := range Mine(g, Config{MinSupport: 2}) {
		for _, e := range r.P.Emb {
			for v := 0; v < r.P.NV(); v++ {
				if g.Label(e[v]) != r.P.G.Label(graph.V(v)) {
					t.Fatal("label mismatch in instance")
				}
			}
			for _, pe := range r.P.G.Edges() {
				if !g.HasEdge(e[pe.U], e[pe.W]) {
					t.Fatal("instance edge missing in host")
				}
			}
		}
	}
}

func TestGrewRespectsSupport(t *testing.T) {
	g := motifForest(2)
	for _, r := range Mine(g, Config{MinSupport: 3}) {
		if r.Instances < 3 {
			t.Fatalf("pattern with %d instances returned at σ=3", r.Instances)
		}
	}
}

func TestGrewMaxPatternVertices(t *testing.T) {
	g := motifForest(5)
	for _, r := range Mine(g, Config{MinSupport: 2, MaxPatternVertices: 2}) {
		if r.P.NV() > 2 {
			t.Fatalf("size cap violated: %d vertices", r.P.NV())
		}
	}
}

func TestGrewFindsLargePatternsQuickly(t *testing.T) {
	// The paper's characterization: GREW can discover some large patterns
	// quickly (but with no completeness guarantee). On GID-1-like data it
	// should terminate fast and find something beyond single edges.
	g, _ := gen.Synthetic(gen.GIDConfig(1, 3))
	res := Mine(g, Config{MinSupport: 2})
	if len(res) == 0 {
		t.Skip("nothing contracted on this seed")
	}
	if res[0].P.Size() < 2 {
		t.Fatalf("GREW found only single edges (best %d)", res[0].P.Size())
	}
}

func TestGrewEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	if res := Mine(b.Build(), Config{}); len(res) != 0 {
		t.Fatal("patterns from empty graph")
	}
}
