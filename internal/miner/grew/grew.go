// Package grew implements a GREW-style heuristic miner (Kuramochi &
// Karypis, ICDM 2004): maintain a set of vertex-disjoint pattern
// instances (initially one per vertex), and repeatedly contract frequent
// connection types — pairs of instance kinds joined by a host edge —
// merging connected instances into larger ones. GREW finds some large
// patterns quickly but, as the paper stresses, offers no guarantee
// relative to the complete pattern set, and admits only vertex-disjoint
// embeddings.
package grew

import (
	"context"
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Config parameterizes the miner.
type Config struct {
	// MinSupport is the minimum number of disjoint instance pairs for a
	// connection type to be contracted (σ; default 2).
	MinSupport int
	// MaxIterations caps merge rounds (default 16).
	MaxIterations int
	// MaxPatternVertices stops merging instances beyond this size
	// (default 256).
	MaxPatternVertices int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 16
	}
	if c.MaxPatternVertices <= 0 {
		c.MaxPatternVertices = 256
	}
	return c
}

// Result is one discovered pattern with its vertex-disjoint instances.
type Result struct {
	P         *pattern.Pattern
	Instances int
}

// instance is one vertex-disjoint occurrence of a pattern kind.
type instance struct {
	vertices []graph.V
	kind     uint64 // isomorphism-invariant hash of the induced-by-instance subgraph
}

// Mine runs the iterative contraction and returns the discovered patterns
// (kinds with >= σ instances), largest-first.
func Mine(g *graph.Graph, cfg Config) []Result {
	out, _ := MineContext(context.Background(), g, cfg)
	return out
}

// MineContext is Mine with cooperative cancellation, observed between
// contraction rounds. The instance partition is consistent at every round
// boundary, so a cancelled run harvests the patterns of the rounds that
// completed — a deterministic partial result for a cancellation observed
// at a given round — and returns them with ctx.Err().
func MineContext(ctx context.Context, g *graph.Graph, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	var ctxErr error

	owner := make([]int, g.N()) // vertex -> instance index
	instances := make([]*instance, g.N())
	for v := 0; v < g.N(); v++ {
		owner[v] = v
		instances[v] = &instance{vertices: []graph.V{graph.V(v)}, kind: labelKind(g.Label(graph.V(v)))}
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		// Count connection types between distinct instances.
		type connKey struct{ a, b uint64 }
		conns := make(map[connKey][]graph.Edge)
		for _, e := range g.Edges() {
			ia, ib := owner[e.U], owner[e.W]
			if ia == ib {
				continue
			}
			ka, kb := instances[ia].kind, instances[ib].kind
			ck := connKey{ka, kb}
			if ka > kb {
				ck = connKey{kb, ka}
			}
			conns[ck] = append(conns[ck], e)
		}
		// Order connection types by decreasing frequency (then key) and
		// contract greedily; each instance participates in at most one
		// merge per round (vertex-disjointness).
		keys := make([]connKey, 0, len(conns))
		for k := range conns {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if len(conns[keys[i]]) != len(conns[keys[j]]) {
				return len(conns[keys[i]]) > len(conns[keys[j]])
			}
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		mergedAny := false
		usedInstance := make(map[int]bool)
		for _, ck := range keys {
			edges := conns[ck]
			// Count disjoint pairs first.
			var pairs []graph.Edge
			seen := make(map[int]bool)
			for _, e := range edges {
				ia, ib := owner[e.U], owner[e.W]
				if seen[ia] || seen[ib] || usedInstance[ia] || usedInstance[ib] {
					continue
				}
				if len(instances[ia].vertices)+len(instances[ib].vertices) > cfg.MaxPatternVertices {
					continue
				}
				seen[ia] = true
				seen[ib] = true
				pairs = append(pairs, e)
			}
			if len(pairs) < cfg.MinSupport {
				continue
			}
			// Contract every pair.
			for _, e := range pairs {
				ia, ib := owner[e.U], owner[e.W]
				usedInstance[ia] = true
				usedInstance[ib] = true
				ni := &instance{
					vertices: append(append([]graph.V(nil), instances[ia].vertices...), instances[ib].vertices...),
				}
				sub, _ := g.Induced(ni.vertices)
				ni.kind = canon.Invariant(sub)
				instances = append(instances, ni)
				id := len(instances) - 1
				for _, v := range ni.vertices {
					owner[v] = id
				}
				mergedAny = true
			}
		}
		if !mergedAny {
			break
		}
	}

	// Collect surviving kinds: group live instances by kind, verify with
	// exact isomorphism, report kinds with >= σ instances.
	live := make(map[int]*instance)
	for v := 0; v < g.N(); v++ {
		live[owner[v]] = instances[owner[v]]
	}
	byKind := make(map[uint64][]*instance)
	for _, ins := range live {
		if len(ins.vertices) < 2 {
			continue
		}
		byKind[ins.kind] = append(byKind[ins.kind], ins)
	}
	var out []Result
	for _, group := range byKind {
		if len(group) < cfg.MinSupport {
			continue
		}
		// Build the representative pattern and re-express instances as
		// embeddings via isomorphism mapping (skipping hash collisions).
		sort.Slice(group, func(i, j int) bool { return group[i].vertices[0] < group[j].vertices[0] })
		repr, reprVerts := g.Induced(group[0].vertices)
		embs := []pattern.Embedding{pattern.Embedding(reprVerts)}
		for _, ins := range group[1:] {
			sub, verts := g.Induced(ins.vertices)
			mapping := canon.IsomorphismMapping(sub, repr)
			if mapping == nil {
				continue
			}
			emb := make(pattern.Embedding, len(verts))
			for sv, rv := range mapping {
				emb[rv] = verts[sv]
			}
			embs = append(embs, emb)
		}
		if len(embs) < cfg.MinSupport {
			continue
		}
		out = append(out, Result{P: pattern.New(repr, embs), Instances: len(embs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P.Size() != out[j].P.Size() {
			return out[i].P.Size() > out[j].P.Size()
		}
		return out[i].Instances > out[j].Instances
	})
	return out, ctxErr
}

func labelKind(l graph.Label) uint64 {
	// disjoint from subgraph invariants with overwhelming probability
	return 0x9e3779b97f4a7c15 ^ uint64(l)*0xbf58476d1ce4e5b9
}
