package moss

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/support"
)

// twoTriangles: two disjoint labeled triangles.
func twoTriangles() *graph.Graph {
	b := graph.NewBuilder(6, 6)
	for i := 0; i < 2; i++ {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v1, v3)
	}
	return b.Build()
}

func TestMossCompleteOnTinyGraph(t *testing.T) {
	g := twoTriangles()
	res := Mine(g, Config{MinSupport: 2, Measure: support.CountAll})
	if !res.Completed {
		t.Fatal("tiny graph must complete")
	}
	// Complete frequent set: 3 single edges, 3 paths of 2 edges (1-2-3,
	// 2-1-3, 1-3-2), 1 triangle = 7 patterns.
	if len(res.Patterns) != 7 {
		for _, p := range res.Patterns {
			t.Logf("  %v labels=%v", p, p.G.Labels())
		}
		t.Fatalf("complete set size %d, want 7", len(res.Patterns))
	}
	// The triangle must be present with 2 embeddings.
	found := false
	for _, p := range res.Patterns {
		if p.Size() == 3 && p.NV() == 3 && len(p.Emb) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("triangle missing from complete set")
	}
}

func TestMossRespectsMinSupport(t *testing.T) {
	g := twoTriangles()
	res := Mine(g, Config{MinSupport: 3})
	if len(res.Patterns) != 0 {
		t.Fatalf("nothing has support 3, got %d patterns", len(res.Patterns))
	}
}

func TestMossTimeoutAborts(t *testing.T) {
	// A denser graph with 1ns timeout must abort immediately.
	b := graph.NewBuilder(30, 90)
	for i := 0; i < 30; i++ {
		b.AddVertex(graph.Label(i % 3))
	}
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j += 3 {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	g := b.Build()
	res := Mine(g, Config{MinSupport: 2, Timeout: time.Nanosecond})
	if res.Completed {
		t.Fatal("1ns timeout should abort")
	}
}

func TestMossMaxPatternsAborts(t *testing.T) {
	g := twoTriangles()
	res := Mine(g, Config{MinSupport: 2, MaxPatterns: 2})
	if res.Completed {
		t.Fatal("MaxPatterns=2 should abort with 7 frequent patterns")
	}
	if len(res.Patterns) < 2 {
		t.Fatalf("should keep the prefix: %d", len(res.Patterns))
	}
}

func TestMossMaxEdges(t *testing.T) {
	g := twoTriangles()
	res := Mine(g, Config{MinSupport: 2, MaxEdges: 1})
	for _, p := range res.Patterns {
		if p.Size() > 2 {
			t.Fatalf("MaxEdges=1 means no pattern beyond 2 edges can appear, got %d", p.Size())
		}
	}
}

func TestMossHarmfulOverlapMeasure(t *testing.T) {
	// Host P3 (all labels 0): the 0-0 edge has two embeddings {0,1} and
	// {1,2} sharing host vertex 1 at equivalent pattern positions — a
	// harmful overlap, so the harmful-overlap support is 1 while the raw
	// count is 2.
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddVertex(0)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	all := Mine(g, Config{MinSupport: 2, Measure: support.CountAll})
	ho := Mine(g, Config{MinSupport: 2, Measure: support.HarmfulOverlap})
	if len(all.Patterns) == 0 {
		t.Fatal("count-all should keep the 0-0 edge")
	}
	if len(ho.Patterns) != 0 {
		t.Fatalf("harmful-overlap should prune everything, kept %d", len(ho.Patterns))
	}
}
