// Package moss implements a MoSS/gSpan-style *complete* frequent-subgraph
// miner for the single-graph setting (Fiedler & Borgelt, MLG 2007; Yan &
// Han, ICDM 2002): breadth-first edge-by-edge growth from frequent single
// edges with structural deduplication, counting overlap-aware support.
//
// Completeness is the point — and the weakness: the pattern space is
// exponential, so on dense or large inputs the miner exhausts its budget
// and reports Completed=false, exactly as MoSS fails with "-" entries in
// Figure 16 of the paper.
package moss

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/support"
)

// Config parameterizes the miner.
type Config struct {
	// MinSupport is σ.
	MinSupport int
	// Measure is the support measure (default HarmfulOverlap, the MoSS
	// definition the paper adopts).
	Measure support.Measure
	// MaxPatterns aborts after this many frequent patterns (0 = 1e6).
	MaxPatterns int
	// Timeout aborts the run (0 = no limit). The paper aborted runs at 10
	// hours; tests use seconds.
	Timeout time.Duration
	// MaxEmbPerPattern caps embedding bookkeeping (default 1024).
	MaxEmbPerPattern int
	// MaxEdges caps pattern size (0 = unlimited), handy for level studies.
	MaxEdges int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 1 << 20
	}
	if c.MaxEmbPerPattern <= 0 {
		c.MaxEmbPerPattern = 1024
	}
	return c
}

// Result reports a complete-mining run.
type Result struct {
	// Patterns is every frequent pattern found (structurally distinct).
	Patterns []*pattern.Pattern
	// Completed is false if the budget or timeout aborted enumeration, in
	// which case Patterns is a prefix of the complete set.
	Completed bool
	// Elapsed is the wall-clock mining time.
	Elapsed time.Duration
}

// Mine enumerates all frequent patterns of g level-by-level (pattern size
// in edges).
func Mine(g *graph.Graph, cfg Config) *Result {
	res, _ := MineContext(context.Background(), g, cfg)
	return res
}

// MineContext is Mine with cooperative cancellation, observed once per
// frontier pattern (the same granularity as the Timeout check). A
// cancelled run returns the frequent-pattern prefix enumerated so far
// with Completed=false, plus ctx.Err().
func MineContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}
	supFn := func(embs []pattern.Embedding) int { return len(embs) }
	lim := miner.Limits{MaxEmbPerPattern: cfg.MaxEmbPerPattern}

	measureOK := func(p *pattern.Pattern) bool {
		return support.Of(p.G, p.Emb, cfg.Measure) >= cfg.MinSupport
	}

	level := miner.SingleEdgeSeeds(g, cfg.MinSupport, lim, supFn)
	var kept []*pattern.Pattern
	for _, p := range level {
		if measureOK(p) {
			kept = append(kept, p)
		}
	}
	res := &Result{Completed: true}
	res.Patterns = append(res.Patterns, kept...)
	frontier := kept
	for len(frontier) > 0 {
		var next []*pattern.Pattern
		for _, p := range frontier {
			if err := ctx.Err(); err != nil {
				res.Completed = false
				res.Elapsed = time.Since(start)
				res.Patterns = append(res.Patterns, next...)
				return res, err
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.Completed = false
				res.Elapsed = time.Since(start)
				return res, nil
			}
			if len(res.Patterns)+len(next) >= cfg.MaxPatterns {
				res.Completed = false
				res.Elapsed = time.Since(start)
				res.Patterns = append(res.Patterns, next...)
				return res, nil
			}
			if cfg.MaxEdges > 0 && p.Size() >= cfg.MaxEdges {
				continue
			}
			for _, q := range miner.Extensions(g, p, cfg.MinSupport, lim, supFn) {
				if measureOK(q) {
					next = append(next, q)
				}
			}
		}
		next = miner.DedupeStructures(next)
		// Cross-level dedupe: an extension can re-create a structure found
		// via a different parent in a previous level.
		next = dedupeAgainst(res.Patterns, next)
		res.Patterns = append(res.Patterns, next...)
		frontier = next
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func dedupeAgainst(have, candidates []*pattern.Pattern) []*pattern.Pattern {
	if len(candidates) == 0 {
		return candidates
	}
	combined := make([]*pattern.Pattern, 0, len(have)+len(candidates))
	combined = append(combined, have...)
	combined = append(combined, candidates...)
	merged := miner.DedupeStructures(combined)
	// Entries beyond len(have) are the genuinely new ones.
	if len(merged) <= len(have) {
		return nil
	}
	return merged[len(have):]
}
