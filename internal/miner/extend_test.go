package miner

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// hostGraph: two triangles 1-2-3 and one extra 1-2 edge.
func hostGraph() *graph.Graph {
	b := graph.NewBuilder(8, 8)
	mkTri := func() {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v1, v3)
	}
	mkTri()
	mkTri()
	u := b.AddVertex(1)
	w := b.AddVertex(2)
	b.AddEdge(u, w)
	return b.Build()
}

func TestSingleEdgeSeeds(t *testing.T) {
	g := hostGraph()
	seeds := SingleEdgeSeeds(g, 2, Limits{}, RawSupport)
	bySizes := map[string]int{}
	for _, p := range seeds {
		if p.NV() != 2 || p.Size() != 1 {
			t.Fatalf("seed not a single edge: %v", p)
		}
		key := ""
		la, lb := p.G.Label(0), p.G.Label(1)
		if la > lb {
			la, lb = lb, la
		}
		key = string(rune('0'+la)) + "-" + string(rune('0'+lb))
		bySizes[key] = len(p.Emb)
	}
	if bySizes["1-2"] != 3 {
		t.Fatalf("1-2 edges: got %d, want 3", bySizes["1-2"])
	}
	if bySizes["2-3"] != 2 || bySizes["1-3"] != 2 {
		t.Fatalf("triangle edges: %v", bySizes)
	}
}

func TestSingleEdgeSeedsSupportFilter(t *testing.T) {
	g := hostGraph()
	seeds := SingleEdgeSeeds(g, 3, Limits{}, RawSupport)
	if len(seeds) != 1 {
		t.Fatalf("σ=3 should leave only the 1-2 edge, got %d seeds", len(seeds))
	}
}

func TestExtensionsForward(t *testing.T) {
	g := hostGraph()
	seeds := SingleEdgeSeeds(g, 2, Limits{}, RawSupport)
	var edge12 *pattern.Pattern
	for _, p := range seeds {
		if p.G.Label(0) == 1 && p.G.Label(1) == 2 {
			edge12 = p
		}
	}
	if edge12 == nil {
		t.Fatal("1-2 seed missing")
	}
	exts := Extensions(g, edge12, 2, Limits{}, RawSupport)
	// Expected frequent extensions include the path 1-2-3 (forward) and
	// 2-1-3 (forward at the other end); each occurs twice (both
	// triangles).
	foundP3 := false
	for _, q := range exts {
		if q.NV() == 3 && q.Size() == 2 && len(q.Emb) >= 2 {
			foundP3 = true
		}
	}
	if !foundP3 {
		t.Fatalf("no frequent P3 extension found among %d extensions", len(exts))
	}
}

func TestExtensionsBackward(t *testing.T) {
	g := hostGraph()
	// Start from the path 1-2-3 with its two triangle embeddings; the
	// backward extension closes the triangle.
	pg := graph.FromEdges([]graph.Label{1, 2, 3}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1, 2}, {3, 4, 5}})
	exts := Extensions(g, p, 2, Limits{}, RawSupport)
	foundTri := false
	for _, q := range exts {
		if q.NV() == 3 && q.Size() == 3 {
			foundTri = true
			if len(q.Emb) != 2 {
				t.Fatalf("triangle embeddings: %d, want 2", len(q.Emb))
			}
		}
	}
	if !foundTri {
		t.Fatal("backward (cycle-closing) extension missing")
	}
}

func TestExtensionsRespectSupport(t *testing.T) {
	g := hostGraph()
	pg := graph.FromEdges([]graph.Label{1, 2, 3}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1, 2}, {3, 4, 5}})
	for _, q := range Extensions(g, p, 2, Limits{}, RawSupport) {
		if len(q.Emb) < 2 {
			t.Fatalf("infrequent extension returned: %v", q)
		}
	}
}

func TestDedupeStructures(t *testing.T) {
	pg1 := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	pg2 := graph.FromEdges([]graph.Label{2, 1}, []graph.Edge{{U: 0, W: 1}}) // isomorphic
	a := pattern.New(pg1, []pattern.Embedding{{0, 1}})
	b := pattern.New(pg2, []pattern.Embedding{{3, 2}}) // image {2,3}, re-expressed
	out := DedupeStructures([]*pattern.Pattern{a, b})
	if len(out) != 1 {
		t.Fatalf("dedupe: %d patterns, want 1", len(out))
	}
	if len(out[0].Emb) != 2 {
		t.Fatalf("merged embeddings: %d, want 2", len(out[0].Emb))
	}
}

func TestDedupeStructuresKeepsDistinct(t *testing.T) {
	pg1 := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	pg2 := graph.FromEdges([]graph.Label{1, 1}, []graph.Edge{{U: 0, W: 1}})
	out := DedupeStructures([]*pattern.Pattern{
		pattern.New(pg1, nil), pattern.New(pg2, nil),
	})
	if len(out) != 2 {
		t.Fatalf("distinct structures merged: %d", len(out))
	}
}

func TestLimitsCapEmbeddings(t *testing.T) {
	g := hostGraph()
	seeds := SingleEdgeSeeds(g, 2, Limits{MaxEmbPerPattern: 1}, RawSupport)
	for _, p := range seeds {
		if len(p.Emb) > 1 {
			t.Fatalf("embedding cap violated: %d", len(p.Emb))
		}
	}
}
