// Package miner hosts the shared edge-by-edge pattern-growth engine used
// by the baseline miners (SUBDUE, SEuS verification, MoSS, ORIGAMI). It is
// deliberately the *incremental* growth framework the paper contrasts
// SpiderMine against: patterns extend one edge at a time.
package miner

import (
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Limits bounds the embedding bookkeeping of the incremental engine.
type Limits struct {
	// MaxEmbPerPattern caps stored embeddings per pattern (0 = unlimited).
	// When the cap trims the list, counted support becomes a lower bound.
	MaxEmbPerPattern int
}

// SingleEdgeSeeds returns one pattern per frequent labeled edge
// (unordered label pair) of g, with all embeddings.
func SingleEdgeSeeds(g *graph.Graph, minSup int, lim Limits, supFn func([]pattern.Embedding) int) []*pattern.Pattern {
	type key struct{ a, b graph.Label }
	byPair := make(map[key][]pattern.Embedding)
	for _, e := range g.Edges() {
		la, lb := g.Label(e.U), g.Label(e.W)
		u, w := e.U, e.W
		if la > lb {
			la, lb = lb, la
			u, w = w, u
		}
		byPair[key{la, lb}] = append(byPair[key{la, lb}], pattern.Embedding{u, w})
	}
	var out []*pattern.Pattern
	var keys []key
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		embs := byPair[k]
		if supFn(embs) < minSup {
			continue
		}
		if lim.MaxEmbPerPattern > 0 && len(embs) > lim.MaxEmbPerPattern {
			embs = embs[:lim.MaxEmbPerPattern]
		}
		pg := graph.FromEdges([]graph.Label{k.a, k.b}, []graph.Edge{{U: 0, W: 1}})
		out = append(out, pattern.New(pg, embs))
	}
	return out
}

// Extensions computes all frequent one-edge extensions of p in g:
// forward extensions add a new vertex adjacent to an existing pattern
// vertex; backward extensions close an edge between two existing pattern
// vertices. Results are structurally deduplicated (iso classes merged,
// embedding lists unioned) and support-filtered via supFn.
func Extensions(g *graph.Graph, p *pattern.Pattern, minSup int, lim Limits, supFn func([]pattern.Embedding) int) []*pattern.Pattern {
	type fwdKey struct {
		pv graph.V
		l  graph.Label
	}
	fwd := make(map[fwdKey][]pattern.Embedding)
	type bwdKey struct{ pu, pv graph.V }
	bwd := make(map[bwdKey][]pattern.Embedding)

	np := p.NV()
	for _, e := range p.Emb {
		inImage := make(map[graph.V]graph.V, len(e)) // host -> pattern vertex
		for pv, hv := range e {
			inImage[hv] = graph.V(pv)
		}
		for pv := 0; pv < np; pv++ {
			hv := e[pv]
			for _, w := range g.Neighbors(hv) {
				if pw, ok := inImage[w]; ok {
					// backward: edge between pattern vertices pv and pw
					pu, pv2 := graph.V(pv), pw
					if pu > pv2 {
						pu, pv2 = pv2, pu
					}
					if pu == pv2 || p.G.HasEdge(pu, pv2) {
						continue
					}
					bwd[bwdKey{pu, pv2}] = append(bwd[bwdKey{pu, pv2}], e)
				} else {
					fwd[fwdKey{graph.V(pv), g.Label(w)}] = append(fwd[fwdKey{graph.V(pv), g.Label(w)}],
						append(e.Clone(), w))
				}
			}
		}
	}

	var candidates []*pattern.Pattern
	// Forward candidates.
	fwdKeys := make([]fwdKey, 0, len(fwd))
	for k := range fwd {
		fwdKeys = append(fwdKeys, k)
	}
	sort.Slice(fwdKeys, func(i, j int) bool {
		if fwdKeys[i].pv != fwdKeys[j].pv {
			return fwdKeys[i].pv < fwdKeys[j].pv
		}
		return fwdKeys[i].l < fwdKeys[j].l
	})
	for _, k := range fwdKeys {
		nb := graph.NewBuilder(np+1, p.Size()+1)
		for v := 0; v < np; v++ {
			nb.AddVertex(p.G.Label(graph.V(v)))
		}
		for _, pe := range p.G.Edges() {
			nb.AddEdge(pe.U, pe.W)
		}
		leaf := nb.AddVertex(k.l)
		nb.AddEdge(k.pv, leaf)
		ng := nb.Build()
		cand := pattern.New(ng, dedupeEmbs(ng, fwd[k], lim))
		if supFn(cand.Emb) >= minSup {
			candidates = append(candidates, cand)
		}
	}
	// Backward candidates.
	bwdKeys := make([]bwdKey, 0, len(bwd))
	for k := range bwd {
		bwdKeys = append(bwdKeys, k)
	}
	sort.Slice(bwdKeys, func(i, j int) bool {
		if bwdKeys[i].pu != bwdKeys[j].pu {
			return bwdKeys[i].pu < bwdKeys[j].pu
		}
		return bwdKeys[i].pv < bwdKeys[j].pv
	})
	for _, k := range bwdKeys {
		nb := graph.NewBuilder(np, p.Size()+1)
		for v := 0; v < np; v++ {
			nb.AddVertex(p.G.Label(graph.V(v)))
		}
		for _, pe := range p.G.Edges() {
			nb.AddEdge(pe.U, pe.W)
		}
		nb.AddEdge(k.pu, k.pv)
		ng := nb.Build()
		cand := pattern.New(ng, dedupeEmbs(ng, bwd[k], lim))
		if supFn(cand.Emb) >= minSup {
			candidates = append(candidates, cand)
		}
	}
	return DedupeStructures(candidates)
}

func dedupeEmbs(pg *graph.Graph, embs []pattern.Embedding, lim Limits) []pattern.Embedding {
	seen := make(map[string]struct{}, len(embs))
	var out []pattern.Embedding
	for _, e := range embs {
		k := e.ImageKey(pg)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, e)
		if lim.MaxEmbPerPattern > 0 && len(out) >= lim.MaxEmbPerPattern {
			break
		}
	}
	return out
}

// DedupeStructures merges structurally isomorphic patterns, unioning their
// embedding lists (deduped by image), and returns representatives in input
// order.
func DedupeStructures(ps []*pattern.Pattern) []*pattern.Pattern {
	type entry struct{ p *pattern.Pattern }
	byInv := make(map[uint64][]*entry)
	var out []*pattern.Pattern
	for _, p := range ps {
		inv := p.Invariant()
		merged := false
		for _, ent := range byInv[inv] {
			if ent.p.G.N() == p.G.N() && ent.p.G.M() == p.G.M() {
				if mapping := canon.IsomorphismMapping(p.G, ent.p.G); mapping != nil {
					// Re-express p's embeddings in ent's vertex order.
					seen := make(map[string]struct{}, len(ent.p.Emb))
					for _, e := range ent.p.Emb {
						seen[e.ImageKey(ent.p.G)] = struct{}{}
					}
					for _, e := range p.Emb {
						re := make(pattern.Embedding, len(e))
						for pv, rv := range mapping {
							re[rv] = e[pv]
						}
						k := re.ImageKey(ent.p.G)
						if _, dup := seen[k]; !dup {
							seen[k] = struct{}{}
							ent.p.Emb = append(ent.p.Emb, re)
						}
					}
					merged = true
					break
				}
			}
		}
		if !merged {
			byInv[inv] = append(byInv[inv], &entry{p})
			out = append(out, p)
		}
	}
	return out
}

// RawSupport is the default single-graph support function: the number of
// distinct embedding images.
func RawSupport(embs []pattern.Embedding) int { return len(embs) }
