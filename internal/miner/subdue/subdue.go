// Package subdue implements a SUBDUE-style approximate substructure miner
// (Holder, Cook & Djoko, KDD'94): beam search over one-edge extensions
// scored by MDL-like graph compression, with optional iterative graph
// compression. Like the original, it gravitates to small patterns with
// high frequency and degrades as data grows — the behaviour the paper's
// Figures 4–8, 10, 20 and 21 document.
package subdue

import (
	"context"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/support"
)

// Config parameterizes the miner.
type Config struct {
	// Beam is the beam width (default 4, the classic setting).
	Beam int
	// MaxBest is how many substructures to report (default 20).
	MaxBest int
	// MaxPatternEdges stops extending patterns at this size (default 40).
	MaxPatternEdges int
	// Iterations of compress-and-remine (default 1: no recompression).
	Iterations int
	// MinSupport prunes candidates below this raw embedding count
	// (default 2).
	MinSupport int
	// MaxEmbPerPattern caps embedding bookkeeping (default 512).
	MaxEmbPerPattern int
	// ExtensionBudget caps total Extensions calls per iteration. The
	// default follows classic SUBDUE's limit parameter, |E(G)|/2, so the
	// search effort — and runtime — grows with the input graph, which is
	// exactly the super-linear curve Figure 10 documents.
	ExtensionBudget int
}

func (c Config) withDefaults() Config {
	if c.Beam <= 0 {
		c.Beam = 4
	}
	if c.MaxBest <= 0 {
		c.MaxBest = 20
	}
	if c.MaxPatternEdges <= 0 {
		c.MaxPatternEdges = 40
	}
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxEmbPerPattern <= 0 {
		c.MaxEmbPerPattern = 512
	}
	return c
}

// budgetFor resolves the extension budget for a graph: the configured
// value, or classic SUBDUE's default limit of |E|/2 expansions.
func (c Config) budgetFor(g *graph.Graph) int {
	if c.ExtensionBudget > 0 {
		return c.ExtensionBudget
	}
	b := g.M() / 2
	if b < 64 {
		b = 64
	}
	return b
}

// Scored couples a pattern with its compression score.
type Scored struct {
	P     *pattern.Pattern
	Score float64 // compression value; higher is better
	// Instances is the edge-disjoint instance count used by the score.
	Instances int
}

// Mine runs beam search (plus optional compress-and-repeat rounds) and
// returns the best substructures found, best-first.
func Mine(g *graph.Graph, cfg Config) []Scored {
	out, _ := MineContext(context.Background(), g, cfg)
	return out
}

// MineContext is Mine with cooperative cancellation, observed between
// beam-expansion rounds and compress-and-repeat iterations. A cancelled
// run returns the best substructures scored so far with ctx.Err().
func MineContext(ctx context.Context, g *graph.Graph, cfg Config) ([]Scored, error) {
	cfg = cfg.withDefaults()
	var all []Scored
	var ctxErr error
	cur := g
	for it := 0; it < cfg.Iterations; it++ {
		best, err := mineOnce(ctx, cur, cfg)
		all = append(all, best...)
		if err != nil {
			ctxErr = err
			break
		}
		if len(best) == 0 || it == cfg.Iterations-1 {
			break
		}
		cur = compress(cur, best[0].P)
		if cur.M() == 0 {
			break
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	if len(all) > cfg.MaxBest {
		all = all[:cfg.MaxBest]
	}
	return all, ctxErr
}

func mineOnce(ctx context.Context, g *graph.Graph, cfg Config) ([]Scored, error) {
	lim := miner.Limits{MaxEmbPerPattern: cfg.MaxEmbPerPattern}
	// SUBDUE counts vertex-disjoint instances ([20] notes both SUBDUE and
	// GREW admit only vertex-disjoint embeddings).
	instOf := func(p *pattern.Pattern) int {
		return support.Of(p.G, p.Emb, support.VertexDisjoint)
	}
	scoreOf := func(p *pattern.Pattern) (float64, int) {
		inst := instOf(p)
		return compression(g, p, inst), inst
	}
	var best []Scored
	push := func(p *pattern.Pattern) {
		s, inst := scoreOf(p)
		if inst < cfg.MinSupport || s <= 0 {
			return
		}
		best = append(best, Scored{P: p, Score: s, Instances: inst})
		sort.SliceStable(best, func(i, j int) bool { return best[i].Score > best[j].Score })
		if len(best) > cfg.MaxBest {
			best = best[:cfg.MaxBest]
		}
	}
	seeds := miner.SingleEdgeSeeds(g, cfg.MinSupport, lim, miner.RawSupport)
	type beamEntry struct {
		p     *pattern.Pattern
		score float64
	}
	var beam []beamEntry
	for _, p := range seeds {
		push(p)
		s, inst := scoreOf(p)
		if inst >= cfg.MinSupport {
			beam = append(beam, beamEntry{p, s})
		}
	}
	budget := cfg.budgetFor(g)
	for len(beam) > 0 && budget > 0 {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		// Keep the beam's top-W patterns by score (beam search).
		sort.SliceStable(beam, func(i, j int) bool { return beam[i].score > beam[j].score })
		if len(beam) > cfg.Beam {
			beam = beam[:cfg.Beam]
		}
		var next []beamEntry
		var nextPs []*pattern.Pattern
		for _, be := range beam {
			if be.p.Size() >= cfg.MaxPatternEdges || budget <= 0 {
				continue
			}
			budget--
			for _, q := range miner.Extensions(g, be.p, cfg.MinSupport, lim, miner.RawSupport) {
				s, inst := scoreOf(q)
				if inst < cfg.MinSupport {
					continue
				}
				push(q)
				// Hill climbing: SUBDUE keeps expanding a substructure only
				// while its compression value improves; otherwise the parent
				// is a local optimum and the branch ends.
				if s > be.score {
					next = append(next, beamEntry{q, s})
					nextPs = append(nextPs, q)
				}
			}
		}
		nextPs = miner.DedupeStructures(nextPs)
		keep := make(map[*pattern.Pattern]bool, len(nextPs))
		for _, p := range nextPs {
			keep[p] = true
		}
		var filtered []beamEntry
		for _, be := range next {
			if keep[be.p] {
				filtered = append(filtered, be)
			}
		}
		beam = filtered
	}
	return best, nil
}

// compression is the (simplified) MDL value of a substructure: the
// description length saved by replacing each edge-disjoint instance of P
// with a single vertex. DL(graph) ≈ |V|·log2(f) + |E|·2·log2(|V|).
func compression(g *graph.Graph, p *pattern.Pattern, instances int) float64 {
	if instances < 1 {
		return 0
	}
	f := float64(g.NumLabels())
	if f < 2 {
		f = 2
	}
	dl := func(nv, ne int, n float64) float64 {
		if nv <= 0 {
			return 0
		}
		return float64(nv)*math.Log2(f) + float64(ne)*2*math.Max(1, math.Log2(math.Max(2, n)))
	}
	dlG := dl(g.N(), g.M(), float64(g.N()))
	dlP := dl(p.NV(), p.Size(), float64(p.NV()))
	// After compression: each instance loses |V(P)|−1 vertices and |E(P)|
	// edges (edges to the rest collapse onto the replacement vertex).
	nv := g.N() - instances*(p.NV()-1)
	ne := g.M() - instances*p.Size()
	if nv < 1 {
		nv = 1
	}
	if ne < 0 {
		ne = 0
	}
	dlComp := dl(nv, ne, float64(nv))
	return dlG - (dlP + dlComp)
}

// compress replaces each edge-disjoint instance of p in g with a single
// fresh-labeled vertex, re-attaching boundary edges, and returns the
// compressed graph — SUBDUE's iterative step.
func compress(g *graph.Graph, p *pattern.Pattern) *graph.Graph {
	newLabel := graph.Label(g.NumLabels() + 1000)
	// Greedy vertex-disjoint instances.
	inInstance := make(map[graph.V]int) // host vertex -> instance id
	var instances []pattern.Embedding
	for _, e := range p.Emb {
		clash := false
		for _, hv := range e {
			if _, used := inInstance[hv]; used {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		id := len(instances)
		for _, hv := range e {
			inInstance[hv] = id
		}
		instances = append(instances, e)
	}
	if len(instances) == 0 {
		return g
	}
	// Build compressed graph: instance vertices collapse; everything else
	// keeps its label.
	b := graph.NewBuilder(g.N(), g.M())
	remap := make([]graph.V, g.N())
	instVertex := make([]graph.V, len(instances))
	for i := range instVertex {
		instVertex[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if id, ok := inInstance[graph.V(v)]; ok {
			if instVertex[id] < 0 {
				instVertex[id] = b.AddVertex(newLabel)
			}
			remap[v] = instVertex[id]
		} else {
			remap[v] = b.AddVertex(g.Label(graph.V(v)))
		}
	}
	for _, e := range g.Edges() {
		u, w := remap[e.U], remap[e.W]
		if u != w {
			b.AddEdge(u, w)
		}
	}
	return b.Build()
}
