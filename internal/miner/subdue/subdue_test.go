package subdue

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// repeatedMotifGraph: k copies of a 4-vertex motif plus noise.
func repeatedMotifGraph(k int) *graph.Graph {
	b := graph.NewBuilder(6*k, 8*k)
	for i := 0; i < k; i++ {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		v4 := b.AddVertex(4)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v3, v4)
		n1 := b.AddVertex(graph.Label(10 + i))
		n2 := b.AddVertex(graph.Label(20 + i))
		b.AddEdge(v1, n1)
		b.AddEdge(n1, n2)
	}
	return b.Build()
}

func TestSubdueFindsRepeatedMotif(t *testing.T) {
	g := repeatedMotifGraph(6)
	res := Mine(g, Config{MinSupport: 2})
	if len(res) == 0 {
		t.Fatal("no substructures found")
	}
	best := res[0]
	if best.Instances < 2 {
		t.Fatalf("best substructure has %d instances", best.Instances)
	}
	if best.Score <= 0 {
		t.Fatalf("best score %f not positive", best.Score)
	}
	// The motif path 1-2-3-4 (or a sub-path) should dominate.
	if best.P.Size() < 1 || best.P.Size() > 5 {
		t.Fatalf("unexpected best size %d", best.P.Size())
	}
}

func TestSubdueInstancesVertexDisjoint(t *testing.T) {
	g := repeatedMotifGraph(4)
	for _, s := range Mine(g, Config{MinSupport: 2}) {
		if s.Instances > len(s.P.Emb) {
			t.Fatal("instances exceed embeddings")
		}
	}
}

func TestSubdueEmptyishGraph(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddVertex(3)
	b.AddEdge(0, 1)
	res := Mine(b.Build(), Config{MinSupport: 2})
	if len(res) != 0 {
		t.Fatalf("nothing is frequent at σ=2, got %d results", len(res))
	}
}

func TestSubdueShiftsSmallWithNoise(t *testing.T) {
	// GID-3-like setting: many high-support small patterns. SUBDUE's best
	// substructure should be small (the paper's Figures 6-7 observation).
	g, _ := gen.Synthetic(gen.GIDConfig(3, 11))
	res := Mine(g, Config{MinSupport: 2})
	if len(res) == 0 {
		t.Skip("no substructures on this seed")
	}
	if res[0].P.NV() > 10 {
		t.Fatalf("SUBDUE best on noisy data should be small, got |V|=%d", res[0].P.NV())
	}
}

func TestCompression(t *testing.T) {
	g := repeatedMotifGraph(5)
	res := Mine(g, Config{MinSupport: 2, MaxBest: 3})
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatal("results not score-sorted")
		}
	}
}

func TestCompressIteration(t *testing.T) {
	g := repeatedMotifGraph(6)
	res1 := Mine(g, Config{MinSupport: 2, Iterations: 1})
	res2 := Mine(g, Config{MinSupport: 2, Iterations: 2})
	if len(res2) < len(res1) {
		t.Fatalf("second compression iteration lost results: %d vs %d", len(res2), len(res1))
	}
}
