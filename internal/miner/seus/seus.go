// Package seus implements a SEuS-style miner (Ghazizadeh & Chawathe,
// Discovery Science 2002): a label-collapsed summary graph provides an
// upper bound on candidate support, and only summary-frequent candidates
// are verified against the full graph. The summary's strength is a small
// number of highly frequent structures; with many low-frequency patterns
// it collapses everything together and only small structures survive
// verification — the behaviour seen in Figures 4–8.
package seus

import (
	"context"
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Config parameterizes the miner.
type Config struct {
	// MinSupport is the verified-support threshold σ.
	MinSupport int
	// MaxEdges caps candidate size (default 5; SEuS reports small
	// structures).
	MaxEdges int
	// MaxCandidates bounds summary-graph enumeration (default 5000).
	MaxCandidates int
	// VerifyLimit caps embeddings counted per candidate (default 4·σ).
	VerifyLimit int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 5
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 5000
	}
	if c.VerifyLimit <= 0 {
		c.VerifyLimit = 4 * c.MinSupport
	}
	return c
}

// Result is one verified frequent structure.
type Result struct {
	P       *pattern.Pattern
	Support int
}

// Summary is the label-collapsed summary graph: one node per label; edge
// weight counts host edges between the label classes.
type Summary struct {
	Labels []graph.Label
	index  map[graph.Label]int
	Weight map[[2]int]int // (label index pair, i<=j) -> host edge count
}

// BuildSummary collapses g by label.
func BuildSummary(g *graph.Graph) *Summary {
	s := &Summary{index: make(map[graph.Label]int), Weight: make(map[[2]int]int)}
	for v := 0; v < g.N(); v++ {
		l := g.Label(graph.V(v))
		if _, ok := s.index[l]; !ok {
			s.index[l] = len(s.Labels)
			s.Labels = append(s.Labels, l)
		}
	}
	for _, e := range g.Edges() {
		i, j := s.index[g.Label(e.U)], s.index[g.Label(e.W)]
		if i > j {
			i, j = j, i
		}
		s.Weight[[2]int{i, j}]++
	}
	return s
}

// Mine enumerates connected candidate structures from the summary graph
// (every candidate edge's summary weight must reach σ — the upper-bound
// prune) and verifies each against g by embedding counting.
func Mine(g *graph.Graph, cfg Config) []Result {
	out, _ := MineContext(context.Background(), g, cfg)
	return out
}

// MineContext is Mine with cooperative cancellation, observed per
// candidate verification (the expensive step — each one is an embedding
// count against the full graph). A cancelled run returns the structures
// verified so far with ctx.Err().
func MineContext(ctx context.Context, g *graph.Graph, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	var ctxErr error
	sum := BuildSummary(g)

	// Candidate generation: BFS over "summary subgraphs" represented as
	// label sequences with edges; start from frequent summary edges.
	type candidate struct {
		labels []graph.Label
		edges  []graph.Edge
	}
	var frontier []candidate
	var edgeKeys [][2]int
	for k, w := range sum.Weight {
		if w >= cfg.MinSupport {
			edgeKeys = append(edgeKeys, k)
		}
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		if edgeKeys[i][0] != edgeKeys[j][0] {
			return edgeKeys[i][0] < edgeKeys[j][0]
		}
		return edgeKeys[i][1] < edgeKeys[j][1]
	})
	for _, k := range edgeKeys {
		frontier = append(frontier, candidate{
			labels: []graph.Label{sum.Labels[k[0]], sum.Labels[k[1]]},
			edges:  []graph.Edge{{U: 0, W: 1}},
		})
	}
	seen := make(map[uint64]bool)
	var results []Result
	generated := 0
	verify := func(c candidate) {
		pg := graph.FromEdges(c.labels, c.edges)
		inv := canon.Invariant(pg)
		if seen[inv] {
			return
		}
		seen[inv] = true
		count := canon.CountEmbeddings(pg, g, cfg.VerifyLimit)
		if count >= cfg.MinSupport {
			embs := canon.FindEmbeddings(pg, g, cfg.VerifyLimit)
			pes := make([]pattern.Embedding, len(embs))
			for i, m := range embs {
				pes[i] = pattern.Embedding(m)
			}
			results = append(results, Result{P: pattern.New(pg, pes), Support: count})
		}
	}
	for _, c := range frontier {
		if ctx.Err() != nil {
			break
		}
		verify(c)
	}
	for len(frontier) > 0 && generated < cfg.MaxCandidates && ctx.Err() == nil {
		var next []candidate
		for _, c := range frontier {
			if len(c.edges) >= cfg.MaxEdges || generated >= cfg.MaxCandidates {
				break
			}
			// extend: attach a new label node to any existing node via a
			// frequent summary edge
			for vi := range c.labels {
				li := sum.index[c.labels[vi]]
				for _, k := range edgeKeys {
					var other int
					switch li {
					case k[0]:
						other = k[1]
					case k[1]:
						other = k[0]
					default:
						continue
					}
					nc := candidate{
						labels: append(append([]graph.Label(nil), c.labels...), sum.Labels[other]),
						edges:  append(append([]graph.Edge(nil), c.edges...), graph.Edge{U: graph.V(vi), W: graph.V(len(c.labels))}),
					}
					generated++
					next = append(next, nc)
					if generated >= cfg.MaxCandidates {
						break
					}
				}
				if generated >= cfg.MaxCandidates {
					break
				}
			}
		}
		for _, c := range next {
			if ctx.Err() != nil {
				break
			}
			verify(c)
		}
		frontier = next
	}
	ctxErr = ctx.Err()
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].P.Size() != results[j].P.Size() {
			return results[i].P.Size() > results[j].P.Size()
		}
		return results[i].Support > results[j].Support
	})
	return results, ctxErr
}
