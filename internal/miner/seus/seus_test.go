package seus

import (
	"testing"

	"repro/internal/graph"
)

func hostGraph() *graph.Graph {
	// three 1-2 edges, two 2-3 edges
	b := graph.NewBuilder(10, 5)
	for i := 0; i < 3; i++ {
		u := b.AddVertex(1)
		w := b.AddVertex(2)
		b.AddEdge(u, w)
	}
	for i := 0; i < 2; i++ {
		u := b.AddVertex(2)
		w := b.AddVertex(3)
		b.AddEdge(u, w)
	}
	return b.Build()
}

func TestBuildSummary(t *testing.T) {
	g := hostGraph()
	s := BuildSummary(g)
	if len(s.Labels) != 3 {
		t.Fatalf("summary labels %d, want 3", len(s.Labels))
	}
	total := 0
	for _, w := range s.Weight {
		total += w
	}
	if total != g.M() {
		t.Fatalf("summary weights %d, want %d", total, g.M())
	}
}

func TestSeusFindsFrequentEdges(t *testing.T) {
	g := hostGraph()
	res := Mine(g, Config{MinSupport: 2})
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if r.Support < 2 {
			t.Fatalf("infrequent result support=%d", r.Support)
		}
	}
	// must find the 1-2 edge with support 3
	found := false
	for _, r := range res {
		if r.P.Size() == 1 && r.Support >= 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("1-2 edge (support 3) missing")
	}
}

func TestSeusSummaryOverestimates(t *testing.T) {
	// Summary says label pair (1,2) has weight 3, but a 2-edge chain
	// 1-2, 2-3 only exists where a label-2 vertex has both neighbors —
	// never here, since each label-2 vertex has degree 1. Verification
	// must prune it.
	g := hostGraph()
	for _, r := range Mine(g, Config{MinSupport: 2}) {
		if r.P.Size() >= 2 {
			t.Fatalf("verification failed to prune candidate %v (support %d)", r.P, r.Support)
		}
	}
}

func TestSeusReturnsSmallStructures(t *testing.T) {
	g := hostGraph()
	for _, r := range Mine(g, Config{MinSupport: 2, MaxEdges: 3}) {
		if r.P.Size() > 3 {
			t.Fatalf("MaxEdges violated: %d", r.P.Size())
		}
	}
}

func TestSeusCandidateBudget(t *testing.T) {
	g := hostGraph()
	res := Mine(g, Config{MinSupport: 1, MaxCandidates: 3})
	_ = res // must terminate quickly; nothing more to assert
}
