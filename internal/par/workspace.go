package par

// Workspace is a per-worker scratch arena: one lazily-constructed *T per
// worker slot, kept across parallel passes so a stage allocates
// per-worker-once, not per-item. For(workers) returns the first `workers`
// slots; worker i owns slot i for the duration of one pass (the Do/Map
// ownership contract). The zero value is ready to use; Workspace itself is
// not safe for concurrent use — callers size it sequentially before the
// fan-out, exactly like the historical ensureGrowScratch.
type Workspace[T any] struct {
	slots []*T
}

// For returns per-worker slots [0, workers), creating missing ones.
func (ws *Workspace[T]) For(workers int) []*T {
	for len(ws.slots) < workers {
		ws.slots = append(ws.slots, new(T))
	}
	return ws.slots[:workers]
}

// All returns every slot created so far, for sequential maintenance passes
// (arena resets between runs) that must touch scratch left by earlier,
// wider fan-outs.
func (ws *Workspace[T]) All() []*T { return ws.slots }

// Slots is a reusable value-slot slice for worker-indexed accumulators
// (progress flags, counters) and item-indexed result slots: For(n) returns
// a zeroed length-n slice backed by a buffer grown once and reused across
// passes. The zero value is ready to use; not safe for concurrent resizing
// (call For before the fan-out, then index freely).
type Slots[T any] struct {
	buf []T
}

// For returns a zero-filled slice of length n backed by the reusable
// buffer.
func (s *Slots[T]) For(n int) []T {
	if cap(s.buf) < n {
		s.buf = make([]T, n)
	}
	s.buf = s.buf[:n]
	var zero T
	for i := range s.buf {
		s.buf[i] = zero
	}
	return s.buf
}
