package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != 1 {
		t.Fatalf("Resolve(0) = %d, want 1", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestDoCoversEveryItemExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, -1} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		if err := Do(context.Background(), n, workers, func(_, i int) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: Do: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d processed %d times", workers, i, c)
			}
		}
	}
}

func TestDoNilContext(t *testing.T) {
	ran := 0
	if err := Do(nil, 10, 1, func(_, _ int) { ran++ }); err != nil || ran != 10 {
		t.Fatalf("Do(nil ctx) err=%v ran=%d, want nil/10", err, ran)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 500
	want, err := Map(context.Background(), n, 1, func(_, i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, -1} {
		got, err := Map(context.Background(), n, workers, func(_, i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: Map: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoWorkerIndexInRange(t *testing.T) {
	const n, workers = 200, 4
	var bad atomic.Int32
	Do(context.Background(), n, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of [0, workers)")
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	ran := 0
	Do(context.Background(), 0, 8, func(_, _ int) { ran++ })
	if ran != 0 {
		t.Fatal("Do(0, ...) ran items")
	}
	Do(context.Background(), 1, 8, func(w, i int) {
		if w != 0 || i != 0 {
			t.Fatalf("Do(1, ...) got (w=%d, i=%d)", w, i)
		}
		ran++
	})
	if ran != 1 {
		t.Fatal("Do(1, ...) did not run the single item")
	}
}

// TestDoCancelPreCancelled: a context cancelled before the call returns
// ctx.Err() without running every item (sequential path may run up to one
// check stride; parallel path may race a few claims).
func TestDoCancelPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := Do(ctx, 100000, workers, func(_, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); int(n) >= 100000 {
			t.Fatalf("workers=%d: cancelled Do ran all %d items", workers, n)
		}
	}
}

// TestDoCancelPrompt: cancelling mid-run aborts item claiming promptly —
// the call returns well within the cancellation-latency budget even
// though plenty of work remains.
func TestDoCancelPrompt(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		start := time.Now()
		errCh := make(chan error, 1)
		go func() {
			errCh <- Do(ctx, 1<<30, workers, func(_, _ int) {
				ran.Add(1)
				time.Sleep(50 * time.Microsecond)
			})
		}()
		for ran.Load() < 10 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		err := <-errCh
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("workers=%d: cancelled Do took %v", workers, el)
		}
	}
}

// TestDoDeadline: a deadline context surfaces context.DeadlineExceeded.
func TestDoDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Do(ctx, 1<<30, 2, func(_, _ int) { time.Sleep(100 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestChunks(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
	}{{0, 4}, {1, 4}, {7, 3}, {100, 8}, {5, 5}, {3, 16}} {
		chunks := Chunks(tc.n, tc.workers)
		next := 0
		for _, c := range chunks {
			if c[0] != next {
				t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d", tc.n, tc.workers, c[0], next)
			}
			if c[1] <= c[0] {
				t.Fatalf("n=%d workers=%d: empty chunk %v", tc.n, tc.workers, c)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.workers, next, tc.n)
		}
		if len(chunks) > Resolve(tc.workers) {
			t.Fatalf("n=%d workers=%d: %d chunks", tc.n, tc.workers, len(chunks))
		}
	}
}
