package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != 1 {
		t.Fatalf("Resolve(0) = %d, want 1", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestDoCoversEveryItemExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, -1} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		Do(n, workers, func(_, i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d processed %d times", workers, i, c)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 500
	want := Map(n, 1, func(_, i int) int { return i * i })
	for _, workers := range []int{2, 3, 8, -1} {
		got := Map(n, workers, func(_, i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoWorkerIndexInRange(t *testing.T) {
	const n, workers = 200, 4
	var bad atomic.Int32
	Do(n, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of [0, workers)")
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	ran := 0
	Do(0, 8, func(_, _ int) { ran++ })
	if ran != 0 {
		t.Fatal("Do(0, ...) ran items")
	}
	Do(1, 8, func(w, i int) {
		if w != 0 || i != 0 {
			t.Fatalf("Do(1, ...) got (w=%d, i=%d)", w, i)
		}
		ran++
	})
	if ran != 1 {
		t.Fatal("Do(1, ...) did not run the single item")
	}
}

func TestChunks(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
	}{{0, 4}, {1, 4}, {7, 3}, {100, 8}, {5, 5}, {3, 16}} {
		chunks := Chunks(tc.n, tc.workers)
		next := 0
		for _, c := range chunks {
			if c[0] != next {
				t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d", tc.n, tc.workers, c[0], next)
			}
			if c[1] <= c[0] {
				t.Fatalf("n=%d workers=%d: empty chunk %v", tc.n, tc.workers, c)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.workers, next, tc.n)
		}
		if len(chunks) > Resolve(tc.workers) {
			t.Fatalf("n=%d workers=%d: %d chunks", tc.n, tc.workers, len(chunks))
		}
	}
}
