// Package par is the deterministic worker-pool substrate for the parallel
// mining stages. It deliberately exposes item-indexed primitives only:
// results land in slots keyed by item index and every cross-worker
// combination the callers perform happens in item order, so the output of
// a parallel stage is bit-identical to the sequential run for any worker
// count — the scheduling decides *who* computes each slot, never *what*
// ends up in it.
//
// Contract for fn passed to Do/Map: fn(worker, item) must derive its
// result from item (and shared-immutable state) alone. The worker index
// exists solely to select per-worker scratch — a canon.Matcher, a
// spider.Materializer, a grow scratch — whose contents may influence
// allocation behavior but never results. Accumulators (counters, "any
// progress" flags) must be worker-indexed and reduced after the join.
//
// Cancellation: Do and Map observe ctx cooperatively at item granularity
// and return ctx.Err() once it fires. The checks are amortized off the hot
// path — an uncancellable context (ctx.Done() == nil, e.g.
// context.Background()) takes the exact pre-context code path with zero
// added work, the sequential path polls once every seqCheckStride items,
// and the parallel path reads one atomic flag per item claim (set by a
// watcher goroutine, never a select per item). A cancelled Do abandons
// unclaimed items and stops claiming new ones, but items already running
// complete; callers must treat all item slots of a cancelled call as
// poisoned and fall back to their last reduced state — which slots
// completed depends on scheduling, and determinism of partial results is
// only guaranteed at the caller's reduction boundaries.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers configuration value to an actual worker
// count: 0 and 1 mean sequential (one worker), negative means GOMAXPROCS,
// anything else is taken literally.
func Resolve(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// Bound resolves a Workers configuration value against an item count:
// never more workers than items, never fewer than one. This is the worker
// count Do uses internally; callers that size per-worker scratch
// ([]canon.Matcher, []Materializer, accumulator slices) call Bound with
// the same arguments so scratch and pool agree.
func Bound(n, workers int) int {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// seqCheckStride is how many sequential items run between cancellation
// polls. Mining items are pattern- or vertex-granular (micro- to
// milliseconds each), so a 32-item stride keeps the poll cost invisible
// while bounding cancellation latency well under the promptness budget.
const seqCheckStride = 32

// Do runs fn(worker, item) for every item in [0, n), spread over at most
// `workers` goroutines (after Resolve; never more than n). Items are handed
// out by an atomic counter, so assignment of items to workers is
// load-balanced and unspecified — see the package contract. With one
// worker, fn runs inline on the caller's goroutine with worker index 0.
//
// A nil ctx is treated as context.Background(). Do returns ctx.Err() if
// the context fires before all items complete (see the package comment for
// the partial-execution contract), nil otherwise.
func Do(ctx context.Context, n, workers int, fn func(worker, item int)) error {
	workers = Bound(n, workers)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if workers <= 1 {
		if done == nil {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if i%seqCheckStride == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	if done == nil {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(w, i)
				}
			}(w)
		}
		wg.Wait()
		return nil
	}
	// Cancellable fan-out: a watcher goroutine turns the ctx channel into
	// one atomic flag so each item claim costs a single relaxed load
	// instead of a select. An already-fired context is caught here, before
	// any goroutine spawns (the watcher alone could lose the scheduling
	// race to the workers on a loaded single-CPU host).
	select {
	case <-done:
		return ctx.Err()
	default:
	}
	var stop atomic.Bool
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			stop.Store(true)
		case <-quit:
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	close(quit)
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}

// Map runs fn(worker, item) for every item in [0, n) under Do's scheduling
// and returns the results indexed by item — the ordered-reduction shape
// every parallel stage reduces to. If ctx fires mid-run, Map returns the
// partially filled slice alongside ctx.Err(); callers must discard it.
func Map[T any](ctx context.Context, n, workers int, fn func(worker, item int) T) ([]T, error) {
	out := make([]T, n)
	err := Do(ctx, n, workers, func(w, i int) {
		out[i] = fn(w, i)
	})
	return out, err
}

// Chunks splits [0, n) into at most `workers` contiguous near-equal
// [lo, hi) ranges, for stages that shard a vertex or head range rather
// than a work list (Stage I partitions spider heads this way). The ranges
// cover [0, n) exactly, in ascending order, so concatenating per-chunk
// results in chunk order preserves the sequential item order.
func Chunks(n, workers int) [][2]int {
	return AppendChunks(nil, n, workers)
}

// AppendChunks is Chunks appending into dst, for callers that keep a
// pooled chunk list across runs (pass dst[:0] to reuse the backing).
func AppendChunks(dst [][2]int, n, workers int) [][2]int {
	if n <= 0 {
		return dst
	}
	workers = Bound(n, workers)
	if workers <= 1 {
		return append(dst, [2]int{0, n})
	}
	size, rem := n/workers, n%workers
	lo := 0
	for c := 0; c < workers; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		dst = append(dst, [2]int{lo, hi})
		lo = hi
	}
	return dst
}
