package spider

import (
	"testing"

	"repro/internal/graph"
)

func TestTreeNodeKeyAndSize(t *testing.T) {
	leaf := &TreeNode{Label: 2}
	root := &TreeNode{Label: 1, Children: []*TreeNode{leaf, {Label: 3}}}
	if root.Size() != 2 {
		t.Fatalf("size %d", root.Size())
	}
	if root.Depth() != 1 {
		t.Fatalf("depth %d", root.Depth())
	}
	deep := &TreeNode{Label: 0, Children: []*TreeNode{{Label: 1, Children: []*TreeNode{{Label: 2}}}}}
	if deep.Depth() != 2 {
		t.Fatalf("deep depth %d", deep.Depth())
	}
	// keys distinguish structure
	a := &TreeNode{Label: 1, Children: []*TreeNode{{Label: 2}, {Label: 2}}}
	b := &TreeNode{Label: 1, Children: []*TreeNode{{Label: 2, Children: []*TreeNode{{Label: 2}}}}}
	if a.Key() == b.Key() {
		t.Fatal("distinct trees share key")
	}
}

func TestTreeGraph(t *testing.T) {
	root := &TreeNode{Label: 1, Children: []*TreeNode{{Label: 2}, {Label: 3, Children: []*TreeNode{{Label: 4}}}}}
	g := root.Graph()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("tree graph: %v", g)
	}
	if g.Label(0) != 1 {
		t.Fatal("root must be vertex 0")
	}
}

func TestCanHost(t *testing.T) {
	// host: path 1-2-3
	g := graph.FromEdges([]graph.Label{1, 2, 3},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	tr := &TreeNode{Label: 2, Children: []*TreeNode{{Label: 1}, {Label: 3}}}
	if !CanHost(g, tr, 1) {
		t.Fatal("center must host 2(1)(3)")
	}
	if CanHost(g, tr, 0) {
		t.Fatal("end must not host a label-2 root")
	}
	// needs two distinct children with same label
	tr2 := &TreeNode{Label: 2, Children: []*TreeNode{{Label: 1}, {Label: 1}}}
	if CanHost(g, tr2, 1) {
		t.Fatal("only one label-1 neighbor exists")
	}
}

func TestCanHostDoesNotReuseParent(t *testing.T) {
	// host: edge 1-2. tree: 1 -> 2 -> 1 requires a second label-1 vertex
	// beyond the parent.
	g := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	tr := &TreeNode{Label: 1, Children: []*TreeNode{
		{Label: 2, Children: []*TreeNode{{Label: 1}}},
	}}
	if CanHost(g, tr, 0) {
		t.Fatal("tree must not walk back through its parent")
	}
}

func TestMineTreesDepth1MatchesStars(t *testing.T) {
	g := twoStarsGraph()
	trees := MineTrees(g, TreeOptions{MinSupport: 2, Radius: 1})
	// The tree 9(1)(1)(2) must be found with 2 hosts.
	found := false
	for _, mt := range trees {
		if mt.Tree.Depth() <= 1 && mt.Tree.Size() == 3 && mt.Tree.Label == 9 {
			if mt.Support() == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("depth-1 tree spider 9(1)(1)(2) not mined")
	}
	for _, mt := range trees {
		if mt.Tree.Depth() > 1 {
			t.Fatalf("radius 1 exceeded: %s", mt.Tree.Key())
		}
		if mt.Support() < 2 {
			t.Fatalf("infrequent tree returned: %s", mt.Tree.Key())
		}
	}
}

func TestMineTreesDeeperFindsMore(t *testing.T) {
	g := twoStarsGraph()
	t1 := MineTrees(g, TreeOptions{MinSupport: 2, Radius: 1, MaxFanout: 3})
	t2 := MineTrees(g, TreeOptions{MinSupport: 2, Radius: 2, MaxFanout: 3})
	if len(t2) <= len(t1) {
		t.Fatalf("radius 2 should find more spiders: %d vs %d", len(t2), len(t1))
	}
}

func TestMineTreesMaxSpiders(t *testing.T) {
	g := twoStarsGraph()
	trees := MineTrees(g, TreeOptions{MinSupport: 1, Radius: 2, MaxFanout: 2, MaxSpiders: 5})
	if len(trees) > 5 {
		t.Fatalf("MaxSpiders violated: %d", len(trees))
	}
}
