package spider

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func BenchmarkMineStarsER(b *testing.B) {
	g := gen.ErdosRenyi(2000, 4, 50, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stars := MineStars(g, Options{MinSupport: 2}); len(stars) == 0 {
			b.Fatal("no stars")
		}
	}
}

func BenchmarkMineStarsScaleFree(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 2, 50, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stars := MineStars(g, Options{MinSupport: 2, MaxLeaves: 8}); len(stars) == 0 {
			b.Fatal("no stars")
		}
	}
}

func BenchmarkMineTreesR2(b *testing.B) {
	g := gen.ErdosRenyi(200, 3, 10, rand.New(rand.NewSource(3)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineTrees(g, TreeOptions{MinSupport: 2, Radius: 2, MaxFanout: 2, MaxSpiders: 100_000})
	}
}

func BenchmarkRandomSeed(b *testing.B) {
	g := gen.ErdosRenyi(2000, 4, 50, rand.New(rand.NewSource(4)))
	c := NewCatalog(MineStars(g, Options{MinSupport: 2}))
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomSeed(g, c, 86, 8, rng, 0)
	}
}

// BenchmarkStarMinerWarm measures a reused StarMiner re-mining the GID-1
// host: the steady-state Stage I cost inside a multi-run Miner. Warm runs
// must report 0 allocs/op (pinned by TestStarMinerWarmNoAlloc).
func BenchmarkStarMinerWarm(b *testing.B) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	var sm StarMiner
	if _, err := sm.Mine(context.Background(), g, Options{MinSupport: 2}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Mine(context.Background(), g, Options{MinSupport: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
