package spider

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// twoStarsGraph builds two copies of a star with head label 9 and leaves
// 1,1,2, joined by a bridge, plus an isolated extra vertex.
func twoStarsGraph() *graph.Graph {
	b := graph.NewBuilder(9, 10)
	mk := func() graph.V {
		h := b.AddVertex(9)
		l1 := b.AddVertex(1)
		l2 := b.AddVertex(1)
		l3 := b.AddVertex(2)
		b.AddEdge(h, l1)
		b.AddEdge(h, l2)
		b.AddEdge(h, l3)
		return h
	}
	h1 := mk()
	h2 := mk()
	b.AddVertex(5)
	b.AddEdge(h1, h2)
	return b.Build()
}

func TestStarKeyAndGraph(t *testing.T) {
	s := Star{Head: 9, Leaves: []graph.Label{1, 1, 2}}
	if s.Key() != "9:1,1,2" {
		t.Fatalf("key %q", s.Key())
	}
	g := s.Graph()
	if g.N() != 4 || g.M() != 3 || g.Label(0) != 9 {
		t.Fatalf("star graph wrong: %v", g)
	}
	if s.Size() != 3 {
		t.Fatalf("size %d", s.Size())
	}
}

func TestMineStarsFindsSharedStar(t *testing.T) {
	g := twoStarsGraph()
	stars := MineStars(g, Options{MinSupport: 2})
	// The star (9 : 1,1,2) must be found with exactly the two heads.
	var found *MinedStar
	for _, ms := range stars {
		if ms.Star.Key() == "9:1,1,2" {
			found = ms
		}
	}
	if found == nil {
		t.Fatal("star 9:1,1,2 not mined")
	}
	if found.Support() != 2 {
		t.Fatalf("support %d, want 2", found.Support())
	}
	// No star may exceed the support of its sub-stars (anti-monotonicity).
	supOf := map[string]int{}
	for _, ms := range stars {
		supOf[ms.Star.Key()] = ms.Support()
	}
	for _, ms := range stars {
		if len(ms.Star.Leaves) < 2 {
			continue
		}
		// drop last leaf -> parent key
		parent := Star{Head: ms.Star.Head, Leaves: ms.Star.Leaves[:len(ms.Star.Leaves)-1]}
		if ps, ok := supOf[parent.Key()]; ok && ms.Support() > ps {
			t.Fatalf("anti-monotonicity violated: %s sup %d > parent %s sup %d",
				ms.Star.Key(), ms.Support(), parent.Key(), ps)
		}
	}
}

func TestMineStarsRespectsSupport(t *testing.T) {
	g := twoStarsGraph()
	stars := MineStars(g, Options{MinSupport: 3})
	for _, ms := range stars {
		if ms.Star.Head == 9 && len(ms.Star.Leaves) > 0 {
			// only 2 star heads exist; nothing headed at 9 may survive σ=3
			// except stars hosted by... there are exactly 2 label-9 heads.
			t.Fatalf("star %s with support %d survived σ=3", ms.Star.Key(), ms.Support())
		}
	}
}

func TestMineStarsMaxLeaves(t *testing.T) {
	g := twoStarsGraph()
	stars := MineStars(g, Options{MinSupport: 2, MaxLeaves: 1})
	for _, ms := range stars {
		if len(ms.Star.Leaves) > 1 {
			t.Fatalf("MaxLeaves=1 violated: %s", ms.Star.Key())
		}
	}
}

func TestCatalog(t *testing.T) {
	g := twoStarsGraph()
	stars := MineStars(g, Options{MinSupport: 2})
	c := NewCatalog(stars)
	if c.Len() != len(stars) {
		t.Fatal("catalog length mismatch")
	}
	// head vertex 0 (label 9) hosts several stars
	if len(c.AtHead(0)) == 0 {
		t.Fatal("Spider(v) empty for a star head")
	}
	mi := c.MaximalAtHead(0)
	if mi < 0 {
		t.Fatal("no maximal star at head")
	}
	// the maximal star at head 0 should have 3 or 4 leaves (3 leaves +
	// possibly the bridge neighbor)
	if got := len(c.Stars[mi].Star.Leaves); got < 3 {
		t.Fatalf("maximal star leaves %d, want >= 3", got)
	}
	// vertex 8 (label 5, isolated) hosts nothing
	if len(c.AtHead(8)) != 0 {
		t.Fatal("isolated vertex hosts spiders")
	}
}

func TestComputeMPaperExample(t *testing.T) {
	// Paper §4.1: ε=0.1, K=10, Vmin=|V|/10 ⇒ M=85 (the paper rounds; the
	// minimal integer satisfying Lemma 2 is 86).
	m := ComputeM(10000, 1000, 10, 0.1)
	if m < 84 || m > 87 {
		t.Fatalf("M=%d, want ≈85", m)
	}
	if ps := PSuccess(10000, 1000, 10, m); ps < 0.9 {
		t.Fatalf("PSuccess(M=%d)=%f < 0.9", m, ps)
	}
	if ps := PSuccess(10000, 1000, 10, m-2); ps >= 0.9 {
		t.Fatalf("M not minimal: PSuccess(M-2)=%f", ps)
	}
}

func TestComputeMDegenerate(t *testing.T) {
	if ComputeM(0, 1, 1, 0.1) != 1 {
		t.Fatal("degenerate |V| should return 1")
	}
	if m := ComputeM(10, 10, 1, 0.1); m != 2 {
		t.Fatalf("Vmin=|V| should return 2, got %d", m)
	}
}

// Property: ComputeM is monotone — more patterns (K up) or tighter error
// (ε down) or smaller Vmin never decreases M.
func TestQuickComputeMMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + rng.Intn(100000)
		vmin := 10 + rng.Intn(n/10)
		k := 1 + rng.Intn(30)
		eps := 0.05 + rng.Float64()*0.4
		m := ComputeM(n, vmin, k, eps)
		return ComputeM(n, vmin, k+1, eps) >= m &&
			ComputeM(n, vmin/2+1, k, eps) >= m &&
			ComputeM(n, vmin, k, eps/2) >= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSeedDeterminism(t *testing.T) {
	g := twoStarsGraph()
	c := NewCatalog(MineStars(g, Options{MinSupport: 2}))
	a := RandomSeed(g, c, 3, 4, rand.New(rand.NewSource(1)), 0)
	b := RandomSeed(g, c, 3, 4, rand.New(rand.NewSource(1)), 0)
	if len(a) != len(b) {
		t.Fatal("draw size differs")
	}
	for i := range a {
		if a[i].G.N() != b[i].G.N() || len(a[i].Emb) != len(b[i].Emb) {
			t.Fatal("seeded draws differ")
		}
	}
}

func TestMaterializeEmbeddings(t *testing.T) {
	g := twoStarsGraph()
	ms := &MinedStar{Star: Star{Head: 9, Leaves: []graph.Label{1, 2}}, Hosts: []graph.V{0, 4}}
	p := Materialize(g, ms, 8)
	if p.G.N() != 3 {
		t.Fatalf("pattern vertices %d", p.G.N())
	}
	if p.Origin != 0 {
		t.Fatal("origin must be the head")
	}
	// head 0 has leaves {1,1,2}: choosing 1 of the two label-1 leaves
	// gives 2 embeddings per head → 4 total.
	if len(p.Emb) != 4 {
		t.Fatalf("embeddings %d, want 4", len(p.Emb))
	}
	for _, e := range p.Emb {
		if g.Label(e[0]) != 9 {
			t.Fatal("head image label wrong")
		}
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[0], e[2]) {
			t.Fatal("embedding edges missing")
		}
	}
}

func TestMaterializePerHostCap(t *testing.T) {
	g := twoStarsGraph()
	ms := &MinedStar{Star: Star{Head: 9, Leaves: []graph.Label{1}}, Hosts: []graph.V{0}}
	p := Materialize(g, ms, 1)
	if len(p.Emb) != 1 {
		t.Fatalf("cap violated: %d embeddings", len(p.Emb))
	}
}

func TestCombinations(t *testing.T) {
	var got [][]graph.V
	combinations([]graph.V{1, 2, 3}, 2, func(c []graph.V) bool {
		got = append(got, append([]graph.V(nil), c...))
		return true
	})
	want := [][]graph.V{{1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("combinations: %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("combinations[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// early stop
	n := 0
	combinations([]graph.V{1, 2, 3, 4}, 2, func([]graph.V) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop: %d", n)
	}
	// degenerate
	combinations([]graph.V{1}, 5, func([]graph.V) bool { t.Fatal("k>n must not call"); return false })
}

func TestMineStarsParallelIdentical(t *testing.T) {
	g := twoStarsGraph()
	seq := MineStars(g, Options{MinSupport: 2})
	par := MineStars(g, Options{MinSupport: 2, Workers: -1})
	if len(seq) != len(par) {
		t.Fatalf("parallel mining differs: %d vs %d stars", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Star.Key() != par[i].Star.Key() || seq[i].Support() != par[i].Support() {
			t.Fatalf("star %d differs between sequential and parallel runs", i)
		}
	}
}
