package spider

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestStarMinerWarmNoAlloc pins the pooled-table contract of Stage I: a
// warm StarMiner re-mining a host it has seen before must not allocate.
// Every table — the CSR neighbor-label index, the level-1 triples, the
// frontier lists, and the output arenas backing the returned stars — is
// grown once and reused, so any allocation here means a pooled structure
// regressed to per-run churn (the pre-pooling behavior was ~25k
// allocs/run on this host).
func TestStarMinerWarmNoAlloc(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"gid1", Options{MinSupport: 2}},
		{"gid1-capped", Options{MinSupport: 2, MaxLeaves: 3}},
	} {
		var sm StarMiner
		// Warm every table shape first; the first run owns the growth.
		if _, err := sm.Mine(ctx, g, tc.opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			stars, err := sm.Mine(ctx, g, tc.opt)
			if err != nil || len(stars) == 0 {
				t.Fatal("warm mine failed")
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm StarMiner.Mine allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// TestStarMinerWarmAcrossHosts: reusing one StarMiner across hosts of
// different sizes (growing, then shrinking) must produce exactly what a
// throwaway miner produces on each — pooled tables may not leak one
// host's state into the next run.
func TestStarMinerWarmAcrossHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hosts := []struct {
		name string
		g    *graph.Graph
		opt  Options
	}{
		{"er80", gen.ErdosRenyi(80, 3, 3, rng), Options{MinSupport: 2}},
		{"ba200", gen.BarabasiAlbert(200, 3, 4, rng), Options{MinSupport: 3, MaxLeaves: 4}},
		{"er300", gen.ErdosRenyi(300, 4, 5, rng), Options{MinSupport: 2}},
		{"ba120", gen.BarabasiAlbert(120, 2, 4, rng), Options{MinSupport: 2}},
		{"er40", gen.ErdosRenyi(40, 3, 2, rng), Options{MinSupport: 2}},
	}
	ctx := context.Background()
	var warm StarMiner
	for _, h := range hosts {
		got, err := warm.Mine(ctx, h.g, h.opt)
		if err != nil {
			t.Fatal(err)
		}
		want := MineStars(h.g, h.opt)
		if len(got) != len(want) {
			t.Fatalf("%s: warm miner found %d stars, fresh found %d", h.name, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Star, want[i].Star) || !reflect.DeepEqual(got[i].Hosts, want[i].Hosts) {
				t.Fatalf("%s: star %d diverges between warm and fresh miners:\nwarm  %+v\nfresh %+v", h.name, i, got[i], want[i])
			}
		}
	}
}
