package spider

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pattern"
)

// ComputeM returns the number of seed spiders to draw so that, by Lemma 2,
// all top-K largest patterns are identified with probability at least 1−ε:
// the minimal M with (1 − (M+1)(1−Vmin/|V|)^M)^K ≥ 1−ε.
//
// With ε=0.1, K=10, Vmin=|V|/10 this yields M≈85–86, matching the paper's
// worked example. MaxM caps the search (the draw can never exceed the
// spider catalog anyway).
func ComputeM(numVertices, vmin, k int, epsilon float64) int {
	if numVertices <= 0 || vmin <= 0 || k <= 0 {
		return 1
	}
	q := float64(vmin) / float64(numVertices)
	if q >= 1 {
		return 2
	}
	target := 1 - epsilon
	const maxM = 1 << 22
	for m := 2; m <= maxM; m++ {
		pfail := float64(m+1) * math.Pow(1-q, float64(m))
		if pfail >= 1 {
			continue
		}
		if math.Pow(1-pfail, float64(k)) >= target {
			return m
		}
	}
	return maxM
}

// PSuccess evaluates the Lemma 2 lower bound on the probability that all
// top-K patterns are successfully identified with M seed spiders.
func PSuccess(numVertices, vmin, k, m int) float64 {
	q := float64(vmin) / float64(numVertices)
	pfail := float64(m+1) * math.Pow(1-q, float64(m))
	if pfail < 0 {
		pfail = 0
	}
	if pfail > 1 {
		pfail = 1
	}
	return math.Pow(1-pfail, float64(k))
}

// RandomSeed is RandomSeedContext without cancellation.
func RandomSeed(g *graph.Graph, c *Catalog, m int, perHostCap int, rng *rand.Rand, workers int) []*pattern.Pattern {
	seeds, _ := RandomSeedContext(context.Background(), g, c, m, perHostCap, rng, workers)
	return seeds
}

// RandomSeedContext draws up to m distinct spiders uniformly at random
// from the catalog and materializes each as a seed Pattern with its
// embeddings in g (up to perHostCap embeddings per hosting head; 0 means
// DefaultPerHostCap). IDs are assigned 0..len-1 in draw order.
//
// The draw consumes rng sequentially; materialization shards across
// workers (0/1 sequential, < 0 GOMAXPROCS), each worker owning one
// Materializer. Results land in draw-order slots, so the seed list is
// identical for any worker count. The rng is consumed in full before any
// cancellable work, so a cancelled draw (nil result + ctx.Err()) leaves
// the caller's rng stream exactly where an uncancelled draw would.
func RandomSeedContext(ctx context.Context, g *graph.Graph, c *Catalog, m int, perHostCap int, rng *rand.Rand, workers int) ([]*pattern.Pattern, error) {
	var sd Seeder
	return sd.Draw(ctx, g, c, m, perHostCap, rng, workers)
}

// Seeder owns the random-draw scratch — the permutation buffer and the
// per-worker Materializers — so repeated draws (one per restart, every
// run) stop allocating per-call tables. The zero value is ready to use;
// a Seeder is not safe for concurrent use.
type Seeder struct {
	perm []int
	ws   par.Workspace[Materializer]
}

// Draw implements RandomSeedContext on reusable scratch; see
// RandomSeedContext for the semantics and determinism contract.
func (sd *Seeder) Draw(ctx context.Context, g *graph.Graph, c *Catalog, m int, perHostCap int, rng *rand.Rand, workers int) ([]*pattern.Pattern, error) {
	if m > c.Len() {
		m = c.Len()
	}
	// In-place replica of rand.Perm: identical rng consumption (one
	// Intn(i+1) per i in [0, n) — the i=0 draw is a no-op swap but rand.Perm
	// performs it for Go 1 stream compatibility, so we must too) and
	// identical output, into a reused buffer.
	n := c.Len()
	if cap(sd.perm) < n {
		sd.perm = make([]int, n)
	}
	perm := sd.perm[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	idx := perm[:m]
	wk := par.Bound(len(idx), workers)
	mats := sd.ws.For(wk) // per-worker enumeration scratch
	seeds, err := par.Map(ctx, len(idx), wk, func(w, i int) *pattern.Pattern {
		p := mats[w].Materialize(g, c.Stars[idx[i]], perHostCap)
		p.ID = i
		return p
	})
	if err != nil {
		return nil, err
	}
	return seeds, nil
}

// DefaultPerHostCap bounds how many embeddings are enumerated per hosting
// head vertex when materializing a star (leaf-choice combinations can be
// C(degree, leaves) otherwise).
const DefaultPerHostCap = 8

// Materializer materializes mined stars as seed Patterns, reusing the
// per-head enumeration scratch (label groups, candidate lists, assignment
// frames) across heads and stars. The zero value is ready to use; a
// Materializer is not safe for concurrent use.
type Materializer struct {
	groups []leafGroup
	cand   [][]graph.V
	assign [][]graph.V
	cidx   [][]int     // per-group combination index scratch
	cbuf   [][]graph.V // per-group combination output scratch
	b      graph.Builder
}

// leafGroup is a run of equal leaf labels with its multiplicity.
type leafGroup struct {
	label graph.Label
	count int
}

// Materialize turns a mined star into a Pattern whose graph has the head
// at vertex 0 and whose embeddings enumerate, per hosting head, up to
// perHostCap distinct leaf assignments.
func (mz *Materializer) Materialize(g *graph.Graph, ms *MinedStar, perHostCap int) *pattern.Pattern {
	if perHostCap <= 0 {
		perHostCap = DefaultPerHostCap
	}
	// Star.Graph() through the reused builder (the Graph it returns is
	// fresh and retained by the pattern; only builder churn is pooled).
	mz.b.Reset(1+len(ms.Star.Leaves), len(ms.Star.Leaves))
	head := mz.b.AddVertex(ms.Star.Head)
	for _, l := range ms.Star.Leaves {
		leaf := mz.b.AddVertex(l)
		mz.b.AddEdge(head, leaf)
	}
	pg := mz.b.Build()
	var embs []pattern.Embedding
	for _, h := range ms.Hosts {
		embs = mz.appendStarEmbeddings(embs, g, ms.Star, h, perHostCap)
	}
	p := pattern.New(pg, embs)
	p.Origin = 0
	return p
}

// Materialize is the single-shot convenience form; loops should hold a
// Materializer instead.
func Materialize(g *graph.Graph, ms *MinedStar, perHostCap int) *pattern.Pattern {
	var mz Materializer
	return mz.Materialize(g, ms, perHostCap)
}

// appendStarEmbeddings appends up to capPerHost distinct leaf assignments
// of the star at the given head to embs. Leaves with equal labels are
// interchangeable, so assignments are enumerated as combinations per label
// group (host neighbors in sorted order), which both avoids duplicate
// subgraphs and keeps enumeration deterministic. The only per-embedding
// allocation is the retained embedding itself.
func (mz *Materializer) appendStarEmbeddings(embs []pattern.Embedding, g *graph.Graph, s Star, head graph.V, capPerHost int) []pattern.Embedding {
	// Group leaf labels with multiplicities (Leaves is sorted).
	mz.groups = mz.groups[:0]
	for _, l := range s.Leaves {
		if n := len(mz.groups); n > 0 && mz.groups[n-1].label == l {
			mz.groups[n-1].count++
		} else {
			mz.groups = append(mz.groups, leafGroup{l, 1})
		}
	}
	groups := mz.groups
	// Candidate neighbors per group, reusing the backing arrays from
	// earlier heads. Combination scratch is per group depth — the
	// enumeration nests one combinations walk per group, so the frames
	// must not share buffers.
	for len(mz.cand) < len(groups) {
		mz.cand = append(mz.cand, nil)
		mz.assign = append(mz.assign, nil)
		mz.cidx = append(mz.cidx, nil)
		mz.cbuf = append(mz.cbuf, nil)
	}
	cand := mz.cand[:len(groups)]
	for gi, gr := range groups {
		cand[gi] = cand[gi][:0]
		for _, w := range g.Neighbors(head) {
			if g.Label(w) == gr.label {
				cand[gi] = append(cand[gi], w)
			}
		}
		if len(cand[gi]) < gr.count {
			return embs
		}
	}
	base := len(embs)
	assignment := mz.assign[:len(groups)]
	var rec func(gi int)
	rec = func(gi int) {
		if len(embs)-base >= capPerHost {
			return
		}
		if gi == len(groups) {
			emb := make(pattern.Embedding, 0, 1+len(s.Leaves))
			emb = append(emb, head)
			for _, chosen := range assignment {
				emb = append(emb, chosen...)
			}
			embs = append(embs, emb)
			return
		}
		combinationsInto(cand[gi], groups[gi].count, &mz.cidx[gi], &mz.cbuf[gi], func(chosen []graph.V) bool {
			assignment[gi] = chosen
			rec(gi + 1)
			return len(embs)-base < capPerHost
		})
	}
	rec(0)
	return embs
}

// combinations is combinationsInto with throwaway scratch (one-shot
// callers and tests).
func combinations(xs []graph.V, k int, fn func([]graph.V) bool) {
	var idx []int
	var buf []graph.V
	combinationsInto(xs, k, &idx, &buf, fn)
}

// combinationsInto enumerates k-subsets of xs in lexicographic order,
// calling fn with each; fn returning false stops enumeration. idxp/bufp
// are caller-owned scratch grown in place (one pair per nesting depth).
func combinationsInto(xs []graph.V, k int, idxp *[]int, bufp *[]graph.V, fn func([]graph.V) bool) {
	n := len(xs)
	if k > n || k <= 0 {
		return
	}
	if cap(*idxp) < k {
		*idxp = make([]int, k)
		*bufp = make([]graph.V, k)
	}
	idx, buf := (*idxp)[:k], (*bufp)[:k]
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, j := range idx {
			buf[i] = xs[j]
		}
		if !fn(buf) {
			return
		}
		// advance
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
