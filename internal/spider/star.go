// Package spider implements Stage I of SpiderMine: mining all frequent
// r-spiders of the host graph, the per-head spider index Spider(v), the
// seed-count computation M(K, ε, Vmin) of Lemma 2, and the random seed
// draw.
//
// For the default radius r=1 a spider is a star: a head label plus a
// multiset of leaf labels. Stars are enumerated level-wise over the leaf
// multiset with apriori pruning on head-count support. Deeper spiders
// (r >= 2) are rooted label trees mined by composing stars (see tree.go);
// their cost grows exponentially in r, matching Appendix C(3).
package spider

import (
	"context"
	"slices"
	"strconv"

	"repro/internal/graph"
	"repro/internal/par"
)

// Star is a radius-1 spider: Head is the head vertex label; Leaves is the
// sorted multiset of leaf labels.
type Star struct {
	Head   graph.Label
	Leaves []graph.Label
}

// Key returns a canonical string key for the star.
func (s Star) Key() string {
	b := make([]byte, 0, 4+4*len(s.Leaves))
	b = strconv.AppendInt(b, int64(s.Head), 10)
	b = append(b, ':')
	for i, l := range s.Leaves {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}

// cmpStars orders mined stars by head label, then leaf multiset
// (lexicographic, shorter first on common prefix). Equivalent to ordering
// by Key() up to the digit-string vs numeric distinction; used by
// sortMined so the comparator never formats strings.
func cmpStars(a, b *MinedStar) int {
	if a.Star.Head != b.Star.Head {
		return int(a.Star.Head) - int(b.Star.Head)
	}
	al, bl := a.Star.Leaves, b.Star.Leaves
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return int(al[i]) - int(bl[i])
		}
	}
	return len(al) - len(bl)
}

// Graph materializes the star as a pattern graph: vertex 0 is the head.
func (s Star) Graph() *graph.Graph {
	b := graph.NewBuilder(1+len(s.Leaves), len(s.Leaves))
	head := b.AddVertex(s.Head)
	for _, l := range s.Leaves {
		leaf := b.AddVertex(l)
		b.AddEdge(head, leaf)
	}
	return b.Build()
}

// Size returns the number of edges of the star.
func (s Star) Size() int { return len(s.Leaves) }

// MinedStar couples a star with the host head vertices that can host it.
type MinedStar struct {
	Star  Star
	Hosts []graph.V // sorted head vertices v with label(v)=Head and enough labeled neighbors
}

// Support returns the head-count support of the star: the number of
// distinct host vertices whose neighborhoods contain the leaf multiset.
// This is the harmful-overlap support of a star up to leaf sharing, and is
// anti-monotone in the leaf multiset.
func (m *MinedStar) Support() int { return len(m.Hosts) }

// Options configures spider mining.
type Options struct {
	// MinSupport is the support threshold σ.
	MinSupport int
	// MaxLeaves caps the number of leaves per star (0 = max degree).
	// Larger stars are closed under the growth procedure anyway, so a cap
	// bounds Stage I without losing large patterns.
	MaxLeaves int
	// Radius r of the spiders (1 or 2+; radius >= 2 uses tree spiders).
	Radius int
	// MaxSpiders aborts enumeration past this many frequent spiders
	// (0 = unlimited); scale-free graphs can produce millions (Fig. 17).
	MaxSpiders int
	// Workers parallelizes Stage I: 0/1 sequential, > 1 that many
	// goroutines, < 0 GOMAXPROCS. The level-1 scan partitions head
	// vertices across workers (contiguous chunks merged in chunk order)
	// and level expansion shards parent stars (outputs reduced in frontier
	// order), so the mined spider list is identical across settings.
	Workers int
}

// DefaultOptions returns the options used throughout the paper's
// experiments: σ as given, r=1, no caps.
func DefaultOptions(minSupport int) Options {
	return Options{MinSupport: minSupport, Radius: 1}
}

// MineStars enumerates all frequent stars of g level-wise with no
// cancellation; see MineStarsContext.
func MineStars(g *graph.Graph, opt Options) []*MinedStar {
	stars, _ := MineStarsContext(context.Background(), g, opt)
	return stars
}

// MineStarsContext enumerates all frequent stars of g level-wise.
//
// Level 1 counts single-leaf stars from the edge list. Level k+1 extends
// each frequent star by one leaf label >= its last leaf (canonical
// generation order, no duplicates), re-verifying hosts. Hosts are carried
// level to level so each extension only scans its parent's host list.
//
// Cancellation is observed between levels and inside each level's sharded
// expansion; on ctx expiry the stars of every *completed* level are
// returned alongside ctx.Err() — levels commit atomically, so the partial
// catalog is deterministic for a cancellation observed at any given level.
//
// Each call runs on a throwaway StarMiner, so the returned stars are
// caller-owned; loops that mine repeatedly should hold a StarMiner and
// call its Mine method to reuse the scratch (minding its output-ownership
// contract).
func MineStarsContext(ctx context.Context, g *graph.Graph, opt Options) ([]*MinedStar, error) {
	var sm StarMiner
	return sm.Mine(ctx, g, opt)
}

func sortMined(ms []*MinedStar) {
	slices.SortFunc(ms, cmpStars)
}

// expandLevel applies expand to every frontier star, optionally with a
// worker pool. Per-parent outputs land in frontier-order slots and are
// concatenated in that order, so the result is identical for any worker
// count. A cancelled expansion discards the whole level.
func expandLevel(ctx context.Context, frontier []*MinedStar, expand func(*MinedStar) []*MinedStar, workers int) ([]*MinedStar, error) {
	results, err := par.Map(ctx, len(frontier), workers, func(_, i int) []*MinedStar {
		return expand(frontier[i])
	})
	if err != nil {
		return nil, err
	}
	var next []*MinedStar
	for _, r := range results {
		next = append(next, r...)
	}
	return next, nil
}

// Catalog indexes mined spiders for the random draw and the per-head
// Spider(v) lookup used by SpiderGrow and the Lemma 2 analysis. The
// per-head index is a flat CSR-shaped table (headOff/headIdx) instead of
// the historical map[graph.V][]int, rebuilt in place across runs by
// Rebuild.
type Catalog struct {
	Stars []*MinedStar

	nV      int
	headOff []int32 // len nV+1; spider-index range of v is headIdx[headOff[v]:headOff[v+1]]
	headIdx []int32
	cursor  []int32 // Rebuild fill scratch
}

// NewCatalog builds a catalog over mined stars.
func NewCatalog(stars []*MinedStar) *Catalog {
	c := &Catalog{}
	c.Rebuild(stars)
	return c
}

// Rebuild re-indexes the catalog over a new star list, reusing the
// catalog's backing tables. Per-head spider lists come out in ascending
// spider-index order, exactly as the map-era appends produced them.
func (c *Catalog) Rebuild(stars []*MinedStar) {
	c.Stars = stars
	maxV := -1
	total := 0
	for _, ms := range stars {
		total += len(ms.Hosts)
		for _, v := range ms.Hosts {
			if int(v) > maxV {
				maxV = int(v)
			}
		}
	}
	n := maxV + 1
	c.nV = n
	c.headOff = growI32(c.headOff, n+1)
	for i := range c.headOff {
		c.headOff[i] = 0
	}
	for _, ms := range stars {
		for _, v := range ms.Hosts {
			c.headOff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		c.headOff[v+1] += c.headOff[v]
	}
	c.headIdx = growI32(c.headIdx, total)
	c.cursor = growI32(c.cursor, n)
	copy(c.cursor, c.headOff[:n])
	for i, ms := range stars {
		for _, v := range ms.Hosts {
			c.headIdx[c.cursor[v]] = int32(i)
			c.cursor[v]++
		}
	}
}

// Len returns the number of distinct frequent spiders |S_all|.
func (c *Catalog) Len() int { return len(c.Stars) }

// AtHead returns the indices of spiders hostable at head vertex v
// (the paper's Spider(v)), ascending. The slice aliases the catalog's
// index table; callers must not modify it.
func (c *Catalog) AtHead(v graph.V) []int32 {
	if v < 0 || int(v) >= c.nV {
		return nil
	}
	return c.headIdx[c.headOff[v]:c.headOff[v+1]]
}

// MaximalAtHead returns the index of the spider with the most leaves
// hostable at v (ties broken by key order), or -1.
func (c *Catalog) MaximalAtHead(v graph.V) int {
	best := -1
	for _, i := range c.AtHead(v) {
		if best < 0 || len(c.Stars[i].Star.Leaves) > len(c.Stars[best].Star.Leaves) {
			best = int(i)
		}
	}
	return best
}
