// Package spider implements Stage I of SpiderMine: mining all frequent
// r-spiders of the host graph, the per-head spider index Spider(v), the
// seed-count computation M(K, ε, Vmin) of Lemma 2, and the random seed
// draw.
//
// For the default radius r=1 a spider is a star: a head label plus a
// multiset of leaf labels. Stars are enumerated level-wise over the leaf
// multiset with apriori pruning on head-count support. Deeper spiders
// (r >= 2) are rooted label trees mined by composing stars (see tree.go);
// their cost grows exponentially in r, matching Appendix C(3).
package spider

import (
	"context"
	"slices"
	"strconv"

	"repro/internal/graph"
	"repro/internal/par"
)

// Star is a radius-1 spider: Head is the head vertex label; Leaves is the
// sorted multiset of leaf labels.
type Star struct {
	Head   graph.Label
	Leaves []graph.Label
}

// Key returns a canonical string key for the star.
func (s Star) Key() string {
	b := make([]byte, 0, 4+4*len(s.Leaves))
	b = strconv.AppendInt(b, int64(s.Head), 10)
	b = append(b, ':')
	for i, l := range s.Leaves {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}

// cmpStars orders mined stars by head label, then leaf multiset
// (lexicographic, shorter first on common prefix). Equivalent to ordering
// by Key() up to the digit-string vs numeric distinction; used by
// sortMined so the comparator never formats strings.
func cmpStars(a, b *MinedStar) int {
	if a.Star.Head != b.Star.Head {
		return int(a.Star.Head) - int(b.Star.Head)
	}
	al, bl := a.Star.Leaves, b.Star.Leaves
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return int(al[i]) - int(bl[i])
		}
	}
	return len(al) - len(bl)
}

// Graph materializes the star as a pattern graph: vertex 0 is the head.
func (s Star) Graph() *graph.Graph {
	b := graph.NewBuilder(1+len(s.Leaves), len(s.Leaves))
	head := b.AddVertex(s.Head)
	for _, l := range s.Leaves {
		leaf := b.AddVertex(l)
		b.AddEdge(head, leaf)
	}
	return b.Build()
}

// Size returns the number of edges of the star.
func (s Star) Size() int { return len(s.Leaves) }

// MinedStar couples a star with the host head vertices that can host it.
type MinedStar struct {
	Star  Star
	Hosts []graph.V // sorted head vertices v with label(v)=Head and enough labeled neighbors
}

// Support returns the head-count support of the star: the number of
// distinct host vertices whose neighborhoods contain the leaf multiset.
// This is the harmful-overlap support of a star up to leaf sharing, and is
// anti-monotone in the leaf multiset.
func (m *MinedStar) Support() int { return len(m.Hosts) }

// Options configures spider mining.
type Options struct {
	// MinSupport is the support threshold σ.
	MinSupport int
	// MaxLeaves caps the number of leaves per star (0 = max degree).
	// Larger stars are closed under the growth procedure anyway, so a cap
	// bounds Stage I without losing large patterns.
	MaxLeaves int
	// Radius r of the spiders (1 or 2+; radius >= 2 uses tree spiders).
	Radius int
	// MaxSpiders aborts enumeration past this many frequent spiders
	// (0 = unlimited); scale-free graphs can produce millions (Fig. 17).
	MaxSpiders int
	// Workers parallelizes Stage I: 0/1 sequential, > 1 that many
	// goroutines, < 0 GOMAXPROCS. The level-1 scan partitions head
	// vertices across workers (contiguous chunks merged in chunk order)
	// and level expansion shards parent stars (outputs reduced in frontier
	// order), so the mined spider list is identical across settings.
	Workers int
}

// DefaultOptions returns the options used throughout the paper's
// experiments: σ as given, r=1, no caps.
func DefaultOptions(minSupport int) Options {
	return Options{MinSupport: minSupport, Radius: 1}
}

// MineStars enumerates all frequent stars of g level-wise with no
// cancellation; see MineStarsContext.
func MineStars(g *graph.Graph, opt Options) []*MinedStar {
	stars, _ := MineStarsContext(context.Background(), g, opt)
	return stars
}

// MineStarsContext enumerates all frequent stars of g level-wise.
//
// Level 1 counts single-leaf stars from the edge list. Level k+1 extends
// each frequent star by one leaf label >= its last leaf (canonical
// generation order, no duplicates), re-verifying hosts. Hosts are carried
// level to level so each extension only scans its parent's host list.
//
// Cancellation is observed between levels and inside each level's sharded
// expansion; on ctx expiry the stars of every *completed* level are
// returned alongside ctx.Err() — levels commit atomically, so the partial
// catalog is deterministic for a cancellation observed at any given level.
func MineStarsContext(ctx context.Context, g *graph.Graph, opt Options) ([]*MinedStar, error) {
	sigma := opt.MinSupport
	if sigma < 1 {
		sigma = 1
	}
	maxLeaves := opt.MaxLeaves
	if maxLeaves <= 0 {
		maxLeaves = g.MaxDegree()
	}

	// Per-vertex neighbor label multiset, as sorted label slices carved out
	// of one flat allocation per worker chunk (the ranges mirror the
	// graph's CSR layout). Chunks partition the vertex range contiguously,
	// so each worker writes disjoint nbrLabels slots.
	nbrLabels := make([][]graph.Label, g.N())
	chunks := par.Chunks(g.N(), opt.Workers)
	if err := par.Do(ctx, len(chunks), len(chunks), func(_, ci int) {
		lo, hi := chunks[ci][0], chunks[ci][1]
		size := 0
		for v := lo; v < hi; v++ {
			size += g.Degree(graph.V(v))
		}
		flat := make([]graph.Label, 0, size)
		for v := lo; v < hi; v++ {
			start := len(flat)
			for _, w := range g.Neighbors(graph.V(v)) {
				flat = append(flat, g.Label(w))
			}
			ls := flat[start:]
			slices.Sort(ls)
			nbrLabels[v] = ls
		}
	}); err != nil {
		return nil, err
	}
	countLabel := func(v graph.V, l graph.Label) int {
		ls := nbrLabels[v]
		lo, _ := slices.BinarySearch(ls, l)
		hi := lo
		for hi < len(ls) && ls[hi] == l {
			hi++
		}
		return hi - lo
	}

	// Level 1: partition the candidate head vertices across workers, each
	// building a local (head label, leaf label) → hosts table, then merge
	// the locals in chunk order. Chunks are ascending contiguous vertex
	// ranges, so every merged host list comes out ascending — the same
	// lists the sequential scan builds.
	type hostKey struct {
		head, leaf graph.Label
	}
	locals, err := par.Map(ctx, len(chunks), len(chunks), func(_, ci int) map[hostKey][]graph.V {
		local := make(map[hostKey][]graph.V)
		for v := chunks[ci][0]; v < chunks[ci][1]; v++ {
			hl := g.Label(graph.V(v))
			var prev graph.Label = -1
			for _, l := range nbrLabels[v] {
				if l == prev {
					continue
				}
				prev = l
				local[hostKey{hl, l}] = append(local[hostKey{hl, l}], graph.V(v))
			}
		}
		return local
	})
	if err != nil {
		return nil, err
	}
	var lvl1 map[hostKey][]graph.V
	if len(locals) == 1 {
		lvl1 = locals[0] // sequential / single-chunk: no copy
	} else {
		lvl1 = make(map[hostKey][]graph.V)
		for _, local := range locals {
			for k, hosts := range local {
				lvl1[k] = append(lvl1[k], hosts...)
			}
		}
	}
	var frontier []*MinedStar
	for k, hosts := range lvl1 {
		if len(hosts) >= sigma {
			slices.Sort(hosts)
			frontier = append(frontier, &MinedStar{
				Star:  Star{Head: k.head, Leaves: []graph.Label{k.leaf}},
				Hosts: hosts,
			})
		}
	}
	sortMined(frontier)

	all := append([]*MinedStar(nil), frontier...)
	expand := func(ms *MinedStar) []*MinedStar {
		var out []*MinedStar
		last := ms.Star.Leaves[len(ms.Star.Leaves)-1]
		// Candidate extension labels: any label >= last present among
		// hosts' neighbors.
		candSet := make(map[graph.Label]struct{})
		for _, v := range ms.Hosts {
			ls := nbrLabels[v]
			lo, _ := slices.BinarySearch(ls, last)
			var prev graph.Label = -1
			for _, l := range ls[lo:] {
				if l != prev {
					candSet[l] = struct{}{}
					prev = l
				}
			}
		}
		cands := make([]graph.Label, 0, len(candSet))
		for l := range candSet {
			cands = append(cands, l)
		}
		slices.Sort(cands)

		needOf := func(l graph.Label) int {
			need := 1
			for _, x := range ms.Star.Leaves {
				if x == l {
					need++
				}
			}
			return need
		}
		for _, l := range cands {
			need := needOf(l)
			var hosts []graph.V
			for _, v := range ms.Hosts {
				if countLabel(v, l) >= need {
					hosts = append(hosts, v)
				}
			}
			if len(hosts) < sigma {
				continue
			}
			leaves := make([]graph.Label, len(ms.Star.Leaves)+1)
			copy(leaves, ms.Star.Leaves)
			leaves[len(leaves)-1] = l
			slices.Sort(leaves)
			out = append(out, &MinedStar{Star: Star{Head: ms.Star.Head, Leaves: leaves}, Hosts: hosts})
		}
		return out
	}
	for level := 1; level < maxLeaves && len(frontier) > 0; level++ {
		if opt.MaxSpiders > 0 && len(all) >= opt.MaxSpiders {
			break
		}
		next, err := expandLevel(ctx, frontier, expand, opt.Workers)
		if err != nil {
			// Return only fully committed levels: the partial catalog is
			// then a deterministic function of how many levels completed.
			return all, err
		}
		// Canonical generation (extend only with labels >= last) guarantees
		// uniqueness already; sort for determinism.
		sortMined(next)
		all = append(all, next...)
		frontier = next
	}
	if opt.MaxSpiders > 0 && len(all) > opt.MaxSpiders {
		all = all[:opt.MaxSpiders]
	}
	return all, nil
}

func sortMined(ms []*MinedStar) {
	slices.SortFunc(ms, cmpStars)
}

// expandLevel applies expand to every frontier star, optionally with a
// worker pool. Per-parent outputs land in frontier-order slots and are
// concatenated in that order, so the result is identical for any worker
// count. A cancelled expansion discards the whole level.
func expandLevel(ctx context.Context, frontier []*MinedStar, expand func(*MinedStar) []*MinedStar, workers int) ([]*MinedStar, error) {
	results, err := par.Map(ctx, len(frontier), workers, func(_, i int) []*MinedStar {
		return expand(frontier[i])
	})
	if err != nil {
		return nil, err
	}
	var next []*MinedStar
	for _, r := range results {
		next = append(next, r...)
	}
	return next, nil
}

// Catalog indexes mined spiders for the random draw and the per-head
// Spider(v) lookup used by SpiderGrow and the Lemma 2 analysis.
type Catalog struct {
	Stars  []*MinedStar
	byHead map[graph.V][]int
}

// NewCatalog builds a catalog over mined stars.
func NewCatalog(stars []*MinedStar) *Catalog {
	c := &Catalog{Stars: stars, byHead: make(map[graph.V][]int)}
	for i, ms := range stars {
		for _, v := range ms.Hosts {
			c.byHead[v] = append(c.byHead[v], i)
		}
	}
	return c
}

// Len returns the number of distinct frequent spiders |S_all|.
func (c *Catalog) Len() int { return len(c.Stars) }

// AtHead returns the indices of spiders hostable at head vertex v
// (the paper's Spider(v)).
func (c *Catalog) AtHead(v graph.V) []int { return c.byHead[v] }

// MaximalAtHead returns the index of the spider with the most leaves
// hostable at v (ties broken by key order), or -1.
func (c *Catalog) MaximalAtHead(v graph.V) int {
	best := -1
	for _, i := range c.byHead[v] {
		if best < 0 || len(c.Stars[i].Star.Leaves) > len(c.Stars[best].Star.Leaves) {
			best = i
		}
	}
	return best
}
