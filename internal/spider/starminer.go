package spider

import (
	"context"
	"slices"

	"repro/internal/graph"
	"repro/internal/par"
)

// StarMiner is the reusable Stage I engine: it mines the frequent stars of
// a host graph level-wise, owning every table the enumeration needs as
// flat, label-sorted scratch grown once and reused across runs. The zero
// value is ready to use.
//
// Ownership contract: the []*MinedStar returned by Mine — the stars, their
// Hosts and Leaves slices — is carved out of the StarMiner's arenas and is
// INVALIDATED by the next Mine call on the same StarMiner. The package
// function MineStarsContext uses a throwaway StarMiner, so its output is
// caller-owned forever; the spidermine Miner holds a StarMiner across runs
// and rebuilds its catalog from each run's output before the next.
//
// Internals, replacing the historical map-based level tables:
//
//   - nbrOff/nbrFlat: CSR-shaped per-vertex sorted neighbor-label table
//     (was [][]graph.Label of per-chunk carved slices);
//   - level 1: flat (head, leaf, host) triples built per chunk,
//     concatenated in chunk order and sorted by the total order
//     (head, leaf, host) — the exact frontier the map+sort path built;
//   - expansion: per-worker starScratch (candidate/host buffers plus the
//     output arenas), with per-item output spans concatenated in frontier
//     order, so results stay bit-identical for any worker count.
type StarMiner struct {
	nbrFlat []graph.Label
	nbrOff  []int32

	triples      []pairTriple
	chunkTriples [][]pairTriple

	all, frontier, next []*MinedStar
	spans               []expandSpan
	chunks              [][2]int
	ws                  par.Workspace[starScratch]

	// Per-call state for the persistent par.Do bodies below. A closure
	// passed to par.Do escapes (it may run on spawned goroutines), so an
	// inline literal heap-allocates on every call; these capture only sm
	// and read their per-call inputs from here, allocating once per
	// StarMiner instead of once per run/level.
	curG        *graph.Graph
	curSigma    int
	curFrontier []*MinedStar
	curScrs     []*starScratch
	csrFn       func(worker, item int)
	l1Fn        func(worker, item int)
	expFn       func(worker, item int)
}

// pairTriple is one level-1 observation: head vertex v (labeled head) has
// at least one neighbor labeled leaf.
type pairTriple struct {
	head, leaf graph.Label
	v          graph.V
}

func cmpTriple(a, b pairTriple) int {
	if a.head != b.head {
		return int(a.head) - int(b.head)
	}
	if a.leaf != b.leaf {
		return int(a.leaf) - int(b.leaf)
	}
	return int(a.v) - int(b.v)
}

// expandSpan records which worker's output buffer holds one frontier
// item's extensions, for the ordered concatenation after the join.
type expandSpan struct {
	w, lo, hi int32
}

// starScratch is one worker's expansion state: transient candidate/host
// buffers plus the arenas that back the retained output (hosts, leaf
// multisets, MinedStar structs). Worker i owns scratch i for the duration
// of a level; arenas reset only between runs, never between levels, so
// every star of a run stays valid until the next Mine.
type starScratch struct {
	cands []graph.Label
	hosts []graph.V
	out   []*MinedStar

	hostArena arena[graph.V]
	leafArena arena[graph.Label]
	stars     arena[MinedStar]
}

func (s *starScratch) resetRun() {
	s.hostArena.reset()
	s.leafArena.reset()
	s.stars.reset()
}

// arena is a grow-once block allocator for run-scoped output: alloc carves
// capacity-capped slices from the current block (so append on a carved
// slice can never alias its neighbor), and reset recycles the arena for
// the next run, upsizing the block to the previous run's total demand so
// warm runs carve everything from one allocation.
type arena[T any] struct {
	cur  []T
	used int
}

func (a *arena[T]) alloc(n int) []T {
	a.used += n
	if len(a.cur)+n > cap(a.cur) {
		sz := 2 * cap(a.cur)
		if sz < 1024 {
			sz = 1024
		}
		for sz < n {
			sz <<= 1
		}
		a.cur = make([]T, 0, sz)
	}
	lo := len(a.cur)
	a.cur = a.cur[:lo+n]
	return a.cur[lo : lo+n : lo+n]
}

func (a *arena[T]) reset() {
	if a.used > cap(a.cur) {
		sz := 1024
		for sz < a.used {
			sz <<= 1
		}
		a.cur = make([]T, 0, sz)
	}
	a.cur = a.cur[:0]
	a.used = 0
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func (sm *StarMiner) nbrLabels(v graph.V) []graph.Label {
	return sm.nbrFlat[sm.nbrOff[v]:sm.nbrOff[v+1]]
}

// countLabel counts occurrences of l among v's neighbor labels.
func (sm *StarMiner) countLabel(v graph.V, l graph.Label) int {
	ls := sm.nbrLabels(v)
	lo, _ := slices.BinarySearch(ls, l)
	hi := lo
	for hi < len(ls) && ls[hi] == l {
		hi++
	}
	return hi - lo
}

// Mine enumerates all frequent stars of g level-wise; see MineStarsContext
// for the level-commit cancellation contract and the package comment for
// the output-ownership contract.
func (sm *StarMiner) Mine(ctx context.Context, g *graph.Graph, opt Options) ([]*MinedStar, error) {
	sigma := opt.MinSupport
	if sigma < 1 {
		sigma = 1
	}
	maxLeaves := opt.MaxLeaves
	if maxLeaves <= 0 {
		maxLeaves = g.MaxDegree()
	}
	for _, s := range sm.ws.All() {
		s.resetRun()
	}

	// Per-vertex sorted neighbor-label table, CSR-shaped. Chunks partition
	// the vertex range contiguously, so workers write disjoint segments.
	n := g.N()
	sm.nbrOff = growI32(sm.nbrOff, n+1)
	total := 0
	for v := 0; v < n; v++ {
		sm.nbrOff[v] = int32(total)
		total += g.Degree(graph.V(v))
	}
	sm.nbrOff[n] = int32(total)
	if cap(sm.nbrFlat) < total {
		sm.nbrFlat = make([]graph.Label, total)
	}
	sm.nbrFlat = sm.nbrFlat[:total]
	sm.chunks = par.AppendChunks(sm.chunks[:0], n, opt.Workers)
	chunks := sm.chunks
	sm.curG = g
	if sm.csrFn == nil {
		sm.csrFn = func(_, ci int) {
			g, c := sm.curG, sm.chunks[ci]
			for v := c[0]; v < c[1]; v++ {
				seg := sm.nbrFlat[sm.nbrOff[v]:sm.nbrOff[v+1]]
				for i, w := range g.Neighbors(graph.V(v)) {
					seg[i] = g.Label(w)
				}
				slices.Sort(seg)
			}
		}
	}
	if err := par.Do(ctx, len(chunks), len(chunks), sm.csrFn); err != nil {
		return nil, err
	}

	// Level 1: flat (head, leaf, host) triples per chunk, concatenated in
	// chunk order, then sorted by the total order — same frontier as the
	// historical per-chunk hash tables merged and sorted, without the maps.
	for len(sm.chunkTriples) < len(chunks) {
		sm.chunkTriples = append(sm.chunkTriples, nil)
	}
	if sm.l1Fn == nil {
		sm.l1Fn = func(_, ci int) {
			g, c := sm.curG, sm.chunks[ci]
			buf := sm.chunkTriples[ci][:0]
			for v := c[0]; v < c[1]; v++ {
				hl := g.Label(graph.V(v))
				var prev graph.Label = -1
				for _, l := range sm.nbrLabels(graph.V(v)) {
					if l == prev {
						continue
					}
					prev = l
					buf = append(buf, pairTriple{head: hl, leaf: l, v: graph.V(v)})
				}
			}
			sm.chunkTriples[ci] = buf
		}
	}
	if err := par.Do(ctx, len(chunks), len(chunks), sm.l1Fn); err != nil {
		return nil, err
	}
	triples := sm.triples[:0]
	for ci := range chunks {
		triples = append(triples, sm.chunkTriples[ci]...)
	}
	slices.SortFunc(triples, cmpTriple)
	sm.triples = triples

	// Frequent single-leaf stars: one group per (head, leaf) run; hosts
	// come out ascending because triples are sorted.
	s0 := sm.ws.For(1)[0]
	frontier := sm.frontier[:0]
	for i := 0; i < len(triples); {
		j := i + 1
		for j < len(triples) && triples[j].head == triples[i].head && triples[j].leaf == triples[i].leaf {
			j++
		}
		if j-i >= sigma {
			hosts := s0.hostArena.alloc(j - i)
			for k := i; k < j; k++ {
				hosts[k-i] = triples[k].v
			}
			leaves := s0.leafArena.alloc(1)
			leaves[0] = triples[i].leaf
			ms := &s0.stars.alloc(1)[0]
			*ms = MinedStar{Star: Star{Head: triples[i].head, Leaves: leaves}, Hosts: hosts}
			frontier = append(frontier, ms)
		}
		i = j
	}
	sm.frontier = frontier

	all := append(sm.all[:0], frontier...)
	cur, spare := frontier, sm.next
	for level := 1; level < maxLeaves && len(cur) > 0; level++ {
		if opt.MaxSpiders > 0 && len(all) >= opt.MaxSpiders {
			break
		}
		next, err := sm.expandLevel(ctx, g, cur, sigma, opt.Workers, spare[:0])
		if err != nil {
			// Return only fully committed levels: the partial catalog is
			// then a deterministic function of how many levels completed.
			sm.all = all
			return all, err
		}
		// Canonical generation (extend only with labels >= last) guarantees
		// uniqueness already; sort for determinism.
		sortMined(next)
		all = append(all, next...)
		cur, spare = next, cur
	}
	sm.frontier, sm.next = cur, spare
	if opt.MaxSpiders > 0 && len(all) > opt.MaxSpiders {
		all = all[:opt.MaxSpiders]
	}
	sm.all = all
	return all, nil
}

// expandLevel extends every frontier star by one leaf, sharded across
// workers. Per-item outputs land in per-worker append buffers with spans
// recorded per item; concatenating spans in frontier order reproduces the
// sequential output for any worker count.
func (sm *StarMiner) expandLevel(ctx context.Context, g *graph.Graph, frontier []*MinedStar, sigma, workers int, dst []*MinedStar) ([]*MinedStar, error) {
	wk := par.Bound(len(frontier), workers)
	scrs := sm.ws.For(wk)
	for _, s := range scrs {
		s.out = s.out[:0]
	}
	if cap(sm.spans) < len(frontier) {
		sm.spans = make([]expandSpan, len(frontier))
	}
	spans := sm.spans[:len(frontier)]
	sm.curG, sm.curSigma, sm.curFrontier, sm.curScrs = g, sigma, frontier, scrs
	if sm.expFn == nil {
		sm.expFn = func(w, i int) {
			s := sm.curScrs[w]
			lo := len(s.out)
			sm.expand(sm.curG, sm.curFrontier[i], sm.curSigma, s)
			sm.spans[i] = expandSpan{w: int32(w), lo: int32(lo), hi: int32(len(s.out))}
		}
	}
	err := par.Do(ctx, len(frontier), wk, sm.expFn)
	sm.curFrontier, sm.curScrs = nil, nil
	if err != nil {
		return nil, err
	}
	for _, sp := range spans {
		dst = append(dst, scrs[sp.w].out[sp.lo:sp.hi]...)
	}
	return dst, nil
}

// expand appends to s.out every frequent one-leaf extension of ms whose
// new leaf label is >= the star's last leaf (canonical generation order).
func (sm *StarMiner) expand(g *graph.Graph, ms *MinedStar, sigma int, s *starScratch) {
	leaves := ms.Star.Leaves
	last := leaves[len(leaves)-1]
	// Candidate extension labels: any label >= last present among hosts'
	// neighbors, deduplicated by sort+compact.
	cands := s.cands[:0]
	for _, v := range ms.Hosts {
		ls := sm.nbrLabels(v)
		lo, _ := slices.BinarySearch(ls, last)
		var prev graph.Label = -1
		for _, l := range ls[lo:] {
			if l != prev {
				cands = append(cands, l)
				prev = l
			}
		}
	}
	slices.Sort(cands)
	cands = slices.Compact(cands)
	s.cands = cands

	for _, l := range cands {
		need := 1
		for _, x := range leaves {
			if x == l {
				need++
			}
		}
		hosts := s.hosts[:0]
		for _, v := range ms.Hosts {
			if sm.countLabel(v, l) >= need {
				hosts = append(hosts, v)
			}
		}
		s.hosts = hosts
		if len(hosts) < sigma {
			continue
		}
		hcopy := s.hostArena.alloc(len(hosts))
		copy(hcopy, hosts)
		lcopy := s.leafArena.alloc(len(leaves) + 1)
		copy(lcopy, leaves)
		lcopy[len(lcopy)-1] = l
		slices.Sort(lcopy)
		nms := &s.stars.alloc(1)[0]
		*nms = MinedStar{Star: Star{Head: ms.Star.Head, Leaves: lcopy}, Hosts: hcopy}
		s.out = append(s.out, nms)
	}
}
