package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/txdb"
)

func TestMineFacade(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7})
	if len(res.Patterns) == 0 {
		t.Fatal("facade returned nothing")
	}
	if res.Stats.NumSpiders == 0 {
		t.Fatal("stats not threaded through")
	}
}

func TestMineTransactionsFacade(t *testing.T) {
	db, _ := txdb.SyntheticTx(txdb.SyntheticTxConfig{
		NumGraphs: 5, N: 100, AvgDeg: 4, NumLabels: 40,
		Large: gen.InjectSpec{NV: 10, Count: 1, Support: 1},
		Seed:  3,
	})
	res := MineTransactions(db, Config{MinSupport: 4, K: 3, Dmax: 6, Seed: 3})
	if res == nil {
		t.Fatal("nil result")
	}
}
