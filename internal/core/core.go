// Package core is the stable entry point to the paper's primary
// contribution: the SpiderMine top-K large-pattern miner. It re-exports
// the types of internal/spidermine so that callers depend on one import
// path while the implementation remains free to evolve package-internally.
//
// For the substrates (graphs, isomorphism, support measures, spiders,
// baselines, generators), import their packages directly; see README.md
// for the map.
package core

import (
	"repro/internal/graph"
	"repro/internal/spidermine"
	"repro/internal/txdb"
)

// Config parameterizes a mining run. See spidermine.Config for field
// documentation.
type Config = spidermine.Config

// Result is the outcome of a mining run: up to K structurally distinct
// patterns, size-descending, plus run statistics.
type Result = spidermine.Result

// Stats carries per-run counters (spiders mined, M, merges, isomorphism
// tests skipped by spider-set pruning, per-stage wall time).
type Stats = spidermine.Stats

// Mine runs SpiderMine on a single graph: with probability >= 1−ε the
// result contains the top-K largest frequent patterns of g with
// diam <= Dmax and support >= σ.
func Mine(g *graph.Graph, cfg Config) *Result { return spidermine.Mine(g, cfg) }

// MineTransactions runs SpiderMine in the graph-transaction setting,
// counting support as the number of database graphs containing the
// pattern.
func MineTransactions(db *txdb.DB, cfg Config) *Result {
	return spidermine.MineTransactions(db, cfg)
}
