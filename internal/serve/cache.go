package serve

import (
	"container/list"
	"sync"

	"repro/internal/store"
	"repro/mine"
)

// CacheKey identifies one mining computation: the host graph's content
// fingerprint, the miner's registry name, and the fingerprint of the
// canonical Options serialization (mine.Options.Canonical — every
// semantic field, OnProgress excluded). Identical keys are identical
// computations under the façade's determinism contract, so a cached
// Result can stand in for a re-run.
type CacheKey struct {
	Host    string
	Miner   string
	Options string
}

// Key builds the cache key for a job specification.
func Key(hostFP, miner string, opts mine.Options) CacheKey {
	return CacheKey{Host: hostFP, Miner: miner, Options: FingerprintBytes([]byte(opts.Canonical()))}
}

// blobKey is the backend blob key for a cache key — the three frozen
// fingerprint components joined, each fixed-width hex so the join is
// injective.
func (k CacheKey) blobKey() string { return k.Host + "/" + k.Miner + "/" + k.Options }

// Cache is a bounded LRU result cache, optionally backed by a durable
// tier. Stored Results are shared by pointer between jobs and HTTP
// responses and are treated as immutable — the façade never mutates a
// returned Result, and nothing downstream may either. Only successful
// (nil-error) runs whose outcome is a deterministic function of the key
// are cached: cancelled runs' partials depend on where cancellation
// landed, and MaxWallClock-truncated results on machine load, so both
// must re-run (see Scheduler.runJob).
//
// With a backend (NewCacheWith), the LRU is the in-memory tier and
// every Put writes through: an L1 miss consults the backend, decodes
// the stored Result (mine.DecodeResult), and promotes it — so the
// effective capacity is the backend's, with the LRU bounding only the
// decoded working set.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*list.Element
	lru     list.List // front = most recently used
	backend store.Backend
	hits    uint64
	misses  uint64
	// degraded counts lookups that failed in the backend and were served
	// as misses (the serve/cache/get failpoint, a durable tier's read
	// errors, an undecodable stored blob). Kept apart from misses: a miss
	// is a statement about the key ("nobody computed this"), a degrade
	// is a statement about the cache's health — folding them together
	// understates the real hit rate exactly when the cache is sick.
	degraded  uint64
	evictions uint64
	// backendHits is the subset of hits served from the durable tier
	// (L1 miss, backend hit, promoted); persistDrops counts Puts whose
	// durable write failed — the entry lives in L1 only and will not
	// survive a restart.
	backendHits  uint64
	persistDrops uint64
}

type cacheEntry struct {
	key CacheKey
	res *mine.Result
}

// NewCache returns a memory-only result cache bounded to capacity
// entries; capacity <= 0 disables caching (every Get misses, Put is a
// no-op).
func NewCache(capacity int) *Cache {
	c := &Cache{cap: capacity, entries: make(map[CacheKey]*list.Element)}
	c.lru.Init()
	return c
}

// NewCacheWith returns a result cache with an in-memory LRU tier of
// capacity entries over the given durable backend.
func NewCacheWith(capacity int, b store.Backend) *Cache {
	c := NewCache(capacity)
	c.backend = b
	return c
}

// Get returns the cached Result for key, marking it most recently used.
// A failed backend read (the serve/cache/get failpoint; a durable
// tier's I/O errors) degrades to a miss: the cache is an optimization,
// never a dependency, so lookups cannot fail — only miss. Degrades are
// counted in CacheStats.Degraded, not Misses, so the hit-rate SLO stays
// honest while faults are injected or a backend is sick.
func (c *Cache) Get(key CacheKey) (*mine.Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	if err := fpCacheGet.Hit(); err != nil {
		c.mu.Lock()
		c.degraded++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	if c.backend == nil {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()
	// L1 miss with a durable tier: read and decode outside the lock (a
	// disk read plus a full Result decode must not serialize the cache),
	// then promote. A racing Put of the same key is benign — both sides
	// hold an identical-by-determinism Result.
	blob, err := c.backend.Get(kindResult, key.blobKey())
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if err == store.ErrNotFound {
			c.misses++
		} else {
			c.degraded++
		}
		return nil, false
	}
	res, err := mine.DecodeResult(blob)
	if err != nil {
		// An undecodable blob (torn write survived CRC? codec drift?) is a
		// degrade, not a miss: the computation was done, we just can't
		// read it back. The job re-runs and its Put overwrites the blob.
		c.degraded++
		return nil, false
	}
	c.hits++
	c.backendHits++
	c.putLocked(key, res)
	return res, true
}

// Put stores a Result under key, evicting the least recently used entry
// when the cache is full. A failed backend write (the serve/cache/put
// failpoint, a durable tier's I/O errors) drops that tier's store
// silently — the result is still served from the job; only the O(1)
// repeat-query path (or its restart-durability) is lost.
func (c *Cache) Put(key CacheKey, res *mine.Result) {
	if c == nil || c.cap <= 0 || res == nil {
		return
	}
	if err := fpCachePut.Hit(); err != nil {
		return
	}
	c.mu.Lock()
	c.putLocked(key, res)
	c.mu.Unlock()
	if c.backend == nil {
		return
	}
	// Write through outside the lock; the encode is CPU-bound and the
	// append fsyncs.
	blob, err := mine.EncodeResult(res)
	if err == nil {
		err = c.backend.Put(kindResult, key.blobKey(), blob)
	}
	if err != nil {
		c.mu.Lock()
		c.persistDrops++
		c.mu.Unlock()
	}
}

// putLocked inserts or refreshes the L1 entry for key. Caller holds mu.
func (c *Cache) putLocked(key CacheKey, res *mine.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
// Degraded counts backend-failed lookups served as misses; the true
// hit rate is Hits / (Hits + Misses), with Degraded reported beside it
// rather than polluting either term. BackendHits ⊆ Hits; PersistDrops
// counts results that reached L1 but not the durable tier.
type CacheStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Degraded     uint64 `json:"degraded"`
	Evictions    uint64 `json:"evictions"`
	BackendHits  uint64 `json:"backend_hits"`
	PersistDrops uint64 `json:"persist_drops"`
	Entries      int    `json:"entries"`
	Cap          int    `json:"capacity"`
}

// Stats snapshots hit/miss/degrade/eviction counters and occupancy.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Degraded: c.degraded, Evictions: c.evictions,
		BackendHits: c.backendHits, PersistDrops: c.persistDrops,
		Entries: c.lru.Len(), Cap: c.cap,
	}
}
