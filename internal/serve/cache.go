package serve

import (
	"container/list"
	"sync"

	"repro/mine"
)

// CacheKey identifies one mining computation: the host graph's content
// fingerprint, the miner's registry name, and the fingerprint of the
// canonical Options serialization (mine.Options.Canonical — every
// semantic field, OnProgress excluded). Identical keys are identical
// computations under the façade's determinism contract, so a cached
// Result can stand in for a re-run.
type CacheKey struct {
	Host    string
	Miner   string
	Options string
}

// Key builds the cache key for a job specification.
func Key(hostFP, miner string, opts mine.Options) CacheKey {
	return CacheKey{Host: hostFP, Miner: miner, Options: FingerprintBytes([]byte(opts.Canonical()))}
}

// Cache is a bounded LRU result cache. Stored Results are shared by
// pointer between jobs and HTTP responses and are treated as immutable —
// the façade never mutates a returned Result, and nothing downstream may
// either. Only successful (nil-error) runs whose outcome is a
// deterministic function of the key are cached: cancelled runs' partials
// depend on where cancellation landed, and MaxWallClock-truncated
// results on machine load, so both must re-run (see Scheduler.runJob).
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*list.Element
	lru     list.List // front = most recently used
	hits    uint64
	misses  uint64
	// degraded counts lookups that failed in the backend and were served
	// as misses (the serve/cache/get failpoint today; a replicated
	// cache's network errors tomorrow). Kept apart from misses: a miss
	// is a statement about the key ("nobody computed this"), a degrade
	// is a statement about the cache's health — folding them together
	// understates the real hit rate exactly when the cache is sick.
	degraded  uint64
	evictions uint64
}

type cacheEntry struct {
	key CacheKey
	res *mine.Result
}

// NewCache returns a result cache bounded to capacity entries;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	c := &Cache{cap: capacity, entries: make(map[CacheKey]*list.Element)}
	c.lru.Init()
	return c
}

// Get returns the cached Result for key, marking it most recently used.
// A failed backend read (the serve/cache/get failpoint; a future
// replicated cache's network errors) degrades to a miss: the cache is an
// optimization, never a dependency, so lookups cannot fail — only miss.
// Degrades are counted in CacheStats.Degraded, not Misses, so the
// hit-rate SLO stays honest while faults are injected or a backend is
// sick.
func (c *Cache) Get(key CacheKey) (*mine.Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	if err := fpCacheGet.Hit(); err != nil {
		c.mu.Lock()
		c.degraded++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a Result under key, evicting the least recently used entry
// when the cache is full. A failed backend write (the serve/cache/put
// failpoint) drops the store silently — the result is still served from
// the job; only the O(1) repeat-query path is lost.
func (c *Cache) Put(key CacheKey, res *mine.Result) {
	if c == nil || c.cap <= 0 || res == nil {
		return
	}
	if err := fpCachePut.Hit(); err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
// Degraded counts backend-failed lookups served as misses; the true
// hit rate is Hits / (Hits + Misses), with Degraded reported beside it
// rather than polluting either term.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Degraded  uint64 `json:"degraded"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Cap       int    `json:"capacity"`
}

// Stats snapshots hit/miss/degrade/eviction counters and occupancy.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Degraded: c.degraded, Evictions: c.evictions,
		Entries: c.lru.Len(), Cap: c.cap,
	}
}
