package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrUnknownGraph reports a lookup miss: no graph with that fingerprint
// is registered. Get wraps it with the id; any other Get error is a read
// failure (the serve/store/get failpoint, or a persistent backend's I/O
// errors) and serving surfaces must treat it as retryable, not as "not
// found".
var ErrUnknownGraph = errors.New("serve: unknown graph")

// ErrPersist marks a write-through failure on the durable tier: the
// graph was parsed and fingerprinted but could not be made durable, so
// it was not registered. Serving surfaces map it to 503 backpressure —
// the client should retry, not fix its request.
var ErrPersist = errors.New("serve: persistent store write failed")

// kindGraph and kindResult are the backend blob namespaces the serving
// layer uses: uploaded host graphs keyed by content fingerprint, and
// cached mining results keyed by the frozen cache-key triple.
const (
	kindGraph  = "graphs"
	kindResult = "results"
	// kindImage is the file-tier namespace for SPC1 graph images (see
	// store.FileBackend): whole files alongside the log, mmap'd back at
	// recovery so large hosts reopen in O(1) instead of re-decoding.
	kindImage = "images"
)

// DefaultImageEdgeThreshold is the edge count past which an uploaded
// host also gets an SPC1 image in the backend's file tier (when the
// backend has one). Below it the SPG1 blob decode is already cheap and
// the extra file would just double small hosts' disk footprint.
const DefaultImageEdgeThreshold = 1 << 20

// StoredGraph is one registered host graph. ID is the content
// fingerprint (FingerprintGraph), so a graph uploaded twice — under any
// name — registers once; Name is advisory metadata from the first
// upload. The graph itself is immutable (the package-wide contract of
// internal/graph), so StoredGraph is safe for concurrent reads.
type StoredGraph struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Vertices int       `json:"vertices"`
	Edges    int       `json:"edges"`
	Uploaded time.Time `json:"uploaded"`

	G *graph.Graph `json:"-"`
}

// Store is the concurrent registry of uploaded host graphs, keyed by
// content fingerprint. The decoded map is the read tier (jobs hold the
// *graph.Graph); every Add writes through to the durable backend first,
// so a graph is never registered without being durable — and Recover
// rebuilds the registry from the backend after a restart.
type Store struct {
	mu    sync.RWMutex
	byID  map[string]*StoredGraph
	order []string // registration order, for stable listings

	backend store.Backend

	// files is the backend's optional whole-file tier (feature-tested at
	// construction); imageEdges is the edge count at which uploads write
	// an SPC1 image through it (0 disables). mapped tracks the mmap
	// handles Recover opened so Close can unmap them.
	files      store.FileBackend
	imageEdges int
	mapped     []*graph.Mapped

	// imageWrites / imageErrs tally best-effort image persistence: a
	// failed image write never fails the upload (the SPG1 blob is the
	// durable copy), so the error count is the only trace.
	imageWrites obs.Counter
	imageErrs   obs.Counter

	// Read-path tallies (every Get; the unknown-fingerprint subset; the
	// backend-fault subset). The store owns them so a serving surface's
	// /metrics reads the same numbers the store itself saw.
	reads  obs.Counter
	misses obs.Counter
	faults obs.Counter
}

// NewStore returns an empty graph store over an in-process backend.
func NewStore() *Store { return NewStoreWith(store.NewMemory()) }

// NewStoreWith returns an empty graph store writing through to the
// given backend.
func NewStoreWith(b store.Backend) *Store {
	s := &Store{byID: make(map[string]*StoredGraph), backend: b}
	s.files, _ = b.(store.FileBackend)
	if s.files != nil {
		s.imageEdges = DefaultImageEdgeThreshold
	}
	return s
}

// SetImageEdgeThreshold overrides the edge count at which uploads also
// persist an SPC1 image to the backend's file tier; <= 0 disables image
// persistence. A no-op threshold change on a backend without a file
// tier stays a no-op.
func (s *Store) SetImageEdgeThreshold(edges int) {
	if edges <= 0 {
		s.imageEdges = 0
		return
	}
	s.imageEdges = edges
}

// Close unmaps every graph Recover opened via mmap. The store must not
// be read concurrently with or after Close — mapped graphs' memory is
// gone once unmapped.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, m := range s.mapped {
		if cerr := m.Close(); err == nil {
			err = cerr
		}
	}
	s.mapped = nil
	return err
}

// putImage best-effort persists g's SPC1 image to the file tier when
// the graph is past the threshold. Never fails the caller: the SPG1
// blob in the log is the durable copy, the image is an open-time
// optimization recreated on the next upload or recovery if lost.
func (s *Store) putImage(id string, g *graph.Graph) {
	if s.files == nil || s.imageEdges <= 0 || g.M() < s.imageEdges {
		return
	}
	if err := s.files.PutFile(kindImage, id, imageWriterTo{g}); err != nil {
		s.imageErrs.Inc()
		return
	}
	s.imageWrites.Inc()
}

// imageWriterTo adapts Graph.WriteImage to io.WriterTo for
// store.FileBackend.PutFile.
type imageWriterTo struct{ g *graph.Graph }

func (w imageWriterTo) WriteTo(dst io.Writer) (int64, error) { return w.g.WriteImage(dst) }

// encodeStoredGraph is the graph-blob wire form: a version byte, the
// advisory name, the upload time, then the graph's binary encoding
// (internal/graph codec).
func encodeStoredGraph(sg *StoredGraph) []byte {
	dst := []byte{1}
	dst = binary.AppendUvarint(dst, uint64(len(sg.Name)))
	dst = append(dst, sg.Name...)
	dst = binary.AppendVarint(dst, sg.Uploaded.UnixNano())
	return sg.G.AppendBinary(dst)
}

// decodeStoredMeta parses a graph blob's metadata prefix (version byte,
// advisory name, upload time) and returns the remaining SPG1 payload
// undecoded — the mapped recovery path needs the metadata without
// paying for (or allocating) the decode.
func decodeStoredMeta(id string, blob []byte) (name string, uploaded time.Time, spg1 []byte, err error) {
	if len(blob) < 1 || blob[0] != 1 {
		return "", time.Time{}, nil, fmt.Errorf("serve: graph blob %s: unknown version", id)
	}
	p := blob[1:]
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", time.Time{}, nil, fmt.Errorf("serve: graph blob %s: truncated name", id)
	}
	name = string(p[w : w+int(n)])
	p = p[w+int(n):]
	nanos, w := binary.Varint(p)
	if w <= 0 {
		return "", time.Time{}, nil, fmt.Errorf("serve: graph blob %s: truncated timestamp", id)
	}
	return name, time.Unix(0, nanos).UTC(), p[w:], nil
}

// decodeStoredGraph is encodeStoredGraph's inverse; id is the blob's
// backend key (the content fingerprint it was stored under).
func decodeStoredGraph(id string, blob []byte) (*StoredGraph, error) {
	name, uploaded, spg1, err := decodeStoredMeta(id, blob)
	if err != nil {
		return nil, err
	}
	g, err := graph.DecodeBinary(spg1)
	if err != nil {
		return nil, fmt.Errorf("serve: graph blob %s: %w", id, err)
	}
	return &StoredGraph{
		ID: id, Name: name,
		Vertices: g.N(), Edges: g.M(),
		Uploaded: uploaded,
		G:        g,
	}, nil
}

// Add registers a graph under its content fingerprint and returns the
// stored record. If a graph with the same content is already registered,
// the existing record is returned (its original name kept) and existed
// is true. The blob is written through to the durable backend before
// the registry learns of it; a failed write returns an error wrapping
// ErrPersist and registers nothing.
func (s *Store) Add(g *graph.Graph, name string) (sg *StoredGraph, existed bool, err error) {
	id := FingerprintGraph(g)
	s.mu.RLock()
	prev, ok := s.byID[id]
	s.mu.RUnlock()
	if ok {
		return prev, true, nil
	}
	sg = &StoredGraph{
		ID: id, Name: name,
		Vertices: g.N(), Edges: g.M(),
		Uploaded: time.Now().UTC(),
		G:        g,
	}
	// Durable first, registered second — outside the lock: an fsync on
	// the write-through must not block concurrent reads.
	if perr := s.backend.Put(kindGraph, id, encodeStoredGraph(sg)); perr != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrPersist, perr)
	}
	// Best-effort SPC1 image alongside the durable blob: a large host
	// re-opens by mmap at recovery instead of re-decoding.
	s.putImage(id, g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.byID[id]; ok {
		// A concurrent upload of the same content won the race; the extra
		// backend Put was an idempotent overwrite of identical bytes.
		return prev, true, nil
	}
	s.byID[id] = sg
	s.order = append(s.order, id)
	return sg, false, nil
}

// Recover rebuilds the registry from the durable backend. Every graph's
// content fingerprint is re-verified against the key it was stored
// under — a mismatch means corruption (or a codec drift) and fails
// recovery loudly rather than serving wrong bytes under a trusted id.
//
// When the backend has a file tier, a graph with a persisted SPC1 image
// recovers by mmap'ing the image (zero decode, zero heap) and
// re-verifying the fingerprint of the mapped graph; any image problem —
// missing file, failed open, wrong fingerprint — silently falls back to
// decoding the SPG1 blob, because the image is a cache, not the durable
// copy. mapped counts the graphs serving straight from the page cache.
// Call before serving traffic.
func (s *Store) Recover() (recovered, mapped int, err error) {
	keys, err := s.backend.List(kindGraph)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: recover graphs: %w", err)
	}
	for _, id := range keys {
		blob, err := s.backend.Get(kindGraph, id)
		if err != nil {
			return recovered, mapped, fmt.Errorf("serve: recover graph %s: %w", id, err)
		}
		name, uploaded, spg1, err := decodeStoredMeta(id, blob)
		if err != nil {
			return recovered, mapped, err
		}
		var sg *StoredGraph
		m := s.openImage(id)
		if m != nil {
			sg = &StoredGraph{
				ID: id, Name: name,
				Vertices: m.Graph().N(), Edges: m.Graph().M(),
				Uploaded: uploaded,
				G:        m.Graph(),
			}
		} else {
			g, derr := graph.DecodeBinary(spg1)
			if derr != nil {
				return recovered, mapped, fmt.Errorf("serve: graph blob %s: %w", id, derr)
			}
			if fp := FingerprintGraph(g); fp != id {
				return recovered, mapped, fmt.Errorf("serve: recover graph %s: fingerprint mismatch (decoded %s)", id, fp)
			}
			sg = &StoredGraph{
				ID: id, Name: name,
				Vertices: g.N(), Edges: g.M(),
				Uploaded: uploaded,
				G:        g,
			}
			// The image was missing or bad but the host is image-worthy:
			// rewrite it so the next restart maps instead of decoding.
			s.putImage(id, g)
		}
		s.mu.Lock()
		if _, ok := s.byID[id]; !ok {
			s.byID[id] = sg
			s.order = append(s.order, id)
			recovered++
			if m != nil {
				s.mapped = append(s.mapped, m)
				mapped++
				m = nil
			}
		}
		s.mu.Unlock()
		if m != nil {
			m.Close() // lost the registration race; drop the duplicate map
		}
	}
	return recovered, mapped, nil
}

// openImage tries the file-tier SPC1 image for id: mmap, structural
// verification (OpenMapped's streaming pass), then the content
// fingerprint check that ties the mapped bytes to the id they claim.
// Any failure returns nil — the caller decodes the SPG1 blob instead.
func (s *Store) openImage(id string) *graph.Mapped {
	if s.files == nil || s.imageEdges <= 0 {
		return nil
	}
	path, err := s.files.FilePath(kindImage, id)
	if err != nil {
		return nil
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		s.imageErrs.Inc()
		return nil
	}
	if fp := FingerprintGraph(m.Graph()); fp != id {
		s.imageErrs.Inc()
		m.Close()
		return nil
	}
	return m
}

// ReadLG parses an LG-format graph from r and registers it. Malformed
// input is rejected by the reader's validation (positional errors for
// duplicate vertex ids, undefined edge endpoints, second headers) and
// nothing is registered; a durable-tier write failure surfaces as an
// error wrapping ErrPersist.
func (s *Store) ReadLG(r io.Reader, fallbackName string) (sg *StoredGraph, existed bool, err error) {
	g, name, err := graph.ReadLG(r)
	if err != nil {
		return nil, false, err
	}
	if g.N() == 0 {
		return nil, false, fmt.Errorf("serve: empty graph upload (no vertices)")
	}
	if name == "" {
		name = fallbackName
	}
	return s.Add(g, name)
}

// Get looks a graph up by fingerprint id. A miss returns an error
// wrapping ErrUnknownGraph; any other error is a failed read (see
// ErrUnknownGraph).
func (s *Store) Get(id string) (*StoredGraph, error) {
	s.reads.Inc()
	if err := fpStoreGet.Hit(); err != nil {
		s.faults.Inc()
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.byID[id]
	if !ok {
		s.misses.Inc()
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, id)
	}
	return sg, nil
}

// List returns the registered graphs in registration order.
func (s *Store) List() []*StoredGraph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*StoredGraph, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// Len reports how many graphs are registered.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}
