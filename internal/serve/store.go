package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ErrUnknownGraph reports a lookup miss: no graph with that fingerprint
// is registered. Get wraps it with the id; any other Get error is a read
// failure (today only injectable via the serve/store/get failpoint, the
// seam a future persistent store's I/O errors will surface through) and
// serving surfaces must treat it as retryable, not as "not found".
var ErrUnknownGraph = errors.New("serve: unknown graph")

// StoredGraph is one registered host graph. ID is the content
// fingerprint (FingerprintGraph), so a graph uploaded twice — under any
// name — registers once; Name is advisory metadata from the first
// upload. The graph itself is immutable (the package-wide contract of
// internal/graph), so StoredGraph is safe for concurrent reads.
type StoredGraph struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Vertices int       `json:"vertices"`
	Edges    int       `json:"edges"`
	Uploaded time.Time `json:"uploaded"`

	G *graph.Graph `json:"-"`
}

// Store is the concurrent registry of uploaded host graphs, keyed by
// content fingerprint.
type Store struct {
	mu    sync.RWMutex
	byID  map[string]*StoredGraph
	order []string // registration order, for stable listings

	// Read-path tallies (every Get; the unknown-fingerprint subset; the
	// backend-fault subset). The store owns them so a serving surface's
	// /metrics reads the same numbers the store itself saw.
	reads  obs.Counter
	misses obs.Counter
	faults obs.Counter
}

// NewStore returns an empty graph store.
func NewStore() *Store {
	return &Store{byID: make(map[string]*StoredGraph)}
}

// Add registers a graph under its content fingerprint and returns the
// stored record. If a graph with the same content is already registered,
// the existing record is returned (its original name kept) and existed
// is true.
func (s *Store) Add(g *graph.Graph, name string) (sg *StoredGraph, existed bool) {
	id := FingerprintGraph(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.byID[id]; ok {
		return prev, true
	}
	sg = &StoredGraph{
		ID: id, Name: name,
		Vertices: g.N(), Edges: g.M(),
		Uploaded: time.Now().UTC(),
		G:        g,
	}
	s.byID[id] = sg
	s.order = append(s.order, id)
	return sg, false
}

// ReadLG parses an LG-format graph from r and registers it. Malformed
// input is rejected by the reader's validation (positional errors for
// duplicate vertex ids, undefined edge endpoints, second headers) and
// nothing is registered.
func (s *Store) ReadLG(r io.Reader, fallbackName string) (sg *StoredGraph, existed bool, err error) {
	g, name, err := graph.ReadLG(r)
	if err != nil {
		return nil, false, err
	}
	if g.N() == 0 {
		return nil, false, fmt.Errorf("serve: empty graph upload (no vertices)")
	}
	if name == "" {
		name = fallbackName
	}
	sg, existed = s.Add(g, name)
	return sg, existed, nil
}

// Get looks a graph up by fingerprint id. A miss returns an error
// wrapping ErrUnknownGraph; any other error is a failed read (see
// ErrUnknownGraph).
func (s *Store) Get(id string) (*StoredGraph, error) {
	s.reads.Inc()
	if err := fpStoreGet.Hit(); err != nil {
		s.faults.Inc()
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.byID[id]
	if !ok {
		s.misses.Inc()
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, id)
	}
	return sg, nil
}

// List returns the registered graphs in registration order.
func (s *Store) List() []*StoredGraph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*StoredGraph, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// Len reports how many graphs are registered.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}
