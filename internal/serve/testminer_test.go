package serve

import (
	"context"
	"sync"
	"testing"

	"repro/mine"
)

// The scheduler tests need exact control over run timing, so they use a
// registered stub miner whose behavior each test swaps in. The registry
// is process-global and Register panics on duplicates, so one delegating
// miner registers once and tests install their function under a mutex
// (those tests therefore must not run in parallel with each other).
var (
	testMinerOnce sync.Once
	testMinerMu   sync.Mutex
	testMinerFn   func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error)
)

type testMiner struct{}

func (testMiner) Name() string     { return "testminer" }
func (testMiner) Describe() string { return "controllable stub miner for scheduler tests" }

func (testMiner) Mine(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
	testMinerMu.Lock()
	fn := testMinerFn
	testMinerMu.Unlock()
	if fn == nil {
		return &mine.Result{Miner: "testminer"}, nil
	}
	return fn(ctx, host, opts)
}

// setTestMiner registers the stub (once) and installs fn for the
// duration of the test.
func setTestMiner(t *testing.T, fn func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error)) {
	t.Helper()
	testMinerOnce.Do(func() { mine.Register(testMiner{}) })
	testMinerMu.Lock()
	testMinerFn = fn
	testMinerMu.Unlock()
	t.Cleanup(func() {
		testMinerMu.Lock()
		testMinerFn = nil
		testMinerMu.Unlock()
	})
}

// stubPattern is a fixed single-edge pattern for stub results.
func stubPattern() *mine.Pattern {
	return &mine.Pattern{G: mine.FromEdges([]mine.Label{1, 2}, []mine.Edge{{U: 0, W: 1}})}
}

// tinyStoredGraph registers a minimal host graph in a fresh store.
func tinyStoredGraph(t *testing.T) *StoredGraph {
	t.Helper()
	g := mine.FromEdges([]mine.Label{1, 2, 1}, []mine.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	sg, _, err := NewStore().Add(g, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	return sg
}
