package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/mine"
)

// Status is a job's lifecycle state. Transitions are monotonic:
// queued → running → {done, failed, canceled}, with queued → canceled
// for jobs cancelled (or drained) before a runner picks them up and
// queued → done for cache hits (which never enter the queue).
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"     // nil-error run (possibly budget-truncated)
	StatusFailed   Status = "failed"   // non-context error
	StatusCanceled Status = "canceled" // context fired; Result holds committed partials
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Submission errors a serving surface maps to backpressure responses.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: scheduler is draining; not accepting jobs")
)

// Job is one scheduled mining run. All mutable state is guarded by mu;
// the identity fields (ID, Graph, Miner, Opts, Key) are immutable after
// Submit.
type Job struct {
	ID    string
	Graph *StoredGraph
	Miner string
	Opts  mine.Options
	Key   CacheKey

	mu       sync.Mutex
	status   Status
	cached   bool
	result   *mine.Result
	err      error
	cancel   context.CancelFunc // set while running
	events   []mine.ProgressEvent
	notify   chan struct{} // closed and replaced on every state/event change
	created  time.Time
	started  time.Time
	finished time.Time
}

// broadcastLocked wakes every waiter; callers hold j.mu.
func (j *Job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendEvent records one progress event and wakes streamers. It runs
// synchronously on the mining coordinator (Options.OnProgress contract),
// so it must never block.
func (j *Job) appendEvent(ev mine.ProgressEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.broadcastLocked()
	j.mu.Unlock()
}

// JobSnapshot is a point-in-time copy of a job's observable state — the
// wire form of GET /jobs/{id}.
type JobSnapshot struct {
	ID        string    `json:"id"`
	Graph     string    `json:"graph"`
	Miner     string    `json:"miner"`
	Status    Status    `json:"status"`
	Cached    bool      `json:"cached,omitempty"`
	Truncated string    `json:"truncated,omitempty"`
	Patterns  int       `json:"patterns"`
	Events    int       `json:"events"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID: j.ID, Graph: j.Graph.ID, Miner: j.Miner,
		Status: j.status, Cached: j.cached, Events: len(j.events),
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.result != nil {
		s.Truncated = string(j.result.Truncated)
		s.Patterns = len(j.result.Patterns)
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Outcome returns the job's terminal result and run error; ok is false
// until the job reaches a terminal status. A canceled job returns its
// deterministic committed partial result together with the context
// error.
func (j *Job) Outcome() (res *mine.Result, ok bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.status.terminal() {
		return nil, false, nil
	}
	return j.result, true, j.err
}

// RequestCancel asks for the job's cancellation: a queued job is marked
// canceled without ever running; a running job's context is cancelled,
// and the run winds down to its deterministic committed partial result
// (observe completion via Done / WaitEvents — RequestCancel does not
// block). On a terminal job it is a no-op.
func (j *Job) RequestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.err = context.Canceled
		j.finished = time.Now().UTC()
		j.broadcastLocked()
	case StatusRunning:
		j.cancel()
	}
}

// WaitEvents returns the progress events from index `from` onward. When
// none are pending it blocks until the job appends one, reaches a
// terminal status, or ctx fires. done reports terminal state: the caller
// has received every event that will ever exist once done is true and
// events is empty.
func (j *Job) WaitEvents(ctx context.Context, from int) (events []mine.ProgressEvent, done bool, err error) {
	for {
		j.mu.Lock()
		if from < len(j.events) {
			events = append(events, j.events[from:]...)
			j.mu.Unlock()
			return events, false, nil
		}
		if j.status.terminal() {
			j.mu.Unlock()
			return nil, true, nil
		}
		wake := j.notify
		j.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Done returns a channel-free wait: it blocks until the job is terminal
// or ctx fires.
func (j *Job) Done(ctx context.Context) error {
	for {
		j.mu.Lock()
		if j.status.terminal() {
			j.mu.Unlock()
			return nil
		}
		wake := j.notify
		j.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Scheduler runs submitted jobs on a fixed pool of runner goroutines
// over a bounded FIFO queue, consulting the result cache before
// queueing. Every run's context is a child of the scheduler's base
// context, so Shutdown can cancel all in-flight work into deterministic
// committed partials.
type Scheduler struct {
	cache *Cache

	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	nextID    int
	accepting bool
	// retain bounds how many jobs stay registered: once exceeded, the
	// oldest *terminal* jobs are evicted (a long-running daemon must not
	// pin every historical Result and event log forever). Live jobs are
	// never evicted.
	retain int
}

// defaultJobRetention bounds job history when the embedder does not
// choose a limit.
const defaultJobRetention = 4096

// NewScheduler starts `runners` runner goroutines over a FIFO queue of
// capacity queueCap (minimums of 1 apply).
func NewScheduler(cache *Cache, runners, queueCap int) *Scheduler {
	if runners < 1 {
		runners = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &Scheduler{
		cache:     cache,
		queue:     make(chan *Job, queueCap),
		jobs:      make(map[string]*Job),
		accepting: true,
		retain:    defaultJobRetention,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Submit registers a job for (graph, miner, opts). A result-cache hit
// completes the job immediately (Cached status done) without consuming a
// queue slot; otherwise the job enters the FIFO queue, or Submit fails
// with ErrQueueFull / ErrDraining. opts.OnProgress is ignored — progress
// streams through the job's event log.
func (s *Scheduler) Submit(sg *StoredGraph, minerName string, opts mine.Options) (*Job, error) {
	if sg == nil || sg.G == nil {
		return nil, fmt.Errorf("serve: Submit with nil graph")
	}
	if _, err := mine.Get(minerName); err != nil {
		return nil, err
	}
	opts.OnProgress = nil
	job := &Job{
		Graph: sg, Miner: minerName, Opts: opts,
		Key:     Key(sg.ID, minerName, opts),
		status:  StatusQueued,
		notify:  make(chan struct{}),
		created: time.Now().UTC(),
	}
	cachedRes, hit := s.cache.Get(job.Key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, ErrDraining
	}
	s.nextID++
	job.ID = fmt.Sprintf("j%d", s.nextID)
	if hit {
		job.status = StatusDone
		job.cached = true
		job.result = cachedRes
		job.finished = time.Now().UTC()
	} else {
		select {
		case s.queue <- job:
		default:
			return nil, ErrQueueFull
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictLocked()
	return job, nil
}

// evictLocked drops the oldest terminal jobs while the registry exceeds
// the retention bound; callers hold s.mu. An evicted job disappears from
// Get/List (404 over HTTP) — in-flight streamers holding the *Job keep
// working, and the job's memory is released once they let go.
func (s *Scheduler) evictLocked() {
	if s.retain < 1 || len(s.order) <= s.retain {
		return
	}
	excess := len(s.order) - s.retain
	kept := s.order[:0]
	for i, id := range s.order {
		if excess == 0 {
			kept = append(kept, s.order[i:]...)
			break
		}
		j := s.jobs[id]
		j.mu.Lock()
		evictable := j.status.terminal()
		j.mu.Unlock()
		if evictable {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get looks a job up by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth reports how many submitted jobs await a runner.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Cancel requests cancellation of a job by id (see Job.RequestCancel).
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("serve: unknown job %q", id)
	}
	j.RequestCancel()
	return nil
}

// Shutdown drains the scheduler: no new submissions are accepted, queued
// jobs keep running until the queue is empty, and the call returns when
// every runner has exited. If ctx fires first, the drain hardens —
// in-flight runs are cancelled (completing as canceled with committed
// partials) and still-queued jobs are marked canceled — and Shutdown
// waits for that to finish. Safe to call more than once.
func (s *Scheduler) Shutdown(ctx context.Context) {
	s.mu.Lock()
	if s.accepting {
		s.accepting = false
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
	}
	s.baseCancel()
}

func (s *Scheduler) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil {
		// Hard shutdown: fail queued work over running it with a dead
		// context.
		j.status = StatusCanceled
		j.err = context.Canceled
		j.finished = time.Now().UTC()
		j.broadcastLocked()
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.cancel = cancel
	j.status = StatusRunning
	j.started = time.Now().UTC()
	j.broadcastLocked()
	j.mu.Unlock()

	m, err := mine.Get(j.Miner)
	var res *mine.Result
	if err == nil {
		opts := j.Opts
		opts.OnProgress = j.appendEvent
		res, err = m.Mine(ctx, mine.SingleGraph(j.Graph.G), opts)
	}

	j.mu.Lock()
	j.result = res
	j.err = err
	j.finished = time.Now().UTC()
	switch {
	case err == nil:
		j.status = StatusDone
		// Wall-clock-truncated results are timing-dependent (how far a
		// run gets in MaxWallClock varies with load); caching one would
		// replay a machine-state accident forever. Every other outcome —
		// complete, MaxPatterns-capped, miner-budget-stopped — is a
		// deterministic function of the cache key.
		if res == nil || res.Truncated != mine.TruncatedDeadline {
			s.cache.Put(j.Key, res)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The façade contract: a fired context returns ctx.Err() plus
		// deterministic committed partials — keep both.
		j.status = StatusCanceled
	default:
		j.status = StatusFailed
	}
	j.broadcastLocked()
	j.mu.Unlock()
}
