package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/mine"
)

// Status is a job's lifecycle state. Transitions are monotonic:
// queued → running → {done, failed, canceled}, with queued → canceled
// for jobs cancelled (or drained) before a runner picks them up and
// queued → done for cache hits (which never enter the queue).
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"     // nil-error run (possibly budget-truncated)
	StatusFailed   Status = "failed"   // non-context error
	StatusCanceled Status = "canceled" // context fired; Result holds committed partials
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Submission errors a serving surface maps to backpressure responses.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: scheduler is draining; not accepting jobs")
)

// PanicError is a miner panic caught at the job boundary: the panic
// value plus the goroutine stack at recovery. It converts a would-be
// daemon crash into a per-job failure — the job lands in status "failed"
// with this error while every other runner keeps serving. Panics are
// permanent (a bug reproduces), so they are never retried.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Job is one scheduled mining run. All mutable state is guarded by mu;
// the identity fields (ID, Graph, Miner, Opts, Key) are immutable after
// Submit.
type Job struct {
	ID    string
	Graph *StoredGraph
	Miner string
	Opts  mine.Options
	Key   CacheKey

	mu       sync.Mutex
	status   Status
	cached   bool
	result   *mine.Result
	err      error
	cancel   context.CancelFunc // set while running
	events   []mine.ProgressEvent
	notify   chan struct{} // closed and replaced on every state/event change
	retries  int           // transient-failure re-runs consumed so far
	created  time.Time
	started  time.Time
	finished time.Time

	// metrics is the owning Server's observability surface (nil for a
	// bare Scheduler); terminal transitions that happen on the Job
	// itself (queued-job cancellation) record through it.
	metrics *Metrics
	// sched points back to the owning scheduler so terminal transitions
	// that happen on the Job itself journal through it (nil for a job
	// that never passed Submit; journalTerminal tolerates that).
	sched *Scheduler
}

// broadcastLocked wakes every waiter; callers hold j.mu.
func (j *Job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendEvent records one progress event and wakes streamers. It runs
// synchronously on the mining coordinator (Options.OnProgress contract),
// so it must never block.
func (j *Job) appendEvent(ev mine.ProgressEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.broadcastLocked()
	j.mu.Unlock()
}

// JobSnapshot is a point-in-time copy of a job's observable state — the
// wire form of GET /jobs/{id}.
type JobSnapshot struct {
	ID        string    `json:"id"`
	Graph     string    `json:"graph"`
	Miner     string    `json:"miner"`
	Status    Status    `json:"status"`
	Cached    bool      `json:"cached,omitempty"`
	Truncated string    `json:"truncated,omitempty"`
	Patterns  int       `json:"patterns"`
	Events    int       `json:"events"`
	Retries   int       `json:"retries,omitempty"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID: j.ID, Graph: j.Graph.ID, Miner: j.Miner,
		Status: j.status, Cached: j.cached, Events: len(j.events),
		Retries: j.retries,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.result != nil {
		s.Truncated = string(j.result.Truncated)
		s.Patterns = len(j.result.Patterns)
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Outcome returns the job's terminal result and run error; ok is false
// until the job reaches a terminal status. A canceled job returns its
// deterministic committed partial result together with the context
// error.
func (j *Job) Outcome() (res *mine.Result, ok bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.status.terminal() {
		return nil, false, nil
	}
	return j.result, true, j.err
}

// RequestCancel asks for the job's cancellation: a queued job is marked
// canceled without ever running; a running job's context is cancelled,
// and the run winds down to its deterministic committed partial result
// (observe completion via Done / WaitEvents — RequestCancel does not
// block). On a terminal job it is a no-op.
func (j *Job) RequestCancel() {
	j.mu.Lock()
	canceled := false
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.err = context.Canceled
		j.finished = time.Now().UTC()
		j.metrics.jobFinished(StatusCanceled)
		j.broadcastLocked()
		canceled = true
	case StatusRunning:
		j.cancel()
	}
	j.mu.Unlock()
	if canceled {
		j.sched.journalTerminal(j)
	}
}

// WaitEvents returns the progress events from index `from` onward. When
// none are pending it blocks until the job appends one, reaches a
// terminal status, or ctx fires. done reports terminal state: the caller
// has received every event that will ever exist once done is true and
// events is empty.
func (j *Job) WaitEvents(ctx context.Context, from int) (events []mine.ProgressEvent, done bool, err error) {
	for {
		j.mu.Lock()
		if from < len(j.events) {
			events = append(events, j.events[from:]...)
			j.mu.Unlock()
			return events, false, nil
		}
		if j.status.terminal() {
			j.mu.Unlock()
			return nil, true, nil
		}
		wake := j.notify
		j.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Done returns a channel-free wait: it blocks until the job is terminal
// or ctx fires.
func (j *Job) Done(ctx context.Context) error {
	for {
		j.mu.Lock()
		if j.status.terminal() {
			j.mu.Unlock()
			return nil
		}
		wake := j.notify
		j.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Scheduler runs submitted jobs on a fixed pool of runner goroutines
// over a bounded FIFO queue, consulting the result cache before
// queueing. Every run's context is a child of the scheduler's base
// context, so Shutdown can cancel all in-flight work into deterministic
// committed partials.
type Scheduler struct {
	cache *Cache
	// metrics is set by serve.New before any traffic arrives; a bare
	// NewScheduler leaves it nil and every record site no-ops.
	metrics *Metrics

	// journal, when set (serve.New over a persistent backend), receives
	// one appended record per terminal job transition, so the /jobs
	// history survives restarts. Append failures are counted in
	// journalErrs, never propagated: history durability is best-effort,
	// job execution is not.
	journal     journalWriter
	journalErrs atomic.Int64

	queue      chan *Job
	runners    int
	queueCap   int
	highWater  int // readiness threshold: queue depth at or past it reports not-ready
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// Retry policy for transient-classed job failures (mine.IsTransient):
	// up to maxRetries re-runs with exponential backoff from retryBase
	// (full jitter, capped). sleep is the injectable wait so tests drive
	// backoff with a fake clock; it returns ctx.Err() if ctx fires first.
	maxRetries int
	retryBase  time.Duration
	sleep      func(ctx context.Context, d time.Duration) error

	totalRetries atomic.Int64 // transient re-runs across all jobs
	totalPanics  atomic.Int64 // miner panics contained at the job boundary

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	nextID    int
	accepting bool
	// retain bounds how many jobs stay registered: once exceeded, the
	// oldest *terminal* jobs are evicted (a long-running daemon must not
	// pin every historical Result and event log forever). Live jobs are
	// never evicted.
	retain int
	// history holds terminal job records recovered from the journal —
	// the restart-surviving tail of /jobs, kept apart from live *Jobs
	// (a history entry has a snapshot and a cache key, but no events,
	// no Result pointer, no goroutine).
	history      map[string]historyEntry
	historyOrder []string
}

// journalWriter is the slice of store.Backend the scheduler needs;
// narrowed to an interface so jobs.go stays backend-agnostic.
type journalWriter interface{ Append(rec []byte) error }

// jobRecordType versions the journal's job records: any change to the
// record's field semantics must mint a new type string, and recovery
// skips types it does not know.
const jobRecordType = "job/v1"

// jobRecord is the journal wire form of one terminal job: its final
// snapshot plus the cache key, which lets a restarted daemon re-serve
// the job's Result from the persistent result cache.
type jobRecord struct {
	Type string      `json:"type"`
	Snap JobSnapshot `json:"snapshot"`
	Key  CacheKey    `json:"key"`
}

type historyEntry struct {
	snap JobSnapshot
	key  CacheKey
}

// defaultJobRetention bounds job history when the embedder does not
// choose a limit.
const defaultJobRetention = 4096

// defaultRetryBase seeds the exponential backoff when the embedder does
// not choose one; maxRetryBackoff caps the grown delay so a long retry
// chain never stalls a runner for minutes.
const (
	defaultRetryBase = 100 * time.Millisecond
	maxRetryBackoff  = 5 * time.Second
)

// NewScheduler starts `runners` runner goroutines over a FIFO queue of
// capacity queueCap (minimums of 1 apply). Retries are off until
// configured (serve.Config.MaxRetries / the daemon's -max-retries).
func NewScheduler(cache *Cache, runners, queueCap int) *Scheduler {
	if runners < 1 {
		runners = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &Scheduler{
		cache:     cache,
		queue:     make(chan *Job, queueCap),
		runners:   runners,
		queueCap:  queueCap,
		highWater: max(1, queueCap*9/10),
		retryBase: defaultRetryBase,
		sleep:     sleepCtx,
		jobs:      make(map[string]*Job),
		history:   make(map[string]historyEntry),
		accepting: true,
		retain:    defaultJobRetention,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// sleepCtx waits d or until ctx fires, whichever comes first — the
// default backoff sleeper.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit registers a job for (graph, miner, opts). A result-cache hit
// completes the job immediately (Cached status done) without consuming a
// queue slot; otherwise the job enters the FIFO queue, or Submit fails
// with ErrQueueFull / ErrDraining. opts.OnProgress is ignored — progress
// streams through the job's event log.
func (s *Scheduler) Submit(sg *StoredGraph, minerName string, opts mine.Options) (*Job, error) {
	if sg == nil || sg.G == nil {
		return nil, fmt.Errorf("serve: Submit with nil graph")
	}
	if _, err := mine.Get(minerName); err != nil {
		return nil, err
	}
	// Admission failpoint: sits after request validation (a trip must
	// read as backpressure, not as a bad request) and before the cache
	// lookup (an admission fault rejects cache hits too).
	if err := fpSchedSubmit.Hit(); err != nil {
		return nil, err
	}
	opts.OnProgress = nil
	job := &Job{
		Graph: sg, Miner: minerName, Opts: opts,
		Key:     Key(sg.ID, minerName, opts),
		status:  StatusQueued,
		notify:  make(chan struct{}),
		created: time.Now().UTC(),
		metrics: s.metrics,
		sched:   s,
	}
	cachedRes, hit := s.cache.Get(job.Key)

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	job.ID = fmt.Sprintf("j%d", s.nextID)
	if hit {
		job.status = StatusDone
		job.cached = true
		job.result = cachedRes
		job.finished = time.Now().UTC()
		s.metrics.jobFinished(StatusDone)
	} else {
		select {
		case s.queue <- job:
		default:
			s.mu.Unlock()
			return nil, ErrQueueFull
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictLocked()
	s.mu.Unlock()
	if hit {
		// A cache hit is born terminal; journal it like any other
		// completion (after s.mu is released — journalTerminal fsyncs).
		s.journalTerminal(job)
	}
	return job, nil
}

// journalTerminal appends one terminal-job record to the durable
// journal; a no-op without one (memory-backed serving, bare Scheduler
// tests). Called only after every scheduler/job mutex is released —
// Snapshot re-locks j.mu, and the append fsyncs. Failures count in
// journalErrs and cost only the entry's restart-durability.
func (s *Scheduler) journalTerminal(j *Job) {
	if s == nil || s.journal == nil {
		return
	}
	rec, err := json.Marshal(jobRecord{Type: jobRecordType, Snap: j.Snapshot(), Key: j.Key})
	if err == nil {
		err = s.journal.Append(rec)
	}
	if err != nil {
		s.journalErrs.Add(1)
	}
}

// recoverJournal rebuilds the terminal-job history from journal records
// (the last record per job ID wins) and resumes the ID sequence past
// the highest recovered numeric ID, so a restarted daemon never mints a
// job ID that collides with history. Records of unknown type — future
// kinds sharing the journal — and unparseable records are skipped, not
// fatal. Returns the recovered-entry count.
func (s *Scheduler) recoverJournal(recs [][]byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, raw := range recs {
		var r jobRecord
		if err := json.Unmarshal(raw, &r); err != nil || r.Type != jobRecordType || r.Snap.ID == "" {
			continue
		}
		if _, ok := s.history[r.Snap.ID]; !ok {
			s.historyOrder = append(s.historyOrder, r.Snap.ID)
		}
		s.history[r.Snap.ID] = historyEntry{snap: r.Snap, key: r.Key}
		var n int
		if _, err := fmt.Sscanf(r.Snap.ID, "j%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	// Trim to the retention bound, oldest first, mirroring live-job
	// eviction.
	if s.retain > 0 && len(s.historyOrder) > s.retain {
		drop := len(s.historyOrder) - s.retain
		for _, id := range s.historyOrder[:drop] {
			delete(s.history, id)
		}
		s.historyOrder = append([]string(nil), s.historyOrder[drop:]...)
	}
	return len(s.history)
}

// History returns the recovered terminal record for a job ID that
// predates this process (pre-restart history). Live jobs are not
// consulted — use Get first.
func (s *Scheduler) History(id string) (JobSnapshot, CacheKey, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.history[id]
	return e.snap, e.key, ok
}

// JournalErrs reports failed journal appends since startup.
func (s *Scheduler) JournalErrs() int64 { return s.journalErrs.Load() }

// Snapshots returns the observable job listing: recovered history first
// (journal order), then live jobs in submission order — the wire form
// of GET /jobs. A live job shadows any same-ID history entry, though
// IDs never collide in practice (recoverJournal resumes the sequence).
func (s *Scheduler) Snapshots() []JobSnapshot {
	s.mu.Lock()
	live := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		live = append(live, s.jobs[id])
	}
	hist := make([]JobSnapshot, 0, len(s.historyOrder))
	for _, id := range s.historyOrder {
		if _, shadowed := s.jobs[id]; shadowed {
			continue
		}
		hist = append(hist, s.history[id].snap)
	}
	s.mu.Unlock()
	out := hist
	for _, j := range live {
		out = append(out, j.Snapshot())
	}
	return out
}

// evictLocked drops the oldest terminal jobs while the registry exceeds
// the retention bound; callers hold s.mu. An evicted job disappears from
// Get/List (404 over HTTP) — in-flight streamers holding the *Job keep
// working, and the job's memory is released once they let go.
func (s *Scheduler) evictLocked() {
	if s.retain < 1 || len(s.order) <= s.retain {
		return
	}
	excess := len(s.order) - s.retain
	kept := s.order[:0]
	for i, id := range s.order {
		if excess == 0 {
			kept = append(kept, s.order[i:]...)
			break
		}
		j := s.jobs[id]
		j.mu.Lock()
		evictable := j.status.terminal()
		j.mu.Unlock()
		if evictable {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get looks a job up by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth reports how many submitted jobs await a runner.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Submitted reports how many jobs Submit has accepted since startup
// (queued or completed from cache) — a monotonic tally for metrics.
func (s *Scheduler) Submitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// QueueCap reports the FIFO queue's capacity.
func (s *Scheduler) QueueCap() int { return s.queueCap }

// Draining reports whether Shutdown has begun: submissions are rejected
// and the node should be pulled from rotation.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.accepting
}

// Ready reports whether the scheduler should receive new traffic: not
// draining, and queue depth below the high-water mark (90% of capacity,
// minimum 1) — so a load balancer stops routing here *before* submissions
// start bouncing with 503. reason is empty when ready.
func (s *Scheduler) Ready() (ready bool, reason string) {
	if s.Draining() {
		return false, "draining"
	}
	if d := len(s.queue); d >= s.highWater {
		return false, fmt.Sprintf("queue depth %d at high-water mark %d (cap %d)", d, s.highWater, s.queueCap)
	}
	return true, ""
}

// Retries reports the total transient-failure re-runs across all jobs.
func (s *Scheduler) Retries() int64 { return s.totalRetries.Load() }

// Panics reports how many miner panics were contained at the job
// boundary since startup.
func (s *Scheduler) Panics() int64 { return s.totalPanics.Load() }

// Cancel requests cancellation of a job by id (see Job.RequestCancel).
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("serve: unknown job %q", id)
	}
	j.RequestCancel()
	return nil
}

// Shutdown drains the scheduler: no new submissions are accepted, queued
// jobs keep running until the queue is empty, and the call returns when
// every runner has exited. If ctx fires first, the drain hardens —
// in-flight runs are cancelled (completing as canceled with committed
// partials) and still-queued jobs are marked canceled — and Shutdown
// waits for that to finish. Safe to call more than once.
func (s *Scheduler) Shutdown(ctx context.Context) {
	s.mu.Lock()
	if s.accepting {
		s.accepting = false
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
	}
	s.baseCancel()
}

func (s *Scheduler) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runContained(job)
	}
}

// runContained is the runner's last-resort containment: the miner
// invocation has its own recover (see invoke), but a panic anywhere else
// in the job path would otherwise kill the runner goroutine silently —
// shrinking capacity and leaving the job non-terminal forever. Here it
// becomes a failed job and the runner keeps draining the queue.
func (s *Scheduler) runContained(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.totalPanics.Add(1)
			j.forceFail(&PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	s.runJob(j)
}

// forceFail drives a job to terminal "failed" unless it already reached
// a terminal status — the containment path's guarantee that no job is
// left non-terminal.
func (j *Job) forceFail(err error) {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return
	}
	j.status = StatusFailed
	j.err = err
	j.finished = time.Now().UTC()
	j.metrics.jobFinished(StatusFailed)
	j.broadcastLocked()
	j.mu.Unlock()
	j.sched.journalTerminal(j)
}

func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil {
		// Hard shutdown: fail queued work over running it with a dead
		// context.
		j.status = StatusCanceled
		j.err = context.Canceled
		j.finished = time.Now().UTC()
		s.metrics.jobFinished(StatusCanceled)
		j.broadcastLocked()
		j.mu.Unlock()
		s.journalTerminal(j)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.cancel = cancel
	j.status = StatusRunning
	j.started = time.Now().UTC()
	s.metrics.observeQueueWait(j.started.Sub(j.created))
	j.broadcastLocked()
	j.mu.Unlock()

	m, err := mine.Get(j.Miner)
	var res *mine.Result
	if err == nil {
		if ferr := fpSchedClaim.HitCtx(ctx); ferr != nil {
			err = ferr
		} else {
			res, err = s.mineWithRetry(ctx, m, j)
		}
	}

	j.mu.Lock()
	j.result = res
	j.err = err
	j.finished = time.Now().UTC()
	switch {
	case err == nil:
		j.status = StatusDone
		// Wall-clock-truncated results are timing-dependent (how far a
		// run gets in MaxWallClock varies with load); caching one would
		// replay a machine-state accident forever. Every other outcome —
		// complete, MaxPatterns-capped, miner-budget-stopped — is a
		// deterministic function of the cache key.
		if res == nil || res.Truncated != mine.TruncatedDeadline {
			s.cache.Put(j.Key, res)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The façade contract: a fired context returns ctx.Err() plus
		// deterministic committed partials — keep both.
		j.status = StatusCanceled
	default:
		// Exhausted retries, a permanent failure, or a contained panic.
		// Failed results never enter the cache (the err == nil gate
		// above) — a fault must not be replayed to future submissions.
		j.status = StatusFailed
	}
	var stages []mine.StageTime
	if res != nil {
		stages = res.Stats.Stages
	}
	s.metrics.recordRun(j.Miner, j.status, j.finished.Sub(j.started), stages)
	j.broadcastLocked()
	j.mu.Unlock()
	s.journalTerminal(j)
}

// mineWithRetry invokes the miner, re-running transient-classed failures
// (mine.IsTransient) up to the scheduler's retry budget with exponential
// backoff + full jitter. Every attempt re-runs the miner from scratch
// with the same Options — under the façade's determinism contract a
// retry is a fresh, equivalent computation, never a resume — so a
// successful retry is indistinguishable from a first-try success apart
// from the "retry" progress events separating the attempts' streams.
// Cancellation during an attempt or a backoff wait stops retrying
// immediately.
func (s *Scheduler) mineWithRetry(ctx context.Context, m mine.Miner, j *Job) (*mine.Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := s.invoke(ctx, m, j)
		if err == nil || !mine.IsTransient(err) || attempt >= s.maxRetries {
			return res, err
		}
		if ctx.Err() != nil {
			// The job was cancelled while the attempt was failing —
			// honor the cancellation over the retry budget.
			return nil, ctx.Err()
		}
		s.totalRetries.Add(1)
		j.noteRetry(attempt + 1)
		if werr := s.sleep(ctx, s.backoffDelay(attempt)); werr != nil {
			// Cancelled mid-backoff: the failed attempt's output is not a
			// committed partial result, so the job cancels empty-handed.
			return nil, werr
		}
	}
}

// invoke runs one miner attempt inside the panic-containment boundary: a
// panicking miner becomes a *PanicError (permanent — never retried) while
// the runner, its siblings, and the daemon keep serving.
func (s *Scheduler) invoke(ctx context.Context, m mine.Miner, j *Job) (res *mine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.totalPanics.Add(1)
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := fpMinerInvoke.HitCtx(ctx); ferr != nil {
		return nil, ferr
	}
	opts := j.Opts
	opts.OnProgress = j.appendEvent
	return m.Mine(ctx, mine.SingleGraph(j.Graph.G), opts)
}

// backoffDelay is the attempt-th retry wait: retryBase doubled per
// attempt, capped at maxRetryBackoff, with full jitter (uniform in
// (cap/2, cap]) so synchronized failures do not retry in lockstep.
func (s *Scheduler) backoffDelay(attempt int) time.Duration {
	base := s.retryBase
	if base <= 0 {
		base = defaultRetryBase
	}
	d := base
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1)) + 1
}

// noteRetry records one transient re-run: the counter surfaces in
// JobSnapshot.Retries and /stats, and a "retry" progress event marks the
// attempt boundary in the NDJSON stream (attempt is 1-based: the first
// retry is attempt 1).
func (j *Job) noteRetry(attempt int) {
	j.mu.Lock()
	j.retries++
	j.events = append(j.events, mine.ProgressEvent{
		Miner:     j.Miner,
		Stage:     "retry",
		Iteration: attempt,
		Elapsed:   time.Since(j.started),
	})
	j.broadcastLocked()
	j.mu.Unlock()
}
