package serve

import (
	"errors"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

func imageTestHost() *graph.Graph {
	return graph.FromEdges(
		[]graph.Label{1, 2, 3, 2, 1, 3},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 4}, {U: 4, W: 5}, {U: 0, W: 5}, {U: 1, W: 4}},
	)
}

// TestImagePersistAndMappedRecovery is the serve-layer out-of-core
// round trip: upload past the threshold writes an SPC1 image through
// the backend's file tier, and a restart recovers the host by mmap —
// zero decode — with the identical fingerprint and content.
func TestImagePersistAndMappedRecovery(t *testing.T) {
	dir := t.TempDir()
	g := imageTestHost()

	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(d)
	s.SetImageEdgeThreshold(1) // every host is image-worthy in tests
	sg, existed, err := s.Add(g, "hexring")
	if err != nil || existed {
		t.Fatalf("Add: existed=%v err=%v", existed, err)
	}
	if _, err := d.FilePath("images", sg.ID); err != nil {
		t.Fatalf("no image after over-threshold Add: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	s2 := NewStoreWith(d2)
	s2.SetImageEdgeThreshold(1)
	recovered, mapped, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || mapped != 1 {
		t.Fatalf("recovered=%d mapped=%d, want 1/1", recovered, mapped)
	}
	got, err := s2.Get(sg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "hexring" || got.Vertices != g.N() || got.Edges != g.M() {
		t.Fatalf("recovered metadata %+v differs", got)
	}
	if fp := FingerprintGraph(got.G); fp != sg.ID {
		t.Fatalf("mapped graph fingerprint %s, want %s", fp, sg.ID)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestImageCorruptionFallsBackToDecode: a damaged image must never take
// recovery down — the SPG1 blob is the durable copy; the image is
// silently rebuilt so the restart after next maps again.
func TestImageCorruptionFallsBackToDecode(t *testing.T) {
	dir := t.TempDir()
	g := imageTestHost()

	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(d)
	s.SetImageEdgeThreshold(1)
	sg, _, err := s.Add(g, "h")
	if err != nil {
		t.Fatal(err)
	}
	path, err := d.FilePath("images", sg.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt the sketch section tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	s2 := NewStoreWith(d2)
	s2.SetImageEdgeThreshold(1)
	recovered, mapped, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || mapped != 0 {
		t.Fatalf("recovered=%d mapped=%d, want 1 recovered, 0 mapped", recovered, mapped)
	}
	got, err := s2.Get(sg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fp := FingerprintGraph(got.G); fp != sg.ID {
		t.Fatalf("decoded fallback fingerprint %s, want %s", fp, sg.ID)
	}
	// The fallback rewrote the image; a third open maps again.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	s3 := NewStoreWith(d3)
	s3.SetImageEdgeThreshold(1)
	if _, mapped, err = s3.Recover(); err != nil || mapped != 1 {
		t.Fatalf("after rebuild: mapped=%d err=%v, want 1/nil", mapped, err)
	}
	s3.Close()
}

// TestImageThreshold: hosts under the threshold (or with persistence
// disabled) never write images; Memory backends have no file tier at
// all and uploads still work.
func TestImageThreshold(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := NewStoreWith(d)
	s.SetImageEdgeThreshold(1000) // host has 7 edges: under threshold
	sg, _, err := s.Add(imageTestHost(), "small")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.FilePath("images", sg.ID); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("under-threshold host wrote an image (err %v)", err)
	}

	s2 := NewStoreWith(store.NewMemory()) // no file tier: threshold moot
	s2.SetImageEdgeThreshold(1)
	if _, _, err := s2.Add(imageTestHost(), "mem"); err != nil {
		t.Fatal(err)
	}

	s3 := NewStoreWith(d)
	s3.SetImageEdgeThreshold(-1) // disabled
	if s3.imageEdges != 0 {
		t.Fatalf("negative threshold left imageEdges=%d", s3.imageEdges)
	}
}

// TestServerImageRecovery runs the same round trip through the public
// Open/Config surface spiderserved uses.
func TestServerImageRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := Open(Config{Runners: 1, QueueCap: 4, Backend: d, ImageEdgeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	sg, _, err := srv.Store().Add(imageTestHost(), "via-server")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	srv2, rs, err := Open(Config{Runners: 1, QueueCap: 4, Backend: d2, ImageEdgeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if rs.Graphs != 1 || rs.Mapped != 1 {
		t.Fatalf("RecoveryStats = %+v, want Graphs=1 Mapped=1", rs)
	}
	if _, err := srv2.Store().Get(sg.ID); err != nil {
		t.Fatal(err)
	}
}
