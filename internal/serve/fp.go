// Package serve is the mining service layer: a graph store keyed by
// content fingerprint, a bounded FIFO job scheduler running mine-façade
// jobs under per-job cancellation, a result cache keyed by
// (host fingerprint, miner, canonical Options fingerprint), and an
// HTTP/JSON API (Server) exposing all of it — upload hosts in LG format,
// submit jobs, stream NDJSON progress, cancel for deterministic committed
// partials. Command spiderserved is the daemon around this package.
//
// The HTTP surface preserves the façade's truncation-vs-error contract:
// a run stopped by its own budgets (Options.MaxPatterns / MaxWallClock /
// a miner-internal budget) finishes with status "done" and a non-empty
// "truncated" reason; a run stopped by cancellation (DELETE /jobs/{id},
// or the drain deadline at shutdown) finishes with status "canceled", an
// "error" field, and its deterministic committed partial result still
// retrievable from /jobs/{id}/result.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/graph"
)

// digest128 accumulates a stable 128-bit content fingerprint: SHA-256
// over a canonical stream of big-endian u64 tokens, truncated to 128
// bits. The store and cache deduplicate purely by fingerprint — requests
// are routed by it — so the hash must be collision-resistant, not merely
// well-distributed (a crafted collision would silently alias two
// distinct graphs and poison every cached result; the FNV-style mixes
// the matcher uses internally are fine for dedupe heuristics but not for
// content addressing). The construction is frozen: fingerprints are
// wire-visible (graph ids) and must be stable across releases.
type digest128 struct {
	h   hash.Hash
	buf [8]byte
}

func newDigest() digest128 {
	return digest128{h: sha256.New()}
}

func (d *digest128) mix(x uint64) {
	binary.BigEndian.PutUint64(d.buf[:], x)
	d.h.Write(d.buf[:])
}

// hex renders the truncated 128-bit digest as 32 lowercase hex digits.
func (d *digest128) hex() string {
	sum := d.h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// FingerprintGraph returns the stable 128-bit content fingerprint of a
// graph: vertex count, edge count, the label sequence, and the sorted
// deduped CSR edge list. Builder.Build canonicalizes edge order, so any
// two graphs with identical content — regardless of input edge order or
// the advisory LG name — fingerprint identically.
func FingerprintGraph(g *graph.Graph) string {
	d := newDigest()
	d.mix(uint64(g.N()))
	d.mix(uint64(g.M()))
	for _, l := range g.Labels() {
		d.mix(uint64(uint32(l)))
	}
	// Stream the U < W edge list straight off the CSR — identical token
	// order to ranging over g.Edges(), without materializing a second
	// copy of a large host's adjacency just to hash it.
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(graph.V(u)) {
			if graph.V(u) < w {
				d.mix(uint64(uint32(u))<<32 | uint64(uint32(w)))
			}
		}
	}
	return d.hex()
}

// FingerprintBytes returns the 128-bit fingerprint of a byte string —
// used on canonical Options serializations for cache keys.
func FingerprintBytes(p []byte) string {
	d := newDigest()
	d.mix(uint64(len(p)))
	d.h.Write(p)
	return d.hex()
}
