package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/mine"
)

// tinyHostLG renders a minimal valid LG upload body.
func tinyHostLG(t *testing.T) []byte {
	t.Helper()
	g := mine.FromEdges([]mine.Label{1, 2, 1}, []mine.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	var buf bytes.Buffer
	if err := g.WriteLG(&buf, "tiny"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSubmitErrorClassification pins the Submit error mapping: the
// load-shedding sentinels and injected admission faults are 503
// backpressure, while an unrecognized error — necessarily a server-side
// defect, since the handler validates the request before Submit — is
// 500, never 400. (Regression: unknown Submit errors used to fall
// through to 400, blaming the client for server bugs.)
func TestSubmitErrorClassification(t *testing.T) {
	srv := New(Config{Runners: 1, QueueCap: 1, CacheCap: 0})
	defer srv.Shutdown(context.Background())

	cases := []struct {
		name string
		err  error
		code int
	}{
		{"queue-full", ErrQueueFull, http.StatusServiceUnavailable},
		{"draining", ErrDraining, http.StatusServiceUnavailable},
		{"unknown-error", errors.New("scheduler invariant violated"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			srv.writeSubmitError(rec, tc.err)
			if rec.Code != tc.code {
				t.Fatalf("writeSubmitError(%v) = %d, want %d", tc.err, rec.Code, tc.code)
			}
			if tc.code == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After header")
			}
			if tc.code == http.StatusInternalServerError && rec.Header().Get("Retry-After") != "" {
				t.Fatalf("500 must not carry Retry-After (it is not backpressure)")
			}
		})
	}
	if got := srv.metrics.rejections.With(rejectQueueFull).Value(); got != 1 {
		t.Fatalf("queue_full rejections = %d, want 1", got)
	}
	if got := srv.metrics.rejections.With(rejectDraining).Value(); got != 1 {
		t.Fatalf("draining rejections = %d, want 1", got)
	}
}

// TestSubmitNegativeOptionsRejected pins submit-time validation of
// numeric options: a negative knob is answered with an immediate 400,
// not a queued job that fails later (or, for workers, a run that the
// façade would silently expand to every core).
func TestSubmitNegativeOptionsRejected(t *testing.T) {
	srv := New(Config{Runners: 1, QueueCap: 4, CacheCap: 0})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := post(t, ts.URL+"/graphs", "text/plain", tinyHostLG(t))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	for _, options := range []string{
		`{"min_support": -2}`,
		`{"workers": -1}`,
		`{"max_wall_clock_ms": -100}`,
		`{"epsilon": -0.5}`,
		`{"max_patterns": -7}`,
	} {
		body := fmt.Sprintf(`{"graph":%q,"miner":"spidermine","options":%s}`, sg.ID, options)
		resp := post(t, ts.URL+"/jobs", "application/json", []byte(body))
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit with options %s: status %d (%s), want 400", options, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "must not be negative") {
			t.Fatalf("submit with options %s: error %q does not name the rejection", options, raw)
		}
	}

	// The same shapes with non-negative values still pass validation.
	setTestMiner(t, nil)
	body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"min_support":2,"workers":1}}`, sg.ID)
	resp = post(t, ts.URL+"/jobs", "application/json", []byte(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid submit: status %d, want 202", resp.StatusCode)
	}
}

// TestCacheDegradeIsNotAMiss pins the degraded-lookup accounting: a
// backend-failed Get still reports "no hit" to the caller, but the
// failure lands in Degraded, not Misses — folding it into misses would
// understate the hit rate exactly while the backend is sick.
func TestCacheDegradeIsNotAMiss(t *testing.T) {
	defer fault.DisarmAll()
	c := NewCache(4)
	key := CacheKey{Host: "h", Miner: "m", Options: "o"}
	c.Put(key, &mine.Result{Miner: "m"})

	fpCacheGet.Arm(fault.Spec{Kind: fault.KindError, Err: errors.New("cache read torn")})
	if _, ok := c.Get(key); ok {
		t.Fatal("degraded Get returned a hit")
	}
	fault.DisarmAll()

	if _, ok := c.Get(CacheKey{Host: "absent"}); ok {
		t.Fatal("unknown key returned a hit")
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("healthy Get missed a present key")
	}

	st := c.Stats()
	if st.Degraded != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 degraded=1", st)
	}
}

// TestEncodeFailuresCounted pins satellite accounting for response
// encoding: a writeJSON Encode failure cannot reach the client (the
// status line is already sent), so it must at least increment
// spiderserved_http_encode_failures_total.
func TestEncodeFailuresCounted(t *testing.T) {
	srv := New(Config{Runners: 1, QueueCap: 1, CacheCap: 0})
	defer srv.Shutdown(context.Background())

	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, func() {}) // func has no JSON encoding
	if got := srv.metrics.encodeFails.Value(); got != 1 {
		t.Fatalf("encode failures = %d, want 1", got)
	}
	rec = httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, map[string]int{"ok": 1})
	if got := srv.metrics.encodeFails.Value(); got != 1 {
		t.Fatalf("encode failures after clean write = %d, want still 1", got)
	}
}

// TestMetricsEndpoint drives one upload + one mining job through the
// HTTP surface and checks the exposition: content type, the schema
// (every spiderserved_ family present from the first scrape), and the
// counters the traffic must have moved.
func TestMetricsEndpoint(t *testing.T) {
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		return &mine.Result{
			Miner:    "testminer",
			Patterns: []*mine.Pattern{stubPattern()},
			Stats:    mine.Stats{Stages: []mine.StageTime{{Name: "mine", Duration: time.Millisecond}}},
		}, nil
	})
	srv := New(Config{Runners: 1, QueueCap: 4, CacheCap: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	lg := tinyHostLG(t)
	resp := post(t, ts.URL+"/graphs", "text/plain", lg)
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	submit := func() JobSnapshot {
		body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"min_support":1}}`, sg.ID)
		resp := post(t, ts.URL+"/jobs", "application/json", []byte(body))
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit: %d %s", resp.StatusCode, raw)
		}
		return decodeJSON[JobSnapshot](t, resp.Body)
	}
	first := submit()
	pollTerminal(t, ts.URL, first.ID)
	second := submit() // same key: served from cache
	if !second.Cached {
		t.Fatalf("second submit not cached: %+v", second)
	}

	resp = get(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	expo := string(body)

	// Schema: every family is present even at zero (pre-created label
	// children included), so dashboards never see absent series.
	for _, want := range []string{
		"# TYPE spiderserved_sched_queue_wait_seconds histogram",
		"# TYPE spiderserved_run_seconds histogram",
		"# TYPE spiderserved_stage_seconds histogram",
		"# TYPE spiderserved_jobs_finished_total counter",
		"# TYPE spiderserved_rejections_total counter",
		"# TYPE spiderserved_uploads_total counter",
		"# TYPE spiderserved_upload_bytes_total counter",
		"# TYPE spiderserved_http_encode_failures_total counter",
		"# TYPE spiderserved_jobs_submitted_total counter",
		"# TYPE spiderserved_sched_queue_depth gauge",
		"# TYPE spiderserved_cache_hits_total counter",
		"# TYPE spiderserved_cache_degraded_total counter",
		"# TYPE spiderserved_store_reads_total counter",
		`spiderserved_rejections_total{cause="queue_full"} 0`,
		`spiderserved_rejections_total{cause="draining"} 0`,
		`spiderserved_rejections_total{cause="fault"} 0`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Movement: the traffic above must be visible.
	for _, want := range []string{
		"spiderserved_uploads_total 1",
		fmt.Sprintf("spiderserved_upload_bytes_total %d", len(lg)),
		"spiderserved_jobs_submitted_total 2",
		`spiderserved_jobs_finished_total{status="done"} 2`,
		"spiderserved_cache_hits_total 1",
		`spiderserved_run_seconds_count{miner="testminer"} 1`,
		`spiderserved_stage_seconds_count{stage="mine"} 1`,
		"spiderserved_sched_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", expo)
	}

	// /stats folds the same registry as a JSON snapshot.
	resp = get(t, ts.URL+"/stats")
	stats := decodeJSON[map[string]any](t, resp.Body)
	resp.Body.Close()
	snap, ok := stats["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no metrics snapshot: %v", stats)
	}
	if got := snap["spiderserved_jobs_submitted_total"]; got != float64(2) {
		t.Fatalf("/stats metrics snapshot jobs_submitted = %v, want 2", got)
	}
}

// TestMetricsScrapeUnderTraffic scrapes /metrics concurrently with live
// submissions: scrapes must stay well-formed (parse as exposition
// lines) and never panic or race (the CI race job covers the latter).
func TestMetricsScrapeUnderTraffic(t *testing.T) {
	setTestMiner(t, nil)
	srv := New(Config{Runners: 2, QueueCap: 64, CacheCap: 0})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp := post(t, ts.URL+"/graphs", "text/plain", tinyHostLG(t))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"seed":%d}}`, sg.ID, i)
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 25; n++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					if !strings.Contains(line, " ") {
						t.Errorf("malformed exposition line %q", line)
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
