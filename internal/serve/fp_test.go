package serve

import (
	"errors"
	"strings"
	"testing"

	"repro/mine"
)

// TestFingerprintGraphStable: the fingerprint is a pure function of
// graph content — identical across rebuilds and input edge orders,
// different under any content change — and is frozen (wire-visible ids
// must not drift across releases).
func TestFingerprintGraphStable(t *testing.T) {
	labels := []mine.Label{3, 1, 2}
	edges := []mine.Edge{{U: 0, W: 1}, {U: 1, W: 2}}
	a := mine.FromEdges(labels, edges)
	b := mine.FromEdges(labels, []mine.Edge{{U: 1, W: 2}, {U: 1, W: 0}}) // reordered, reversed
	fa, fb := FingerprintGraph(a), FingerprintGraph(b)
	if fa != fb {
		t.Errorf("edge order changed the fingerprint: %s vs %s", fa, fb)
	}
	if len(fa) != 32 || strings.Trim(fa, "0123456789abcdef") != "" {
		t.Errorf("fingerprint %q is not 32 lowercase hex digits", fa)
	}
	const frozen = "9213dc1da6c2589d1d21967695bb13b7"
	if fa != frozen {
		t.Errorf("fingerprint construction drifted: got %s, frozen value %s", fa, frozen)
	}
	if fc := FingerprintGraph(mine.FromEdges([]mine.Label{3, 1, 7}, edges)); fc == fa {
		t.Error("label change did not change the fingerprint")
	}
	if fd := FingerprintGraph(mine.FromEdges(labels, edges[:1])); fd == fa {
		t.Error("edge removal did not change the fingerprint")
	}
}

func TestFingerprintBytes(t *testing.T) {
	a := FingerprintBytes([]byte("mine.Options/v1 minsupport=2"))
	b := FingerprintBytes([]byte("mine.Options/v1 minsupport=3"))
	if a == b {
		t.Error("distinct byte strings collided")
	}
	if a != FingerprintBytes([]byte("mine.Options/v1 minsupport=2")) {
		t.Error("fingerprint not deterministic")
	}
}

// TestKeyTracksOptionsSemantics: the cache key follows the canonical
// Options form — semantic fields distinguish, OnProgress does not.
func TestKeyTracksOptionsSemantics(t *testing.T) {
	base := mine.Options{MinSupport: 2, K: 5, Seed: 1}
	k1 := Key("host", "spidermine", base)
	withCB := base
	withCB.OnProgress = func(mine.ProgressEvent) {}
	if k2 := Key("host", "spidermine", withCB); k2 != k1 {
		t.Error("OnProgress changed the cache key")
	}
	diff := base
	diff.Seed = 2
	if k3 := Key("host", "spidermine", diff); k3 == k1 {
		t.Error("seed change did not change the cache key")
	}
	if k4 := Key("host", "moss", base); k4 == k1 {
		t.Error("miner name did not change the cache key")
	}
	if k5 := Key("host2", "spidermine", base); k5 == k1 {
		t.Error("host fingerprint did not change the cache key")
	}
}

func TestStoreDedupesByContent(t *testing.T) {
	s := NewStore()
	g1 := mine.FromEdges([]mine.Label{1, 2}, []mine.Edge{{U: 0, W: 1}})
	g2 := mine.FromEdges([]mine.Label{1, 2}, []mine.Edge{{U: 0, W: 1}}) // same content, new allocation
	a, existed, err := s.Add(g1, "first")
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("fresh graph reported as existing")
	}
	b, existed, err := s.Add(g2, "second")
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("identical content not deduplicated")
	}
	if a != b || b.Name != "first" {
		t.Errorf("dedupe returned %+v, want the original record", b)
	}
	if s.Len() != 1 || len(s.List()) != 1 {
		t.Errorf("store holds %d graphs, want 1", s.Len())
	}
	if got, err := s.Get(a.ID); err != nil || got != a {
		t.Errorf("Get by fingerprint failed: %v", err)
	}
	if _, err := s.Get("no-such-fp"); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("Get miss error %v, want ErrUnknownGraph", err)
	}
}

func TestStoreReadLGRejectsGarbage(t *testing.T) {
	s := NewStore()
	for _, bad := range []string{
		"t # g\nv 0 1\nv 0 2\n",   // duplicate vertex id
		"v 0 1\ne 0 9\n",          // undefined edge endpoint
		"t # a\nv 0 1\nt # b\n",   // second header
		"t # empty-no-vertices\n", // no vertices
	} {
		if _, _, err := s.ReadLG(strings.NewReader(bad), "x"); err == nil {
			t.Errorf("ReadLG accepted garbage %q", bad)
		}
	}
	if s.Len() != 0 {
		t.Errorf("rejected uploads leaked into the store (len %d)", s.Len())
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	k := func(i byte) CacheKey { return CacheKey{Host: string([]byte{'h', i}), Miner: "m"} }
	r1, r2, r3 := &mine.Result{Miner: "1"}, &mine.Result{Miner: "2"}, &mine.Result{Miner: "3"}
	c.Put(k(1), r1)
	c.Put(k(2), r2)
	if got, ok := c.Get(k(1)); !ok || got != r1 { // touch k1: k2 becomes LRU
		t.Fatal("expected hit on k1")
	}
	c.Put(k(3), r3) // evicts k2
	if _, ok := c.Get(k(2)); ok {
		t.Error("LRU entry not evicted")
	}
	if got, ok := c.Get(k(1)); !ok || got != r1 {
		t.Error("recently used entry evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Cap != 2 {
		t.Errorf("stats %+v, want 2/2 occupancy", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats %+v, want 2 hits 1 miss", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put(CacheKey{Host: "h"}, &mine.Result{})
	if _, ok := c.Get(CacheKey{Host: "h"}); ok {
		t.Error("disabled cache returned a hit")
	}
}
