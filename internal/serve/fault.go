package serve

import "repro/internal/fault"

// The serve failpoint catalog: every named injection site of the serving
// stack, declared here so the set is auditable in one place (and listed
// at runtime by fault.Names). Each site documents its observable failure
// semantics — what a client or operator sees when the site trips — which
// the chaos suite (chaos_test.go) asserts under concurrent load.
//
// Sites are disarmed no-ops in production (one atomic load; see
// internal/fault). Arm them from tests via fault.Arm, or in a running
// daemon via the SPIDERSERVED_FAULTS environment DSL (cmd/spiderserved).
var (
	// serve/store/get: graph-store reads. An error trip surfaces as a
	// 503 backend-read failure on GET /graphs/{id} and POST /jobs (the
	// graph may exist — clients should retry), distinct from the 404 of
	// a genuine miss.
	fpStoreGet = fault.New("serve/store/get")

	// serve/cache/get: result-cache lookups. A trip degrades to a cache
	// miss — the job runs instead of completing instantly. Never an
	// error: the cache is an optimization, not a dependency.
	fpCacheGet = fault.New("serve/cache/get")

	// serve/cache/put: result-cache stores. A trip drops the store — the
	// result is still served; only future submissions lose the O(1) hit.
	fpCachePut = fault.New("serve/cache/put")

	// serve/sched/submit: job admission, after request validation. An
	// error trip rejects the submission with 503 + Retry-After, like
	// organic backpressure.
	fpSchedSubmit = fault.New("serve/sched/submit")

	// serve/sched/claim: a runner claiming a queued job, before the
	// miner is invoked. An error trip fails the job (status "failed")
	// without running it; a delay trip stalls dispatch.
	fpSchedClaim = fault.New("serve/sched/claim")

	// serve/miner/invoke: the miner invocation boundary, inside the
	// panic-containment and retry scope. An error trip fails the attempt
	// (transient trips are retried with backoff up to the retry budget);
	// a panic trip exercises containment — the job fails with the stack,
	// the daemon keeps serving; a delay trip slows the run.
	fpMinerInvoke = fault.New("serve/miner/invoke")
)
