package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/mine"
)

// TestRunnerPanicContainment: a miner panic becomes a failed job with
// the stack in the error while the scheduler — and its other runners —
// keep serving.
func TestRunnerPanicContainment(t *testing.T) {
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		if opts.Seed == 666 {
			panic("miner exploded mid-growth")
		}
		return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(8), 2, 8)
	defer s.Shutdown(context.Background())

	bad, err := s.Submit(sg, "testminer", mine.Options{Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, bad)
	if snap.Status != StatusFailed {
		t.Fatalf("panicking job status %q, want failed", snap.Status)
	}
	if !strings.Contains(snap.Error, "miner exploded mid-growth") || !strings.Contains(snap.Error, "goroutine") {
		t.Errorf("panic error lost the value or the stack: %.200s", snap.Error)
	}
	var pe *PanicError
	if _, _, jerr := bad.Outcome(); !errors.As(jerr, &pe) {
		t.Errorf("panicking job error %T, want *PanicError", jerr)
	}
	if got := s.Panics(); got != 1 {
		t.Errorf("scheduler counted %d panics, want 1", got)
	}
	// The panic must not enter the cache.
	if _, hit := s.cache.Get(bad.Key); hit {
		t.Error("failed (panicked) job's key is in the result cache")
	}

	// The scheduler survives: a subsequent job on the same runners
	// completes.
	good, err := s.Submit(sg, "testminer", mine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, good); snap.Status != StatusDone {
		t.Errorf("post-panic job status %q, want done", snap.Status)
	}
}

// fakeSleeper records backoff waits without sleeping, optionally
// blocking until released — the injectable clock of the retry tests.
type fakeSleeper struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.waits = append(f.waits, d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleeper) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.waits...)
}

// TestRetryTransientThenSucceeds: transient-classed failures re-run the
// miner from scratch (same options) with exponential backoff until it
// succeeds; the retry count surfaces on the job and the events stream
// carries the attempt boundaries.
func TestRetryTransientThenSucceeds(t *testing.T) {
	var attempts int
	var optsSeen []string
	var mu sync.Mutex
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		mu.Lock()
		attempts++
		n := attempts
		o := opts
		o.OnProgress = nil // func field: compare the rest via its printed form
		optsSeen = append(optsSeen, fmt.Sprintf("%+v", o))
		mu.Unlock()
		if n <= 2 {
			return nil, mine.Transient(fmt.Errorf("attempt %d: backend hiccup", n))
		}
		return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(8), 1, 4)
	defer s.Shutdown(context.Background())
	s.maxRetries = 3
	s.retryBase = 40 * time.Millisecond
	slept := &fakeSleeper{}
	s.sleep = slept.sleep

	j, err := s.Submit(sg, "testminer", mine.Options{Seed: 7, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.Status != StatusDone || snap.Error != "" {
		t.Fatalf("retried job snapshot %+v, want clean done", snap)
	}
	if snap.Retries != 2 {
		t.Errorf("snapshot retries %d, want 2", snap.Retries)
	}
	if got := s.Retries(); got != 2 {
		t.Errorf("scheduler retry counter %d, want 2", got)
	}
	// Every attempt saw identical options: a retry is a from-scratch
	// re-run, never a resume.
	mu.Lock()
	if len(optsSeen) != 3 {
		t.Fatalf("miner ran %d times, want 3", len(optsSeen))
	}
	for i, o := range optsSeen {
		if o != optsSeen[0] {
			t.Errorf("attempt %d saw different options: %+v vs %+v", i, o, optsSeen[0])
		}
	}
	mu.Unlock()
	// Backoff grows exponentially with full jitter: attempt i waits in
	// (cap/2, cap] for cap = base << i.
	waits := slept.recorded()
	if len(waits) != 2 {
		t.Fatalf("recorded %d backoff waits, want 2: %v", len(waits), waits)
	}
	for i, w := range waits {
		cap := s.retryBase << i
		if w <= cap/2 || w > cap+1 {
			t.Errorf("backoff %d = %v outside (%v, %v]", i, w, cap/2, cap+1)
		}
	}
	// The events stream marks each attempt boundary.
	events, _, _ := j.WaitEvents(context.Background(), 0)
	var retryEvents int
	for _, ev := range events {
		if ev.Stage == "retry" {
			retryEvents++
		}
	}
	if retryEvents != 2 {
		t.Errorf("stream carries %d retry events, want 2 (%+v)", retryEvents, events)
	}
}

// TestRetryClassification: permanent failures and contained panics are
// never retried; transient failures past the budget still fail.
func TestRetryClassification(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	mode := "permanent"
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		switch mode {
		case "permanent":
			return nil, errors.New("bad input: no frequent spiders")
		case "panic":
			panic("bug")
		default:
			return nil, mine.Transient(errors.New("still flaky"))
		}
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 4)
	defer s.Shutdown(context.Background())
	s.maxRetries = 2
	s.sleep = (&fakeSleeper{}).sleep

	run := func(m string, seed int64) JobSnapshot {
		t.Helper()
		mu.Lock()
		mode, attempts = m, 0
		mu.Unlock()
		j, err := s.Submit(sg, "testminer", mine.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return waitTerminal(t, j)
	}

	if snap := run("permanent", 1); snap.Status != StatusFailed || snap.Retries != 0 || attempts != 1 {
		t.Errorf("permanent failure: %+v after %d attempts, want failed/0 retries/1 attempt", snap, attempts)
	}
	if snap := run("panic", 2); snap.Status != StatusFailed || snap.Retries != 0 || attempts != 1 {
		t.Errorf("panic: %+v after %d attempts, want failed/0 retries/1 attempt", snap, attempts)
	}
	snap := run("transient", 3)
	if snap.Status != StatusFailed || snap.Retries != 2 || attempts != 3 {
		t.Errorf("exhausted transient: %+v after %d attempts, want failed/2 retries/3 attempts", snap, attempts)
	}
	if !strings.Contains(snap.Error, "still flaky") {
		t.Errorf("exhausted job error %q, want the last attempt's error", snap.Error)
	}
}

// TestRetryCancelDuringBackoff: cancellation during the backoff wait
// wins over the retry budget — the job cancels promptly.
func TestRetryCancelDuringBackoff(t *testing.T) {
	inBackoff := make(chan struct{}, 4)
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		return nil, mine.Transient(errors.New("flaky"))
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 4)
	defer s.Shutdown(context.Background())
	s.maxRetries = 5
	s.sleep = func(ctx context.Context, d time.Duration) error {
		inBackoff <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	}

	j, err := s.Submit(sg, "testminer", mine.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inBackoff:
	case <-time.After(5 * time.Second):
		t.Fatal("job never reached its first backoff")
	}
	j.RequestCancel()
	snap := waitTerminal(t, j)
	if snap.Status != StatusCanceled {
		t.Errorf("cancelled-in-backoff job status %q, want canceled", snap.Status)
	}
	if _, _, jerr := j.Outcome(); !errors.Is(jerr, context.Canceled) {
		t.Errorf("cancelled-in-backoff job error %v, want context.Canceled", jerr)
	}
}

// TestBackoffDelayBounds: the grown delay is capped and jitter stays in
// the (cap/2, cap] window.
func TestBackoffDelayBounds(t *testing.T) {
	s := &Scheduler{retryBase: 100 * time.Millisecond}
	for attempt := 0; attempt < 12; attempt++ {
		want := s.retryBase << attempt
		if want > maxRetryBackoff || want <= 0 {
			want = maxRetryBackoff
		}
		for i := 0; i < 50; i++ {
			d := s.backoffDelay(attempt)
			if d <= want/2 || d > want+1 {
				t.Fatalf("attempt %d: delay %v outside (%v, %v]", attempt, d, want/2, want+1)
			}
		}
	}
	// A zero base falls back to the default rather than busy-looping.
	s = &Scheduler{}
	if d := s.backoffDelay(0); d <= defaultRetryBase/2 {
		t.Errorf("zero-base delay %v, want > %v", d, defaultRetryBase/2)
	}
}

// TestClaimFailpointFailsJob: an injected claim failure lands the job in
// status failed without invoking the miner.
func TestClaimFailpointFailsJob(t *testing.T) {
	defer fault.DisarmAll()
	var invoked int
	var mu sync.Mutex
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		mu.Lock()
		invoked++
		mu.Unlock()
		return &mine.Result{Miner: "testminer"}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 2)
	defer s.Shutdown(context.Background())

	fpSchedClaim.Arm(fault.Spec{Kind: fault.KindError, Err: errors.New("dispatcher wedged")})
	j, err := s.Submit(sg, "testminer", mine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	fault.DisarmAll()
	if snap.Status != StatusFailed || !strings.Contains(snap.Error, "dispatcher wedged") {
		t.Errorf("claim-faulted job %+v, want failed with injected error", snap)
	}
	mu.Lock()
	if invoked != 0 {
		t.Errorf("miner invoked %d times despite claim fault, want 0", invoked)
	}
	mu.Unlock()
}

// TestServerHealthReadinessSplit: /healthz is liveness (200 through
// overload and draining); /readyz flips to 503 with Retry-After when the
// queue crosses high water or the node drains.
func TestServerHealthReadinessSplit(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &mine.Result{Miner: "testminer"}, nil
		case <-ctx.Done():
			return &mine.Result{Miner: "testminer"}, ctx.Err()
		}
	})
	srv := New(Config{Runners: 1, QueueCap: 2, CacheCap: 0})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	base := ts.URL

	lg := []byte("t # tiny\nv 0 1\nv 1 2\ne 0 1\n")
	resp := post(t, base+"/graphs", "text/plain", lg)
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	expect := func(path string, want int) *http.Response {
		t.Helper()
		resp := get(t, base+path)
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		return resp
	}

	// Idle: live and ready.
	expect("/healthz", http.StatusOK).Body.Close()
	expect("/readyz", http.StatusOK).Body.Close()

	// Saturate: one running, queue filled to high water (cap 2 → high
	// water 1, so one queued job flips readiness).
	submit := func(seed int) (JobSnapshot, *http.Response) {
		t.Helper()
		body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"seed":%d}}`, sg.ID, seed)
		resp := post(t, base+"/jobs", "application/json", []byte(body))
		var snap JobSnapshot
		if resp.StatusCode < 400 {
			snap = decodeJSON[JobSnapshot](t, resp.Body)
			resp.Body.Close()
		}
		return snap, resp
	}
	if _, resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	if _, resp := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	expect("/healthz", http.StatusOK).Body.Close()
	notReady := expect("/readyz", http.StatusServiceUnavailable)
	if notReady.Header.Get("Retry-After") == "" {
		t.Error("unready /readyz lacks Retry-After")
	}
	body := decodeJSON[map[string]any](t, notReady.Body)
	notReady.Body.Close()
	if msg, _ := body["error"].(string); !strings.Contains(msg, "high-water") {
		t.Errorf("unready reason %v, want high-water explanation", body)
	}

	// Overfill: the queue rejects with the structured 503 contract.
	if _, resp := submit(3); resp.StatusCode != http.StatusAccepted {
		// Queue cap 2 may already be full depending on runner timing; in
		// either case the rejection must carry the backpressure contract.
		assertBackpressure(t, resp, "queue full")
	} else if _, resp := submit(4); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fourth submit: %d, want 503", resp.StatusCode)
	} else {
		assertBackpressure(t, resp, "queue full")
	}

	// Drain: liveness holds, readiness reports draining, submissions
	// bounce with Retry-After.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	resp = expect("/healthz", http.StatusOK)
	health := decodeJSON[map[string]any](t, resp.Body)
	resp.Body.Close()
	if draining, _ := health["draining"].(bool); !draining {
		t.Errorf("post-drain /healthz %v, want draining=true", health)
	}
	notReady = expect("/readyz", http.StatusServiceUnavailable)
	assertBackpressure(t, notReady, "draining")
	_, resp = submit(5)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", resp.StatusCode)
	}
	assertBackpressure(t, resp, "draining")
}

// assertBackpressure checks the 503 contract: Retry-After header plus a
// structured JSON body with the same hint. Closes the body.
func assertBackpressure(t *testing.T, resp *http.Response, frag string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Error("503 without Retry-After header")
	}
	body := decodeJSON[map[string]any](t, resp.Body)
	msg, _ := body["error"].(string)
	if frag != "" && !strings.Contains(msg, frag) {
		t.Errorf("503 body error %q, want %q", msg, frag)
	}
	if _, ok := body["retry_after_s"].(float64); !ok {
		t.Errorf("503 body %v lacks numeric retry_after_s", body)
	}
}

// TestServerStoreReadFaultIsBackpressure: an injected graph-store read
// failure maps to 503 + Retry-After (the graph may exist — retry), not
// 404 (which would tell clients to re-upload).
func TestServerStoreReadFaultIsBackpressure(t *testing.T) {
	defer fault.DisarmAll()
	srv := New(Config{Runners: 1, QueueCap: 2, CacheCap: 0})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := post(t, ts.URL+"/graphs", "text/plain", []byte("t # tiny\nv 0 1\nv 1 2\ne 0 1\n"))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	fpStoreGet.Arm(fault.Spec{Kind: fault.KindError, Err: errors.New("page checksum mismatch")})
	assertBackpressure(t, get(t, ts.URL+"/graphs/"+sg.ID), "read failed")
	jobReq := fmt.Sprintf(`{"graph":%q,"miner":"spidermine"}`, sg.ID)
	assertBackpressure(t, post(t, ts.URL+"/jobs", "application/json", []byte(jobReq)), "read failed")
	fault.DisarmAll()

	// Disarmed, the same lookups succeed — and a genuine miss is still a
	// plain 404 without backpressure headers.
	resp = get(t, ts.URL+"/graphs/"+sg.ID)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-disarm lookup %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	resp = get(t, ts.URL+"/graphs/definitely-missing")
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Retry-After") != "" {
		t.Errorf("miss: status %d Retry-After %q, want bare 404", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
}
