package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/mine"
)

// e2eHostLG renders the E2E host — a §5.1 synthetic network big enough
// that a run spans observable progress events — in LG upload form.
func e2eHostLG(t *testing.T) []byte {
	t.Helper()
	g, _ := mine.Synthetic(mine.SyntheticConfig{
		N: 1500, AvgDeg: 4, NumLabels: 20,
		Large: mine.InjectSpec{NV: 20, Count: 3, Support: 10},
		Small: mine.InjectSpec{NV: 5, Count: 10, Support: 10},
		Seed:  7,
	})
	var buf bytes.Buffer
	if err := g.WriteLG(&buf, "e2e-host"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func post(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitJob posts a job request and returns the decoded snapshot plus
// the HTTP status code.
func submitJob(t *testing.T, base, graphID string, options string) (JobSnapshot, int) {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"miner":"spidermine","options":%s}`, graphID, options)
	resp := post(t, base+"/jobs", "application/json", []byte(body))
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit failed: %d %s", resp.StatusCode, raw)
	}
	return decodeJSON[JobSnapshot](t, resp.Body), resp.StatusCode
}

// pollTerminal polls GET /jobs/{id} until the status is terminal.
func pollTerminal(t *testing.T, base, jobID string) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp := get(t, base+"/jobs/"+jobID)
		snap := decodeJSON[JobSnapshot](t, resp.Body)
		resp.Body.Close()
		if snap.Status.terminal() {
			return snap
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never became terminal", jobID)
	return JobSnapshot{}
}

// TestServerEndToEnd drives the full serving lifecycle over a loopback
// HTTP listener: upload (+dedupe), submit, NDJSON progress streaming,
// result retrieval, a cache hit on resubmission, and cancellation of a
// running job into committed partials with an error status — the HTTP
// projection of the budgets-truncate / contexts-error contract.
func TestServerEndToEnd(t *testing.T) {
	srv := New(Config{Runners: 2, QueueCap: 8, CacheCap: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	base := ts.URL

	// --- upload, and content-dedupe on re-upload ---
	lg := e2eHostLG(t)
	resp := post(t, base+"/graphs", "text/plain", lg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d, want 201", resp.StatusCode)
	}
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()
	if sg.ID == "" || sg.Name != "e2e-host" || sg.Vertices != 1500 {
		t.Fatalf("upload record %+v", sg)
	}
	resp = post(t, base+"/graphs", "text/plain", lg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status %d, want 200 (dedupe)", resp.StatusCode)
	}
	if again := decodeJSON[StoredGraph](t, resp.Body); again.ID != sg.ID {
		t.Fatalf("re-upload got id %s, want %s", again.ID, sg.ID)
	}
	resp.Body.Close()

	// Garbage is rejected with a positional error and registers nothing.
	resp = post(t, base+"/graphs", "text/plain", []byte("v 0 1\nv 0 2\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status %d, want 400", resp.StatusCode)
	}
	errBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(errBody), "duplicate vertex id") {
		t.Errorf("garbage upload error %s, want duplicate-vertex position", errBody)
	}

	// --- submit and run to completion, streaming progress ---
	const doneOpts = `{"min_support":3,"k":8,"dmax":4,"seed":9}`
	snap, code := submitJob(t, base, sg.ID, doneOpts)
	if code != http.StatusAccepted || snap.Cached {
		t.Fatalf("first submit: code %d snapshot %+v, want uncached 202", code, snap)
	}
	events, final := streamEvents(t, base, snap.ID, nil)
	if len(events) < 3 {
		t.Fatalf("streamed only %d progress events: %+v", len(events), events)
	}
	if events[0].Stage != "spiders" || events[len(events)-1].Stage != "done" {
		t.Errorf("event stages %v, want spiders ... done", stages(events))
	}
	if final["status"] != "done" || final["error"] != "" {
		t.Fatalf("terminal stream record %v, want clean done", final)
	}
	res1 := fetchResult(t, base, snap.ID, http.StatusOK)
	if res1.Status != StatusDone || len(res1.Patterns) == 0 || res1.Error != "" {
		t.Fatalf("result %s: status=%s patterns=%d error=%q", snap.ID, res1.Status, len(res1.Patterns), res1.Error)
	}

	// --- identical resubmission: O(1) cache hit with the same result ---
	snap2, code2 := submitJob(t, base, sg.ID, doneOpts)
	if code2 != http.StatusOK || !snap2.Cached || snap2.Status != StatusDone {
		t.Fatalf("resubmit: code %d snapshot %+v, want cached done 200", code2, snap2)
	}
	res2 := fetchResult(t, base, snap2.ID, http.StatusOK)
	b1, _ := json.Marshal(res1.Patterns)
	b2, _ := json.Marshal(res2.Patterns)
	if !bytes.Equal(b1, b2) {
		t.Error("cache hit returned different patterns")
	}

	// --- cancel a second (heavier) job mid-run ---
	snap3, _ := submitJob(t, base, sg.ID, `{"min_support":2,"k":10,"dmax":6,"seed":11}`)
	cancelOnFirst := func(ev mine.ProgressEvent) bool {
		// First event = end of Stage I; nearly all the work is still
		// ahead, so DELETE lands well inside the run.
		del(t, base+"/jobs/"+snap3.ID).Body.Close()
		return true
	}
	_, final3 := streamEvents(t, base, snap3.ID, cancelOnFirst)
	if final3["status"] != string(StatusCanceled) {
		t.Fatalf("cancelled job terminal record %v, want canceled", final3)
	}
	if !strings.Contains(final3["error"], "canceled") {
		t.Errorf("cancelled job error %q, want context canceled", final3["error"])
	}
	snap3 = pollTerminal(t, base, snap3.ID)
	if snap3.Status != StatusCanceled || snap3.Error == "" {
		t.Fatalf("cancelled job snapshot %+v", snap3)
	}
	// The committed partials are still served, carrying both the
	// truncation reason and the error — cancellation is an error WITH
	// results, never a lost run.
	res3 := fetchResult(t, base, snap3.ID, http.StatusOK)
	if res3.Status != StatusCanceled || res3.Error == "" {
		t.Fatalf("cancelled result: %+v", res3)
	}
	if res3.Truncated != string(mine.TruncatedCanceled) {
		t.Errorf("cancelled result truncation %q, want %q", res3.Truncated, mine.TruncatedCanceled)
	}
	if res3.Patterns == nil {
		t.Error("cancelled result omitted the patterns array")
	}

	// --- stats reflect the flows above ---
	resp = get(t, base+"/stats")
	stats := decodeJSON[map[string]json.RawMessage](t, resp.Body)
	resp.Body.Close()
	var cs CacheStats
	if err := json.Unmarshal(stats["cache"], &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Hits < 1 || cs.Entries < 1 {
		t.Errorf("cache stats %+v, want >=1 hit and >=1 entry", cs)
	}
}

// TestServerValidation covers the 4xx surface: unknown routes, graphs,
// jobs, miners, and measures.
func TestServerValidation(t *testing.T) {
	srv := New(Config{Runners: 1, QueueCap: 2, CacheCap: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	base := ts.URL

	check := func(resp *http.Response, want int, frag string) {
		t.Helper()
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Errorf("status %d, want %d (%s)", resp.StatusCode, want, raw)
		}
		if frag != "" && !strings.Contains(string(raw), frag) {
			t.Errorf("body %s, want %q", raw, frag)
		}
	}
	check(get(t, base+"/graphs/deadbeef"), http.StatusNotFound, "unknown graph")
	check(get(t, base+"/jobs/j999"), http.StatusNotFound, "unknown job")
	check(post(t, base+"/jobs", "application/json", []byte(`{"graph":"nope","miner":"spidermine"}`)), http.StatusNotFound, "unknown graph")
	check(post(t, base+"/jobs", "application/json", []byte(`{"bogus_field":1}`)), http.StatusBadRequest, "bad job request")

	// A registered graph exposes miner/measure validation.
	resp := post(t, base+"/graphs", "text/plain", []byte("t # tiny\nv 0 1\nv 1 2\ne 0 1\n"))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()
	check(post(t, base+"/jobs", "application/json",
		[]byte(fmt.Sprintf(`{"graph":%q,"miner":"no-such"}`, sg.ID))), http.StatusBadRequest, "unknown miner")
	check(post(t, base+"/jobs", "application/json",
		[]byte(fmt.Sprintf(`{"graph":%q,"miner":"spidermine","options":{"measure":"bogus"}}`, sg.ID))), http.StatusBadRequest, "unknown measure")

	// A pending (non-terminal) job has no result yet. The stub miner
	// blocks, so the job is reliably non-terminal at first check.
	release := make(chan struct{})
	defer close(release)
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &mine.Result{Miner: "testminer"}, ctx.Err()
	})
	resp = post(t, base+"/jobs", "application/json",
		[]byte(fmt.Sprintf(`{"graph":%q,"miner":"testminer"}`, sg.ID)))
	pending := decodeJSON[JobSnapshot](t, resp.Body)
	resp.Body.Close()
	check(get(t, base+"/jobs/"+pending.ID+"/result"), http.StatusConflict, "not finished")
}

// TestServerUploadBodyLimit: oversized graph uploads are rejected with
// 413 and register nothing.
func TestServerUploadBodyLimit(t *testing.T) {
	srv := New(Config{Runners: 1, QueueCap: 1, CacheCap: 1, MaxUploadBytes: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	big := bytes.Repeat([]byte("# padding line beyond the byte budget\n"), 8)
	resp := post(t, ts.URL+"/graphs", "text/plain", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload status %d, want 413", resp.StatusCode)
	}
	if srv.Store().Len() != 0 {
		t.Error("oversized upload registered a graph")
	}
}

// streamEvents consumes GET /jobs/{id}/events as NDJSON, returning the
// progress events and the terminal status record. onEvent (optional) is
// invoked once on the first progress event.
func streamEvents(t *testing.T, base, jobID string, onFirst func(mine.ProgressEvent) bool) ([]mine.ProgressEvent, map[string]string) {
	t.Helper()
	resp := get(t, base+"/jobs/"+jobID+"/events")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type %q", ct)
	}
	var events []mine.ProgressEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	fired := false
	for sc.Scan() {
		line := sc.Bytes()
		// The terminal record is the only line with a "status" key.
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		if _, terminal := probe["status"]; terminal {
			var final map[string]string
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
			return events, final
		}
		var ev mine.ProgressEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad progress line %s: %v", line, err)
		}
		events = append(events, ev)
		if onFirst != nil && !fired {
			fired = true
			onFirst(ev)
		}
	}
	t.Fatalf("events stream for %s ended without a terminal record (err %v)", jobID, sc.Err())
	return nil, nil
}

func fetchResult(t *testing.T, base, jobID string, wantCode int) resultEnvelope {
	t.Helper()
	resp := get(t, base+"/jobs/"+jobID+"/result")
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("result status %d, want %d: %s", resp.StatusCode, wantCode, raw)
	}
	return decodeJSON[resultEnvelope](t, resp.Body)
}

// resultEnvelope mirrors resultJSON on the client side, with patterns
// left raw (pattern JSON is exercised by internal/pattern's own tests).
type resultEnvelope struct {
	Job       string            `json:"job"`
	Status    Status            `json:"status"`
	Miner     string            `json:"miner"`
	Truncated string            `json:"truncated"`
	Error     string            `json:"error"`
	Cached    bool              `json:"cached"`
	Patterns  []json.RawMessage `json:"patterns"`
}

func stages(events []mine.ProgressEvent) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Stage
	}
	return out
}
