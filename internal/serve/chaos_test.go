package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/mine"
)

// TestChaosPanicAtMinerBoundary is the headline containment proof: with
// a panic failpoint armed at the miner invocation boundary, the
// panicking job lands in status failed with a stack-bearing error, a
// concurrently running job completes done, and the daemon keeps
// answering — it never exits.
func TestChaosPanicAtMinerBoundary(t *testing.T) {
	defer fault.DisarmAll()
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
	})
	srv := New(Config{Runners: 2, QueueCap: 8, CacheCap: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	base := ts.URL

	resp := post(t, base+"/graphs", "text/plain", []byte("t # tiny\nv 0 1\nv 1 2\ne 0 1\n"))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	// Exactly one invocation trips: of the two concurrent jobs, one
	// panics and one must sail through on the sibling runner.
	fpMinerInvoke.Arm(fault.Spec{Kind: fault.KindPanic, Msg: "injected chaos panic", Limit: 1})

	submit := func(seed int) string {
		t.Helper()
		body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"seed":%d}}`, sg.ID, seed)
		resp := post(t, base+"/jobs", "application/json", []byte(body))
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
		return decodeJSON[JobSnapshot](t, resp.Body).ID
	}
	idA, idB := submit(1), submit(2)
	snapA, snapB := pollTerminal(t, base, idA), pollTerminal(t, base, idB)

	failed, done := snapA, snapB
	if snapB.Status == StatusFailed {
		failed, done = snapB, snapA
	}
	if failed.Status != StatusFailed || done.Status != StatusDone {
		t.Fatalf("want one failed + one done, got %q/%q", snapA.Status, snapB.Status)
	}
	if !strings.Contains(failed.Error, "injected chaos panic") || !strings.Contains(failed.Error, "goroutine") {
		t.Errorf("contained panic lost the value or the stack: %.200s", failed.Error)
	}
	// The panicked job's result never entered the cache.
	if j, ok := srv.sched.Get(failed.ID); !ok {
		t.Fatal("failed job evicted prematurely")
	} else if _, hit := srv.sched.cache.Get(j.Key); hit {
		t.Error("panicked job's key is in the result cache")
	}

	// Daemon survives: liveness holds, the panic is counted, and the
	// exhausted failpoint lets the next job through.
	health := get(t, base+"/healthz")
	if health.StatusCode != http.StatusOK {
		t.Errorf("/healthz after panic: %d, want 200", health.StatusCode)
	}
	health.Body.Close()
	stats := get(t, base+"/stats")
	m := decodeJSON[map[string]any](t, stats.Body)
	stats.Body.Close()
	if p, _ := m["panics"].(float64); p < 1 {
		t.Errorf("/stats panics = %v, want >= 1", m["panics"])
	}
	if snap := pollTerminal(t, base, submit(3)); snap.Status != StatusDone {
		t.Errorf("post-panic job status %q, want done", snap.Status)
	}
}

// chaosOutcome is what one load-generator submission produced: an
// accepted job id, or the HTTP rejection it got instead.
type chaosOutcome struct {
	jobID     string
	status    int
	retryHdr  string
	bodyError string
	canceled  bool // we issued a DELETE for this job
}

// TestChaosSweep arms each failpoint in turn and drives the full HTTP
// surface with concurrent mixed load — submissions with unique seeds,
// client cancels, stats/readiness pollers — then drains, asserting the
// invariants that define "degrades, never corrupts": the daemon never
// exits (an escaped panic would kill the test process), every job
// reaches a terminal status, no failed job's key is in the result
// cache, rejections carry the backpressure contract, and drain
// completes.
func TestChaosSweep(t *testing.T) {
	scenarios := []struct {
		name string
		site string
		spec fault.Spec
	}{
		{"miner-panic", "serve/miner/invoke", fault.Spec{Kind: fault.KindPanic, Msg: "sweep panic", OneIn: 3}},
		{"miner-transient-flake", "serve/miner/invoke", fault.Spec{Kind: fault.KindError, Err: errors.New("sweep flake"), Transient: true, OneIn: 2}},
		{"miner-permanent-error", "serve/miner/invoke", fault.Spec{Kind: fault.KindError, Err: errors.New("sweep hard failure"), OneIn: 3}},
		{"miner-delay", "serve/miner/invoke", fault.Spec{Kind: fault.KindDelay, Delay: 2 * time.Millisecond, OneIn: 2}},
		{"claim-error", "serve/sched/claim", fault.Spec{Kind: fault.KindError, Err: errors.New("dispatcher wedged"), OneIn: 4}},
		{"store-read-error", "serve/store/get", fault.Spec{Kind: fault.KindError, Err: errors.New("page checksum mismatch"), OneIn: 3}},
		{"submit-reject", "serve/sched/submit", fault.Spec{Kind: fault.KindError, Err: errors.New("admission fuse blown"), OneIn: 3}},
		{"cache-get-error", "serve/cache/get", fault.Spec{Kind: fault.KindError, Err: errors.New("cache read torn"), OneIn: 2}},
		{"cache-put-drop", "serve/cache/put", fault.Spec{Kind: fault.KindError, Err: errors.New("cache disk full")}},
	}

	const workers, perWorker = 4, 6

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			defer fault.DisarmAll()
			setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
				select {
				case <-time.After(time.Millisecond):
				case <-ctx.Done():
					return &mine.Result{Miner: "testminer", Truncated: mine.TruncatedCanceled}, ctx.Err()
				}
				return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
			})
			srv := New(Config{Runners: 4, QueueCap: 64, CacheCap: 32, MaxRetries: 2, RetryBase: time.Millisecond})
			ts := httptest.NewServer(srv)
			defer ts.Close()
			base := ts.URL

			resp := post(t, base+"/graphs", "text/plain", []byte("t # tiny\nv 0 1\nv 1 2\ne 0 1\n"))
			sg := decodeJSON[StoredGraph](t, resp.Body)
			resp.Body.Close()

			if err := fault.Arm(sc.site, sc.spec); err != nil {
				t.Fatal(err)
			}

			// Load generators: no t.Fatal in goroutines — record outcomes
			// and judge afterwards.
			var mu sync.Mutex
			var outcomes []chaosOutcome
			var netErrs []error
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						seed := w*1000 + i + 1 // unique per submission → unique cache key
						body := fmt.Sprintf(`{"graph":%q,"miner":"testminer","options":{"seed":%d}}`, sg.ID, seed)
						resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(body)))
						if err != nil {
							mu.Lock()
							netErrs = append(netErrs, err)
							mu.Unlock()
							continue
						}
						out := chaosOutcome{status: resp.StatusCode, retryHdr: resp.Header.Get("Retry-After")}
						if resp.StatusCode == http.StatusAccepted {
							var snap JobSnapshot
							if err := json.NewDecoder(resp.Body).Decode(&snap); err == nil {
								out.jobID = snap.ID
							}
						} else {
							var e struct {
								Error string `json:"error"`
							}
							_ = json.NewDecoder(resp.Body).Decode(&e)
							out.bodyError = e.Error
						}
						resp.Body.Close()
						// Every third accepted job gets a client cancel racing
						// its run.
						if out.jobID != "" && i%3 == 2 {
							req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+out.jobID, nil)
							if dresp, err := http.DefaultClient.Do(req); err == nil {
								dresp.Body.Close()
								out.canceled = true
							}
						}
						mu.Lock()
						outcomes = append(outcomes, out)
						mu.Unlock()
					}
				}(w)
			}
			// A poller hammering the read-only surface concurrently.
			pollDone := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-pollDone:
						return
					default:
					}
					for _, p := range []string{"/stats", "/readyz", "/healthz", "/jobs"} {
						if resp, err := http.Get(base + p); err == nil {
							resp.Body.Close()
						}
					}
				}
			}()

			loadDone := make(chan struct{})
			go func() {
				// Close pollDone once the submit workers finish.
				defer close(pollDone)
				for {
					mu.Lock()
					n := len(outcomes) + len(netErrs)
					mu.Unlock()
					if n >= workers*perWorker {
						return
					}
					select {
					case <-loadDone:
						return
					case <-time.After(5 * time.Millisecond):
					}
				}
			}()
			wg.Wait()
			close(loadDone)

			if len(netErrs) > 0 {
				t.Fatalf("transport-level failures under chaos (daemon died?): %v", netErrs[0])
			}

			// Judge the rejections: any non-202 must be the structured
			// backpressure contract (injected submit/store faults and full
			// queues all map to 503 + Retry-After), never a 5xx panic page.
			accepted := 0
			for _, out := range outcomes {
				if out.status == http.StatusAccepted {
					accepted++
					continue
				}
				if out.status != http.StatusServiceUnavailable {
					t.Errorf("rejection status %d, want 503 (body error %q)", out.status, out.bodyError)
				}
				if out.retryHdr == "" {
					t.Errorf("503 without Retry-After (body error %q)", out.bodyError)
				}
				if out.bodyError == "" {
					t.Error("503 without structured error body")
				}
			}
			if accepted == 0 && sc.site != "serve/sched/submit" && sc.site != "serve/store/get" {
				t.Fatal("no submission was accepted — load never reached the scheduler")
			}

			// Every accepted job reaches a terminal status.
			for _, out := range outcomes {
				if out.jobID == "" {
					continue
				}
				snap := pollTerminal(t, base, out.jobID)
				if !snap.Status.terminal() {
					t.Errorf("job %s stuck in %q", out.jobID, snap.Status)
				}
			}

			// No failed job's key is in the result cache (seeds are unique,
			// so each job owns its key).
			for _, j := range srv.sched.List() {
				snap := j.Snapshot()
				if !snap.Status.terminal() {
					t.Errorf("registry job %s non-terminal after load: %q", j.ID, snap.Status)
				}
				if snap.Status == StatusFailed {
					if _, hit := srv.sched.cache.Get(j.Key); hit {
						t.Errorf("failed job %s (%s) has a cached result", j.ID, snap.Error)
					}
				}
			}

			// Drain completes under the armed failpoint, and afterwards
			// every job is terminal and liveness still answers.
			drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			drained := make(chan struct{})
			go func() { srv.Shutdown(drainCtx); close(drained) }()
			select {
			case <-drained:
			case <-time.After(25 * time.Second):
				t.Fatal("drain never completed under chaos")
			}
			for _, j := range srv.sched.List() {
				if snap := j.Snapshot(); !snap.Status.terminal() {
					t.Errorf("job %s non-terminal after drain: %q", j.ID, snap.Status)
				}
			}
			health := get(t, base+"/healthz")
			if health.StatusCode != http.StatusOK {
				t.Errorf("/healthz after drain: %d, want 200", health.StatusCode)
			}
			health.Body.Close()
		})
	}
}

// TestSchedulerHardDrainDeepBacklog: a hard drain against a deep queued
// backlog cancels every queued job without dispatching it, cancels the
// in-flight runs into their committed partials, and leaves no job
// non-terminal.
func TestSchedulerHardDrainDeepBacklog(t *testing.T) {
	var started atomic.Int32
	running := make(chan struct{}, 2)
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		started.Add(1)
		running <- struct{}{}
		<-ctx.Done()
		return &mine.Result{Miner: "testminer", Truncated: mine.TruncatedCanceled, Patterns: []*mine.Pattern{stubPattern()}}, ctx.Err()
	})
	sg := tinyStoredGraph(t)
	const runners, backlog = 2, 28
	s := NewScheduler(NewCache(0), runners, runners+backlog)

	var inflight, queued []*Job
	for i := 0; i < runners; i++ {
		j, err := s.Submit(sg, "testminer", mine.Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		inflight = append(inflight, j)
	}
	for i := 0; i < runners; i++ {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("runners never picked up the in-flight jobs")
		}
	}
	for i := 0; i < backlog; i++ {
		j, err := s.Submit(sg, "testminer", mine.Options{Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel() // zero drain budget: harden immediately
	s.Shutdown(expired)

	for _, j := range inflight {
		snap := j.Snapshot()
		if snap.Status != StatusCanceled {
			t.Errorf("in-flight job %s after hard drain: %q, want canceled", j.ID, snap.Status)
		}
		if res, _, jerr := j.Outcome(); res == nil || len(res.Patterns) != 1 || !errors.Is(jerr, context.Canceled) {
			t.Errorf("in-flight job %s lost its committed partials: res=%+v err=%v", j.ID, res, jerr)
		}
	}
	for _, j := range queued {
		snap := j.Snapshot()
		if snap.Status != StatusCanceled {
			t.Errorf("queued job %s after hard drain: %q, want canceled", j.ID, snap.Status)
		}
		if res, _, _ := j.Outcome(); res != nil {
			t.Errorf("never-run job %s carries a result: %+v", j.ID, res)
		}
	}
	if got := started.Load(); got != runners {
		t.Errorf("%d jobs were dispatched to the miner, want exactly %d (queued backlog must not run)", got, runners)
	}
	for _, j := range s.List() {
		if snap := j.Snapshot(); !snap.Status.terminal() {
			t.Errorf("job %s non-terminal after hard drain: %q", j.ID, snap.Status)
		}
	}
}
