package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/mine"
)

// waitStatus polls until the job's status satisfies pred (the notify
// channel makes this prompt, not a busy-wait).
func waitTerminal(t *testing.T, j *Job) JobSnapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Done(ctx); err != nil {
		t.Fatalf("job %s never reached a terminal status (last: %+v)", j.ID, j.Snapshot())
	}
	return j.Snapshot()
}

// TestSchedulerFIFOBackpressureAndCancel drives the queue contract with
// a blocking stub miner: FIFO dispatch, ErrQueueFull past capacity,
// cancellation of queued jobs without running them, and cancellation of
// a running job into its committed partial result.
func TestSchedulerFIFOBackpressureAndCancel(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
		case <-ctx.Done():
			// Façade contract: ctx error plus committed partials.
			return &mine.Result{Miner: "testminer", Truncated: mine.TruncatedCanceled}, ctx.Err()
		}
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 1)
	defer s.Shutdown(context.Background())

	j1, err := s.Submit(sg, "testminer", mine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("runner never picked up j1")
	}
	j2, err := s.Submit(sg, "testminer", mine.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(sg, "testminer", mine.Options{Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	// Cancel the queued job: it must terminate as canceled without the
	// stub ever seeing it.
	if err := s.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, j2); snap.Status != StatusCanceled {
		t.Errorf("queued-then-cancelled job status %q, want %q", snap.Status, StatusCanceled)
	}

	// Cancel the running job: ctx fires, the run returns its partial
	// result with the context error.
	if err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j1)
	if snap.Status != StatusCanceled || snap.Error == "" {
		t.Errorf("running-then-cancelled job snapshot %+v, want canceled with error", snap)
	}
	res, done, jerr := j1.Outcome()
	if !done || !errors.Is(jerr, context.Canceled) {
		t.Errorf("Outcome: err = %v done = %v, want context.Canceled", jerr, done)
	}
	if res == nil || res.Truncated != mine.TruncatedCanceled {
		t.Errorf("cancelled job lost its partial result: %+v", res)
	}
	select {
	case <-started:
		t.Error("cancelled queued job was dispatched to the miner")
	default:
	}
}

// TestSchedulerCacheHit: an identical (host, miner, options) submission
// completes instantly from the cache with the same Result, without a
// second run; changing any option misses.
func TestSchedulerCacheHit(t *testing.T) {
	var runs atomic.Int32
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		runs.Add(1)
		return &mine.Result{Miner: "testminer", Patterns: []*mine.Pattern{stubPattern()}}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(8), 1, 4)
	defer s.Shutdown(context.Background())

	opts := mine.Options{MinSupport: 2, K: 3, Seed: 1}
	j1, err := s.Submit(sg, "testminer", opts)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, j1); snap.Status != StatusDone || snap.Cached {
		t.Fatalf("first run snapshot %+v, want uncached done", snap)
	}
	j2, err := s.Submit(sg, "testminer", opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j2)
	if snap.Status != StatusDone || !snap.Cached {
		t.Fatalf("resubmission snapshot %+v, want cached done", snap)
	}
	r1, _, _ := j1.Outcome()
	r2, _, _ := j2.Outcome() // (res, ok, err): compare results
	if r1 != r2 {
		t.Error("cache hit returned a different Result pointer")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("miner ran %d times, want 1", got)
	}
	diff := opts
	diff.Seed = 2
	j3, err := s.Submit(sg, "testminer", diff)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, j3); snap.Cached {
		t.Error("different options hit the cache")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("miner ran %d times after option change, want 2", got)
	}
}

// TestSchedulerProgressEvents: events appended during the run reach a
// concurrent WaitEvents subscriber in order, and the stream terminates.
func TestSchedulerProgressEvents(t *testing.T) {
	release := make(chan struct{})
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		for i := 1; i <= 3; i++ {
			opts.OnProgress(mine.ProgressEvent{Miner: "testminer", Stage: "work", Iteration: i})
		}
		<-release
		return &mine.Result{Miner: "testminer"}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 2)
	defer s.Shutdown(context.Background())
	j, err := s.Submit(sg, "testminer", mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []mine.ProgressEvent
	from := 0
	sawAll := make(chan struct{})
	sawAllClosed := false
	go func() {
		// Release the run only after the subscriber has caught up
		// mid-run, proving events stream before completion.
		<-sawAll
		close(release)
	}()
	for {
		events, done, err := j.WaitEvents(ctx, from)
		if err != nil {
			t.Fatalf("WaitEvents: %v", err)
		}
		got = append(got, events...)
		from += len(events)
		if from == 3 && !sawAllClosed {
			sawAllClosed = true
			close(sawAll)
		}
		if done {
			break
		}
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d events, want 3: %+v", len(got), got)
	}
	for i, ev := range got {
		if ev.Iteration != i+1 || ev.Stage != "work" {
			t.Errorf("event %d out of order: %+v", i, ev)
		}
	}
}

// TestSchedulerGracefulDrain: Shutdown with headroom lets queued jobs
// run to completion and then refuses new submissions.
func TestSchedulerGracefulDrain(t *testing.T) {
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		return &mine.Result{Miner: "testminer"}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 4)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(sg, "testminer", mine.Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Shutdown(context.Background())
	for _, j := range jobs {
		if snap := j.Snapshot(); snap.Status != StatusDone {
			t.Errorf("job %s drained with status %q, want done", j.ID, snap.Status)
		}
	}
	if _, err := s.Submit(sg, "testminer", mine.Options{}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
}

// TestSchedulerHardDrain: when the drain budget is already spent,
// Shutdown cancels the in-flight run — which completes as canceled with
// its committed partial result — and queued jobs never run.
func TestSchedulerHardDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return &mine.Result{Miner: "testminer", Truncated: mine.TruncatedCanceled, Patterns: []*mine.Pattern{stubPattern()}}, ctx.Err()
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 1, 2)
	j1, err := s.Submit(sg, "testminer", mine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("runner never started j1")
	}
	j2, err := s.Submit(sg, "testminer", mine.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel() // zero drain budget: harden immediately
	s.Shutdown(expired)

	snap1 := j1.Snapshot()
	if snap1.Status != StatusCanceled {
		t.Errorf("in-flight job after hard drain: %q, want canceled", snap1.Status)
	}
	if res, _, jerr := j1.Outcome(); res == nil || len(res.Patterns) != 1 || jerr == nil {
		t.Errorf("hard drain lost the committed partials: res=%+v err=%v", res, jerr)
	}
	if snap2 := j2.Snapshot(); snap2.Status != StatusCanceled {
		t.Errorf("queued job after hard drain: %q, want canceled", snap2.Status)
	}
}

// TestSchedulerDoesNotCacheWallClockTruncation: a result truncated by
// the MaxWallClock budget is timing-dependent and must not be replayed
// from the cache; deterministic truncations (MaxPatterns) are cached.
func TestSchedulerDoesNotCacheWallClockTruncation(t *testing.T) {
	var runs atomic.Int32
	truncation := mine.TruncatedDeadline
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		runs.Add(1)
		return &mine.Result{Miner: "testminer", Truncated: truncation}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(8), 1, 4)
	defer s.Shutdown(context.Background())

	opts := mine.Options{MaxWallClock: time.Millisecond, Seed: 1}
	for i := 0; i < 2; i++ {
		j, err := s.Submit(sg, "testminer", opts)
		if err != nil {
			t.Fatal(err)
		}
		if snap := waitTerminal(t, j); snap.Status != StatusDone || snap.Cached {
			t.Fatalf("run %d: snapshot %+v, want uncached done", i, snap)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("wall-clock-truncated job ran %d times, want 2 (no caching)", got)
	}

	truncation = mine.TruncatedMaxPatterns
	opts2 := mine.Options{MaxPatterns: 1, Seed: 2}
	for i := 0; i < 2; i++ {
		j, err := s.Submit(sg, "testminer", opts2)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("MaxPatterns-truncated job ran %d extra times, want 1 (cached)", got-2)
	}
}

// TestSchedulerJobRetention: past the retention bound the oldest
// terminal jobs are evicted from Get/List; live jobs never are.
func TestSchedulerJobRetention(t *testing.T) {
	release := make(chan struct{})
	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		if opts.Seed == 99 { // the long-running job
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return &mine.Result{Miner: "testminer"}, nil
	})
	sg := tinyStoredGraph(t)
	s := NewScheduler(NewCache(0), 2, 8)
	defer s.Shutdown(context.Background())
	s.mu.Lock()
	s.retain = 2
	s.mu.Unlock()

	long, err := s.Submit(sg, "testminer", mine.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	var last *Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(sg, "testminer", mine.Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		last = j
	}
	close(release)
	waitTerminal(t, long)

	if _, ok := s.Get(long.ID); !ok {
		t.Error("live job was evicted by retention")
	}
	if _, ok := s.Get(last.ID); !ok {
		t.Error("newest terminal job was evicted")
	}
	if n := len(s.List()); n > 3 {
		t.Errorf("registry holds %d jobs after retention sweep, want <= 3", n)
	}
}

// TestSchedulerRejectsUnknownMiner: submission validates the miner name
// up front.
func TestSchedulerRejectsUnknownMiner(t *testing.T) {
	s := NewScheduler(NewCache(0), 1, 1)
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(tinyStoredGraph(t), "no-such-miner", mine.Options{}); err == nil {
		t.Error("unknown miner accepted")
	}
}
