package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/mine"
)

// Config sizes a Server.
type Config struct {
	// Runners is the number of concurrent mining runners (min 1).
	Runners int
	// QueueCap bounds the FIFO job queue; a full queue rejects
	// submissions with 503 (min 1).
	QueueCap int
	// CacheCap bounds the result cache in entries; <= 0 disables
	// caching.
	CacheCap int
	// JobsCap bounds how many jobs stay registered; past it the oldest
	// terminal jobs are evicted (default 4096).
	JobsCap int
	// MaxUploadBytes bounds a POST /graphs request body; oversized
	// uploads get 413 (default 256 MiB).
	MaxUploadBytes int64
	// MaxRetries bounds how many times a job is re-run after a
	// transient-classed failure (mine.IsTransient); 0 disables retries.
	// Each retry re-runs the miner from scratch with the same options.
	MaxRetries int
	// RetryBase seeds the exponential retry backoff (doubled per
	// attempt, jittered, capped at 5s); <= 0 means the 100ms default.
	RetryBase time.Duration
	// ImageEdgeThreshold is the edge count past which uploaded hosts also
	// persist an SPC1 image to the backend's file tier, letting recovery
	// mmap them back in O(1) instead of re-decoding (see the package
	// doc's Out-of-core notes). 0 means DefaultImageEdgeThreshold;
	// negative disables image persistence. Ignored when the backend has
	// no file tier (store.FileBackend).
	ImageEdgeThreshold int
	// Backend, when set, is the durable storage engine (internal/store):
	// uploaded graphs and cacheable results write through to it, and
	// terminal job records are journaled, so a restart over the same
	// backend recovers all three (serve.Open). Nil means memory-only
	// serving — behavior identical to the pre-durability server.
	Backend store.Backend
}

// Server is the HTTP/JSON mining service: an http.Handler exposing the
// graph store, the job scheduler, and the result cache.
//
// Endpoints:
//
//	GET    /healthz           liveness: the process is up (always 200)
//	GET    /readyz            readiness: accepting traffic (503 while draining or queue at high water)
//	GET    /stats             cache + queue + resilience statistics
//	GET    /miners            registered miners
//	POST   /graphs            upload an LG-format host; dedupes by content fingerprint
//	GET    /graphs            list registered graphs
//	GET    /graphs/{id}       one graph's metadata
//	POST   /jobs              submit {graph, miner, options}; cache hits complete instantly
//	GET    /jobs              list jobs in submission order
//	GET    /jobs/{id}         job status snapshot
//	DELETE /jobs/{id}         cancel; the run winds down to committed partials
//	GET    /jobs/{id}/events  NDJSON progress stream, terminated by a status record
//	GET    /jobs/{id}/result  terminal result (partials included for canceled jobs)
//	GET    /metrics           Prometheus text exposition of the serving metrics
type Server struct {
	store   *Store
	cache   *Cache
	sched   *Scheduler
	metrics *Metrics
	mux     *http.ServeMux
	// backend is the storage engine everything above writes through —
	// a store.Memory unless Config.Backend supplied a durable one, in
	// which case persistent is set and recovery/journaling activate.
	backend    store.Backend
	persistent bool
	maxUpload  int64
}

// New assembles a Server and starts its scheduler runners.
func New(cfg Config) *Server {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 256 << 20
	}
	backend := cfg.Backend
	persistent := backend != nil
	if backend == nil {
		backend = store.NewMemory()
	}
	s := &Server{
		store:      NewStoreWith(backend),
		mux:        http.NewServeMux(),
		backend:    backend,
		persistent: persistent,
		maxUpload:  cfg.MaxUploadBytes,
	}
	if cfg.ImageEdgeThreshold != 0 {
		s.store.SetImageEdgeThreshold(cfg.ImageEdgeThreshold)
	}
	if persistent {
		s.cache = NewCacheWith(cfg.CacheCap, backend)
	} else {
		s.cache = NewCache(cfg.CacheCap)
	}
	s.sched = NewScheduler(s.cache, cfg.Runners, cfg.QueueCap)
	if persistent {
		s.sched.journal = backend
	}
	if cfg.JobsCap > 0 {
		s.sched.retain = cfg.JobsCap
	}
	if cfg.MaxRetries > 0 {
		s.sched.maxRetries = cfg.MaxRetries
	}
	if cfg.RetryBase > 0 {
		s.sched.retryBase = cfg.RetryBase
	}
	// Wire observability before any traffic: the scheduler records through
	// the same Metrics the handlers and /metrics scrape read.
	s.metrics = newMetrics()
	s.metrics.bind(s)
	s.sched.metrics = s.metrics
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /miners", s.handleMiners)
	s.mux.HandleFunc("POST /graphs", s.handleUploadGraph)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Open assembles a Server over cfg (normally with a durable
// cfg.Backend) and recovers persisted state before returning — the
// restartable-daemon entry point (cmd/spiderserved with -data-dir).
// With no Backend it degenerates to New with zero recovery.
func Open(cfg Config) (*Server, RecoveryStats, error) {
	s := New(cfg)
	rs, err := s.Recover()
	if err != nil {
		return nil, rs, err
	}
	return s, rs, nil
}

// RecoveryStats reports what a Recover pass restored from the backend.
type RecoveryStats struct {
	Graphs int // graphs re-registered (fingerprints re-verified)
	Mapped int // of those, served by mmap'ing an SPC1 image (zero decode)
	Jobs   int // terminal job records replayed into /jobs history
}

// Recover rebuilds serving state from the configured durable backend:
// graph blobs decode and re-register under re-verified fingerprints,
// and the journal replays terminal job records into history (resuming
// the job-ID sequence past them). A no-op without a Config.Backend.
// Call before serving traffic; Open does.
func (s *Server) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if !s.persistent {
		return rs, nil
	}
	n, mapped, err := s.store.Recover()
	rs.Graphs, rs.Mapped = n, mapped
	if err != nil {
		return rs, err
	}
	recs, err := s.backend.Journal()
	if err != nil {
		return rs, fmt.Errorf("serve: recover journal: %w", err)
	}
	rs.Jobs = s.sched.recoverJournal(recs)
	return rs, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store exposes the graph store (for embedding and tests).
func (s *Server) Store() *Store { return s.store }

// Scheduler exposes the job scheduler (for embedding and tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Shutdown drains the scheduler (see Scheduler.Shutdown): graceful until
// ctx fires, then in-flight jobs are cancelled into committed partials.
// Callers should stop HTTP intake (http.Server.Shutdown) alongside.
func (s *Server) Shutdown(ctx context.Context) { s.sched.Shutdown(ctx) }

// Close releases resources held after Shutdown — today the mmap'd graph
// images recovery opened. Call only once no job can still read a mapped
// graph (i.e. after Shutdown has drained).
func (s *Server) Close() error { return s.store.Close() }

// writeJSON writes a JSON response body. An Encode failure cannot be
// reported to the client (the status line is gone by then) so it is
// counted — spiderserved_http_encode_failures_total is the only place a
// truncated response leaves a trace.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.metrics.encodeFailure()
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeBackpressure is the 503 contract: a Retry-After header (seconds)
// plus a structured JSON body carrying the same hint, so both
// header-aware proxies and body-parsing clients can back off instead of
// hot-looping on a loaded or draining node.
func (s *Server) writeBackpressure(w http.ResponseWriter, err error, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":         err.Error(),
		"retry_after_s": secs,
	})
}

// retryAfterHint suggests how long a rejected client should wait before
// resubmitting: scaled by queue occupancy per runner when the queue is
// full, a flat (longer) hint while draining — a draining node wants the
// client to go elsewhere, not to come back soon.
func (s *Server) retryAfterHint(draining bool) time.Duration {
	if draining {
		return 10 * time.Second
	}
	d := time.Duration(1+s.sched.QueueDepth()/s.sched.runners) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// handleHealth is liveness only: the process is up and the handler
// loop responsive. It stays 200 through draining and overload —
// restart-deciders (process supervisors) key on it, and restarting a
// draining node would discard the drain.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.sched.Draining(),
	})
}

// handleReady is readiness: whether this node should receive new
// traffic. Load balancers key on it — a draining or high-water node
// flips to 503 here (with Retry-After) before submissions start
// bouncing, so it leaves rotation ahead of client-visible rejections.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.sched.Ready()
	if !ready {
		s.writeBackpressure(w, fmt.Errorf("serve: not ready: %s", reason), s.retryAfterHint(s.sched.Draining()))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"cache":          s.cache.Stats(),
		"queue_depth":    s.sched.QueueDepth(),
		"queue_cap":      s.sched.QueueCap(),
		"draining":       s.sched.Draining(),
		"retries":        s.sched.Retries(),
		"panics":         s.sched.Panics(),
		"graphs":         s.store.Len(),
		"journal_errors": s.sched.JournalErrs(),
		"persistent":     s.persistent,
		// The full metric registry (histogram quantiles included), for
		// clients that want one JSON snapshot instead of scraping
		// /metrics.
		"metrics": s.metrics.reg.Snapshot(),
	})
}

// handleMetrics serves the Prometheus text exposition (version 0.0.4) of
// every registered family. Scraping is lock-free on the hot counters; a
// scrape observes each atomic at its own instant, not a consistent
// cross-metric cut.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		s.metrics.encodeFailure()
	}
}

func (s *Server) handleMiners(w http.ResponseWriter, r *http.Request) {
	type minerInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []minerInfo
	for _, name := range mine.Names() {
		m, err := mine.Get(name)
		if err != nil {
			continue
		}
		out = append(out, minerInfo{Name: name, Description: m.Describe()})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request) {
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxUpload)}
	sg, existed, err := s.store.ReadLG(body, r.URL.Query().Get("name"))
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: upload exceeds %d bytes", s.maxUpload))
		case errors.Is(err, ErrPersist) || fault.IsInjected(err):
			// The graph parsed fine; the durable tier couldn't take it.
			// Backpressure — the client should retry the same bytes, not
			// fix them — and nothing was registered, so no half-uploaded
			// state can 404 later.
			s.writeBackpressure(w, err, s.retryAfterHint(false))
		default:
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.metrics.upload(body.n)
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	s.writeJSON(w, code, sg)
}

// countingReader tallies bytes read through it — the accepted-upload
// byte count for spiderserved_upload_bytes_total.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	sg, err := s.store.Get(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownGraph):
		s.writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		// A failed store read, not a miss: the graph may well exist, so
		// steer the client to retry rather than re-upload.
		s.writeBackpressure(w, fmt.Errorf("serve: graph store read failed: %w", err), s.retryAfterHint(false))
		return
	}
	s.writeJSON(w, http.StatusOK, sg)
}

// optionsJSON is the wire form of mine.Options (OnProgress has no wire
// form; progress streams via /jobs/{id}/events).
type optionsJSON struct {
	MinSupport       int     `json:"min_support,omitempty"`
	K                int     `json:"k,omitempty"`
	Dmax             int     `json:"dmax,omitempty"`
	Epsilon          float64 `json:"epsilon,omitempty"`
	Radius           int     `json:"radius,omitempty"`
	Vmin             int     `json:"vmin,omitempty"`
	Measure          string  `json:"measure,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	MaxPatterns      int     `json:"max_patterns,omitempty"`
	MaxWallClockMS   int64   `json:"max_wall_clock_ms,omitempty"`
	MaxEmbeddings    int     `json:"max_embeddings,omitempty"`
	MaxSpiders       int     `json:"max_spiders,omitempty"`
	MaxLeavesPerStar int     `json:"max_leaves_per_star,omitempty"`
}

func (o optionsJSON) toOptions() mine.Options {
	return mine.Options{
		MinSupport:       o.MinSupport,
		K:                o.K,
		Dmax:             o.Dmax,
		Epsilon:          o.Epsilon,
		Radius:           o.Radius,
		Vmin:             o.Vmin,
		Measure:          mine.Measure(o.Measure),
		Seed:             o.Seed,
		Workers:          o.Workers,
		MaxPatterns:      o.MaxPatterns,
		MaxWallClock:     time.Duration(o.MaxWallClockMS) * time.Millisecond,
		MaxEmbeddings:    o.MaxEmbeddings,
		MaxSpiders:       o.MaxSpiders,
		MaxLeavesPerStar: o.MaxLeavesPerStar,
	}
}

// validate rejects numeric options no mining run can mean. The façade is
// looser in places (mine.Options treats Workers < 0 as "use GOMAXPROCS")
// but the serving surface owns its capacity policy, so a negative knob in
// a request is a client mistake to surface as 400 at submit time — not a
// queued job that fails (or silently commandeers every core) later.
func (o optionsJSON) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"min_support", float64(o.MinSupport)},
		{"k", float64(o.K)},
		{"dmax", float64(o.Dmax)},
		{"epsilon", o.Epsilon},
		{"radius", float64(o.Radius)},
		{"vmin", float64(o.Vmin)},
		{"workers", float64(o.Workers)},
		{"max_patterns", float64(o.MaxPatterns)},
		{"max_wall_clock_ms", float64(o.MaxWallClockMS)},
		{"max_embeddings", float64(o.MaxEmbeddings)},
		{"max_spiders", float64(o.MaxSpiders)},
		{"max_leaves_per_star", float64(o.MaxLeavesPerStar)},
	} {
		if f.v < 0 {
			return fmt.Errorf("serve: invalid options: %s must not be negative (got %v)", f.name, f.v)
		}
	}
	return nil
}

type jobRequest struct {
	Graph   string      `json:"graph"`
	Miner   string      `json:"miner"`
	Options optionsJSON `json:"options"`
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job request: %w", err))
		return
	}
	if req.Miner == "" {
		req.Miner = "spidermine"
	}
	sg, err := s.store.Get(req.Graph)
	switch {
	case errors.Is(err, ErrUnknownGraph):
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown graph %q (upload via POST /graphs)", req.Graph))
		return
	case err != nil:
		s.writeBackpressure(w, fmt.Errorf("serve: graph store read failed: %w", err), s.retryAfterHint(false))
		return
	}
	// Surface request-validation errors (unknown measure, negative
	// numerics, unknown miner) at submit time rather than as a failed
	// job. The miner check runs here — not just inside Submit — so the
	// Submit error switch below can treat any leftover non-sentinel error
	// as the server's fault (500), never the client's.
	if err := req.Options.validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.Options.toOptions()
	if err := opts.Measure.Valid(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := mine.Get(req.Miner); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.sched.Submit(sg, req.Miner, opts)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	snap := job.Snapshot()
	code := http.StatusAccepted
	if snap.Cached {
		code = http.StatusOK
	}
	s.writeJSON(w, code, snap)
}

// writeSubmitError classifies a Scheduler.Submit error. The sentinels
// and injected admission faults are load-shedding — 503 with a
// Retry-After, counted by cause. Everything else reaching this point is
// a server-side defect (the handler already validated the request:
// graph, miner, measure, numeric options), so it must surface as 500 —
// a 400 here would tell the client to fix a request that was fine.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.rejection(rejectQueueFull)
		s.writeBackpressure(w, err, s.retryAfterHint(false))
	case errors.Is(err, ErrDraining):
		s.metrics.rejection(rejectDraining)
		s.writeBackpressure(w, err, s.retryAfterHint(true))
	case fault.IsInjected(err):
		// An injected admission fault models transient scheduler trouble:
		// backpressure, not a client error.
		s.metrics.rejection(rejectFault)
		s.writeBackpressure(w, err, s.retryAfterHint(false))
	default:
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: submit failed: %w", err))
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	// Snapshots includes journal-recovered history ahead of live jobs,
	// so /jobs reads continuously across a restart.
	s.writeJSON(w, http.StatusOK, s.sched.Snapshots())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.sched.Get(id); ok {
		s.writeJSON(w, http.StatusOK, j.Snapshot())
		return
	}
	if snap, _, ok := s.sched.History(id); ok {
		s.writeJSON(w, http.StatusOK, snap)
		return
	}
	s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		if snap, _, hok := s.sched.History(id); hok {
			// History entries are terminal by construction; cancelling one
			// is the same no-op as cancelling any terminal job.
			s.writeJSON(w, http.StatusAccepted, snap)
			return
		}
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	// Cancel on the job we already hold: a concurrent retention eviction
	// must not turn a legitimate DELETE into an unknown-job error.
	j.RequestCancel()
	s.writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleJobEvents streams the job's progress as NDJSON: one
// mine.ProgressEvent JSON object per line, in order, from the beginning
// of the job (late subscribers catch up first), terminated by a final
// status record {"status": ..., "truncated": ..., "error": ...} once the
// job is terminal.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		snap, _, hok := s.sched.History(id)
		if !hok {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
			return
		}
		// Event logs are not journaled (they are progress, not outcome);
		// replay just the terminal status record so the stream contract —
		// "terminated by a status record" — holds across restarts.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if err := json.NewEncoder(w).Encode(map[string]string{
			"status":    string(snap.Status),
			"truncated": snap.Truncated,
			"error":     snap.Error,
		}); err != nil {
			s.metrics.encodeFailure()
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Push the status line and headers out before the first event: a
	// queued job may not produce bytes for a while, and an unflushed
	// response looks dead to clients and proxies.
	rc.Flush()
	enc := json.NewEncoder(w)
	from := 0
	for {
		events, done, err := j.WaitEvents(r.Context(), from)
		if err != nil {
			return // client went away
		}
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				s.metrics.encodeFailure()
				return
			}
		}
		from += len(events)
		if done {
			snap := j.Snapshot()
			if err := enc.Encode(map[string]string{
				"status":    string(snap.Status),
				"truncated": snap.Truncated,
				"error":     snap.Error,
			}); err != nil {
				s.metrics.encodeFailure()
				return
			}
			rc.Flush()
			return
		}
		rc.Flush()
	}
}

// resultJSON is the wire form of a terminal job's result. For canceled
// jobs it carries the deterministic committed partial patterns together
// with the context error — the HTTP projection of the façade's
// budgets-truncate / contexts-error contract.
type resultJSON struct {
	Job       string          `json:"job"`
	Status    Status          `json:"status"`
	Miner     string          `json:"miner"`
	Truncated string          `json:"truncated,omitempty"`
	Error     string          `json:"error,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Stats     mine.Stats      `json:"stats"`
	Patterns  []*mine.Pattern `json:"patterns"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		s.writeHistoryResult(w, id)
		return
	}
	res, done, err := j.Outcome()
	if !done {
		s.writeError(w, http.StatusConflict, fmt.Errorf("serve: job %q is not finished (status %q)", j.ID, j.Snapshot().Status))
		return
	}
	snap := j.Snapshot()
	out := resultJSON{
		Job: j.ID, Status: snap.Status, Miner: j.Miner,
		Truncated: snap.Truncated, Cached: snap.Cached,
	}
	if err != nil {
		out.Error = err.Error()
	}
	if res != nil {
		out.Stats = res.Stats
		out.Patterns = res.Patterns
	}
	if out.Patterns == nil {
		out.Patterns = []*mine.Pattern{}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// writeHistoryResult serves the result of a journal-recovered job. The
// in-process Result pointer did not survive the restart, so only
// outcomes that were cacheable — and therefore persisted in the result
// cache's durable tier — can be re-served; anything else (failures,
// cancellations' partials, wall-clock-truncated runs) is 410 Gone with
// a resubmit hint, never a 404 that would suggest the job ID is wrong.
func (s *Server) writeHistoryResult(w http.ResponseWriter, id string) {
	snap, key, ok := s.sched.History(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	if res, hit := s.cache.Get(key); hit {
		out := resultJSON{
			Job: id, Status: snap.Status, Miner: snap.Miner,
			Truncated: snap.Truncated, Cached: true, Error: snap.Error,
			Stats: res.Stats, Patterns: res.Patterns,
		}
		if out.Patterns == nil {
			out.Patterns = []*mine.Pattern{}
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	s.writeError(w, http.StatusGone, fmt.Errorf("serve: job %q finished %q before a restart and its result was not retained; resubmit to recompute", id, snap.Status))
}
