package serve

import (
	"time"

	"repro/internal/obs"
	"repro/mine"
)

// Rejection causes for the spiderserved_rejections_total counter. The
// set is closed (bounded label cardinality): every load-shedding path
// maps to exactly one.
const (
	rejectQueueFull = "queue_full"
	rejectDraining  = "draining"
	rejectFault     = "fault"
)

// Metrics is the serving stack's observability surface: one obs
// registry per Server, exposed in Prometheus text form at GET /metrics
// and as a JSON snapshot inside GET /stats.
//
// Two recording shapes, chosen per metric:
//
//   - Event-time metrics (histograms, rejection/upload/encode counters)
//     are recorded where the event happens; record sites are nil-safe
//     (a bare NewScheduler without a Server has no Metrics and records
//     nothing) and allocation-free (the internal/obs contract).
//   - Scrape-time metrics (cache hits, store reads, retry/panic totals,
//     queue occupancy) read the owning component's own counters via
//     CounterFunc/GaugeFunc, so the component stays the single source
//     of truth — /stats and /metrics can never drift apart.
type Metrics struct {
	reg *obs.Registry

	queueWait    *obs.Histogram
	runSeconds   *obs.HistogramVec
	stageSeconds *obs.HistogramVec
	jobsFinished *obs.CounterVec
	rejections   *obs.CounterVec
	uploads      *obs.Counter
	uploadBytes  *obs.Counter
	encodeFails  *obs.Counter
}

// newMetrics builds the event-time metric families. Scrape-time
// families join in bind, once the components they read exist.
func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg: reg,
		queueWait: reg.Histogram("spiderserved_sched_queue_wait_seconds",
			"time a job waited in the FIFO queue before a runner claimed it",
			obs.SecondsScale, obs.DurationBuckets()),
		runSeconds: reg.HistogramVec("spiderserved_run_seconds",
			"mining run wall-clock from claim to terminal status, by miner",
			"miner", obs.SecondsScale, obs.DurationBuckets()),
		stageSeconds: reg.HistogramVec("spiderserved_stage_seconds",
			"per-stage mining wall-clock (mine.Stats.Stages), by stage",
			"stage", obs.SecondsScale, obs.DurationBuckets()),
		jobsFinished: reg.CounterVec("spiderserved_jobs_finished_total",
			"jobs reaching a terminal status, by status",
			"status"),
		rejections: reg.CounterVec("spiderserved_rejections_total",
			"job submissions rejected with 503, by cause",
			"cause"),
		uploads: reg.Counter("spiderserved_uploads_total",
			"graph uploads accepted (including content-dedupe re-uploads)"),
		uploadBytes: reg.Counter("spiderserved_upload_bytes_total",
			"bytes of accepted graph-upload request bodies"),
		encodeFails: reg.Counter("spiderserved_http_encode_failures_total",
			"JSON response encode/stream-write failures (truncated responses)"),
	}
	// Pre-create the closed label sets so every scrape shows the full
	// schema (a zero series is a statement; an absent one is a mystery).
	for _, status := range []Status{StatusDone, StatusFailed, StatusCanceled} {
		m.jobsFinished.With(string(status))
	}
	for _, cause := range []string{rejectQueueFull, rejectDraining, rejectFault} {
		m.rejections.With(cause)
	}
	return m
}

// bind registers the scrape-time families over the Server's components.
func (m *Metrics) bind(s *Server) {
	reg, sched, cache, store := m.reg, s.sched, s.cache, s.store
	reg.CounterFunc("spiderserved_jobs_submitted_total",
		"jobs accepted by Submit (queued or served from cache)",
		func() uint64 { return uint64(sched.Submitted()) })
	reg.GaugeFunc("spiderserved_sched_queue_depth",
		"jobs waiting for a runner",
		func() float64 { return float64(sched.QueueDepth()) })
	reg.GaugeFunc("spiderserved_sched_queue_cap",
		"FIFO queue capacity",
		func() float64 { return float64(sched.QueueCap()) })
	reg.GaugeFunc("spiderserved_sched_draining",
		"1 while the scheduler is draining (rejecting submissions), else 0",
		func() float64 {
			if sched.Draining() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("spiderserved_sched_retries_total",
		"transient-failure re-runs across all jobs",
		func() uint64 { return uint64(sched.Retries()) })
	reg.CounterFunc("spiderserved_sched_panics_total",
		"miner panics contained at the job boundary",
		func() uint64 { return uint64(sched.Panics()) })

	reg.CounterFunc("spiderserved_cache_hits_total",
		"result-cache hits", func() uint64 { return cache.Stats().Hits })
	reg.CounterFunc("spiderserved_cache_misses_total",
		"result-cache misses", func() uint64 { return cache.Stats().Misses })
	reg.CounterFunc("spiderserved_cache_degraded_total",
		"result-cache lookups degraded to a miss by a backend fault (not counted as misses)",
		func() uint64 { return cache.Stats().Degraded })
	reg.CounterFunc("spiderserved_cache_evictions_total",
		"result-cache LRU evictions", func() uint64 { return cache.Stats().Evictions })
	reg.GaugeFunc("spiderserved_cache_entries",
		"result-cache occupancy", func() float64 { return float64(cache.Stats().Entries) })

	reg.CounterFunc("spiderserved_store_reads_total",
		"graph-store lookups", func() uint64 { return store.reads.Value() })
	reg.CounterFunc("spiderserved_store_misses_total",
		"graph-store lookups for unknown fingerprints", func() uint64 { return store.misses.Value() })
	reg.CounterFunc("spiderserved_store_read_faults_total",
		"graph-store reads failed by a backend fault", func() uint64 { return store.faults.Value() })
	reg.GaugeFunc("spiderserved_store_graphs",
		"registered host graphs", func() float64 { return float64(store.Len()) })

	// Storage-engine families. Registered unconditionally — a memory
	// backend reports zeros — so the /metrics schema does not depend on
	// whether the daemon runs with -data-dir.
	backend := s.backend
	reg.CounterFunc("spiderserved_store_disk_bytes_written_total",
		"bytes appended to the storage backend's log (headers + payloads)",
		func() uint64 { return backend.Stats().BytesWritten })
	reg.CounterFunc("spiderserved_store_disk_bytes_read_total",
		"payload bytes read back from the storage backend",
		func() uint64 { return backend.Stats().BytesRead })
	reg.CounterFunc("spiderserved_store_disk_fsyncs_total",
		"fsyncs issued by the storage backend",
		func() uint64 { return backend.Stats().Fsyncs })
	reg.CounterFunc("spiderserved_store_disk_recovery_truncations_total",
		"torn log tails truncated by backend recovery scans",
		func() uint64 { return backend.Stats().RecoveryTruncations })

	reg.CounterFunc("spiderserved_cache_backend_hits_total",
		"result-cache hits served from the durable tier (and promoted to L1)",
		func() uint64 { return cache.Stats().BackendHits })
	reg.CounterFunc("spiderserved_cache_persist_drops_total",
		"results cached in memory whose durable write-through failed",
		func() uint64 { return cache.Stats().PersistDrops })
	reg.CounterFunc("spiderserved_sched_journal_errors_total",
		"terminal-job journal appends that failed",
		func() uint64 { return uint64(sched.JournalErrs()) })
}

// observeQueueWait records queue dwell time for a claimed job.
func (m *Metrics) observeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(int64(d))
}

// recordRun records one finished run: terminal status, wall-clock by
// miner, and the per-stage breakdown the engine reported.
func (m *Metrics) recordRun(miner string, status Status, run time.Duration, stages []mine.StageTime) {
	if m == nil {
		return
	}
	m.jobsFinished.With(string(status)).Inc()
	m.runSeconds.With(miner).Observe(int64(run))
	for _, st := range stages {
		m.stageSeconds.With(st.Name).Observe(int64(st.Duration))
	}
}

// jobFinished records a terminal transition that never ran (cache-hit
// completions, queued-job cancellations, containment failures).
func (m *Metrics) jobFinished(status Status) {
	if m == nil {
		return
	}
	m.jobsFinished.With(string(status)).Inc()
}

// rejection records one load-shedding 503 by cause.
func (m *Metrics) rejection(cause string) {
	if m == nil {
		return
	}
	m.rejections.With(cause).Inc()
}

// upload records one accepted graph upload of n body bytes.
func (m *Metrics) upload(n int64) {
	if m == nil {
		return
	}
	m.uploads.Inc()
	if n > 0 {
		m.uploadBytes.Add(uint64(n))
	}
}

// encodeFailure records a JSON encode or stream-write failure — the
// response the client got was truncated or never arrived.
func (m *Metrics) encodeFailure() {
	if m == nil {
		return
	}
	m.encodeFails.Inc()
}
