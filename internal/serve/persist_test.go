package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/mine"
)

// persistHostLG renders a small host with repeated structure — four
// copies of a 4-vertex motif — so a real spidermine run over it yields
// patterns quickly (the restart tests re-mine nothing; speed matters).
func persistHostLG(t *testing.T) []byte {
	t.Helper()
	b := mine.NewGraphBuilder(16, 16)
	for c := 0; c < 4; c++ {
		base := b.AddVertex(1)
		l1 := b.AddVertex(2)
		l2 := b.AddVertex(2)
		l3 := b.AddVertex(3)
		b.AddEdge(base, l1)
		b.AddEdge(base, l2)
		b.AddEdge(base, l3)
		b.AddEdge(l1, l3)
	}
	var buf bytes.Buffer
	if err := b.Build().WriteLG(&buf, "persist-host"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openDiskServer opens (or reopens) a disk-backed server over dir and
// returns it with its recovery stats and backend.
func openDiskServer(t *testing.T, dir string) (*Server, RecoveryStats, *store.Disk) {
	t.Helper()
	backend, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, rs, err := Open(Config{Runners: 2, QueueCap: 8, CacheCap: 16, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return srv, rs, backend
}

const persistOpts = `{"min_support":2,"k":4,"dmax":4,"seed":7}`

// TestRestartDurability is the storage engine's end-to-end contract:
// upload a graph, mine it, restart the daemon on the same data
// directory, and find the graph still registered, the job in /jobs
// history with its terminal record, the result re-servable, and an
// identical resubmission answered from the persistent cache without
// re-mining.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()

	// --- first life: upload, mine, shut down cleanly ---
	srv, rs, backend := openDiskServer(t, dir)
	if rs.Graphs != 0 || rs.Jobs != 0 {
		t.Fatalf("fresh data dir recovered %+v, want nothing", rs)
	}
	ts := httptest.NewServer(srv)
	base := ts.URL

	lg := persistHostLG(t)
	resp := post(t, base+"/graphs", "text/plain", lg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()

	snap, code := submitJob(t, base, sg.ID, persistOpts)
	if code != http.StatusAccepted || snap.Cached {
		t.Fatalf("first submit: code %d snap %+v, want uncached 202", code, snap)
	}
	fin := pollTerminal(t, base, snap.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job finished %q: %+v", fin.Status, fin)
	}
	res1 := fetchResult(t, base, snap.ID, http.StatusOK)
	if len(res1.Patterns) == 0 {
		t.Fatal("run produced no patterns; the durability assertions need some")
	}
	pats1, _ := json.Marshal(res1.Patterns)

	srv.Shutdown(context.Background())
	ts.Close()
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	// --- second life: same dir, everything recovered ---
	srv2, rs2, backend2 := openDiskServer(t, dir)
	defer backend2.Close()
	if rs2.Graphs != 1 || rs2.Jobs < 1 {
		t.Fatalf("recovered %+v, want 1 graph and >=1 job record", rs2)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	base = ts2.URL

	// The graph is listed under the same content fingerprint, with its
	// advisory name, and is mineable (GET by id works).
	resp = get(t, base+"/graphs")
	graphs := decodeJSON[[]StoredGraph](t, resp.Body)
	resp.Body.Close()
	if len(graphs) != 1 || graphs[0].ID != sg.ID || graphs[0].Name != "persist-host" {
		t.Fatalf("recovered graph listing %+v, want [%s persist-host]", graphs, sg.ID)
	}

	// /jobs still shows the pre-restart job as a terminal record.
	resp = get(t, base+"/jobs")
	jobs := decodeJSON[[]JobSnapshot](t, resp.Body)
	resp.Body.Close()
	found := false
	for _, j := range jobs {
		if j.ID == snap.ID {
			found = true
			if j.Status != StatusDone || j.Graph != sg.ID {
				t.Fatalf("recovered job record %+v", j)
			}
		}
	}
	if !found {
		t.Fatalf("/jobs after restart %+v does not include %s", jobs, snap.ID)
	}

	// GET /jobs/{id} serves the history snapshot; its result re-serves
	// byte-identical patterns out of the persistent cache.
	resp = get(t, base+"/jobs/"+snap.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET recovered job status %d", resp.StatusCode)
	}
	resp.Body.Close()
	res2 := fetchResult(t, base, snap.ID, http.StatusOK)
	if res2.Status != StatusDone || !res2.Cached {
		t.Fatalf("recovered result %+v, want cached done", res2)
	}
	pats2, _ := json.Marshal(res2.Patterns)
	if !bytes.Equal(pats1, pats2) {
		t.Error("recovered result patterns differ from the original run")
	}

	// The events stream for a recovered job replays its terminal status
	// record (the stream contract holds across restarts).
	resp = get(t, base+"/jobs/"+snap.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered events status %d", resp.StatusCode)
	}
	var final map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final["status"] != string(StatusDone) {
		t.Fatalf("recovered events terminal record %v", final)
	}

	// Cancelling a recovered (terminal) job is an accepted no-op.
	resp = del(t, base+"/jobs/"+snap.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE recovered job status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// An identical resubmission is a cache hit — no re-mine — under a
	// fresh job ID that does not collide with recovered history.
	snap2, code2 := submitJob(t, base, sg.ID, persistOpts)
	if code2 != http.StatusOK || !snap2.Cached {
		t.Fatalf("resubmit after restart: code %d snap %+v, want cached 200", code2, snap2)
	}
	if snap2.ID == snap.ID {
		t.Fatalf("restarted daemon reused job ID %s", snap.ID)
	}
	res3 := fetchResult(t, base, snap2.ID, http.StatusOK)
	pats3, _ := json.Marshal(res3.Patterns)
	if !bytes.Equal(pats1, pats3) {
		t.Error("post-restart cache hit returned different patterns")
	}
}

// TestRestartIDSequenceAndGone covers the uncached leftovers: a job
// whose result was never persisted (here: failed) survives as a history
// record whose /result is 410 Gone with a resubmit hint — never a 404
// that would suggest the job ID is wrong.
func TestRestartIDSequenceAndGone(t *testing.T) {
	dir := t.TempDir()
	srv, _, backend := openDiskServer(t, dir)
	ts := httptest.NewServer(srv)

	setTestMiner(t, func(ctx context.Context, host mine.Host, opts mine.Options) (*mine.Result, error) {
		return nil, fmt.Errorf("boom: miner exploded")
	})
	resp := post(t, ts.URL+"/graphs", "text/plain", tinyHostLG(t))
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()
	resp = post(t, ts.URL+"/jobs", "application/json",
		[]byte(fmt.Sprintf(`{"graph":%q,"miner":"testminer"}`, sg.ID)))
	snap := decodeJSON[JobSnapshot](t, resp.Body)
	resp.Body.Close()
	fin := pollTerminal(t, ts.URL, snap.ID)
	if fin.Status != StatusFailed {
		t.Fatalf("job status %q, want failed", fin.Status)
	}

	srv.Shutdown(context.Background())
	ts.Close()
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, rs2, backend2 := openDiskServer(t, dir)
	defer backend2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	if rs2.Jobs != 1 {
		t.Fatalf("recovered %d job records, want 1", rs2.Jobs)
	}

	// The failed job's record survived, error included.
	resp = get(t, ts2.URL+"/jobs/"+snap.ID)
	rec := decodeJSON[JobSnapshot](t, resp.Body)
	resp.Body.Close()
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "boom") {
		t.Fatalf("recovered failed-job record %+v", rec)
	}

	// Its result was never cacheable, so it is gone — 410, not 404.
	resp = get(t, ts2.URL+"/jobs/"+snap.ID+"/result")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || !strings.Contains(string(raw), "resubmit") {
		t.Fatalf("recovered failed-job result: %d %s, want 410 + resubmit hint", resp.StatusCode, raw)
	}
}

// TestChaosDiskFaults drives the store/disk/* failpoints through the
// HTTP surface: injected storage I/O faults must surface as 503
// backpressure (upload) or silent cache degradation (reads) — never as
// a 404, a registered-but-unreadable graph, or a dead daemon.
func TestChaosDiskFaults(t *testing.T) {
	defer fault.DisarmAll()
	srv, _, backend := openDiskServer(t, t.TempDir())
	defer backend.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	base := ts.URL

	lg := persistHostLG(t)

	// Put fault: the upload parses, the durable write fails → 503 with
	// Retry-After, and nothing is registered.
	if err := fault.Arm("store/disk/put", fault.Spec{Kind: fault.KindError, Msg: "injected put failure"}); err != nil {
		t.Fatal(err)
	}
	resp := post(t, base+"/graphs", "text/plain", lg)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload under put fault: %d %s, want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 upload without Retry-After")
	}
	if srv.Store().Len() != 0 {
		t.Error("failed upload registered a graph")
	}
	// The daemon is alive and still claims liveness.
	resp = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under put fault: %d", resp.StatusCode)
	}
	resp.Body.Close()
	fault.DisarmAll()

	// Sync fault: same contract through the fsync path.
	if err := fault.Arm("store/disk/sync", fault.Spec{Kind: fault.KindError, Msg: "injected sync failure"}); err != nil {
		t.Fatal(err)
	}
	resp = post(t, base+"/graphs", "text/plain", lg)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload under sync fault: %d, want 503", resp.StatusCode)
	}
	fault.DisarmAll()

	// Disarmed, the same bytes go through.
	resp = post(t, base+"/graphs", "text/plain", lg)
	sg := decodeJSON[StoredGraph](t, resp.Body)
	resp.Body.Close()
	if sg.ID == "" {
		t.Fatal("upload after disarm failed")
	}

	// Get fault: the persistent cache tier degrades to a miss, so a
	// submission still completes by mining — slower, never wrong, and
	// the degradation is counted apart from misses.
	if err := fault.Arm("store/disk/get", fault.Spec{Kind: fault.KindError, Msg: "injected get failure"}); err != nil {
		t.Fatal(err)
	}
	snap, code := submitJob(t, base, sg.ID, persistOpts)
	if code != http.StatusAccepted {
		t.Fatalf("submit under get fault: code %d", code)
	}
	fin := pollTerminal(t, base, snap.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job under get fault finished %q", fin.Status)
	}
	fault.DisarmAll()

	resp = get(t, base+"/stats")
	stats := decodeJSON[map[string]json.RawMessage](t, resp.Body)
	resp.Body.Close()
	var cs CacheStats
	if err := json.Unmarshal(stats["cache"], &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Degraded < 1 {
		t.Errorf("cache stats %+v, want >=1 degraded lookup under get fault", cs)
	}
}

// TestPersistMetricsSchema pins the storage-engine metric families:
// present (and moving) on a disk-backed daemon, present at zero on a
// memory-backed one — the schema must not depend on -data-dir.
func TestPersistMetricsSchema(t *testing.T) {
	families := []string{
		"# TYPE spiderserved_store_disk_bytes_written_total counter",
		"# TYPE spiderserved_store_disk_bytes_read_total counter",
		"# TYPE spiderserved_store_disk_fsyncs_total counter",
		"# TYPE spiderserved_store_disk_recovery_truncations_total counter",
		"# TYPE spiderserved_cache_backend_hits_total counter",
		"# TYPE spiderserved_cache_persist_drops_total counter",
		"# TYPE spiderserved_sched_journal_errors_total counter",
	}

	scrape := func(t *testing.T, base string) string {
		t.Helper()
		resp := get(t, base+"/metrics")
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	t.Run("disk", func(t *testing.T) {
		srv, _, backend := openDiskServer(t, t.TempDir())
		defer backend.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer srv.Shutdown(context.Background())

		post(t, ts.URL+"/graphs", "text/plain", persistHostLG(t)).Body.Close()
		expo := scrape(t, ts.URL)
		for _, want := range families {
			if !strings.Contains(expo, want) {
				t.Errorf("disk exposition missing %q", want)
			}
		}
		// The upload moved the write-path counters.
		if strings.Contains(expo, "spiderserved_store_disk_bytes_written_total 0\n") {
			t.Error("bytes_written still zero after an upload")
		}
		if strings.Contains(expo, "spiderserved_store_disk_fsyncs_total 0\n") {
			t.Error("fsyncs still zero after an upload")
		}
	})

	t.Run("memory", func(t *testing.T) {
		srv := New(Config{Runners: 1, QueueCap: 2, CacheCap: 2})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		expo := scrape(t, ts.URL)
		for _, want := range families {
			if !strings.Contains(expo, want) {
				t.Errorf("memory exposition missing %q", want)
			}
		}
	})
}

// TestRecoverRejectsTamperedGraph: recovery re-verifies every graph's
// content fingerprint against its blob key and refuses to serve a
// mismatch — corruption below the CRC layer (or a codec drift) must
// fail loudly, not alias one graph as another.
func TestRecoverRejectsTamperedGraph(t *testing.T) {
	backend := store.NewMemory()
	st := NewStoreWith(backend)
	g := mine.FromEdges([]mine.Label{1, 2, 1}, []mine.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	sg, _, err := st.Add(g, "victim")
	if err != nil {
		t.Fatal(err)
	}
	// Re-key the blob under a different (wrong) fingerprint.
	blob, err := backend.Get("graphs", sg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Delete("graphs", sg.ID); err != nil {
		t.Fatal(err)
	}
	if err := backend.Put("graphs", "0123456789abcdef0123456789abcdef", blob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewStoreWith(backend).Recover(); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("Recover accepted a tampered blob (err %v)", err)
	}
}
