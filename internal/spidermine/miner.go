package spidermine

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/spider"
	"repro/internal/support"
)

// Config parameterizes SpiderMine. Zero values get sensible defaults from
// (*Config).withDefaults.
type Config struct {
	// MinSupport is the support threshold σ (embeddings in the single-graph
	// setting; containing graphs in the transaction setting).
	MinSupport int
	// K is the number of patterns to return.
	K int
	// Epsilon is the error bound ε: the result contains the true top-K
	// with probability >= 1−ε.
	Epsilon float64
	// Dmax bounds the diameter of returned patterns.
	Dmax int
	// Radius is the spider radius r (default 1).
	Radius int
	// Vmin is the user's lower bound on the vertex count of a "large"
	// pattern, used only to compute M (default |V(G)|/10, the paper's
	// example setting).
	Vmin int
	// Measure is the support measure used in every σ-comparison. The
	// default CountAll counts distinct embedding subgraphs, matching
	// Definition 2's Psup = E[P] (and Algorithm 3 line 16); HarmfulOverlap
	// is the Fiedler–Borgelt measure the paper adopts for graphs with few
	// labels where raw embeddings overlap heavily (e.g. the DBLP data).
	Measure support.Measure
	// PerHostCap caps embeddings enumerated per spider host head.
	PerHostCap int
	// MaxLeavesPerStar caps star spider size in Stage I (0 = unlimited).
	MaxLeavesPerStar int
	// Seed seeds all randomness; runs are deterministic per seed.
	Seed int64
	// MaxGrowIters caps Stage III iterations (safety valve; default 64).
	MaxGrowIters int
	// Restarts reruns the randomized Stages II–III this many times and
	// unions the results (§4.2.1 notes spider mining is a one-time cost
	// that multiple randomized runs can amortize). Default 1.
	Restarts int
	// MOverride, if > 0, forces the seed draw size instead of Lemma 2's M.
	MOverride int
	// DisableSpiderSetPruning turns off the spider-set signature filter
	// (ablation; every identity check falls through to the exact check).
	DisableSpiderSetPruning bool
	// DisablePartialDedupe turns off the exact structural dedupe when
	// assembling a cancelled run's partial result. The dedupe is on by
	// default: the automorphism-pruned Canonizer codes even unpruned hub
	// patterns ("monsters" with hundreds of interchangeable legs) in
	// microseconds, so a cancelled caller gets duplicate-free partials
	// without the historical exponential-blowup risk. The gate remains as
	// an escape hatch and for A/B measurement.
	DisablePartialDedupe bool
	// KeepUnmerged disables Stage II pruning (ablation: all grown seeds
	// survive to Stage III).
	KeepUnmerged bool
	// MaxSpiders caps Stage I enumeration (0 = unlimited).
	MaxSpiders int
	// MergePairCap bounds overlapping-embedding pairs examined per pattern
	// pair each iteration (default 4096).
	MergePairCap int
	// MaxEmbPerPattern caps the embedding list carried per pattern
	// (default 1024). On dense low-label graphs raw embedding lists grow
	// combinatorially; trimming makes counted support a lower bound, which
	// can only lose patterns, never admit false ones.
	MaxEmbPerPattern int
	// Workers sets mining parallelism across all three stages: 0/1
	// sequential, > 1 that many goroutines, < 0 GOMAXPROCS. Stage I
	// partitions spider heads across workers, Stage II parallelizes seed
	// materialization and merge-pair evaluation, Stage III shards pattern
	// growth; every stage reduces its per-worker results in a fixed item
	// order, so the Result is bit-identical for any setting (see
	// TestParallelEqualsSequential). Only Stats counters that track work
	// performed (IsoRun) may differ, because parallel merge rounds evaluate
	// candidate pairs speculatively.
	Workers int
	// OnProgress, when non-nil, receives streaming stage events: Stage I
	// completion, each restart's seed draw, and every grow+merge /
	// recovery iteration. Events are delivered synchronously on the
	// coordinating goroutine between parallel sections — never
	// concurrently — so a callback may cancel the run's context and the
	// cancellation is observed at the very next iteration boundary, which
	// makes the resulting partial Result deterministic (the committed
	// state the callback just saw). Events never influence mining state.
	OnProgress func(StageEvent)
}

// Stage names reported in StageEvent.Stage.
const (
	StageSpiders  = "spiders"  // Stage I: frequent r-spider mining done
	StageSeeds    = "seeds"    // Stage II: seed draw + materialization done
	StageGrowth   = "growth"   // Stage II: one grow+merge iteration done
	StageRecovery = "recovery" // Stage III: one maximality iteration done
	StageDone     = "done"     // final top-K selected
)

// StageEvent is one streaming progress report from a mining run; see
// Config.OnProgress for the delivery contract.
type StageEvent struct {
	Stage     string        // one of the Stage* constants
	Restart   int           // randomized restart index (Stages II/III events)
	Iteration int           // 1-based iteration within the stage
	Spiders   int           // |S_all| (StageSpiders only)
	Patterns  int           // current working-set / result size
	Merges    int           // cumulative successful merges
	Elapsed   time.Duration // wall-clock since RunContext started
}

func (c Config) withDefaults(g *graph.Graph) Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.1
	}
	if c.Dmax <= 0 {
		c.Dmax = 4
	}
	if c.Radius <= 0 {
		c.Radius = 1
	}
	if c.Vmin <= 0 {
		c.Vmin = g.N() / 10
		if c.Vmin < 1 {
			c.Vmin = 1
		}
	}
	if c.PerHostCap <= 0 {
		c.PerHostCap = spider.DefaultPerHostCap
	}
	if c.MaxGrowIters <= 0 {
		c.MaxGrowIters = 64
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	if c.MergePairCap <= 0 {
		c.MergePairCap = 4096
	}
	if c.MaxEmbPerPattern <= 0 {
		c.MaxEmbPerPattern = 1024
	}
	return c
}

// Stats reports per-run counters.
type Stats struct {
	NumSpiders     int           // |S_all| mined in Stage I
	M              int           // seed draw size (Lemma 2)
	GrowIterations int           // total SpiderGrow iterations
	Merges         int           // successful CheckMerge events
	IsoSkipped     int64         // isomorphism tests skipped by spider-set pruning
	IsoRun         int64         // exact isomorphism tests executed (work counter; may grow with Workers > 1 — parallel merge rounds evaluate pairs speculatively)
	CanonRun       int64         // canonical-code computations by the miner's Canonizer (spider-set signatures + exact identity checks)
	CanonNodes     int64         // individualization–refinement search nodes across those runs; CanonNodes/CanonRun quantifies the orbit/trace pruning
	StageI         time.Duration // spider mining time
	StageII        time.Duration // growth + merge time
	StageIII       time.Duration // recovery time
}

func (s Stats) String() string {
	return fmt.Sprintf("stats{spiders=%d M=%d iters=%d merges=%d isoSkip=%d isoRun=%d canonRun=%d canonNodes=%d tI=%v tII=%v tIII=%v}",
		s.NumSpiders, s.M, s.GrowIterations, s.Merges, s.IsoSkipped, s.IsoRun, s.CanonRun, s.CanonNodes, s.StageI, s.StageII, s.StageIII)
}

// Result is the output of a mining run.
type Result struct {
	// Patterns holds up to K patterns sorted by size (edge count)
	// descending, structurally distinct, each with |E[P]| >= σ and
	// diam <= Dmax.
	Patterns []*pattern.Pattern
	Stats    Stats
}

// Miner carries the mining state for one host graph.
type Miner struct {
	g      *graph.Graph
	cfg    Config
	rng    *rand.Rand
	stats  Stats
	nextID int
	// cz is the miner-owned Canonizer every coordinator-side pattern
	// identity check routes through (spider-set signatures and exact
	// canonical-code comparisons); its counters feed Stats.CanonRun /
	// CanonNodes. Identity checks run sequentially on the coordinator, so
	// one scratch instance serves the whole run.
	cz *canon.Canonizer
	// ctx/done carry the run's cancellation signal; set by RunContext.
	// done is nil for an uncancellable context, which gates every
	// cancellation check and snapshot off the hot path — a Background run
	// executes exactly the pre-context code.
	ctx   context.Context
	done  <-chan struct{}
	start time.Time
	// supFn maps a pattern graph and embedding list to its σ-comparable
	// support. The single-graph setting applies cfg.Measure; the
	// transaction adapter counts distinct transaction graphs.
	supFn func(*graph.Graph, []pattern.Embedding) int
	// freqPairs is the flat, sorted (head label, leaf label) index of
	// frequent spider edges — the unit of growth. extendAt resolves the
	// head's contiguous run once per boundary vertex, then binary-searches
	// leaves within it. Rebuilt from the Stage I stars each run into the
	// same backing array.
	freqPairs []labelPair
	// sm is the reusable Stage I engine; its output is scratch rebuilt into
	// catalog each run (see spider.StarMiner's ownership contract).
	sm      spider.StarMiner
	catalog spider.Catalog
	// sd owns the Stage II seed-draw scratch (permutation buffer,
	// per-worker Materializers).
	sd spider.Seeder
	// trees holds the r-spider seed population when cfg.Radius >= 2.
	trees []*spider.MinedTree
	// mergeUsage is checkMerges' per-host-vertex overlap index, reused
	// across rounds (truncated, never reallocated). Overlap detection runs
	// sequentially; only pair evaluation is sharded.
	mergeUsage [][]usageSlot
	// Pooled checkMerges round state: candidate (pair, embedding-pair)
	// entries, their dedupe set and per-pair cap counters, the touched
	// host-vertex list, and the group table handed to the evaluators.
	mergeCands []mergeCand
	candSeen   map[mergeCand]struct{}
	pairCount  map[pairKey]int
	touched    []graph.V
	pairGroups []pairGroup
	consumed   par.Slots[bool]
	// Per-worker scratch arenas: worker i owns slot i for the duration of
	// one parallel pass (the par.Do ownership contract). Allocated
	// per-worker-once, reused across iterations, runs, and restarts.
	growWS    par.Workspace[growScratch]
	mergeWS   par.Workspace[mergeScratch]
	matcherWS par.Workspace[canon.Matcher]
	anyFlag   par.Slots[bool]
	isoRuns   par.Slots[int64]
	results   par.Slots[*pattern.Pattern]
	batch     []pairGroup
}

// labelPair is one frequent (head, leaf) spider-edge entry of the flat
// frequent-pair index, ordered by (h, l).
type labelPair struct{ h, l graph.Label }

func cmpLabelPair(a, b labelPair) int {
	if a.h != b.h {
		return int(a.h) - int(b.h)
	}
	return int(a.l) - int(b.l)
}

// freqLeavesOf returns the contiguous run of frequent-pair entries whose
// head is h (possibly empty). Callers binary-search leaves within it.
func (m *Miner) freqLeavesOf(h graph.Label) []labelPair {
	lo, _ := slices.BinarySearchFunc(m.freqPairs, labelPair{h: h, l: graph.Label(minInt32)}, cmpLabelPair)
	hi := lo
	for hi < len(m.freqPairs) && m.freqPairs[hi].h == h {
		hi++
	}
	return m.freqPairs[lo:hi]
}

// hasLeaf reports whether leaf label l occurs in a head's run.
func hasLeaf(run []labelPair, l graph.Label) bool {
	_, ok := slices.BinarySearchFunc(run, labelPair{l: l}, func(a, b labelPair) int { return int(a.l) - int(b.l) })
	return ok
}

const minInt32 = -1 << 31

// New prepares a Miner for the host graph.
func New(g *graph.Graph, cfg Config) *Miner {
	m := &Miner{}
	m.Reset(g, cfg)
	return m
}

// Reset re-targets the Miner at a host graph and configuration, zeroing
// all per-run state (stats, ID counter, rng, canonizer counters) while
// keeping every scratch arena — the Stage I tables, per-worker grow/merge
// scratch, seed-draw buffers — so repeated runs allocate per-structure
// once, not per run. A Reset Miner produces byte-identical results to a
// freshly New'd one (see TestMinerResetReuse).
func (m *Miner) Reset(g *graph.Graph, cfg Config) {
	cfg = cfg.withDefaults(g)
	m.g = g
	m.cfg = cfg
	m.rng = rand.New(rand.NewSource(cfg.Seed))
	m.stats = Stats{}
	m.nextID = 0
	m.trees = nil
	if m.cz == nil {
		m.cz = canon.NewCanonizer()
	} else {
		m.cz.Runs, m.cz.Nodes = 0, 0
	}
	if cfg.Measure == support.CountAll {
		m.supFn = func(_ *graph.Graph, embs []pattern.Embedding) int { return len(embs) }
	} else {
		m.supFn = func(pg *graph.Graph, embs []pattern.Embedding) int {
			return support.Of(pg, embs, cfg.Measure)
		}
	}
	// Host-graph-sized tables shrink lazily: a larger host reallocates, a
	// smaller one just truncates (checkMerges sizes mergeUsage itself).
}

// Mine runs the full three-stage algorithm and returns the top-K result.
func Mine(g *graph.Graph, cfg Config) *Result {
	return New(g, cfg).Run()
}

// MineContext is Mine with cooperative cancellation; see RunContext for
// the partial-result contract.
func MineContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	return New(g, cfg).RunContext(ctx)
}

// Run executes Algorithm 1 without cancellation.
func (m *Miner) Run() *Result {
	res, _ := m.RunContext(context.Background())
	return res
}

// cancelled reports the run's context error once the context has fired.
// It is a no-op (nil done channel, no select) for uncancellable runs.
func (m *Miner) cancelled() error {
	if m.done == nil {
		return nil
	}
	select {
	case <-m.done:
		return m.ctx.Err()
	default:
		return nil
	}
}

// progress delivers one stage event to the configured callback.
func (m *Miner) progress(ev StageEvent) {
	if m.cfg.OnProgress == nil {
		return
	}
	ev.Elapsed = time.Since(m.start)
	m.cfg.OnProgress(ev)
}

// RunContext executes Algorithm 1 under ctx.
//
// An uncancelled run returns a Result byte-identical to Run()'s — the
// cancellation plumbing is gated off the hot path entirely when
// ctx.Done() is nil and adds only amortized boundary checks otherwise.
// When ctx fires, RunContext returns ctx.Err() together with a partial
// Result holding the top-K selection over the patterns of the last
// *committed* iteration: every grow+merge and recovery iteration commits
// its reduced working set before the next cancellation check, and an
// iteration aborted mid-flight is rolled back wholesale. Cancellation
// observed at a given iteration boundary therefore yields a deterministic
// partial result (the fingerprint contract TestCancelDeterministic
// enforces); which boundary a wall-clock cancel lands on is, of course,
// timing-dependent.
func (m *Miner) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.ctx = ctx
	m.done = ctx.Done()
	m.start = time.Now()

	// Stage I: mine all r-spiders. Stars always back the growth procedure
	// (growth proceeds in radius-1 steps); with Radius >= 2, tree spiders
	// are additionally mined as the seed population — at exponentially
	// higher Stage I cost, as Appendix C(3) documents.
	t0 := time.Now()
	stars, starErr := m.sm.Mine(ctx, m.g, spider.Options{
		MinSupport: m.cfg.MinSupport,
		MaxLeaves:  m.cfg.MaxLeavesPerStar,
		Radius:     1,
		MaxSpiders: m.cfg.MaxSpiders,
		Workers:    m.cfg.Workers,
	})
	if starErr != nil {
		m.stats.StageI = time.Since(t0)
		return &Result{Stats: m.stats}, starErr
	}
	m.catalog.Rebuild(stars)
	// Flat frequent-pair index from the single-leaf stars; sorted so lookup
	// order is independent of the star list's order.
	m.freqPairs = m.freqPairs[:0]
	for _, ms := range stars {
		if len(ms.Star.Leaves) == 1 {
			m.freqPairs = append(m.freqPairs, labelPair{h: ms.Star.Head, l: ms.Star.Leaves[0]})
		}
	}
	slices.SortFunc(m.freqPairs, cmpLabelPair)
	m.stats.NumSpiders = len(stars)
	if m.cfg.Radius >= 2 {
		maxSpiders := m.cfg.MaxSpiders
		if maxSpiders <= 0 {
			maxSpiders = 1 << 20
		}
		var treeErr error
		m.trees, treeErr = spider.MineTreesContext(ctx, m.g, spider.TreeOptions{
			MinSupport: m.cfg.MinSupport,
			Radius:     m.cfg.Radius,
			MaxFanout:  4,
			MaxSpiders: maxSpiders,
		})
		m.stats.NumSpiders = len(m.trees)
		if treeErr != nil {
			m.stats.StageI = time.Since(t0)
			return &Result{Stats: m.stats}, treeErr
		}
	}
	m.stats.StageI = time.Since(t0)
	m.progress(StageEvent{Stage: StageSpiders, Spiders: m.stats.NumSpiders})

	// M from Lemma 2 (or override).
	M := m.cfg.MOverride
	if M <= 0 {
		M = spider.ComputeM(m.g.N(), m.cfg.Vmin, m.cfg.K, m.cfg.Epsilon)
	}
	m.stats.M = M

	var finals []*pattern.Pattern
	for restart := 0; restart < m.cfg.Restarts; restart++ {
		ps, err := m.runOnce(restart, M)
		finals = append(finals, ps...)
		if err != nil {
			return &Result{Patterns: m.selectPartial(finals), Stats: m.stats}, err
		}
	}
	top := m.selectTopK(finals)
	m.progress(StageEvent{Stage: StageDone, Patterns: len(top), Merges: m.stats.Merges})
	return &Result{Patterns: top, Stats: m.stats}, nil
}

// runOnce performs Stages II and III for one random restart. On
// cancellation it returns the patterns of the last committed iteration
// (see RunContext) together with the context error.
func (m *Miner) runOnce(restart, M int) ([]*pattern.Pattern, error) {
	// Stage II: random seeds, ⌈Dmax/2r⌉ growth+merge iterations.
	t1 := time.Now()
	seeds, err := m.seedPatterns(M, m.trees, m.rng)
	if err != nil {
		m.stats.StageII += time.Since(t1)
		return nil, err
	}
	working := make([]*grown, 0, len(seeds))
	for _, p := range seeds {
		p.ID = m.newID()
		p.DedupeEmbeddings()
		if m.supFn(p.G, p.Emb) < m.cfg.MinSupport {
			continue
		}
		working = append(working, &grown{p: p, radius: m.cfg.Radius})
	}
	m.progress(StageEvent{Stage: StageSeeds, Restart: restart, Patterns: len(working)})
	iters := (m.cfg.Dmax + 2*m.cfg.Radius - 1) / (2 * m.cfg.Radius) // ⌈Dmax/2r⌉
	committed := m.commit(working)
	for i := 0; i < iters; i++ {
		if err := m.cancelled(); err != nil {
			m.stats.StageII += time.Since(t1)
			return patternsOf(committed), err
		}
		if _, err := m.growAll(working); err != nil {
			m.stats.StageII += time.Since(t1)
			return patternsOf(committed), err
		}
		working, err = m.checkMerges(working)
		if err != nil {
			m.stats.StageII += time.Since(t1)
			return patternsOf(committed), err
		}
		m.stats.GrowIterations++
		committed = m.commit(working)
		m.progress(StageEvent{Stage: StageGrowth, Restart: restart, Iteration: i + 1, Patterns: len(working), Merges: m.stats.Merges})
	}
	// Prune unmerged patterns (Algorithm 1 line 10).
	var survivors []*grown
	for _, w := range working {
		if w.p.Merged || m.cfg.KeepUnmerged {
			survivors = append(survivors, w)
		}
	}
	if len(survivors) == 0 {
		// No merges happened (e.g. very sparse embedding overlap). Rather
		// than return nothing, fall back to the largest grown seeds — a
		// practical safeguard the paper does not need on its datasets.
		survivors = fallbackLargest(working, m.cfg.K)
	}
	m.stats.StageII += time.Since(t1)

	// Stage III: grow to maximality.
	t2 := time.Now()
	committed = m.commit(survivors)
	for iter := 0; iter < m.cfg.MaxGrowIters; iter++ {
		if err := m.cancelled(); err != nil {
			m.stats.StageIII += time.Since(t2)
			return patternsOf(committed), err
		}
		any, err := m.growAll(survivors)
		if err != nil {
			m.stats.StageIII += time.Since(t2)
			return patternsOf(committed), err
		}
		survivors, err = m.checkMerges(survivors)
		if err != nil {
			m.stats.StageIII += time.Since(t2)
			return patternsOf(committed), err
		}
		m.stats.GrowIterations++
		committed = m.commit(survivors)
		m.progress(StageEvent{Stage: StageRecovery, Restart: restart, Iteration: iter + 1, Patterns: len(survivors), Merges: m.stats.Merges})
		if !any {
			break
		}
	}
	m.stats.StageIII += time.Since(t2)

	out := make([]*pattern.Pattern, 0, len(survivors))
	for _, w := range survivors {
		out = append(out, w.p)
	}
	return out, nil
}

// commit snapshots the working set at an iteration boundary so a later
// aborted iteration can be rolled back wholesale: growPattern and
// tryMerge replace a pattern's graph and embedding list with freshly
// built values (they never mutate the old ones in place), so a shallow
// copy of each Pattern struct pins the committed state. For uncancellable
// runs (nil done channel) commit does nothing and returns nil.
func (m *Miner) commit(ws []*grown) []*grown {
	if m.done == nil {
		return nil
	}
	out := make([]*grown, len(ws))
	for i, w := range ws {
		p := *w.p
		out[i] = &grown{p: &p, radius: w.radius, done: w.done}
	}
	return out
}

// patternsOf unwraps a working set into its patterns.
func patternsOf(ws []*grown) []*pattern.Pattern {
	out := make([]*pattern.Pattern, 0, len(ws))
	for _, w := range ws {
		out = append(out, w.p)
	}
	return out
}

// grown pairs a pattern with its current growth radius from its origin.
type grown struct {
	p      *pattern.Pattern
	radius int
	done   bool // no further frequent extension exists
}

func (m *Miner) newID() int {
	m.nextID++
	return m.nextID
}

func fallbackLargest(ws []*grown, k int) []*grown {
	sorted := append([]*grown(nil), ws...)
	slices.SortFunc(sorted, func(a, b *grown) int { return b.p.Size() - a.p.Size() })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// selectTopK dedupes structurally equal patterns, filters σ and Dmax, and
// returns the K largest by edge count (ties: more vertices, then higher
// support, then stable by ID).
func (m *Miner) selectTopK(ps []*pattern.Pattern) []*pattern.Pattern {
	return m.selectPatterns(ps, true)
}

// selectPartial assembles a cancelled run's result: selectTopK's σ and
// Dmax filters, size ordering and — unless cfg.DisablePartialDedupe —
// the same exact structural dedupe. Historically the dedupe had to be
// skipped here (the pre-v2 CanonicalCode search went factorial on the
// unpruned hub patterns a cancelled run can hold, hanging the post-cancel
// path for minutes); the automorphism-pruned Canonizer codes those
// monsters in microseconds, so cancelled callers now get duplicate-free
// partials by default. Either way the result is deterministic for a
// fixed cancellation boundary (TestCancelDeterministic).
func (m *Miner) selectPartial(ps []*pattern.Pattern) []*pattern.Pattern {
	return m.selectPatterns(ps, !m.cfg.DisablePartialDedupe)
}

func (m *Miner) selectPatterns(ps []*pattern.Pattern, dedupe bool) []*pattern.Pattern {
	var kept []*pattern.Pattern
	for _, p := range ps {
		if m.supFn(p.G, p.Emb) < m.cfg.MinSupport {
			continue
		}
		if p.G.Diameter() > m.cfg.Dmax {
			continue
		}
		if dedupe {
			dup := false
			for _, q := range kept {
				if m.sameStructure(p, q) {
					dup = true
					// Keep the one with more embeddings.
					if len(p.Emb) > len(q.Emb) {
						*q = *p
					}
					break
				}
			}
			if dup {
				continue
			}
		}
		kept = append(kept, p)
	}
	sortBySize(kept)
	if len(kept) > m.cfg.K {
		kept = kept[:m.cfg.K]
	}
	return kept
}

// sortBySize orders patterns the way results are reported: edge count
// descending, then vertices, then embeddings, then stable by ID.
func sortBySize(ps []*pattern.Pattern) {
	slices.SortFunc(ps, func(a, b *pattern.Pattern) int {
		if a.Size() != b.Size() {
			return b.Size() - a.Size()
		}
		if a.NV() != b.NV() {
			return b.NV() - a.NV()
		}
		if len(a.Emb) != len(b.Emb) {
			return len(b.Emb) - len(a.Emb)
		}
		return a.ID - b.ID
	})
}

// sameStructure decides pattern identity the way §4.2.2 prescribes: the
// spider-set signature is the cheap necessary condition (Theorem 2), and
// only signature-equal pairs pay for an exact check — a comparison of
// per-pattern cached canonical codes, so each pattern canonicalizes at
// most once however many pairs it appears in. With the pruning disabled
// (ablation), every size-compatible pair goes straight to the exact
// check, so Stats.IsoRun exposes the pruning's value. All
// canonicalization routes through the miner's Canonizer, whose counters
// land in Stats.CanonRun / CanonNodes.
func (m *Miner) sameStructure(a, b *pattern.Pattern) bool {
	same := false
	switch {
	case a.G.N() != b.G.N() || a.G.M() != b.G.M():
	case !m.cfg.DisableSpiderSetPruning &&
		a.SpiderSetSignatureWith(m.cz, m.cfg.Radius) != b.SpiderSetSignatureWith(m.cz, m.cfg.Radius):
		m.stats.IsoSkipped++
	default:
		m.stats.IsoRun++
		same = a.CanonicalCodeWith(m.cz) == b.CanonicalCodeWith(m.cz)
	}
	m.stats.CanonRun = m.cz.Runs
	m.stats.CanonNodes = m.cz.Nodes
	return same
}
