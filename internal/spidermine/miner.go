// Package spidermine implements the SpiderMine algorithm (Algorithm 1 of
// the paper): probabilistic mining of the top-K largest frequent patterns
// of a single massive network, with diameter bound Dmax and success
// probability 1−ε.
//
// The three stages:
//
//	Stage I   — mine all frequent r-spiders (internal/spider).
//	Stage II  — draw M random seed spiders (M from Lemma 2), grow each by
//	            SpiderGrow for ⌈Dmax/2r⌉ iterations, merging patterns whose
//	            embeddings start to overlap; prune everything unmerged.
//	Stage III — grow survivors to maximality; return the K largest.
package spidermine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/spider"
	"repro/internal/support"
)

// Config parameterizes SpiderMine. Zero values get sensible defaults from
// (*Config).withDefaults.
type Config struct {
	// MinSupport is the support threshold σ (embeddings in the single-graph
	// setting; containing graphs in the transaction setting).
	MinSupport int
	// K is the number of patterns to return.
	K int
	// Epsilon is the error bound ε: the result contains the true top-K
	// with probability >= 1−ε.
	Epsilon float64
	// Dmax bounds the diameter of returned patterns.
	Dmax int
	// Radius is the spider radius r (default 1).
	Radius int
	// Vmin is the user's lower bound on the vertex count of a "large"
	// pattern, used only to compute M (default |V(G)|/10, the paper's
	// example setting).
	Vmin int
	// Measure is the support measure used in every σ-comparison. The
	// default CountAll counts distinct embedding subgraphs, matching
	// Definition 2's Psup = E[P] (and Algorithm 3 line 16); HarmfulOverlap
	// is the Fiedler–Borgelt measure the paper adopts for graphs with few
	// labels where raw embeddings overlap heavily (e.g. the DBLP data).
	Measure support.Measure
	// PerHostCap caps embeddings enumerated per spider host head.
	PerHostCap int
	// MaxLeavesPerStar caps star spider size in Stage I (0 = unlimited).
	MaxLeavesPerStar int
	// Seed seeds all randomness; runs are deterministic per seed.
	Seed int64
	// MaxGrowIters caps Stage III iterations (safety valve; default 64).
	MaxGrowIters int
	// Restarts reruns the randomized Stages II–III this many times and
	// unions the results (§4.2.1 notes spider mining is a one-time cost
	// that multiple randomized runs can amortize). Default 1.
	Restarts int
	// MOverride, if > 0, forces the seed draw size instead of Lemma 2's M.
	MOverride int
	// DisableSpiderSetPruning turns off the spider-set signature filter
	// (ablation; every identity check falls through to isomorphism).
	DisableSpiderSetPruning bool
	// KeepUnmerged disables Stage II pruning (ablation: all grown seeds
	// survive to Stage III).
	KeepUnmerged bool
	// MaxSpiders caps Stage I enumeration (0 = unlimited).
	MaxSpiders int
	// MergePairCap bounds overlapping-embedding pairs examined per pattern
	// pair each iteration (default 4096).
	MergePairCap int
	// MaxEmbPerPattern caps the embedding list carried per pattern
	// (default 1024). On dense low-label graphs raw embedding lists grow
	// combinatorially; trimming makes counted support a lower bound, which
	// can only lose patterns, never admit false ones.
	MaxEmbPerPattern int
	// Workers sets mining parallelism across all three stages: 0/1
	// sequential, > 1 that many goroutines, < 0 GOMAXPROCS. Stage I
	// partitions spider heads across workers, Stage II parallelizes seed
	// materialization and merge-pair evaluation, Stage III shards pattern
	// growth; every stage reduces its per-worker results in a fixed item
	// order, so the Result is bit-identical for any setting (see
	// TestParallelEqualsSequential). Only Stats counters that track work
	// performed (IsoRun) may differ, because parallel merge rounds evaluate
	// candidate pairs speculatively.
	Workers int
}

func (c Config) withDefaults(g *graph.Graph) Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.1
	}
	if c.Dmax <= 0 {
		c.Dmax = 4
	}
	if c.Radius <= 0 {
		c.Radius = 1
	}
	if c.Vmin <= 0 {
		c.Vmin = g.N() / 10
		if c.Vmin < 1 {
			c.Vmin = 1
		}
	}
	if c.PerHostCap <= 0 {
		c.PerHostCap = spider.DefaultPerHostCap
	}
	if c.MaxGrowIters <= 0 {
		c.MaxGrowIters = 64
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	if c.MergePairCap <= 0 {
		c.MergePairCap = 4096
	}
	if c.MaxEmbPerPattern <= 0 {
		c.MaxEmbPerPattern = 1024
	}
	return c
}

// Stats reports per-run counters.
type Stats struct {
	NumSpiders     int           // |S_all| mined in Stage I
	M              int           // seed draw size (Lemma 2)
	GrowIterations int           // total SpiderGrow iterations
	Merges         int           // successful CheckMerge events
	IsoSkipped     int64         // isomorphism tests skipped by spider-set pruning
	IsoRun         int64         // exact isomorphism tests executed (work counter; may grow with Workers > 1 — parallel merge rounds evaluate pairs speculatively)
	StageI         time.Duration // spider mining time
	StageII        time.Duration // growth + merge time
	StageIII       time.Duration // recovery time
}

func (s Stats) String() string {
	return fmt.Sprintf("stats{spiders=%d M=%d iters=%d merges=%d isoSkip=%d isoRun=%d tI=%v tII=%v tIII=%v}",
		s.NumSpiders, s.M, s.GrowIterations, s.Merges, s.IsoSkipped, s.IsoRun, s.StageI, s.StageII, s.StageIII)
}

// Result is the output of a mining run.
type Result struct {
	// Patterns holds up to K patterns sorted by size (edge count)
	// descending, structurally distinct, each with |E[P]| >= σ and
	// diam <= Dmax.
	Patterns []*pattern.Pattern
	Stats    Stats
}

// Miner carries the mining state for one host graph.
type Miner struct {
	g      *graph.Graph
	cfg    Config
	rng    *rand.Rand
	stats  Stats
	nextID int
	// supFn maps a pattern graph and embedding list to its σ-comparable
	// support. The single-graph setting applies cfg.Measure; the
	// transaction adapter counts distinct transaction graphs.
	supFn func(*graph.Graph, []pattern.Embedding) int
	// freqPair reports whether (head label, leaf label) is a frequent
	// spider edge, the unit of growth.
	freqPair map[[2]graph.Label]bool
	catalog  *spider.Catalog
	// trees holds the r-spider seed population when cfg.Radius >= 2.
	trees []*spider.MinedTree
	// mergeUsage is checkMerges' per-host-vertex overlap index, reused
	// across rounds (truncated, never reallocated). Overlap detection runs
	// sequentially; only pair evaluation is sharded.
	mergeUsage [][]usageSlot
	// growScr holds one extension scratch per worker, sized by
	// ensureGrowScratch before each growth pass; worker i owns growScr[i]
	// for the duration of the pass.
	growScr []*growScratch
}

// New prepares a Miner for the host graph.
func New(g *graph.Graph, cfg Config) *Miner {
	cfg = cfg.withDefaults(g)
	m := &Miner{
		g:   g,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Measure == support.CountAll {
		m.supFn = func(_ *graph.Graph, embs []pattern.Embedding) int { return len(embs) }
	} else {
		m.supFn = func(pg *graph.Graph, embs []pattern.Embedding) int {
			return support.Of(pg, embs, cfg.Measure)
		}
	}
	return m
}

// Mine runs the full three-stage algorithm and returns the top-K result.
func Mine(g *graph.Graph, cfg Config) *Result {
	return New(g, cfg).Run()
}

// Run executes Algorithm 1.
func (m *Miner) Run() *Result {
	// Stage I: mine all r-spiders. Stars always back the growth procedure
	// (growth proceeds in radius-1 steps); with Radius >= 2, tree spiders
	// are additionally mined as the seed population — at exponentially
	// higher Stage I cost, as Appendix C(3) documents.
	t0 := time.Now()
	stars := spider.MineStars(m.g, spider.Options{
		MinSupport: m.cfg.MinSupport,
		MaxLeaves:  m.cfg.MaxLeavesPerStar,
		Radius:     1,
		MaxSpiders: m.cfg.MaxSpiders,
		Workers:    m.cfg.Workers,
	})
	m.catalog = spider.NewCatalog(stars)
	m.freqPair = make(map[[2]graph.Label]bool)
	for _, ms := range stars {
		if len(ms.Star.Leaves) == 1 {
			m.freqPair[[2]graph.Label{ms.Star.Head, ms.Star.Leaves[0]}] = true
		}
	}
	m.stats.NumSpiders = len(stars)
	if m.cfg.Radius >= 2 {
		maxSpiders := m.cfg.MaxSpiders
		if maxSpiders <= 0 {
			maxSpiders = 1 << 20
		}
		m.trees = spider.MineTrees(m.g, spider.TreeOptions{
			MinSupport: m.cfg.MinSupport,
			Radius:     m.cfg.Radius,
			MaxFanout:  4,
			MaxSpiders: maxSpiders,
		})
		m.stats.NumSpiders = len(m.trees)
	}
	m.stats.StageI = time.Since(t0)

	// M from Lemma 2 (or override).
	M := m.cfg.MOverride
	if M <= 0 {
		M = spider.ComputeM(m.g.N(), m.cfg.Vmin, m.cfg.K, m.cfg.Epsilon)
	}
	m.stats.M = M

	var finals []*pattern.Pattern
	for restart := 0; restart < m.cfg.Restarts; restart++ {
		finals = append(finals, m.runOnce(M)...)
	}
	top := m.selectTopK(finals)
	return &Result{Patterns: top, Stats: m.stats}
}

// runOnce performs Stages II and III for one random restart.
func (m *Miner) runOnce(M int) []*pattern.Pattern {
	// Stage II: random seeds, ⌈Dmax/2r⌉ growth+merge iterations.
	t1 := time.Now()
	seeds := m.seedPatterns(M, m.trees, m.rng)
	working := make([]*grown, 0, len(seeds))
	for _, p := range seeds {
		p.ID = m.newID()
		p.DedupeEmbeddings()
		if m.supFn(p.G, p.Emb) < m.cfg.MinSupport {
			continue
		}
		working = append(working, &grown{p: p, radius: m.cfg.Radius})
	}
	iters := (m.cfg.Dmax + 2*m.cfg.Radius - 1) / (2 * m.cfg.Radius) // ⌈Dmax/2r⌉
	for i := 0; i < iters; i++ {
		m.growAll(working)
		working = m.checkMerges(working)
		m.stats.GrowIterations++
	}
	// Prune unmerged patterns (Algorithm 1 line 10).
	var survivors []*grown
	for _, w := range working {
		if w.p.Merged || m.cfg.KeepUnmerged {
			survivors = append(survivors, w)
		}
	}
	if len(survivors) == 0 {
		// No merges happened (e.g. very sparse embedding overlap). Rather
		// than return nothing, fall back to the largest grown seeds — a
		// practical safeguard the paper does not need on its datasets.
		survivors = fallbackLargest(working, m.cfg.K)
	}
	m.stats.StageII += time.Since(t1)

	// Stage III: grow to maximality.
	t2 := time.Now()
	for iter := 0; iter < m.cfg.MaxGrowIters; iter++ {
		any := m.growAll(survivors)
		survivors = m.checkMerges(survivors)
		m.stats.GrowIterations++
		if !any {
			break
		}
	}
	m.stats.StageIII += time.Since(t2)

	out := make([]*pattern.Pattern, 0, len(survivors))
	for _, w := range survivors {
		out = append(out, w.p)
	}
	return out
}

// grown pairs a pattern with its current growth radius from its origin.
type grown struct {
	p      *pattern.Pattern
	radius int
	done   bool // no further frequent extension exists
}

func (m *Miner) newID() int {
	m.nextID++
	return m.nextID
}

func fallbackLargest(ws []*grown, k int) []*grown {
	sorted := append([]*grown(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].p.Size() > sorted[j].p.Size() })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// selectTopK dedupes structurally equal patterns, filters σ and Dmax, and
// returns the K largest by edge count (ties: more vertices, then higher
// support, then stable by ID).
func (m *Miner) selectTopK(ps []*pattern.Pattern) []*pattern.Pattern {
	var kept []*pattern.Pattern
	for _, p := range ps {
		if m.supFn(p.G, p.Emb) < m.cfg.MinSupport {
			continue
		}
		if p.G.Diameter() > m.cfg.Dmax {
			continue
		}
		dup := false
		for _, q := range kept {
			if m.sameStructure(p, q) {
				dup = true
				// Keep the one with more embeddings.
				if len(p.Emb) > len(q.Emb) {
					*q = *p
				}
				break
			}
		}
		if !dup {
			kept = append(kept, p)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Size() != b.Size() {
			return a.Size() > b.Size()
		}
		if a.NV() != b.NV() {
			return a.NV() > b.NV()
		}
		if len(a.Emb) != len(b.Emb) {
			return len(a.Emb) > len(b.Emb)
		}
		return a.ID < b.ID
	})
	if len(kept) > m.cfg.K {
		kept = kept[:m.cfg.K]
	}
	return kept
}

// sameStructure decides pattern identity the way §4.2.2 prescribes: the
// spider-set signature is the cheap necessary condition (Theorem 2), and
// only signature-equal pairs pay for an exact isomorphism test. With the
// pruning disabled (ablation), every size-compatible pair goes straight to
// the exact test, so Stats.IsoRun exposes the pruning's value.
func (m *Miner) sameStructure(a, b *pattern.Pattern) bool {
	if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		return false
	}
	if !m.cfg.DisableSpiderSetPruning {
		if a.SpiderSetSignature(m.cfg.Radius) != b.SpiderSetSignature(m.cfg.Radius) {
			m.stats.IsoSkipped++
			return false
		}
	}
	m.stats.IsoRun++
	return isoCheck(a, b)
}
