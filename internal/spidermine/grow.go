package spidermine

import (
	"math"
	"slices"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// growAll runs one SpiderGrow iteration over every working pattern,
// reporting whether any pattern was extended. With cfg.Workers > 1 (or
// < 0 for GOMAXPROCS) patterns grow concurrently; results are identical
// because each pattern is grown independently against shared-immutable
// state (host graph, frequent-pair index) with worker-owned scratch.
//
// On cancellation growAll returns ctx.Err() with the pass partially
// applied; the caller rolls back to its last committed snapshot. The
// per-pattern check is skipped entirely for uncancellable runs.
func (m *Miner) growAll(ws []*grown) (bool, error) {
	if workers := m.workerCount(len(ws)); workers > 1 {
		return m.growAllParallel(ws, workers)
	}
	sc := m.growWS.For(1)[0]
	any := false
	for _, w := range ws {
		if m.done != nil {
			if err := m.cancelled(); err != nil {
				return any, err
			}
		}
		if w.done {
			continue
		}
		if m.growPattern(w, sc) {
			any = true
		} else {
			w.done = true
		}
	}
	return any, nil
}

// growPattern performs one radius-increasing growth step (Algorithm 2 +
// Algorithm 3): at every boundary vertex, append the maximal frequent
// spider extension. Returns whether the pattern gained any vertex. sc is
// the caller-owned extension scratch — one per worker, so growPattern may
// run on parallel workers against disjoint patterns.
//
// SpiderExtend's two invariants are enforced:
//   - Maximal overlap: the appended spider is the largest frequent star at
//     the boundary image (greedy maximal leaf multiset).
//   - Internal integrity: only edges from the boundary vertex to new
//     vertices are added; the interior of P is untouched.
func (m *Miner) growPattern(w *grown, sc *growScratch) bool {
	p := w.p
	sc.boundary = p.AppendBoundary(sc.boundary[:0], w.radius)
	grewAny := false
	for _, b := range sc.boundary {
		if int(b) >= p.NV() {
			continue // pattern graph replaced with fewer vertices (defensive)
		}
		if m.extendAt(p, b, sc) {
			grewAny = true
		}
	}
	if grewAny {
		// Growth adds one ring of leaves per pass regardless of the seed
		// radius (stars are the growth unit; cfg.Radius only shapes the
		// Stage I seed population), so the frontier advances by exactly 1.
		w.radius++
	}
	return grewAny
}

// labVert is one candidate (leaf label, host vertex) observation during
// the per-embedding availability scan.
type labVert struct {
	l graph.Label
	v graph.V
}

// labRange is one label group of an embedding's candidate table: the host
// vertices sc.vbuf[lo:hi] (ascending) can supply leaf label `label` at the
// boundary image. Ranges into the flat buffer replace the historical
// per-embedding []labCand slices-of-slices, so the whole availability
// table is three reused flat allocations however many embeddings a
// pattern carries.
type labRange struct {
	label  graph.Label
	lo, hi int32
}

// labCount is a (label, count) pair used for the greedy multiset state.
type labCount struct {
	label graph.Label
	n     int
}

func countOf(lcs []labCount, l graph.Label) int {
	for i := range lcs {
		if lcs[i].label == l {
			return lcs[i].n
		}
	}
	return 0
}

func incrCount(lcs []labCount, l graph.Label) []labCount {
	for i := range lcs {
		if lcs[i].label == l {
			lcs[i].n++
			return lcs
		}
	}
	return append(lcs, labCount{l, 1})
}

// growScratch is per-worker extension state, owned by exactly one worker
// for the duration of a growth pass (m.growWS.For). mark is an
// epoch-stamped host-vertex set (no clearing between embeddings, just a
// new epoch); everything else is reused buffers truncated per call, so a
// warm growth pass allocates only what the grown pattern retains (its new
// graph and embedding storage).
type growScratch struct {
	mark  []int32
	epoch int32

	boundary []graph.V

	// Availability table, rebuilt per extendAt call: per-embedding runs of
	// label groups (gOff offsets into groups) whose candidate vertices are
	// ranges into vbuf. lv is the per-embedding collect+sort buffer.
	lv     []labVert
	groups []labRange
	gOff   []int32
	vbuf   []graph.V

	// Greedy multiset state: chosen/counts label tallies, surv/keep
	// ping-pong embedding index lists, subEmbs the support-probe slice.
	chosen  []labCount
	counts  []labCount
	surv    []int32
	keep    []int32
	subEmbs []pattern.Embedding

	// Image-dedupe set and edge buffer (128-bit image hashes stand in for
	// ImageKey strings, the accepted collision trade-off), plus the pooled
	// graph builder for the extended pattern.
	seen   map[[2]uint64]struct{}
	imgBuf []graph.Edge
	b      graph.Builder
}

// groupOf returns the candidate vertices for label l at embedding ei, or
// nil (the linear scan mirrors the historical candOf: label counts per
// head are small).
func (sc *growScratch) groupOf(ei int32, l graph.Label) []graph.V {
	for _, lr := range sc.groups[sc.gOff[ei]:sc.gOff[ei+1]] {
		if lr.label == l {
			return sc.vbuf[lr.lo:lr.hi]
		}
	}
	return nil
}

// extendAt grows pattern p at boundary vertex b by the maximal frequent
// leaf multiset, mutating p (graph, embeddings, caches) in place.
// Returns whether at least one leaf was added.
func (m *Miner) extendAt(p *pattern.Pattern, b graph.V, sc *growScratch) bool {
	if len(p.Emb) == 0 {
		return false
	}
	// Diameter guard: appending a leaf at b yields diameter
	// max(diam, ecc(b)+1, 2); never grow past Dmax (Definition 2 demands
	// diam(P) <= Dmax, so growth in that direction cannot lead to a valid
	// result pattern).
	eccB := p.G.Eccentricity(b)
	if eccB+1 > m.cfg.Dmax {
		return false
	}
	headLabel := p.G.Label(b)
	// Frequent leaf labels for this head, resolved once from the flat pair
	// index; an empty run means no extension can be frequent.
	run := m.freqLeavesOf(headLabel)
	if len(run) == 0 {
		return false
	}

	// Availability: per embedding, the candidate new-leaf host vertices
	// grouped by label — host neighbors of the image of b that are outside
	// the embedding image and form a frequent (head,leaf) spider pair.
	// Vertex lists inherit the host CSR's ascending order (the (l, v) sort
	// below is within-label stable on an already v-ascending scan).
	if cap(sc.mark) < m.g.N() {
		sc.mark = make([]int32, m.g.N())
		sc.epoch = 0
	}
	sc.mark = sc.mark[:m.g.N()]
	// Epoch wraparound guard: this call consumes one epoch per embedding;
	// if that could reach stamps left by long-dead embeddings, clear and
	// restart rather than alias them.
	if sc.epoch > math.MaxInt32-int32(len(p.Emb))-1 {
		clear(sc.mark[:cap(sc.mark)])
		sc.epoch = 0
	}
	nEmb := len(p.Emb)
	if cap(sc.gOff) < nEmb+1 {
		sc.gOff = make([]int32, nEmb+1)
	}
	sc.gOff = sc.gOff[:nEmb+1]
	sc.groups = sc.groups[:0]
	sc.vbuf = sc.vbuf[:0]
	for i, e := range p.Emb {
		sc.epoch++
		for _, hv := range e {
			sc.mark[hv] = sc.epoch
		}
		sc.gOff[i] = int32(len(sc.groups))
		lv := sc.lv[:0]
		for _, nb := range m.g.Neighbors(e[b]) {
			if sc.mark[nb] == sc.epoch {
				continue
			}
			l := m.g.Label(nb)
			if !hasLeaf(run, l) {
				continue
			}
			lv = append(lv, labVert{l, nb})
		}
		slices.SortFunc(lv, func(x, y labVert) int {
			if x.l != y.l {
				return int(x.l) - int(y.l)
			}
			return int(x.v) - int(y.v)
		})
		sc.lv = lv
		for j := 0; j < len(lv); {
			k := j
			lo := int32(len(sc.vbuf))
			for k < len(lv) && lv[k].l == lv[j].l {
				sc.vbuf = append(sc.vbuf, lv[k].v)
				k++
			}
			sc.groups = append(sc.groups, labRange{label: lv[j].l, lo: lo, hi: int32(len(sc.vbuf))})
			j = k
		}
	}
	sc.gOff[nEmb] = int32(len(sc.groups))

	// Greedy maximal frequent multiset: repeatedly add the label that the
	// most surviving embeddings can still host; stop when no label keeps
	// support >= σ.
	chosen := sc.chosen[:0]
	surv := sc.surv[:0]
	for i := 0; i < nEmb; i++ {
		surv = append(surv, int32(i))
	}
	keep := sc.keep
	total := 0
	for {
		// Candidate labels: anything available beyond its chosen count.
		counts := sc.counts[:0]
		for _, ei := range surv {
			for _, lr := range sc.groups[sc.gOff[ei]:sc.gOff[ei+1]] {
				if int(lr.hi-lr.lo) > countOf(chosen, lr.label) {
					counts = incrCount(counts, lr.label)
				}
			}
		}
		sc.counts = counts
		// Best label: highest embedding count, ties toward the smallest
		// label (order-independent however the counts list is arranged).
		var bestLabel graph.Label = -1
		bestCount := 0
		for _, c := range counts {
			if c.n > bestCount || (c.n == bestCount && bestLabel >= 0 && c.label < bestLabel) {
				bestCount = c.n
				bestLabel = c.label
			}
		}
		if bestLabel < 0 {
			break
		}
		// Which embeddings survive if we add bestLabel?
		keep = keep[:0]
		for _, ei := range surv {
			if len(sc.groupOf(ei, bestLabel)) > countOf(chosen, bestLabel) {
				keep = append(keep, ei)
			}
		}
		if m.embSupportIdx(p, keep, sc) < m.cfg.MinSupport {
			break
		}
		chosen = incrCount(chosen, bestLabel)
		total++
		surv, keep = keep, surv
	}
	sc.chosen, sc.surv, sc.keep = chosen, surv, keep
	if total == 0 {
		return false
	}
	slices.SortFunc(chosen, func(a, b labCount) int { return int(a.label) - int(b.label) })

	// Build the extended pattern graph through the pooled builder: new
	// vertices appended after existing ones, one per chosen leaf, edges
	// b—leaf. The interior edges come straight off the CSR (u < w order,
	// exactly what Edges() yields) without materializing an edge list.
	sc.b.Reset(p.NV()+total, p.Size()+total)
	for v := 0; v < p.NV(); v++ {
		sc.b.AddVertex(p.G.Label(graph.V(v)))
	}
	for v := 0; v < p.NV(); v++ {
		for _, w := range p.G.Neighbors(graph.V(v)) {
			if graph.V(v) < w {
				sc.b.AddEdge(graph.V(v), w)
			}
		}
	}
	for _, lc := range chosen {
		for c := 0; c < lc.n; c++ {
			leaf := sc.b.AddVertex(lc.label)
			sc.b.AddEdge(b, leaf)
		}
	}
	newG := sc.b.Build()
	// Exact diameter check (the ecc pre-check above is necessary but not
	// sufficient once several boundary vertices have grown this pass).
	// For very large patterns the O(V·(V+E)) exact check is deferred to
	// the final top-K filter; the ecc guard alone bounds overshoot to +1.
	if newG.N() <= 256 && !newG.DiameterAtMost(m.cfg.Dmax) {
		return false
	}

	// Extend surviving embeddings: per label, take the first chosen[l]
	// available neighbors in host-id order (labels with equal value are
	// interchangeable positions, so this is canonical; candidate ranges
	// are already host-id ascending). The extended embeddings are carved
	// out of one flat retained buffer — the appends below can never exceed
	// its pre-sized capacity, so the carved sub-slices stay stable.
	lenE := p.NV()
	flat := make([]graph.V, 0, len(surv)*(lenE+total))
	newEmbs := make([]pattern.Embedding, 0, len(surv))
	for _, ei := range surv {
		e := p.Emb[ei]
		lo := len(flat)
		flat = append(flat, e...)
		ok := true
		for _, lc := range chosen {
			vs := sc.groupOf(ei, lc.label)
			if len(vs) < lc.n {
				ok = false
				break
			}
			flat = append(flat, vs[:lc.n]...)
		}
		if !ok {
			flat = flat[:lo]
			continue
		}
		newEmbs = append(newEmbs, pattern.Embedding(flat[lo:len(flat):len(flat)]))
	}
	// Dedupe images before the final support check so overlapping
	// embeddings collapsing into one subgraph cannot fake support.
	if sc.seen == nil {
		sc.seen = make(map[[2]uint64]struct{}, len(newEmbs))
	} else {
		clear(sc.seen)
	}
	deduped := newEmbs[:0]
	for _, e := range newEmbs {
		var h [2]uint64
		h, sc.imgBuf = canon.ImageHash(sc.imgBuf, newG, canon.Mapping(e))
		if _, dup := sc.seen[h]; dup {
			continue
		}
		sc.seen[h] = struct{}{}
		deduped = append(deduped, e)
		if len(deduped) >= m.cfg.MaxEmbPerPattern {
			break
		}
	}
	if m.supFn(newG, deduped) < m.cfg.MinSupport {
		return false
	}
	p.G = newG
	p.Emb = deduped
	p.InvalidateCaches()
	return true
}

// embSupportIdx computes σ-comparable support of the subset of p's
// embeddings given by indices, against p's current graph, through the
// scratch's reused probe slice.
func (m *Miner) embSupportIdx(p *pattern.Pattern, idx []int32, sc *growScratch) int {
	sub := sc.subEmbs[:0]
	for _, i := range idx {
		sub = append(sub, p.Emb[i])
	}
	sc.subEmbs = sub
	return m.supFn(p.G, sub)
}
