package spidermine

import (
	"math"
	"slices"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// growAll runs one SpiderGrow iteration over every working pattern,
// reporting whether any pattern was extended. With cfg.Workers > 1 (or
// < 0 for GOMAXPROCS) patterns grow concurrently; results are identical
// because each pattern is grown independently against shared-immutable
// state (host graph, frequent-pair table) with worker-owned scratch.
//
// On cancellation growAll returns ctx.Err() with the pass partially
// applied; the caller rolls back to its last committed snapshot. The
// per-pattern check is skipped entirely for uncancellable runs.
func (m *Miner) growAll(ws []*grown) (bool, error) {
	if workers := m.workerCount(len(ws)); workers > 1 {
		return m.growAllParallel(ws, workers)
	}
	m.ensureGrowScratch(1)
	sc := m.growScr[0]
	any := false
	for _, w := range ws {
		if m.done != nil {
			if err := m.cancelled(); err != nil {
				return any, err
			}
		}
		if w.done {
			continue
		}
		if m.growPattern(w, sc) {
			any = true
		} else {
			w.done = true
		}
	}
	return any, nil
}

// growPattern performs one radius-increasing growth step (Algorithm 2 +
// Algorithm 3): at every boundary vertex, append the maximal frequent
// spider extension. Returns whether the pattern gained any vertex. sc is
// the caller-owned extension scratch — one per worker, so growPattern may
// run on parallel workers against disjoint patterns.
//
// SpiderExtend's two invariants are enforced:
//   - Maximal overlap: the appended spider is the largest frequent star at
//     the boundary image (greedy maximal leaf multiset).
//   - Internal integrity: only edges from the boundary vertex to new
//     vertices are added; the interior of P is untouched.
func (m *Miner) growPattern(w *grown, sc *growScratch) bool {
	p := w.p
	boundary := p.Boundary(w.radius)
	grewAny := false
	for _, b := range boundary {
		if int(b) >= p.NV() {
			continue // pattern graph replaced with fewer vertices (defensive)
		}
		if m.extendAt(p, b, sc) {
			grewAny = true
		}
	}
	if grewAny {
		// Growth adds one ring of leaves per pass regardless of the seed
		// radius (stars are the growth unit; cfg.Radius only shapes the
		// Stage I seed population), so the frontier advances by exactly 1.
		w.radius++
	}
	return grewAny
}

// labCand pairs a leaf label with host vertices that can supply it at one
// embedding's boundary image. Small linear-scanned slices of labCand
// replace the per-embedding maps the extension step used to allocate
// (candidate labels per head are few, and map churn dominated profiles).
type labCand struct {
	label graph.Label
	verts []graph.V
}

func candOf(lcs []labCand, l graph.Label) []graph.V {
	for i := range lcs {
		if lcs[i].label == l {
			return lcs[i].verts
		}
	}
	return nil
}

// labCount is a (label, count) pair used for the greedy multiset state.
type labCount struct {
	label graph.Label
	n     int
}

func countOf(lcs []labCount, l graph.Label) int {
	for i := range lcs {
		if lcs[i].label == l {
			return lcs[i].n
		}
	}
	return 0
}

func incrCount(lcs []labCount, l graph.Label) []labCount {
	for i := range lcs {
		if lcs[i].label == l {
			lcs[i].n++
			return lcs
		}
	}
	return append(lcs, labCount{l, 1})
}

// growScratch is per-worker extension state, owned by exactly one worker
// for the duration of a growth pass (see Miner.ensureGrowScratch). mark is
// an epoch-stamped host-vertex set (no clearing between embeddings, just a
// new epoch).
type growScratch struct {
	mark  []int32
	epoch int32
}

// ensureGrowScratch sizes the per-worker scratch table to at least
// `workers` entries. Called sequentially before a (possibly parallel)
// growth pass; workers then index m.growScr by worker id only.
func (m *Miner) ensureGrowScratch(workers int) {
	for len(m.growScr) < workers {
		m.growScr = append(m.growScr, new(growScratch))
	}
}

// extendAt grows pattern p at boundary vertex b by the maximal frequent
// leaf multiset, mutating p (graph, embeddings, caches) in place.
// Returns whether at least one leaf was added.
func (m *Miner) extendAt(p *pattern.Pattern, b graph.V, sc *growScratch) bool {
	if len(p.Emb) == 0 {
		return false
	}
	// Diameter guard: appending a leaf at b yields diameter
	// max(diam, ecc(b)+1, 2); never grow past Dmax (Definition 2 demands
	// diam(P) <= Dmax, so growth in that direction cannot lead to a valid
	// result pattern).
	eccB := p.G.Eccentricity(b)
	if eccB+1 > m.cfg.Dmax {
		return false
	}
	headLabel := p.G.Label(b)

	// avail computes, per embedding, the candidate new-leaf host vertices
	// grouped by label: host neighbors of the image of b that are outside
	// the embedding image and form a frequent (head,leaf) spider pair.
	// Vertex lists inherit the host CSR's ascending order.
	if cap(sc.mark) < m.g.N() {
		sc.mark = make([]int32, m.g.N())
		sc.epoch = 0
	}
	sc.mark = sc.mark[:m.g.N()]
	// Epoch wraparound guard: this call consumes one epoch per embedding;
	// if that could reach stamps left by long-dead embeddings, clear and
	// restart rather than alias them.
	if sc.epoch > math.MaxInt32-int32(len(p.Emb))-1 {
		clear(sc.mark[:cap(sc.mark)])
		sc.epoch = 0
	}
	avail := make([][]labCand, len(p.Emb))
	for i, e := range p.Emb {
		sc.epoch++
		for _, hv := range e {
			sc.mark[hv] = sc.epoch
		}
		var lcs []labCand
		for _, nb := range m.g.Neighbors(e[b]) {
			if sc.mark[nb] == sc.epoch {
				continue
			}
			l := m.g.Label(nb)
			if !m.freqPair[[2]graph.Label{headLabel, l}] {
				continue
			}
			found := false
			for j := range lcs {
				if lcs[j].label == l {
					lcs[j].verts = append(lcs[j].verts, nb)
					found = true
					break
				}
			}
			if !found {
				lcs = append(lcs, labCand{label: l, verts: []graph.V{nb}})
			}
		}
		avail[i] = lcs
	}

	// Greedy maximal frequent multiset: repeatedly add the label that the
	// most surviving embeddings can still host; stop when no label keeps
	// support >= σ.
	var chosen []labCount
	survivors := make([]int, len(p.Emb))
	for i := range survivors {
		survivors[i] = i
	}
	total := 0
	for {
		// Candidate labels: anything available beyond its chosen count.
		var counts []labCount
		for _, ei := range survivors {
			for _, lc := range avail[ei] {
				if len(lc.verts) > countOf(chosen, lc.label) {
					counts = incrCount(counts, lc.label)
				}
			}
		}
		// Best label: highest embedding count, ties toward the smallest
		// label (the deterministic order the map-era code got by sorting).
		var bestLabel graph.Label = -1
		bestCount := 0
		for _, c := range counts {
			if c.n > bestCount || (c.n == bestCount && bestLabel >= 0 && c.label < bestLabel) {
				bestCount = c.n
				bestLabel = c.label
			}
		}
		if bestLabel < 0 {
			break
		}
		// Which embeddings survive if we add bestLabel?
		var keep []int
		for _, ei := range survivors {
			if len(candOf(avail[ei], bestLabel)) > countOf(chosen, bestLabel) {
				keep = append(keep, ei)
			}
		}
		if m.embSupport(p, keep) < m.cfg.MinSupport {
			break
		}
		chosen = incrCount(chosen, bestLabel)
		total++
		survivors = keep
	}
	if total == 0 {
		return false
	}
	slices.SortFunc(chosen, func(a, b labCount) int { return int(a.label) - int(b.label) })

	// Build the extended pattern graph: new vertices appended after
	// existing ones, one per chosen leaf, edges b—leaf.
	nb := graph.NewBuilder(p.NV()+total, p.Size()+total)
	for v := 0; v < p.NV(); v++ {
		nb.AddVertex(p.G.Label(graph.V(v)))
	}
	for _, e := range p.G.Edges() {
		nb.AddEdge(e.U, e.W)
	}
	for _, lc := range chosen {
		for c := 0; c < lc.n; c++ {
			leaf := nb.AddVertex(lc.label)
			nb.AddEdge(b, leaf)
		}
	}
	newG := nb.Build()
	// Exact diameter check (the ecc pre-check above is necessary but not
	// sufficient once several boundary vertices have grown this pass).
	// For very large patterns the O(V·(V+E)) exact check is deferred to
	// the final top-K filter; the ecc guard alone bounds overshoot to +1.
	if newG.N() <= 256 && !newG.DiameterAtMost(m.cfg.Dmax) {
		return false
	}

	// Extend surviving embeddings: per label, take the first chosen[l]
	// available neighbors in host-id order (labels with equal value are
	// interchangeable positions, so this is canonical; avail lists are
	// already host-id ascending).
	newEmbs := make([]pattern.Embedding, 0, len(survivors))
	for _, ei := range survivors {
		e := p.Emb[ei]
		ext := make(pattern.Embedding, 0, len(e)+total)
		ext = append(ext, e...)
		ok := true
		for _, lc := range chosen {
			vs := candOf(avail[ei], lc.label)
			if len(vs) < lc.n {
				ok = false
				break
			}
			ext = append(ext, vs[:lc.n]...)
		}
		if ok {
			newEmbs = append(newEmbs, ext)
		}
	}
	// Dedupe images before the final support check so overlapping
	// embeddings collapsing into one subgraph cannot fake support.
	seenKeys := make(map[string]struct{}, len(newEmbs))
	deduped := newEmbs[:0]
	var keyBuf []byte
	for _, e := range newEmbs {
		keyBuf = canon.AppendImageKey(keyBuf[:0], newG, canon.Mapping(e))
		if _, dup := seenKeys[string(keyBuf)]; dup {
			continue
		}
		seenKeys[string(keyBuf)] = struct{}{}
		deduped = append(deduped, e)
		if len(deduped) >= m.cfg.MaxEmbPerPattern {
			break
		}
	}
	if m.embSupport2(newG, deduped) < m.cfg.MinSupport {
		return false
	}
	p.G = newG
	p.Emb = deduped
	p.InvalidateCaches()
	return true
}

// embSupport computes σ-comparable support of the subset of p's embeddings
// given by indices, against p's current graph.
func (m *Miner) embSupport(p *pattern.Pattern, idx []int) int {
	sub := make([]pattern.Embedding, 0, len(idx))
	for _, i := range idx {
		sub = append(sub, p.Emb[i])
	}
	return m.supFn(p.G, sub)
}

func (m *Miner) embSupport2(pg *graph.Graph, embs []pattern.Embedding) int {
	return m.supFn(pg, embs)
}
