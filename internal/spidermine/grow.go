package spidermine

import (
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func isoCheck(a, b *pattern.Pattern) bool { return canon.Isomorphic(a.G, b.G) }

// growAll runs one SpiderGrow iteration over every working pattern,
// reporting whether any pattern was extended. With cfg.Workers > 1 (or
// < 0 for GOMAXPROCS) patterns grow concurrently; results are identical
// because patterns are grown independently.
func (m *Miner) growAll(ws []*grown) bool {
	if m.cfg.Workers > 1 || m.cfg.Workers < 0 {
		return m.growAllParallel(ws, m.cfg.Workers)
	}
	any := false
	for _, w := range ws {
		if w.done {
			continue
		}
		if m.growPattern(w) {
			any = true
		} else {
			w.done = true
		}
	}
	return any
}

// growPattern performs one radius-increasing growth step (Algorithm 2 +
// Algorithm 3): at every boundary vertex, append the maximal frequent
// spider extension. Returns whether the pattern gained any vertex.
//
// SpiderExtend's two invariants are enforced:
//   - Maximal overlap: the appended spider is the largest frequent star at
//     the boundary image (greedy maximal leaf multiset).
//   - Internal integrity: only edges from the boundary vertex to new
//     vertices are added; the interior of P is untouched.
func (m *Miner) growPattern(w *grown) bool {
	p := w.p
	boundary := p.Boundary(w.radius)
	grewAny := false
	for _, b := range boundary {
		if int(b) >= p.NV() {
			continue // pattern graph replaced with fewer vertices (defensive)
		}
		if m.extendAt(p, b) {
			grewAny = true
		}
	}
	if grewAny {
		// Growth adds one ring of leaves per pass regardless of the seed
		// radius (stars are the growth unit; cfg.Radius only shapes the
		// Stage I seed population), so the frontier advances by exactly 1.
		w.radius++
	}
	return grewAny
}

// extendAt grows pattern p at boundary vertex b by the maximal frequent
// leaf multiset, mutating p (graph, embeddings, caches) in place.
// Returns whether at least one leaf was added.
func (m *Miner) extendAt(p *pattern.Pattern, b graph.V) bool {
	if len(p.Emb) == 0 {
		return false
	}
	// Diameter guard: appending a leaf at b yields diameter
	// max(diam, ecc(b)+1, 2); never grow past Dmax (Definition 2 demands
	// diam(P) <= Dmax, so growth in that direction cannot lead to a valid
	// result pattern).
	eccB := p.G.Eccentricity(b)
	if eccB+1 > m.cfg.Dmax {
		return false
	}
	headLabel := p.G.Label(b)

	// availOf computes, per embedding, the multiset of candidate new-leaf
	// labels: host neighbors of the image of b that are outside the
	// embedding image and form a frequent (head,leaf) spider pair.
	avail := make([]map[graph.Label][]graph.V, len(p.Emb))
	for i, e := range p.Emb {
		h := e[b]
		inImage := make(map[graph.V]bool, len(e))
		for _, hv := range e {
			inImage[hv] = true
		}
		byLabel := make(map[graph.Label][]graph.V)
		for _, nb := range m.g.Neighbors(h) {
			if inImage[nb] {
				continue
			}
			l := m.g.Label(nb)
			if !m.freqPair[[2]graph.Label{headLabel, l}] {
				continue
			}
			byLabel[l] = append(byLabel[l], nb)
		}
		avail[i] = byLabel
	}

	// Greedy maximal frequent multiset: repeatedly add the label that the
	// most surviving embeddings can still host; stop when no label keeps
	// support >= σ.
	chosen := map[graph.Label]int{} // label -> count
	survivors := make([]int, len(p.Emb))
	for i := range survivors {
		survivors[i] = i
	}
	for {
		// Candidate labels: anything available beyond its chosen count.
		counts := map[graph.Label]int{}
		for _, ei := range survivors {
			for l, vs := range avail[ei] {
				if len(vs) > chosen[l] {
					counts[l]++
				}
			}
		}
		var bestLabel graph.Label = -1
		bestCount := 0
		// Deterministic scan order.
		labels := make([]graph.Label, 0, len(counts))
		for l := range counts {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		for _, l := range labels {
			if c := counts[l]; c > bestCount {
				bestCount = c
				bestLabel = l
			}
		}
		if bestLabel < 0 {
			break
		}
		// Which embeddings survive if we add bestLabel?
		var keep []int
		for _, ei := range survivors {
			if len(avail[ei][bestLabel]) > chosen[bestLabel] {
				keep = append(keep, ei)
			}
		}
		if m.embSupport(p, keep) < m.cfg.MinSupport {
			break
		}
		chosen[bestLabel]++
		survivors = keep
	}
	total := 0
	for _, c := range chosen {
		total += c
	}
	if total == 0 {
		return false
	}

	// Build the extended pattern graph: new vertices appended after
	// existing ones, one per chosen leaf, edges b—leaf.
	labels := make([]graph.Label, 0, len(chosen))
	for l := range chosen {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	nb := graph.NewBuilder(p.NV()+total, p.Size()+total)
	for v := 0; v < p.NV(); v++ {
		nb.AddVertex(p.G.Label(graph.V(v)))
	}
	for _, e := range p.G.Edges() {
		nb.AddEdge(e.U, e.W)
	}
	for _, l := range labels {
		for c := 0; c < chosen[l]; c++ {
			leaf := nb.AddVertex(l)
			nb.AddEdge(b, leaf)
		}
	}
	newG := nb.Build()
	// Exact diameter check (the ecc pre-check above is necessary but not
	// sufficient once several boundary vertices have grown this pass).
	// For very large patterns the O(V·(V+E)) exact check is deferred to
	// the final top-K filter; the ecc guard alone bounds overshoot to +1.
	if newG.N() <= 256 && newG.Diameter() > m.cfg.Dmax {
		return false
	}

	// Extend surviving embeddings: per label, take the first chosen[l]
	// available neighbors in host-id order (labels with equal value are
	// interchangeable positions, so this is canonical).
	newEmbs := make([]pattern.Embedding, 0, len(survivors))
	for _, ei := range survivors {
		e := p.Emb[ei]
		ext := make(pattern.Embedding, 0, len(e)+total)
		ext = append(ext, e...)
		ok := true
		for _, l := range labels {
			vs := avail[ei][l]
			if len(vs) < chosen[l] {
				ok = false
				break
			}
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			ext = append(ext, vs[:chosen[l]]...)
		}
		if ok {
			newEmbs = append(newEmbs, ext)
		}
	}
	// Dedupe images before the final support check so overlapping
	// embeddings collapsing into one subgraph cannot fake support.
	seenKeys := make(map[string]struct{}, len(newEmbs))
	deduped := newEmbs[:0]
	for _, e := range newEmbs {
		k := e.ImageKey(newG)
		if _, dup := seenKeys[k]; dup {
			continue
		}
		seenKeys[k] = struct{}{}
		deduped = append(deduped, e)
		if len(deduped) >= m.cfg.MaxEmbPerPattern {
			break
		}
	}
	if m.embSupport2(newG, deduped) < m.cfg.MinSupport {
		return false
	}
	p.G = newG
	p.Emb = deduped
	p.InvalidateCaches()
	return true
}

// embSupport computes σ-comparable support of the subset of p's embeddings
// given by indices, against p's current graph.
func (m *Miner) embSupport(p *pattern.Pattern, idx []int) int {
	sub := make([]pattern.Embedding, 0, len(idx))
	for _, i := range idx {
		sub = append(sub, p.Emb[i])
	}
	return m.supFn(p.G, sub)
}

func (m *Miner) embSupport2(pg *graph.Graph, embs []pattern.Embedding) int {
	return m.supFn(pg, embs)
}
