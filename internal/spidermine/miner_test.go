package spidermine

import (
	"testing"

	"repro/internal/canon"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/support"
	"repro/internal/txdb"
)

func gid1() (*graph.Graph, []*graph.Graph) {
	return gen.Synthetic(gen.GIDConfig(1, 42))
}

func TestResultInvariants(t *testing.T) {
	g, _ := gid1()
	cfg := Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7}
	res := Mine(g, cfg)
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	if len(res.Patterns) > cfg.K {
		t.Fatalf("more than K patterns: %d", len(res.Patterns))
	}
	for i, p := range res.Patterns {
		// sorted by size descending
		if i > 0 && p.Size() > res.Patterns[i-1].Size() {
			t.Fatal("patterns not size-sorted")
		}
		// diameter bound
		if d := p.G.Diameter(); d > cfg.Dmax {
			t.Fatalf("pattern %d diameter %d > Dmax", i, d)
		}
		// support
		if len(p.Emb) < cfg.MinSupport {
			t.Fatalf("pattern %d support %d < σ", i, len(p.Emb))
		}
		// connected
		if !p.G.IsConnected() {
			t.Fatalf("pattern %d disconnected", i)
		}
		// structural distinctness
		for j := 0; j < i; j++ {
			if p.G.N() == res.Patterns[j].G.N() && p.G.M() == res.Patterns[j].G.M() &&
				canon.Isomorphic(p.G, res.Patterns[j].G) {
				t.Fatalf("patterns %d and %d are isomorphic", i, j)
			}
		}
	}
}

func TestEmbeddingsAreRealSubgraphs(t *testing.T) {
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7})
	for pi, p := range res.Patterns {
		for ei, e := range p.Emb {
			if len(e) != p.NV() {
				t.Fatalf("pattern %d emb %d: length %d != %d", pi, ei, len(e), p.NV())
			}
			for v := 0; v < p.NV(); v++ {
				if g.Label(e[v]) != p.G.Label(graph.V(v)) {
					t.Fatalf("pattern %d emb %d: label mismatch at %d", pi, ei, v)
				}
			}
			for _, pe := range p.G.Edges() {
				if !g.HasEdge(e[pe.U], e[pe.W]) {
					t.Fatalf("pattern %d emb %d: host edge missing for %v", pi, ei, pe)
				}
			}
		}
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	g, _ := gid1()
	cfg := Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 13}
	a := Mine(g, cfg)
	b := Mine(g, cfg)
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("nondeterministic: %d vs %d patterns", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if a.Patterns[i].Size() != b.Patterns[i].Size() ||
			len(a.Patterns[i].Emb) != len(b.Patterns[i].Emb) {
			t.Fatalf("pattern %d differs between identical runs", i)
		}
	}
}

func TestRecoversInjectedPatterns(t *testing.T) {
	// The headline claim (Figures 4-8): SpiderMine recovers the large
	// injected patterns. At least one top pattern must be >= 25 vertices
	// (injected: 30).
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7})
	if len(res.Patterns) == 0 || res.Patterns[0].NV() < 25 {
		got := 0
		if len(res.Patterns) > 0 {
			got = res.Patterns[0].NV()
		}
		t.Fatalf("largest pattern %d vertices, want >= 25", got)
	}
}

func TestMOverride(t *testing.T) {
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7, MOverride: 10})
	if res.Stats.M != 10 {
		t.Fatalf("M=%d, want override 10", res.Stats.M)
	}
}

func TestRestartsAccumulate(t *testing.T) {
	g, _ := gid1()
	r1 := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7, Restarts: 1})
	r3 := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7, Restarts: 3})
	if len(r3.Patterns) < len(r1.Patterns) {
		t.Fatalf("restarts lost patterns: %d vs %d", len(r3.Patterns), len(r1.Patterns))
	}
}

func TestSpiderSetPruningAblation(t *testing.T) {
	g, _ := gid1()
	on := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7})
	off := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7, DisableSpiderSetPruning: true})
	// Same final answer.
	if len(on.Patterns) != len(off.Patterns) {
		t.Fatalf("ablation changed result count: %d vs %d", len(on.Patterns), len(off.Patterns))
	}
	for i := range on.Patterns {
		if on.Patterns[i].Size() != off.Patterns[i].Size() {
			t.Fatal("ablation changed results")
		}
	}
	if off.Stats.IsoSkipped != 0 {
		t.Fatal("disabled pruning still skipped tests")
	}
}

func TestKeepUnmergedAblation(t *testing.T) {
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7, KeepUnmerged: true})
	if len(res.Patterns) == 0 {
		t.Fatal("keep-unmerged returned nothing")
	}
}

func TestHarmfulOverlapMeasureRuns(t *testing.T) {
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7, Measure: support.HarmfulOverlap})
	for _, p := range res.Patterns {
		if support.OfPattern(p, support.HarmfulOverlap) < 2 {
			t.Fatal("measure not honored in output")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	g := graph.FromEdges([]graph.Label{0, 0}, []graph.Edge{{U: 0, W: 1}})
	cfg := Config{}.withDefaults(g)
	if cfg.MinSupport != 2 || cfg.K != 10 || cfg.Dmax != 4 || cfg.Radius != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Vmin != 1 {
		t.Fatalf("Vmin default %d", cfg.Vmin)
	}
}

func TestTinyGraphNoPanics(t *testing.T) {
	g := graph.FromEdges([]graph.Label{0, 0, 0}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	res := Mine(g, Config{MinSupport: 2, K: 3, Dmax: 2, Seed: 1})
	_ = res // empty or not, must terminate cleanly
}

func TestEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	res := Mine(b.Build(), Config{MinSupport: 2, K: 3, Dmax: 4, Seed: 1})
	if len(res.Patterns) != 0 {
		t.Fatal("patterns from empty graph")
	}
}

func TestTransactionSetting(t *testing.T) {
	db, larges := txdb.SyntheticTx(txdb.SyntheticTxConfig{
		NumGraphs: 8, N: 150, AvgDeg: 4, NumLabels: 50,
		Large: gen.InjectSpec{NV: 16, Count: 2, Support: 1},
		Seed:  21,
	})
	res := MineTransactions(db, Config{MinSupport: 6, K: 5, Dmax: 6, Seed: 21})
	if len(res.Patterns) == 0 {
		t.Fatal("transaction mining returned nothing")
	}
	// Transaction support must hold: every returned pattern occurs in >= 6
	// distinct graphs.
	_, txOf := db.Union()
	for _, p := range res.Patterns {
		if got := support.TransactionSupport(p.Emb, txOf); got < 6 {
			t.Fatalf("transaction support %d < 6", got)
		}
	}
	// Should find a substantial chunk of the injected 16-vertex patterns.
	if res.Patterns[0].NV() < 8 {
		t.Fatalf("largest tx pattern only %d vertices", res.Patterns[0].NV())
	}
	_ = larges
}

func TestStatsPopulated(t *testing.T) {
	g, _ := gid1()
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7})
	s := res.Stats
	if s.NumSpiders == 0 || s.M == 0 || s.GrowIterations == 0 {
		t.Fatalf("stats not populated: %v", s)
	}
	if s.StageI <= 0 || s.StageII <= 0 {
		t.Fatalf("stage timings missing: %v", s)
	}
	if s.String() == "" {
		t.Fatal("stats stringer empty")
	}
}

func TestParallelGrowthIdenticalResults(t *testing.T) {
	g, _ := gid1()
	seq := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7})
	par := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 7, Workers: -1})
	if len(seq.Patterns) != len(par.Patterns) {
		t.Fatalf("parallel run differs: %d vs %d patterns", len(seq.Patterns), len(par.Patterns))
	}
	for i := range seq.Patterns {
		if seq.Patterns[i].Size() != par.Patterns[i].Size() ||
			seq.Patterns[i].NV() != par.Patterns[i].NV() ||
			len(seq.Patterns[i].Emb) != len(par.Patterns[i].Emb) {
			t.Fatalf("pattern %d differs between sequential and parallel runs", i)
		}
	}
}

func TestRadius2Seeds(t *testing.T) {
	// Radius-2 seeds: mining should still recover large patterns on GID 1
	// (more Stage I cost, same answer quality — Appendix C(3)).
	g, _ := gid1()
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Mine(g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7, Radius: 2, MaxSpiders: 6000})
	if len(res.Patterns) == 0 {
		t.Fatal("radius-2 mining returned nothing")
	}
	if res.Patterns[0].NV() < 10 {
		t.Fatalf("radius-2 largest pattern only %d vertices", res.Patterns[0].NV())
	}
}
