package spidermine

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestMinerResetReuse is the mixed-size soak for the pooled mining state:
// one warm Miner is Reset across hosts of increasing then decreasing size
// and must produce byte-identical results to a fresh Miner on every host.
// This is the contract Reset documents — pooled tables, arenas, and
// per-worker scratch may carry capacity between runs but never content.
func TestMinerResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	gid1, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	hosts := []struct {
		name string
		g    *graph.Graph
		cfg  Config
	}{
		{"er100", gen.ErdosRenyi(100, 3, 4, rng), Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 1}},
		{"ba300", gen.BarabasiAlbert(300, 3, 5, rng), Config{MinSupport: 2, K: 8, Dmax: 4, Seed: 2}},
		{"gid1", gid1, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 3}},
		{"gid1-workers", gid1, Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 3, Workers: 3}},
		{"ba300-again", gen.BarabasiAlbert(300, 2, 4, rng), Config{MinSupport: 2, K: 8, Dmax: 6, Seed: 4}},
		{"er60", gen.ErdosRenyi(60, 3, 3, rng), Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 5}},
	}
	var warm *Miner
	for i, h := range hosts {
		if warm == nil {
			warm = New(h.g, h.cfg)
		} else {
			warm.Reset(h.g, h.cfg)
		}
		got := warm.Run()
		want := New(h.g, h.cfg).Run()
		gj, err := json.Marshal(got.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		if string(gj) != string(wj) {
			t.Fatalf("host %d (%s): warm Miner diverges from fresh Miner\nwarm:  %d patterns\nfresh: %d patterns", i, h.name, len(got.Patterns), len(want.Patterns))
		}
		if len(got.Patterns) == 0 {
			t.Fatalf("host %d (%s): no patterns mined", i, h.name)
		}
	}
}
