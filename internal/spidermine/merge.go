package spidermine

import (
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// checkMerges detects pairs of working patterns whose embeddings overlap on
// host vertices and merges them when the union subgraph is frequent
// (Algorithm 4). The paper avoids pairwise checks by watching for the same
// spider (host head) being used by different patterns; we watch host-vertex
// usage, which is the materialized equivalent.
//
// A successful merge removes both parents from the working set and adds the
// merged pattern, marked Merged for Stage II pruning. The merged pattern's
// embeddings are the iso-consistent union images.
//
// On cancellation checkMerges returns the input set unchanged together
// with ctx.Err() (merges already applied this round stay on ws's
// patterns' wrappers only via the returned slice, which the caller then
// discards in favor of its committed snapshot).
func (m *Miner) checkMerges(ws []*grown) ([]*grown, error) {
	if len(ws) < 2 {
		return ws, nil
	}
	// Overlap detection samples at most mergeScanEmb embeddings per pattern:
	// merging only needs *one* overlapping pair per site, and the usage
	// index otherwise grows as patterns × embeddings × pattern size.
	const mergeScanEmb = 256
	// usage is indexed by host vertex id and kept on the Miner across
	// rounds (checkMerges runs sequentially); only the touched entries are
	// filled and they are truncated again before the pair scan returns, so
	// each round is O(touched), not O(N).
	if len(m.mergeUsage) < m.g.N() {
		m.mergeUsage = make([][]usageSlot, m.g.N())
	}
	usage := m.mergeUsage
	touched := make([]graph.V, 0, len(ws)*8)
	for wi, w := range ws {
		embs := w.p.Emb
		if len(embs) > mergeScanEmb {
			embs = embs[:mergeScanEmb]
		}
		for ei, e := range embs {
			for _, hv := range e {
				if len(usage[hv]) == 0 {
					touched = append(touched, hv)
				}
				usage[hv] = append(usage[hv], usageSlot{wi, ei})
			}
		}
	}
	// Collect overlapping (pattern, pattern) pairs with their embedding
	// pairs, deduplicated.
	pairs := make(map[pairKey]map[embPair]struct{})
	for _, hv := range touched {
		slots := usage[hv]
		usage[hv] = usage[hv][:0]
		if len(slots) < 2 {
			continue
		}
		for i := 0; i < len(slots); i++ {
			for j := i + 1; j < len(slots); j++ {
				a, b := slots[i], slots[j]
				if a.w == b.w {
					continue
				}
				pk := pairKey{a.w, b.w}
				ep := embPair{a.emb, b.emb}
				if a.w > b.w {
					pk = pairKey{b.w, a.w}
					ep = embPair{b.emb, a.emb}
				}
				if pairs[pk] == nil {
					pairs[pk] = make(map[embPair]struct{})
				}
				if len(pairs[pk]) < m.cfg.MergePairCap {
					pairs[pk][ep] = struct{}{}
				}
			}
		}
	}
	if len(pairs) == 0 {
		return ws, nil
	}
	// Deterministic pair order.
	keys := make([]pairKey, 0, len(pairs))
	for pk := range pairs {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})

	consumed := make([]bool, len(ws))
	var merged []*grown
	// apply is the ordered reduction step shared by the sequential and
	// parallel paths: accept a merge, number it, and retire its parents.
	apply := func(pk pairKey, mp *pattern.Pattern) {
		mp.ID = m.newID()
		consumed[pk.a] = true
		consumed[pk.b] = true
		m.stats.Merges++
		radius := ws[pk.a].radius
		if r := ws[pk.b].radius; r > radius {
			radius = r
		}
		merged = append(merged, &grown{p: mp, radius: radius})
	}
	if workers := m.workerCount(len(keys)); workers > 1 {
		if err := m.mergeParallel(ws, keys, pairs, workers, consumed, apply); err != nil {
			return ws, err
		}
	} else {
		for _, pk := range keys {
			if m.done != nil {
				if err := m.cancelled(); err != nil {
					return ws, err
				}
			}
			if consumed[pk.a] || consumed[pk.b] {
				continue
			}
			mp := m.tryMerge(ws[pk.a].p, ws[pk.b].p, pairs[pk], &m.stats.IsoRun)
			if mp != nil {
				apply(pk, mp)
			}
		}
	}
	if len(merged) == 0 {
		return ws, nil
	}
	out := make([]*grown, 0, len(ws))
	for i, w := range ws {
		if !consumed[i] {
			out = append(out, w)
		}
	}
	return append(out, merged...), nil
}

// usageSlot names one embedding of one working pattern during overlap
// detection.
type usageSlot struct {
	w   int // index into ws
	emb int // embedding index
}

// pairKey identifies an unordered pair of working patterns (a < b, both
// indices into ws) during a merge round.
type pairKey struct{ a, b int }

// embPair indexes one embedding of each of two patterns being merged.
type embPair struct{ ea, eb int }

// tryMerge builds union subgraphs for each overlapping embedding pair,
// buckets them by structure, and if the largest structure class is
// frequent, returns it as the merged pattern (ID unassigned — the caller's
// ordered reduction numbers accepted merges). Returns nil if no frequent
// merged structure exists.
//
// tryMerge is read-only on pa, pb, and the Miner, so merge rounds may
// evaluate many pairs concurrently; isoRun is the caller-owned (per-worker
// when parallel) isomorphism-test counter.
func (m *Miner) tryMerge(pa, pb *pattern.Pattern, embPairs map[embPair]struct{}, isoRun *int64) *pattern.Pattern {
	type bucket struct {
		repr *graph.Graph // representative pattern graph
		embs []pattern.Embedding
		seen map[string]struct{} // image keys, dedupe
	}
	buckets := make(map[uint64][]*bucket)

	var bufA, bufB []graph.Edge
	// Distinct embedding pairs routinely produce the same union edge set;
	// the subgraph build, diameter check and isomorphism bucketing are all
	// no-ops for a repeat (the image key dedupes it anyway), so skip them
	// wholesale on a 128-bit hash of the sorted union (see canon.HashEdges
	// for the collision trade-off).
	seenUnions := make(map[[2]uint64]struct{})

	// Deterministic order over embedding pairs.
	ordered := make([]embPair, 0, len(embPairs))
	for k := range embPairs {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].ea != ordered[j].ea {
			return ordered[i].ea < ordered[j].ea
		}
		return ordered[i].eb < ordered[j].eb
	})

	for _, pr := range ordered {
		if pr.ea >= len(pa.Emb) || pr.eb >= len(pb.Emb) {
			continue
		}
		bufA = canon.AppendMappedEdges(bufA[:0], pa.G, canon.Mapping(pa.Emb[pr.ea]))
		bufB = canon.AppendMappedEdges(bufB[:0], pb.G, canon.Mapping(pb.Emb[pr.eb]))
		union := graph.UnionEdges(bufA, bufB)
		uh := canon.HashEdges(union)
		if _, dup := seenUnions[uh]; dup {
			continue
		}
		seenUnions[uh] = struct{}{}
		ug, verts := m.g.SubgraphOfEdges(union)
		if !ug.IsConnected() {
			continue
		}
		// Merged patterns must respect the diameter bound; a union that
		// exceeds Dmax cannot be a subgraph of a valid result pattern that
		// this merge is meant to witness.
		if !ug.DiameterAtMost(m.cfg.Dmax) {
			continue
		}
		emb := make(pattern.Embedding, len(verts))
		copy(emb, verts)

		inv := canon.Invariant(ug)
		placed := false
		for _, bk := range buckets[inv] {
			if bk.repr.N() != ug.N() || bk.repr.M() != ug.M() {
				continue
			}
			mapping := canon.IsomorphismMapping(ug, bk.repr)
			*isoRun++
			if mapping == nil {
				continue
			}
			// Re-express emb in repr's vertex order: repr vertex i hosts
			// emb[inverse(i)].
			re := make(pattern.Embedding, len(emb))
			for ugv, reprv := range mapping {
				re[reprv] = emb[ugv]
			}
			key := re.ImageKey(bk.repr)
			if _, dup := bk.seen[key]; !dup {
				bk.seen[key] = struct{}{}
				bk.embs = append(bk.embs, re)
			}
			placed = true
			break
		}
		if !placed {
			bk := &bucket{repr: ug, seen: map[string]struct{}{}}
			key := emb.ImageKey(ug)
			bk.seen[key] = struct{}{}
			bk.embs = append(bk.embs, emb)
			buckets[inv] = append(buckets[inv], bk)
		}
	}

	// Choose the best frequent bucket: largest structure first, then most
	// embeddings, then a canonical tie-break on the first embedding's
	// image key (map iteration order must not leak into results).
	var best *bucket
	bestKey := ""
	firstKey := func(bk *bucket) string {
		if len(bk.embs) == 0 {
			return ""
		}
		k := bk.embs[0].ImageKey(bk.repr)
		for _, e := range bk.embs[1:] {
			if ek := e.ImageKey(bk.repr); ek < k {
				k = ek
			}
		}
		return k
	}
	for _, bks := range buckets {
		for _, bk := range bks {
			if m.supFn(bk.repr, bk.embs) < m.cfg.MinSupport {
				continue
			}
			switch {
			case best == nil,
				bk.repr.M() > best.repr.M(),
				bk.repr.M() == best.repr.M() && len(bk.embs) > len(best.embs):
				best = bk
				bestKey = firstKey(bk)
			case bk.repr.M() == best.repr.M() && len(bk.embs) == len(best.embs):
				if k := firstKey(bk); k < bestKey {
					best = bk
					bestKey = k
				}
			}
		}
	}
	if best == nil {
		return nil
	}
	mp := pattern.New(best.repr, best.embs)
	mp.Merged = true
	mp.Origin = -1 // merged patterns grow from their entire rim
	return mp
}
