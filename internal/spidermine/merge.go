package spidermine

import (
	"slices"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// checkMerges detects pairs of working patterns whose embeddings overlap on
// host vertices and merges them when the union subgraph is frequent
// (Algorithm 4). The paper avoids pairwise checks by watching for the same
// spider (host head) being used by different patterns; we watch host-vertex
// usage, which is the materialized equivalent.
//
// A successful merge removes both parents from the working set and adds the
// merged pattern, marked Merged for Stage II pruning. The merged pattern's
// embeddings are the iso-consistent union images.
//
// On cancellation checkMerges returns the input set unchanged together
// with ctx.Err() (merges already applied this round stay on ws's
// patterns' wrappers only via the returned slice, which the caller then
// discards in favor of its committed snapshot).
func (m *Miner) checkMerges(ws []*grown) ([]*grown, error) {
	if len(ws) < 2 {
		return ws, nil
	}
	// Overlap detection samples at most mergeScanEmb embeddings per pattern:
	// merging only needs *one* overlapping pair per site, and the usage
	// index otherwise grows as patterns × embeddings × pattern size.
	const mergeScanEmb = 256
	// usage is indexed by host vertex id and kept on the Miner across
	// rounds (checkMerges runs sequentially); only the touched entries are
	// filled and they are truncated again before the pair scan returns, so
	// each round is O(touched), not O(N).
	if len(m.mergeUsage) < m.g.N() {
		m.mergeUsage = make([][]usageSlot, m.g.N())
	}
	usage := m.mergeUsage
	touched := m.touched[:0]
	for wi, w := range ws {
		embs := w.p.Emb
		if len(embs) > mergeScanEmb {
			embs = embs[:mergeScanEmb]
		}
		for ei, e := range embs {
			for _, hv := range e {
				if len(usage[hv]) == 0 {
					touched = append(touched, hv)
				}
				usage[hv] = append(usage[hv], usageSlot{wi, ei})
			}
		}
	}
	m.touched = touched
	// Collect overlapping (pattern pair, embedding pair) candidates into
	// the flat reused list, deduplicated, with MergePairCap applied per
	// pattern pair in discovery order — exactly the set the historical
	// map-of-maps kept (first cap distinct embedding pairs per pattern
	// pair, in the order the usage scan surfaces them).
	if m.candSeen == nil {
		m.candSeen = make(map[mergeCand]struct{})
		m.pairCount = make(map[pairKey]int)
	} else {
		clear(m.candSeen)
		clear(m.pairCount)
	}
	cands := m.mergeCands[:0]
	for _, hv := range touched {
		slots := usage[hv]
		usage[hv] = usage[hv][:0]
		if len(slots) < 2 {
			continue
		}
		for i := 0; i < len(slots); i++ {
			for j := i + 1; j < len(slots); j++ {
				a, b := slots[i], slots[j]
				if a.w == b.w {
					continue
				}
				if a.w > b.w {
					a, b = b, a
				}
				c := mergeCand{a: int32(a.w), b: int32(b.w), ea: int32(a.emb), eb: int32(b.emb)}
				if _, dup := m.candSeen[c]; dup {
					continue
				}
				pk := pairKey{a.w, b.w}
				if m.pairCount[pk] >= m.cfg.MergePairCap {
					continue
				}
				m.candSeen[c] = struct{}{}
				m.pairCount[pk]++
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 {
		m.mergeCands = cands
		return ws, nil
	}
	// Deterministic evaluation order: sort the flat list by
	// (a, b, ea, eb) and cut it into per-pattern-pair groups — the same
	// order the historical sorted-keys + per-key sorted-pairs walk
	// produced.
	slices.SortFunc(cands, func(x, y mergeCand) int {
		if x.a != y.a {
			return int(x.a) - int(y.a)
		}
		if x.b != y.b {
			return int(x.b) - int(y.b)
		}
		if x.ea != y.ea {
			return int(x.ea) - int(y.ea)
		}
		return int(x.eb) - int(y.eb)
	})
	m.mergeCands = cands
	groups := m.pairGroups[:0]
	for i := 0; i < len(cands); {
		j := i + 1
		for j < len(cands) && cands[j].a == cands[i].a && cands[j].b == cands[i].b {
			j++
		}
		groups = append(groups, pairGroup{pk: pairKey{int(cands[i].a), int(cands[i].b)}, lo: int32(i), hi: int32(j)})
		i = j
	}
	m.pairGroups = groups

	consumed := m.consumed.For(len(ws))
	var merged []*grown
	// apply is the ordered reduction step shared by the sequential and
	// parallel paths: accept a merge, number it, and retire its parents.
	apply := func(pk pairKey, mp *pattern.Pattern) {
		mp.ID = m.newID()
		consumed[pk.a] = true
		consumed[pk.b] = true
		m.stats.Merges++
		radius := ws[pk.a].radius
		if r := ws[pk.b].radius; r > radius {
			radius = r
		}
		merged = append(merged, &grown{p: mp, radius: radius})
	}
	if workers := m.workerCount(len(groups)); workers > 1 {
		if err := m.mergeParallel(ws, groups, workers, consumed, apply); err != nil {
			return ws, err
		}
	} else {
		sc := m.mergeWS.For(1)[0]
		for _, gp := range groups {
			if m.done != nil {
				if err := m.cancelled(); err != nil {
					return ws, err
				}
			}
			if consumed[gp.pk.a] || consumed[gp.pk.b] {
				continue
			}
			mp := m.tryMerge(ws[gp.pk.a].p, ws[gp.pk.b].p, cands[gp.lo:gp.hi], sc, &m.stats.IsoRun)
			if mp != nil {
				apply(gp.pk, mp)
			}
		}
	}
	if len(merged) == 0 {
		return ws, nil
	}
	out := make([]*grown, 0, len(ws))
	for i, w := range ws {
		if !consumed[i] {
			out = append(out, w)
		}
	}
	return append(out, merged...), nil
}

// usageSlot names one embedding of one working pattern during overlap
// detection.
type usageSlot struct {
	w   int // index into ws
	emb int // embedding index
}

// pairKey identifies an unordered pair of working patterns (a < b, both
// indices into ws) during a merge round.
type pairKey struct{ a, b int }

// mergeCand is one merge candidate: patterns ws[a], ws[b] (a < b) overlap
// on embeddings Emb[ea], Emb[eb]. The flat sorted candidate list replaces
// the historical map[pairKey]map[embPair]struct{}.
type mergeCand struct{ a, b, ea, eb int32 }

// pairGroup is one pattern pair's contiguous run of candidates in the
// sorted mergeCands list.
type pairGroup struct {
	pk     pairKey
	lo, hi int32
}

// mbucket is one structure class of union subgraphs during tryMerge:
// representative graph, its iso-consistent embeddings, and the 128-bit
// image-hash dedupe set. Buckets are pooled per worker in mergeScratch;
// the winner's embs list is copied out, so the backing arrays recycle.
type mbucket struct {
	inv  uint64
	repr *graph.Graph
	embs []pattern.Embedding
	seen map[[2]uint64]struct{}
}

// mergeScratch is one worker's tryMerge state: mapped-edge and union
// buffers, the union-hash dedupe set, the pooled subgraph builder and
// vertex scratch, the bucket pool, and the WL/isomorphism scratch. Owned
// by exactly one worker for the duration of a merge wave.
type mergeScratch struct {
	bufA, bufB []graph.Edge
	unionBuf   []graph.Edge
	imgBuf     []graph.Edge
	seenUnions map[[2]uint64]struct{}
	vertsBuf   []graph.V
	b          graph.Builder
	buckets    []*mbucket
	iso        canon.Iso
}

// tryMerge builds union subgraphs for each candidate embedding pair (the
// caller's presorted slice), buckets them by structure, and if the largest
// structure class is frequent, returns it as the merged pattern (ID
// unassigned — the caller's ordered reduction numbers accepted merges).
// Returns nil if no frequent merged structure exists.
//
// tryMerge is read-only on pa, pb, and the Miner, and confines its
// mutable state to sc, so merge rounds may evaluate many pairs
// concurrently; isoRun is the caller-owned (per-worker when parallel)
// isomorphism-test counter.
func (m *Miner) tryMerge(pa, pb *pattern.Pattern, eps []mergeCand, sc *mergeScratch, isoRun *int64) *pattern.Pattern {
	if sc.seenUnions == nil {
		sc.seenUnions = make(map[[2]uint64]struct{})
	} else {
		clear(sc.seenUnions)
	}
	// used counts live buckets this call; entries beyond it are pool
	// leftovers from earlier calls.
	used := 0

	for _, pr := range eps {
		ea, eb := int(pr.ea), int(pr.eb)
		if ea >= len(pa.Emb) || eb >= len(pb.Emb) {
			continue
		}
		sc.bufA = canon.AppendMappedEdges(sc.bufA[:0], pa.G, canon.Mapping(pa.Emb[ea]))
		sc.bufB = canon.AppendMappedEdges(sc.bufB[:0], pb.G, canon.Mapping(pb.Emb[eb]))
		// Distinct embedding pairs routinely produce the same union edge
		// set; the subgraph build, diameter check and isomorphism bucketing
		// are all no-ops for a repeat (the image hash dedupes it anyway), so
		// skip them wholesale on a 128-bit hash of the sorted union (see
		// canon.HashEdges for the collision trade-off).
		sc.unionBuf = graph.AppendUnionEdges(sc.unionBuf[:0], sc.bufA, sc.bufB)
		union := sc.unionBuf
		uh := canon.HashEdges(union)
		if _, dup := sc.seenUnions[uh]; dup {
			continue
		}
		sc.seenUnions[uh] = struct{}{}
		ug, verts := m.g.SubgraphOfEdgesInto(union, sc.vertsBuf, &sc.b)
		sc.vertsBuf = verts
		if !ug.IsConnected() {
			continue
		}
		// Merged patterns must respect the diameter bound; a union that
		// exceeds Dmax cannot be a subgraph of a valid result pattern that
		// this merge is meant to witness.
		if !ug.DiameterAtMost(m.cfg.Dmax) {
			continue
		}
		emb := make(pattern.Embedding, len(verts))
		copy(emb, verts)

		inv := sc.iso.Invariant(ug)
		placed := false
		// Linear scan of the pooled buckets filtered by invariant — same
		// visit order as the historical per-invariant append lists.
		for bi := 0; bi < used; bi++ {
			bk := sc.buckets[bi]
			if bk.inv != inv || bk.repr.N() != ug.N() || bk.repr.M() != ug.M() {
				continue
			}
			mapping := sc.iso.MapInto(ug, bk.repr)
			*isoRun++
			if mapping == nil {
				continue
			}
			// Re-express emb in repr's vertex order: repr vertex i hosts
			// emb[inverse(i)].
			re := make(pattern.Embedding, len(emb))
			for ugv, reprv := range mapping {
				re[reprv] = emb[ugv]
			}
			var h [2]uint64
			h, sc.imgBuf = canon.ImageHash(sc.imgBuf, bk.repr, canon.Mapping(re))
			if _, dup := bk.seen[h]; !dup {
				bk.seen[h] = struct{}{}
				bk.embs = append(bk.embs, re)
			}
			placed = true
			break
		}
		if !placed {
			var bk *mbucket
			if used < len(sc.buckets) {
				bk = sc.buckets[used]
				bk.embs = bk.embs[:0]
				clear(bk.seen)
			} else {
				bk = &mbucket{seen: make(map[[2]uint64]struct{})}
				sc.buckets = append(sc.buckets, bk)
			}
			used++
			bk.inv = inv
			bk.repr = ug
			var h [2]uint64
			h, sc.imgBuf = canon.ImageHash(sc.imgBuf, ug, canon.Mapping(emb))
			bk.seen[h] = struct{}{}
			bk.embs = append(bk.embs, emb)
		}
	}

	// Choose the best frequent bucket: largest structure first, then most
	// embeddings, then a canonical tie-break on the first embedding's
	// image key (evaluation order must not leak into results; the exact
	// ImageKey strings are kept here — the tie-break must order total, and
	// it only runs on the rare frequent buckets).
	var best *mbucket
	bestKey := ""
	firstKey := func(bk *mbucket) string {
		if len(bk.embs) == 0 {
			return ""
		}
		k := bk.embs[0].ImageKey(bk.repr)
		for _, e := range bk.embs[1:] {
			if ek := e.ImageKey(bk.repr); ek < k {
				k = ek
			}
		}
		return k
	}
	for _, bk := range sc.buckets[:used] {
		if m.supFn(bk.repr, bk.embs) < m.cfg.MinSupport {
			continue
		}
		switch {
		case best == nil,
			bk.repr.M() > best.repr.M(),
			bk.repr.M() == best.repr.M() && len(bk.embs) > len(best.embs):
			best = bk
			bestKey = firstKey(bk)
		case bk.repr.M() == best.repr.M() && len(bk.embs) == len(best.embs):
			if k := firstKey(bk); k < bestKey {
				best = bk
				bestKey = k
			}
		}
	}
	if best == nil {
		return nil
	}
	// The bucket's embedding list is pooled scratch — copy the winner out.
	embs := make([]pattern.Embedding, len(best.embs))
	copy(embs, best.embs)
	mp := pattern.New(best.repr, embs)
	mp.Merged = true
	mp.Origin = -1 // merged patterns grow from their entire rim
	return mp
}
