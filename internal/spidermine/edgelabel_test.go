package spidermine

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestEdgeLabeledMining exercises the paper's §3 claim that the method
// applies to edge-labeled graphs, via the subdivision encoding: an
// edge-labeled motif planted twice must be recovered and decode back with
// its edge labels intact.
func TestEdgeLabeledMining(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Edge-labeled host: two copies of a triangle with vertex labels
	// 1,2,3 and edge labels 10,11,12, plus labeled noise edges.
	var (
		labels  []graph.Label
		edges   []graph.Edge
		elabels []graph.Label
	)
	addV := func(l graph.Label) graph.V {
		labels = append(labels, l)
		return graph.V(len(labels) - 1)
	}
	addE := func(u, w graph.V, l graph.Label) {
		edges = append(edges, graph.Edge{U: u, W: w})
		elabels = append(elabels, l)
	}
	for c := 0; c < 2; c++ {
		v1, v2, v3 := addV(1), addV(2), addV(3)
		addE(v1, v2, 10)
		addE(v2, v3, 11)
		addE(v1, v3, 12)
	}
	for i := 0; i < 12; i++ {
		u := addV(graph.Label(4 + rng.Intn(4)))
		w := addV(graph.Label(4 + rng.Intn(4)))
		addE(u, w, graph.Label(13+rng.Intn(4)))
	}
	enc, err := graph.EncodeEdgeLabels(labels, edges, elabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Distances double under subdivision: the triangle's diameter 1
	// becomes 2.
	res := Mine(enc, Config{MinSupport: 2, K: 3, Dmax: 4, Seed: 1})
	if len(res.Patterns) == 0 {
		t.Fatal("nothing mined on encoded graph")
	}
	top := res.Patterns[0]
	vl, de, _, err := graph.DecodeEdgeLabels(top.G, 0)
	if err != nil {
		t.Fatalf("top pattern does not decode: %v", err)
	}
	if len(vl) < 3 || len(de) < 2 {
		t.Fatalf("decoded pattern too small: %d vertices, %d edges", len(vl), len(de))
	}
	// Edge labels must come from the planted triangle.
	for _, e := range de {
		if e.Label < 10 || e.Label > 12 {
			t.Fatalf("unexpected edge label %d in decoded pattern", e.Label)
		}
	}
}
