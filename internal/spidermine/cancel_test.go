package spidermine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/pattern"
)

// TestRunContextUncancelledEqualsRun: the cancellation plumbing must be
// invisible to an uncancelled run — even with a cancellable context (so
// snapshots and boundary checks are active), the result is byte-identical
// to the plain Run path.
func TestRunContextUncancelledEqualsRun(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	for _, workers := range []int{1, 2} {
		cfg := Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 3, Workers: workers}
		want := fingerprint(t, Mine(g, cfg))
		ctx, cancel := context.WithCancel(context.Background())
		res, err := MineContext(ctx, g, cfg)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: uncancelled MineContext errored: %v", workers, err)
		}
		if got := fingerprint(t, res); got != want {
			t.Errorf("workers=%d: cancellable-but-uncancelled run differs from Run()", workers)
		}
	}
}

// cancelledRun mines the slow BA graph with a cancel pinned to the first
// Stage II grow+merge iteration boundary (delivered synchronously by the
// progress callback), returning the partial result, the run error, and
// how long the miner took to return after cancel() was called.
func cancelledRun(t *testing.T, workers int, mutate ...func(*Config)) (*Result, error, time.Duration) {
	t.Helper()
	g := gen.BarabasiAlbert(500, 3, 25, rand.New(rand.NewSource(11)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	cfg := Config{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 5,
		MaxLeavesPerStar: 3, MaxSpiders: 20000,
		Workers: workers,
		OnProgress: func(ev StageEvent) {
			if ev.Stage == StageGrowth && ev.Iteration == 1 && cancelledAt.IsZero() {
				cancelledAt = time.Now()
				cancel()
			}
		},
	}
	for _, f := range mutate {
		f(&cfg)
	}
	res, err := MineContext(ctx, g, cfg)
	ret := time.Now()
	if cancelledAt.IsZero() {
		t.Fatal("run finished without reaching a Stage II growth iteration")
	}
	return res, err, ret.Sub(cancelledAt)
}

// TestCancelDeterministic is the cancellation contract's enforcing
// harness: cancelling mid-Stage-II (pinned to an iteration boundary via
// the synchronous progress callback) must return promptly with
// context.Canceled and a non-empty partial result whose fingerprint is
// byte-identical across runs at fixed workers — the committed state of
// the boundary the callback observed.
func TestCancelDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2} {
		res1, err1, lat1 := cancelledRun(t, workers)
		if !errors.Is(err1, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err1)
		}
		if lat1 > 100*time.Millisecond {
			t.Errorf("workers=%d: %v from cancel to return, want < 100ms", workers, lat1)
		}
		if len(res1.Patterns) == 0 {
			t.Fatalf("workers=%d: cancelled run returned no partial patterns", workers)
		}
		res2, err2, _ := cancelledRun(t, workers)
		if !errors.Is(err2, context.Canceled) {
			t.Fatalf("workers=%d: second run err = %v", workers, err2)
		}
		if fingerprint(t, res1) != fingerprint(t, res2) {
			t.Errorf("workers=%d: two identically cancelled runs returned different partial results", workers)
		}
	}
}

// TestCancelPartialDedupe: a cancelled run's partial selection applies
// the exact structural dedupe by default — safe now that the
// automorphism-pruned Canonizer codes unpruned hub patterns in
// microseconds — and stays deterministic; DisablePartialDedupe restores
// the historical duplicate-tolerant path, also deterministically.
func TestCancelPartialDedupe(t *testing.T) {
	res, err, _ := cancelledRun(t, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, p := range res.Patterns {
		for _, q := range res.Patterns[i+1:] {
			if pattern.SameStructure(p, q, 1) {
				t.Fatalf("deduped partial result contains isomorphic duplicates (%v, %v)", p, q)
			}
		}
	}
	if res.Stats.CanonRun == 0 {
		t.Fatal("partial dedupe ran but Stats.CanonRun is zero")
	}
	disable := func(c *Config) { c.DisablePartialDedupe = true }
	raw1, err1, _ := cancelledRun(t, 1, disable)
	raw2, err2, _ := cancelledRun(t, 1, disable)
	if !errors.Is(err1, context.Canceled) || !errors.Is(err2, context.Canceled) {
		t.Fatalf("gated runs errs = %v, %v, want context.Canceled", err1, err2)
	}
	if fingerprint(t, raw1) != fingerprint(t, raw2) {
		t.Error("DisablePartialDedupe partials differ between identical runs")
	}
	if len(raw1.Patterns) < len(res.Patterns) {
		t.Errorf("dedupe kept %d patterns but the raw selection only had %d",
			len(res.Patterns), len(raw1.Patterns))
	}
}

// TestCancelBeforeStageI: a context cancelled before mining starts
// surfaces immediately with an empty (but non-nil) result.
func TestCancelBeforeStageI(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, g, Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("nil result on cancelled run")
	}
	if len(res.Patterns) != 0 {
		t.Fatalf("pre-cancelled run produced %d patterns", len(res.Patterns))
	}
}

// TestDeadlineSurfacesDeadlineExceeded: a ctx deadline reports
// context.DeadlineExceeded through the same path.
func TestDeadlineSurfacesDeadlineExceeded(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 25, rand.New(rand.NewSource(11)))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	_, err := MineContext(ctx, g, Config{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 5, MaxLeavesPerStar: 3, MaxSpiders: 20000,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
