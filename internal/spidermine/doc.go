// Package spidermine implements the SpiderMine algorithm (Algorithm 1 of
// the paper): probabilistic mining of the top-K largest frequent patterns
// of a single massive network, with diameter bound Dmax and success
// probability 1−ε.
//
// The three stages:
//
//	Stage I   — mine all frequent r-spiders (internal/spider).
//	Stage II  — draw M random seed spiders (M from Lemma 2), grow each by
//	            SpiderGrow for ⌈Dmax/2r⌉ iterations, merging patterns whose
//	            embeddings start to overlap; prune everything unmerged.
//	Stage III — grow survivors to maximality; return the K largest.
//
// # Performance notes: pooled mining state
//
// The Miner owns every table and scratch buffer the pipeline needs and
// reuses them across iterations, restarts, and (via Reset) runs on new
// hosts. The per-iteration engines allocate only for retained output —
// the patterns, graphs, and embedding lists that outlive the iteration —
// never for intermediate state. The pooled structures and their
// invariants:
//
//   - Frequent-pair index (freqPairs): the Stage I single-leaf stars as a
//     flat (head, leaf) list sorted by cmpLabelPair, replacing the
//     historical per-run map[[2]Label]bool. Lookups are binary searches
//     (freqLeavesOf returns the contiguous run for a head; hasLeaf
//     searches within it). Rebuilt in place at the start of every run;
//     read-only — and therefore safely shared across workers — once
//     mining starts.
//   - Stage I tables: the spider.StarMiner is held by value and owns its
//     CSR neighbor-label table, level frontiers, and output arenas; its
//     stars are carved from those arenas and are invalidated by the next
//     run, so the Miner rebuilds its spider.Catalog (also pooled, also
//     flat) from each run's output before touching the next.
//   - Per-worker scratch arenas (par.Workspace): one growScratch /
//     mergeScratch / canon.Matcher per worker, allocated per-worker-once
//     and reused across passes, runs, and restarts. Scratch contents are
//     epoch-stamped (mark arrays) or length-reset; nothing in a scratch
//     may be referenced by retained output — anything that survives the
//     call is copied out (e.g. merge winners copy their embedding lists
//     out of the pooled buckets).
//   - Worker-indexed accumulators (par.Slots): progress flags, iso-run
//     counters, and item-indexed merge results, zero-filled on For and
//     reduced in item order after each join, preserving the PR 2
//     determinism contract (bit-identical results for any worker count).
//   - Retained embeddings are carved from exact-capacity flat backing
//     ([]graph.V sized before the append loop), so growing one pattern's
//     embedding list can never reallocate under a neighbor's sub-slice.
//
// The allocation budgets are pinned by TestStageIAllocBudget and
// TestFullPipelineAllocBudget (repo root), the warm 0-alloc contracts by
// TestStarMinerWarmNoAlloc (internal/spider) and TestGrowScratchWarm*
// (this package), and the cross-run reuse contract by TestMinerResetReuse
// and TestStarMinerWarmAcrossHosts. BENCH_PR8.json records the measured
// steady state.
package spidermine
