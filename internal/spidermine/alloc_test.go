package spidermine

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// TestGrowScratchWarmNoAlloc pins scratch reuse in the grow engine: a warm
// growScratch evaluating an extension that fails (here on support) must
// not allocate. The availability tables, greedy counts, survivor
// ping-pong buffers, and the pooled Builder are all epoch-marked or
// length-reset, so any allocation means one of them regressed to per-call
// churn.
func TestGrowScratchWarmNoAlloc(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 3, Dmax: 6}) // σ=3 but only 2 sites: extendAt fails after full evaluation
	pg := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1}, {5, 6}})
	p.Origin = 0
	sc := m.growWS.For(1)[0]
	if m.extendAt(p, 0, sc) { // warm every buffer first
		t.Fatal("extension above support threshold")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if m.extendAt(p, 0, sc) {
			t.Fatal("extension above support threshold")
		}
	})
	if allocs != 0 {
		t.Errorf("warm failing extendAt allocates %.1f/op, want 0", allocs)
	}
}

// TestGrowScratchWarmGrowPattern: a full warm growPattern pass on a
// pattern whose every boundary extension fails must also be
// allocation-free (boundary buffer + per-vertex scratch reuse).
func TestGrowScratchWarmGrowPattern(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops items under -race; the pooled BFS boundary scratch then reallocates")
	}
	g := growHost()
	m := minerFor(g, Config{MinSupport: 3, Dmax: 6})
	pg := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1}, {5, 6}})
	p.Origin = 0
	w := &grown{p: p, radius: 1}
	sc := m.growWS.For(1)[0]
	if m.growPattern(w, sc) {
		t.Fatal("growth above support threshold")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if m.growPattern(w, sc) {
			t.Fatal("growth above support threshold")
		}
	})
	if allocs != 0 {
		t.Errorf("warm failing growPattern allocates %.1f/op, want 0", allocs)
	}
}
