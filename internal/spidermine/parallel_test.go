package spidermine

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/txdb"
)

// fingerprint serializes the full pipeline result — pattern graphs
// (labels + edges), embedding lists, IDs, origins, report order — into one
// byte string. Two runs are "the same result" exactly when their
// fingerprints are byte-identical; this is the contract the parallel
// engine is held to.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// parallelTestCases returns the generator graphs the differential harness
// sweeps — two Table 1 synthetic networks with injected large patterns and
// one scale-free Barabási–Albert graph (the Figure 13 regime, where spider
// counts explode and merge rounds are pair-heavy) — each with a base
// config sized so the whole sweep stays inside a tier-1 test budget (the
// BA graph mines millions of stars uncapped).
func parallelTestCases() []struct {
	name string
	g    *graph.Graph
	cfg  Config
} {
	g1, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	g2, _ := gen.Synthetic(gen.GIDConfig(2, 7))
	ba := gen.BarabasiAlbert(500, 3, 25, rand.New(rand.NewSource(11)))
	return []struct {
		name string
		g    *graph.Graph
		cfg  Config
	}{
		{"gid1", g1, Config{MinSupport: 2, K: 10, Dmax: 4}},
		{"gid2", g2, Config{MinSupport: 2, K: 10, Dmax: 4}},
		{"ba500", ba, Config{MinSupport: 3, K: 10, Dmax: 4, MaxLeavesPerStar: 3, MaxSpiders: 20000}},
	}
}

// TestParallelEqualsSequential is the differential harness for the
// parallel mining engine: for every generator graph and seed, the full
// pipeline result must be bit-identical at every worker count — pattern
// set, sizes, supports, embeddings, and report order all fingerprint the
// same. Run with -race to also make it a race harness over Stages I–III.
func TestParallelEqualsSequential(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	cases := parallelTestCases()
	seeds := []int64{1, 7, 13}
	if testing.Short() {
		// Race-detector budget: one graph, two seeds still exercises every
		// parallel stage at every worker count.
		cases = cases[:1]
		seeds = seeds[:2]
	}
	for _, tc := range cases {
		for _, seed := range seeds {
			cfg := tc.cfg
			cfg.Seed = seed
			want := fingerprint(t, Mine(tc.g, cfg))
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/seed=%d/workers=%d", tc.name, seed, w), func(t *testing.T) {
					cfgW := cfg
					cfgW.Workers = w
					got := fingerprint(t, Mine(tc.g, cfgW))
					if got != want {
						t.Errorf("workers=%d result differs from sequential run\nseq: %.200s...\npar: %.200s...", w, want, got)
					}
				})
			}
		}
	}
}

// TestParallelEqualsSequentialHigherRadius covers the radius-2 seeding
// path (tree-spider materialization with per-worker matchers).
func TestParallelEqualsSequentialHigherRadius(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	cfg := Config{MinSupport: 2, K: 5, Dmax: 4, Seed: 7, Radius: 2, MaxSpiders: 4000}
	want := fingerprint(t, Mine(g, cfg))
	for _, w := range []int{2, 4} {
		cfgW := cfg
		cfgW.Workers = w
		if got := fingerprint(t, Mine(g, cfgW)); got != want {
			t.Errorf("radius-2 workers=%d result differs from sequential run", w)
		}
	}
}

// TestDeterminismRegressionFixedWorkers runs the same Config (same Seed,
// same worker count) three times and asserts byte-identical serialized
// results — the regression net against completion-order or map-iteration
// nondeterminism sneaking back into a parallel stage.
func TestDeterminismRegressionFixedWorkers(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	for _, w := range []int{1, 4, -1} {
		cfg := Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 13, Workers: w}
		want := fingerprint(t, Mine(g, cfg))
		for run := 1; run < 3; run++ {
			if got := fingerprint(t, Mine(g, cfg)); got != want {
				t.Fatalf("workers=%d: run %d differs from run 0", w, run)
			}
		}
	}
}

// TestDeterminismMineTransactions covers the transaction adapter: repeated
// runs at a fixed worker count are byte-identical, and the result matches
// the sequential engine at every worker count.
func TestDeterminismMineTransactions(t *testing.T) {
	db, _ := txdb.SyntheticTx(txdb.SyntheticTxConfig{
		NumGraphs: 8, N: 150, AvgDeg: 4, NumLabels: 50,
		Large: gen.InjectSpec{NV: 16, Count: 2, Support: 1},
		Seed:  21,
	})
	cfg := Config{MinSupport: 6, K: 5, Dmax: 6, Seed: 21}
	want := fingerprint(t, MineTransactions(db, cfg))
	for _, w := range []int{2, 4} {
		cfgW := cfg
		cfgW.Workers = w
		got := fingerprint(t, MineTransactions(db, cfgW))
		if got != want {
			t.Errorf("transaction mining workers=%d differs from sequential", w)
		}
		for run := 0; run < 2; run++ {
			if again := fingerprint(t, MineTransactions(db, cfgW)); again != got {
				t.Fatalf("transaction mining workers=%d nondeterministic across runs", w)
			}
		}
	}
}
