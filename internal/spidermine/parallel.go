package spidermine

import (
	"repro/internal/par"
	"repro/internal/pattern"
)

// This file is the miner's worker-sharding layer. Every parallel stage
// follows the same ownership discipline (documented in doc.go and
// ROADMAP.md):
//
//   - shared-immutable: the host graph (its label index builds lazily
//     behind a sync.Once), the frequent-pair index, the spider catalog,
//     and cfg — workers only read these;
//   - per-worker scratch: one growScratch / mergeScratch / canon.Matcher
//     slot from the Miner's par.Workspace arenas, plus worker-indexed
//     accumulator slots (par.Slots) — never shared, never locked,
//     allocated per-worker-once and reused across passes, runs, and
//     restarts;
//   - ordered reduction: results land in item-indexed slots (par.Map) and
//     all cross-worker combination happens afterwards in item order, so
//     output is bit-identical to the sequential engine for any worker
//     count. Completion order and map iteration order must never reach a
//     result.

// workerCount resolves cfg.Workers against an item count: never more
// workers than items, never fewer than one.
func (m *Miner) workerCount(items int) int {
	return par.Bound(items, m.cfg.Workers)
}

// growAllParallel runs one SpiderGrow iteration over the working set with
// a bounded worker pool (workers > 1, resolved by the caller). Each
// pattern is grown independently — growPattern mutates only its own
// *grown, using the worker's scratch — so the result is identical to the
// sequential pass regardless of scheduling. Progress flags are
// worker-indexed and reduced after the join. A cancelled pass surfaces
// ctx.Err(); the caller rolls back to its last committed snapshot.
func (m *Miner) growAllParallel(ws []*grown, workers int) (bool, error) {
	scs := m.growWS.For(workers)
	anyByWorker := m.anyFlag.For(workers)
	if err := par.Do(m.ctx, len(ws), workers, func(wk, i int) {
		w := ws[i]
		if w.done {
			return
		}
		if m.growPattern(w, scs[wk]) {
			anyByWorker[wk] = true
		} else {
			w.done = true
		}
	}); err != nil {
		return false, err
	}
	for _, a := range anyByWorker {
		if a {
			return true, nil
		}
	}
	return false, nil
}

// mergeParallel evaluates merge-candidate pair groups with a worker pool
// in bounded batched waves, reducing each wave in sorted key order via
// apply. tryMerge is read-only on the working patterns and confines its
// state to the worker's mergeScratch, so the groups of one wave evaluate
// concurrently; speculation is bounded to the wave, because only groups
// whose endpoints are unconsumed when the wave is gathered enter it. A
// wave member whose endpoint an earlier (in key order) wave-mate consumed
// is discarded during the reduction — exactly the groups the sequential
// engine would have skipped — so the accepted merges, their IDs, and
// their order are identical for any worker count. Only the
// speculative-work counter (Stats.IsoRun) can exceed the sequential
// run's. mergeParallel returns ctx.Err() if a wave is cancelled
// mid-evaluation; waves already reduced stay applied, the cancelled wave
// is discarded, and the caller's caller rolls back to its last committed
// snapshot.
func (m *Miner) mergeParallel(ws []*grown, groups []pairGroup, workers int, consumed []bool, apply func(pairKey, *pattern.Pattern)) error {
	batchCap := workers
	scs := m.mergeWS.For(workers)
	isoRuns := m.isoRuns.For(workers)
	results := m.results.For(batchCap)
	batch := m.batch[:0]
	pos := 0
	for pos < len(groups) {
		batch = batch[:0]
		for pos < len(groups) && len(batch) < batchCap {
			gp := groups[pos]
			pos++
			if consumed[gp.pk.a] || consumed[gp.pk.b] {
				continue
			}
			batch = append(batch, gp)
		}
		if err := par.Do(m.ctx, len(batch), workers, func(wk, i int) {
			gp := batch[i]
			results[i] = m.tryMerge(ws[gp.pk.a].p, ws[gp.pk.b].p, m.mergeCands[gp.lo:gp.hi], scs[wk], &isoRuns[wk])
		}); err != nil {
			m.batch = batch
			for _, n := range isoRuns {
				m.stats.IsoRun += n
			}
			return err
		}
		for i, gp := range batch {
			if consumed[gp.pk.a] || consumed[gp.pk.b] {
				continue
			}
			if mp := results[i]; mp != nil {
				apply(gp.pk, mp)
			}
		}
	}
	m.batch = batch
	for _, n := range isoRuns {
		m.stats.IsoRun += n
	}
	return nil
}
