package spidermine

import (
	"runtime"
	"sync"
)

// growAllParallel runs one SpiderGrow iteration over the working set with
// a bounded worker pool. Each pattern is grown independently — growPattern
// only mutates its own *grown and reads shared immutable state (host
// graph, frequent-pair table) — so the result is identical to the
// sequential pass regardless of scheduling.
func (m *Miner) growAllParallel(ws []*grown, workers int) bool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ws) {
		workers = len(ws)
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		any bool
	)
	work := make(chan *grown, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range work {
				if m.growPattern(w) {
					mu.Lock()
					any = true
					mu.Unlock()
				} else {
					w.done = true
				}
			}
		}()
	}
	for _, w := range ws {
		if w.done {
			continue
		}
		work <- w
	}
	close(work)
	wg.Wait()
	return any
}
