package spidermine

import (
	"math/rand"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/spider"
)

// seedPatterns draws M seed patterns according to the configured spider
// radius: r=1 seeds come from the star catalog; r>=2 seeds are tree
// spiders materialized by anchored subgraph matching. In both cases growth
// afterwards proceeds in radius-1 steps (SpiderGrow with r=1 stars), so
// the radius only affects Stage I cost and seed shape — mirroring the
// paper's finding that r=1 or 2 is the right trade-off (Appendix C(3)).
//
// The random draw itself is sequential (it consumes the run's rng);
// materialization — the expensive anchored matching — shards across
// workers, each owning one Matcher, with results reduced in draw order.
// The rng is always consumed in full before the cancellable
// materialization, so a cancelled draw leaves the rng stream where an
// uncancelled draw would.
func (m *Miner) seedPatterns(M int, trees []*spider.MinedTree, rng *rand.Rand) ([]*pattern.Pattern, error) {
	if m.cfg.Radius <= 1 || len(trees) == 0 {
		return m.sd.Draw(m.ctx, m.g, &m.catalog, M, m.cfg.PerHostCap, rng, m.cfg.Workers)
	}
	if M > len(trees) {
		M = len(trees)
	}
	idx := rng.Perm(len(trees))[:M]
	workers := m.workerCount(len(idx))
	matchers := m.matcherWS.For(workers) // one search state per worker
	drawn, err := par.Map(m.ctx, len(idx), workers, func(wk, i int) *pattern.Pattern {
		return materializeTree(matchers[wk], m.g, trees[idx[i]], m.cfg.PerHostCap)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*pattern.Pattern, 0, M)
	for _, p := range drawn {
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// materializeTree turns a mined tree spider into a Pattern by enumerating,
// per hosting head, up to perHostCap anchored embeddings. The caller's
// Matcher carries the search state across heads and trees.
func materializeTree(matcher *canon.Matcher, g *graph.Graph, mt *spider.MinedTree, perHostCap int) *pattern.Pattern {
	if perHostCap <= 0 {
		perHostCap = spider.DefaultPerHostCap
	}
	pg := mt.Tree.Graph()
	var embs []pattern.Embedding
	for _, head := range mt.Hosts {
		matcher.Enumerate(pg, g, canon.MatchOptions{
			Limit:          perHostCap,
			Anchor:         head,
			DistinctImages: true,
		}, func(mm canon.Mapping) bool {
			embs = append(embs, pattern.Embedding(mm.Clone()))
			return true
		})
	}
	if len(embs) == 0 {
		return nil
	}
	p := pattern.New(pg, embs)
	p.Origin = 0
	return p
}
