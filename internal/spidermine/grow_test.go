package spidermine

import (
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// growHost builds a host with two identical star sites: head label 9 with
// leaves 1, 2, 3, where leaf 3 continues to a label-4 vertex.
func growHost() *graph.Graph {
	b := graph.NewBuilder(10, 10)
	site := func() graph.V {
		h := b.AddVertex(9)
		l1 := b.AddVertex(1)
		l2 := b.AddVertex(2)
		l3 := b.AddVertex(3)
		t := b.AddVertex(4)
		b.AddEdge(h, l1)
		b.AddEdge(h, l2)
		b.AddEdge(h, l3)
		b.AddEdge(l3, t)
		return h
	}
	site()
	site()
	return b.Build()
}

func minerFor(g *graph.Graph, cfg Config) *Miner {
	m := New(g, cfg)
	m.cfg = m.cfg.withDefaults(g)
	// Populate the frequent-pair index the way Run does.
	m.freqPairs = m.freqPairs[:0]
	for _, e := range g.Edges() {
		la, lb := g.Label(e.U), g.Label(e.W)
		m.freqPairs = append(m.freqPairs, labelPair{h: la, l: lb}, labelPair{h: lb, l: la})
	}
	slices.SortFunc(m.freqPairs, cmpLabelPair)
	m.freqPairs = slices.Compact(m.freqPairs)
	return m
}

// dropFreqPair removes one (head, leaf) entry from the flat index, the
// test equivalent of the historical map delete.
func dropFreqPair(m *Miner, h, l graph.Label) {
	m.freqPairs = slices.DeleteFunc(m.freqPairs, func(p labelPair) bool { return p.h == h && p.l == l })
}

func TestExtendAtAddsMaximalLeafSet(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 4})
	// Start from the bare head vertex as a 1-vertex pattern... patterns
	// must have an edge; start from head+leaf1.
	pg := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1}, {5, 6}})
	p.Origin = 0
	if !m.extendAt(p, 0, new(growScratch)) {
		t.Fatal("no extension at the head")
	}
	// The head's maximal frequent extension adds leaves 2 and 3.
	if p.NV() != 4 {
		t.Fatalf("pattern vertices %d, want 4 (head + leaves 1,2,3)", p.NV())
	}
	if len(p.Emb) != 2 {
		t.Fatalf("embeddings %d, want 2", len(p.Emb))
	}
	// All new edges incident to the head (internal integrity).
	for _, e := range p.G.Edges() {
		if e.U != 0 && e.W != 0 {
			t.Fatalf("edge %v not incident to the boundary vertex", e)
		}
	}
}

func TestExtendAtRespectsDiameterBound(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 2})
	// Pattern head+leaf3 (diameter 1); extending leaf3 with the label-4
	// tail would give a path of diameter 2 — allowed. Dmax=2 still blocks
	// the head extension that would create leaf-to-tail distance 3.
	pg := graph.FromEdges([]graph.Label{9, 3, 4}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	p := pattern.New(pg, []pattern.Embedding{{0, 3, 4}, {5, 8, 9}})
	p.Origin = 0
	if m.extendAt(p, 0, new(growScratch)) {
		t.Fatalf("extension at head should be blocked by Dmax=2 (got diam %d)", p.G.Diameter())
	}
}

func TestExtendAtNoFrequentPair(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 6})
	// Remove 9-2 from the frequent-pair index: leaf 2 may not be used.
	dropFreqPair(m, 9, 2)
	pg := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1}, {5, 6}})
	p.Origin = 0
	m.extendAt(p, 0, new(growScratch))
	for v := 0; v < p.NV(); v++ {
		if p.G.Label(graph.V(v)) == 2 {
			t.Fatal("extension used a non-frequent spider pair")
		}
	}
}

func TestExtendAtInsufficientSupport(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 3, Dmax: 6}) // σ=3 but only 2 sites
	pg := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 1}, {5, 6}})
	p.Origin = 0
	if m.extendAt(p, 0, new(growScratch)) {
		t.Fatal("extension above support threshold")
	}
}

func TestCheckMergesMergesOverlapping(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 4})
	// Pattern A: head-leaf1 at both sites; Pattern B: head-leaf2 at both
	// sites. They overlap on the heads (vertices 0 and 5).
	pgA := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	pa := pattern.New(pgA, []pattern.Embedding{{0, 1}, {5, 6}})
	pa.ID = 1
	pgB := graph.FromEdges([]graph.Label{9, 2}, []graph.Edge{{U: 0, W: 1}})
	pb := pattern.New(pgB, []pattern.Embedding{{0, 2}, {5, 7}})
	pb.ID = 2
	ws := []*grown{{p: pa, radius: 1}, {p: pb, radius: 1}}
	out, _ := m.checkMerges(ws)
	if len(out) != 1 {
		t.Fatalf("expected one merged pattern, got %d working patterns", len(out))
	}
	mp := out[0].p
	if !mp.Merged {
		t.Fatal("merged flag not set")
	}
	if mp.NV() != 3 || mp.Size() != 2 {
		t.Fatalf("merged pattern %v, want 3 vertices / 2 edges", mp)
	}
	if len(mp.Emb) != 2 {
		t.Fatalf("merged embeddings %d, want 2 (one per site)", len(mp.Emb))
	}
	if m.stats.Merges != 1 {
		t.Fatalf("merge counter %d", m.stats.Merges)
	}
}

func TestCheckMergesRejectsInfrequentUnion(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 4})
	// Overlap exists only at site 1, so the union occurs once — below σ.
	pgA := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	pa := pattern.New(pgA, []pattern.Embedding{{0, 1}})
	pgB := graph.FromEdges([]graph.Label{9, 2}, []graph.Edge{{U: 0, W: 1}})
	pb := pattern.New(pgB, []pattern.Embedding{{0, 2}})
	ws := []*grown{{p: pa, radius: 1}, {p: pb, radius: 1}}
	out, _ := m.checkMerges(ws)
	if len(out) != 2 {
		t.Fatalf("infrequent union must not merge; got %d patterns", len(out))
	}
	for _, w := range out {
		if w.p.Merged {
			t.Fatal("merged flag set without a merge")
		}
	}
}

func TestCheckMergesNoOverlapNoMerge(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 1, Dmax: 4})
	pgA := graph.FromEdges([]graph.Label{9, 1}, []graph.Edge{{U: 0, W: 1}})
	pa := pattern.New(pgA, []pattern.Embedding{{0, 1}})
	pgB := graph.FromEdges([]graph.Label{9, 2}, []graph.Edge{{U: 0, W: 1}})
	pb := pattern.New(pgB, []pattern.Embedding{{5, 7}}) // other site
	ws := []*grown{{p: pa, radius: 1}, {p: pb, radius: 1}}
	if out, _ := m.checkMerges(ws); len(out) != 2 {
		t.Fatalf("disjoint patterns merged: %d", len(out))
	}
}

func TestBoundaryGrowthIncreasesRadius(t *testing.T) {
	g := growHost()
	m := minerFor(g, Config{MinSupport: 2, Dmax: 6})
	pg := graph.FromEdges([]graph.Label{9, 3}, []graph.Edge{{U: 0, W: 1}})
	p := pattern.New(pg, []pattern.Embedding{{0, 3}, {5, 8}})
	p.Origin = 0
	w := &grown{p: p, radius: 1}
	if !m.growPattern(w, new(growScratch)) {
		t.Fatal("no growth")
	}
	if w.radius != 2 {
		t.Fatalf("radius %d, want 2", w.radius)
	}
	// leaf3's tail (label 4) must have been added by boundary growth.
	has4 := false
	for v := 0; v < p.NV(); v++ {
		if p.G.Label(graph.V(v)) == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Fatal("boundary vertex did not grow its tail")
	}
}
