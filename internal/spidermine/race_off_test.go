//go:build !race

package spidermine

const raceEnabled = false
