package spidermine

import (
	"testing"

	"repro/internal/gen"
)

// TestSmokeGID1 runs the full pipeline on the Table 1 GID-1 configuration
// and checks that SpiderMine recovers large patterns (the paper reports
// most of the 10 largest size-30 patterns on this dataset).
func TestSmokeGID1(t *testing.T) {
	g, injected := gen.Synthetic(gen.GIDConfig(1, 42))
	if g.N() != 400 {
		t.Fatalf("GID1 should have 400 vertices, got %d", g.N())
	}
	if len(injected) != 5 {
		t.Fatalf("expected 5 injected large patterns, got %d", len(injected))
	}
	res := Mine(g, Config{MinSupport: 2, K: 10, Dmax: 4, Epsilon: 0.1, Seed: 7})
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns returned")
	}
	t.Logf("stats: %v", res.Stats)
	for i, p := range res.Patterns {
		t.Logf("top-%d: %v diam=%d", i+1, p, p.G.Diameter())
	}
	best := res.Patterns[0]
	if best.NV() < 10 {
		t.Errorf("largest pattern too small: %d vertices (injected patterns have 30)", best.NV())
	}
}
