//go:build race

package spidermine

// raceEnabled gates allocation-count assertions: the race detector makes
// sync.Pool randomly drop Put items (by design, to surface races), so
// paths that borrow pooled scratch — growPattern's BFS boundary via
// graph.AppendAtDistance — are not allocation-free under -race.
const raceEnabled = true
