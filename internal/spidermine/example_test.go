package spidermine_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spidermine"
)

// Example mines a toy network holding two copies of a labeled triangle and
// prints the largest frequent pattern.
func Example() {
	b := graph.NewBuilder(8, 8)
	for i := 0; i < 2; i++ {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v1, v3)
	}
	noise1 := b.AddVertex(4)
	noise2 := b.AddVertex(5)
	b.AddEdge(noise1, noise2)
	b.AddEdge(0, noise1)

	res := spidermine.Mine(b.Build(), spidermine.Config{
		MinSupport: 2,
		K:          1,
		Dmax:       2,
		Seed:       1,
	})
	top := res.Patterns[0]
	fmt.Printf("largest pattern: %d vertices, %d edges, %d embeddings\n",
		top.NV(), top.Size(), len(top.Emb))
	// Output:
	// largest pattern: 3 vertices, 3 edges, 2 embeddings
}
