package spidermine

import (
	"slices"
	"testing"

	"repro/internal/gen"
	"repro/internal/spider"
)

func TestPipelineStages(t *testing.T) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 42))
	t.Logf("graph: %v avgdeg=%.2f", g, g.AvgDegree())

	m := New(g, Config{MinSupport: 2, K: 10, Dmax: 4, Epsilon: 0.1, Seed: 7})
	m.cfg = m.cfg.withDefaults(g)
	stars := spider.MineStars(g, spider.Options{MinSupport: 2})
	t.Logf("stars: %d", len(stars))
	m.catalog.Rebuild(stars)
	m.freqPairs = m.freqPairs[:0]
	for _, ms := range stars {
		if len(ms.Star.Leaves) == 1 {
			m.freqPairs = append(m.freqPairs, labelPair{h: ms.Star.Head, l: ms.Star.Leaves[0]})
		}
	}
	slices.SortFunc(m.freqPairs, cmpLabelPair)
	M := spider.ComputeM(g.N(), g.N()/10, 10, 0.1)
	t.Logf("M=%d", M)
	seeds := spider.RandomSeed(g, &m.catalog, M, 8, m.rng, 0)
	t.Logf("seeds=%d", len(seeds))
	working := make([]*grown, 0, len(seeds))
	for _, p := range seeds {
		p.DedupeEmbeddings()
		if len(p.Emb) >= 2 {
			working = append(working, &grown{p: p, radius: 1})
		}
	}
	t.Logf("working after support filter: %d", len(working))
	for i := 0; i < 2; i++ {
		any, _ := m.growAll(working)
		before := len(working)
		working, _ = m.checkMerges(working)
		t.Logf("iter %d: grew=%v patterns %d->%d merges=%d", i, any, before, len(working), m.stats.Merges)
	}
	nMerged := 0
	maxSize := 0
	for _, w := range working {
		if w.p.Merged {
			nMerged++
		}
		if w.p.Size() > maxSize {
			maxSize = w.p.Size()
		}
	}
	t.Logf("merged=%d maxSize=%d", nMerged, maxSize)
	if nMerged == 0 {
		t.Fatal("no pattern merged during Stage II on GID 1")
	}
	if maxSize < 10 {
		t.Fatalf("Stage II largest pattern only %d edges", maxSize)
	}
	for _, w := range working {
		if w.p.G.Diameter() > 4 {
			t.Fatalf("Stage II pattern exceeds Dmax: diam %d", w.p.G.Diameter())
		}
	}
}
