package spidermine

import (
	"context"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/support"
	"repro/internal/txdb"
)

// MineTransactions adapts SpiderMine to the graph-transaction setting
// (§5.1.2): the database is mined as its disjoint union graph and every
// σ-comparison counts distinct containing transactions instead of raw
// embeddings. Stage I spider support remains head-count support on the
// union graph, a safe upper bound on transaction support that the growth
// stages re-verify.
func MineTransactions(db *txdb.DB, cfg Config) *Result {
	res, _ := MineTransactionsContext(context.Background(), db, cfg)
	return res
}

// MineTransactionsContext is MineTransactions with cooperative
// cancellation, under the same partial-result contract as RunContext.
func MineTransactionsContext(ctx context.Context, db *txdb.DB, cfg Config) (*Result, error) {
	union, txOf := db.Union()
	m := New(union, cfg)
	m.supFn = func(_ *graph.Graph, embs []pattern.Embedding) int {
		return support.TransactionSupport(embs, txOf)
	}
	return m.RunContext(ctx)
}
