package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLGRoundTrip(t *testing.T) {
	g := FromEdges([]Label{3, 1, 4, 1}, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	var buf bytes.Buffer
	if err := g.WriteLG(&buf, "roundtrip"); err != nil {
		t.Fatal(err)
	}
	g2, name, err := ReadLG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "roundtrip" {
		t.Fatalf("name %q", name)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("roundtrip mismatch: %v vs %v", g2, g)
	}
	for v := 0; v < g.N(); v++ {
		if g.Label(V(v)) != g2.Label(V(v)) {
			t.Fatal("labels changed")
		}
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.W) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestReadLGIgnoresCommentsAndBlanks(t *testing.T) {
	in := "t # demo\n\n# a comment\nv 0 7\nv 1 8\ne 0 1\n"
	g, name, err := ReadLG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "demo" || g.N() != 2 || g.M() != 1 {
		t.Fatalf("parse wrong: name=%q %v", name, g)
	}
}

func TestReadLGErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad vertex id", "v x 0\n"},
		{"bad vertex label", "v 0 y\n"},
		{"non-dense ids", "v 5 0\n"},
		{"short vertex line", "v 0\n"},
		{"short edge line", "e 0\n"},
		{"edge bad endpoint", "v 0 0\nv 1 0\ne 0 z\n"},
		{"edge unknown vertex", "v 0 0\ne 0 9\n"},
	}
	for _, c := range cases {
		if _, _, err := ReadLG(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestReadLGRejectsGarbageWithPosition: the malformed shapes a serving
// endpoint must refuse to ingest — duplicate vertex ids, edges against
// undefined vertices, a second graph header — fail with line-numbered
// errors naming the defect.
func TestReadLGRejectsGarbageWithPosition(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{
			"duplicate vertex id",
			"t # g\nv 0 1\nv 1 2\nv 0 3\n",
			[]string{"line 4", "duplicate vertex id 0"},
		},
		{
			"edge references undefined vertex",
			"v 0 1\nv 1 1\ne 1 2\n",
			[]string{"line 3", "undefined vertex"},
		},
		{
			"edge before any vertex",
			"e 0 1\nv 0 1\nv 1 1\n",
			[]string{"line 1", "undefined vertex"},
		},
		{
			"negative edge endpoint",
			"v 0 1\ne -1 0\n",
			[]string{"line 2", "undefined vertex"},
		},
		{
			"second graph header",
			"t # a\nv 0 1\nt # b\nv 1 1\n",
			[]string{"line 3", "second graph header"},
		},
	}
	for _, c := range cases {
		_, _, err := ReadLG(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q missing %q", c.name, err, frag)
			}
		}
	}
}

func TestReadLGAcceptsEdgeLabels(t *testing.T) {
	in := "v 0 1\nv 1 1\ne 0 1 42\n" // trailing edge label dropped
	g, _, err := ReadLG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatal("edge with label not parsed")
	}
}

// Property: ReadLG never panics on arbitrary input; it either parses or
// returns an error.
func TestQuickReadLGNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadLG panicked on %q: %v", data, r)
			}
		}()
		_, _, _ = ReadLG(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteLG/ReadLG round-trips arbitrary generated graphs.
func TestQuickLGRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		b := NewBuilder(n, 2*n)
		for i := 0; i < n; i++ {
			b.AddVertex(Label(rng.Intn(5)))
		}
		for i := 0; i < 2*n; i++ {
			b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteLG(&buf, "rt"); err != nil {
			return false
		}
		g2, _, err := ReadLG(&buf)
		if err != nil || g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !g2.HasEdge(e.U, e.W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
