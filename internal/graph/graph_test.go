package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildPath(labels ...Label) *Graph {
	b := NewBuilder(len(labels), len(labels))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		b.AddEdge(V(i), V(i+1))
	}
	return b.Build()
}

func buildCycle(n int, l Label) *Graph {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddVertex(l)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(V(i), V((i+1)%n))
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("zero graph: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("empty graph claims an edge")
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3, 3)
	v0 := b.AddVertex(10)
	v1 := b.AddVertex(20)
	v2 := b.AddVertex(10)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if g.Label(v0) != 10 || g.Label(v1) != 20 || g.Label(v2) != 10 {
		t.Fatal("labels wrong")
	}
	if !g.HasEdge(v0, v1) || !g.HasEdge(v1, v0) {
		t.Fatal("edge 0-1 missing or asymmetric")
	}
	if g.HasEdge(v0, v2) {
		t.Fatal("phantom edge 0-2")
	}
	if g.Degree(v1) != 2 || g.Degree(v0) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestBuilderDropsDuplicatesAndSelfLoops(t *testing.T) {
	b := NewBuilder(2, 4)
	b.AddVertex(1)
	b.AddVertex(1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(0, 0) // self loop
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("got m=%d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d, %d; want 1, 1", g.Degree(0), g.Degree(1))
	}
}

func TestAddEdgePanicsOnUnknownVertex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder(1, 1)
	b.AddVertex(0)
	b.AddEdge(0, 5)
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := buildCycle(4, 0)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("got %d edges, want 4", len(es))
	}
	for _, e := range es {
		if e.U >= e.W {
			t.Fatalf("edge %v not normalized", e)
		}
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].U > es[i].U || (es[i-1].U == es[i].U && es[i-1].W >= es[i].W) {
			t.Fatal("edges not sorted")
		}
	}
}

func TestNormEdge(t *testing.T) {
	if NormEdge(3, 1) != (Edge{1, 3}) {
		t.Fatal("NormEdge did not swap")
	}
	if NormEdge(1, 3) != (Edge{1, 3}) {
		t.Fatal("NormEdge changed ordered pair")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildPath(1, 2, 3)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone differs")
	}
	c.labels[0] = 99
	if g.Label(0) == 99 {
		t.Fatal("clone shares label storage")
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildPath(0, 0, 0, 0) // path of 4: degrees 1,2,2,1
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree %d, want 2", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("avg degree %f, want 1.5", got)
	}
	if g.NumLabels() != 1 {
		t.Fatalf("numlabels %d, want 1", g.NumLabels())
	}
}

func TestBFSAndDistances(t *testing.T) {
	g := buildPath(0, 0, 0, 0, 0)
	d := g.BFSFrom(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d]=%d, want %d", i, d[i], want)
		}
	}
	within := g.BFSWithin(2, 1)
	if len(within) != 3 {
		t.Fatalf("BFSWithin(2,1) = %v, want 3 vertices", within)
	}
	if within[2] != 0 || within[1] != 1 || within[3] != 1 {
		t.Fatalf("BFSWithin distances wrong: %v", within)
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(3, 1)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddEdge(0, 1)
	g := b.Build()
	d := g.BFSFrom(0)
	if d[2] != -1 {
		t.Fatalf("unreachable vertex distance %d, want -1", d[2])
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	comp, n := g.ConnectedComponents()
	if n != 2 || comp[0] != comp[1] || comp[0] == comp[2] {
		t.Fatalf("components wrong: %v (%d)", comp, n)
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	p := buildPath(0, 0, 0, 0, 0)
	if p.Diameter() != 4 {
		t.Fatalf("path diameter %d, want 4", p.Diameter())
	}
	if p.Eccentricity(2) != 2 {
		t.Fatalf("center ecc %d, want 2", p.Eccentricity(2))
	}
	c := buildCycle(6, 0)
	if c.Diameter() != 3 {
		t.Fatalf("C6 diameter %d, want 3", c.Diameter())
	}
}

func TestRadiusFrom(t *testing.T) {
	p := buildPath(0, 0, 0, 0, 0)
	if !p.RadiusFrom(2, 2) {
		t.Fatal("path of 5 should be 2-bounded from its center")
	}
	if p.RadiusFrom(0, 2) {
		t.Fatal("path of 5 is not 2-bounded from an end")
	}
	if p.RadiusFrom(2, 1) {
		t.Fatal("path of 5 is not 1-bounded from center")
	}
}

func TestEffectiveDiameter(t *testing.T) {
	p := buildPath(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	full := p.Diameter()
	eff := p.EffectiveDiameter(0.9, 0)
	if eff > full {
		t.Fatalf("effective diameter %d exceeds diameter %d", eff, full)
	}
	if eff < 1 {
		t.Fatalf("effective diameter %d too small", eff)
	}
}

func TestInduced(t *testing.T) {
	g := buildCycle(5, 7)
	sub, orig := g.Induced([]V{0, 1, 2})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced: n=%d m=%d, want 3, 2", sub.N(), sub.M())
	}
	for i, v := range orig {
		if sub.Label(V(i)) != g.Label(v) {
			t.Fatal("induced labels wrong")
		}
	}
	// duplicates collapse
	sub2, _ := g.Induced([]V{1, 1, 2})
	if sub2.N() != 2 {
		t.Fatalf("duplicate vertices not collapsed: n=%d", sub2.N())
	}
}

func TestSubgraphOfEdges(t *testing.T) {
	g := buildCycle(5, 1)
	sub, orig := g.SubgraphOfEdges([]Edge{{0, 1}, {1, 2}})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("subgraph: n=%d m=%d", sub.N(), sub.M())
	}
	if len(orig) != 3 {
		t.Fatalf("mapping length %d", len(orig))
	}
}

func TestNeighborhood(t *testing.T) {
	g := buildPath(0, 1, 2, 3, 4)
	nb, orig := g.Neighborhood(2, 1)
	if nb.N() != 3 {
		t.Fatalf("1-neighborhood of path center: %d vertices, want 3", nb.N())
	}
	found := false
	for _, v := range orig {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("center missing from own neighborhood")
	}
}

func TestUnionEdges(t *testing.T) {
	a := []Edge{{0, 1}, {1, 2}}
	b := []Edge{{2, 1}, {3, 4}}
	u := UnionEdges(a, b)
	if len(u) != 3 {
		t.Fatalf("union size %d, want 3 (reversed duplicate must collapse)", len(u))
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges([]Label{5, 6}, []Edge{{0, 1}})
	if g.N() != 2 || g.M() != 1 || g.Label(0) != 5 {
		t.Fatal("FromEdges wrong")
	}
}

// Property: Build is idempotent w.r.t. edge insertion order and
// duplication.
func TestQuickBuildOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, NormEdge(V(rng.Intn(n)), V(rng.Intn(n))))
		}
		labels := make([]Label, n)
		for i := range labels {
			labels[i] = Label(rng.Intn(4))
		}
		g1 := FromEdges(labels, edges)
		// shuffled + duplicated edges
		edges2 := append(append([]Edge(nil), edges...), edges...)
		rng.Shuffle(len(edges2), func(i, j int) { edges2[i], edges2[j] = edges2[j], edges2[i] })
		g2 := FromEdges(labels, edges2)
		if g1.N() != g2.N() || g1.M() != g2.M() {
			return false
		}
		for v := 0; v < g1.N(); v++ {
			if g1.Degree(V(v)) != g2.Degree(V(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sum equals 2M.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			b.AddVertex(Label(rng.Intn(3)))
		}
		for i := 0; i < n; i++ {
			b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(V(v))
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges.
func TestQuickBFSEdgeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := NewBuilder(n, 2*n)
		for i := 0; i < n; i++ {
			b.AddVertex(0)
		}
		for i := 0; i < 2*n; i++ {
			b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
		}
		g := b.Build()
		d := g.BFSFrom(0)
		for _, e := range g.Edges() {
			du, dw := d[e.U], d[e.W]
			if du >= 0 && dw >= 0 {
				if du-dw > 1 || dw-du > 1 {
					return false
				}
			}
			if (du < 0) != (dw < 0) {
				return false // adjacent vertices must share reachability
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
