package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// randomGraph builds a random labeled graph through the normal Builder
// path (duplicates and self-loops included, which Build drops).
func randomGraph(rng *rand.Rand, n, tries int) *Graph {
	b := NewBuilder(n, tries)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(7)))
	}
	for i := 0; i < tries; i++ {
		b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
	}
	return b.Build()
}

// sameGraph asserts structural equality: labels, offsets, neighbors,
// edge count, and sketches — the full canonical Build output.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("decoded n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		if got.Label(V(v)) != want.Label(V(v)) {
			t.Fatalf("label of %d = %d, want %d", v, got.Label(V(v)), want.Label(V(v)))
		}
		gn, wn := got.Neighbors(V(v)), want.Neighbors(V(v))
		if len(gn) != len(wn) {
			t.Fatalf("degree of %d = %d, want %d", v, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] {
				t.Fatalf("neighbors of %d = %v, want %v", v, gn, wn)
			}
		}
		if got.sketches[v] != want.sketches[v] {
			t.Fatalf("sketch of %d differs", v)
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []*Graph{
		{}, // empty graph
		FromEdges([]Label{3}, nil),
		FromEdges([]Label{1, 2}, []Edge{{0, 1}}),
		FromEdges([]Label{-5, 0, 9}, []Edge{{0, 1}, {1, 2}, {0, 2}}),
	}
	for i := 0; i < 20; i++ {
		cases = append(cases, randomGraph(rng, 2+rng.Intn(60), rng.Intn(200)))
	}
	for i, g := range cases {
		enc := g.AppendBinary(nil)
		dec, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d (n=%d m=%d): decode: %v", i, g.N(), g.M(), err)
		}
		sameGraph(t, dec, g)
		// Re-encoding the decoded graph is byte-identical: the codec's
		// round-trip-exactness claim, bytes included.
		if re := dec.AppendBinary(nil); !bytes.Equal(re, enc) {
			t.Fatalf("case %d: re-encode differs (%d vs %d bytes)", i, len(re), len(enc))
		}
	}
}

func TestBinaryCodecAppendsToDst(t *testing.T) {
	g := FromEdges([]Label{1, 2}, []Edge{{0, 1}})
	prefix := []byte("hdr")
	out := g.AppendBinary(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendBinary must append to dst")
	}
	dec, err := DecodeBinary(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, dec, g)
}

func TestBinaryCodecRejectsCorruption(t *testing.T) {
	g := FromEdges([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
	enc := g.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XXXX"), enc[4:]...),
		"truncated":      enc[:len(enc)-1],
		"trailing bytes": append(append([]byte(nil), enc...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); !errors.Is(err, ErrBadCodec) {
			t.Errorf("%s: want ErrBadCodec, got %v", name, err)
		}
	}

	// Edge referencing a vertex past n.
	bad := []byte{'S', 'P', 'G', '1', 2, 1, 2, 4, 0, 5}
	if _, err := DecodeBinary(bad); !errors.Is(err, ErrBadCodec) {
		t.Errorf("out-of-range edge: want ErrBadCodec, got %v", err)
	}
	// Self-loop (u == w) violates canonical form.
	loop := []byte{'S', 'P', 'G', '1', 2, 1, 2, 4, 1, 1}
	if _, err := DecodeBinary(loop); !errors.Is(err, ErrBadCodec) {
		t.Errorf("self-loop edge: want ErrBadCodec, got %v", err)
	}
}
