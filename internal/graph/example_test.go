package graph_test

import (
	"fmt"
	"os"

	"repro/internal/graph"
)

// Example builds a small labeled graph and inspects it.
func Example() {
	b := graph.NewBuilder(3, 2)
	a := b.AddVertex(10)
	c := b.AddVertex(20)
	d := b.AddVertex(10)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	g := b.Build()

	fmt.Println(g.N(), "vertices,", g.M(), "edges")
	fmt.Println("degree of middle vertex:", g.Degree(c))
	fmt.Println("diameter:", g.Diameter())
	// Output:
	// 3 vertices, 2 edges
	// degree of middle vertex: 2
	// diameter: 2
}

// ExampleGraph_WriteLG shows the LG text serialization consumed by
// cmd/spidermine.
func ExampleGraph_WriteLG() {
	g := graph.FromEdges([]graph.Label{7, 8}, []graph.Edge{{U: 0, W: 1}})
	g.WriteLG(os.Stdout, "demo")
	// Output:
	// t # demo
	// v 0 7
	// v 1 8
	// e 0 1
}
