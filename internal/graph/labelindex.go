package graph

import "slices"

// Label index and neighbor-label frequency sketches.
//
// The index groups vertex ids by label in one flat array (labelVerts) with
// a map of per-label subslices, so the matcher can seed its root candidate
// set with exactly the vertices carrying the root's label instead of
// scanning all N host vertices.
//
// The sketch is a 64-bit SWAR counter array: 16 buckets of 4 bits, where
// bucket hash(l) holds the number of neighbors with label l, saturated at
// 7 (the fourth bit of each field is reserved so domination can be tested
// branch-free). A host vertex can only host a pattern vertex if its sketch
// dominates the pattern vertex's sketch bucket-wise; saturation makes the
// test conservative (false positives only), so it is a pure filter in
// front of the exact adjacency checks.

const (
	sketchBuckets = 16
	sketchMax     = 7 // per-bucket saturation (3 usable bits per field)
	// sketchHigh has the reserved top bit of each 4-bit field set.
	sketchHigh uint64 = 0x8888888888888888
)

// sketchBucket maps a label to its sketch bucket via a multiplicative
// hash, spreading adjacent label values across buckets.
func sketchBucket(l Label) uint {
	return uint(uint32(l)*2654435761) >> 28
}

// sketchAdd increments the bucket for label l, saturating at sketchMax.
func sketchAdd(s uint64, l Label) uint64 {
	shift := sketchBucket(l) * 4
	if (s>>shift)&0xf >= sketchMax {
		return s
	}
	return s + 1<<shift
}

// SketchDominates reports whether every bucket of host is >= the matching
// bucket of pat. Both operands must be sketches produced by this package
// (counts <= 7, top field bits clear). The test is the standard SWAR
// trick: borrow into the reserved bit of a field happens exactly when that
// field of host is smaller than pat's.
func SketchDominates(host, pat uint64) bool {
	// Setting the reserved bit makes every minuend field >= 8 > pat's
	// field, so subtraction never borrows across fields; the reserved bit
	// survives in exactly the fields where host >= pat.
	return ((host|sketchHigh)-pat)&sketchHigh == sketchHigh
}

// NeighborSketch returns the neighbor-label frequency sketch of v.
func (g *Graph) NeighborSketch(v V) uint64 { return g.sketches[v] }

// VerticesWithLabel returns the sorted vertex ids carrying label l. The
// returned slice is shared with the graph and must not be modified.
func (g *Graph) VerticesWithLabel(l Label) []V {
	g.ensureLabelIndex()
	return g.byLabel[l]
}

// LabelCount returns the number of vertices carrying label l.
func (g *Graph) LabelCount(l Label) int {
	g.ensureLabelIndex()
	return len(g.byLabel[l])
}

// ensureLabelIndex builds the label index on first use; safe for
// concurrent callers (graphs are immutable once built).
func (g *Graph) ensureLabelIndex() {
	g.labelOnce.Do(g.buildLabelIndex)
}

// buildLabelIndex populates numLabels, labelVerts and byLabel.
func (g *Graph) buildLabelIndex() {
	n := len(g.labels)
	g.labelVerts = make([]V, n)
	for i := range g.labelVerts {
		g.labelVerts[i] = V(i)
	}
	slices.SortFunc(g.labelVerts, func(a, b V) int {
		if g.labels[a] != g.labels[b] {
			return int(g.labels[a]) - int(g.labels[b])
		}
		return int(a) - int(b)
	})
	g.byLabel = make(map[Label][]V)
	for start := 0; start < n; {
		l := g.labels[g.labelVerts[start]]
		end := start + 1
		for end < n && g.labels[g.labelVerts[end]] == l {
			end++
		}
		g.byLabel[l] = g.labelVerts[start:end:end]
		start = end
	}
	g.numLabels = len(g.byLabel)
}
