//go:build linux || darwin

package graph

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy open path; platforms without it use
// the read-everything fallback in image.go.
const mmapSupported = true

// mmapBytes maps size bytes of f read-only. The mapping is page-aligned
// by construction, which is what lets the SPC1 sections alias as int32/
// uint64 slices.
func mmapBytes(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping obtained from mmapBytes.
func munmapBytes(b []byte) error { return syscall.Munmap(b) }

// madviseBytes forwards an access-pattern hint to the kernel.
// Best-effort: callers may ignore the error.
func madviseBytes(b []byte, a Advice) error {
	adv := syscall.MADV_NORMAL
	switch a {
	case AdviceRandom:
		adv = syscall.MADV_RANDOM
	case AdviceSequential:
		adv = syscall.MADV_SEQUENTIAL
	case AdviceWillNeed:
		adv = syscall.MADV_WILLNEED
	}
	return syscall.Madvise(b, adv)
}
