package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomTestGraph builds a deterministic pseudo-random graph (the graph
// package cannot import internal/gen — that would cycle).
func randomTestGraph(n, m, labels int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
	}
	return b.Build()
}

func imageTestGraphs() map[string]*Graph {
	return map[string]*Graph{
		"empty":    FromEdges(nil, nil),
		"lone":     FromEdges([]Label{7}, nil),
		"edge":     FromEdges([]Label{1, 2}, []Edge{{0, 1}}),
		"path":     FromEdges([]Label{1, 2, 3, 2}, []Edge{{0, 1}, {1, 2}, {2, 3}}),
		"triangle": FromEdges([]Label{5, 5, 5}, []Edge{{0, 1}, {1, 2}, {0, 2}}),
		"star":     FromEdges([]Label{0, 1, 1, 1, 1, 1}, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}),
		"random":   randomTestGraph(400, 1600, 12, 1),
		"random2":  randomTestGraph(1000, 5000, 3, 2),
	}
}

// sameImageGraph asserts got carries exactly want's content,
// reusing the codec tests' structural comparison and adding the
// label-universe check (mapped graphs build that index lazily).
func sameImageGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	sameGraph(t, got, want)
	if got.NumLabels() != want.NumLabels() {
		t.Fatalf("NumLabels = %d, want %d", got.NumLabels(), want.NumLabels())
	}
}

func TestImageRoundTrip(t *testing.T) {
	for name, g := range imageTestGraphs() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			nw, err := g.WriteImage(&buf)
			if err != nil {
				t.Fatalf("WriteImage: %v", err)
			}
			if nw != g.ImageSize() || int64(buf.Len()) != g.ImageSize() {
				t.Fatalf("wrote %d bytes (buffer %d), ImageSize says %d", nw, buf.Len(), g.ImageSize())
			}
			if app := g.AppendImage(nil); !bytes.Equal(app, buf.Bytes()) {
				t.Fatal("AppendImage differs from WriteImage")
			}
			g2, err := OpenImage(buf.Bytes())
			if err != nil {
				t.Fatalf("OpenImage: %v", err)
			}
			sameImageGraph(t, g, g2)
		})
	}
}

func TestImageTruncationErrors(t *testing.T) {
	g := imageTestGraphs()["random"]
	img := g.AppendImage(nil)
	for _, cut := range []int{0, 1, 4, 63, imageHeaderSize - 1, imageHeaderSize, imageHeaderSize + 5, len(img) / 2, len(img) - 1} {
		if _, err := OpenImage(img[:cut]); err == nil {
			t.Errorf("OpenImage accepted a %d-byte truncation of a %d-byte image", cut, len(img))
		} else if !errors.Is(err, ErrBadImage) {
			t.Errorf("truncation at %d: error %v does not wrap ErrBadImage", cut, err)
		}
	}
	// Trailing junk is truncation's sibling: the size must match exactly.
	if _, err := OpenImage(append(append([]byte(nil), img...), 0)); err == nil {
		t.Error("OpenImage accepted trailing bytes")
	}
}

func TestImageBitFlipsDetectedOrHarmless(t *testing.T) {
	g := imageTestGraphs()["path"]
	img := g.AppendImage(nil)
	for i := range img {
		for _, bit := range []byte{1, 0x80} {
			mut := append([]byte(nil), img...)
			mut[i] ^= bit
			g2, err := OpenImage(mut)
			if err != nil {
				continue // detected — the common case
			}
			// A flip that survives must be content-neutral (alignment
			// padding); anything else silently aliasing is a checksum hole.
			sameImageGraph(t, g, g2)
		}
	}
}

// sealImageHeader recomputes only the header checksum — used to craft
// images whose header is internally valid but lies about the payload.
func sealImageHeader(img []byte) {
	binary.LittleEndian.PutUint32(img[120:124], crc32.Checksum(img[:120], imageCRC))
}

// rehashImage recomputes the section checksums and the header checksum
// of img in place — the helper hostile-image tests use to produce
// checksum-valid images with invalid content.
func rehashImage(img []byte) {
	n := int(binary.LittleEndian.Uint64(img[8:16]))
	m := int(binary.LittleEndian.Uint64(img[16:24]))
	l := layoutFor(n, m)
	for i := 0; i < 4; i++ {
		sec := img[l.off[i] : l.off[i]+l.size[i]]
		binary.LittleEndian.PutUint32(img[24+24*i+16:], crc32.Checksum(sec, imageCRC))
	}
	binary.LittleEndian.PutUint32(img[120:124], crc32.Checksum(img[:120], imageCRC))
}

func TestImageHostileContentRejected(t *testing.T) {
	g := imageTestGraphs()["path"] // labels [1 2 3 2], edges 0-1 1-2 2-3
	base := g.AppendImage(nil)
	l := layoutFor(g.N(), g.M())
	off32 := func(sec int, idx int) int { return int(l.off[sec]) + 4*idx }
	mutate := func(name string, f func(img []byte)) {
		img := append([]byte(nil), base...)
		f(img)
		rehashImage(img)
		if _, err := OpenImage(img); err == nil {
			t.Errorf("%s: hostile image accepted", name)
		} else if !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: error %v does not wrap ErrBadImage", name, err)
		}
	}
	mutate("offsets decrease", func(img []byte) {
		binary.LittleEndian.PutUint32(img[off32(1, 2):], 0) // offs[2]=0 < offs[1]
	})
	mutate("offsets overshoot", func(img []byte) {
		binary.LittleEndian.PutUint32(img[off32(1, g.N()):], uint32(2*g.M()+4))
	})
	mutate("neighbor out of range", func(img []byte) {
		binary.LittleEndian.PutUint32(img[off32(2, 0):], uint32(g.N())+3)
	})
	mutate("negative neighbor", func(img []byte) {
		binary.LittleEndian.PutUint32(img[off32(2, 0):], ^uint32(0))
	})
	mutate("self-loop", func(img []byte) {
		binary.LittleEndian.PutUint32(img[off32(2, 0):], 0) // vertex 0's first neighbor := 0
	})
	mutate("unsorted duplicate neighbors", func(img []byte) {
		// vertex 1 has neighbors [0, 2]; make them [2, 2].
		binary.LittleEndian.PutUint32(img[off32(2, 1):], 2)
	})
	mutate("asymmetric adjacency", func(img []byte) {
		// vertex 0's neighbor list is [1]; point it at 3, which does not
		// list 0 back.
		binary.LittleEndian.PutUint32(img[off32(2, 0):], 3)
	})
	mutate("sketch mismatch", func(img []byte) {
		img[l.off[3]] ^= 1
	})
	mutate("non-canonical section placement", func(img []byte) {
		// Descriptor tampering: shift the neighbors section pointer.
		binary.LittleEndian.PutUint64(img[24+24*2:], uint64(l.off[2])+8)
	})
	// Dimension lie: bump n and re-seal only the header checksum —
	// rehashImage would trust the lied dimensions and slice out of range,
	// which is exactly what parseImageHeader must prevent OpenImage from
	// doing.
	lie := append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(lie[8:16], uint64(g.N()+1))
	sealImageHeader(lie)
	if _, err := OpenImage(lie); !errors.Is(err, ErrBadImage) {
		t.Errorf("dimension lie: got %v, want ErrBadImage", err)
	}
}

func TestOpenImageUnalignedInput(t *testing.T) {
	g := imageTestGraphs()["random"]
	img := g.AppendImage(nil)
	for shift := 1; shift < imageAlign; shift++ {
		buf := make([]byte, len(img)+shift)
		copy(buf[shift:], img)
		g2, err := OpenImage(buf[shift:])
		if err != nil {
			t.Fatalf("shift %d: %v", shift, err)
		}
		sameImageGraph(t, g, g2)
	}
}

func writeTempImage(t testing.TB, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.spc1")
	if err := WriteImageFile(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMappedFile(t *testing.T) {
	for name, g := range imageTestGraphs() {
		t.Run(name, func(t *testing.T) {
			path := writeTempImage(t, g)
			for _, open := range []struct {
				name string
				fn   func(string) (*Mapped, error)
			}{{"verified", OpenMapped}, {"trusted", OpenMappedTrusted}} {
				m, err := open.fn(path)
				if err != nil {
					t.Fatalf("%s: %v", open.name, err)
				}
				sameImageGraph(t, g, m.Graph())
				for _, a := range []Advice{AdviceSequential, AdviceRandom, AdviceWillNeed, AdviceNormal} {
					if err := m.Advise(a); err != nil {
						t.Fatalf("%s: Advise(%d): %v", open.name, a, err)
					}
				}
				if err := m.Close(); err != nil {
					t.Fatalf("%s: Close: %v", open.name, err)
				}
				if err := m.Close(); err != nil {
					t.Fatalf("%s: second Close: %v", open.name, err)
				}
			}
		})
	}
}

func TestOpenMappedRejectsCorruptFile(t *testing.T) {
	g := imageTestGraphs()["random"]
	img := g.AppendImage(nil)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.spc1")
	if err := os.WriteFile(bad, img[:len(img)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); err == nil {
		t.Fatal("OpenMapped accepted a truncated file")
	}
	if err := os.WriteFile(bad, []byte("SP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); !errors.Is(err, ErrBadImage) {
		t.Fatalf("tiny file: got %v, want ErrBadImage", err)
	}
	if _, err := OpenMapped(filepath.Join(dir, "absent.spc1")); err == nil {
		t.Fatal("OpenMapped accepted a missing file")
	}
}

// TestOpenMappedFallback drives the read-everything path directly (on
// mmap-capable platforms it is otherwise reached only when mmap fails),
// so the !mmap platforms' logic stays tested everywhere.
func TestOpenMappedFallback(t *testing.T) {
	g := imageTestGraphs()["random"]
	path := writeTempImage(t, g)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := openMappedFallback(f, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsMapped() {
		t.Fatal("fallback open claims to be mapped")
	}
	sameImageGraph(t, g, m.Graph())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	sameImageGraph(t, g, m.Graph()) // heap-backed: survives Close
}

// TestOpenMappedO1Alloc is the open-cost gate: opening an image — even
// with full verification, which is a streaming pass — performs a small
// constant number of allocations regardless of graph size, and leaves
// the lazy label index unbuilt.
func TestOpenMappedO1Alloc(t *testing.T) {
	small := randomTestGraph(200, 600, 8, 3)
	big := randomTestGraph(20000, 120000, 8, 4)
	const budget = 40 // file open + stat + mmap bookkeeping + the two structs
	for _, tc := range []struct {
		name string
		g    *Graph
	}{{"small", small}, {"big", big}} {
		path := writeTempImage(t, tc.g)
		for _, open := range []struct {
			name string
			fn   func(string) (*Mapped, error)
		}{{"verified", OpenMapped}, {"trusted", OpenMappedTrusted}} {
			allocs := testing.AllocsPerRun(10, func() {
				m, err := open.fn(path)
				if err != nil {
					t.Fatal(err)
				}
				if m.Graph().N() != tc.g.N() {
					t.Fatal("wrong graph")
				}
				m.Close()
			})
			if allocs > budget {
				t.Errorf("%s open of %s graph: %.0f allocs/op, budget %d", open.name, tc.name, allocs, budget)
			}
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		g := m.Graph()
		if g.byLabel != nil || g.labelVerts != nil {
			t.Error("open built the lazy label index")
		}
		if got := g.VerticesWithLabel(g.Label(0)); len(got) == 0 {
			t.Error("lazy label index unusable on mapped graph")
		}
		if g.byLabel == nil {
			t.Error("label index did not build on demand")
		}
		m.Close()
	}
}

// TestMappedCloneIsHeapBacked pins the Clone contract for mapped
// graphs: the clone deep-copies every array back to the heap, so it
// outlives Close.
func TestMappedCloneIsHeapBacked(t *testing.T) {
	g := imageTestGraphs()["random"]
	path := writeTempImage(t, g)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	clone := m.Graph().Clone()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	sameImageGraph(t, g, clone)
	if got := clone.VerticesWithLabel(clone.Label(0)); len(got) == 0 {
		t.Fatal("clone lost its labels")
	}
}

// TestMappedGraphMinesLikeBuilt is the package-local smoke version of
// the repo-root equivalence gate: matcher-relevant read paths agree
// between a mapped graph and its built twin.
func TestMappedGraphMinesLikeBuilt(t *testing.T) {
	g := randomTestGraph(300, 900, 5, 7)
	path := writeTempImage(t, g)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mg := m.Graph()
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if g.HasEdge(V(v), V(w)) != mg.HasEdge(V(v), V(w)) {
				t.Fatalf("HasEdge(%d,%d) disagrees", v, w)
			}
		}
	}
	for l := Label(0); l < 5; l++ {
		a, b := g.VerticesWithLabel(l), mg.VerticesWithLabel(l)
		if len(a) != len(b) {
			t.Fatalf("VerticesWithLabel(%d) length disagrees", l)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("VerticesWithLabel(%d)[%d] disagrees", l, i)
			}
		}
	}
	if g.MaxDegree() != mg.MaxDegree() || g.AvgDegree() != mg.AvgDegree() {
		t.Fatal("degree stats disagree")
	}
}

func TestAppendEdgesMatchesEdges(t *testing.T) {
	g := randomTestGraph(200, 800, 6, 9)
	want := g.Edges()
	buf := make([]Edge, 0, g.M())
	got := g.AppendEdges(buf[:0])
	if len(got) != len(want) {
		t.Fatalf("AppendEdges returned %d edges, Edges %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %v vs %v", i, got[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(10, func() {
		buf = g.AppendEdges(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendEdges into a sized buffer allocates %.0f/op", allocs)
	}
}
