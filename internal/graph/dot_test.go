package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := FromEdges([]Label{1, 2}, []Edge{{U: 0, W: 1}})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "p" {`, `n0 [label="0:1"]`, "n0 -- n1;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
