package graph

import (
	"io"
	"testing"
)

// benchImageGraph is sized so the open-cost benchmarks measure a host
// large enough that O(1) vs O(decode) is unambiguous, while keeping
// bench setup cheap.
func benchImageGraph() *Graph {
	return randomTestGraph(50000, 200000, 32, 42)
}

func BenchmarkWriteImage(b *testing.B) {
	g := benchImageGraph()
	b.SetBytes(g.ImageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.WriteImage(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenMapped measures the default verified open: mmap + one
// streaming validation pass, zero decode allocations.
func BenchmarkOpenMapped(b *testing.B) {
	g := benchImageGraph()
	path := writeTempImage(b, g)
	b.SetBytes(g.ImageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if m.Graph().N() != g.N() {
			b.Fatal("wrong graph")
		}
		m.Close()
	}
}

// BenchmarkOpenMappedTrusted measures the header-only O(1) open used
// for images this process (or the store's recovery fingerprint check)
// already verified.
func BenchmarkOpenMappedTrusted(b *testing.B) {
	g := benchImageGraph()
	path := writeTempImage(b, g)
	b.SetBytes(g.ImageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMappedTrusted(path)
		if err != nil {
			b.Fatal(err)
		}
		if m.Graph().N() != g.N() {
			b.Fatal("wrong graph")
		}
		m.Close()
	}
}

// BenchmarkDecodeBinary is the SPG1 baseline the mapped open is
// replacing for large hosts: varint delta decode through Builder.Build.
func BenchmarkDecodeBinary(b *testing.B) {
	g := benchImageGraph()
	enc := g.AppendBinary(nil)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, err := DecodeBinary(enc)
		if err != nil {
			b.Fatal(err)
		}
		if g2.N() != g.N() {
			b.Fatal("wrong graph")
		}
	}
}
