package graph

import "testing"

func TestEncodeDecodeEdgeLabels(t *testing.T) {
	labels := []Label{1, 2, 3}
	edges := []Edge{{0, 1}, {1, 2}}
	elabels := []Label{7, 8}
	enc, err := EncodeEdgeLabels(labels, edges, elabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if enc.N() != 5 || enc.M() != 4 {
		t.Fatalf("encoded: %v, want 5 vertices / 4 edges", enc)
	}
	// midpoints carry shifted labels
	if enc.Label(3) != EdgeLabelOffset+7 || enc.Label(4) != EdgeLabelOffset+8 {
		t.Fatal("midpoint labels wrong")
	}
	vl, de, dangling, err := DecodeEdgeLabels(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dangling != 0 {
		t.Fatalf("dangling %d", dangling)
	}
	if len(vl) != 3 || len(de) != 2 {
		t.Fatalf("decoded %d vertices, %d edges", len(vl), len(de))
	}
	for i, e := range de {
		if e.Label != elabels[i] {
			t.Fatalf("edge %d label %d, want %d", i, e.Label, elabels[i])
		}
	}
}

func TestEncodeEdgeLabelsErrors(t *testing.T) {
	if _, err := EncodeEdgeLabels([]Label{0}, []Edge{{0, 1}}, []Label{0}, 0); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := EncodeEdgeLabels([]Label{0}, []Edge{{0, 0}}, nil, 0); err == nil {
		t.Fatal("edge/label length mismatch accepted")
	}
	if _, err := EncodeEdgeLabels([]Label{EdgeLabelOffset + 1}, nil, nil, 0); err == nil {
		t.Fatal("colliding vertex label accepted")
	}
}

func TestDecodeEdgeLabelsDangling(t *testing.T) {
	// Encoded pattern ending on a half-edge: midpoint with one neighbor.
	b := NewBuilder(2, 1)
	b.AddVertex(1)
	b.AddVertex(EdgeLabelOffset + 5)
	b.AddEdge(0, 1)
	_, de, dangling, err := DecodeEdgeLabels(b.Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(de) != 0 || dangling != 1 {
		t.Fatalf("edges %d dangling %d", len(de), dangling)
	}
}

func TestDecodeEdgeLabelsRejectsMalformed(t *testing.T) {
	// Two original vertices adjacent: not an encoded graph.
	g := FromEdges([]Label{1, 2}, []Edge{{0, 1}})
	if _, _, _, err := DecodeEdgeLabels(g, 0); err == nil {
		t.Fatal("malformed graph accepted")
	}
	// Midpoint adjacent to midpoint.
	b := NewBuilder(2, 1)
	b.AddVertex(EdgeLabelOffset + 1)
	b.AddVertex(EdgeLabelOffset + 2)
	b.AddEdge(0, 1)
	if _, _, _, err := DecodeEdgeLabels(b.Build(), 0); err == nil {
		t.Fatal("midpoint-midpoint edge accepted")
	}
	// Midpoint of degree 3.
	b2 := NewBuilder(4, 3)
	b2.AddVertex(1)
	b2.AddVertex(1)
	b2.AddVertex(1)
	b2.AddVertex(EdgeLabelOffset)
	b2.AddEdge(0, 3)
	b2.AddEdge(1, 3)
	b2.AddEdge(2, 3)
	if _, _, _, err := DecodeEdgeLabels(b2.Build(), 0); err == nil {
		t.Fatal("degree-3 midpoint accepted")
	}
}
