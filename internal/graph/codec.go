package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Versioned binary codec for CSR graphs — the wire form the durable
// store (internal/store) persists uploaded hosts in. The encoding
// covers exactly the canonical content Builder.Build produces (vertex
// count, edge count, label sequence, sorted deduped U<W edge list), so
// Decode(Encode(g)) rebuilds a graph byte-identical to the original
// Build output: same CSR layout, same sketches, same fingerprint.
//
// Layout (integers varint-encoded unless noted):
//
//	"SPG1" magic (4 raw bytes)
//	uvarint n, uvarint m
//	n zigzag-varint labels
//	m edges, sorted (U, W) with U < W, delta-encoded:
//	  uvarint dU = U - prevU; then uvarint W if dU > 0 (new row),
//	  else uvarint dW = W - prevW (same row, strictly ascending)
//
// The format is versioned by the magic: any change to the field set or
// encoding must introduce a new magic so stale blobs can never decode
// under a different interpretation.

// codecMagic identifies version 1 of the binary graph encoding.
var codecMagic = [4]byte{'S', 'P', 'G', '1'}

// ErrBadCodec reports bytes that are not a valid encoded graph —
// unknown magic, truncated input, or an edge list violating the
// canonical sort invariant.
var ErrBadCodec = errors.New("graph: bad binary encoding")

// AppendBinary appends the graph's binary encoding to dst and returns
// the extended slice.
func (g *Graph) AppendBinary(dst []byte) []byte {
	dst = append(dst, codecMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(g.N()))
	dst = binary.AppendUvarint(dst, uint64(g.M()))
	for _, l := range g.labels {
		dst = binary.AppendVarint(dst, int64(l))
	}
	prevU, prevW := V(0), V(0)
	for u := 0; u < len(g.labels); u++ {
		for _, w := range g.Neighbors(V(u)) {
			if w <= V(u) {
				continue
			}
			dU := V(u) - prevU
			dst = binary.AppendUvarint(dst, uint64(dU))
			if dU > 0 {
				dst = binary.AppendUvarint(dst, uint64(w))
			} else {
				dst = binary.AppendUvarint(dst, uint64(w-prevW))
			}
			prevU, prevW = V(u), w
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *Graph) MarshalBinary() ([]byte, error) { return g.AppendBinary(nil), nil }

// DecodeBinary rebuilds a graph from its binary encoding, validating
// every structural invariant (vertex bounds, U < W, strict canonical
// edge order — which rules out duplicates) before constructing the CSR
// through the same Builder.Build path an upload takes, so the decoded
// graph is byte-identical to the originally built one.
func DecodeBinary(data []byte) (*Graph, error) {
	if len(data) < len(codecMagic) || [4]byte(data[:4]) != codecMagic {
		return nil, fmt.Errorf("%w: missing %q magic", ErrBadCodec, codecMagic)
	}
	p := data[4:]
	readUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(p)
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadCodec)
		}
		p = p[w:]
		return v, nil
	}
	n64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	m64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	const maxGraphDim = 1 << 31
	if n64 > maxGraphDim || m64 > maxGraphDim {
		return nil, fmt.Errorf("%w: implausible dimensions n=%d m=%d", ErrBadCodec, n64, m64)
	}
	n, m := int(n64), int(m64)
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		l, w := binary.Varint(p)
		if w <= 0 {
			return nil, fmt.Errorf("%w: truncated label sequence", ErrBadCodec)
		}
		p = p[w:]
		b.AddVertex(Label(l))
	}
	prevU, prevW := -1, -1
	for i := 0; i < m; i++ {
		dU, err := readUvarint()
		if err != nil {
			return nil, err
		}
		var u, w int
		if prevU < 0 {
			u = int(dU)
		} else {
			u = prevU + int(dU)
		}
		x, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if dU > 0 || prevU < 0 {
			w = int(x)
		} else {
			if x == 0 {
				return nil, fmt.Errorf("%w: duplicate edge at index %d", ErrBadCodec, i)
			}
			w = prevW + int(x)
		}
		if u >= n || w >= n || u < 0 || w < 0 || u >= w {
			return nil, fmt.Errorf("%w: edge (%d, %d) out of canonical form", ErrBadCodec, u, w)
		}
		b.AddEdge(V(u), V(w))
		prevU, prevW = u, w
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCodec, len(p))
	}
	g := b.Build()
	if g.M() != m {
		// Unreachable given the validation above; kept as a backstop so a
		// codec bug can never silently alias two different graphs.
		return nil, fmt.Errorf("%w: edge count mismatch after build (%d != %d)", ErrBadCodec, g.M(), m)
	}
	return g, nil
}
