package graph

// BFSFrom runs a breadth-first search from src and returns the distance of
// every vertex from src; unreachable vertices get -1.
func (g *Graph) BFSFrom(src V) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= g.N() || src < 0 {
		return dist
	}
	dist[src] = 0
	queue := []V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSWithin returns the set of vertices within distance r of src
// (including src itself) along with their distances. It stops expanding at
// depth r, so cost is proportional to the r-neighborhood, not the graph.
func (g *Graph) BFSWithin(src V, r int) map[V]int {
	dist := map[V]int{src: 0}
	frontier := []V{src}
	for depth := 0; depth < r && len(frontier) > 0; depth++ {
		var next []V
		for _, v := range frontier {
			for _, w := range g.adj[v] {
				if _, ok := dist[w]; !ok {
					dist[w] = depth + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Eccentricity returns the maximum shortest-path distance from v to any
// vertex reachable from v. Returns 0 for isolated vertices.
func (g *Graph) Eccentricity(v V) int {
	dist := g.BFSFrom(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the diameter of the graph: the maximum eccentricity over
// all vertices. Disconnected graphs report the maximum diameter over
// components (distances across components are ignored). O(N·(N+M)); meant
// for patterns and test graphs, not massive inputs — use
// EffectiveDiameter for those.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(V(v)); e > diam {
			diam = e
		}
	}
	return diam
}

// RadiusFrom reports whether every vertex of the graph is within distance r
// of v, i.e. whether the graph is "r-bounded from v" in the paper's sense.
// Disconnected graphs are never r-bounded.
func (g *Graph) RadiusFrom(v V, r int) bool {
	dist := g.BFSFrom(v)
	for _, d := range dist {
		if d < 0 || d > r {
			return false
		}
	}
	return true
}

// EffectiveDiameter estimates the q-quantile (e.g. 0.9 for the "90th
// percentile distance" the paper cites for DBLP) of pairwise distances by
// sampling BFS from up to sample source vertices, visiting sources in a
// fixed stride so the estimate is deterministic.
func (g *Graph) EffectiveDiameter(q float64, sample int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sample <= 0 || sample > n {
		sample = n
	}
	stride := n / sample
	if stride == 0 {
		stride = 1
	}
	var dists []int
	for v := 0; v < n; v += stride {
		for _, d := range g.BFSFrom(V(v)) {
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	// Counting sort: distances are small integers.
	maxD := 0
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for _, d := range dists {
		counts[d]++
	}
	target := int(q * float64(len(dists)))
	if target >= len(dists) {
		target = len(dists) - 1
	}
	cum := 0
	for d, c := range counts {
		cum += c
		if cum > target {
			return d
		}
	}
	return maxD
}

// ConnectedComponents returns a component id per vertex and the number of
// components. Component ids are assigned in order of lowest contained
// vertex.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = count
		queue := []V{V(v)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph counts as connected).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}
