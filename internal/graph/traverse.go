package graph

import "sync"

// bfsScratch holds reusable BFS state. Eccentricity and Diameter run on
// every boundary vertex of every growth step, so allocating dist+queue per
// call dominated whole-pipeline profiles; a pool keeps steady-state BFS
// allocation-free.
type bfsScratch struct {
	dist  []int32
	queue []V
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

func (s *bfsScratch) reset(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]V, 0, n)
	}
	s.dist = s.dist[:n]
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.queue = s.queue[:0]
}

// bfs runs a BFS from src into the scratch's dist array (-1 = unreached)
// and returns the maximum distance reached.
func (g *Graph) bfs(s *bfsScratch, src V) int32 {
	s.reset(g.N())
	s.dist[src] = 0
	s.queue = append(s.queue, src)
	var ecc int32
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		dv := s.dist[v]
		for _, w := range g.nbrs[g.offs[v]:g.offs[v+1]] {
			if s.dist[w] < 0 {
				s.dist[w] = dv + 1
				s.queue = append(s.queue, w)
			}
		}
		ecc = dv
	}
	return ecc
}

// BFSFrom runs a breadth-first search from src and returns the distance of
// every vertex from src; unreachable vertices get -1.
func (g *Graph) BFSFrom(src V) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= g.N() || src < 0 {
		return dist
	}
	s := bfsPool.Get().(*bfsScratch)
	g.bfs(s, src)
	for i, d := range s.dist {
		dist[i] = int(d)
	}
	bfsPool.Put(s)
	return dist
}

// AppendAtDistance appends to dst the vertices at exactly distance d from
// src, in ascending vertex order, and returns the extended slice. The BFS
// state is pooled, so steady-state calls allocate only if dst must grow —
// this is the growth loop's boundary computation (pattern.AppendBoundary).
func (g *Graph) AppendAtDistance(dst []V, src V, d int) []V {
	if int(src) >= g.N() || src < 0 {
		return dst
	}
	s := bfsPool.Get().(*bfsScratch)
	g.bfs(s, src)
	for v, dv := range s.dist {
		if int(dv) == d {
			dst = append(dst, V(v))
		}
	}
	bfsPool.Put(s)
	return dst
}

// BFSWithin returns the set of vertices within distance r of src
// (including src itself) along with their distances. It stops expanding at
// depth r, so cost is proportional to the r-neighborhood, not the graph.
func (g *Graph) BFSWithin(src V, r int) map[V]int {
	dist := map[V]int{src: 0}
	frontier := []V{src}
	for depth := 0; depth < r && len(frontier) > 0; depth++ {
		var next []V
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if _, ok := dist[w]; !ok {
					dist[w] = depth + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Eccentricity returns the maximum shortest-path distance from v to any
// vertex reachable from v. Returns 0 for isolated vertices.
func (g *Graph) Eccentricity(v V) int {
	if int(v) >= g.N() || v < 0 {
		return 0
	}
	s := bfsPool.Get().(*bfsScratch)
	ecc := g.bfs(s, v)
	bfsPool.Put(s)
	return int(ecc)
}

// Diameter returns the diameter of the graph: the maximum eccentricity over
// all vertices. Disconnected graphs report the maximum diameter over
// components (distances across components are ignored). O(N·(N+M)); meant
// for patterns and test graphs, not massive inputs — use
// EffectiveDiameter for those.
func (g *Graph) Diameter() int {
	s := bfsPool.Get().(*bfsScratch)
	var diam int32
	for v := 0; v < g.N(); v++ {
		if e := g.bfs(s, V(v)); e > diam {
			diam = e
		}
	}
	bfsPool.Put(s)
	return int(diam)
}

// RadiusFrom reports whether every vertex of the graph is within distance r
// of v, i.e. whether the graph is "r-bounded from v" in the paper's sense.
// Disconnected graphs are never r-bounded.
func (g *Graph) RadiusFrom(v V, r int) bool {
	if g.N() == 0 {
		return true
	}
	if int(v) >= g.N() || v < 0 {
		return false
	}
	s := bfsPool.Get().(*bfsScratch)
	ecc := g.bfs(s, v)
	reached := len(s.queue)
	bfsPool.Put(s)
	return reached == g.N() && int(ecc) <= r
}

// EffectiveDiameter estimates the q-quantile (e.g. 0.9 for the "90th
// percentile distance" the paper cites for DBLP) of pairwise distances by
// sampling BFS from up to sample source vertices, visiting sources in a
// fixed stride so the estimate is deterministic.
func (g *Graph) EffectiveDiameter(q float64, sample int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sample <= 0 || sample > n {
		sample = n
	}
	stride := n / sample
	if stride == 0 {
		stride = 1
	}
	var dists []int
	for v := 0; v < n; v += stride {
		for _, d := range g.BFSFrom(V(v)) {
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	// Counting sort: distances are small integers.
	maxD := 0
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for _, d := range dists {
		counts[d]++
	}
	target := int(q * float64(len(dists)))
	if target >= len(dists) {
		target = len(dists) - 1
	}
	cum := 0
	for d, c := range counts {
		cum += c
		if cum > target {
			return d
		}
	}
	return maxD
}

// ConnectedComponents returns a component id per vertex and the number of
// components. Component ids are assigned in order of lowest contained
// vertex.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = count
		queue := []V{V(v)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph counts as connected).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	s := bfsPool.Get().(*bfsScratch)
	g.bfs(s, 0)
	reached := len(s.queue)
	bfsPool.Put(s)
	return reached == n
}

// DiameterAtMost reports whether Diameter() <= d, but exits early: the
// per-source eccentricity scan aborts on the first vertex exceeding d, and
// a connected graph whose first eccentricity e satisfies 2e <= d is
// accepted after a single BFS (all pairwise distances are at most 2e by
// the triangle inequality). Merge and growth checks only ever need the
// threshold comparison, never the exact diameter.
func (g *Graph) DiameterAtMost(d int) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	s := bfsPool.Get().(*bfsScratch)
	ok := true
	for v := 0; v < n; v++ {
		ecc := g.bfs(s, V(v))
		if int(ecc) > d {
			ok = false
			break
		}
		if v == 0 && 2*int(ecc) <= d && len(s.queue) == n {
			break
		}
	}
	bfsPool.Put(s)
	return ok
}
