package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph fuzzes the LG text-format round trip: any input ReadLG
// accepts must survive WriteLG → ReadLG with an identical graph (labels,
// edge set, CSR layout) and name. The seed corpus in
// testdata/fuzz/FuzzReadGraph covers the directive grammar; the fuzzer
// mutates from there.
func FuzzReadGraph(f *testing.F) {
	f.Add("t # tiny\nv 0 1\nv 1 2\ne 0 1\n")
	f.Add("v 0 0\n")
	f.Add("t # name with spaces\nv 0 -3\nv 1 7\nv 2 7\ne 0 1\ne 1 2\ne 0 2\n")
	f.Add("# comment\n\nv 0 5\nv 1 5\ne 0 1 99\n") // trailing edge label dropped
	f.Add("t # dup\nv 0 1\nv 1 1\ne 0 1\ne 1 0\ne 0 0\n")
	f.Add("x unknown directive\nv 0 2\n")
	f.Add("t # dup-id\nv 0 1\nv 1 2\nv 0 3\ne 0 1\n")    // duplicate vertex id: must error, not merge
	f.Add("t # dangling\nv 0 1\nv 1 1\ne 1 7\ne -2 0\n") // edges against undefined vertices: must error
	f.Add("t # one\nv 0 1\nt # two\nv 1 1\ne 0 1\n")     // second graph header: must error, not concatenate
	f.Fuzz(func(t *testing.T, in string) {
		g, name, err := ReadLG(strings.NewReader(in))
		if err != nil {
			t.Skip() // malformed input is allowed to fail; crashes are not
		}
		var buf bytes.Buffer
		if err := g.WriteLG(&buf, name); err != nil {
			t.Fatalf("WriteLG failed on parsed graph: %v", err)
		}
		g2, name2, err := ReadLG(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written graph failed: %v\nwritten:\n%s", err, buf.String())
		}
		if name2 != name {
			t.Fatalf("name round-trip: %q -> %q", name, name2)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("shape round-trip: (n=%d m=%d) -> (n=%d m=%d)", g.N(), g.M(), g2.N(), g2.M())
		}
		for v := 0; v < g.N(); v++ {
			if g.Label(V(v)) != g2.Label(V(v)) {
				t.Fatalf("label round-trip at %d: %d -> %d", v, g.Label(V(v)), g2.Label(V(v)))
			}
		}
		e1, e2 := g.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("edge round-trip at %d: %v -> %v", i, e1[i], e2[i])
			}
		}
	})
}
