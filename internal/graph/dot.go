package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes the graph in Graphviz DOT format, one node per vertex
// labeled "v<id>:<label>". Handy for eyeballing mined patterns:
//
//	spidermine -in g.lg -dot | dot -Tsvg > patterns.svg
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(bw, "  n%d [label=\"%d:%d\"];\n", v, v, g.Label(V(v))); err != nil {
			return err
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, x := range g.Neighbors(V(u)) {
			if V(u) < x {
				if _, err := fmt.Fprintf(bw, "  n%d -- n%d;\n", u, x); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
