package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzOpenImage is the hostile-image gate: for arbitrary bytes,
// OpenImage either returns an error or a graph that is fully usable —
// it never panics, never reads out of bounds (the race/checkptr CI jobs
// run this corpus), and any graph it accepts survives a traversal and
// re-images to bytes that open to the same content.
func FuzzOpenImage(f *testing.F) {
	small := FromEdges([]Label{1, 2, 3, 2}, []Edge{{0, 1}, {1, 2}, {2, 3}})
	valid := small.AppendImage(nil)
	f.Add([]byte(nil))
	f.Add(valid)                                  // well-formed
	f.Add(FromEdges(nil, nil).AppendImage(nil))   // well-formed, empty
	f.Add(valid[:16])                             // truncated header
	f.Add(valid[:imageHeaderSize])                // header only, missing sections
	f.Add(valid[:len(valid)-3])                   // truncated final section
	f.Add(append(bytes.Clone(valid), 0, 0, 0, 0)) // trailing junk
	f.Add(append([]byte("SPG1"), valid[4:]...))   // wrong magic (the codec's)
	f.Add(bytes.Clone(valid[:4]))                 // magic alone

	// Misaligned-section descriptor: shift the neighbors section offset
	// and re-seal the header checksum so only the canonical-layout check
	// can catch it.
	mis := bytes.Clone(valid)
	off := binary.LittleEndian.Uint64(mis[24+24*2:])
	binary.LittleEndian.PutUint64(mis[24+24*2:], off+4)
	sealImageHeader(mis)
	f.Add(mis)

	// Bad section checksum: flip a payload byte, leave checksums alone.
	bad := bytes.Clone(valid)
	bad[imageHeaderSize] ^= 0xff
	f.Add(bad)

	// Dimension lies with a valid header checksum.
	huge := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<40)
	sealImageHeader(huge)
	f.Add(huge)
	negm := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(negm[16:24], ^uint64(0))
	sealImageHeader(negm)
	f.Add(negm)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := OpenImage(data)
		if err != nil {
			return
		}
		// Accepted: the graph must be internally consistent and usable.
		edges := 0
		for v := 0; v < g.N(); v++ {
			_ = g.Label(V(v))
			_ = g.NeighborSketch(V(v))
			for _, w := range g.Neighbors(V(v)) {
				if !g.HasEdge(w, V(v)) {
					t.Fatalf("asymmetric edge (%d,%d) in accepted image", v, w)
				}
				if V(v) < w {
					edges++
				}
			}
		}
		if edges != g.M() {
			t.Fatalf("M()=%d but CSR holds %d edges", g.M(), edges)
		}
		if g.NumLabels() < 0 || g.NumLabels() > g.N() {
			t.Fatalf("NumLabels %d out of range for n=%d", g.NumLabels(), g.N())
		}
		// Round-trip: re-imaging an accepted graph must produce an image
		// that opens to identical content.
		img2 := g.AppendImage(nil)
		g2, err := OpenImage(img2)
		if err != nil {
			t.Fatalf("re-image of accepted graph rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("re-image changed shape: (%d,%d) vs (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
		_ = g.Clone()
	})
}
