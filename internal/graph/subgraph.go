package graph

import "sort"

// Induced returns the subgraph of g induced by the given vertices, plus the
// mapping from new vertex ids to original ids. Duplicate vertices in the
// input are collapsed. New ids follow the sorted order of the originals so
// the operation is deterministic.
func (g *Graph) Induced(vertices []V) (*Graph, []V) {
	uniq := append([]V(nil), vertices...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	out := uniq[:0]
	var prev V = -1
	for _, v := range uniq {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	uniq = out

	index := make(map[V]V, len(uniq))
	for i, v := range uniq {
		index[v] = V(i)
	}
	b := NewBuilder(len(uniq), len(uniq)*2)
	for _, v := range uniq {
		b.AddVertex(g.Label(v))
	}
	for _, v := range uniq {
		for _, w := range g.adj[v] {
			if v < w {
				if j, ok := index[w]; ok {
					b.AddEdge(index[v], j)
				}
			}
		}
	}
	return b.Build(), uniq
}

// SubgraphOfEdges builds the subgraph of g containing exactly the given
// edges (in original vertex ids) and their endpoints. Returns the subgraph
// and the new→original vertex mapping.
func (g *Graph) SubgraphOfEdges(edges []Edge) (*Graph, []V) {
	seen := make(map[V]struct{})
	for _, e := range edges {
		seen[e.U] = struct{}{}
		seen[e.W] = struct{}{}
	}
	verts := make([]V, 0, len(seen))
	for v := range seen {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	index := make(map[V]V, len(verts))
	for i, v := range verts {
		index[v] = V(i)
	}
	b := NewBuilder(len(verts), len(edges))
	for _, v := range verts {
		b.AddVertex(g.Label(v))
	}
	for _, e := range edges {
		b.AddEdge(index[e.U], index[e.W])
	}
	return b.Build(), verts
}

// Neighborhood returns the subgraph induced by all vertices within distance
// r of v, plus the new→original mapping; the image of v is always new
// vertex index findable via the mapping.
func (g *Graph) Neighborhood(v V, r int) (*Graph, []V) {
	dist := g.BFSWithin(v, r)
	verts := make([]V, 0, len(dist))
	for u := range dist {
		verts = append(verts, u)
	}
	return g.Induced(verts)
}

// Union returns the union graph of two subgraph vertex/edge sets drawn from
// the same host graph, expressed as host edges; endpoints are implied.
// Used when merging overlapping pattern embeddings.
func UnionEdges(a, b []Edge) []Edge {
	seen := make(map[Edge]struct{}, len(a)+len(b))
	out := make([]Edge, 0, len(a)+len(b))
	for _, e := range a {
		ne := NormEdge(e.U, e.W)
		if _, ok := seen[ne]; !ok {
			seen[ne] = struct{}{}
			out = append(out, ne)
		}
	}
	for _, e := range b {
		ne := NormEdge(e.U, e.W)
		if _, ok := seen[ne]; !ok {
			seen[ne] = struct{}{}
			out = append(out, ne)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].W < out[j].W
	})
	return out
}
