package graph

import "slices"

// Induced returns the subgraph of g induced by the given vertices, plus the
// mapping from new vertex ids to original ids. Duplicate vertices in the
// input are collapsed. New ids follow the sorted order of the originals so
// the operation is deterministic.
func (g *Graph) Induced(vertices []V) (*Graph, []V) {
	uniq := append([]V(nil), vertices...)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)

	index := make(map[V]V, len(uniq))
	for i, v := range uniq {
		index[v] = V(i)
	}
	b := NewBuilder(len(uniq), len(uniq)*2)
	for _, v := range uniq {
		b.AddVertex(g.Label(v))
	}
	for _, v := range uniq {
		for _, w := range g.Neighbors(v) {
			if v < w {
				if j, ok := index[w]; ok {
					b.AddEdge(index[v], j)
				}
			}
		}
	}
	return b.Build(), uniq
}

// SubgraphOfEdges builds the subgraph of g containing exactly the given
// edges (in original vertex ids) and their endpoints. Returns the subgraph
// and the new→original vertex mapping.
func (g *Graph) SubgraphOfEdges(edges []Edge) (*Graph, []V) {
	verts := make([]V, 0, 2*len(edges))
	for _, e := range edges {
		verts = append(verts, e.U, e.W)
	}
	slices.Sort(verts)
	verts = slices.Compact(verts)
	b := NewBuilder(len(verts), len(edges))
	for _, v := range verts {
		b.AddVertex(g.Label(v))
	}
	for _, e := range edges {
		u, _ := slices.BinarySearch(verts, e.U)
		w, _ := slices.BinarySearch(verts, e.W)
		b.AddEdge(V(u), V(w))
	}
	return b.Build(), verts
}

// Neighborhood returns the subgraph induced by all vertices within distance
// r of v, plus the new→original mapping; the image of v is always new
// vertex index findable via the mapping.
func (g *Graph) Neighborhood(v V, r int) (*Graph, []V) {
	dist := g.BFSWithin(v, r)
	verts := make([]V, 0, len(dist))
	for u := range dist {
		verts = append(verts, u)
	}
	return g.Induced(verts)
}

// SubgraphOfEdgesInto is SubgraphOfEdges over caller-owned scratch: verts
// (reused, returned grown) collects the endpoint set and b builds the
// subgraph (Reset internally). The returned vertex slice aliases the
// scratch — callers that retain the mapping must copy it; the Graph itself
// is freshly built and independent.
func (g *Graph) SubgraphOfEdgesInto(edges []Edge, verts []V, b *Builder) (*Graph, []V) {
	verts = verts[:0]
	for _, e := range edges {
		verts = append(verts, e.U, e.W)
	}
	slices.Sort(verts)
	verts = slices.Compact(verts)
	b.Reset(len(verts), len(edges))
	for _, v := range verts {
		b.AddVertex(g.Label(v))
	}
	for _, e := range edges {
		u, _ := slices.BinarySearch(verts, e.U)
		w, _ := slices.BinarySearch(verts, e.W)
		b.AddEdge(V(u), V(w))
	}
	return b.Build(), verts
}

// Union returns the union graph of two subgraph vertex/edge sets drawn from
// the same host graph, expressed as host edges; endpoints are implied.
// Used when merging overlapping pattern embeddings.
func UnionEdges(a, b []Edge) []Edge {
	return AppendUnionEdges(make([]Edge, 0, len(a)+len(b)), a, b)
}

// AppendUnionEdges is UnionEdges into caller-owned scratch: the normalized,
// sorted, deduplicated union of a and b is appended to dst (usually
// dst[:0] of a reused buffer) and returned.
func AppendUnionEdges(dst []Edge, a, b []Edge) []Edge {
	base := len(dst)
	for _, e := range a {
		dst = append(dst, NormEdge(e.U, e.W))
	}
	for _, e := range b {
		dst = append(dst, NormEdge(e.U, e.W))
	}
	out := dst[base:]
	slices.SortFunc(out, cmpEdge)
	return dst[:base+len(slices.Compact(out))]
}

func cmpEdge(a, b Edge) int {
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.W) - int(b.W)
}
