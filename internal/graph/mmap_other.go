//go:build !(linux || darwin)

package graph

import (
	"errors"
	"os"
)

// mmapSupported is false here: OpenMapped reads the whole image onto the
// heap instead (same validation, same graph, no aliasing) — the
// read-everything fallback for platforms without a usable mmap.
const mmapSupported = false

var errNoMmap = errors.New("graph: mmap not supported on this platform")

func mmapBytes(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapBytes(b []byte) error { return nil }

func madviseBytes(b []byte, a Advice) error { return nil }
