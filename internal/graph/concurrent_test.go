package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLabelIndexConcurrentFirstUse hammers the lazily-built label index
// from many goroutines at once — the exact access pattern the parallel
// mining engine produces when per-worker matchers share one host graph.
// Under -race this is the regression net for the sync.Once guarding
// buildLabelIndex; the value checks catch torn or duplicated index state.
func TestLabelIndexConcurrentFirstUse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder(2000, 6000)
	for i := 0; i < 2000; i++ {
		b.AddVertex(Label(rng.Intn(40)))
	}
	for i := 0; i < 6000; i++ {
		b.AddEdge(V(rng.Intn(2000)), V(rng.Intn(2000)))
	}
	g := b.Build()

	// Reference index from an identical graph, built sequentially.
	ref := g.Clone()
	wantCounts := make(map[Label]int)
	for l := Label(0); l < 40; l++ {
		wantCounts[l] = ref.LabelCount(l)
	}
	wantLabels := ref.NumLabels()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for l := Label(0); l < 40; l++ {
				if got := g.LabelCount(l); got != wantCounts[l] {
					errs <- "LabelCount mismatch"
					return
				}
				vs := g.VerticesWithLabel(l)
				if len(vs) != wantCounts[l] {
					errs <- "VerticesWithLabel length mismatch"
					return
				}
				for j, v := range vs {
					if g.Label(v) != l || (j > 0 && vs[j-1] >= v) {
						errs <- "VerticesWithLabel unsorted or mislabeled"
						return
					}
				}
			}
			if g.NumLabels() != wantLabels {
				errs <- "NumLabels mismatch"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
