// Package graph provides the labeled undirected graph substrate used by
// SpiderMine and all baseline miners. Graphs are immutable once built;
// construct them with a Builder. Vertices are dense int32 identifiers and
// carry an integer Label. Adjacency lists are kept sorted so that edge
// membership tests are O(log d).
package graph

import (
	"fmt"
	"sort"
)

// V is a vertex identifier. Vertices of a graph with n vertices are
// numbered 0..n-1.
type V = int32

// Label is a vertex label. Labeled graph isomorphism (Definition 1 of the
// paper) requires mapped vertices to share labels.
type Label int32

// Edge is an undirected edge between two vertices. The zero vertex is a
// valid endpoint; callers should keep U <= W when using Edge as a map key
// (see NormEdge).
type Edge struct {
	U, W V
}

// NormEdge returns the edge with endpoints ordered so that U <= W, making
// it usable as a canonical map key for undirected edges.
func NormEdge(u, w V) Edge {
	if u > w {
		u, w = w, u
	}
	return Edge{u, w}
}

// Graph is an immutable vertex-labeled undirected simple graph.
//
// The zero value is the empty graph. Use a Builder to construct non-empty
// graphs.
type Graph struct {
	labels []Label
	adj    [][]V
	m      int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v V) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v V) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v V) []V { return g.adj[v] }

// HasEdge reports whether the undirected edge {u, w} exists.
func (g *Graph) HasEdge(u, w V) bool {
	if int(u) >= len(g.adj) || int(w) >= len(g.adj) || u < 0 || w < 0 {
		return false
	}
	a := g.adj[u]
	if len(g.adj[w]) < len(a) {
		a = g.adj[w]
		u, w = w, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= w })
	return i < len(a) && a[i] == w
}

// Edges returns all edges with U < W, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if V(u) < w {
				out = append(out, Edge{V(u), w})
			}
		}
	}
	return out
}

// MaxDegree returns the maximum vertex degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree (2M/N), or 0 for the empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// NumLabels returns the number of distinct labels present in the graph.
func (g *Graph) NumLabels() int {
	seen := make(map[Label]struct{})
	for _, l := range g.labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// String returns a short human-readable summary such as
// "graph{n=400 m=1398 labels=70}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d labels=%d}", g.N(), g.M(), g.NumLabels())
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	labels := make([]Label, len(g.labels))
	copy(labels, g.labels)
	adj := make([][]V, len(g.adj))
	for i, a := range g.adj {
		adj[i] = append([]V(nil), a...)
	}
	return &Graph{labels: labels, adj: adj, m: g.m}
}

// Builder constructs graphs incrementally. It tolerates duplicate and
// self-loop edge insertions (both are dropped at Build time), which keeps
// random generators simple.
type Builder struct {
	labels []Label
	edges  []Edge
}

// NewBuilder returns a Builder with capacity hints for n vertices and m
// edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		labels: make([]Label, 0, n),
		edges:  make([]Edge, 0, m),
	}
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) V {
	b.labels = append(b.labels, l)
	return V(len(b.labels) - 1)
}

// AddVertices appends k vertices all carrying label l and returns the id of
// the first.
func (b *Builder) AddVertices(k int, l Label) V {
	first := V(len(b.labels))
	for i := 0; i < k; i++ {
		b.labels = append(b.labels, l)
	}
	return first
}

// N returns the number of vertices added so far.
func (b *Builder) N() int { return len(b.labels) }

// SetLabel overrides the label of an existing vertex.
func (b *Builder) SetLabel(v V, l Label) { b.labels[v] = l }

// AddEdge records the undirected edge {u, w}. Self-loops and duplicates are
// silently dropped when Build runs. AddEdge panics if either endpoint has
// not been added.
func (b *Builder) AddEdge(u, w V) {
	if int(u) >= len(b.labels) || int(w) >= len(b.labels) || u < 0 || w < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with only %d vertices", u, w, len(b.labels)))
	}
	b.edges = append(b.edges, NormEdge(u, w))
}

// HasEdge reports whether the edge has been recorded already. It is O(E)
// and intended for tests and small builders; generators that need fast
// duplicate checks should keep their own set.
func (b *Builder) HasEdge(u, w V) bool {
	e := NormEdge(u, w)
	for _, f := range b.edges {
		if f == e {
			return true
		}
	}
	return false
}

// Build finalizes the graph: adjacency is sorted, self-loops and duplicate
// edges are removed.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].W < b.edges[j].W
	})
	deg := make([]int, n)
	m := 0
	var prev Edge
	first := true
	for _, e := range b.edges {
		if e.U == e.W {
			continue
		}
		if !first && e == prev {
			continue
		}
		first = false
		prev = e
		deg[e.U]++
		deg[e.W]++
		m++
	}
	adj := make([][]V, n)
	for v := 0; v < n; v++ {
		adj[v] = make([]V, 0, deg[v])
	}
	var last Edge
	haveLast := false
	for _, e := range b.edges {
		if e.U == e.W {
			continue
		}
		if haveLast && e == last {
			continue
		}
		haveLast = true
		last = e
		adj[e.U] = append(adj[e.U], e.W)
		adj[e.W] = append(adj[e.W], e.U)
	}
	for v := 0; v < n; v++ {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	labels := make([]Label, n)
	copy(labels, b.labels)
	return &Graph{labels: labels, adj: adj, m: m}
}

// FromEdges builds a graph directly from a label slice and an edge list.
// It is a convenience wrapper around Builder used heavily in tests.
func FromEdges(labels []Label, edges []Edge) *Graph {
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e.U, e.W)
	}
	return b.Build()
}
