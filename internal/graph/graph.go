// Package graph provides the labeled undirected graph substrate used by
// SpiderMine and all baseline miners. Graphs are immutable once built;
// construct them with a Builder. Vertices are dense int32 identifiers and
// carry an integer Label.
//
// Adjacency is stored in CSR (compressed sparse row) form: one flat,
// per-vertex-sorted neighbor array indexed by an offsets table. This keeps
// the whole structure in three contiguous allocations, makes neighbor
// iteration cache-friendly, and keeps edge membership tests O(log d).
// Build additionally precomputes a label index (vertices grouped by label,
// see labelindex.go) and a per-vertex neighbor-label frequency sketch used
// by the subgraph matcher to prune candidates.
package graph

import (
	"fmt"
	"slices"
	"sync"
)

// V is a vertex identifier. Vertices of a graph with n vertices are
// numbered 0..n-1.
type V = int32

// Label is a vertex label. Labeled graph isomorphism (Definition 1 of the
// paper) requires mapped vertices to share labels.
type Label int32

// Edge is an undirected edge between two vertices. The zero vertex is a
// valid endpoint; callers should keep U <= W when using Edge as a map key
// (see NormEdge).
type Edge struct {
	U, W V
}

// NormEdge returns the edge with endpoints ordered so that U <= W, making
// it usable as a canonical map key for undirected edges.
func NormEdge(u, w V) Edge {
	if u > w {
		u, w = w, u
	}
	return Edge{u, w}
}

// Graph is an immutable vertex-labeled undirected simple graph in CSR
// layout.
//
// The zero value is the empty graph. Use a Builder to construct non-empty
// graphs.
type Graph struct {
	labels []Label
	offs   []int32 // len N()+1; neighbor range of v is nbrs[offs[v]:offs[v+1]]
	nbrs   []V     // flat neighbor array, sorted within each vertex's range
	m      int

	// Label index, built lazily on first use (see labelindex.go): small
	// pattern and union-subgraph graphs are constructed constantly during
	// growth and most never serve as match hosts, so Build skips the
	// grouping work. Sketches are built eagerly — the matcher consults
	// them on both the pattern and the host side.
	labelOnce  sync.Once
	numLabels  int
	labelVerts []V           // vertices grouped by label, each group sorted
	byLabel    map[Label][]V // label -> subslice of labelVerts
	sketches   []uint64      // per-vertex neighbor-label frequency sketch
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v V) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v V) int { return int(g.offs[v+1] - g.offs[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v V) []V { return g.nbrs[g.offs[v]:g.offs[v+1]] }

// HasEdge reports whether the undirected edge {u, w} exists.
func (g *Graph) HasEdge(u, w V) bool {
	n := V(len(g.labels))
	if u >= n || w >= n || u < 0 || w < 0 {
		return false
	}
	lo, hi := g.offs[u], g.offs[u+1]
	if d := g.offs[w+1] - g.offs[w]; d < hi-lo {
		lo, hi = g.offs[w], g.offs[w+1]
		u, w = w, u
	}
	a := g.nbrs[lo:hi]
	// Hand-rolled binary search: this is the innermost loop of the matcher.
	i, j := 0, len(a)
	for i < j {
		h := int(uint(i+j) >> 1)
		if a[h] < w {
			i = h + 1
		} else {
			j = h
		}
	}
	return i < len(a) && a[i] == w
}

// Edges returns all edges with U < W, sorted lexicographically.
// Each call allocates a fresh m-entry slice; hot or large-graph callers
// should use AppendEdges with a reused buffer (or iterate Neighbors
// directly) instead of doubling the edge memory per call.
func (g *Graph) Edges() []Edge {
	return g.AppendEdges(make([]Edge, 0, g.m))
}

// AppendEdges appends all edges with U < W, sorted lexicographically, to
// dst and returns the extended slice. It is the allocation-controlled
// variant of Edges: pass a buffer with m spare capacity and no allocation
// happens at all.
func (g *Graph) AppendEdges(dst []Edge) []Edge {
	for u := 0; u < len(g.labels); u++ {
		for _, w := range g.nbrs[g.offs[u]:g.offs[u+1]] {
			if V(u) < w {
				dst = append(dst, Edge{V(u), w})
			}
		}
	}
	return dst
}

// MaxDegree returns the maximum vertex degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < len(g.labels); v++ {
		if d := g.Degree(V(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree (2M/N), or 0 for the empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// NumLabels returns the number of distinct labels present in the graph.
// The count is memoized with the label index.
func (g *Graph) NumLabels() int {
	g.ensureLabelIndex()
	return g.numLabels
}

// String returns a short human-readable summary such as
// "graph{n=400 m=1398 labels=70}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d labels=%d}", g.N(), g.M(), g.NumLabels())
}

// Clone returns a deep copy of the graph. The clone's label index is
// rebuilt lazily on first use.
func (g *Graph) Clone() *Graph {
	return &Graph{
		labels:   append([]Label(nil), g.labels...),
		offs:     append([]int32(nil), g.offs...),
		nbrs:     append([]V(nil), g.nbrs...),
		m:        g.m,
		sketches: append([]uint64(nil), g.sketches...),
	}
}

// Builder constructs graphs incrementally. It tolerates duplicate and
// self-loop edge insertions (both are dropped at Build time), which keeps
// random generators simple.
type Builder struct {
	labels []Label
	edges  []Edge
	// seen is a lazily-built edge set backing HasEdge; nil until the first
	// HasEdge call.
	seen map[Edge]struct{}
}

// NewBuilder returns a Builder with capacity hints for n vertices and m
// edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		labels: make([]Label, 0, n),
		edges:  make([]Edge, 0, m),
	}
}

// Reset empties the builder for reuse, keeping its backing arrays (grown
// to at least n vertices / m edges of capacity). Hot loops that build many
// short-lived pattern graphs hold one Builder and Reset it per graph
// instead of allocating a new one; note Build still allocates the Graph it
// returns — only the builder-side churn is reused.
func (b *Builder) Reset(n, m int) {
	if cap(b.labels) < n {
		b.labels = make([]Label, 0, n)
	}
	if cap(b.edges) < m {
		b.edges = make([]Edge, 0, m)
	}
	b.labels = b.labels[:0]
	b.edges = b.edges[:0]
	b.seen = nil
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) V {
	b.labels = append(b.labels, l)
	return V(len(b.labels) - 1)
}

// AddVertices appends k vertices all carrying label l and returns the id of
// the first.
func (b *Builder) AddVertices(k int, l Label) V {
	first := V(len(b.labels))
	for i := 0; i < k; i++ {
		b.labels = append(b.labels, l)
	}
	return first
}

// N returns the number of vertices added so far.
func (b *Builder) N() int { return len(b.labels) }

// SetLabel overrides the label of an existing vertex.
func (b *Builder) SetLabel(v V, l Label) { b.labels[v] = l }

// AddEdge records the undirected edge {u, w}. Self-loops and duplicates are
// silently dropped when Build runs. AddEdge panics if either endpoint has
// not been added.
func (b *Builder) AddEdge(u, w V) {
	if int(u) >= len(b.labels) || int(w) >= len(b.labels) || u < 0 || w < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with only %d vertices", u, w, len(b.labels)))
	}
	e := NormEdge(u, w)
	b.edges = append(b.edges, e)
	if b.seen != nil {
		b.seen[e] = struct{}{}
	}
}

// HasEdge reports whether the edge has been recorded already. The first
// call builds a hash set over the recorded edges; subsequent calls (and
// AddEdge) maintain it, so the amortized cost is O(1) per query.
func (b *Builder) HasEdge(u, w V) bool {
	if b.seen == nil {
		b.seen = make(map[Edge]struct{}, len(b.edges))
		for _, e := range b.edges {
			b.seen[e] = struct{}{}
		}
	}
	_, ok := b.seen[NormEdge(u, w)]
	return ok
}

// Build finalizes the graph: the edge list is sorted and deduplicated in a
// single pass (self-loops dropped), adjacency is laid out in CSR form, and
// the label index and neighbor-label sketches are precomputed.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	slices.SortFunc(b.edges, cmpEdge)
	// Single dedupe pass, compacting in place (the builder is typically
	// discarded after Build, and AddEdge order is already destroyed by the
	// sort).
	dedup := b.edges[:0]
	var prev Edge
	first := true
	for _, e := range b.edges {
		if e.U == e.W {
			continue
		}
		if !first && e == prev {
			continue
		}
		first = false
		prev = e
		dedup = append(dedup, e)
	}
	b.edges = dedup
	b.seen = nil // edge list mutated; invalidate the HasEdge set
	m := len(dedup)

	// CSR: count degrees, prefix-sum into offsets, then fill. Filling the
	// lower endpoints first and the upper endpoints second leaves every
	// vertex's range sorted, because dedup is sorted by (U, W) and U < W:
	// pass 1 appends neighbors smaller than v in ascending U order, pass 2
	// appends neighbors greater than v in ascending W order.
	offs := make([]int32, n+1)
	for _, e := range dedup {
		offs[e.U+1]++
		offs[e.W+1]++
	}
	for v := 0; v < n; v++ {
		offs[v+1] += offs[v]
	}
	nbrs := make([]V, 2*m)
	cursor := make([]int32, n)
	copy(cursor, offs[:n])
	for _, e := range dedup {
		nbrs[cursor[e.W]] = e.U
		cursor[e.W]++
	}
	for _, e := range dedup {
		nbrs[cursor[e.U]] = e.W
		cursor[e.U]++
	}

	labels := make([]Label, n)
	copy(labels, b.labels)
	g := &Graph{labels: labels, offs: offs, nbrs: nbrs, m: m}
	g.sketches = make([]uint64, n)
	for v := 0; v < n; v++ {
		var sk uint64
		for _, w := range g.Neighbors(V(v)) {
			sk = sketchAdd(sk, labels[w])
		}
		g.sketches[v] = sk
	}
	return g
}

// FromEdges builds a graph directly from a label slice and an edge list.
// It is a convenience wrapper around Builder used heavily in tests.
func FromEdges(labels []Label, edges []Edge) *Graph {
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e.U, e.W)
	}
	return b.Build()
}
