package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteLG writes the graph in the simple "LG" text format used by many
// graph miners:
//
//	t # <name>
//	v <id> <label>
//	e <u> <w>
//
// Vertices are written in id order, edges with U < W in lexicographic
// order.
func (g *Graph) WriteLG(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t # %s\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.Label(V(v))); err != nil {
			return err
		}
	}
	// Stream edges straight off the CSR (same U < W lexicographic order
	// Edges produces) rather than materializing the edge list: encoding a
	// large host must not allocate a second copy of its adjacency.
	for u := 0; u < g.N(); u++ {
		for _, x := range g.Neighbors(V(u)) {
			if V(u) < x {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", u, x); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadLG parses a single graph in LG format. Unknown directives and blank
// lines are ignored; an optional trailing edge label field is accepted and
// dropped (the library is vertex-labeled). Malformed input — duplicate or
// out-of-order vertex ids, edges referencing undefined vertices, a second
// graph header — is rejected with a positional (line-numbered) error
// rather than silently accepted: serving endpoints ingest through this
// reader, and a quietly mis-parsed host would poison every job mined
// against it.
func ReadLG(r io.Reader) (*Graph, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	b := NewBuilder(0, 0)
	name := ""
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			// "t # name"
			if sawHeader {
				return nil, "", fmt.Errorf("graph: line %d: second graph header %q (ReadLG parses a single graph)", lineNo, line)
			}
			sawHeader = true
			if len(fields) >= 3 {
				name = strings.Join(fields[2:], " ")
			}
		case "v":
			if len(fields) < 3 {
				return nil, "", fmt.Errorf("graph: line %d: malformed vertex %q", lineNo, line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, "", fmt.Errorf("graph: line %d: bad vertex id: %v", lineNo, err)
			}
			lab, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, "", fmt.Errorf("graph: line %d: bad vertex label: %v", lineNo, err)
			}
			if id < b.N() && id >= 0 {
				return nil, "", fmt.Errorf("graph: line %d: duplicate vertex id %d", lineNo, id)
			}
			if id != b.N() {
				return nil, "", fmt.Errorf("graph: line %d: vertex ids must be dense and in order; got %d, want %d", lineNo, id, b.N())
			}
			b.AddVertex(Label(lab))
		case "e":
			if len(fields) < 3 {
				return nil, "", fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, "", fmt.Errorf("graph: line %d: bad edge endpoint: %v", lineNo, err)
			}
			w, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, "", fmt.Errorf("graph: line %d: bad edge endpoint: %v", lineNo, err)
			}
			if u < 0 || w < 0 || u >= b.N() || w >= b.N() {
				return nil, "", fmt.Errorf("graph: line %d: edge (%d,%d) references undefined vertex (have %d)", lineNo, u, w, b.N())
			}
			b.AddEdge(V(u), V(w))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return b.Build(), name, nil
}
