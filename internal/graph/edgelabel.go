package graph

import "fmt"

// Edge-labeled graphs. The paper notes (§3) that SpiderMine "can also be
// applied to graphs with edge labels". This file provides the standard
// reduction: each labeled edge {u, w} with label l is subdivided by a
// midpoint vertex carrying l shifted into a reserved label range, turning
// an edge-labeled graph into the vertex-labeled graphs the miners operate
// on. Patterns mined in the encoded space decode back to edge-labeled
// patterns.
//
// Distances double under the encoding, so double Dmax (and keep r as-is:
// an encoded 1-spider covers a head plus its incident edge labels).

// EdgeLabelOffset is the default label shift for midpoint vertices;
// vertex labels must stay below it.
const EdgeLabelOffset Label = 1 << 20

// EncodeEdgeLabels builds the subdivided vertex-labeled graph from vertex
// labels, edges and per-edge labels (parallel to edges). Midpoint vertices
// are appended after the original vertices in edge order, labeled
// offset + edgeLabel. It returns an error if any vertex label reaches the
// offset (the two ranges must not collide).
func EncodeEdgeLabels(labels []Label, edges []Edge, edgeLabels []Label, offset Label) (*Graph, error) {
	if len(edges) != len(edgeLabels) {
		return nil, fmt.Errorf("graph: %d edges but %d edge labels", len(edges), len(edgeLabels))
	}
	if offset <= 0 {
		offset = EdgeLabelOffset
	}
	for v, l := range labels {
		if l >= offset {
			return nil, fmt.Errorf("graph: vertex %d label %d collides with edge-label offset %d", v, l, offset)
		}
	}
	b := NewBuilder(len(labels)+len(edges), 2*len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for i, e := range edges {
		if int(e.U) >= len(labels) || int(e.W) >= len(labels) || e.U < 0 || e.W < 0 {
			return nil, fmt.Errorf("graph: edge %v out of range", e)
		}
		mid := b.AddVertex(offset + edgeLabels[i])
		b.AddEdge(e.U, mid)
		b.AddEdge(mid, e.W)
	}
	return b.Build(), nil
}

// DecodedEdge is one edge of a decoded edge-labeled pattern.
type DecodedEdge struct {
	U, W  V
	Label Label
}

// DecodeEdgeLabels interprets a pattern mined on an encoded graph back as
// an edge-labeled pattern: vertices with labels >= offset are midpoints;
// each must have exactly two neighbors, both original vertices. Original
// vertices are renumbered densely in ascending order. Midpoints with
// fewer than two neighbors (a pattern can end on a half-edge) are dropped
// with ok=false reported via the danglingMidpoints count.
func DecodeEdgeLabels(p *Graph, offset Label) (vertexLabels []Label, edges []DecodedEdge, danglingMidpoints int, err error) {
	if offset <= 0 {
		offset = EdgeLabelOffset
	}
	remap := make([]V, p.N())
	for v := 0; v < p.N(); v++ {
		if p.Label(V(v)) < offset {
			remap[v] = V(len(vertexLabels))
			vertexLabels = append(vertexLabels, p.Label(V(v)))
		} else {
			remap[v] = -1
		}
	}
	for v := 0; v < p.N(); v++ {
		l := p.Label(V(v))
		if l < offset {
			// Original vertices may only touch midpoints in a well-formed
			// encoded pattern.
			for _, w := range p.Neighbors(V(v)) {
				if p.Label(w) < offset {
					return nil, nil, 0, fmt.Errorf("graph: original vertices %d and %d adjacent; not an encoded graph", v, w)
				}
			}
			continue
		}
		nbrs := p.Neighbors(V(v))
		for _, w := range nbrs {
			if remap[w] < 0 {
				return nil, nil, 0, fmt.Errorf("graph: midpoint %d adjacent to another midpoint", v)
			}
		}
		switch len(nbrs) {
		case 2:
			edges = append(edges, DecodedEdge{U: remap[nbrs[0]], W: remap[nbrs[1]], Label: l - offset})
		case 0, 1:
			danglingMidpoints++
		default:
			return nil, nil, 0, fmt.Errorf("graph: midpoint %d has degree %d", v, len(nbrs))
		}
	}
	return vertexLabels, edges, danglingMidpoints, nil
}
