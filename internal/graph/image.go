package graph

// SPC1 — the flat CSR graph image, the out-of-core wire form of a built
// Graph. Where the SPG1 codec (codec.go) is a compact delta-encoded edge
// list that must be decoded through Builder.Build, SPC1 is the CSR arrays
// themselves, laid out so that opening a file is aliasing, not decoding:
// a fixed-width little-endian header followed by four 8-byte-aligned
// sections holding exactly the in-memory representation of labels,
// offsets, neighbors, and the per-vertex neighbor-label sketches. On a
// little-endian host (every supported platform today) OpenMapped mmaps
// the file and casts the mapped sections straight onto the *Graph's
// slices — open cost is independent of graph size, no heap copy of the
// adjacency is ever made, and the OS pages the arrays in and out on
// demand, so a host far larger than RAM mines like any other graph.
//
// Layout (all integers little-endian):
//
//	off   0  "SPC1" magic (4 bytes)
//	off   4  u32 version (currently 1)
//	off   8  u64 n (vertex count)
//	off  16  u64 m (undirected edge count)
//	off  24  4 section descriptors × 24 bytes, in fixed order
//	         labels, offsets, neighbors, sketches:
//	           u64 byte offset | u64 byte length | u32 CRC-32C | u32 zero
//	off 120  u32 CRC-32C of header bytes [0, 120)
//	off 124  u32 zero (reserved)
//	off 128  sections, each starting at the next 8-byte boundary:
//	           labels    n   × i32
//	           offsets  n+1  × i32
//	           neighbors 2m  × i32
//	           sketches  n   × u64
//
// Section placement is canonical (computed from n and m alone); the
// descriptors are validated against it, so a hostile header cannot point
// sections at arbitrary file ranges. The format is versioned by the
// magic + version pair: any change to the field set or layout must bump
// them so stale images never alias under a different interpretation.
//
// Verification tiers. OpenImage and OpenMapped fully verify the image —
// the O(1) header checks plus one streaming pass over the sections
// (section checksums, offset monotonicity, neighbor bounds/sortedness/
// symmetry, sketch consistency) — so arbitrary bytes either error or
// yield a graph indistinguishable from a Builder.Build output; the pass
// is zero-decode and allocation-free but costs O(V+E) reads.
// OpenMappedTrusted performs only the O(1) header validation and is for
// images the caller already verified (or wrote itself): open time is
// independent of graph size, but a corrupt trusted image can crash the
// process, so it must never be handed untrusted input.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// ErrBadImage reports bytes that are not a valid SPC1 CSR image —
// unknown magic or version, a truncated or misaligned section, a
// checksum mismatch, or array contents violating the CSR invariants.
var ErrBadImage = errors.New("graph: bad CSR image")

const (
	imageMagic      = "SPC1"
	imageVersion    = 1
	imageHeaderSize = 128
	imageAlign      = 8

	// imageMaxN / imageMaxM bound the header dimensions: offsets are
	// int32 (the in-memory CSR invariant), so 2m and n+1 must fit.
	imageMaxN = math.MaxInt32 - 1
	imageMaxM = math.MaxInt32 / 2
)

// hostLittleEndian reports the running machine's byte order. SPC1 is
// defined little-endian; on a little-endian host the mapped sections
// alias directly, on a big-endian host OpenImage falls back to an
// element-wise converting copy (correct, not zero-copy).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// imageCRC is the section/header checksum polynomial (CRC-32C,
// Castagnoli — hardware-accelerated on amd64/arm64, shared with the
// store's segment log).
var imageCRC = crc32.MakeTable(crc32.Castagnoli)

// imageLayout is the canonical section placement for a graph with n
// vertices and m edges. Section order is fixed: labels, offs, nbrs,
// sketches.
type imageLayout struct {
	n, m int
	off  [4]int64 // byte offset of each section
	size [4]int64 // byte length of each section
	end  int64    // total image size
}

func alignImage(x int64) int64 { return (x + imageAlign - 1) &^ (imageAlign - 1) }

func layoutFor(n, m int) imageLayout {
	l := imageLayout{n: n, m: m}
	l.size = [4]int64{
		int64(n) * 4,   // labels: i32
		int64(n+1) * 4, // offs:   i32
		int64(2*m) * 4, // nbrs:   i32
		int64(n) * 8,   // sketches: u64
	}
	at := int64(imageHeaderSize)
	for i := range l.off {
		l.off[i] = at
		at = alignImage(at + l.size[i])
	}
	l.end = at
	return l
}

// ImageSize returns the exact byte size of g's SPC1 image.
func (g *Graph) ImageSize() int64 { return layoutFor(g.N(), g.m).end }

// rawBytes reinterprets a numeric slice as its in-memory bytes. Only
// valid on little-endian hosts, where the in-memory representation is
// the wire representation.
func rawBytes[T int32 | Label | uint64](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// leBytes renders a numeric slice little-endian: a zero-copy alias on
// little-endian hosts, an element-wise conversion elsewhere.
func leBytes[T int32 | Label | uint64](s []T) []byte {
	if hostLittleEndian {
		return rawBytes(s)
	}
	w := int(unsafe.Sizeof(*new(T)))
	out := make([]byte, len(s)*w)
	for i, v := range s {
		if w == 4 {
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		} else {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
		}
	}
	return out
}

// buildImageHeader assembles the 128-byte header for the given layout
// and per-section checksums.
func buildImageHeader(l imageLayout, crcs [4]uint32) [imageHeaderSize]byte {
	var h [imageHeaderSize]byte
	copy(h[0:4], imageMagic)
	binary.LittleEndian.PutUint32(h[4:8], imageVersion)
	binary.LittleEndian.PutUint64(h[8:16], uint64(l.n))
	binary.LittleEndian.PutUint64(h[16:24], uint64(l.m))
	for i := 0; i < 4; i++ {
		d := h[24+24*i:]
		binary.LittleEndian.PutUint64(d[0:8], uint64(l.off[i]))
		binary.LittleEndian.PutUint64(d[8:16], uint64(l.size[i]))
		binary.LittleEndian.PutUint32(d[16:20], crcs[i])
	}
	binary.LittleEndian.PutUint32(h[120:124], crc32.Checksum(h[:120], imageCRC))
	return h
}

// imageSections returns the four section payloads of g in canonical
// order, rendered little-endian.
func (g *Graph) imageSections() [4][]byte {
	return [4][]byte{leBytes(g.labels), leBytes(g.offs), leBytes(g.nbrs), leBytes(g.sketches)}
}

// WriteImage writes g's SPC1 image to w and returns the number of bytes
// written (always g.ImageSize() on success). The write streams the CSR
// arrays directly — no per-edge encoding and no second copy of the
// adjacency is made (on little-endian hosts the section payloads alias
// the graph's own arrays).
func (g *Graph) WriteImage(w io.Writer) (int64, error) {
	g.ensureSketches()
	l := layoutFor(g.N(), g.m)
	secs := g.imageSections()
	var crcs [4]uint32
	for i, s := range secs {
		crcs[i] = crc32.Checksum(s, imageCRC)
	}
	hdr := buildImageHeader(l, crcs)
	var written int64
	var pad [imageAlign]byte
	emit := func(p []byte) error {
		n, err := w.Write(p)
		written += int64(n)
		return err
	}
	if err := emit(hdr[:]); err != nil {
		return written, err
	}
	for i, s := range secs {
		if err := emit(s); err != nil {
			return written, err
		}
		if gap := alignImage(l.off[i]+l.size[i]) - (l.off[i] + l.size[i]); gap > 0 {
			if err := emit(pad[:gap]); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// AppendImage appends g's SPC1 image to dst and returns the extended
// slice.
func (g *Graph) AppendImage(dst []byte) []byte {
	need := int(g.ImageSize())
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	buf := imageBuf{b: dst}
	if _, err := g.WriteImage(&buf); err != nil {
		// imageBuf never fails; unreachable.
		panic(err)
	}
	return buf.b
}

type imageBuf struct{ b []byte }

func (w *imageBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// WriteImageFile writes g's SPC1 image to path via a temporary file
// renamed into place, so a crash mid-write never leaves a torn image
// under the final name.
func WriteImageFile(g *Graph, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := g.WriteImage(f)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return os.Rename(tmp, path)
}

// ensureSketches backfills the neighbor-label sketches for graphs
// assembled without Build (the zero value, or internal constructions);
// Build always populates them.
func (g *Graph) ensureSketches() {
	if g.sketches != nil || g.N() == 0 {
		return
	}
	g.sketches = make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		var sk uint64
		for _, w := range g.Neighbors(V(v)) {
			sk = sketchAdd(sk, g.labels[w])
		}
		g.sketches[v] = sk
	}
}

// parseImageHeader performs the O(1) validation tier: magic, version,
// header checksum, dimension bounds, exact total size, and canonical
// section placement. It returns the layout; no section byte is read.
func parseImageHeader(data []byte) (imageLayout, [4]uint32, error) {
	var crcs [4]uint32
	if len(data) < imageHeaderSize {
		return imageLayout{}, crcs, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrBadImage, len(data), imageHeaderSize)
	}
	if string(data[0:4]) != imageMagic {
		return imageLayout{}, crcs, fmt.Errorf("%w: missing %q magic", ErrBadImage, imageMagic)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != imageVersion {
		return imageLayout{}, crcs, fmt.Errorf("%w: unsupported version %d", ErrBadImage, v)
	}
	if got, want := binary.LittleEndian.Uint32(data[120:124]), crc32.Checksum(data[:120], imageCRC); got != want {
		return imageLayout{}, crcs, fmt.Errorf("%w: header checksum mismatch", ErrBadImage)
	}
	n64 := binary.LittleEndian.Uint64(data[8:16])
	m64 := binary.LittleEndian.Uint64(data[16:24])
	if n64 > imageMaxN || m64 > imageMaxM || (n64 == 0 && m64 != 0) {
		return imageLayout{}, crcs, fmt.Errorf("%w: implausible dimensions n=%d m=%d", ErrBadImage, n64, m64)
	}
	l := layoutFor(int(n64), int(m64))
	if l.end > int64(math.MaxInt) || int64(len(data)) != l.end {
		return imageLayout{}, crcs, fmt.Errorf("%w: size %d, want %d for n=%d m=%d", ErrBadImage, len(data), l.end, n64, m64)
	}
	for i := 0; i < 4; i++ {
		d := data[24+24*i:]
		off := binary.LittleEndian.Uint64(d[0:8])
		size := binary.LittleEndian.Uint64(d[8:16])
		if int64(off) != l.off[i] || int64(size) != l.size[i] {
			return imageLayout{}, crcs, fmt.Errorf("%w: section %d at (%d,%d), canonical layout requires (%d,%d)", ErrBadImage, i, off, size, l.off[i], l.size[i])
		}
		crcs[i] = binary.LittleEndian.Uint32(d[16:20])
	}
	return l, crcs, nil
}

// aliasSection reinterprets data[off:off+count*sizeof(T)] as a []T
// without copying. data's base and off must be 8-byte aligned (callers
// guarantee both).
func aliasSection[T int32 | Label | uint64](data []byte, off int64, count int) []T {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), count)
}

// copySection decodes data[off:] as count little-endian elements into a
// fresh heap slice — the big-endian-host path.
func copySection[T int32 | Label | uint64](data []byte, off int64, count int) []T {
	out := make([]T, count)
	w := int64(unsafe.Sizeof(*new(T)))
	for i := range out {
		p := data[off+int64(i)*w:]
		if w == 4 {
			out[i] = T(int32(binary.LittleEndian.Uint32(p)))
		} else {
			out[i] = T(binary.LittleEndian.Uint64(p))
		}
	}
	return out
}

// openImage validates data as an SPC1 image and assembles the Graph.
// aliased reports whether the graph's arrays point into data (true on
// aligned little-endian opens) — the caller must then keep data alive
// and unmodified for the graph's lifetime. With verify set the full
// O(V+E) tier runs (checksums + structural invariants); without it only
// the O(1) header tier does.
func openImage(data []byte, verify bool) (g *Graph, aliased bool, err error) {
	l, crcs, err := parseImageHeader(data)
	if err != nil {
		return nil, false, err
	}
	if verify {
		for i := 0; i < 4; i++ {
			if crc32.Checksum(data[l.off[i]:l.off[i]+l.size[i]], imageCRC) != crcs[i] {
				return nil, false, fmt.Errorf("%w: section %d checksum mismatch", ErrBadImage, i)
			}
		}
	}
	aliased = hostLittleEndian
	if aliased && uintptr(unsafe.Pointer(&data[0]))%imageAlign != 0 {
		// The byte slice itself is misaligned (possible for in-memory
		// sources; never for an mmap, which is page-aligned): realign by
		// copying into uint64-backed storage so the casts below stay legal.
		backing := make([]uint64, (len(data)+7)/8)
		cp := rawBytes(backing)[:len(data)]
		copy(cp, data)
		data, aliased = cp, false
	}
	g = &Graph{m: l.m}
	if hostLittleEndian {
		g.labels = aliasSection[Label](data, l.off[0], l.n)
		g.offs = aliasSection[int32](data, l.off[1], l.n+1)
		g.nbrs = aliasSection[V](data, l.off[2], 2*l.m)
		g.sketches = aliasSection[uint64](data, l.off[3], l.n)
	} else {
		g.labels = copySection[Label](data, l.off[0], l.n)
		g.offs = copySection[int32](data, l.off[1], l.n+1)
		g.nbrs = copySection[V](data, l.off[2], 2*l.m)
		g.sketches = copySection[uint64](data, l.off[3], l.n)
	}
	if verify {
		if err := verifyImageGraph(g); err != nil {
			return nil, false, err
		}
	}
	return g, aliased, nil
}

// verifyImageGraph checks the structural CSR invariants that make every
// later access of the graph in-bounds and every mining result identical
// to the built twin: a monotone offset table covering exactly the
// neighbor array, per-vertex strictly-ascending neighbor lists (no
// self-loops, no duplicates) of in-range vertices, symmetric adjacency,
// and sketches matching the adjacency. One streaming pass, zero
// allocations.
func verifyImageGraph(g *Graph) error {
	n := g.N()
	offs, nbrs := g.offs, g.nbrs
	if offs[0] != 0 {
		return fmt.Errorf("%w: offsets[0] = %d", ErrBadImage, offs[0])
	}
	if int(offs[n]) != len(nbrs) {
		return fmt.Errorf("%w: offsets[n] = %d, want %d", ErrBadImage, offs[n], len(nbrs))
	}
	for v := 0; v < n; v++ {
		lo, hi := offs[v], offs[v+1]
		if hi < lo {
			return fmt.Errorf("%w: offsets decrease at vertex %d", ErrBadImage, v)
		}
		prev := V(-1)
		var sk uint64
		for _, w := range nbrs[lo:hi] {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("%w: neighbor %d of vertex %d out of range", ErrBadImage, w, v)
			}
			if w == V(v) {
				return fmt.Errorf("%w: self-loop at vertex %d", ErrBadImage, v)
			}
			if w <= prev {
				return fmt.Errorf("%w: neighbor list of vertex %d not strictly ascending", ErrBadImage, v)
			}
			prev = w
			sk = sketchAdd(sk, g.labels[w])
		}
		if sk != g.sketches[v] {
			return fmt.Errorf("%w: sketch mismatch at vertex %d", ErrBadImage, v)
		}
	}
	// Symmetry: every listed edge must be listed from both endpoints.
	// Checking the u<w half against the reverse direction covers all of
	// it, and with the total length already pinned to 2m the two halves
	// must pair up exactly.
	for u := 0; u < n; u++ {
		for _, w := range nbrs[offs[u]:offs[u+1]] {
			if w > V(u) && !g.HasEdge(w, V(u)) {
				return fmt.Errorf("%w: edge (%d,%d) not symmetric", ErrBadImage, u, w)
			}
		}
	}
	return nil
}

// OpenImage validates data as an SPC1 image and returns the graph. On
// little-endian hosts the returned graph aliases data zero-copy (the
// caller must not modify data afterwards); the full verification tier
// always runs, so arbitrary bytes either error or yield a graph
// equivalent to a Builder.Build output — never a panic or an
// out-of-bounds access later.
func OpenImage(data []byte) (*Graph, error) {
	g, _, err := openImage(data, true)
	return g, err
}

// Advice is an access-pattern hint for a mapped image, forwarded to the
// OS via madvise on platforms that support it (a no-op elsewhere and on
// read-everything fallback opens).
type Advice int

const (
	// AdviceNormal resets to default kernel readahead.
	AdviceNormal Advice = iota
	// AdviceRandom disables readahead — right for matcher-heavy phases
	// that hop across the neighbor array.
	AdviceRandom
	// AdviceSequential widens readahead — right for whole-graph scans
	// (Stage I table builds, fingerprinting, verification).
	AdviceSequential
	// AdviceWillNeed asks the OS to start paging the image in.
	AdviceWillNeed
)

// Mapped is a graph opened from an SPC1 image, usually backed by an OS
// memory mapping. The graph is served through Graph(); Close releases
// the mapping, after which the graph (and every slice obtained from it)
// must not be touched. Clone the graph first to keep a heap copy beyond
// Close.
type Mapped struct {
	g      *Graph
	data   []byte // the OS mapping; nil after Close or on heap-backed opens
	mapped bool
}

// Graph returns the opened graph. It is valid until Close.
func (m *Mapped) Graph() *Graph { return m.g }

// IsMapped reports whether the graph aliases an OS memory mapping
// (false when the platform fallback or a byte-order conversion read the
// image onto the heap — the graph then lives as long as any reference).
func (m *Mapped) IsMapped() bool { return m.mapped }

// Advise hints the OS about the upcoming access pattern. Best-effort:
// heap-backed opens ignore it, and errors are safe to ignore.
func (m *Mapped) Advise(a Advice) error {
	if !m.mapped || m.data == nil {
		return nil
	}
	return madviseBytes(m.data, a)
}

// Close unmaps the image. The graph returned by Graph() — including any
// slices read from it — is invalid afterwards; Close is idempotent.
func (m *Mapped) Close() error {
	data := m.data
	m.data = nil
	if data == nil || !m.mapped {
		return nil
	}
	return munmapBytes(data)
}

// OpenMapped opens the SPC1 image at path by memory-mapping it and
// aliasing the graph's CSR arrays onto the mapping: no decode, no heap
// copy of the adjacency, O(1) allocations. The full verification tier
// runs (one streaming pass; see the package comment), so a truncated,
// corrupt, or hostile image errors — it never panics and never causes an
// out-of-bounds access later. On platforms without mmap support the
// image is read onto the heap instead (same validation, same graph).
func OpenMapped(path string) (*Mapped, error) {
	return openMappedPath(path, true)
}

// OpenMappedTrusted is OpenMapped with only the O(1) header validation:
// open time is independent of graph size. The caller vouches for the
// image — one this process wrote, or one fully verified before (e.g. by
// a prior OpenMapped or a content-fingerprint check). A corrupt trusted
// image can crash the process; never hand this untrusted input.
func OpenMappedTrusted(path string) (*Mapped, error) {
	return openMappedPath(path, false)
}

func openMappedPath(path string, verify bool) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < imageHeaderSize {
		return nil, fmt.Errorf("%w: %s: %d bytes is shorter than the %d-byte header", ErrBadImage, path, size, imageHeaderSize)
	}
	if !mmapSupported || size > int64(math.MaxInt) {
		return openMappedFallback(f, path, verify)
	}
	data, err := mmapBytes(f, int(size))
	if err != nil {
		// mmap can fail on filesystems that do not support it; fall back
		// to reading the image onto the heap.
		return openMappedFallback(f, path, verify)
	}
	if verify {
		// The verification pass streams the whole file once; tell the
		// kernel so readahead works with us, then drop back to normal.
		madviseBytes(data, AdviceSequential)
	}
	g, aliased, err := openImage(data, verify)
	if err != nil {
		munmapBytes(data)
		return nil, fmt.Errorf("graph: open image %s: %w", path, err)
	}
	if verify {
		madviseBytes(data, AdviceNormal)
	}
	if !aliased {
		// Byte-order conversion copied the arrays to the heap; the
		// mapping has nothing left to offer.
		munmapBytes(data)
		return &Mapped{g: g}, nil
	}
	return &Mapped{g: g, data: data, mapped: true}, nil
}

// openMappedFallback is the read-everything path for platforms (or
// files) that cannot mmap: the image is read onto the heap and opened
// with the same validation; the graph is heap-backed and Close is a
// no-op.
func openMappedFallback(f *os.File, path string, verify bool) (*Mapped, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	g, _, err := openImage(data, verify)
	if err != nil {
		return nil, fmt.Errorf("graph: open image %s: %w", path, err)
	}
	return &Mapped{g: g}, nil
}
