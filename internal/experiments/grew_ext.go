package experiments

import (
	"time"

	"repro/internal/gen"
	"repro/internal/miner/grew"
	"repro/internal/spidermine"
)

// GrewComparison is an extension experiment (not a paper artifact): GREW
// vs SpiderMine on the GID-1 dataset. The paper's related-work section
// argues GREW "could discover some large patterns quickly" but gives "no
// guarantee on the pattern quality"; this driver quantifies both halves —
// GREW is fast but its largest recovered pattern is hit-or-miss, while
// SpiderMine recovers the injected size-30 patterns with its 1−ε
// guarantee.
func GrewComparison(seed int64) *Report {
	g, _ := gen.Synthetic(gen.GIDConfig(1, seed))
	rep := &Report{
		ID:     "grew",
		Title:  "extension: GREW vs SpiderMine on GID 1",
		Header: []string{"algorithm", "runtime", "top-1 |V|", "top-1 |E|", "instances/embeddings"},
	}
	t0 := time.Now()
	gr := grew.Mine(g, grew.Config{MinSupport: 2})
	grT := time.Since(t0)
	if len(gr) > 0 {
		rep.Rows = append(rep.Rows, []string{
			"GREW", grT.String(), itoa(gr[0].P.NV()), itoa(gr[0].P.Size()), itoa(gr[0].Instances)})
	} else {
		rep.Rows = append(rep.Rows, []string{"GREW", grT.String(), "-", "-", "-"})
	}
	t1 := time.Now()
	sm := mineSM(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: seed, Workers: MiningWorkers()})
	smT := time.Since(t1)
	if len(sm.Patterns) > 0 {
		p := sm.Patterns[0]
		rep.Rows = append(rep.Rows, []string{
			"SpiderMine", smT.String(), itoa(p.NV()), itoa(p.Size()), itoa(len(p.Emb))})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: GREW terminates fast and finds some structure; SpiderMine recovers the injected size-30 patterns")
	return rep
}
