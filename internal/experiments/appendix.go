package experiments

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/spider"
	"repro/internal/spidermine"
	"repro/internal/support"
)

// AppC3 reproduces Appendix C(3), varied spider radius r: Stage I runtime
// on one graph (the paper uses 600 edges, 30 labels) as r grows — runtime
// explodes exponentially (the paper's r=4 ran out of memory). Scale
// shrinks the graph and the tree fanout for quick runs.
func AppC3(rs []int, seed int64, scale float64) *Report {
	cfg := gen.SyntheticConfig{
		N: scaled(300, scale), AvgDeg: 4, NumLabels: scaled(30, scale), Seed: seed,
		Large: gen.InjectSpec{NV: 20, Count: 2, Support: 2},
		Small: gen.InjectSpec{NV: 3, Count: 4, Support: 3},
	}
	fanout := 3
	if scale < 1 {
		fanout = 2
	}
	g, _ := gen.Synthetic(cfg)
	rep := &Report{
		ID:     "appC3",
		Title:  "varied spider radius r: Stage I (spider mining) cost",
		Header: []string{"r", "#spiders", "runtime"},
	}
	for _, r := range rs {
		t0 := time.Now()
		var count int
		if r == 1 {
			count = len(spider.MineStars(g, spider.Options{MinSupport: 2, Workers: MiningWorkers()}))
		} else {
			count = len(spider.MineTrees(g, spider.TreeOptions{
				MinSupport: 2, Radius: r, MaxFanout: fanout, MaxSpiders: 500_000,
			}))
		}
		rep.Rows = append(rep.Rows, []string{itoa(r), itoa(count), time.Since(t0).String()})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: runtime grows ~exponentially in r (paper: 0.6s/2.7s/87s for r=1/2/3; OOM at r=4)",
		fmt.Sprintf("graph: %v", g))
	return rep
}

// AppC4 reproduces Appendix C(4), varied ε: full-pipeline runtime on the
// Jeti-like call graph (σ=10) for each error bound. Smaller ε draws more
// seed spiders (larger M), so runtime increases as ε decreases.
func AppC4(epsilons []float64, seed int64, scale float64) *Report {
	g, sigma := callGraphFor(seed, scale)
	rep := &Report{
		ID:     "appC4",
		Title:  fmt.Sprintf("varied ε on Jeti-like data (σ=%d): runtime and M", sigma),
		Header: []string{"ε", "M", "runtime", "top-1 |E|"},
	}
	for _, eps := range epsilons {
		t0 := time.Now()
		res := mineSM(g, spidermine.Config{
			MinSupport: sigma, K: 10, Dmax: 8, Epsilon: eps, Seed: seed,
			Measure: support.HarmfulOverlap, Workers: MiningWorkers(),
		})
		el := time.Since(t0)
		top := 0
		if len(res.Patterns) > 0 {
			top = res.Patterns[0].Size()
		}
		rep.Rows = append(rep.Rows, []string{f2(eps), itoa(res.Stats.M), el.String(), itoa(top)})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: smaller ε ⇒ larger M ⇒ longer runtime (paper: 7.2s/7.7s/9.1s for ε=0.45/0.25/0.05)")
	return rep
}

// Lemma2Table reproduces the §4.1 worked example and sweeps M for several
// (K, ε, Vmin) settings.
func Lemma2Table() *Report {
	rep := &Report{
		ID:     "lemma2",
		Title:  "seed draw size M from Lemma 2",
		Header: []string{"|V|", "Vmin", "K", "ε", "M", "P_success"},
	}
	type row struct {
		n, vmin, k int
		eps        float64
	}
	cases := []row{
		{10000, 1000, 10, 0.1}, // the paper's example: M ≈ 85
		{10000, 1000, 10, 0.05},
		{10000, 1000, 20, 0.1},
		{10000, 500, 10, 0.1},
		{100000, 10000, 10, 0.1},
	}
	for _, c := range cases {
		m := spider.ComputeM(c.n, c.vmin, c.k, c.eps)
		ps := spider.PSuccess(c.n, c.vmin, c.k, m)
		rep.Rows = append(rep.Rows, []string{
			itoa(c.n), itoa(c.vmin), itoa(c.k), f2(c.eps), itoa(m), fmt.Sprintf("%.4f", ps)})
	}
	rep.Notes = append(rep.Notes, "paper's worked example: ε=0.1, K=10, Vmin=|V|/10 ⇒ M=85 (we compute the minimal integer, 86)")
	return rep
}

// Ablations runs the design-choice ablations DESIGN.md calls out on one
// GID-1 dataset: spider-set pruning on/off and Stage II merge pruning
// on/off.
func Ablations(seed int64) *Report {
	g, _ := gen.Synthetic(gen.GIDConfig(1, seed))
	rep := &Report{
		ID:     "ablations",
		Title:  "ablations on GID-1: spider-set pruning and merge pruning",
		Header: []string{"variant", "runtime", "top-1 |E|", "iso run", "iso skipped", "#patterns"},
	}
	run := func(name string, cfg spidermine.Config) {
		t0 := time.Now()
		res := mineSM(g, cfg)
		el := time.Since(t0)
		top := 0
		if len(res.Patterns) > 0 {
			top = res.Patterns[0].Size()
		}
		rep.Rows = append(rep.Rows, []string{
			name, el.String(), itoa(top), i64a(res.Stats.IsoRun), i64a(res.Stats.IsoSkipped), itoa(len(res.Patterns))})
	}
	base := spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: seed, Workers: MiningWorkers()}
	run("baseline", base)
	noSS := base
	noSS.DisableSpiderSetPruning = true
	run("no spider-set pruning", noSS)
	keepUn := base
	keepUn.KeepUnmerged = true
	run("no merge pruning (keep unmerged)", keepUn)
	restarts := base
	restarts.Restarts = 3
	run("3 random restarts", restarts)
	return rep
}
