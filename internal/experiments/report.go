// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5 and Appendix C). Each driver generates its
// workload, runs the competing miners, and returns a Report whose rows
// mirror what the paper plots. Drivers accept a Scale factor so tests and
// quick benchmark runs can shrink the workloads; Scale=1 reproduces the
// paper's sizes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/pattern"
)

// Report is the tabular result of one experiment.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SizeHistogram counts patterns by vertex count, the quantity Figures 4–8,
// 20 and 21 plot.
func SizeHistogram(ps []*pattern.Pattern) map[int]int {
	h := make(map[int]int)
	for _, p := range ps {
		h[p.NV()]++
	}
	return h
}

// histogramRows renders one row per observed size with one count column
// per algorithm, sizes ascending — the paper's bar-chart data.
func histogramRows(names []string, hists []map[int]int) ([]string, [][]string) {
	header := append([]string{"pattern size |V|"}, names...)
	sizeSet := make(map[int]struct{})
	for _, h := range hists {
		for s := range h {
			sizeSet[s] = struct{}{}
		}
	}
	sizes := make([]int, 0, len(sizeSet))
	for s := range sizeSet {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	var rows [][]string
	for _, s := range sizes {
		row := []string{fmt.Sprintf("%d", s)}
		for _, h := range hists {
			row = append(row, fmt.Sprintf("%d", h[s]))
		}
		rows = append(rows, row)
	}
	return header, rows
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func itoa(x int) string   { return fmt.Sprintf("%d", x) }
func i64a(x int64) string { return fmt.Sprintf("%d", x) }
func scaled(x int, scale float64) int {
	v := int(float64(x) * scale)
	if v < 1 {
		v = 1
	}
	return v
}
