package experiments

import (
	"testing"

	"repro/internal/graph"
)

// TestGuaranteeTheorem1 empirically checks the paper's headline guarantee
// on a small graph where the exact answer is computable: across 6 seeds
// with ε=0.1, SpiderMine must recover the exact largest pattern in at
// least 4 of 6 runs (the bound is asymptotic; the greedy growth loses a
// little, so the test asserts a slacked threshold).
func TestGuaranteeTheorem1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	trials, rep := GuaranteeCheck(6, 0.1, 5)
	succ := 0
	for _, tr := range trials {
		if tr.Success {
			succ++
		}
	}
	t.Logf("success %d/%d; exact=%d", succ, len(trials), trials[0].Exact)
	for _, n := range rep.Notes {
		t.Log(n)
	}
	if trials[0].Exact <= 0 {
		t.Fatal("exact enumeration found nothing — workload broken")
	}
	if succ < 4 {
		t.Fatalf("success rate %d/6 below slack threshold for ε=0.1", succ)
	}
}

// TestExactTopK sanity-checks the brute-force reference on a trivially
// known case: two disjoint triangles, σ=2 ⇒ top-1 is the triangle (3
// edges).
func TestExactTopK(t *testing.T) {
	g := twoTrianglesGraph()
	sizes := ExactTopK(g, 2, 3, 2)
	if len(sizes) == 0 || sizes[0] != 3 {
		t.Fatalf("exact top sizes %v, want leading 3", sizes)
	}
}

// twoTrianglesGraph builds two disjoint labeled triangles.
func twoTrianglesGraph() *graph.Graph {
	b := graph.NewBuilder(6, 6)
	for i := 0; i < 2; i++ {
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v1, v3)
	}
	return b.Build()
}
