package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/miner/subdue"
	"repro/internal/pattern"
	"repro/internal/spidermine"
	"repro/internal/support"
)

// Fig20 reproduces the DBLP experiment (σ=4, K=20): pattern-size
// histograms of SpiderMine vs SUBDUE on the synthetic co-authorship
// network (see DESIGN.md for the substitution argument). Scale shrinks the
// author count; Scale=1 matches the paper's 6,508-author graph.
func Fig20(seed int64, scale float64) *Report {
	g, _ := gen.DBLPLike(gen.DBLPConfig{
		Authors: scaled(6508, scale),
		Seed:    seed,
	})
	smRes := mineSM(g, spidermine.Config{MinSupport: 4, K: 20, Dmax: 6, Seed: seed,
		Measure: support.HarmfulOverlap, Workers: MiningWorkers()})
	smHist := SizeHistogram(smRes.Patterns)

	sd := subdue.Mine(g, subdue.Config{MinSupport: 4})
	sdPats := make([]*pattern.Pattern, 0, len(sd))
	for _, s := range sd {
		sdPats = append(sdPats, s.P)
	}
	sdHist := SizeHistogram(sdPats)

	header, rows := histogramRows([]string{"SpiderMine", "SUBDUE"},
		[]map[int]int{smHist, sdHist})
	return &Report{
		ID:     "fig20",
		Title:  "DBLP-like co-authorship network (σ=4, K=20): SpiderMine vs SUBDUE",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"expected shape: SpiderMine returns patterns of size 10-25; SUBDUE stays at sizes 1-2",
			fmt.Sprintf("graph: %v", g),
		},
	}
}

// Fig21 reproduces the Jeti experiment (σ=10): SpiderMine vs SUBDUE on the
// synthetic call graph (835 methods, 267 class labels at Scale=1). At
// reduced scale the motif budget and σ shrink together so the planted
// motifs keep fitting the smaller graph.
func Fig21(seed int64, scale float64) *Report {
	g, sigma := callGraphFor(seed, scale)
	smRes := mineSM(g, spidermine.Config{MinSupport: sigma, K: 10, Dmax: 8, Seed: seed,
		Measure: support.HarmfulOverlap, Workers: MiningWorkers()})
	smHist := SizeHistogram(smRes.Patterns)

	sd := subdue.Mine(g, subdue.Config{MinSupport: sigma})
	sdPats := make([]*pattern.Pattern, 0, len(sd))
	for _, s := range sd {
		sdPats = append(sdPats, s.P)
	}
	sdHist := SizeHistogram(sdPats)

	header, rows := histogramRows([]string{"SpiderMine", "SUBDUE"},
		[]map[int]int{smHist, sdHist})
	return &Report{
		ID:     "fig21",
		Title:  "Jeti-like call graph (σ=10): SpiderMine vs SUBDUE",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"expected shape: SpiderMine returns patterns near the motif size (12 methods); SUBDUE stays at |V|<=4",
			fmt.Sprintf("graph: %v, σ=%d", g, sigma),
		},
	}
}

// callGraphFor builds the Fig. 21 / Appendix C(4) workload at the given
// scale. Below full scale, fewer motifs with lower support are planted
// (the full 5×12 embedding budget would not fit a shrunken graph) and σ
// shrinks in step.
func callGraphFor(seed int64, scale float64) (*graph.Graph, int) {
	sigma := 10
	cfg := gen.CallGraphConfig{
		Methods: scaled(835, scale),
		Classes: scaled(267, scale),
		Seed:    seed,
	}
	if scale < 1 {
		sigma = 5
		cfg.MotifCount = 2
		cfg.MotifSup = 6
		cfg.MotifSize = 10
	}
	g, _ := gen.CallGraphLike(cfg)
	return g, sigma
}
