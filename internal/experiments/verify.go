package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Claim is one qualitative statement the paper's evaluation makes about an
// artifact — "who wins, by roughly what factor, where behaviour changes".
// Verify checks the claim against a regenerated Report.
type Claim struct {
	ID        string // experiment id the claim is checked against
	Statement string
	Check     func(*Report) error
}

// Claims lists the paper's headline claims, one or more per artifact.
// These are the machine-checkable versions of the "expected shape" notes.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "fig4",
			Statement: "SpiderMine recovers large (≥20-vertex) patterns on GID 1; SEuS stays ≤4",
			Check: func(r *Report) error {
				smLarge := false
				for _, row := range r.Rows {
					size := cellInt(row[0])
					if size >= 20 && cellInt(row[1]) > 0 {
						smLarge = true
					}
					if size > 4 && cellInt(row[3]) > 0 {
						return fmt.Errorf("SEuS found a size-%d pattern", size)
					}
				}
				if !smLarge {
					return fmt.Errorf("SpiderMine found no pattern with >= 20 vertices")
				}
				return nil
			},
		},
		{
			ID:        "fig6",
			Statement: "with high-support small patterns (GID 3), SUBDUE's mass shifts to sizes ≤ 6",
			Check: func(r *Report) error {
				for _, row := range r.Rows {
					if size := cellInt(row[0]); size > 6 && cellInt(row[2]) > 0 {
						return fmt.Errorf("SUBDUE found a size-%d pattern on noisy data", size)
					}
				}
				return nil
			},
		},
		{
			ID:        "fig9",
			Statement: "MoSS (complete mining) is slower than SpiderMine at the largest size, or aborts",
			Check: func(r *Report) error {
				last := r.Rows[len(r.Rows)-1]
				smT, moT := cellDur(last[1]), cellDur(last[2])
				if strings.Contains(last[3], "false") {
					return nil // aborted: the stronger form of the claim
				}
				if moT <= smT {
					return fmt.Errorf("MoSS (%v) not slower than SpiderMine (%v)", moT, smT)
				}
				return nil
			},
		},
		{
			ID:        "fig10",
			Statement: "SUBDUE runtime grows faster with |V| than SpiderMine runtime",
			Check: func(r *Report) error {
				if len(r.Rows) < 2 {
					return fmt.Errorf("need at least 2 sizes")
				}
				first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
				smRatio := ratio(cellDur(last[1]), cellDur(first[1]))
				sdRatio := ratio(cellDur(last[2]), cellDur(first[2]))
				if sdRatio <= smRatio {
					return fmt.Errorf("SUBDUE growth %.1fx vs SpiderMine %.1fx", sdRatio, smRatio)
				}
				return nil
			},
		},
		{
			ID:        "fig11",
			Statement: "SpiderMine runtime stays near-linear in |V| (growth factor ≤ 4x the size factor)",
			Check: func(r *Report) error {
				first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
				sizeFactor := float64(cellInt(last[0])) / float64(cellInt(first[0]))
				timeFactor := ratio(cellDur(last[1]), cellDur(first[1]))
				if timeFactor > 4*sizeFactor {
					return fmt.Errorf("runtime grew %.1fx over a %.1fx size increase", timeFactor, sizeFactor)
				}
				return nil
			},
		},
		{
			ID:        "fig12",
			Statement: "the largest discovered pattern grows with |V|",
			Check: func(r *Report) error {
				first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
				if cellInt(last[2]) <= cellInt(first[2]) {
					return fmt.Errorf("largest pattern did not grow: %s -> %s vertices", first[2], last[2])
				}
				return nil
			},
		},
		{
			ID:        "fig15",
			Statement: "with 100 small patterns injected, SpiderMine still returns larger patterns than ORIGAMI",
			Check: func(r *Report) error {
				smMax, orMax := 0, 0
				for _, row := range r.Rows {
					size := cellInt(row[0])
					if cellInt(row[1]) > 0 && size > smMax {
						smMax = size
					}
					if cellInt(row[2]) > 0 && size > orMax {
						orMax = size
					}
				}
				if smMax <= orMax {
					return fmt.Errorf("SpiderMine max %d <= ORIGAMI max %d", smMax, orMax)
				}
				return nil
			},
		},
		{
			ID:        "fig16",
			Statement: "SpiderMine completes on every GID; complete mining (MoSS) aborts on at least one",
			Check: func(r *Report) error {
				aborted := 0
				for _, row := range r.Rows {
					if row[4] == "-" {
						aborted++
					}
				}
				if aborted == 0 {
					return fmt.Errorf("MoSS completed on all GIDs (paper: '-' on 2, 4, 5)")
				}
				return nil
			},
		},
		{
			ID:        "fig17",
			Statement: "the number of r-spiders grows superlinearly with scale-free graph size",
			Check: func(r *Report) error {
				first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
				sizeFactor := float64(cellInt(last[1])) / float64(max1(cellInt(first[1])))
				spiderFactor := float64(cellInt(last[2])) / float64(max1(cellInt(first[2])))
				if spiderFactor < sizeFactor {
					return fmt.Errorf("spiders grew %.1fx over %.1fx edges", spiderFactor, sizeFactor)
				}
				return nil
			},
		},
		{
			ID:        "fig18",
			Statement: "top-1 pattern sizes stay within a 3x band across GID 6-10 (robustness)",
			Check: func(r *Report) error {
				lo, hi := 1<<30, 0
				for _, row := range r.Rows {
					s := cellInt(row[1])
					if s <= 0 {
						return fmt.Errorf("GID %s returned no pattern", row[0])
					}
					if s < lo {
						lo = s
					}
					if s > hi {
						hi = s
					}
				}
				if hi > 3*lo {
					return fmt.Errorf("top-1 sizes range %d..%d exceeds 3x band", lo, hi)
				}
				return nil
			},
		},
		{
			ID:        "fig19",
			Statement: "results are stable in Dmax except when too small (d=1 ≤ d≥2 sizes)",
			Check: func(r *Report) error {
				if len(r.Rows) < 2 {
					return fmt.Errorf("need >= 2 Dmax settings")
				}
				d1 := cellInt(r.Rows[0][1])
				d2 := cellInt(r.Rows[1][1])
				if d1 > d2 {
					return fmt.Errorf("d=1 found larger patterns (%d) than d=2 (%d)", d1, d2)
				}
				return nil
			},
		},
		{
			ID:        "appC3",
			Statement: "Stage I cost explodes with spider radius r (≥5x per +1)",
			Check: func(r *Report) error {
				if len(r.Rows) < 2 {
					return fmt.Errorf("need >= 2 radii")
				}
				t1 := cellDur(r.Rows[0][2])
				t2 := cellDur(r.Rows[1][2])
				if ratio(t2, t1) < 5 {
					return fmt.Errorf("r=2 only %.1fx the cost of r=1", ratio(t2, t1))
				}
				return nil
			},
		},
		{
			ID:        "appC4",
			Statement: "smaller ε draws more seeds (M strictly increases as ε decreases)",
			Check: func(r *Report) error {
				prev := -1
				for _, row := range r.Rows {
					m := cellInt(row[1])
					if m <= prev {
						return fmt.Errorf("M not increasing: %d after %d", m, prev)
					}
					prev = m
				}
				return nil
			},
		},
		{
			ID:        "lemma2",
			Statement: "the worked example (ε=0.1, K=10, Vmin=|V|/10) yields M ≈ 85",
			Check: func(r *Report) error {
				m := cellInt(r.Rows[0][4])
				if m < 84 || m > 87 {
					return fmt.Errorf("M=%d", m)
				}
				return nil
			},
		},
		{
			ID:        "fig20",
			Statement: "on the co-authorship network SpiderMine finds ≥10-vertex patterns; SUBDUE stays ≤ 6",
			Check: func(r *Report) error {
				smLarge := false
				for _, row := range r.Rows {
					size := cellInt(row[0])
					if size >= 10 && cellInt(row[1]) > 0 {
						smLarge = true
					}
					if size > 6 && cellInt(row[2]) > 0 {
						return fmt.Errorf("SUBDUE found a size-%d pattern", size)
					}
				}
				if !smLarge {
					return fmt.Errorf("no large collaborative pattern found")
				}
				return nil
			},
		},
		{
			ID:        "fig21",
			Statement: "on the call graph SpiderMine finds motif-sized (≥8-vertex) patterns, strictly larger than SUBDUE's best",
			Check: func(r *Report) error {
				smMax, sdMax := 0, 0
				for _, row := range r.Rows {
					size := cellInt(row[0])
					if cellInt(row[1]) > 0 && size > smMax {
						smMax = size
					}
					if cellInt(row[2]) > 0 && size > sdMax {
						sdMax = size
					}
				}
				if smMax < 8 {
					return fmt.Errorf("no library motif found (max %d)", smMax)
				}
				if smMax <= sdMax {
					return fmt.Errorf("SpiderMine max %d not larger than SUBDUE max %d", smMax, sdMax)
				}
				return nil
			},
		},
		{
			ID:        "ablations",
			Statement: "spider-set pruning skips isomorphism tests without changing the answer",
			Check: func(r *Report) error {
				baseTop, noPruneTop := r.Rows[0][2], r.Rows[1][2]
				if baseTop != noPruneTop {
					return fmt.Errorf("pruning changed top-1 size: %s vs %s", baseTop, noPruneTop)
				}
				if cellInt(r.Rows[1][4]) != 0 {
					return fmt.Errorf("disabled pruning still skipped tests")
				}
				return nil
			},
		},
	}
}

// VerifyAll regenerates each claimed artifact (caching reports shared by
// multiple claims) and checks every claim. It returns one line per claim,
// "PASS"/"FAIL"-prefixed, plus the failure count.
func VerifyAll(p Params) (lines []string, failures int) {
	cache := map[string]*Report{}
	for _, c := range Claims() {
		rep, ok := cache[c.ID]
		if !ok {
			var err error
			rep, err = Run(c.ID, p)
			if err != nil {
				lines = append(lines, fmt.Sprintf("FAIL %s: %v", c.ID, err))
				failures++
				continue
			}
			cache[c.ID] = rep
		}
		if err := c.Check(rep); err != nil {
			lines = append(lines, fmt.Sprintf("FAIL %s: %s — %v", c.ID, c.Statement, err))
			failures++
		} else {
			lines = append(lines, fmt.Sprintf("PASS %s: %s", c.ID, c.Statement))
		}
	}
	return lines, failures
}

func cellInt(s string) int {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return -1
	}
	return n
}

func cellDur(s string) time.Duration {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0
	}
	return d
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}
