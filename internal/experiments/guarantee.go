package experiments

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/miner/moss"
	"repro/internal/spidermine"
)

// ExactTopK computes the exact top-K largest frequent patterns of g by
// complete enumeration (MoSS) followed by the diameter filter — feasible
// only on small graphs, which is precisely why SpiderMine exists. Returns
// the sizes (edge counts) of the top-K patterns, descending.
func ExactTopK(g *graph.Graph, sigma, k, dmax int) []int {
	res := mineMoSS(g, moss.Config{MinSupport: sigma})
	var sizes []int
	for _, p := range res.Patterns {
		if p.G.Diameter() <= dmax {
			sizes = append(sizes, p.Size())
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > k {
		sizes = sizes[:k]
	}
	return sizes
}

// GuaranteeTrial is one (seed, success) observation of the Theorem 1
// check.
type GuaranteeTrial struct {
	Seed    int64
	Exact   int // exact largest frequent pattern size
	Mined   int // SpiderMine's largest
	Success bool
}

// GuaranteeCheck empirically validates Theorem 1 on a small synthetic
// graph: across trials with different random seeds, SpiderMine must
// recover the exact largest pattern with frequency at least roughly 1−ε.
// The exact answer comes from complete enumeration.
func GuaranteeCheck(trials int, epsilon float64, seed int64) ([]GuaranteeTrial, *Report) {
	cfg := gen.SyntheticConfig{
		N: 150, AvgDeg: 2.5, NumLabels: 40, Seed: seed,
		Large: gen.InjectSpec{NV: 10, Count: 2, Support: 2},
		Small: gen.InjectSpec{NV: 3, Count: 3, Support: 2},
	}
	g, _ := gen.Synthetic(cfg)
	const sigma, k, dmax = 2, 5, 4
	exact := ExactTopK(g, sigma, k, dmax)
	exactTop := 0
	if len(exact) > 0 {
		exactTop = exact[0]
	}
	var out []GuaranteeTrial
	successes := 0
	for t := 0; t < trials; t++ {
		res := mineSM(g, spidermine.Config{
			MinSupport: sigma, K: k, Dmax: dmax, Epsilon: epsilon,
			Seed: seed*1000 + int64(t), Workers: MiningWorkers(),
		})
		mined := 0
		if len(res.Patterns) > 0 {
			mined = res.Patterns[0].Size()
		}
		tr := GuaranteeTrial{Seed: int64(t), Exact: exactTop, Mined: mined, Success: mined >= exactTop}
		if tr.Success {
			successes++
		}
		out = append(out, tr)
	}
	rep := &Report{
		ID:     "guarantee",
		Title:  fmt.Sprintf("Theorem 1 check: top-1 recovery rate over %d seeds (ε=%.2f)", trials, epsilon),
		Header: []string{"trial", "exact top-1 |E|", "mined top-1 |E|", "success"},
	}
	for _, tr := range out {
		rep.Rows = append(rep.Rows, []string{
			itoa(int(tr.Seed)), itoa(tr.Exact), itoa(tr.Mined), fmt.Sprintf("%v", tr.Success)})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("success rate %d/%d (Theorem 1 demands >= %.2f asymptotically)",
			successes, trials, 1-epsilon),
		fmt.Sprintf("exact top-k sizes: %v", exact))
	return out, rep
}
