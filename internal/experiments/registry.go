package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Params tunes a registry run. Quick mode shrinks workloads so the full
// suite finishes in minutes; full mode uses the paper's sizes.
type Params struct {
	Seed  int64
	Quick bool
	// Workers sets mining parallelism for every SpiderMine invocation an
	// experiment performs (0/1 sequential, > 1 that many goroutines, < 0
	// GOMAXPROCS). The parallel engine is deterministic, so regenerated
	// tables are identical across settings — only wall-clock changes.
	Workers int
}

// miningWorkers is the Workers value experiment drivers plumb into every
// spidermine.Config / spider.Options they build. It is process-global
// (atomic, so concurrent -race runs stay clean) because the figure drivers
// predate Params-threading; Run stores Params.Workers here before
// dispatching.
var miningWorkers atomic.Int32

// SetMiningWorkers sets the parallelism applied by subsequent experiment
// runs; see Params.Workers for the encoding.
func SetMiningWorkers(n int) { miningWorkers.Store(int32(n)) }

// MiningWorkers reports the current experiment parallelism setting.
func MiningWorkers() int { return int(miningWorkers.Load()) }

// runCtx is the context experiment drivers mine under, following the same
// process-global pattern as miningWorkers (the drivers predate
// Params-threading). RunContext stores the caller's ctx here for the
// duration of one experiment; drivers fetch it via MiningContext. The
// box keeps atomic.Value's concrete type constant — storing bare
// contexts would panic as soon as two different context implementations
// (timerCtx, backgroundCtx, ...) pass through.
var runCtx atomic.Value // of ctxBox

type ctxBox struct{ ctx context.Context }

// MiningContext returns the context the current experiment run should
// mine under: the ctx passed to RunContext, or context.Background().
func MiningContext() context.Context {
	if b, ok := runCtx.Load().(ctxBox); ok && b.ctx != nil {
		return b.ctx
	}
	return context.Background()
}

// scaleWorkers is MiningWorkers with an all-CPUs default: the large-scale
// sweeps (fig13/fig17-class Stage I workloads) always ran on every core
// before the -workers flag existed, and the engine is deterministic, so
// only an explicit setting should slow them down.
func scaleWorkers() int {
	if w := MiningWorkers(); w != 0 {
		return w
	}
	return -1
}

// Runner produces a report for one experiment id.
type Runner func(Params) *Report

// Registry maps experiment ids (DESIGN.md's per-experiment index) to
// drivers. Populated in init to allow aliases (fig12→fig11, fig17→fig13)
// without an initialization cycle.
var Registry map[string]Runner

func init() {
	Registry = registryEntries()
	Registry["fig12"] = func(p Params) *Report { return Registry["fig11"](p) }
	Registry["fig17"] = func(p Params) *Report { return Registry["fig13"](p) }
}

func registryEntries() map[string]Runner {
	return map[string]Runner{
		"fig4": func(p Params) *Report { return Fig4to8(1, p.Seed) },
		"fig5": func(p Params) *Report { return Fig4to8(2, p.Seed) },
		"fig6": func(p Params) *Report { return Fig4to8(3, p.Seed) },
		"fig7": func(p Params) *Report { return Fig4to8(4, p.Seed) },
		"fig8": func(p Params) *Report { return Fig4to8(5, p.Seed) },
		"fig9": func(p Params) *Report {
			sizes := []int{100, 200, 300, 400, 500}
			timeout := 30 * time.Second
			if p.Quick {
				sizes = []int{100, 200, 300}
				timeout = 3 * time.Second
			}
			return Fig9(sizes, p.Seed, timeout)
		},
		"fig10": func(p Params) *Report {
			sizes := []int{500, 1500, 2500, 3500, 4500, 5500, 6500, 7500, 8500, 9500, 10500}
			if p.Quick {
				sizes = []int{500, 1500, 2500}
			}
			return Fig10(sizes, p.Seed)
		},
		"fig11": func(p Params) *Report {
			sizes := []int{1000, 5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000}
			if p.Quick {
				sizes = []int{1000, 3000, 6000}
			}
			return Fig11and12(sizes, p.Seed)
		},
		"fig13": func(p Params) *Report {
			sizes := []int{1000, 3000, 6000, 10000, 15000, 20000}
			if p.Quick {
				sizes = []int{500, 1000}
			}
			return Fig13and17(sizes, p.Seed)
		},
		"fig14": func(p Params) *Report { return Fig14(p.Seed, scaleOf(p)) },
		"fig15": func(p Params) *Report { return Fig15(p.Seed, scaleOf(p)) },
		"fig16": func(p Params) *Report {
			timeout := 60 * time.Second
			if p.Quick {
				timeout = 3 * time.Second
			}
			return Fig16(p.Seed, timeout)
		},
		"fig18": func(p Params) *Report {
			scale := 1.0
			if p.Quick {
				scale = 0.1
			}
			return Fig18(p.Seed, scale)
		},
		"fig19": func(p Params) *Report {
			scale := 1.0
			if p.Quick {
				scale = 0.1
			}
			return Fig19([]int{1, 2, 3, 4}, p.Seed, scale)
		},
		"fig20": func(p Params) *Report { return Fig20(p.Seed, scaleOf(p)) },
		"fig21": func(p Params) *Report { return Fig21(p.Seed, scaleOf(p)) },
		"appC3": func(p Params) *Report {
			rs := []int{1, 2, 3}
			if p.Quick {
				rs = []int{1, 2}
			}
			return AppC3(rs, p.Seed, scaleOf(p))
		},
		"appC4": func(p Params) *Report {
			return AppC4([]float64{0.45, 0.25, 0.05}, p.Seed, scaleOf(p))
		},
		"lemma2": func(p Params) *Report { return Lemma2Table() },
		"grew":   func(p Params) *Report { return GrewComparison(p.Seed) },
		"guarantee": func(p Params) *Report {
			trials := 6
			if p.Quick {
				trials = 3
			}
			_, rep := GuaranteeCheck(trials, 0.1, p.Seed)
			return rep
		},
		"ablations": func(p Params) *Report { return Ablations(p.Seed) },
		"miners":    MinersComparison,
	}
}

func scaleOf(p Params) float64 {
	if p.Quick {
		return 0.25
	}
	return 1.0
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id without cancellation.
func Run(id string, p Params) (*Report, error) {
	return RunContext(context.Background(), id, p)
}

// RunContext executes one experiment by id under ctx. The context is
// published to the drivers through MiningContext for the duration of the
// run; a fired ctx before the run starts short-circuits with ctx.Err().
func RunContext(ctx context.Context, id string, p Params) (*Report, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	SetMiningWorkers(p.Workers)
	runCtx.Store(ctxBox{ctx})
	defer runCtx.Store(ctxBox{context.Background()})
	return r(p), nil
}
