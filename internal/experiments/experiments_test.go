package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestReportRender(t *testing.T) {
	r := &Report{
		ID:     "demo",
		Title:  "demo title",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo title", "333", "a note", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's index must be registered.
	want := []string{
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "appC3", "appC4", "lemma2", "ablations",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Params{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLemma2Report(t *testing.T) {
	rep := Lemma2Table()
	if len(rep.Rows) < 5 {
		t.Fatal("too few rows")
	}
	// The paper's example row must show M near 85.
	if rep.Rows[0][4] != "86" && rep.Rows[0][4] != "85" {
		t.Fatalf("paper example M = %s", rep.Rows[0][4])
	}
}

func TestFig4Shape(t *testing.T) {
	rep := Fig4to8(1, 42)
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// SpiderMine column (index 1) must have mass at size >= 20;
	// SEuS column (index 3) must not.
	smLarge, seusLarge := false, false
	for _, row := range rep.Rows {
		size := atoiOr(row[0])
		if size >= 20 {
			if row[1] != "0" {
				smLarge = true
			}
			if row[3] != "0" {
				seusLarge = true
			}
		}
	}
	if !smLarge {
		t.Fatal("SpiderMine found no large patterns on GID 1")
	}
	if seusLarge {
		t.Fatal("SEuS should not find large patterns")
	}
}

func TestFig9QuickShape(t *testing.T) {
	rep := Fig9([]int{100, 200}, 1, 2*time.Second)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
}

func TestAppC3Growth(t *testing.T) {
	rep := AppC3([]int{1, 2}, 1, 0.4)
	if len(rep.Rows) != 2 {
		t.Fatal("rows")
	}
	// spider count must grow with r
	if atoiOr(rep.Rows[1][1]) <= atoiOr(rep.Rows[0][1]) {
		t.Fatalf("r=2 should mine more spiders: %s vs %s", rep.Rows[1][1], rep.Rows[0][1])
	}
}

func TestAblationsReport(t *testing.T) {
	rep := Ablations(42)
	if len(rep.Rows) != 4 {
		t.Fatalf("ablation variants %d, want 4", len(rep.Rows))
	}
	// baseline must skip at least as many iso tests as the no-pruning run
	// (which skips none).
	if rep.Rows[1][4] != "0" {
		t.Fatalf("no-pruning variant skipped %s tests", rep.Rows[1][4])
	}
}

func TestFig19SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep := Fig19([]int{1, 2}, 1, 0.05)
	if len(rep.Rows) != 2 {
		t.Fatal("rows")
	}
	// d=1 means Dmax=2: top patterns must respect it (column 1 is |V|).
	if rep.Rows[0][1] == "" {
		t.Fatal("empty cell")
	}
}

func atoiOr(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestMinersFacadeExperiment(t *testing.T) {
	rep, err := Run("miners", Params{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 6 {
		t.Fatalf("miners report has %d rows, want one per registered miner (>= 6)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] == "-" || row[1] == "0" {
			t.Errorf("miner %s returned no patterns through the façade (row %v)", row[0], row)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "lemma2", Params{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The global mining context must reset to Background afterwards.
	if MiningContext().Err() != nil {
		t.Fatal("MiningContext left cancelled after RunContext returned")
	}
}

// TestRunContextLiveContext: RunContext with a real (cancellable,
// non-Background) context must work — regression for the
// atomic.Value "inconsistently typed" panic when different context
// implementations pass through the runCtx global.
func TestRunContextLiveContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := RunContext(ctx, "lemma2", Params{}); err != nil {
		t.Fatal(err)
	}
	// And back-to-back with a plain Run (Background), both directions.
	if _, err := Run("lemma2", Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(ctx, "lemma2", Params{}); err != nil {
		t.Fatal(err)
	}
}
