package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/miner/origami"
	"repro/internal/pattern"
	"repro/internal/spidermine"
	"repro/internal/txdb"
)

// TxConfig sizes the transaction-setting comparison. The paper's setting
// (§5.1.2): 10 ER graphs × 500 vertices, average degree 5, 65 labels, 5
// large 30-vertex patterns injected everywhere; Fig. 15 adds 100 small
// 5-vertex patterns. Below full scale every injection spec shrinks with
// the graph so the pattern budget keeps fitting.
type TxConfig struct {
	NumGraphs  int
	N          int
	NumLabels  int
	LargeNV    int
	LargeCount int
	SmallN     int // number of small injected patterns (0 for Fig. 14, 100 for Fig. 15)
	Seed       int64
}

func paperTxConfig(smallN int, seed int64, scale float64) TxConfig {
	cfg := TxConfig{
		NumGraphs:  10,
		N:          scaled(500, scale),
		NumLabels:  scaled(65, scale),
		LargeNV:    30,
		LargeCount: 5,
		SmallN:     smallN,
		Seed:       seed,
	}
	if scale < 1 {
		cfg.LargeNV = scaled(30, scale*2) // shrink less than the graph: stay "large"
		cfg.LargeCount = 3
		cfg.SmallN = scaled(smallN, scale)
	}
	return cfg
}

// Fig14 reproduces the transaction-setting comparison with few small
// patterns: SpiderMine vs ORIGAMI pattern-size histograms.
func Fig14(seed int64, scale float64) *Report {
	return txCompare("fig14", "transaction setting, 5 large patterns, few small (vs ORIGAMI)",
		paperTxConfig(0, seed, scale),
		"expected shape: both find large patterns; ORIGAMI also returns a mix of small/medium ones")
}

// Fig15 reproduces the comparison after injecting 100 small patterns:
// ORIGAMI's result collapses toward small maximal patterns while
// SpiderMine keeps the large ones.
func Fig15(seed int64, scale float64) *Report {
	return txCompare("fig15", "transaction setting, +100 small patterns (vs ORIGAMI)",
		paperTxConfig(100, seed, scale),
		"expected shape: ORIGAMI mass shifts to small sizes, missing large patterns; SpiderMine unaffected")
}

func txCompare(id, title string, cfg TxConfig, note string) *Report {
	db, _ := txdb.SyntheticTx(txdb.SyntheticTxConfig{
		NumGraphs: cfg.NumGraphs,
		N:         cfg.N,
		AvgDeg:    5,
		NumLabels: cfg.NumLabels,
		Large:     gen.InjectSpec{NV: cfg.LargeNV, Count: cfg.LargeCount, Support: 1},
		Small:     gen.InjectSpec{NV: 5, Count: cfg.SmallN, Support: 1},
		Seed:      cfg.Seed,
	})
	smRes := mineSMTx(db, spidermine.Config{
		MinSupport: cfg.NumGraphs / 2, K: 10, Dmax: 6, Seed: cfg.Seed,
		Workers: MiningWorkers(),
		// Transaction merging needs the same union structure at σ distinct
		// sites; extra randomized restarts of Stages II-III (a §4.2.1
		// suggestion) substantially raise the hit rate at negligible cost
		// since Stage I is shared.
		Restarts: 3,
	})
	smHist := SizeHistogram(smRes.Patterns)

	or := origami.Mine(db, origami.Config{
		MinSupport: cfg.NumGraphs / 2, Samples: 60, Seed: cfg.Seed,
	})
	orPats := make([]*pattern.Pattern, 0, len(or))
	for _, r := range or {
		orPats = append(orPats, r.P)
	}
	orHist := SizeHistogram(orPats)

	header, rows := histogramRows([]string{"SpiderMine", "ORIGAMI"},
		[]map[int]int{smHist, orHist})
	return &Report{
		ID:     id,
		Title:  title,
		Header: header,
		Rows:   rows,
		Notes: []string{note,
			fmt.Sprintf("database: %d graphs x %d vertices, %d labels, %d small patterns",
				cfg.NumGraphs, cfg.N, cfg.NumLabels, cfg.SmallN)},
	}
}
