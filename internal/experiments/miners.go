package experiments

import (
	"context"
	"errors"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/miner/moss"
	"repro/internal/spidermine"
	"repro/internal/txdb"
	"repro/mine"
)

// The figure drivers mine through these helpers so every SpiderMine and
// MoSS invocation — the wall-clock-dominant ones — observes the context
// published by RunContext. A fired context yields the engines'
// deterministic committed partial results; the driver tables then simply
// report what was mined before the cutoff, mirroring how the paper
// reports "-" for runs its 10-hour budget killed.

// mineSM runs SpiderMine under the experiment run's context.
func mineSM(g *graph.Graph, cfg spidermine.Config) *spidermine.Result {
	res, _ := spidermine.MineContext(MiningContext(), g, cfg)
	return res
}

// mineSMTx runs transaction-setting SpiderMine under the run's context.
func mineSMTx(db *txdb.DB, cfg spidermine.Config) *spidermine.Result {
	res, _ := spidermine.MineTransactionsContext(MiningContext(), db, cfg)
	return res
}

// mineMoSS runs the complete miner under the run's context (on top of
// whatever cfg.Timeout the driver already imposes).
func mineMoSS(g *graph.Graph, cfg moss.Config) *moss.Result {
	res, _ := moss.MineContext(MiningContext(), g, cfg)
	return res
}

// MinersComparison runs every engine registered in the public mine façade
// over the GID-1 synthetic network — the cross-miner comparison the
// paper's Figures 4–8 make, expressed through the serving-layer API (one
// Host, uniform Options, uniform Result). It doubles as the façade's
// integration harness inside the experiment suite: every registered name
// must mine through mine.Get(name).Mine(ctx, host, opts) and return a
// schema-valid Result. Complete miners (MoSS) run under a wall-clock
// budget; the truncation column records who exhausted it — the paper's
// "-" entries, as data.
func MinersComparison(p Params) *Report {
	g, injected := gen.Synthetic(gen.GIDConfig(1, p.Seed))
	budget := 20 * time.Second
	if p.Quick {
		budget = 2 * time.Second
	}
	rep := &Report{
		ID:     "miners",
		Title:  "façade: every registered miner on GID 1, uniform interface",
		Header: []string{"miner", "patterns", "top|V|", "top|E|", "elapsed", "truncated"},
		Notes: []string{
			"all engines invoked as mine.Get(name).Mine(ctx, host, opts) with identical Options",
			itoa(len(injected)) + " large patterns injected; only SpiderMine carries a recovery guarantee (Lemma 2)",
		},
	}
	ctx := MiningContext()
	for _, name := range mine.Names() {
		m, err := mine.Get(name)
		if err != nil {
			rep.Rows = append(rep.Rows, []string{name, "-", "-", "-", "-", err.Error()})
			continue
		}
		res, err := m.Mine(ctx, mine.SingleGraph(g), mine.Options{
			MinSupport:   2,
			K:            10,
			Dmax:         4,
			Seed:         p.Seed,
			Workers:      p.Workers,
			MaxPatterns:  50,
			MaxWallClock: budget,
		})
		if err != nil {
			row := []string{name, "-", "-", "-", "-", "error: " + err.Error()}
			if res != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				// RunContext's ctx fired: report the committed partials.
				row = []string{name, itoa(len(res.Patterns)), "-", "-", res.Stats.Elapsed.Round(time.Millisecond).String(), string(res.Truncated)}
			}
			rep.Rows = append(rep.Rows, row)
			continue
		}
		topV, topE := "-", "-"
		if len(res.Patterns) > 0 {
			topV = itoa(res.Patterns[0].NV())
			topE = itoa(res.Patterns[0].Size())
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			itoa(len(res.Patterns)),
			topV,
			topE,
			res.Stats.Elapsed.Round(time.Millisecond).String(),
			string(res.Truncated),
		})
	}
	return rep
}
