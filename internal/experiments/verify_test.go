package experiments

import (
	"testing"
	"time"
)

func TestCellParsers(t *testing.T) {
	if cellInt(" 42 ") != 42 || cellInt("-") != -1 || cellInt("x") != -1 {
		t.Fatal("cellInt wrong")
	}
	if cellDur("1.5s") != 1500*time.Millisecond || cellDur("-") != 0 {
		t.Fatal("cellDur wrong")
	}
	if ratio(2*time.Second, time.Second) != 2 || ratio(time.Second, 0) != 0 {
		t.Fatal("ratio wrong")
	}
}

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("malformed claim %+v", c)
		}
		if _, ok := Registry[c.ID]; !ok {
			t.Fatalf("claim %s references unknown experiment", c.ID)
		}
		seen[c.ID] = true
	}
	// The headline artifacts must all carry claims.
	for _, id := range []string{"fig4", "fig11", "fig16", "fig18", "lemma2", "appC3", "appC4"} {
		if !seen[id] {
			t.Errorf("no claim for %s", id)
		}
	}
}

func TestClaimChecksOnSyntheticReports(t *testing.T) {
	// lemma2's claim against the real (cheap) report.
	rep := Lemma2Table()
	for _, c := range Claims() {
		if c.ID == "lemma2" {
			if err := c.Check(rep); err != nil {
				t.Fatalf("lemma2 claim failed: %v", err)
			}
		}
	}
	// fig18's claim on a fabricated report: in-band sizes pass, a wild
	// outlier fails.
	var fig18 Claim
	for _, c := range Claims() {
		if c.ID == "fig18" {
			fig18 = c
		}
	}
	ok := &Report{Rows: [][]string{{"6", "50"}, {"7", "60"}, {"8", "55"}}}
	if err := fig18.Check(ok); err != nil {
		t.Fatalf("in-band sizes rejected: %v", err)
	}
	bad := &Report{Rows: [][]string{{"6", "10"}, {"7", "60"}}}
	if err := fig18.Check(bad); err == nil {
		t.Fatal("outlier accepted")
	}
	missing := &Report{Rows: [][]string{{"6", "-"}}}
	if err := fig18.Check(missing); err == nil {
		t.Fatal("missing pattern accepted")
	}
}

func TestVerifyAllCheapSubset(t *testing.T) {
	// Running every claim is the CLI's job; here exercise the machinery on
	// the cheap claims by filtering the registry through a fake params.
	lines, _ := verifySubset(Params{Seed: 1, Quick: true}, map[string]bool{"lemma2": true})
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
}

// verifySubset mirrors VerifyAll for a subset of claim ids (test helper).
func verifySubset(p Params, ids map[string]bool) (lines []string, failures int) {
	cache := map[string]*Report{}
	for _, c := range Claims() {
		if !ids[c.ID] {
			continue
		}
		rep, ok := cache[c.ID]
		if !ok {
			var err error
			rep, err = Run(c.ID, p)
			if err != nil {
				failures++
				continue
			}
			cache[c.ID] = rep
		}
		if err := c.Check(rep); err != nil {
			failures++
			lines = append(lines, "FAIL "+c.ID)
		} else {
			lines = append(lines, "PASS "+c.ID)
		}
	}
	return lines, failures
}
