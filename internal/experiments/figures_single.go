package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/miner/moss"
	"repro/internal/miner/seus"
	"repro/internal/miner/subdue"
	"repro/internal/pattern"
	"repro/internal/spider"
	"repro/internal/spidermine"
	"repro/internal/support"
)

// randFor derives a deterministic RNG from a base seed and a variant.
func randFor(seed, variant int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + variant))
}

// Fig4to8 reproduces the pattern-size distributions of Figures 4–8: on the
// Table 1 dataset with the given GID (1..5), SpiderMine (σ=2, K=10,
// Dmax=4) against SUBDUE and SEuS.
func Fig4to8(gid int, seed int64) *Report {
	g, _ := gen.Synthetic(gen.GIDConfig(gid, seed))
	smRes := mineSM(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Epsilon: 0.1, Seed: seed, Workers: MiningWorkers()})
	smHist := SizeHistogram(smRes.Patterns)

	sd := subdue.Mine(g, subdue.Config{MinSupport: 2})
	sdPats := make([]*pattern.Pattern, 0, len(sd))
	for _, s := range sd {
		sdPats = append(sdPats, s.P)
	}
	sdHist := SizeHistogram(sdPats)

	se := seus.Mine(g, seus.Config{MinSupport: 2})
	sePats := make([]*pattern.Pattern, 0, len(se))
	for _, r := range se {
		sePats = append(sePats, r.P)
	}
	seHist := SizeHistogram(sePats)

	header, rows := histogramRows([]string{"SpiderMine", "SUBDUE", "SEuS"},
		[]map[int]int{smHist, sdHist, seHist})
	return &Report{
		ID:     fmt.Sprintf("fig%d", 3+gid),
		Title:  fmt.Sprintf("pattern-size distribution, GID %d (Table 1)", gid),
		Header: header,
		Rows:   rows,
		Notes: []string{
			"expected shape: SpiderMine mass near |V|=30 (injected large patterns); SUBDUE/SEuS mass at |V|<=4",
			fmt.Sprintf("graph: %v", g),
		},
	}
}

// Fig9 reproduces the runtime comparison against the complete miner MoSS
// on sparse graphs (d=2, f=70), |V| in sizes.
func Fig9(sizes []int, seed int64, mossTimeout time.Duration) *Report {
	rep := &Report{
		ID:     "fig9",
		Title:  "runtime vs |V|: SpiderMine vs MoSS (ER, d=2, f=70)",
		Header: []string{"|V|", "SpiderMine", "MoSS", "MoSS complete?"},
	}
	for _, n := range sizes {
		cfg := gen.SyntheticConfig{N: n, AvgDeg: 2, NumLabels: 70, Seed: seed,
			Large: gen.InjectSpec{NV: 20, Count: 2, Support: 2},
			Small: gen.InjectSpec{NV: 3, Count: 3, Support: 2}}
		g, _ := gen.Synthetic(cfg)
		t0 := time.Now()
		mineSM(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: seed, Workers: MiningWorkers()})
		smT := time.Since(t0)
		t1 := time.Now()
		mr := mineMoSS(g, moss.Config{MinSupport: 2, Timeout: mossTimeout})
		moT := time.Since(t1)
		rep.Rows = append(rep.Rows, []string{
			itoa(n), smT.String(), moT.String(), fmt.Sprintf("%v", mr.Completed)})
	}
	rep.Notes = append(rep.Notes, "expected shape: MoSS grows much faster with |V| and eventually fails to complete")
	return rep
}

// Fig10 reproduces the runtime comparison against SUBDUE (ER, d=3, f=100,
// Dmax=10, σ=2, K=10).
func Fig10(sizes []int, seed int64) *Report {
	rep := &Report{
		ID:     "fig10",
		Title:  "runtime vs |V|: SpiderMine vs SUBDUE (ER, d=3, f=100)",
		Header: []string{"|V|", "SpiderMine", "SUBDUE"},
	}
	for _, n := range sizes {
		g := genScaleGraph(n, seed)
		t0 := time.Now()
		mineSM(g, scaleMineConfig(seed))
		smT := time.Since(t0)
		t1 := time.Now()
		subdue.Mine(g, subdue.Config{MinSupport: 2})
		sdT := time.Since(t1)
		rep.Rows = append(rep.Rows, []string{itoa(n), smT.String(), sdT.String()})
	}
	rep.Notes = append(rep.Notes, "expected shape: SUBDUE runtime grows super-linearly; SpiderMine near-linear")
	return rep
}

// genScaleGraph builds the Fig. 10–12 workload: ER with average degree 3,
// 100 labels, large patterns injected proportionally to graph size so
// larger graphs hold larger discoverable patterns (Fig. 12 reports largest
// pattern sizes growing with |V|).
func genScaleGraph(n int, seed int64) *graph.Graph {
	largeNV := n / 170 // the paper's Fig. 12 curve: ~230 vertices at |V|=40k
	if largeNV < 10 {
		largeNV = 10
	}
	if largeNV > 240 {
		largeNV = 240
	}
	cfg := gen.SyntheticConfig{
		N: n, AvgDeg: 3, NumLabels: 100, Seed: seed,
		Large: gen.InjectSpec{NV: largeNV, Count: 3, Support: 2},
		Small: gen.InjectSpec{NV: 4, Count: 5, Support: 3},
	}
	g, _ := gen.Synthetic(cfg)
	return g
}

// scaleMineConfig is the miner configuration of the Fig. 10-12 sweeps:
// the paper's adopted harmful-overlap measure (overlapping shifted
// embeddings must not fake support, or background chains grow without
// bound on near-uniform ER graphs) and a Stage I cap against the
// sub-star explosion between look-alike high-degree neighborhoods.
func scaleMineConfig(seed int64) spidermine.Config {
	return spidermine.Config{
		MinSupport:       2,
		K:                10,
		Dmax:             10,
		Seed:             seed,
		Measure:          support.HarmfulOverlap,
		MaxLeavesPerStar: 8,
		MaxSpiders:       500_000,
		Workers:          MiningWorkers(),
	}
}

// Fig11and12 reproduces the scalability curves: SpiderMine runtime
// (Fig. 11) and the size of the largest discovered pattern (Fig. 12) as
// |V| grows (the paper sweeps to 40,000 vertices, finding patterns of
// size 230 in under two minutes).
func Fig11and12(sizes []int, seed int64) *Report {
	rep := &Report{
		ID:     "fig11+12",
		Title:  "SpiderMine scalability (ER, d=3, f=100): runtime and largest pattern",
		Header: []string{"|V|", "runtime", "largest |V(P)|", "largest |E(P)|", "#spiders"},
	}
	for _, n := range sizes {
		g := genScaleGraph(n, seed)
		t0 := time.Now()
		res := mineSM(g, scaleMineConfig(seed))
		el := time.Since(t0)
		lv, le := 0, 0
		if len(res.Patterns) > 0 {
			lv, le = res.Patterns[0].NV(), res.Patterns[0].Size()
		}
		rep.Rows = append(rep.Rows, []string{itoa(n), el.String(), itoa(lv), itoa(le), itoa(res.Stats.NumSpiders)})
	}
	rep.Notes = append(rep.Notes, "expected shape: near-linear runtime; largest pattern grows with |V|")
	return rep
}

// Fig13and17 reproduces the scale-free experiments: on Barabási–Albert
// graphs, the number of r-spiders and SpiderMine runtime (Fig. 17) plus
// the largest pattern found (Fig. 13), swept over graph size.
func Fig13and17(sizes []int, seed int64) *Report {
	rep := &Report{
		ID:     "fig13+17",
		Title:  "scale-free networks (BA): spiders, runtime, largest pattern",
		Header: []string{"|V|", "|E|", "#r-spiders", "runtime", "largest |E(P)|"},
	}
	for _, n := range sizes {
		rng := randFor(seed, int64(n))
		g := gen.BarabasiAlbert(n, 2, 100, rng)
		t0 := time.Now()
		res := mineSM(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 6, Seed: seed,
			MaxLeavesPerStar: 8, MaxSpiders: 1_000_000,
			Measure: support.HarmfulOverlap, Workers: scaleWorkers()})
		el := time.Since(t0)
		le := 0
		if len(res.Patterns) > 0 {
			le = res.Patterns[0].Size()
		}
		rep.Rows = append(rep.Rows, []string{itoa(n), itoa(g.M()), itoa(res.Stats.NumSpiders), el.String(), itoa(le)})
	}
	rep.Notes = append(rep.Notes, "expected shape: #spiders rises sharply with size (high-degree hubs)")
	return rep
}

// Fig16 reproduces the runtime table over GID 1–5 for all four
// single-graph miners; MoSS entries show "-" when the timeout aborts the
// complete enumeration, as in the paper.
func Fig16(seed int64, mossTimeout time.Duration) *Report {
	rep := &Report{
		ID:     "fig16",
		Title:  "runtime comparison on GID 1-5 (Table 1 datasets)",
		Header: []string{"GID", "SpiderMine", "SUBDUE", "SEuS", "MoSS"},
	}
	for gid := 1; gid <= 5; gid++ {
		g, _ := gen.Synthetic(gen.GIDConfig(gid, seed))
		t0 := time.Now()
		mineSM(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: seed, Workers: MiningWorkers()})
		smT := time.Since(t0)
		t1 := time.Now()
		subdue.Mine(g, subdue.Config{MinSupport: 2})
		sdT := time.Since(t1)
		t2 := time.Now()
		seus.Mine(g, seus.Config{MinSupport: 2})
		seT := time.Since(t2)
		mr := mineMoSS(g, moss.Config{MinSupport: 2, Timeout: mossTimeout})
		moCell := mr.Elapsed.String()
		if !mr.Completed {
			moCell = "-" // aborted, like the paper's 10-hour cutoff
		}
		rep.Rows = append(rep.Rows, []string{itoa(gid), smT.String(), sdT.String(), seT.String(), moCell})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: SpiderMine fastest or comparable on all GIDs; MoSS '-' on the denser GIDs (2, 4, 5)")
	return rep
}

// Fig18 reproduces the robustness experiment (Fig. 18 / Table 3): the
// sizes of the top-5 patterns on GID 6–10 with Dmax=6, σ=10, K=5. Scale
// shrinks the Table 3 graph sizes for affordable runs; Scale=1 is the
// paper's setting.
func Fig18(seed int64, scale float64) *Report {
	rep := &Report{
		ID:     "fig18",
		Title:  "robustness to pattern distribution (GID 6-10): top-5 pattern sizes |E|",
		Header: []string{"GID", "top1", "top2", "top3", "top4", "top5", "runtime"},
	}
	for gid := 6; gid <= 10; gid++ {
		cfg := gen.GIDConfigLarge(gid, seed)
		cfg.N = scaled(cfg.N, scale)
		cfg.NumLabels = scaled(cfg.NumLabels, scale)
		// Shrink the injected noise with the graph so pattern density (and
		// hence runtime behaviour) matches the paper's regime.
		cfg.Small.Count = scaled(cfg.Small.Count, scale)
		g, _ := gen.Synthetic(cfg)
		t0 := time.Now()
		res := mineSM(g, spidermine.Config{MinSupport: 10, K: 5, Dmax: 6, Seed: seed, Workers: MiningWorkers()})
		el := time.Since(t0)
		row := []string{itoa(gid)}
		for i := 0; i < 5; i++ {
			if i < len(res.Patterns) {
				row = append(row, itoa(res.Patterns[i].Size()))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, el.String())
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "expected shape: top-5 sizes stay consistent across GIDs despite growing small-pattern noise")
	return rep
}

// Fig19 reproduces the varied-Dmax experiment on the GID-7 configuration:
// top-5 pattern sizes for d = Dmax/2 in ds.
func Fig19(ds []int, seed int64, scale float64) *Report {
	cfg := gen.GIDConfigLarge(7, seed)
	cfg.N = scaled(cfg.N, scale)
	cfg.NumLabels = scaled(cfg.NumLabels, scale)
	cfg.Small.Count = scaled(cfg.Small.Count, scale)
	g, _ := gen.Synthetic(cfg)
	rep := &Report{
		ID:     "fig19",
		Title:  "varied Dmax on GID-7 data: top-5 pattern sizes |V|",
		Header: []string{"d=Dmax/2", "top1", "top2", "top3", "top4", "top5"},
	}
	for _, d := range ds {
		res := mineSM(g, spidermine.Config{MinSupport: 10, K: 5, Dmax: 2 * d, Seed: seed, Workers: MiningWorkers()})
		row := []string{itoa(d)}
		for i := 0; i < 5; i++ {
			if i < len(res.Patterns) {
				row = append(row, itoa(res.Patterns[i].NV()))
			} else {
				row = append(row, "-")
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "expected shape: stable results unless Dmax is too small (d=1) for spiders to merge")
	return rep
}

// SpiderCountOnly mines just Stage I on a graph (Fig. 17's spider counts
// without the full pipeline), returning the count and elapsed time. The
// enumeration is capped: scale-free hubs make the frequent sub-star
// lattice explode combinatorially (the Fig. 17 phenomenon), so an
// uncapped run on a 10k-vertex BA graph does not terminate in reasonable
// time.
func SpiderCountOnly(n int, seed int64) (int, time.Duration) {
	rng := randFor(seed, int64(n))
	g := gen.BarabasiAlbert(n, 2, 100, rng)
	t0 := time.Now()
	stars := spider.MineStars(g, spider.Options{
		MinSupport: 2, MaxLeaves: 6, MaxSpiders: 500_000, Workers: scaleWorkers(),
	})
	return len(stars), time.Since(t0)
}
