package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// Sites used across the tests; package-level like production sites.
var (
	tpError = New("fault-test/error")
	tpPanic = New("fault-test/panic")
	tpDelay = New("fault-test/delay")
	tpRatio = New("fault-test/ratio")
	tpRace  = New("fault-test/race")
	tpEnvA  = New("fault-test/env-a")
	tpEnvB  = New("fault-test/env-b")
)

func TestDisarmedPasses(t *testing.T) {
	defer DisarmAll()
	if err := tpError.Hit(); err != nil {
		t.Fatalf("disarmed Hit: %v", err)
	}
	if tpError.Armed() {
		t.Error("fresh site reports armed")
	}
	if hits, trips := tpError.Counters(); hits != 0 || trips != 0 {
		t.Errorf("disarmed counters %d/%d, want 0/0", hits, trips)
	}
}

func TestErrorInjection(t *testing.T) {
	defer DisarmAll()
	organic := errors.New("disk on fire")
	tpError.Arm(Spec{Kind: KindError, Err: organic})
	err := tpError.Hit()
	if err == nil {
		t.Fatal("armed error site passed")
	}
	if !errors.Is(err, organic) {
		t.Errorf("injected error %v does not unwrap to the spec error", err)
	}
	if !IsInjected(err) {
		t.Error("IsInjected false on an injected error")
	}
	if !strings.Contains(err.Error(), tpError.Name()) {
		t.Errorf("injected error %q does not name its site", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Transient() {
		t.Errorf("non-transient arming produced Transient()=true (%v)", err)
	}
	if IsInjected(organic) {
		t.Error("IsInjected true on an organic error")
	}

	tpError.Arm(Spec{Kind: KindError, Err: organic, Transient: true})
	if err := tpError.Hit(); !errors.As(err, &fe) || !fe.Transient() {
		t.Errorf("transient arming lost the marker: %v", err)
	}

	tpError.Disarm()
	if err := tpError.Hit(); err != nil {
		t.Fatalf("disarmed site still injects: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	defer DisarmAll()
	tpPanic.Arm(Spec{Kind: KindPanic, Msg: "boom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed panic site did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "boom") || !strings.Contains(msg, tpPanic.Name()) {
			t.Errorf("panic value %v, want message and site name", r)
		}
	}()
	tpPanic.Hit()
}

func TestDelayInjection(t *testing.T) {
	defer DisarmAll()
	tpDelay.Arm(Spec{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := tpDelay.Hit(); err != nil {
		t.Fatalf("delay Hit returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delay Hit returned after %v, want >= 30ms", d)
	}

	// A cancelled context cuts the delay short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tpDelay.Arm(Spec{Kind: KindDelay, Delay: 10 * time.Second})
	start = time.Now()
	if err := tpDelay.HitCtx(ctx); err != nil {
		t.Fatalf("delay HitCtx returned error: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled delay took %v", d)
	}
}

func TestOneInAndLimit(t *testing.T) {
	defer DisarmAll()
	tpRatio.Arm(Spec{Kind: KindError, OneIn: 3, Limit: 2})
	var injected int
	for i := 0; i < 12; i++ {
		if tpRatio.Hit() != nil {
			injected++
			// One-in-3: only every third evaluation trips.
			if (i+1)%3 != 0 {
				t.Errorf("evaluation %d tripped outside the one-in-3 cadence", i+1)
			}
		}
	}
	if injected != 2 {
		t.Errorf("injected %d errors, want 2 (limit)", injected)
	}
	hits, trips := tpRatio.Counters()
	if hits != 12 || trips != 2 {
		t.Errorf("counters %d/%d, want 12/2", hits, trips)
	}
	// Re-arming resets counters.
	tpRatio.Arm(Spec{Kind: KindError})
	if hits, trips := tpRatio.Counters(); hits != 0 || trips != 0 {
		t.Errorf("counters after re-arm %d/%d, want 0/0", hits, trips)
	}
}

func TestRegistry(t *testing.T) {
	defer DisarmAll()
	if _, ok := Lookup("fault-test/error"); !ok {
		t.Error("registered site not found")
	}
	if _, ok := Lookup("no/such/site"); ok {
		t.Error("unknown site found")
	}
	if err := Arm("no/such/site", Spec{}); err == nil {
		t.Error("Arm on unknown site succeeded")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted/unique: %v", names)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate New did not panic")
			}
		}()
		New("fault-test/error")
	}()
}

func TestArmAllDSL(t *testing.T) {
	defer DisarmAll()
	dsl := "fault-test/env-a=flake(io timeout),2,1; fault-test/env-b=delay(5ms)"
	if err := ArmAll(dsl); err != nil {
		t.Fatal(err)
	}
	if err := tpEnvA.Hit(); err != nil {
		t.Errorf("one-in-2 site tripped on first evaluation: %v", err)
	}
	err := tpEnvA.Hit()
	if err == nil {
		t.Fatal("one-in-2 site did not trip on second evaluation")
	}
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() || !strings.Contains(err.Error(), "io timeout") {
		t.Errorf("flake arming produced %v, want transient io timeout", err)
	}
	for i := 0; i < 4; i++ {
		if err := tpEnvA.Hit(); err != nil {
			t.Errorf("limit-1 site tripped again: %v", err)
		}
	}
	if !tpEnvB.Armed() {
		t.Error("second DSL entry not armed")
	}

	for _, bad := range []string{
		"fault-test/env-a",                   // no trigger
		"fault-test/env-a=explode(x)",        // unknown kind
		"fault-test/env-a=delay(notadur)",    // bad duration
		"fault-test/env-a=error(x),0",        // non-positive modifier
		"fault-test/env-a=error(x),1,2,3",    // too many modifiers
		"fault-test/env-a=error(x)garbage",   // trailer without comma
		"no/such/site=error(x)",              // unknown site
		"fault-test/env-a=error(x);bogus=no", // second entry bad
	} {
		if err := ArmAll(bad); err == nil {
			t.Errorf("ArmAll(%q) succeeded, want parse error", bad)
		}
	}
}

// TestConcurrentHit races arming, disarming, and evaluation; run under
// -race in CI.
func TestConcurrentHit(t *testing.T) {
	defer DisarmAll()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tpRace.Hit()
					tpRace.Counters()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		tpRace.Arm(Spec{Kind: KindError, OneIn: 2})
		tpRace.Disarm()
	}
	close(stop)
	wg.Wait()
}

// TestPointDisarmedNoAlloc pins the disarmed fast path at zero
// allocations — failpoints sit on serving paths and must be free when
// idle.
func TestPointDisarmedNoAlloc(t *testing.T) {
	defer DisarmAll()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := tpError.Hit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disarmed Hit allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkPointDisarmed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tpError.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}
