// Package fault is a registry-driven failpoint framework: named
// injection sites compiled into production code paths that do nothing —
// one atomic pointer load, no allocation — until a test (or an operator,
// via an environment DSL) arms them with a failure to inject.
//
// A site is declared once, at package init of the code it instruments:
//
//	var fpStoreGet = fault.New("serve/store/get")
//
// and evaluated where the failure would naturally surface:
//
//	if err := fpStoreGet.Hit(); err != nil { ... }
//
// Armed specs support four trigger shapes, composable per site:
//
//   - error: Hit returns the configured error (wrapped in *fault.Error,
//     so callers can detect injection with IsInjected and sites keep
//     their natural error-return signatures). Transient marks the
//     injected error as retryable for layers that classify failures.
//   - panic: Hit panics, exercising recover-based containment above it.
//   - delay: Hit sleeps (HitCtx waits cancellably), then passes.
//   - one-in-N / limit: the spec trips on every Nth evaluation and/or
//     disarms its effect after a bounded number of trips, so a single
//     arming can model intermittent or self-healing faults.
//
// The framework exists so failure semantics are testable on demand: the
// chaos suite in internal/serve arms each site under concurrent load and
// asserts the serving invariants hold. Disarmed sites are free — see
// TestPointDisarmedNoAlloc / BenchmarkPointDisarmed.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed failpoint does when it trips.
type Kind int

const (
	// KindError makes Hit return the spec's error.
	KindError Kind = iota
	// KindPanic makes Hit panic with the spec's message.
	KindPanic
	// KindDelay makes Hit sleep for the spec's delay, then pass.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Spec configures an armed failpoint.
type Spec struct {
	Kind Kind
	// Err is the error KindError injects (a generic one is synthesized
	// when nil). Hit wraps it in *Error, preserving errors.Is/As chains.
	Err error
	// Transient marks injected errors retryable: the *Error returned by
	// Hit reports Transient() == true, which transient-aware layers (see
	// mine.IsTransient) treat as "safe to retry".
	Transient bool
	// Msg is the KindPanic panic value (a generic one is synthesized
	// when empty).
	Msg string
	// Delay is the KindDelay sleep duration.
	Delay time.Duration
	// OneIn trips the failpoint on every Nth evaluation (values <= 1
	// trip every time). The counter is per arming.
	OneIn int64
	// Limit stops injecting after that many trips (0 = unlimited);
	// further evaluations pass. The site stays armed — Disarm clears it.
	Limit int64
}

// Error wraps every injected error with its site name, so failures
// reaching logs or API responses are attributable and callers can
// distinguish injected faults (IsInjected) from organic ones.
// errors.Is/As traverse into the wrapped error.
type Error struct {
	Site      string
	Err       error
	transient bool
}

func (e *Error) Error() string { return "fault: injected at " + e.Site + ": " + e.Err.Error() }

func (e *Error) Unwrap() error { return e.Err }

// Transient reports whether the arming marked this failure retryable.
func (e *Error) Transient() bool { return e.transient }

// IsInjected reports whether err (or anything it wraps) came from a
// failpoint.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// armed is the per-arming state: the immutable spec plus trip counters.
// A fresh armed is installed on every Arm, so counters reset.
type armed struct {
	spec  Spec
	hits  atomic.Int64
	trips atomic.Int64
}

// Point is one named injection site. The zero Point is not valid — sites
// come from New, which registers them for Arm/Lookup by name.
type Point struct {
	name string
	// state is nil while disarmed; Hit's fast path is this single
	// atomic load.
	state atomic.Pointer[armed]
}

// Name returns the site's registry name.
func (p *Point) Name() string { return p.name }

// Arm installs spec at this site, replacing any previous arming (and
// resetting its counters).
func (p *Point) Arm(spec Spec) {
	if spec.Kind == KindError && spec.Err == nil {
		spec.Err = errors.New("injected failure")
	}
	if spec.Kind == KindPanic && spec.Msg == "" {
		spec.Msg = "injected panic"
	}
	p.state.Store(&armed{spec: spec})
}

// Disarm returns the site to its no-op state.
func (p *Point) Disarm() { p.state.Store(nil) }

// Armed reports whether the site currently has a spec installed (even
// one whose Limit is exhausted).
func (p *Point) Armed() bool { return p.state.Load() != nil }

// Counters reports how many times the site was evaluated and how many
// times it tripped under the current arming (0, 0 while disarmed).
func (p *Point) Counters() (hits, trips int64) {
	s := p.state.Load()
	if s == nil {
		return 0, 0
	}
	return s.hits.Load(), s.trips.Load()
}

// Hit evaluates the failpoint: nil while disarmed (or when the trigger
// does not fire), the injected *Error for KindError, a panic for
// KindPanic, a sleep-then-nil for KindDelay. Disarmed cost is one atomic
// pointer load and zero allocation.
func (p *Point) Hit() error { return p.eval(nil) }

// HitCtx is Hit with cancellable delays: a KindDelay trip waits on the
// timer or ctx, whichever fires first, and returns nil either way (a
// cancelled delay reports through the caller's own ctx handling).
func (p *Point) HitCtx(ctx context.Context) error { return p.eval(ctx) }

func (p *Point) eval(ctx context.Context) error {
	s := p.state.Load()
	if s == nil {
		return nil
	}
	return s.trip(p.name, ctx)
}

// trip runs the armed slow path; split out so eval stays inlinable.
func (s *armed) trip(site string, ctx context.Context) error {
	n := s.hits.Add(1)
	if s.spec.OneIn > 1 && n%s.spec.OneIn != 0 {
		return nil
	}
	if s.spec.Limit > 0 {
		if s.trips.Add(1) > s.spec.Limit {
			s.trips.Add(-1) // keep Counters at the number of real trips
			return nil
		}
	} else {
		s.trips.Add(1)
	}
	switch s.spec.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s: %s", site, s.spec.Msg))
	case KindDelay:
		if ctx == nil || ctx.Done() == nil {
			time.Sleep(s.spec.Delay)
			return nil
		}
		t := time.NewTimer(s.spec.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	default:
		return &Error{Site: site, Err: s.spec.Err, transient: s.spec.Transient}
	}
}

var (
	regMu sync.Mutex
	reg   = make(map[string]*Point)
)

// New declares and registers a named injection site. Names identify
// sites in the env DSL and test API; declaring a duplicate or empty name
// panics (sites are package-level singletons, so a collision is a
// programming error, caught at init).
func New(name string) *Point {
	if name == "" {
		panic("fault: New with empty site name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("fault: duplicate site " + name)
	}
	p := &Point{name: name}
	reg[name] = p
	return p
}

// Lookup finds a registered site by name.
func Lookup(name string) (*Point, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	p, ok := reg[name]
	return p, ok
}

// Names lists every registered site in sorted order — the failpoint
// catalog.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arm arms a registered site by name; unknown names error (catching
// typos in env-armed deployments).
func Arm(name string, spec Spec) error {
	p, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("fault: unknown site %q (have %s)", name, strings.Join(Names(), ", "))
	}
	p.Arm(spec)
	return nil
}

// DisarmAll returns every registered site to its no-op state. Tests that
// arm sites should defer it.
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range reg {
		p.state.Store(nil)
	}
}

// ArmAll arms sites from a semicolon-separated DSL, the env-variable
// arming surface of daemons:
//
//	site=kind(arg)[,oneIn[,limit]]
//
// where kind is one of
//
//	error(message)  inject an error
//	flake(message)  inject a transient (retryable) error
//	panic(message)  inject a panic
//	delay(duration) inject a sleep (Go duration syntax, e.g. 50ms)
//
// and the optional integers trip the site on every oneIn-th evaluation
// and stop after limit trips. Example:
//
//	SPIDERSERVED_FAULTS='serve/cache/put=error(disk full),3;serve/miner/invoke=flake(io timeout),1,2'
//
// Any parse error or unknown site fails the whole call with nothing
// armed.
func ArmAll(dsl string) error {
	type arming struct {
		name string
		spec Spec
	}
	var armings []arming
	for _, entry := range strings.Split(dsl, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, trigger, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("fault: bad entry %q (want site=kind(arg))", entry)
		}
		if _, known := Lookup(name); !known {
			return fmt.Errorf("fault: unknown site %q (have %s)", name, strings.Join(Names(), ", "))
		}
		spec, err := parseTrigger(strings.TrimSpace(trigger))
		if err != nil {
			return fmt.Errorf("fault: site %q: %w", name, err)
		}
		armings = append(armings, arming{name, spec})
	}
	for _, a := range armings {
		if err := Arm(a.name, a.spec); err != nil {
			return err
		}
	}
	return nil
}

// parseTrigger parses "kind(arg)[,oneIn[,limit]]".
func parseTrigger(s string) (Spec, error) {
	var spec Spec
	lparen := strings.IndexByte(s, '(')
	rparen := strings.LastIndexByte(s, ')')
	if lparen < 0 || rparen < lparen {
		return spec, fmt.Errorf("bad trigger %q (want kind(arg))", s)
	}
	kind, arg, rest := s[:lparen], s[lparen+1:rparen], strings.TrimSpace(s[rparen+1:])
	switch kind {
	case "error":
		spec.Kind = KindError
		spec.Err = errors.New(arg)
	case "flake":
		spec.Kind = KindError
		spec.Err = errors.New(arg)
		spec.Transient = true
	case "panic":
		spec.Kind = KindPanic
		spec.Msg = arg
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return spec, fmt.Errorf("bad delay %q: %w", arg, err)
		}
		spec.Kind = KindDelay
		spec.Delay = d
	default:
		return spec, fmt.Errorf("unknown trigger kind %q (want error, flake, panic, delay)", kind)
	}
	if rest == "" {
		return spec, nil
	}
	if !strings.HasPrefix(rest, ",") {
		return spec, fmt.Errorf("bad trailer %q after %s(...) (want ,oneIn[,limit])", rest, kind)
	}
	for i, mod := range strings.Split(rest[1:], ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(mod), 10, 64)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("bad modifier %q (want positive oneIn[,limit])", mod)
		}
		switch i {
		case 0:
			spec.OneIn = n
		case 1:
			spec.Limit = n
		default:
			return spec, fmt.Errorf("too many modifiers in %q", s)
		}
	}
	return spec, nil
}
