package canon

import (
	"slices"
	"sync"

	"repro/internal/graph"
)

// Iso is reusable scratch for the WL color refinement behind Invariant /
// VertexColors and for the exact isomorphism-mapping search. The zero
// value is ready to use; an Iso is not safe for concurrent use. Hot loops
// (the miner's merge buckets) hold one Iso per worker; the package-level
// Invariant / IsomorphismMapping / Isomorphic functions borrow one from a
// sync.Pool, so one-shot callers get the pooled fast path too.
//
// Ownership: every slice returned by an Iso method (MapInto's Mapping,
// refine's color slice) aliases the scratch and is invalidated by the next
// call on the same Iso. Callers that retain results must copy them.
type Iso struct {
	next, buf []uint64 // refinement ping-pong buffer + neighbor-color sort buffer
	final     []uint64 // Invariant's sorted color multiset
	ca, cb    []uint64 // per-side vertex colors
	sa, sb    []uint64 // sorted multiset / profile comparison scratch
	cv        []colorVert
	ckeys     []uint64  // sorted distinct colors of b
	coff      []int32   // group offsets into cverts, len(ckeys)+1
	cverts    []graph.V // b-vertices grouped by color, v-ascending per group
	glo, ghi  []int32   // per a-vertex candidate range in cverts, resolved once
	order     []graph.V
	placed    []bool
	adjPlaced []int32
	mapping   Mapping
	used      []bool
}

type colorVert struct {
	c uint64
	v graph.V
}

var isoPool = sync.Pool{New: func() any { return new(Iso) }}

func growU64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	return b[:n]
}

// refine runs the WL color refinement of Invariant into dst (grown as
// needed) and returns it. The result is identical to the historical
// VertexColors output.
func (s *Iso) refine(g *graph.Graph, dst []uint64) []uint64 {
	n := g.N()
	dst = growU64(dst, n)
	s.next = growU64(s.next, n)
	colors, next := dst, s.next
	for v := 0; v < n; v++ {
		colors[v] = fnvMix(fnvOffset, uint64(g.Label(graph.V(v))))
	}
	buf := s.buf[:0]
	for r := refinementRounds(n); r > 0; r-- {
		for v := 0; v < n; v++ {
			buf = buf[:0]
			for _, w := range g.Neighbors(graph.V(v)) {
				buf = append(buf, colors[w])
			}
			slices.Sort(buf)
			h := fnvMix(fnvOffset, colors[v])
			for _, c := range buf {
				h = fnvMix(h, c)
			}
			next[v] = h
		}
		colors, next = next, colors
	}
	s.buf = buf
	if n > 0 && &colors[0] != &dst[0] {
		copy(dst, colors)
	}
	return dst
}

// Invariant is the scratch-backed form of the package-level Invariant.
func (s *Iso) Invariant(g *graph.Graph) uint64 {
	n := g.N()
	if n == 0 {
		return fnvOffset
	}
	s.ca = s.refine(g, s.ca)
	s.final = append(s.final[:0], s.ca...)
	slices.Sort(s.final)
	h := fnvMix(fnvOffset, uint64(n))
	h = fnvMix(h, uint64(g.M()))
	for _, c := range s.final {
		h = fnvMix(h, c)
	}
	return h
}

func (s *Iso) sameProfile(a, b *graph.Graph) bool {
	n := a.N()
	sa, sb := growU64(s.sa, n), growU64(s.sb, n)
	s.sa, s.sb = sa, sb
	for v := 0; v < n; v++ {
		sa[v] = uint64(a.Label(graph.V(v)))<<32 | uint64(a.Degree(graph.V(v)))
		sb[v] = uint64(b.Label(graph.V(v)))<<32 | uint64(b.Degree(graph.V(v)))
	}
	slices.Sort(sa)
	slices.Sort(sb)
	return slices.Equal(sa, sb)
}

func (s *Iso) sameColorMultiset(ca, cb []uint64) bool {
	sa := append(growU64(s.sa, 0), ca...)
	sb := append(growU64(s.sb, 0), cb...)
	s.sa, s.sb = sa, sb
	slices.Sort(sa)
	slices.Sort(sb)
	return slices.Equal(sa, sb)
}

// isoOrderInto is isoOrder over pooled slices: a's vertices ordered so
// that vertices with rare colors come first and every subsequent vertex is
// adjacent to an earlier one when possible, keeping backtracking shallow.
// Candidate-group sizes come from the per-vertex ranges MapInto resolved
// (s.glo/s.ghi) — the O(n²) pick loop below must not re-search colors.
func (s *Iso) isoOrderInto(a *graph.Graph) []graph.V {
	n := a.N()
	if cap(s.placed) < n {
		s.placed = make([]bool, n)
		s.adjPlaced = make([]int32, n)
	}
	placed, adjPlaced := s.placed[:n], s.adjPlaced[:n]
	for i := 0; i < n; i++ {
		placed[i], adjPlaced[i] = false, 0
	}
	order := s.order[:0]

	pick := func() graph.V {
		best := graph.V(-1)
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			if best < 0 {
				best = graph.V(v)
				continue
			}
			// Prefer higher adjacency to placed region, then rarer color,
			// then higher degree.
			bv, vv := best, graph.V(v)
			switch {
			case adjPlaced[vv] != adjPlaced[bv]:
				if adjPlaced[vv] > adjPlaced[bv] {
					best = vv
				}
			case s.ghi[vv]-s.glo[vv] != s.ghi[bv]-s.glo[bv]:
				if s.ghi[vv]-s.glo[vv] < s.ghi[bv]-s.glo[bv] {
					best = vv
				}
			case a.Degree(vv) > a.Degree(bv):
				best = vv
			}
		}
		return best
	}
	for len(order) < n {
		v := pick()
		placed[v] = true
		order = append(order, v)
		for _, w := range a.Neighbors(v) {
			adjPlaced[w]++
		}
	}
	s.order = order
	return order
}

// MapInto is the scratch-backed form of IsomorphismMapping: a
// label-preserving adjacency-preserving bijection from a's vertices to b's
// (mapping[av] = bv), or nil. The returned Mapping aliases the scratch —
// copy it to retain it past the next call.
func (s *Iso) MapInto(a, b *graph.Graph) Mapping {
	if a.N() != b.N() || a.M() != b.M() {
		return nil
	}
	n := a.N()
	if n == 0 {
		return Mapping{}
	}
	if !s.sameProfile(a, b) {
		return nil
	}
	s.ca = s.refine(a, s.ca)
	s.cb = s.refine(b, s.cb)
	ca, cb := s.ca, s.cb
	if !s.sameColorMultiset(ca, cb) {
		return nil
	}
	// Candidate sets: a-vertex can only map to b-vertices with the same WL
	// color. Flat grouped layout in place of the historical map[uint64][]V;
	// groups come out v-ascending, the exact order the map-era appends
	// produced, so the backtracking visits candidates identically.
	cv := s.cv[:0]
	for v := 0; v < n; v++ {
		cv = append(cv, colorVert{cb[v], graph.V(v)})
	}
	slices.SortFunc(cv, func(x, y colorVert) int {
		switch {
		case x.c < y.c:
			return -1
		case x.c > y.c:
			return 1
		}
		return int(x.v) - int(y.v)
	})
	s.cv = cv
	ckeys, coff, cverts := s.ckeys[:0], s.coff[:0], s.cverts[:0]
	for i := 0; i < len(cv); {
		j := i
		for j < len(cv) && cv[j].c == cv[i].c {
			j++
		}
		ckeys = append(ckeys, cv[i].c)
		coff = append(coff, int32(i))
		i = j
	}
	coff = append(coff, int32(len(cv)))
	for _, x := range cv {
		cverts = append(cverts, x.v)
	}
	s.ckeys, s.coff, s.cverts = ckeys, coff, cverts
	// Resolve each a-vertex's candidate range once — n binary searches
	// total, so neither the ordering pass nor the backtracker searches the
	// color table again.
	if cap(s.glo) < n {
		s.glo = make([]int32, n)
		s.ghi = make([]int32, n)
	}
	glo, ghi := s.glo[:n], s.ghi[:n]
	s.glo, s.ghi = glo, ghi
	for v := 0; v < n; v++ {
		if k, ok := slices.BinarySearch(ckeys, ca[v]); ok {
			glo[v], ghi[v] = coff[k], coff[k+1]
		} else {
			glo[v], ghi[v] = 0, 0
		}
	}

	order := s.isoOrderInto(a)
	if cap(s.mapping) < n {
		s.mapping = make(Mapping, n)
		s.used = make([]bool, n)
	}
	mapping, used := s.mapping[:n], s.used[:n]
	for i := 0; i < n; i++ {
		mapping[i], used[i] = -1, false
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return true
		}
		av := order[i]
		for _, bv := range s.cverts[glo[av]:ghi[av]] {
			if used[bv] {
				continue
			}
			if !consistent(a, b, av, bv, mapping, used) {
				continue
			}
			mapping[av] = bv
			used[bv] = true
			if match(i + 1) {
				return true
			}
			mapping[av] = -1
			used[bv] = false
		}
		return false
	}
	if match(0) {
		return mapping
	}
	return nil
}

// Isomorphic is the scratch-backed form of the package-level Isomorphic.
func (s *Iso) Isomorphic(a, b *graph.Graph) bool {
	return s.MapInto(a, b) != nil
}
