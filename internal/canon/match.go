package canon

import (
	"sort"

	"repro/internal/graph"
)

// Mapping assigns each pattern vertex (index) a host vertex.
type Mapping []graph.V

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// ImageKey returns a canonical string key for the subgraph image of the
// mapping: the sorted list of host edges that pattern edges map to. Two
// mappings with equal ImageKey denote the same embedding (same subgraph of
// the host), e.g. mappings differing only by a pattern automorphism.
func ImageKey(p *graph.Graph, m Mapping) string {
	edges := make([]graph.Edge, 0, p.M())
	for _, e := range p.Edges() {
		edges = append(edges, graph.NormEdge(m[e.U], m[e.W]))
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].W < edges[j].W
	})
	buf := make([]byte, 0, len(edges)*8)
	for _, e := range edges {
		buf = appendVarint(buf, uint64(e.U))
		buf = appendVarint(buf, uint64(e.W))
	}
	return string(buf)
}

func appendVarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// MatchOptions controls embedding enumeration.
type MatchOptions struct {
	// Limit stops enumeration after this many results (0 = unlimited).
	Limit int
	// Anchor, if >= 0, forces pattern vertex 0 to map to this host vertex.
	Anchor graph.V
	// DistinctImages dedupes mappings that cover the same host subgraph
	// (automorphic re-mappings), which matches the paper's definition of an
	// embedding as a subgraph of G.
	DistinctImages bool
}

// EnumerateEmbeddings finds mappings of the connected pattern p into host g
// (non-induced subgraph isomorphism: every pattern edge must map to a host
// edge; extra host edges between mapped vertices are allowed, as befits
// "subgraph of G" embeddings). fn is called per result; returning false
// stops the search. Returns the number of results produced.
//
// Disconnected patterns are rejected with a zero count: the miners only
// ever produce connected patterns, and anchored search requires
// connectivity.
func EnumerateEmbeddings(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int {
	np := p.N()
	if np == 0 {
		return 0
	}
	if !p.IsConnected() {
		return 0
	}
	order, parents := matchOrder(p)
	mapping := make(Mapping, np)
	for i := range mapping {
		mapping[i] = -1
	}
	usedHost := make(map[graph.V]bool, np)
	count := 0
	var seen map[string]struct{}
	if opt.DistinctImages {
		seen = make(map[string]struct{})
	}

	var try func(depth int) bool // returns false to abort entirely
	emit := func() bool {
		if opt.DistinctImages {
			k := ImageKey(p, mapping)
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
		}
		count++
		if !fn(mapping.Clone()) {
			return false
		}
		return opt.Limit == 0 || count < opt.Limit
	}

	try = func(depth int) bool {
		if depth == np {
			return emit()
		}
		pv := order[depth]
		var candidates []graph.V
		if parent := parents[depth]; parent >= 0 {
			// Candidates are host neighbors of the parent's image.
			candidates = g.Neighbors(mapping[order[parent]])
		} else if opt.Anchor >= 0 && pv == 0 {
			candidates = []graph.V{opt.Anchor}
		} else if opt.Anchor >= 0 {
			// Anchored search with a root other than 0: remap order so 0 is
			// first (handled by matchOrder); reaching here means pattern
			// vertex 0 was not the root, fall back to scanning.
			candidates = allHosts(g)
		} else {
			candidates = allHosts(g)
		}
		for _, hv := range candidates {
			if usedHost[hv] {
				continue
			}
			if g.Label(hv) != p.Label(pv) {
				continue
			}
			if g.Degree(hv) < p.Degree(pv) {
				continue
			}
			ok := true
			for _, pw := range p.Neighbors(pv) {
				if hw := mapping[pw]; hw >= 0 && !g.HasEdge(hv, hw) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[pv] = hv
			usedHost[hv] = true
			cont := try(depth + 1)
			mapping[pv] = -1
			delete(usedHost, hv)
			if !cont {
				return false
			}
		}
		return true
	}
	try(0)
	return count
}

func allHosts(g *graph.Graph) []graph.V {
	hs := make([]graph.V, g.N())
	for i := range hs {
		hs[i] = graph.V(i)
	}
	return hs
}

// matchOrder returns a connected search order over p's vertices and, for
// each position, the index of an earlier-ordered neighbor (-1 for the
// root). The root is vertex 0 so that MatchOptions.Anchor can pin it.
func matchOrder(p *graph.Graph) (order []graph.V, parents []int) {
	np := p.N()
	order = make([]graph.V, 0, np)
	parents = make([]int, 0, np)
	visited := make([]bool, np)
	pos := make([]int, np) // vertex -> position in order

	root := graph.V(0)
	order = append(order, root)
	parents = append(parents, -1)
	visited[root] = true
	pos[root] = 0
	for i := 0; i < len(order); i++ {
		v := order[i]
		// Expand neighbors sorted by descending pattern degree so highly
		// constrained vertices are matched early.
		nbrs := append([]graph.V(nil), p.Neighbors(v)...)
		sort.Slice(nbrs, func(a, b int) bool { return p.Degree(nbrs[a]) > p.Degree(nbrs[b]) })
		for _, w := range nbrs {
			if !visited[w] {
				visited[w] = true
				pos[w] = len(order)
				order = append(order, w)
				parents = append(parents, i)
			}
		}
	}
	return order, parents
}

// CountEmbeddings returns the number of distinct embeddings (subgraph
// images) of p in g, stopping at limit if limit > 0.
func CountEmbeddings(p, g *graph.Graph, limit int) int {
	return EnumerateEmbeddings(p, g, MatchOptions{Limit: limit, Anchor: -1, DistinctImages: true},
		func(Mapping) bool { return true })
}

// HasEmbedding reports whether p occurs in g at all.
func HasEmbedding(p, g *graph.Graph) bool {
	return CountEmbeddings(p, g, 1) > 0
}

// FindEmbeddings returns up to limit distinct embeddings of p in g
// (limit <= 0 means all).
func FindEmbeddings(p, g *graph.Graph, limit int) []Mapping {
	if limit < 0 {
		limit = 0
	}
	var out []Mapping
	EnumerateEmbeddings(p, g, MatchOptions{Limit: limit, Anchor: -1, DistinctImages: true},
		func(m Mapping) bool {
			out = append(out, m)
			return true
		})
	return out
}
