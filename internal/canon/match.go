package canon

import (
	"repro/internal/graph"
)

// Mapping assigns each pattern vertex (index) a host vertex.
type Mapping []graph.V

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// ImageKey returns a canonical string key for the subgraph image of the
// mapping: the sorted list of host edges that pattern edges map to. Two
// mappings with equal ImageKey denote the same embedding (same subgraph of
// the host), e.g. mappings differing only by a pattern automorphism.
func ImageKey(p *graph.Graph, m Mapping) string {
	return string(AppendImageKey(nil, p, m))
}

// AppendImageKey appends the ImageKey bytes of mapping m to buf and
// returns the extended buffer. Callers that look keys up with
// map[string(buf)] and reuse buf across embeddings dedupe without
// allocating per probe (the Go compiler elides the string conversion for
// map reads); the Matcher itself dedupes by hash and never materializes
// keys at all.
func AppendImageKey(buf []byte, p *graph.Graph, m Mapping) []byte {
	var stack [32]graph.Edge
	edges := AppendMappedEdges(stack[:0], p, m)
	sortEdges(edges)
	for _, e := range edges {
		buf = appendVarint(buf, uint64(e.U))
		buf = appendVarint(buf, uint64(e.W))
	}
	return buf
}

// ImageHash returns the 128-bit hash identifying the host subgraph image
// of mapping m — the hash-keyed equivalent of ImageKey, for dedupe sets
// that would otherwise materialize a string per probe (see HashEdges for
// the collision trade-off). buf is caller-owned edge scratch, returned
// grown for reuse across calls.
func ImageHash(buf []graph.Edge, p *graph.Graph, m Mapping) ([2]uint64, []graph.Edge) {
	edges := AppendMappedEdges(buf[:0], p, m)
	sortEdges(edges)
	return HashEdges(edges), edges
}

// AppendMappedEdges appends the host image of p's edge set under m —
// NormEdge(m[u], m[w]) for every pattern edge {u, w} — to buf, unsorted.
func AppendMappedEdges(buf []graph.Edge, p *graph.Graph, m Mapping) []graph.Edge {
	for u := 0; u < p.N(); u++ {
		for _, w := range p.Neighbors(graph.V(u)) {
			if graph.V(u) < w {
				buf = append(buf, graph.NormEdge(m[u], m[w]))
			}
		}
	}
	return buf
}

func appendVarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// MatchOptions controls embedding enumeration.
type MatchOptions struct {
	// Limit stops enumeration after this many results (0 = unlimited).
	Limit int
	// Anchor, if >= 0, forces pattern vertex 0 to map to this host vertex.
	Anchor graph.V
	// DistinctImages dedupes mappings that cover the same host subgraph
	// (automorphic re-mappings), which matches the paper's definition of an
	// embedding as a subgraph of G.
	DistinctImages bool
}

// EnumerateEmbeddings finds mappings of the connected pattern p into host g
// using a pooled Matcher; see Matcher.Enumerate for the search semantics.
// fn receives its own copy of each mapping (safe to retain); hot paths
// that want the allocation-free contract should hold a Matcher and call
// Enumerate directly.
func EnumerateEmbeddings(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int {
	mt := matcherPool.Get().(*Matcher)
	n := mt.Enumerate(p, g, opt, func(m Mapping) bool { return fn(m.Clone()) })
	matcherPool.Put(mt)
	return n
}

// CountEmbeddings returns the number of distinct embeddings (subgraph
// images) of p in g, stopping at limit if limit > 0.
func CountEmbeddings(p, g *graph.Graph, limit int) int {
	mt := matcherPool.Get().(*Matcher)
	n := mt.Enumerate(p, g, MatchOptions{Limit: limit, Anchor: -1, DistinctImages: true},
		func(Mapping) bool { return true })
	matcherPool.Put(mt)
	return n
}

// HasEmbedding reports whether p occurs in g at all.
func HasEmbedding(p, g *graph.Graph) bool {
	return CountEmbeddings(p, g, 1) > 0
}

// FindEmbeddings returns up to limit distinct embeddings of p in g
// (limit <= 0 means all).
func FindEmbeddings(p, g *graph.Graph, limit int) []Mapping {
	if limit < 0 {
		limit = 0
	}
	var out []Mapping
	EnumerateEmbeddings(p, g, MatchOptions{Limit: limit, Anchor: -1, DistinctImages: true},
		func(m Mapping) bool {
			out = append(out, m)
			return true
		})
	return out
}
