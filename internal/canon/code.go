package canon

import (
	"sort"

	"repro/internal/graph"
)

// CanonicalCode returns a canonical byte-string for the labeled graph:
// equal codes iff isomorphic graphs. It uses individualization–refinement:
// WL colors seed an ordered partition; while any cell is non-singleton, the
// search individualizes each vertex of the first smallest non-singleton
// cell in turn and recurses, keeping the lexicographically smallest
// adjacency encoding.
//
// Worst case is exponential in highly symmetric graphs; intended for small
// patterns (spiders, injected patterns, test graphs). Miners use
// Invariant + Isomorphic for the hot path.
func CanonicalCode(g *graph.Graph) string {
	n := g.N()
	if n == 0 {
		return ""
	}
	colors := VertexColors(g)
	byColor := map[uint64][]graph.V{}
	var keys []uint64
	for v := 0; v < n; v++ {
		if _, ok := byColor[colors[v]]; !ok {
			keys = append(keys, colors[v])
		}
		byColor[colors[v]] = append(byColor[colors[v]], graph.V(v))
	}
	// Deterministic cell order: sort color keys by (label of members, color
	// value). Label first keeps codes stable across hash seeds.
	sort.Slice(keys, func(i, j int) bool {
		li := g.Label(byColor[keys[i]][0])
		lj := g.Label(byColor[keys[j]][0])
		if li != lj {
			return li < lj
		}
		return keys[i] < keys[j]
	})
	cells := make([]cell, 0, len(keys))
	for _, k := range keys {
		vs := append([]graph.V(nil), byColor[k]...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		cells = append(cells, cell{vs})
	}

	var best []byte
	perm := make([]graph.V, 0, n)

	var search func(cells []cell)
	encode := func(order []graph.V) []byte {
		out := make([]byte, 0, n+n*n/8+8)
		for _, v := range order {
			out = appendVarint(out, uint64(g.Label(v))+1)
		}
		out = append(out, 0xff)
		// upper-triangular adjacency in order
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if g.HasEdge(order[i], order[j]) {
					out = appendVarint(out, uint64(i))
					out = appendVarint(out, uint64(j))
				}
			}
		}
		return out
	}
	search = func(cells []cell) {
		// Find first smallest non-singleton cell.
		idx := -1
		for i, c := range cells {
			if len(c.verts) > 1 && (idx < 0 || len(c.verts) < len(cells[idx].verts)) {
				idx = i
			}
		}
		if idx < 0 {
			// Discrete: produce code.
			perm = perm[:0]
			for _, c := range cells {
				perm = append(perm, c.verts[0])
			}
			code := encode(perm)
			if best == nil || lessBytes(code, best) {
				best = append(best[:0], code...)
			}
			return
		}
		target := cells[idx]
		for _, v := range target.verts {
			rest := make([]graph.V, 0, len(target.verts)-1)
			for _, u := range target.verts {
				if u != v {
					rest = append(rest, u)
				}
			}
			next := make([]cell, 0, len(cells)+1)
			next = append(next, cells[:idx]...)
			next = append(next, cell{[]graph.V{v}})
			next = append(next, cell{rest})
			next = append(next, cells[idx+1:]...)
			search(refine(g, next))
		}
	}
	search(refineCells(g, cells))
	return string(best)
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

type cell struct{ verts []graph.V }

// refineCells splits cells by the multiset of neighbor cell indices until
// stable. Deterministic: splits keep vertex-sorted order and group by
// signature in sorted signature order.
func refineCells(g *graph.Graph, in []cell) []cell {
	cells := in
	for {
		cellOf := make([]int, g.N())
		for i, c := range cells {
			for _, v := range c.verts {
				cellOf[v] = i
			}
		}
		changed := false
		var out []cell
		for _, c := range cells {
			if len(c.verts) <= 1 {
				out = append(out, c)
				continue
			}
			// signature: sorted neighbor cell ids
			sig := make(map[graph.V]string, len(c.verts))
			for _, v := range c.verts {
				ns := make([]int, 0, g.Degree(v))
				for _, w := range g.Neighbors(v) {
					ns = append(ns, cellOf[w])
				}
				sort.Ints(ns)
				b := make([]byte, 0, len(ns)*2)
				for _, x := range ns {
					b = appendVarint(b, uint64(x))
				}
				sig[v] = string(b)
			}
			groups := map[string][]graph.V{}
			var order []string
			for _, v := range c.verts {
				s := sig[v]
				if _, ok := groups[s]; !ok {
					order = append(order, s)
				}
				groups[s] = append(groups[s], v)
			}
			sort.Strings(order)
			if len(order) > 1 {
				changed = true
			}
			for _, s := range order {
				out = append(out, cell{groups[s]})
			}
		}
		cells = out
		if !changed {
			return cells
		}
	}
}

func refine(g *graph.Graph, in []cell) []cell { return refineCells(g, in) }
