package canon

import "repro/internal/graph"

// CanonicalCode returns a canonical byte-string for the labeled graph:
// equal codes iff isomorphic graphs. It is a thin wrapper over a pooled
// Canonizer (see canonizer.go for the search: counting-sort equitable
// refinement, node-invariant trace pruning, automorphism/orbit pruning).
// Hot paths that canonicalize repeatedly should hold their own Canonizer
// and use its Append method for the allocation-free contract.
func CanonicalCode(g *graph.Graph) string {
	cz := GetCanonizer()
	s := cz.Code(g)
	PutCanonizer(cz)
	return s
}
