// Package canon provides labeled-graph canonicalization and isomorphism
// machinery: a Weisfeiler–Leman style isomorphism-invariant hash, exact
// labeled graph isomorphism, VF2-style subgraph isomorphism with embedding
// enumeration, and an automorphism-pruned canonical code (Canonizer).
//
// Pattern identity in the miners is decided in three tiers:
//  1. Invariant hash (cheap, collision-prone only across genuinely
//     WL-equivalent graphs),
//  2. spider-set signature (see internal/pattern),
//  3. exact check — canonical-code comparison via a reusable Canonizer
//     (cached per pattern by consumers), with Isomorphic retained for
//     one-off pairwise tests.
package canon

import "repro/internal/graph"

// fnv64 constants for inline hashing without allocation.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// Invariant returns an isomorphism-invariant 64-bit hash of the labeled
// graph, computed by iterated neighborhood color refinement
// (1-dimensional Weisfeiler–Leman). Isomorphic graphs always get equal
// hashes; non-isomorphic graphs may collide (rarely in practice).
//
// The refinement state comes from a pooled Iso scratch; hot loops that
// compute many invariants hold their own Iso and call (*Iso).Invariant.
func Invariant(g *graph.Graph) uint64 {
	s := isoPool.Get().(*Iso)
	h := s.Invariant(g)
	isoPool.Put(s)
	return h
}

// refinementRounds picks enough WL rounds to stabilize small patterns:
// diameter-many rounds suffice; log2(n)+2 is a safe, cheap bound for the
// pattern sizes the miners handle.
func refinementRounds(n int) int {
	r := 2
	for m := n; m > 1; m >>= 1 {
		r++
	}
	if r > 16 {
		r = 16
	}
	return r
}

// VertexColors runs the same refinement as Invariant and returns the final
// per-vertex colors (freshly allocated — safe to retain). Used by the
// canonical-code search to seed its initial partition and by spider-set
// signatures.
func VertexColors(g *graph.Graph) []uint64 {
	s := isoPool.Get().(*Iso)
	s.ca = s.refine(g, s.ca)
	out := make([]uint64, g.N())
	copy(out, s.ca)
	isoPool.Put(s)
	return out
}
