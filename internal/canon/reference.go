package canon

import (
	"sort"

	"repro/internal/graph"
)

// EnumerateEmbeddingsReference is the retained naive matcher: a direct
// backtracking search that scans all host vertices for root candidates and
// tracks used hosts in a map. It is the correctness oracle for the indexed
// Matcher — the differential tests assert both produce exactly the same
// distinct-image embedding sets — and is deliberately left untouched by
// performance work. Semantics match Matcher.Enumerate except that fn
// receives its own copy of each mapping.
func EnumerateEmbeddingsReference(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int {
	np := p.N()
	if np == 0 {
		return 0
	}
	if !p.IsConnected() {
		return 0
	}
	order, parents := referenceMatchOrder(p)
	mapping := make(Mapping, np)
	for i := range mapping {
		mapping[i] = -1
	}
	usedHost := make(map[graph.V]bool, np)
	count := 0
	var seen map[string]struct{}
	if opt.DistinctImages {
		seen = make(map[string]struct{})
	}

	var try func(depth int) bool // returns false to abort entirely
	emit := func() bool {
		if opt.DistinctImages {
			k := ImageKey(p, mapping)
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
		}
		count++
		if !fn(mapping.Clone()) {
			return false
		}
		return opt.Limit == 0 || count < opt.Limit
	}

	try = func(depth int) bool {
		if depth == np {
			return emit()
		}
		pv := order[depth]
		var candidates []graph.V
		if parent := parents[depth]; parent >= 0 {
			candidates = g.Neighbors(mapping[order[parent]])
		} else if opt.Anchor >= 0 {
			if int(opt.Anchor) >= g.N() {
				return true
			}
			candidates = []graph.V{opt.Anchor}
		} else {
			candidates = make([]graph.V, g.N())
			for i := range candidates {
				candidates[i] = graph.V(i)
			}
		}
		for _, hv := range candidates {
			if usedHost[hv] {
				continue
			}
			if g.Label(hv) != p.Label(pv) {
				continue
			}
			if g.Degree(hv) < p.Degree(pv) {
				continue
			}
			ok := true
			for _, pw := range p.Neighbors(pv) {
				if hw := mapping[pw]; hw >= 0 && !g.HasEdge(hv, hw) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[pv] = hv
			usedHost[hv] = true
			cont := try(depth + 1)
			mapping[pv] = -1
			delete(usedHost, hv)
			if !cont {
				return false
			}
		}
		return true
	}
	try(0)
	return count
}

// referenceMatchOrder returns a connected search order over p's vertices
// and, for each position, the index of an earlier-ordered neighbor (-1 for
// the root). The root is vertex 0 so that MatchOptions.Anchor can pin it.
func referenceMatchOrder(p *graph.Graph) (order []graph.V, parents []int) {
	np := p.N()
	order = make([]graph.V, 0, np)
	parents = make([]int, 0, np)
	visited := make([]bool, np)

	root := graph.V(0)
	order = append(order, root)
	parents = append(parents, -1)
	visited[root] = true
	for i := 0; i < len(order); i++ {
		v := order[i]
		// Expand neighbors sorted by descending pattern degree so highly
		// constrained vertices are matched early.
		nbrs := append([]graph.V(nil), p.Neighbors(v)...)
		sort.Slice(nbrs, func(a, b int) bool { return p.Degree(nbrs[a]) > p.Degree(nbrs[b]) })
		for _, w := range nbrs {
			if !visited[w] {
				visited[w] = true
				order = append(order, w)
				parents = append(parents, i)
			}
		}
	}
	return order, parents
}
