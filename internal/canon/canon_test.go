package canon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// permute returns g with vertices relabeled by a random permutation.
func permute(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.N()
	perm := rng.Perm(n)
	b := graph.NewBuilder(n, g.M())
	inv := make([]graph.V, n) // old -> new
	for newV := 0; newV < n; newV++ {
		// vertex at new position newV is old vertex perm[newV]
		b.AddVertex(g.Label(graph.V(perm[newV])))
	}
	for newV, oldV := range perm {
		inv[oldV] = graph.V(newV)
	}
	for _, e := range g.Edges() {
		b.AddEdge(inv[e.U], inv[e.W])
	}
	return b.Build()
}

func randomGraph(n, m, labels int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func path(labels ...graph.Label) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i+1 < len(labels); i++ {
		edges = append(edges, graph.Edge{U: graph.V(i), W: graph.V(i + 1)})
	}
	return graph.FromEdges(labels, edges)
}

func TestIsomorphicIdentical(t *testing.T) {
	g := path(1, 2, 3)
	if !Isomorphic(g, g) {
		t.Fatal("graph not isomorphic to itself")
	}
}

func TestIsomorphicPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(3+rng.Intn(12), 4+rng.Intn(20), 1+rng.Intn(4), rng)
		h := permute(g, rng)
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: permuted graph not recognized as isomorphic\n%v\n%v", trial, g, h)
		}
		if Invariant(g) != Invariant(h) {
			t.Fatalf("trial %d: invariant differs for isomorphic graphs", trial)
		}
	}
}

func TestNotIsomorphicLabelSwap(t *testing.T) {
	a := path(1, 2, 3)
	b := path(2, 1, 3)
	// a has middle label 2; b has middle label 1 — different degree/label
	// profiles.
	if Isomorphic(a, b) {
		t.Fatal("label-swapped paths should differ")
	}
}

func TestNotIsomorphicStructure(t *testing.T) {
	// P4 vs K1,3 (star): same labels, same size, different structure.
	p4 := path(0, 0, 0, 0)
	star := graph.FromEdges([]graph.Label{0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 0, W: 2}, {U: 0, W: 3}})
	if Isomorphic(p4, star) {
		t.Fatal("P4 and K1,3 claimed isomorphic")
	}
}

func TestNotIsomorphicC6vs2C3LikePair(t *testing.T) {
	// C6 vs two triangles sharing nothing is the classic WL-equivalent
	// pair when disconnected; our matcher must still separate them.
	c6 := graph.FromEdges([]graph.Label{0, 0, 0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 4}, {U: 4, W: 5}, {U: 0, W: 5}})
	cc := graph.FromEdges([]graph.Label{0, 0, 0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 2}, {U: 3, W: 4}, {U: 4, W: 5}, {U: 3, W: 5}})
	if Isomorphic(c6, cc) {
		t.Fatal("C6 and 2xC3 claimed isomorphic")
	}
}

func TestIsomorphismMappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(4+rng.Intn(10), 6+rng.Intn(15), 2, rng)
		h := permute(g, rng)
		m := IsomorphismMapping(g, h)
		if m == nil {
			t.Fatalf("trial %d: no mapping found for isomorphic graphs", trial)
		}
		// verify the mapping
		for v := 0; v < g.N(); v++ {
			if g.Label(graph.V(v)) != h.Label(m[v]) {
				t.Fatal("mapping violates labels")
			}
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(m[e.U], m[e.W]) {
				t.Fatal("mapping violates adjacency")
			}
		}
	}
}

func TestIsomorphismMappingNilForDifferent(t *testing.T) {
	if IsomorphismMapping(path(0, 0, 0), path(0, 0, 1)) != nil {
		t.Fatal("mapping for non-isomorphic graphs")
	}
}

func TestCanonicalCodeEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(3+rng.Intn(8), 3+rng.Intn(12), 1+rng.Intn(3), rng)
		h := permute(g, rng)
		if CanonicalCode(g) != CanonicalCode(h) {
			t.Fatalf("trial %d: canonical codes differ for isomorphic graphs", trial)
		}
	}
}

func TestCanonicalCodeSeparates(t *testing.T) {
	pairs := [][2]*graph.Graph{
		{path(0, 0, 0, 0), graph.FromEdges([]graph.Label{0, 0, 0, 0},
			[]graph.Edge{{U: 0, W: 1}, {U: 0, W: 2}, {U: 0, W: 3}})},
		{path(1, 2, 3), path(2, 1, 3)},
	}
	for i, pr := range pairs {
		if CanonicalCode(pr[0]) == CanonicalCode(pr[1]) {
			t.Fatalf("pair %d: non-isomorphic graphs share canonical code", i)
		}
	}
}

func TestEmbeddingCountsTriangleInK4(t *testing.T) {
	// K4 contains 4 distinct triangles.
	k4 := graph.FromEdges([]graph.Label{0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 0, W: 2}, {U: 0, W: 3}, {U: 1, W: 2}, {U: 1, W: 3}, {U: 2, W: 3}})
	tri := graph.FromEdges([]graph.Label{0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 2}})
	if got := CountEmbeddings(tri, k4, 0); got != 4 {
		t.Fatalf("triangles in K4: got %d, want 4", got)
	}
}

func TestEmbeddingCountsEdgeInPath(t *testing.T) {
	p := path(0, 0, 0, 0)
	edge := path(0, 0)
	if got := CountEmbeddings(edge, p, 0); got != 3 {
		t.Fatalf("edges in P4: got %d, want 3", got)
	}
}

func TestEmbeddingRespectsLabels(t *testing.T) {
	host := path(1, 2, 1, 2)
	pat := path(1, 2)
	if got := CountEmbeddings(pat, host, 0); got != 3 {
		t.Fatalf("1-2 edges: got %d, want 3", got)
	}
	pat2 := path(2, 2)
	if got := CountEmbeddings(pat2, host, 0); got != 0 {
		t.Fatalf("2-2 edges: got %d, want 0", got)
	}
}

func TestEmbeddingNonInduced(t *testing.T) {
	// P3 pattern must embed into a triangle (extra host edge allowed).
	tri := graph.FromEdges([]graph.Label{0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 2}})
	p3 := path(0, 0, 0)
	if got := CountEmbeddings(p3, tri, 0); got != 3 {
		t.Fatalf("P3 in triangle: got %d, want 3 (one per omitted edge)", got)
	}
}

func TestEnumerateEmbeddingsAnchor(t *testing.T) {
	host := path(1, 2, 1)
	pat := path(1, 2) // pattern vertex 0 has label 1
	n := EnumerateEmbeddings(pat, host, MatchOptions{Anchor: 2, DistinctImages: true},
		func(m Mapping) bool {
			if m[0] != 2 {
				t.Fatalf("anchor violated: %v", m)
			}
			return true
		})
	if n != 1 {
		t.Fatalf("anchored embeddings: got %d, want 1", n)
	}
}

func TestEnumerateEmbeddingsLimit(t *testing.T) {
	host := path(0, 0, 0, 0, 0, 0)
	pat := path(0, 0)
	n := EnumerateEmbeddings(pat, host, MatchOptions{Limit: 2, Anchor: -1, DistinctImages: true},
		func(Mapping) bool { return true })
	if n != 2 {
		t.Fatalf("limit ignored: got %d", n)
	}
}

func TestEnumerateEmbeddingsEarlyStop(t *testing.T) {
	host := path(0, 0, 0, 0, 0)
	pat := path(0, 0)
	calls := 0
	EnumerateEmbeddings(pat, host, MatchOptions{Anchor: -1, DistinctImages: true},
		func(Mapping) bool {
			calls++
			return false // stop immediately
		})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestDisconnectedPatternRejected(t *testing.T) {
	disc := graph.FromEdges([]graph.Label{0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 2, W: 3}})
	if got := CountEmbeddings(disc, path(0, 0, 0, 0), 0); got != 0 {
		t.Fatalf("disconnected pattern matched: %d", got)
	}
}

func TestImageKeyAutomorphismInvariant(t *testing.T) {
	// pattern 0-0 edge in host 0-0: mappings (0,1) and (1,0) are the same
	// subgraph.
	pat := path(0, 0)
	k1 := ImageKey(pat, Mapping{0, 1})
	k2 := ImageKey(pat, Mapping{1, 0})
	if k1 != k2 {
		t.Fatal("image keys differ for the same subgraph")
	}
}

// Property: Invariant is permutation-invariant; Isomorphic agrees with the
// construction.
func TestQuickIsoInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(2+rng.Intn(10), 2+rng.Intn(14), 1+rng.Intn(3), rng)
		h := permute(g, rng)
		return Invariant(g) == Invariant(h) && Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding one edge to a graph breaks isomorphism with the
// original (edge counts differ).
func TestQuickEdgeAddedNotIso(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomGraph(n, n, 2, rng)
		// find a non-edge
		for try := 0; try < 50; try++ {
			u := graph.V(rng.Intn(n))
			w := graph.V(rng.Intn(n))
			if u != w && !g.HasEdge(u, w) {
				b := graph.NewBuilder(n, g.M()+1)
				for v := 0; v < n; v++ {
					b.AddVertex(g.Label(graph.V(v)))
				}
				for _, e := range g.Edges() {
					b.AddEdge(e.U, e.W)
				}
				b.AddEdge(u, w)
				h := b.Build()
				return !Isomorphic(g, h)
			}
		}
		return true // dense graph, skip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
