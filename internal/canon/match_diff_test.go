package canon

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

// randomConnectedPattern builds a random connected pattern: a random
// spanning tree over nv vertices plus extra random edges.
func randomConnectedPattern(nv, extra, labels int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(nv, nv-1+extra)
	for i := 0; i < nv; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for v := 1; v < nv; v++ {
		b.AddEdge(graph.V(v), graph.V(rng.Intn(v)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.V(rng.Intn(nv)), graph.V(rng.Intn(nv)))
	}
	return b.Build()
}

// imageSet collects the distinct-image embedding keys reported by enum.
func imageSet(t *testing.T, p, g *graph.Graph, opt MatchOptions,
	enum func(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int) (map[string]int, int) {
	t.Helper()
	set := make(map[string]int)
	n := enum(p, g, opt, func(m Mapping) bool {
		set[ImageKey(p, m)]++
		return true
	})
	return set, n
}

// matcherEnum adapts a fresh Matcher to the package-level enumerate
// signature (cloning so the test may retain mappings).
func matcherEnum(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int {
	var mt Matcher
	return mt.Enumerate(p, g, opt, func(m Mapping) bool { return fn(m.Clone()) })
}

// TestMatcherDifferential runs the indexed matcher and the retained naive
// reference matcher on ~100 random (pattern, host) pairs and asserts they
// produce exactly the same distinct-image embedding sets and counts.
func TestMatcherDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		host := randomGraph(10+rng.Intn(60), 15+rng.Intn(120), 1+rng.Intn(5), rng)
		pat := randomConnectedPattern(2+rng.Intn(4), rng.Intn(3), 1+rng.Intn(5), rng)
		opt := MatchOptions{Anchor: -1, DistinctImages: true}

		got, gotN := imageSet(t, pat, host, opt, matcherEnum)
		want, wantN := imageSet(t, pat, host, opt, EnumerateEmbeddingsReference)
		if gotN != wantN {
			t.Fatalf("trial %d: indexed matcher found %d distinct images, reference found %d (pat=%v host=%v)",
				trial, gotN, wantN, pat, host)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: image set sizes differ: %d vs %d", trial, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: reference image missing from indexed matcher's results", trial)
			}
		}
	}
}

// TestMatcherDifferentialAnchored compares anchored enumeration at every
// host vertex carrying the pattern root's label.
func TestMatcherDifferentialAnchored(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		host := randomGraph(8+rng.Intn(30), 12+rng.Intn(60), 1+rng.Intn(3), rng)
		pat := randomConnectedPattern(2+rng.Intn(3), rng.Intn(2), 1+rng.Intn(3), rng)
		rootLabel := pat.Label(0)
		for _, anchor := range host.VerticesWithLabel(rootLabel) {
			opt := MatchOptions{Anchor: anchor, DistinctImages: true}
			got, gotN := imageSet(t, pat, host, opt, matcherEnum)
			want, wantN := imageSet(t, pat, host, opt, EnumerateEmbeddingsReference)
			if gotN != wantN || len(got) != len(want) {
				t.Fatalf("trial %d anchor %d: %d/%d images vs reference %d/%d",
					trial, anchor, gotN, len(got), wantN, len(want))
			}
			for k := range want {
				if _, ok := got[k]; !ok {
					t.Fatalf("trial %d anchor %d: image sets differ", trial, anchor)
				}
			}
		}
	}
}

// TestMatcherRawCountsMatch compares total (non-deduped) mapping counts:
// the searches explore different orders but must find the same number of
// injective label- and edge-preserving mappings.
func TestMatcherRawCountsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		host := randomGraph(8+rng.Intn(25), 12+rng.Intn(50), 1+rng.Intn(4), rng)
		pat := randomConnectedPattern(2+rng.Intn(4), rng.Intn(2), 1+rng.Intn(4), rng)
		opt := MatchOptions{Anchor: -1}
		var mt Matcher
		got := mt.Enumerate(pat, host, opt, func(Mapping) bool { return true })
		want := EnumerateEmbeddingsReference(pat, host, opt, func(Mapping) bool { return true })
		if got != want {
			t.Fatalf("trial %d: raw mapping counts differ: indexed %d vs reference %d (pat=%v host=%v)",
				trial, got, want, pat, host)
		}
	}
}

// TestMatcherMappingsValid property-checks every mapping the indexed
// matcher emits: labels preserved, pattern edges mapped to host edges,
// injective.
func TestMatcherMappingsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		host := randomGraph(10+rng.Intn(40), 15+rng.Intn(80), 1+rng.Intn(4), rng)
		pat := randomConnectedPattern(2+rng.Intn(4), rng.Intn(3), 1+rng.Intn(4), rng)
		var mt Matcher
		mt.Enumerate(pat, host, MatchOptions{Anchor: -1, DistinctImages: true}, func(m Mapping) bool {
			used := make(map[graph.V]bool)
			for pv, hv := range m {
				if used[hv] {
					t.Fatalf("trial %d: non-injective mapping %v", trial, m)
				}
				used[hv] = true
				if pat.Label(graph.V(pv)) != host.Label(hv) {
					t.Fatalf("trial %d: label mismatch at %d: %v", trial, pv, m)
				}
			}
			for _, e := range pat.Edges() {
				if !host.HasEdge(m[e.U], m[e.W]) {
					t.Fatalf("trial %d: pattern edge %v not in host under %v", trial, e, m)
				}
			}
			return true
		})
	}
}

// TestMatcherLimit checks the Limit option against the reference.
func TestMatcherLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	host := randomGraph(40, 90, 2, rng)
	pat := path(0, 1)
	for _, limit := range []int{1, 2, 5} {
		got := CountEmbeddings(pat, host, limit)
		want := EnumerateEmbeddingsReference(pat, host,
			MatchOptions{Limit: limit, Anchor: -1, DistinctImages: true}, func(Mapping) bool { return true })
		if got != want {
			t.Fatalf("limit %d: got %d want %d", limit, got, want)
		}
	}
}

// TestMatcherDisconnectedPattern rejects disconnected patterns like the
// reference does.
func TestMatcherDisconnectedPattern(t *testing.T) {
	pat := graph.FromEdges([]graph.Label{0, 0, 0, 0}, []graph.Edge{{U: 0, W: 1}, {U: 2, W: 3}})
	host := graph.FromEdges([]graph.Label{0, 0, 0, 0},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}})
	var mt Matcher
	if n := mt.Enumerate(pat, host, MatchOptions{Anchor: -1}, func(Mapping) bool { return true }); n != 0 {
		t.Fatalf("disconnected pattern matched %d times", n)
	}
}

// TestMatcherReuse checks a single Matcher across many calls with
// different patterns, hosts and options — the reuse mode the miners rely
// on.
func TestMatcherReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var mt Matcher
	for trial := 0; trial < 60; trial++ {
		host := randomGraph(6+rng.Intn(30), 8+rng.Intn(60), 1+rng.Intn(4), rng)
		pat := randomConnectedPattern(2+rng.Intn(4), rng.Intn(2), 1+rng.Intn(4), rng)
		opt := MatchOptions{Anchor: -1, DistinctImages: trial%2 == 0}
		got := mt.Enumerate(pat, host, opt, func(Mapping) bool { return true })
		want := EnumerateEmbeddingsReference(pat, host, opt, func(Mapping) bool { return true })
		if got != want {
			t.Fatalf("trial %d: reused matcher count %d, reference %d", trial, got, want)
		}
	}
}

// TestSketchDominates sanity-checks the SWAR domination filter the
// matcher relies on: for random label multisets A ⊇ B the sketch of A
// must dominate the sketch of B (no false negatives).
func TestSketchDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		nb := 1 + rng.Intn(12)
		labels := make([]graph.Label, nb)
		for i := range labels {
			labels[i] = graph.Label(rng.Intn(8))
		}
		// Build host = star over all labels, pattern = star over a subset.
		k := rng.Intn(nb + 1)
		sub := append([]graph.Label(nil), labels...)
		rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
		sub = sub[:k]
		host := starOf(0, labels)
		pat := starOf(0, sub)
		if !graph.SketchDominates(host.NeighborSketch(0), pat.NeighborSketch(0)) {
			sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
			t.Fatalf("trial %d: sketch of %v does not dominate subset %v", trial, labels, sub)
		}
	}
}

func starOf(head graph.Label, leaves []graph.Label) *graph.Graph {
	b := graph.NewBuilder(1+len(leaves), len(leaves))
	h := b.AddVertex(head)
	for _, l := range leaves {
		v := b.AddVertex(l)
		b.AddEdge(h, v)
	}
	return b.Build()
}

// TestMatcherZeroAllocs enforces the matcher's 0 allocs/op invariant (the
// one ROADMAP.md's Performance section relies on): a warm Matcher must
// enumerate without touching the heap.
func TestMatcherZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	host := randomGraph(200, 500, 3, rng)
	pat := path(0, 1, 2)
	opt := MatchOptions{Anchor: -1, DistinctImages: true}
	var mt Matcher
	keep := func(Mapping) bool { return true }
	if n := mt.Enumerate(pat, host, opt, keep); n == 0 { // warm the buffers
		t.Fatal("no embeddings")
	}
	allocs := testing.AllocsPerRun(10, func() {
		mt.Enumerate(pat, host, opt, keep)
	})
	if allocs != 0 {
		t.Fatalf("warm Matcher.Enumerate averaged %v allocs/run; want 0", allocs)
	}
}
