package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return randomGraph(n, 2*n, 4, rng)
}

func BenchmarkInvariant(b *testing.B) {
	g := benchGraph(50, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Invariant(g)
	}
}

func BenchmarkIsomorphicPositive(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := benchGraph(30, 2)
	h := permute(g, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Isomorphic(g, h) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkIsomorphicNegative(b *testing.B) {
	g := benchGraph(30, 3)
	h := benchGraph(30, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Isomorphic(g, h)
	}
}

// BenchmarkCanonicalCode measures the existing corpus (the random
// 20-vertex pattern the seed benchmark used): the pooled string API and a
// warm owned Canonizer via Append, which must run at 0 allocs/op.
func BenchmarkCanonicalCode(b *testing.B) {
	g := benchGraph(20, 5)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CanonicalCode(g)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cz := NewCanonizer()
		var buf []byte
		buf = cz.Append(buf, g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = cz.Append(buf[:0], g)
		}
	})
}

// BenchmarkCanonicalCodeHub is the tentpole shape: a single hub with k
// interchangeable legs, where the pre-v2 individualization search
// explored ~k! leaf orderings (effectively non-terminating at k=64; the
// acceptance bar is < 1ms there). Orbit pruning holds it to O(k^2)
// search nodes.
func BenchmarkCanonicalCodeHub(b *testing.B) {
	for _, legs := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("legs=%d", legs), func(b *testing.B) {
			g := star(legs, 0, 0)
			cz := NewCanonizer()
			var buf []byte
			buf = cz.Append(buf, g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = cz.Append(buf[:0], g)
			}
		})
	}
}

// BenchmarkCanonicalCodeSymmetric covers the other shapes with large
// automorphism groups: uniform cycles, complete bipartite graphs, and
// the hub-with-long-legs spider a cancelled run can hold.
func BenchmarkCanonicalCodeSymmetric(b *testing.B) {
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle32", cycle(32, 0)},
		{"k44", completeBipartite(4, 4, 0)},
		{"k88", completeBipartite(8, 8, 0)},
		{"spider16x3", spiderLegs(16, 3, 0)},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			cz := NewCanonizer()
			var buf []byte
			buf = cz.Append(buf, s.g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = cz.Append(buf[:0], s.g)
			}
		})
	}
}

func BenchmarkCountEmbeddings(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	host := randomGraph(200, 500, 3, rng)
	pat := path(0, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountEmbeddings(pat, host, 0)
	}
}

// BenchmarkEnumerateEmbeddings measures a warm reusable Matcher on the
// full distinct-image enumeration — the matcher inner loop must stay at
// 0 allocs/op.
func BenchmarkEnumerateEmbeddings(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	host := randomGraph(200, 500, 3, rng)
	pat := path(0, 1, 2)
	opt := MatchOptions{Anchor: -1, DistinctImages: true}
	var mt Matcher
	if n := mt.Enumerate(pat, host, opt, func(Mapping) bool { return true }); n == 0 {
		b.Fatal("no embeddings")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Enumerate(pat, host, opt, func(Mapping) bool { return true })
	}
}

// BenchmarkEnumerateEmbeddingsReference is the retained naive matcher on
// the same workload, for before/after comparison.
func BenchmarkEnumerateEmbeddingsReference(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	host := randomGraph(200, 500, 3, rng)
	pat := path(0, 1, 2)
	opt := MatchOptions{Anchor: -1, DistinctImages: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EnumerateEmbeddingsReference(pat, host, opt, func(Mapping) bool { return true })
	}
}

// BenchmarkImageKey measures image identification for one mapping: the
// matcher's internal 128-bit hash (0 allocs), the reusable-buffer string
// key, and the plain ImageKey string for reference.
func BenchmarkImageKey(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	host := randomGraph(100, 250, 3, rng)
	pat := randomConnectedPattern(6, 3, 3, rng)
	// Keying only reads the mapping as indices into the host, so a
	// synthetic injective mapping exercises it fully.
	mp := make(Mapping, pat.N())
	for i := range mp {
		mp[i] = graph.V(i * 7 % host.N())
	}
	b.Run("hash", func(b *testing.B) {
		keyer := Matcher{p: pat, g: host, mapping: mp}
		keyer.pEdges = appendEdges(nil, pat)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = keyer.imageHash()
		}
	})
	b.Run("append", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendImageKey(buf[:0], pat, mp)
		}
	})
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ImageKey(pat, mp)
		}
	})
}
