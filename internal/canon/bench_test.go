package canon

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return randomGraph(n, 2*n, 4, rng)
}

func BenchmarkInvariant(b *testing.B) {
	g := benchGraph(50, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Invariant(g)
	}
}

func BenchmarkIsomorphicPositive(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := benchGraph(30, 2)
	h := permute(g, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Isomorphic(g, h) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkIsomorphicNegative(b *testing.B) {
	g := benchGraph(30, 3)
	h := benchGraph(30, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Isomorphic(g, h)
	}
}

func BenchmarkCanonicalCode(b *testing.B) {
	g := benchGraph(20, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalCode(g)
	}
}

func BenchmarkCountEmbeddings(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	host := randomGraph(200, 500, 3, rng)
	pat := path(0, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountEmbeddings(pat, host, 0)
	}
}
