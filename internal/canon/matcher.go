package canon

import (
	"slices"
	"sync"

	"repro/internal/graph"
)

// Matcher enumerates embeddings of small connected patterns in a host
// graph. All search state — the partial mapping, the used-host set, the
// match order, the distinct-image table and the image-key buffer — lives
// in the Matcher and is reused across calls, so a warm Matcher runs its
// inner loop without heap allocation. A Matcher is not safe for concurrent
// use; callers that match from several goroutines keep one Matcher each
// (or use the package-level functions, which draw from a pool).
//
// Candidate generation is index-driven: the root pattern vertex is chosen
// as the one whose label is rarest in the host (ties broken toward higher
// pattern degree), and its candidates come from the host's label index
// rather than a scan of all N vertices. Every candidate is filtered by
// label, degree, and the neighbor-label frequency sketch
// (graph.SketchDominates) before the exact adjacency checks run.
type Matcher struct {
	p, g *graph.Graph
	opt  MatchOptions
	fn   func(Mapping) bool

	order   []graph.V // pattern vertices in match order
	parents []int     // index into order of an earlier neighbor, -1 for root
	mapping Mapping   // pattern vertex -> host vertex, -1 unmapped
	used    []bool    // host vertex already in the partial image
	count   int

	seen    map[[2]uint64]struct{} // distinct-image table (hash-based)
	pEdges  []graph.Edge           // pattern edge list, cached per Enumerate
	imgBuf  []graph.Edge           // image edge buffer for hashing
	visited []bool                 // order-construction scratch
	nbrBuf  []graph.V              // order-construction scratch
}

// NewMatcher returns an empty Matcher. The zero value is also valid.
func NewMatcher() *Matcher { return &Matcher{} }

var matcherPool = sync.Pool{New: func() any { return new(Matcher) }}

// Enumerate finds mappings of the connected pattern p into host g
// (non-induced subgraph isomorphism: every pattern edge must map to a host
// edge; extra host edges between mapped vertices are allowed, as befits
// "subgraph of G" embeddings). fn is called per result; returning false
// stops the search. Returns the number of results produced.
//
// The Mapping passed to fn is the Matcher's live buffer, valid only for
// the duration of the callback: callers that retain it must Clone it.
//
// Disconnected patterns are rejected with a zero count: the miners only
// ever produce connected patterns, and anchored search requires
// connectivity.
func (mt *Matcher) Enumerate(p, g *graph.Graph, opt MatchOptions, fn func(Mapping) bool) int {
	np := p.N()
	if np == 0 {
		return 0
	}
	mt.p, mt.g, mt.opt, mt.fn = p, g, opt, fn
	root := graph.V(0)
	if opt.Anchor < 0 {
		root = mt.pickRoot()
	}
	if !mt.buildOrder(root) {
		mt.release()
		return 0 // disconnected pattern
	}
	if cap(mt.mapping) < np {
		mt.mapping = make(Mapping, np)
	}
	mt.mapping = mt.mapping[:np]
	for i := range mt.mapping {
		mt.mapping[i] = -1
	}
	if cap(mt.used) < g.N() {
		mt.used = make([]bool, g.N())
	} else {
		// The backtracker resets every bit it sets, so the prefix in use is
		// already clear; only the slice header needs adjusting.
		mt.used = mt.used[:cap(mt.used)]
	}
	mt.count = 0
	if opt.DistinctImages {
		mt.pEdges = appendEdges(mt.pEdges[:0], p)
		if mt.seen == nil {
			mt.seen = make(map[[2]uint64]struct{})
		} else {
			clear(mt.seen)
		}
	}
	mt.try(0)
	n := mt.count
	mt.release()
	return n
}

// release drops references that would otherwise pin the graphs (scratch
// buffers are kept for reuse).
func (mt *Matcher) release() {
	mt.p, mt.g, mt.fn = nil, nil, nil
}

// pickRoot returns the pattern vertex whose label is rarest in the host;
// ties break toward higher pattern degree, then lower id. Starting the
// search from the most selective vertex shrinks the root candidate set
// from N to the smallest label class.
func (mt *Matcher) pickRoot() graph.V {
	best := graph.V(0)
	bestCount := mt.g.LabelCount(mt.p.Label(0))
	bestDeg := mt.p.Degree(0)
	for v := 1; v < mt.p.N(); v++ {
		c := mt.g.LabelCount(mt.p.Label(graph.V(v)))
		d := mt.p.Degree(graph.V(v))
		if c < bestCount || (c == bestCount && d > bestDeg) {
			best, bestCount, bestDeg = graph.V(v), c, d
		}
	}
	return best
}

// buildOrder constructs a connected BFS match order rooted at root, with
// each vertex's children expanded in descending pattern-degree order so
// highly constrained vertices are matched early. Returns false if the
// pattern is disconnected.
func (mt *Matcher) buildOrder(root graph.V) bool {
	p := mt.p
	np := p.N()
	mt.order = mt.order[:0]
	mt.parents = mt.parents[:0]
	if cap(mt.visited) < np {
		mt.visited = make([]bool, np)
	}
	visited := mt.visited[:np]
	for i := range visited {
		visited[i] = false
	}
	mt.order = append(mt.order, root)
	mt.parents = append(mt.parents, -1)
	visited[root] = true
	for i := 0; i < len(mt.order); i++ {
		v := mt.order[i]
		// Insertion-sort the unvisited neighbors by descending degree into
		// the scratch buffer (pattern degrees are tiny).
		mt.nbrBuf = mt.nbrBuf[:0]
		for _, w := range p.Neighbors(v) {
			if visited[w] {
				continue
			}
			visited[w] = true
			j := len(mt.nbrBuf)
			mt.nbrBuf = append(mt.nbrBuf, w)
			for j > 0 && p.Degree(mt.nbrBuf[j-1]) < p.Degree(w) {
				mt.nbrBuf[j] = mt.nbrBuf[j-1]
				j--
			}
			mt.nbrBuf[j] = w
		}
		for _, w := range mt.nbrBuf {
			mt.order = append(mt.order, w)
			mt.parents = append(mt.parents, i)
		}
	}
	return len(mt.order) == np
}

// try extends the partial mapping at the given depth. Returns false to
// abort the entire search.
func (mt *Matcher) try(depth int) bool {
	if depth == len(mt.order) {
		return mt.emit()
	}
	p, g := mt.p, mt.g
	pv := mt.order[depth]
	var candidates []graph.V
	if parent := mt.parents[depth]; parent >= 0 {
		candidates = g.Neighbors(mt.mapping[mt.order[parent]])
	} else if mt.opt.Anchor >= 0 {
		if int(mt.opt.Anchor) >= g.N() {
			return true
		}
		candidates = anchorBuf(&mt.nbrBuf, mt.opt.Anchor)
	} else {
		candidates = g.VerticesWithLabel(p.Label(pv))
	}
	pLabel := p.Label(pv)
	pDeg := p.Degree(pv)
	pSketch := p.NeighborSketch(pv)
	pNbrs := p.Neighbors(pv)
	for _, hv := range candidates {
		if mt.used[hv] ||
			g.Label(hv) != pLabel ||
			g.Degree(hv) < pDeg ||
			!graph.SketchDominates(g.NeighborSketch(hv), pSketch) {
			continue
		}
		ok := true
		for _, pw := range pNbrs {
			if hw := mt.mapping[pw]; hw >= 0 && !g.HasEdge(hv, hw) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mt.mapping[pv] = hv
		mt.used[hv] = true
		cont := mt.try(depth + 1)
		mt.mapping[pv] = -1
		mt.used[hv] = false
		if !cont {
			return false
		}
	}
	return true
}

// anchorBuf returns a single-element candidate slice without allocating
// (the order-construction scratch is free during the search).
func anchorBuf(buf *[]graph.V, v graph.V) []graph.V {
	*buf = append((*buf)[:0], v)
	return *buf
}

// emit reports one complete mapping, deduplicating by image when
// requested. Returns false to abort the search.
func (mt *Matcher) emit() bool {
	if mt.opt.DistinctImages {
		h := mt.imageHash()
		if _, dup := mt.seen[h]; dup {
			return true
		}
		mt.seen[h] = struct{}{}
	}
	mt.count++
	if !mt.fn(mt.mapping) {
		return false
	}
	return mt.opt.Limit == 0 || mt.count < mt.opt.Limit
}

// imageHash hashes the sorted host edge list of the current mapping's
// image — the allocation-free equivalent of ImageKey.
func (mt *Matcher) imageHash() [2]uint64 {
	mt.imgBuf = mt.imgBuf[:0]
	for _, e := range mt.pEdges {
		mt.imgBuf = append(mt.imgBuf, graph.NormEdge(mt.mapping[e.U], mt.mapping[e.W]))
	}
	sortEdges(mt.imgBuf)
	return HashEdges(mt.imgBuf)
}

// HashEdges returns a 128-bit hash of an edge list via two independent
// 64-bit FNV-style streams (order-sensitive: sort first when the hash
// must identify the edge set). A collision between distinct edge lists
// makes the caller treat the second as a duplicate of the first —
// silently dropping an embedding or skipping a merge candidate — so two
// streams keep that probability astronomically small.
func HashEdges(es []graph.Edge) [2]uint64 {
	a := uint64(14695981039346656037)
	b := uint64(0xcbf29ce484222325 ^ 0x9e3779b97f4a7c15)
	for _, e := range es {
		x := uint64(uint32(e.U))<<32 | uint64(uint32(e.W))
		a = (a ^ x) * 1099511628211
		b = (b ^ x) * 0x100000001b3
		b ^= b >> 29
	}
	return [2]uint64{a, b}
}

// sortEdges sorts a small edge list by (U, W): insertion sort below 16
// elements (the common pattern-size case), pdqsort above.
func sortEdges(es []graph.Edge) {
	if len(es) < 16 {
		for i := 1; i < len(es); i++ {
			e := es[i]
			j := i
			for j > 0 && edgeLess(e, es[j-1]) {
				es[j] = es[j-1]
				j--
			}
			es[j] = e
		}
		return
	}
	slices.SortFunc(es, func(a, b graph.Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.W) - int(b.W)
	})
}

func edgeLess(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.W < b.W
}

// appendEdges appends p's edges (U < W, lexicographic) to buf without the
// intermediate allocation of p.Edges().
func appendEdges(buf []graph.Edge, p *graph.Graph) []graph.Edge {
	for u := 0; u < p.N(); u++ {
		for _, w := range p.Neighbors(graph.V(u)) {
			if graph.V(u) < w {
				buf = append(buf, graph.Edge{U: graph.V(u), W: w})
			}
		}
	}
	return buf
}
