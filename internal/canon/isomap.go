package canon

import "repro/internal/graph"

// IsomorphismMapping returns a label-preserving adjacency-preserving
// bijection from a's vertices to b's vertices, or nil if the graphs are not
// isomorphic. mapping[av] = bv.
func IsomorphismMapping(a, b *graph.Graph) Mapping {
	if a.N() != b.N() || a.M() != b.M() {
		return nil
	}
	n := a.N()
	if n == 0 {
		return Mapping{}
	}
	if !sameProfile(a, b) {
		return nil
	}
	ca := VertexColors(a)
	cb := VertexColors(b)
	if !sameColorMultiset(ca, cb) {
		return nil
	}
	byColor := make(map[uint64][]graph.V)
	for v := 0; v < n; v++ {
		byColor[cb[v]] = append(byColor[cb[v]], graph.V(v))
	}
	order := isoOrder(a, ca, byColor)
	mapping := make(Mapping, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return true
		}
		av := order[i]
		for _, bv := range byColor[ca[av]] {
			if used[bv] {
				continue
			}
			if !consistent(a, b, av, bv, mapping, used) {
				continue
			}
			mapping[av] = bv
			used[bv] = true
			if match(i + 1) {
				return true
			}
			mapping[av] = -1
			used[bv] = false
		}
		return false
	}
	if match(0) {
		return mapping
	}
	return nil
}
