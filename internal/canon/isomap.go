package canon

import "repro/internal/graph"

// IsomorphismMapping returns a label-preserving adjacency-preserving
// bijection from a's vertices to b's vertices, or nil if the graphs are not
// isomorphic. mapping[av] = bv. The result is freshly allocated (safe to
// retain); hot loops hold an Iso and call MapInto to skip the copy.
func IsomorphismMapping(a, b *graph.Graph) Mapping {
	s := isoPool.Get().(*Iso)
	mp := s.MapInto(a, b)
	if mp != nil {
		mp = mp.Clone()
	}
	isoPool.Put(s)
	return mp
}
