package canon

import (
	"bytes"
	"slices"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Canonizer computes canonical codes for labeled graphs with an
// individualization–refinement search. All search state — the ordered
// partition, the refinement worklist and counters, per-depth snapshots,
// the discovered automorphism generators and the code buffers — lives in
// the Canonizer and is reused across calls, so a warm Canonizer
// canonicalizes without heap allocation (the Matcher playbook). A
// Canonizer is not safe for concurrent use; callers that canonicalize
// from several goroutines keep one each, or use the package-level
// CanonicalCode, which draws from a pool.
//
// Three mechanisms keep the search polynomial on the shapes SpiderMine
// produces (which defeat a naive search factorially):
//
//   - Equitable refinement by counting sort over flat int slices: cells
//     split by neighbor counts in a splitter cell, driven by a FIFO
//     worklist — no per-round map or string signatures.
//   - Node-invariant (trace) pruning: every search node carries an
//     isomorphism-invariant hash of its refinement trace and resulting
//     partition shape; a branch whose trace exceeds the best leaf's trace
//     at the same depth is abandoned without encoding anything.
//   - Automorphism/orbit pruning: two leaves with equal codes witness an
//     automorphism; at a branch node, candidates related to an
//     already-explored sibling by a discovered automorphism that fixes
//     the node's individualized prefix are skipped. A hub with k
//     interchangeable legs collapses from ~k! leaf orderings to O(k^2)
//     search nodes.
//
// The canonical form is the minimum leaf under the order (trace sequence,
// then code), where a trace that ends (a partition that went discrete) at
// a shallower depth precedes any continuation. The trace is built only
// from isomorphism-invariant quantities (cell positions, sizes, labels,
// split counts), so the selected code — which encodes the full labeled
// adjacency — is equal between two graphs iff they are isomorphic.
type Canonizer struct {
	// Runs counts canonical-code computations and Nodes the search-tree
	// nodes they visited, cumulatively; both are plain counters the owner
	// may reset at will. Their ratio exposes how much of the search the
	// pruning removes (a k-leg hub costs O(k^2) nodes, not k!).
	Runs  int64
	Nodes int64

	g *graph.Graph
	n int

	// Ordered partition: verts lists vertices in partition order, pos is
	// its inverse; cellStartOf[v] is the start position of v's cell and
	// cellLen[s] the length of the cell starting at position s.
	verts       []int32
	pos         []int32
	cellStartOf []int32
	cellLen     []int32

	// Refinement worklist and counting-sort scratch.
	queue   []int32
	qHead   int
	inQueue []bool
	cnt     []int32 // per-vertex neighbor count in the current splitter
	touched []int32 // vertices with nonzero cnt
	affect  []int32 // distinct cell starts affected by the splitter
	affMark []bool

	// Search state.
	path      []int32  // individualized vertices, one per depth
	bestTrace []uint64 // node invariants along the best leaf's path
	haveBest  bool
	best      []byte  // best leaf code
	bestPerm  []int32 // position -> vertex order of the best leaf
	bestPath  []int32 // individualized vertices of the best leaf
	cur       []byte  // leaf-encode scratch
	jump      int     // backjump target depth after an automorphism; -1 none

	// Automorphism generators discovered at equal-code leaves, stored
	// sparsely as flattened (vertex, image) pairs over their support (most
	// generators on symmetric pattern shapes move only a handful of
	// vertices); gens[:nGen] are live for the current run, the rest are
	// retained backing arrays.
	gens     [][]int32
	nGen     int
	uf       []int32 // orbit union-find scratch, shared across the search stack
	ufEpoch  int     // bumped on every rebuild so ancestors detect descendants' rebuilds
	pathMark []bool  // vertex currently individualized on the search path

	// Per-depth scratch, lazily grown and reused across runs.
	snaps   [][]int32 // partition snapshots (4n ints per used depth)
	targets [][]int32 // branch-candidate lists

	posBuf []int32 // leaf-encode neighbor-position scratch
}

// maxGens bounds the retained automorphism generators per run; beyond it
// the search only loses pruning power, never correctness.
const maxGens = 512

// traceMix is the cheap multiply–xorshift combiner for trace hashes: the
// trace only steers pruning (code comparison decides identity), and it is
// recomputed at every search node, so one multiply beats fnvMix's
// byte-at-a-time loop. Both sides of an isomorphism mix identical
// invariant values, so any deterministic combiner preserves correctness.
func traceMix(h, x uint64) uint64 {
	h = (h ^ x) * 0x9e3779b97f4a7c15
	return h ^ (h >> 29)
}

// NewCanonizer returns an empty Canonizer. The zero value is also valid.
func NewCanonizer() *Canonizer { return &Canonizer{} }

var canonizerPool = sync.Pool{New: func() any { return NewCanonizer() }}

// GetCanonizer borrows a pooled Canonizer; pair with PutCanonizer.
func GetCanonizer() *Canonizer { return canonizerPool.Get().(*Canonizer) }

// PutCanonizer returns a borrowed Canonizer to the pool.
func PutCanonizer(c *Canonizer) { canonizerPool.Put(c) }

// Code returns the canonical code of g as a string. Equal codes iff
// isomorphic graphs. The only allocation on a warm Canonizer is the
// returned string; use Append to avoid that too.
func (c *Canonizer) Code(g *graph.Graph) string {
	c.run(g)
	return string(c.best)
}

// Append appends the canonical code of g to dst and returns the extended
// buffer. A warm Canonizer appends with zero heap allocation (given dst
// capacity).
func (c *Canonizer) Append(dst []byte, g *graph.Graph) []byte {
	c.run(g)
	return append(dst, c.best...)
}

func (c *Canonizer) run(g *graph.Graph) {
	c.Runs++
	n := g.N()
	c.g, c.n = g, n
	c.best = c.best[:0]
	c.bestTrace = c.bestTrace[:0]
	c.haveBest = false
	c.nGen = 0
	c.jump = -1
	if n == 0 {
		c.g = nil
		return
	}
	c.ensure(n)
	// Initial partition: label classes in ascending label order (vertex id
	// breaks ties for determinism; the class ordering is what must be
	// isomorphism-invariant).
	verts := c.verts
	for i := range verts {
		verts[i] = int32(i)
	}
	sort.Sort((*labelSorter)(c))
	c.queue = c.queue[:0]
	c.qHead = 0
	for i := 0; i < n; {
		j := i + 1
		for j < n && g.Label(verts[j]) == g.Label(verts[i]) {
			j++
		}
		for k := i; k < j; k++ {
			c.pos[verts[k]] = int32(k)
			c.cellStartOf[verts[k]] = int32(i)
		}
		c.cellLen[i] = int32(j - i)
		c.pushCell(int32(i))
		i = j
	}
	c.search(0, 0)
	c.g = nil
}

// ensure sizes every n-indexed scratch slice. inQueue and cnt rely on a
// clean-after-use invariant (refine drains the queue and zeroes the
// counts it touched), so only freshly grown capacity needs clearing —
// which make provides.
func (c *Canonizer) ensure(n int) {
	if cap(c.verts) < n {
		c.verts = make([]int32, n)
		c.pos = make([]int32, n)
		c.cellStartOf = make([]int32, n)
		c.cellLen = make([]int32, n)
		c.inQueue = make([]bool, n)
		c.cnt = make([]int32, n)
		c.affMark = make([]bool, n)
		c.uf = make([]int32, n)
		c.pathMark = make([]bool, n)
	}
	c.verts = c.verts[:n]
	c.pos = c.pos[:n]
	c.cellStartOf = c.cellStartOf[:n]
	c.cellLen = c.cellLen[:n]
	c.inQueue = c.inQueue[:n]
	c.cnt = c.cnt[:n]
	c.affMark = c.affMark[:n]
	c.uf = c.uf[:n]
	c.pathMark = c.pathMark[:n]
}

// labelSorter orders c.verts by (label, vertex id) without a closure
// allocation.
type labelSorter Canonizer

func (s *labelSorter) Len() int { return s.n }
func (s *labelSorter) Less(i, j int) bool {
	li, lj := s.g.Label(s.verts[i]), s.g.Label(s.verts[j])
	if li != lj {
		return li < lj
	}
	return s.verts[i] < s.verts[j]
}
func (s *labelSorter) Swap(i, j int) { s.verts[i], s.verts[j] = s.verts[j], s.verts[i] }

func (c *Canonizer) pushCell(s int32) {
	if !c.inQueue[s] {
		c.inQueue[s] = true
		c.queue = append(c.queue, s)
	}
}

// refine drives the queued splitter cells to the coarsest stable
// (equitable) refinement of the current partition and returns an
// isomorphism-invariant hash of the refinement trace. Each splitter
// counts, for every vertex, its neighbors inside the splitter; every
// touched multi-vertex cell is then split by count via a stable counting
// pass, fragments ordered by ascending count. All bookkeeping is flat int
// slices reused across calls.
//
// The trace hash mixes only the split events (cell position, fragment
// lengths and counts), yet fully determines the partition shape: splits
// are the only shape mutations, each event describes its split
// completely, and trace comparisons in the search only ever happen under
// equal ancestor traces, so equal hashes mean (modulo hash collision,
// which the leaf-depth rules in search tolerate) equal shapes.
func (c *Canonizer) refine() uint64 {
	g := c.g
	h := uint64(fnvOffset)
	for c.qHead < len(c.queue) {
		s := c.queue[c.qHead]
		c.qHead++
		c.inQueue[s] = false
		c.touched = c.touched[:0]
		for i := s; i < s+c.cellLen[s]; i++ {
			for _, w := range g.Neighbors(c.verts[i]) {
				if c.cnt[w] == 0 {
					c.touched = append(c.touched, w)
				}
				c.cnt[w]++
			}
		}
		c.affect = c.affect[:0]
		for _, w := range c.touched {
			cs := c.cellStartOf[w]
			if c.cellLen[cs] > 1 && !c.affMark[cs] {
				c.affMark[cs] = true
				c.affect = append(c.affect, cs)
			}
		}
		// Ascending start position: a deterministic, invariant split order.
		slices.Sort(c.affect)
		for _, cs := range c.affect {
			c.affMark[cs] = false
			h = c.split(cs, h)
		}
		for _, w := range c.touched {
			c.cnt[w] = 0
		}
	}
	c.queue = c.queue[:0]
	c.qHead = 0
	return h
}

// split partitions the cell at cs by the current splitter counts,
// ascending, mixing the split event into the trace hash. Fragments are
// re-queued as future splitters (re-splitting by a fragment of an
// already-processed splitter is redundant but harmless; queueing all
// fragments keeps the worklist logic trivial).
func (c *Canonizer) split(cs int32, h uint64) uint64 {
	cl := c.cellLen[cs]
	members := c.verts[cs : cs+cl]
	first := c.cnt[members[0]]
	uniform := true
	for _, v := range members[1:] {
		if c.cnt[v] != first {
			uniform = false
			break
		}
	}
	if uniform {
		return h
	}
	// Stable insertion sort by count ascending; cells are small in the
	// pattern graphs this serves.
	for i := int32(1); i < cl; i++ {
		v := members[i]
		cv := c.cnt[v]
		j := i
		for j > 0 && c.cnt[members[j-1]] > cv {
			members[j] = members[j-1]
			j--
		}
		members[j] = v
	}
	h = traceMix(h, uint64(cs))
	for i := int32(0); i < cl; {
		j := i + 1
		cv := c.cnt[members[i]]
		for j < cl && c.cnt[members[j]] == cv {
			j++
		}
		start := cs + i
		for k := i; k < j; k++ {
			c.pos[members[k]] = cs + k
			c.cellStartOf[members[k]] = start
		}
		c.cellLen[start] = j - i
		c.pushCell(start)
		h = traceMix(h, uint64(uint32(j-i))<<32|uint64(uint32(cv)))
		i = j
	}
	return h
}

// search explores one node of the individualization–refinement tree: the
// partition individualized along path[:depth] with its fragments queued
// for refinement. hint is a position no greater than the first
// non-singleton cell's: cells below it are discrete and can never change
// again, which keeps the target scan, the snapshot and the restore
// proportional to the still-active suffix of the partition.
func (c *Canonizer) search(depth int, hint int32) {
	c.Nodes++
	inv := c.refine()
	// Trace pruning against the best leaf's path.
	switch {
	case depth < len(c.bestTrace):
		if bt := c.bestTrace[depth]; inv > bt {
			return // dominated: every leaf below trails the best leaf
		} else if inv < bt {
			// Everything below dominates the old best; restart selection.
			c.bestTrace = c.bestTrace[:depth+1]
			c.bestTrace[depth] = inv
			c.haveBest = false
			c.best = c.best[:0]
		}
	case c.haveBest:
		// The best leaf went discrete at a shallower depth under an equal
		// trace prefix; shallower leaves win by definition of the order.
		return
	default:
		c.bestTrace = append(c.bestTrace, inv)
	}
	// Target cell: first non-singleton (an isomorphism-invariant choice —
	// it depends only on the partition shape).
	target, tLen := int32(-1), int32(0)
	for i := hint; i < int32(c.n); i += c.cellLen[i] {
		if l := c.cellLen[i]; l > 1 {
			target, tLen = i, l
			break
		}
	}
	if target < 0 {
		c.leaf(depth)
		return
	}
	snap := c.snapshot(depth, target)
	cands := c.targetList(depth, target, tLen)
	c.path = append(c.path[:depth], 0)
	ufGens := -1 // generators merged into the orbit scratch; -1 = unbuilt
	ufEpoch := 0 // c.ufEpoch as of this node's last merge
	dirty := false
	for ci, v := range cands {
		if ci > 0 && c.nGen > 0 {
			if ufGens >= 0 && c.ufEpoch != ufEpoch {
				// A descendant rebuilt the shared scratch under its own
				// (longer) prefix filter; its unions are valid here too,
				// but unions from this node's earlier generators were
				// dropped — rebuild from all of them.
				ufGens = -1
			}
			ufGens = c.mergeOrbits(ufGens)
			ufEpoch = c.ufEpoch
			if c.inExploredOrbit(v, cands[:ci]) {
				continue // an explored sibling's subtree is its γ-image
			}
		}
		if dirty {
			c.restore(snap, target)
		}
		c.individualize(target, v)
		c.path[depth] = v
		c.pathMark[v] = true
		c.search(depth+1, target)
		c.pathMark[v] = false
		dirty = true
		if c.jump >= 0 {
			// An automorphism γ mapping the best leaf's path onto the
			// current one was just discovered below. Every node strictly
			// between here and the divergence node can abandon its
			// remaining candidates: their subtrees are γ-images of
			// subtrees hanging off the best path, which the DFS has
			// already completed. Unwind to the divergence node, which
			// resumes with the new generator merged into its orbits.
			if c.jump < depth {
				break
			}
			c.jump = -1
		}
	}
	c.path = c.path[:depth]
}

// leaf handles a discrete partition: encode the adjacency under the
// current vertex order and fold it into the best-leaf selection. Equal
// codes from distinct orders witness an automorphism.
func (c *Canonizer) leaf(depth int) {
	c.encode()
	if c.haveBest && len(c.bestTrace) == depth+1 {
		switch bytes.Compare(c.cur, c.best) {
		case -1:
			c.best = append(c.best[:0], c.cur...)
			c.bestPerm = append(c.bestPerm[:0], c.verts...)
			c.bestPath = append(c.bestPath[:0], c.path...)
		case 0:
			c.recordAutomorphism()
			// Backjump to where this path diverged from the best leaf's.
			j := 0
			for j < depth && c.path[j] == c.bestPath[j] {
				j++
			}
			c.jump = j
		}
		return
	}
	// First leaf since the last (re)start of selection, or a shallower
	// leaf than the previous best under an equal prefix.
	c.best = append(c.best[:0], c.cur...)
	c.bestPerm = append(c.bestPerm[:0], c.verts...)
	c.bestPath = append(c.bestPath[:0], c.path...)
	c.bestTrace = c.bestTrace[:depth+1]
	c.haveBest = true
}

// encode writes the labeled adjacency under the current (discrete) vertex
// order into c.cur: per-position labels, a separator, then the
// upper-triangular edge positions in lexicographic order.
func (c *Canonizer) encode() {
	g, n := c.g, c.n
	buf := c.cur[:0]
	for i := 0; i < n; i++ {
		buf = appendVarint(buf, uint64(uint32(g.Label(c.verts[i])))+1)
	}
	buf = append(buf, 0xff)
	for i := 0; i < n; i++ {
		pb := c.posBuf[:0]
		for _, w := range g.Neighbors(c.verts[i]) {
			if p := c.pos[w]; p > int32(i) {
				pb = append(pb, p)
			}
		}
		// Insertion sort: neighbor lists are tiny in pattern graphs.
		for a := 1; a < len(pb); a++ {
			x := pb[a]
			b := a
			for b > 0 && pb[b-1] > x {
				pb[b] = pb[b-1]
				b--
			}
			pb[b] = x
		}
		c.posBuf = pb
		for _, p := range pb {
			buf = appendVarint(buf, uint64(i))
			buf = appendVarint(buf, uint64(p))
		}
	}
	c.cur = buf
}

// recordAutomorphism derives the automorphism mapping the best leaf's
// order onto the current leaf's order and keeps its support — flattened
// (vertex, image) pairs — as an orbit-pruning generator.
func (c *Canonizer) recordAutomorphism() {
	if c.nGen >= maxGens {
		return
	}
	var gamma []int32
	if c.nGen < len(c.gens) {
		gamma = c.gens[c.nGen][:0]
	}
	for i := 0; i < c.n; i++ {
		if c.bestPerm[i] != c.verts[i] {
			gamma = append(gamma, c.bestPerm[i], c.verts[i])
		}
	}
	if c.nGen < len(c.gens) {
		c.gens[c.nGen] = gamma
	} else {
		c.gens = append(c.gens, gamma)
	}
	if len(gamma) == 0 {
		return // identity: distinct leaves always differ, but be safe
	}
	c.nGen++
}

// mergeOrbits folds generators gens[done:nGen] that fix the current
// individualized prefix into the orbit union-find, (re)initializing it on
// first use at this node, and returns the new done count. A generator
// fixes the prefix iff no path vertex is in its support, so both the
// check and the union pass are O(support), not O(n).
func (c *Canonizer) mergeOrbits(done int) int {
	if done < 0 {
		for i := range c.uf {
			c.uf[i] = int32(i)
		}
		c.ufEpoch++
		done = 0
	}
	for ; done < c.nGen; done++ {
		gamma := c.gens[done]
		fixes := true
		for i := 0; i < len(gamma); i += 2 {
			if c.pathMark[gamma[i]] {
				fixes = false
				break
			}
		}
		if !fixes {
			continue
		}
		for i := 0; i < len(gamma); i += 2 {
			c.union(gamma[i], gamma[i+1])
		}
	}
	return done
}

// inExploredOrbit reports whether v shares an orbit with any earlier
// candidate (explored ones and, transitively through the union-find,
// candidates those subsumed).
func (c *Canonizer) inExploredOrbit(v int32, earlier []int32) bool {
	rv := c.find(v)
	for _, u := range earlier {
		if c.find(u) == rv {
			return true
		}
	}
	return false
}

func (c *Canonizer) find(x int32) int32 {
	for c.uf[x] != x {
		c.uf[x] = c.uf[c.uf[x]]
		x = c.uf[x]
	}
	return x
}

func (c *Canonizer) union(a, b int32) {
	ra, rb := c.find(a), c.find(b)
	switch {
	case ra == rb:
	case ra < rb:
		c.uf[rb] = ra
	default:
		c.uf[ra] = rb
	}
}

// individualize splits {v} off the front of the cell at cs and queues
// both fragments for refinement.
func (c *Canonizer) individualize(cs, v int32) {
	pv := c.pos[v]
	u := c.verts[cs]
	c.verts[cs], c.verts[pv] = v, u
	c.pos[v], c.pos[u] = cs, pv
	cl := c.cellLen[cs]
	c.cellLen[cs] = 1
	c.cellStartOf[v] = cs
	rest := cs + 1
	c.cellLen[rest] = cl - 1
	for i := rest; i < cs+cl; i++ {
		c.cellStartOf[c.verts[i]] = rest
	}
	c.pushCell(cs)
	c.pushCell(rest)
}

// snapshot saves the mutable suffix of the partition (positions from the
// target cell on — everything below is discrete and frozen) into the
// per-depth scratch; restore undoes a child's mutations before the next
// sibling branch. Only verts and cellLen are stored: pos and cellStartOf
// are recomputed from them on restore, so the snapshot is two copies of
// the active suffix, not four of the whole partition.
func (c *Canonizer) snapshot(depth int, from int32) []int32 {
	for len(c.snaps) <= depth {
		c.snaps = append(c.snaps, nil)
	}
	w := int(int32(c.n) - from)
	s := c.snaps[depth]
	if cap(s) < 2*w {
		s = make([]int32, 2*w)
	}
	s = s[:2*w]
	copy(s[:w], c.verts[from:])
	copy(s[w:], c.cellLen[from:])
	c.snaps[depth] = s
	return s
}

func (c *Canonizer) restore(s []int32, from int32) {
	w := int(int32(c.n) - from)
	copy(c.verts[from:], s[:w])
	copy(c.cellLen[from:], s[w:])
	for i := from; i < int32(c.n); i += c.cellLen[i] {
		for j := i; j < i+c.cellLen[i]; j++ {
			v := c.verts[j]
			c.pos[v] = j
			c.cellStartOf[v] = i
		}
	}
}

// targetList copies the target cell's members into per-depth scratch (the
// live partition mutates during child exploration).
func (c *Canonizer) targetList(depth int, cs, cl int32) []int32 {
	for len(c.targets) <= depth {
		c.targets = append(c.targets, nil)
	}
	t := append(c.targets[depth][:0], c.verts[cs:cs+cl]...)
	c.targets[depth] = t
	return t
}
