package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// --- shape constructors shared by the differential tests and benchmarks ---

// star returns a hub with legs leaves; hubLabel/legLabel may coincide,
// which is the maximally symmetric (worst) case for a naive search.
func star(legs int, hubLabel, legLabel graph.Label) *graph.Graph {
	b := graph.NewBuilder(legs+1, legs)
	hub := b.AddVertex(hubLabel)
	for i := 0; i < legs; i++ {
		b.AddEdge(hub, b.AddVertex(legLabel))
	}
	return b.Build()
}

// spiderLegs returns a hub with legs paths of the given length hanging off
// it — the unpruned hub-with-interchangeable-legs monster a cancelled
// SpiderMine run can hold.
func spiderLegs(legs, legLen int, l graph.Label) *graph.Graph {
	b := graph.NewBuilder(1+legs*legLen, legs*legLen)
	hub := b.AddVertex(l)
	for i := 0; i < legs; i++ {
		prev := hub
		for j := 0; j < legLen; j++ {
			v := b.AddVertex(l)
			b.AddEdge(prev, v)
			prev = v
		}
	}
	return b.Build()
}

func cycle(n int, l graph.Label) *graph.Graph {
	b := graph.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddVertex(l)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return b.Build()
}

func completeBipartite(p, q int, l graph.Label) *graph.Graph {
	b := graph.NewBuilder(p+q, p*q)
	for i := 0; i < p+q; i++ {
		b.AddVertex(l)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			b.AddEdge(graph.V(i), graph.V(p+j))
		}
	}
	return b.Build()
}

// relabel applies a random bijection on the label *values* of g (vertex
// ids untouched). Unless the bijection fixes every used label, the result
// is typically not isomorphic to g — exercising the negative direction of
// the code/iso equivalence.
func relabel(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	seen := map[graph.Label]graph.Label{}
	var used []graph.Label
	for v := 0; v < g.N(); v++ {
		l := g.Label(graph.V(v))
		if _, ok := seen[l]; !ok {
			seen[l] = 0
			used = append(used, l)
		}
	}
	perm := rng.Perm(len(used))
	for i, l := range used {
		seen[l] = used[perm[i]]
	}
	b := graph.NewBuilder(g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		b.AddVertex(seen[g.Label(graph.V(v))])
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.W)
	}
	return b.Build()
}

// bruteIso is the reference isomorphism check: try every permutation.
// Only usable for tiny n.
func bruteIso(a, b *graph.Graph) bool {
	n := a.N()
	if n != b.N() || a.M() != b.M() {
		return false
	}
	perm := make([]graph.V, n)
	usedB := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for bv := 0; bv < n; bv++ {
			if usedB[bv] || a.Label(graph.V(i)) != b.Label(graph.V(bv)) {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if a.HasEdge(graph.V(i), graph.V(j)) != b.HasEdge(graph.V(bv), perm[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = graph.V(bv)
			usedB[bv] = true
			if rec(i + 1) {
				return true
			}
			usedB[bv] = false
		}
		return false
	}
	return rec(0)
}

// TestCanonicalCodeDifferential is the randomized three-way property test:
// CanonicalCode(a) == CanonicalCode(b) ⇔ Isomorphic(a, b) ⇔ brute-force
// permutation check, over generator graph pairs (permuted copies, fresh
// random graphs, label-permuted copies).
func TestCanonicalCodeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	cz := NewCanonizer()
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(6) // brute force stays feasible
		a := randomGraph(n, 1+rng.Intn(2*n), 1+rng.Intn(3), rng)
		var b *graph.Graph
		switch trial % 3 {
		case 0:
			b = permute(a, rng)
		case 1:
			b = randomGraph(n, 1+rng.Intn(2*n), 1+rng.Intn(3), rng)
		default:
			b = relabel(a, rng)
		}
		codeEq := cz.Code(a) == cz.Code(b)
		isoEq := Isomorphic(a, b)
		refEq := bruteIso(a, b)
		if codeEq != isoEq || isoEq != refEq {
			t.Fatalf("trial %d: code==%v iso==%v brute==%v\na=%v %v\nb=%v %v",
				trial, codeEq, isoEq, refEq, a, a.Edges(), b, b.Edges())
		}
	}
}

// TestCanonicalCodeLargerPermuted drops the brute-force oracle and scales
// n up: a permuted copy must keep its code, and Isomorphic must agree
// with the code comparison in both directions.
func TestCanonicalCodeLargerPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	cz := NewCanonizer()
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(20)
		a := randomGraph(n, n+rng.Intn(2*n), 1+rng.Intn(4), rng)
		h := permute(a, rng)
		if cz.Code(a) != cz.Code(h) {
			t.Fatalf("trial %d: permuted copy changed code", trial)
		}
		other := randomGraph(n, a.M(), 1+rng.Intn(4), rng)
		if (cz.Code(a) == cz.Code(other)) != Isomorphic(a, other) {
			t.Fatalf("trial %d: code equality disagrees with Isomorphic", trial)
		}
	}
}

// TestCanonicalCodeSymmetricCorpus pins the shapes the old
// individualization search blew up on: hubs with interchangeable legs,
// long uniform cycles, complete bipartite graphs. Each shape must survive
// a random permutation (equal codes) and separate from near-misses.
func TestCanonicalCodeSymmetricCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"star8", star(8, 0, 0)},
		{"star33", star(33, 0, 0)},
		{"star64", star(64, 0, 0)},
		{"star64-labeled", star(64, 1, 2)},
		{"spider12x2", spiderLegs(12, 2, 0)},
		{"spider8x3", spiderLegs(8, 3, 0)},
		{"cycle16", cycle(16, 0)},
		{"cycle33", cycle(33, 0)},
		{"k44", completeBipartite(4, 4, 0)},
		{"k35", completeBipartite(3, 5, 0)},
		{"k88", completeBipartite(8, 8, 0)},
	}
	cz := NewCanonizer()
	codes := make([]string, len(shapes))
	for i, s := range shapes {
		codes[i] = cz.Code(s.g)
		for trial := 0; trial < 3; trial++ {
			if got := cz.Code(permute(s.g, rng)); got != codes[i] {
				t.Fatalf("%s: permuted copy changed code", s.name)
			}
		}
	}
	for i := range shapes {
		for j := i + 1; j < len(shapes); j++ {
			same := codes[i] == codes[j]
			if iso := Isomorphic(shapes[i].g, shapes[j].g); same != iso {
				t.Fatalf("%s vs %s: code equality %v but Isomorphic %v",
					shapes[i].name, shapes[j].name, same, iso)
			}
			if same {
				t.Fatalf("%s vs %s: distinct corpus shapes share a code", shapes[i].name, shapes[j].name)
			}
		}
	}
	// K4,4 vs the 3-cube: the classic degree-regular pair with equal
	// (n, m, degree sequence); codes must separate them.
	cube := graph.FromEdges(make([]graph.Label, 8), []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 0},
		{U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 7}, {U: 7, W: 4},
		{U: 0, W: 4}, {U: 1, W: 5}, {U: 2, W: 6}, {U: 3, W: 7},
	})
	if cz.Code(cube) == cz.Code(completeBipartite(4, 4, 0)) {
		t.Fatal("Q3 and K4,4 share a code")
	}
	// C6 vs 2×C3: WL-equivalent when disconnected; codes must differ.
	c6 := cycle(6, 0)
	cc := graph.FromEdges(make([]graph.Label, 6), []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 2},
		{U: 3, W: 4}, {U: 4, W: 5}, {U: 3, W: 5},
	})
	if cz.Code(c6) == cz.Code(cc) {
		t.Fatal("C6 and 2xC3 share a code")
	}
}

// TestCanonicalCodeHubTerminates is the regression for the tentpole: the
// 64-leg single-hub spider was effectively non-terminating (~64! leaf
// orderings) under the old search. The test both proves termination (a
// factorial regression would hit the package timeout) and checks codes
// across permutations and leg-order rebuilds. Search-node counters pin
// the polynomial behavior with headroom.
func TestCanonicalCodeHubTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	cz := NewCanonizer()
	for _, legs := range []int{8, 16, 32, 64} {
		g := star(legs, 0, 0)
		cz.Nodes = 0
		code := cz.Code(g)
		if nodes := cz.Nodes; nodes > int64(8*legs*legs) {
			t.Fatalf("legs=%d: %d search nodes — orbit pruning not engaging", legs, nodes)
		}
		if cz.Code(permute(g, rng)) != code {
			t.Fatalf("legs=%d: permuted star changed code", legs)
		}
		if cz.Code(star(legs+1, 0, 0)) == code {
			t.Fatalf("legs=%d: star codes collide across sizes", legs)
		}
	}
	// The monster from the cancelled-run path: hub of long legs.
	g := spiderLegs(24, 3, 0)
	if cz.Code(g) != cz.Code(permute(g, rng)) {
		t.Fatal("24x3 spider: permuted copy changed code")
	}
}

// TestCanonizerWarmNoAlloc pins the allocation-free contract of a warm
// Canonizer's Append on representative shapes.
func TestCanonizerWarmNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	graphs := []*graph.Graph{
		randomGraph(20, 40, 4, rng),
		star(64, 0, 0),
		cycle(32, 0),
		completeBipartite(4, 4, 0),
	}
	cz := NewCanonizer()
	var buf []byte
	for _, g := range graphs {
		buf = cz.Append(buf[:0], g) // warm every shape first
	}
	for i, g := range graphs {
		g := g
		allocs := testing.AllocsPerRun(20, func() {
			buf = cz.Append(buf[:0], g)
		})
		if allocs != 0 {
			t.Fatalf("graph %d (%v): warm Append allocates %.1f/op", i, g, allocs)
		}
	}
}

// TestCanonicalCodeMatchesPoolPath: the package-level wrapper and a
// dedicated Canonizer must agree (they share the implementation, but the
// pool path must not leak state between borrowers).
func TestCanonicalCodeMatchesPoolPath(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cz := NewCanonizer()
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(3+rng.Intn(12), 2+rng.Intn(20), 1+rng.Intn(3), rng)
		if CanonicalCode(g) != cz.Code(g) {
			t.Fatalf("trial %d: pooled and owned canonizer disagree", trial)
		}
	}
}

// TestCanonizerStateReuse interleaves graphs of very different sizes
// through one Canonizer to shake out stale-scratch bugs.
func TestCanonizerStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cz := NewCanonizer()
	want := map[string]string{}
	build := []*graph.Graph{
		star(64, 0, 0),
		path(1, 2, 3),
		cycle(16, 0),
		star(3, 1, 1),
		randomGraph(25, 50, 3, rng),
		path(0, 0),
	}
	for i, g := range build {
		want[fmt.Sprint(i)] = cz.Code(g)
	}
	for rep := 0; rep < 3; rep++ {
		for i, g := range build {
			if got := cz.Code(g); got != want[fmt.Sprint(i)] {
				t.Fatalf("rep %d graph %d: code changed across reuse", rep, i)
			}
		}
	}
}
