package canon

import (
	"sort"

	"repro/internal/graph"
)

// Isomorphic reports whether two labeled graphs are isomorphic
// (Definition 1: a label-preserving bijection that preserves adjacency both
// ways). It prunes with vertex counts, edge counts, sorted degree/label
// profiles and WL colors before falling back to backtracking.
func Isomorphic(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	n := a.N()
	if n == 0 {
		return true
	}
	if !sameProfile(a, b) {
		return false
	}
	ca := VertexColors(a)
	cb := VertexColors(b)
	if !sameColorMultiset(ca, cb) {
		return false
	}
	// Candidate sets: vertex of a can only map to b-vertices with the same
	// WL color.
	byColor := make(map[uint64][]graph.V)
	for v := 0; v < n; v++ {
		byColor[cb[v]] = append(byColor[cb[v]], graph.V(v))
	}
	// Order a's vertices: rarest color first, then connectivity to mapped
	// region, to fail fast.
	order := isoOrder(a, ca, byColor)

	mapping := make([]graph.V, n) // a-vertex -> b-vertex
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return true
		}
		av := order[i]
		for _, bv := range byColor[ca[av]] {
			if used[bv] {
				continue
			}
			if !consistent(a, b, av, bv, mapping, used) {
				continue
			}
			mapping[av] = bv
			used[bv] = true
			if match(i + 1) {
				return true
			}
			mapping[av] = -1
			used[bv] = false
		}
		return false
	}
	return match(0)
}

// consistent checks that mapping av->bv preserves adjacency with all
// already-mapped vertices, in both directions (degree equality plus this
// check gives full adjacency preservation once all vertices are mapped).
// isMapped is the reverse-image indicator maintained alongside mapping
// (isMapped[bw] iff some a-vertex maps to bw), turning the reverse
// adjacency count into an O(deg) scan instead of an O(n) search per
// neighbor.
func consistent(a, b *graph.Graph, av, bv graph.V, mapping []graph.V, isMapped []bool) bool {
	if a.Label(av) != b.Label(bv) || a.Degree(av) != b.Degree(bv) {
		return false
	}
	mappedNeighbors := 0
	for _, aw := range a.Neighbors(av) {
		if bw := mapping[aw]; bw >= 0 {
			mappedNeighbors++
			if !b.HasEdge(bv, bw) {
				return false
			}
		}
	}
	// Reverse direction: bv must not be adjacent to more mapped b-vertices
	// than av is to mapped a-vertices.
	cnt := 0
	for _, bw := range b.Neighbors(bv) {
		if isMapped[bw] {
			cnt++
		}
	}
	return cnt == mappedNeighbors
}

func sameProfile(a, b *graph.Graph) bool {
	n := a.N()
	pa := make([]uint64, n)
	pb := make([]uint64, n)
	for v := 0; v < n; v++ {
		pa[v] = uint64(a.Label(graph.V(v)))<<32 | uint64(a.Degree(graph.V(v)))
		pb[v] = uint64(b.Label(graph.V(v)))<<32 | uint64(b.Degree(graph.V(v)))
	}
	sort.Slice(pa, func(i, j int) bool { return pa[i] < pa[j] })
	sort.Slice(pb, func(i, j int) bool { return pb[i] < pb[j] })
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

func sameColorMultiset(ca, cb []uint64) bool {
	sa := append([]uint64(nil), ca...)
	sb := append([]uint64(nil), cb...)
	sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
	sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// isoOrder returns a's vertices ordered so that vertices with rare colors
// come first and every subsequent vertex is adjacent to an earlier one when
// possible (connected expansion), which keeps the backtracking shallow.
func isoOrder(a *graph.Graph, ca []uint64, byColor map[uint64][]graph.V) []graph.V {
	n := a.N()
	placed := make([]bool, n)
	order := make([]graph.V, 0, n)
	adjPlaced := make([]int, n)

	pick := func() graph.V {
		best := graph.V(-1)
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			if best < 0 {
				best = graph.V(v)
				continue
			}
			// Prefer higher adjacency to placed region, then rarer color,
			// then higher degree.
			bv, vv := best, graph.V(v)
			switch {
			case adjPlaced[vv] != adjPlaced[bv]:
				if adjPlaced[vv] > adjPlaced[bv] {
					best = vv
				}
			case len(byColor[ca[vv]]) != len(byColor[ca[bv]]):
				if len(byColor[ca[vv]]) < len(byColor[ca[bv]]) {
					best = vv
				}
			case a.Degree(vv) > a.Degree(bv):
				best = vv
			}
		}
		return best
	}
	for len(order) < n {
		v := pick()
		placed[v] = true
		order = append(order, v)
		for _, w := range a.Neighbors(v) {
			adjPlaced[w]++
		}
	}
	return order
}
