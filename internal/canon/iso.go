package canon

import "repro/internal/graph"

// Isomorphic reports whether two labeled graphs are isomorphic
// (Definition 1: a label-preserving bijection that preserves adjacency both
// ways). It prunes with vertex counts, edge counts, sorted degree/label
// profiles and WL colors before falling back to backtracking. The search
// state comes from a pooled Iso scratch (see isoscratch.go); hot loops
// hold their own Iso instead.
func Isomorphic(a, b *graph.Graph) bool {
	s := isoPool.Get().(*Iso)
	ok := s.MapInto(a, b) != nil
	isoPool.Put(s)
	return ok
}

// consistent checks that mapping av->bv preserves adjacency with all
// already-mapped vertices, in both directions (degree equality plus this
// check gives full adjacency preservation once all vertices are mapped).
// isMapped is the reverse-image indicator maintained alongside mapping
// (isMapped[bw] iff some a-vertex maps to bw), turning the reverse
// adjacency count into an O(deg) scan instead of an O(n) search per
// neighbor.
func consistent(a, b *graph.Graph, av, bv graph.V, mapping []graph.V, isMapped []bool) bool {
	if a.Label(av) != b.Label(bv) || a.Degree(av) != b.Degree(bv) {
		return false
	}
	mappedNeighbors := 0
	for _, aw := range a.Neighbors(av) {
		if bw := mapping[aw]; bw >= 0 {
			mappedNeighbors++
			if !b.HasEdge(bv, bw) {
				return false
			}
		}
	}
	// Reverse direction: bv must not be adjacent to more mapped b-vertices
	// than av is to mapped a-vertices.
	cnt := 0
	for _, bw := range b.Neighbors(bv) {
		if isMapped[bw] {
			cnt++
		}
	}
	return cnt == mappedNeighbors
}
