package txdb

import (
	"testing"

	"repro/internal/canon"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestUnion(t *testing.T) {
	g1 := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	g2 := graph.FromEdges([]graph.Label{3, 4, 5}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	db := New(g1, g2)
	if db.Len() != 2 {
		t.Fatal("len")
	}
	u, txOf := db.Union()
	if u.N() != 5 || u.M() != 3 {
		t.Fatalf("union %v", u)
	}
	want := []int{0, 0, 1, 1, 1}
	for i, w := range want {
		if txOf[i] != w {
			t.Fatalf("txOf[%d]=%d, want %d", i, txOf[i], w)
		}
	}
	// labels preserved with offsets
	if u.Label(0) != 1 || u.Label(2) != 3 || u.Label(4) != 5 {
		t.Fatal("labels lost")
	}
	// no cross-graph edges
	if u.HasEdge(1, 2) {
		t.Fatal("cross-transaction edge")
	}
}

func TestUnionEmpty(t *testing.T) {
	u, txOf := New().Union()
	if u.N() != 0 || len(txOf) != 0 {
		t.Fatal("empty union wrong")
	}
}

func TestSyntheticTx(t *testing.T) {
	db, larges := SyntheticTx(SyntheticTxConfig{
		NumGraphs: 5, N: 120, AvgDeg: 3, NumLabels: 40,
		Large: gen.InjectSpec{NV: 10, Count: 2, Support: 1},
		Seed:  9,
	})
	if db.Len() != 5 {
		t.Fatalf("graphs %d", db.Len())
	}
	if len(larges) != 2 {
		t.Fatalf("large patterns %d", len(larges))
	}
	// every large pattern occurs in every transaction graph
	for pi, p := range larges {
		for gi, g := range db.Graphs {
			if !canon.HasEmbedding(p, g) {
				t.Errorf("pattern %d missing from graph %d", pi, gi)
			}
		}
	}
}
