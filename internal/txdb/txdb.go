// Package txdb provides the graph-transaction setting: a database of
// graphs where pattern support is the number of database graphs containing
// at least one embedding. SpiderMine and ORIGAMI consume the database as a
// disjoint union graph with a vertex → transaction-id table.
package txdb

import (
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
)

// DB is a graph-transaction database.
type DB struct {
	Graphs []*graph.Graph
}

// New builds a database from graphs.
func New(gs ...*graph.Graph) *DB { return &DB{Graphs: gs} }

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.Graphs) }

// Union returns the disjoint union of all transaction graphs plus txOf,
// mapping each union vertex to the index of its source graph. Vertex ids
// are assigned consecutively per graph in order.
func (db *DB) Union() (*graph.Graph, []int) {
	total, edges := 0, 0
	for _, g := range db.Graphs {
		total += g.N()
		edges += g.M()
	}
	b := graph.NewBuilder(total, edges)
	txOf := make([]int, 0, total)
	offset := graph.V(0)
	for ti, g := range db.Graphs {
		for v := 0; v < g.N(); v++ {
			b.AddVertex(g.Label(graph.V(v)))
			txOf = append(txOf, ti)
		}
		for _, e := range g.Edges() {
			b.AddEdge(offset+e.U, offset+e.W)
		}
		offset += graph.V(g.N())
	}
	return b.Build(), txOf
}

// SyntheticTxConfig describes the transaction-setting datasets of §5.1.2:
// several ER graphs with shared large (and optionally small) patterns
// injected across them.
type SyntheticTxConfig struct {
	NumGraphs int
	N         int     // vertices per graph
	AvgDeg    float64 // average degree per graph
	NumLabels int
	Large     gen.InjectSpec // injected into every graph
	Small     gen.InjectSpec // injected into every graph
	Seed      int64
}

// SyntheticTx builds the database: the same large pattern set is embedded
// once into each transaction graph (so each pattern's transaction support
// equals NumGraphs), and each small pattern into a random subset.
func SyntheticTx(cfg SyntheticTxConfig) (*DB, []*graph.Graph) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var larges []*graph.Graph
	for i := 0; i < cfg.Large.Count; i++ {
		larges = append(larges, gen.RandomConnectedPattern(cfg.Large.NV, cfg.Large.NV/5, cfg.NumLabels, 4, rng))
	}
	var smalls []*graph.Graph
	for i := 0; i < cfg.Small.Count; i++ {
		smalls = append(smalls, gen.RandomConnectedPattern(cfg.Small.NV, 0, cfg.NumLabels, 2, rng))
	}
	db := &DB{}
	for gi := 0; gi < cfg.NumGraphs; gi++ {
		bg := gen.ErdosRenyi(cfg.N, cfg.AvgDeg, cfg.NumLabels, rng)
		b := graph.NewBuilder(bg.N(), bg.M()*2)
		for v := 0; v < bg.N(); v++ {
			b.AddVertex(bg.Label(graph.V(v)))
		}
		for _, e := range bg.Edges() {
			b.AddEdge(e.U, e.W)
		}
		used := make(map[graph.V]bool)
		for _, p := range larges {
			gen.EmbedInto(b, p, used, rng)
		}
		for _, p := range smalls {
			// Each small pattern appears in ~80% of graphs, keeping them
			// frequent but noisy.
			if rng.Float64() < 0.8 {
				gen.EmbedInto(b, p, used, rng)
			}
		}
		db.Graphs = append(db.Graphs, b.Build())
	}
	return db, larges
}
