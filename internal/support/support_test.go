package support

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pattern"
)

func edgePattern() *graph.Graph {
	return graph.FromEdges([]graph.Label{0, 0}, []graph.Edge{{U: 0, W: 1}})
}

func TestMeasuresOnDisjointEmbeddings(t *testing.T) {
	pg := edgePattern()
	embs := []pattern.Embedding{{0, 1}, {2, 3}, {4, 5}}
	for _, m := range []Measure{CountAll, EdgeDisjoint, HarmfulOverlap, VertexDisjoint} {
		if got := Of(pg, embs, m); got != 3 {
			t.Errorf("%v on disjoint embeddings: got %d, want 3", m, got)
		}
	}
}

func TestEdgeDisjointSharedEdge(t *testing.T) {
	// Two P3 embeddings sharing one edge.
	pg := graph.FromEdges([]graph.Label{0, 0, 0}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	embs := []pattern.Embedding{{0, 1, 2}, {2, 1, 3}} // share edge 1-2
	if got := Of(pg, embs, EdgeDisjoint); got != 1 {
		t.Fatalf("edge-disjoint: got %d, want 1", got)
	}
	if got := Of(pg, embs, CountAll); got != 2 {
		t.Fatalf("count-all: got %d, want 2", got)
	}
}

func TestVertexDisjointSharedVertexOnly(t *testing.T) {
	pg := edgePattern()
	// Share vertex 1, no shared edge.
	embs := []pattern.Embedding{{0, 1}, {1, 2}}
	if got := Of(pg, embs, VertexDisjoint); got != 1 {
		t.Fatalf("vertex-disjoint: got %d, want 1", got)
	}
	if got := Of(pg, embs, EdgeDisjoint); got != 2 {
		t.Fatalf("edge-disjoint: got %d, want 2 (no edge shared)", got)
	}
}

func TestHarmfulOverlapEquivalentPositions(t *testing.T) {
	// Pattern: 0-0 edge; both positions are WL-equivalent. Embeddings
	// sharing any vertex harmfully overlap.
	pg := edgePattern()
	embs := []pattern.Embedding{{0, 1}, {1, 2}}
	if got := Of(pg, embs, HarmfulOverlap); got != 1 {
		t.Fatalf("harmful overlap (equivalent positions): got %d, want 1", got)
	}
}

func TestHarmfulOverlapInequivalentPositions(t *testing.T) {
	// Pattern 1-2 edge: positions carry different labels, so sharing a
	// host vertex across *different* positions is harmless.
	pg := graph.FromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, W: 1}})
	// host vertex 5 plays position 0 (label 1) in e1 and position 0 in e2
	// would clash; instead let 5 appear at different positions — but the
	// labels differ so no single host vertex can legally appear at both
	// positions. Use embeddings sharing nothing at equivalent slots:
	embs := []pattern.Embedding{{5, 6}, {7, 6}} // share host 6 at the SAME position 1
	if got := Of(pg, embs, HarmfulOverlap); got != 1 {
		t.Fatalf("same-position sharing must be harmful: got %d", got)
	}
	embs2 := []pattern.Embedding{{5, 6}, {8, 9}}
	if got := Of(pg, embs2, HarmfulOverlap); got != 2 {
		t.Fatalf("disjoint embeddings: got %d, want 2", got)
	}
}

func TestOfPattern(t *testing.T) {
	p := pattern.New(edgePattern(), []pattern.Embedding{{0, 1}, {2, 3}})
	if OfPattern(p, CountAll) != 2 {
		t.Fatal("OfPattern wrong")
	}
}

func TestTransactionSupport(t *testing.T) {
	txOf := []int{0, 0, 1, 1, 2}
	embs := []pattern.Embedding{{0, 1}, {2, 3}, {0, 1}}
	if got := TransactionSupport(embs, txOf); got != 2 {
		t.Fatalf("tx support: got %d, want 2", got)
	}
	if got := TransactionSupport(nil, txOf); got != 0 {
		t.Fatalf("empty: got %d", got)
	}
}

func TestMeasureString(t *testing.T) {
	for m, want := range map[Measure]string{
		CountAll:       "all-embeddings",
		EdgeDisjoint:   "edge-disjoint",
		HarmfulOverlap: "harmful-overlap",
		VertexDisjoint: "vertex-disjoint",
		Measure(99):    "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

// Property: for any embedding set, VertexDisjoint <= EdgeDisjoint <=
// CountAll and VertexDisjoint <= HarmfulOverlap <= CountAll (the measures
// form a refinement hierarchy).
func TestQuickMeasureHierarchy(t *testing.T) {
	pg := graph.FromEdges([]graph.Label{0, 0, 0}, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nEmb := 1 + rng.Intn(12)
		hostRange := 6 + rng.Intn(10)
		seen := map[string]bool{}
		var embs []pattern.Embedding
		for i := 0; i < nEmb; i++ {
			perm := rng.Perm(hostRange)[:3]
			e := pattern.Embedding{graph.V(perm[0]), graph.V(perm[1]), graph.V(perm[2])}
			k := e.ImageKey(pg)
			if seen[k] {
				continue
			}
			seen[k] = true
			embs = append(embs, e)
		}
		all := Of(pg, embs, CountAll)
		ed := Of(pg, embs, EdgeDisjoint)
		ho := Of(pg, embs, HarmfulOverlap)
		vd := Of(pg, embs, VertexDisjoint)
		return vd <= ed && ed <= all && vd <= ho && ho <= all && vd >= boolToInt(len(embs) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
	// Regression: this seed produced a greedy harmful-overlap bound
	// *below* the vertex-disjoint one (an early pick blocked three
	// later, mutually vertex-disjoint embeddings) before the measures
	// took the max with the vertex-disjoint greedy.
	if !f(-4170806068862583888) {
		t.Error("hierarchy violated on the recorded regression seed")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Property: all measures are monotone under adding embeddings (support of
// a subset is <= support of the superset) for the greedy scan order used.
func TestQuickSubsetMonotonicity(t *testing.T) {
	pg := edgePattern()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hostRange := 8 + rng.Intn(8)
		var embs []pattern.Embedding
		seen := map[string]bool{}
		for i := 0; i < 10; i++ {
			u := graph.V(rng.Intn(hostRange))
			w := graph.V(rng.Intn(hostRange))
			if u == w {
				continue
			}
			e := pattern.Embedding{u, w}
			k := e.ImageKey(pg)
			if seen[k] {
				continue
			}
			seen[k] = true
			embs = append(embs, e)
		}
		if len(embs) < 2 {
			return true
		}
		sub := embs[:len(embs)/2]
		// CountAll is exactly monotone; greedy MIS measures are monotone
		// up to the greedy's 1-approximation; we assert the weak bound
		// that the full set supports at least half the subset's count.
		return Of(pg, embs, CountAll) >= Of(pg, sub, CountAll) &&
			2*Of(pg, embs, EdgeDisjoint) >= Of(pg, sub, EdgeDisjoint)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
