// Package support implements pattern-support computation for the
// single-graph setting, where overlapping embeddings make "frequency"
// ambiguous. Three measures are provided:
//
//   - CountAll: the raw number of distinct embeddings (subgraphs).
//   - EdgeDisjoint: the maximum number of pairwise edge-disjoint
//     embeddings, lower-bounded greedily (Vanetik et al.; Kuramochi &
//     Karypis use the same notion with an anchor-edge-list).
//   - HarmfulOverlap: the Fiedler–Borgelt measure adopted by SpiderMine —
//     two embeddings conflict only if they overlap *harmfully*, i.e. they
//     share a host vertex playing equivalent roles in the pattern; an
//     independent set of the conflict graph is counted greedily.
//
// All measures are anti-monotone in their exact form; the greedy
// approximations preserve anti-monotonicity closely enough for mining (the
// paper relies on the same downward-closure argument).
//
// The exact measures form a refinement hierarchy — VertexDisjoint <=
// EdgeDisjoint <= CountAll and VertexDisjoint <= HarmfulOverlap <=
// CountAll — because every vertex-disjoint embedding set is also
// edge-disjoint and free of harmful overlaps. A lone greedy scan does
// not inherit the hierarchy (an early pick under the looser conflict
// relation can block several embeddings the stricter greedy would have
// kept), so EdgeDisjoint and HarmfulOverlap return the max of their own
// greedy bound and the vertex-disjoint one; both remain valid lower
// bounds of the exact measure, and the hierarchy holds by construction
// (TestQuickMeasureHierarchy).
package support

import (
	"sort"
	"sync"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Measure selects a support definition.
type Measure int

const (
	// CountAll counts distinct embeddings with no overlap constraint.
	CountAll Measure = iota
	// EdgeDisjoint counts a maximal set of pairwise edge-disjoint
	// embeddings (greedy maximum-independent-set lower bound).
	EdgeDisjoint
	// HarmfulOverlap counts a maximal set of embeddings with no harmful
	// overlaps (Fiedler–Borgelt), the paper's default.
	HarmfulOverlap
	// VertexDisjoint counts a maximal set of embeddings sharing no host
	// vertex at all (the strictest notion; SUBDUE and GREW count instances
	// this way).
	VertexDisjoint
)

func (m Measure) String() string {
	switch m {
	case CountAll:
		return "all-embeddings"
	case EdgeDisjoint:
		return "edge-disjoint"
	case HarmfulOverlap:
		return "harmful-overlap"
	case VertexDisjoint:
		return "vertex-disjoint"
	default:
		return "unknown"
	}
}

// Of computes the support of a pattern graph given its embedding list.
func Of(p *graph.Graph, embs []pattern.Embedding, m Measure) int {
	switch m {
	case CountAll:
		return len(embs)
	case EdgeDisjoint:
		return edgeDisjoint(p, embs)
	case HarmfulOverlap:
		return harmfulOverlap(p, embs)
	case VertexDisjoint:
		return vertexDisjoint(p, embs)
	default:
		return len(embs)
	}
}

// vertexDisjoint greedily selects embeddings with pairwise-disjoint vertex
// images, scanned in deterministic image-key order.
func vertexDisjoint(p *graph.Graph, embs []pattern.Embedding) int {
	if len(embs) <= 1 {
		return len(embs)
	}
	order := sortedOrder(p, embs)
	used := make(map[graph.V]struct{}, len(embs)*p.N())
	count := 0
	for _, idx := range order {
		e := embs[idx]
		ok := true
		for _, hv := range e {
			if _, clash := used[hv]; clash {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, hv := range e {
			used[hv] = struct{}{}
		}
		count++
	}
	return count
}

// OfPattern computes the support of a Pattern.
func OfPattern(p *pattern.Pattern, m Measure) int { return Of(p.G, p.Emb, m) }

// edgeDisjoint greedily selects embeddings whose host edge sets are
// pairwise disjoint. Embeddings are scanned in a deterministic order
// (sorted by image key) so results are reproducible.
func edgeDisjoint(p *graph.Graph, embs []pattern.Embedding) int {
	if len(embs) <= 1 {
		return len(embs)
	}
	pe := p.Edges()
	order := sortedOrder(p, embs)
	used := make(map[graph.Edge]struct{}, len(embs)*len(pe))
	count := 0
	for _, i := range order {
		e := embs[i]
		ok := true
		for _, pedge := range pe {
			he := graph.NormEdge(e[pedge.U], e[pedge.W])
			if _, clash := used[he]; clash {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, pedge := range pe {
			used[graph.NormEdge(e[pedge.U], e[pedge.W])] = struct{}{}
		}
		count++
	}
	if count < len(embs) {
		// A vertex-disjoint set is edge-disjoint, so its greedy bound is
		// also a valid edge-disjoint lower bound — taking the max keeps
		// the measure hierarchy (VertexDisjoint <= EdgeDisjoint) intact
		// against greedy scan-order artifacts.
		if vd := vertexDisjoint(p, embs); vd > count {
			count = vd
		}
	}
	return count
}

// colorCache memoizes the WL colors of the most recent pattern graph per
// goroutine-free call path. Growth loops evaluate the same pattern graph
// against many candidate embedding subsets; recomputing refinement each
// time dominated profile traces. The cache is keyed by pointer identity —
// pattern graphs are immutable once built.
type colorCache struct {
	mu     sync.Mutex
	g      *graph.Graph
	colors []uint64
}

var lastColors colorCache

func colorsOf(p *graph.Graph) []uint64 {
	lastColors.mu.Lock()
	defer lastColors.mu.Unlock()
	if lastColors.g == p {
		return lastColors.colors
	}
	c := canon.VertexColors(p)
	lastColors.g = p
	lastColors.colors = c
	return c
}

// harmfulOverlap greedily selects embeddings such that no selected pair
// harmfully overlaps. Overlap of host vertex hv between embeddings e1
// (at pattern position i) and e2 (at position j) is harmful when pattern
// vertices i and j are equivalent — approximated by equal WL colors of the
// pattern graph, which subsumes every automorphism orbit.
func harmfulOverlap(p *graph.Graph, embs []pattern.Embedding) int {
	if len(embs) <= 1 {
		return len(embs)
	}
	colors := colorsOf(p)
	order := sortedOrder(p, embs)
	// For selected embeddings, remember which (host vertex, color) slots
	// are occupied; a new embedding conflicts if it wants an occupied slot.
	type slot struct {
		hv    graph.V
		color uint64
	}
	used := make(map[slot]struct{}, len(embs)*p.N())
	count := 0
	for _, idx := range order {
		e := embs[idx]
		ok := true
		for pv, hv := range e {
			if _, clash := used[slot{hv, colors[pv]}]; clash {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for pv, hv := range e {
			used[slot{hv, colors[pv]}] = struct{}{}
		}
		count++
	}
	if count < len(embs) {
		// A vertex-disjoint set has no harmful overlaps, so its greedy
		// bound is also a valid harmful-overlap lower bound — the max
		// keeps VertexDisjoint <= HarmfulOverlap against greedy
		// scan-order artifacts.
		if vd := vertexDisjoint(p, embs); vd > count {
			count = vd
		}
	}
	return count
}

// sortedOrder returns embedding indices ordered by image key, giving the
// greedy MIS a deterministic scan order.
func sortedOrder(p *graph.Graph, embs []pattern.Embedding) []int {
	keys := make([]string, len(embs))
	for i, e := range embs {
		keys[i] = e.ImageKey(p)
	}
	order := make([]int, len(embs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// TransactionSupport counts the number of distinct transaction graphs an
// embedding list touches, given a host-vertex → transaction-id assignment
// (see internal/txdb). This is the graph-transaction support |P_sup|.
func TransactionSupport(embs []pattern.Embedding, txOf []int) int {
	seen := make(map[int]struct{})
	for _, e := range embs {
		if len(e) == 0 {
			continue
		}
		seen[txOf[e[0]]] = struct{}{}
	}
	return len(seen)
}
