package support

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

func benchEmbeddings(n int, hostRange int, seed int64) (*graph.Graph, []pattern.Embedding) {
	pg := graph.FromEdges([]graph.Label{0, 0, 1},
		[]graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}})
	rng := rand.New(rand.NewSource(seed))
	var embs []pattern.Embedding
	for i := 0; i < n; i++ {
		p := rng.Perm(hostRange)[:3]
		embs = append(embs, pattern.Embedding{graph.V(p[0]), graph.V(p[1]), graph.V(p[2])})
	}
	return pg, embs
}

func BenchmarkEdgeDisjoint(b *testing.B) {
	pg, embs := benchEmbeddings(500, 300, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Of(pg, embs, EdgeDisjoint)
	}
}

func BenchmarkHarmfulOverlap(b *testing.B) {
	pg, embs := benchEmbeddings(500, 300, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Of(pg, embs, HarmfulOverlap)
	}
}

func BenchmarkVertexDisjoint(b *testing.B) {
	pg, embs := benchEmbeddings(500, 300, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Of(pg, embs, VertexDisjoint)
	}
}
