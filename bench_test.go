package repro_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §4 for the index). Each benchmark
// regenerates its artifact through the same driver `spiderbench` uses, at
// reduced (Quick) scale so `go test -bench=.` completes in minutes; run
// `go run ./cmd/spiderbench -all` for the full-scale tables.
//
// The benchmark *output* is the interesting part: the time per op is the
// end-to-end cost of regenerating the artifact; the rendered rows land in
// the -v log.

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spider"
	"repro/internal/spidermine"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	params := experiments.Params{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, params)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			rep.Render(testWriter{b})
		} else {
			rep.Render(io.Discard)
		}
	}
}

type testWriter struct{ b *testing.B }

func (w testWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkTable1DataGen regenerates the five Table 1 datasets.
func BenchmarkTable1DataGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for gid := 1; gid <= 5; gid++ {
			g, _ := gen.Synthetic(gen.GIDConfig(gid, 1))
			if g.N() == 0 {
				b.Fatal("empty graph")
			}
		}
	}
}

// BenchmarkFig4to8Distributions regenerates the Figures 4–8 pattern-size
// histograms (GID 1 as representative; the full sweep runs via
// spiderbench).
func BenchmarkFig4to8Distributions(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig9RuntimeVsMoss regenerates Figure 9 (SpiderMine vs MoSS).
func BenchmarkFig9RuntimeVsMoss(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10RuntimeVsSubdue regenerates Figure 10.
func BenchmarkFig10RuntimeVsSubdue(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Scalability regenerates Figure 11 (and 12).
func BenchmarkFig11Scalability(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12LargestPattern is Figure 12 (same sweep as Figure 11).
func BenchmarkFig12LargestPattern(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13PowerLaw regenerates Figure 13 (and 17).
func BenchmarkFig13PowerLaw(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14TxFewerSmall regenerates Figure 14.
func BenchmarkFig14TxFewerSmall(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15TxMoreSmall regenerates Figure 15.
func BenchmarkFig15TxMoreSmall(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16RuntimeTable regenerates the Figure 16 runtime table.
func BenchmarkFig16RuntimeTable(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17ScaleFreeSpiders is Figure 17 (same sweep as Figure 13).
func BenchmarkFig17ScaleFreeSpiders(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18Robustness regenerates Figure 18 / Table 3 (GID 6–10).
func BenchmarkFig18Robustness(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19VariedDmax regenerates Figure 19.
func BenchmarkFig19VariedDmax(b *testing.B) { benchExperiment(b, "fig19") }

// BenchmarkFig20DBLP regenerates Figure 20 on the DBLP-like network.
func BenchmarkFig20DBLP(b *testing.B) { benchExperiment(b, "fig20") }

// BenchmarkFig21Jeti regenerates Figure 21 on the Jeti-like call graph.
func BenchmarkFig21Jeti(b *testing.B) { benchExperiment(b, "fig21") }

// BenchmarkAppC3VariedR regenerates the Appendix C(3) varied-r study.
func BenchmarkAppC3VariedR(b *testing.B) { benchExperiment(b, "appC3") }

// BenchmarkAppC4VariedEpsilon regenerates the Appendix C(4) varied-ε study.
func BenchmarkAppC4VariedEpsilon(b *testing.B) { benchExperiment(b, "appC4") }

// BenchmarkAblations times the DESIGN.md ablation suite.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// --- micro-benchmarks of the core stages, for profiling ---

// BenchmarkStageISpiderMining isolates Stage I on the GID-1 dataset.
func BenchmarkStageISpiderMining(b *testing.B) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stars := spider.MineStars(g, spider.Options{MinSupport: 2})
		if len(stars) == 0 {
			b.Fatal("no spiders")
		}
	}
}

// BenchmarkFullPipelineGID1 times one complete SpiderMine run on GID 1.
func BenchmarkFullPipelineGID1(b *testing.B) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spidermine.Mine(g, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: int64(i)})
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// BenchmarkFullPipelineParallel times the complete SpiderMine run on GID 1
// at fixed worker counts and reports each sub-benchmark's wall-clock
// speedup over the sequential engine (measured in-process as the
// baseline). The parallel engine is deterministic, so every sub-benchmark
// computes the identical result; only the sharding changes. On a
// single-core host the metric hovers around 1.0 — the interesting read is
// on multicore hardware, where Stages I–III all shard.
func BenchmarkFullPipelineParallel(b *testing.B) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	cfg := spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 1}
	const baseRuns = 3
	t0 := time.Now()
	for i := 0; i < baseRuns; i++ {
		if res := spidermine.Mine(g, cfg); len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
	seqPerOp := time.Since(t0) / baseRuns
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfgW := cfg
			cfgW.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := spidermine.Mine(g, cfgW); len(res.Patterns) == 0 {
					b.Fatal("no patterns")
				}
			}
			b.ReportMetric(float64(seqPerOp)/(float64(b.Elapsed())/float64(b.N)), "speedup")
		})
	}
}

// BenchmarkFullPipelineMapped is BenchmarkFullPipelineGID1 with the
// host opened from an mmap'd SPC1 image instead of RAM — the
// mapped-vs-RAM delta of the full pipeline (README §Out-of-core). The
// open happens once outside the loop, mirroring the RAM benchmark's
// one-time Build.
func BenchmarkFullPipelineMapped(b *testing.B) {
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	path := filepath.Join(b.TempDir(), "gid1.spc1")
	if err := graph.WriteImageFile(g, path); err != nil {
		b.Fatal(err)
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	mg := m.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spidermine.Mine(mg, spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: int64(i)})
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// BenchmarkStageIOutOfCoreBA1M runs Stage I over a million-edge
// scale-free host opened by mmap — the out-of-core data point for
// BENCH_PR10.json (run with -benchtime=1x; generation dominates setup).
func BenchmarkStageIOutOfCoreBA1M(b *testing.B) {
	g := gen.BarabasiAlbert(126000, 8, 50, rand.New(rand.NewSource(1)))
	path := filepath.Join(b.TempDir(), "ba1m.spc1")
	if err := graph.WriteImageFile(g, path); err != nil {
		b.Fatal(err)
	}
	g = nil
	m, err := graph.OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	mg := m.Graph()
	if mg.M() < 1_000_000 {
		b.Fatalf("host has %d edges, want >= 1e6", mg.M())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stars := spider.MineStars(mg, spider.Options{MinSupport: 2, MaxLeaves: 2, MaxSpiders: 20000})
		if len(stars) == 0 {
			b.Fatal("no stars")
		}
	}
}

// BenchmarkComputeM times the Lemma 2 seed-size computation.
func BenchmarkComputeM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if m := spider.ComputeM(10000, 1000, 10, 0.1); m < 2 {
			b.Fatal("bad M")
		}
	}
}

// BenchmarkScaleFree10k times a full run on a 10k-vertex BA graph — the
// Figure 11-style scalability point kept cheap enough for -bench=.
func BenchmarkScaleFree10k(b *testing.B) {
	n, el := experiments.SpiderCountOnly(10000, 1)
	b.Logf("10k BA graph: %d spiders mined in %v", n, el)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := experiments.SpiderCountOnly(10000, int64(i))
		if n == 0 {
			b.Fatal("no spiders")
		}
	}
	_ = time.Now
}
