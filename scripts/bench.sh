#!/usr/bin/env bash
# bench.sh — record the benchmark trajectory for the hot paths the
# performance PRs guard: Stage I / full-pipeline mining, canonical-code
# computation, and embedding enumeration. Runs each suite with fixed
# flags and writes a JSON map
#
#   { "<benchmark name>": {"ns_per_op": <float>, "allocs_per_op": <int>}, ... }
#
# to the output file (default BENCH_PR5.json in the repo root; pass a
# path to override). Names are stripped of the -GOMAXPROCS suffix so the
# keys stay stable across machines. Committed baselines let a later PR
# diff its numbers against the measured state of this one.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Pipeline-level benchmarks (root package; Quick-scale experiment driver).
go test -run=NONE -bench='StageI|FullPipelineGID1$' -benchtime=10x -benchmem -count=1 . | tee -a "$tmp"
# Substrate benchmarks: canonical codes (existing corpus + the symmetric
# shapes the pre-v2 search blew up on) and the matcher.
go test -run=NONE -bench='CanonicalCode|EnumerateEmbeddings' -benchtime=200x -benchmem -count=1 ./internal/canon/ | tee -a "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
BEGIN { printf "{\n" }
END   { printf "\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
