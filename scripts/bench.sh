#!/usr/bin/env bash
# bench.sh — record the benchmark trajectory for the hot paths the
# performance PRs guard: Stage I / full-pipeline mining (sequential,
# per-worker-count parallel, and mmap'd out-of-core), canonical-code
# computation, embedding enumeration, and the SPC1 image open/write
# paths against the SPG1 decode baseline. Runs each suite with fixed
# flags and writes a JSON map
#
#   { "num_cpu": <int>,
#     "<benchmark name>": {"ns_per_op": <float>, "allocs_per_op": <int>,
#                          "speedup": <float>}, ... }
#
# to the output file (default BENCH_PR10.json in the repo root; pass a
# path to override). Names are stripped of the -GOMAXPROCS suffix so the
# keys stay stable across machines; "speedup" appears only on the
# FullPipelineParallel sub-benchmarks (wall-clock vs. an in-process
# sequential baseline) and num_cpu records the host's core count — on a
# single-core box the speedups hover around 1.0 by construction.
# Committed baselines let a later PR diff its numbers against the
# measured state of this one.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Pipeline-level benchmarks (root package; Quick-scale experiment driver),
# including the parallel engine at workers=1/2/4/8.
go test -run=NONE -bench='StageISpiderMining|FullPipelineGID1$|FullPipelineParallel|FullPipelineMapped' -benchtime=10x -benchmem -count=1 . | tee -a "$tmp"
# Out-of-core Stage I over a million-edge mmap'd BA host: one iteration —
# the graph generation dominates setup, the measured loop is the mine.
go test -run=NONE -bench='StageIOutOfCoreBA1M' -benchtime=1x -benchmem -count=1 -timeout=20m . | tee -a "$tmp"
# SPC1 image open/write vs the SPG1 decode baseline (50k-vertex host):
# mapped-open ns is the number the zero-decode claim rides on.
go test -run=NONE -bench='OpenMapped|WriteImage|DecodeBinary' -benchtime=20x -benchmem -count=1 ./internal/graph/ | tee -a "$tmp"
# Substrate benchmarks: canonical codes (existing corpus + the symmetric
# shapes the pre-v2 search blew up on), the matcher, and the warm Stage I
# engine (steady-state table reuse; must stay at 0 allocs/op).
go test -run=NONE -bench='CanonicalCode|EnumerateEmbeddings' -benchtime=200x -benchmem -count=1 ./internal/canon/ | tee -a "$tmp"
go test -run=NONE -bench='StarMinerWarm' -benchtime=100x -benchmem -count=1 ./internal/spider/ | tee -a "$tmp"

awk -v ncpu="$(getconf _NPROCESSORS_ONLN)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""; speedup = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
        if ($i == "speedup") speedup = $(i-1)
    }
    if (ns == "") next
    printf ",\n  \"%s\": {\"ns_per_op\": %s", name, ns
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (speedup != "") printf ", \"speedup\": %s", speedup
    printf "}"
}
BEGIN { printf "{\n  \"num_cpu\": %d", ncpu }
END   { printf "\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
