// Command spiderload is the mixed-traffic load generator for
// spiderserved: it drives uploads, fresh and repeat job submissions,
// cancellations, and event-stream pollers against a target server at a
// configurable concurrency for a configurable duration, and reports
// client-observed p50/p95/p99 latency per endpoint class plus the cache
// hit rate — the SLO baseline scaling PRs must not regress (committed
// as SLO_PR7.json).
//
// Usage:
//
//	spiderload -spawn -c 8 -d 10s -seed 1 -out SLO_PR7.json
//	spiderload -addr http://localhost:8471 -c 32 -d 60s
//
// With -spawn (the default when -addr is empty) an in-process server is
// started on a loopback listener, so the measurement includes the full
// HTTP stack but no network hop — the reproducible configuration for a
// committed baseline. Latencies are recorded into internal/obs
// fixed-bucket histograms, the same estimator /metrics uses, so client
// and server quantiles are comparable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/mine"
)

// Endpoint classes. Submit latency is the POST round-trip only (the
// job runs asynchronously); the events class times the full NDJSON
// stream from subscribe to the terminal status record.
const (
	classUpload       = "upload"
	classSubmitFresh  = "submit_fresh"
	classSubmitRepeat = "submit_repeat"
	classJobGet       = "job_get"
	classCancel       = "cancel"
	classEvents       = "events_stream"
	classStats        = "stats"
)

var classes = []string{
	classUpload, classSubmitFresh, classSubmitRepeat,
	classJobGet, classCancel, classEvents, classStats,
}

// loadStats aggregates one endpoint class: a latency histogram plus
// outcome tallies. Rejections (503 backpressure) are split from errors —
// shedding load is the server working as designed, a 5xx of any other
// kind is not.
type loadStats struct {
	lat      *obs.Histogram
	count    atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
}

type harness struct {
	base    string
	client  *http.Client
	stats   map[string]*loadStats
	graphs  []string // uploaded graph IDs
	bodies  [][]byte // LG bodies for re-upload traffic
	freshID atomic.Int64

	submitsFresh   atomic.Uint64
	submitsRepeat  atomic.Uint64
	cachedObserved atomic.Uint64
}

func newHarness(base string) *harness {
	h := &harness{
		base:   base,
		client: &http.Client{Timeout: 120 * time.Second},
		stats:  make(map[string]*loadStats, len(classes)),
	}
	reg := obs.NewRegistry()
	for _, c := range classes {
		h.stats[c] = &loadStats{lat: reg.Histogram(c, "", obs.SecondsScale, obs.DurationBuckets())}
	}
	return h
}

// record logs one request outcome for a class.
func (h *harness) record(class string, t0 time.Time, status int, err error) {
	s := h.stats[class]
	s.lat.ObserveSince(t0)
	s.count.Add(1)
	switch {
	case err != nil || status >= 500 && status != http.StatusServiceUnavailable:
		s.errors.Add(1)
	case status == http.StatusServiceUnavailable:
		s.rejected.Add(1)
	}
}

// hostLG renders one synthetic §5.1 host in LG upload form. Small
// enough that a spidermine run completes in milliseconds — the harness
// measures the serving stack, not the miner.
func hostLG(seed int64) []byte {
	g, _ := mine.Synthetic(mine.SyntheticConfig{
		N: 300, AvgDeg: 4, NumLabels: 12,
		Large: mine.InjectSpec{NV: 10, Count: 2, Support: 6},
		Small: mine.InjectSpec{NV: 4, Count: 6, Support: 6},
		Seed:  seed,
	})
	var buf bytes.Buffer
	g.WriteLG(&buf, fmt.Sprintf("load-host-%d", seed))
	return buf.Bytes()
}

type storedGraph struct {
	ID string `json:"id"`
}

type jobSnapshot struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

func (h *harness) upload(body []byte) (string, error) {
	t0 := time.Now()
	resp, err := h.client.Post(h.base+"/graphs", "text/plain", bytes.NewReader(body))
	if err != nil {
		h.record(classUpload, t0, 0, err)
		return "", err
	}
	defer resp.Body.Close()
	var sg storedGraph
	derr := json.NewDecoder(resp.Body).Decode(&sg)
	h.record(classUpload, t0, resp.StatusCode, derr)
	if derr != nil {
		return "", derr
	}
	return sg.ID, nil
}

// submit posts one job. Fresh submissions get a unique options seed
// (a distinct cache key → a real mining run); repeats share one key per
// graph (a cache hit once warmed).
func (h *harness) submit(graphID string, fresh bool) (jobSnapshot, error) {
	class := classSubmitRepeat
	seed := int64(1)
	if fresh {
		class = classSubmitFresh
		seed = 1000 + h.freshID.Add(1)
	}
	body := fmt.Sprintf(`{"graph":%q,"miner":"spidermine","options":{"min_support":3,"k":5,"seed":%d,"workers":1}}`, graphID, seed)
	t0 := time.Now()
	resp, err := h.client.Post(h.base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		h.record(class, t0, 0, err)
		return jobSnapshot{}, err
	}
	defer resp.Body.Close()
	var snap jobSnapshot
	derr := json.NewDecoder(resp.Body).Decode(&snap)
	h.record(class, t0, resp.StatusCode, derr)
	if resp.StatusCode >= 400 {
		return jobSnapshot{}, fmt.Errorf("submit: %d", resp.StatusCode)
	}
	if fresh {
		h.submitsFresh.Add(1)
	} else {
		h.submitsRepeat.Add(1)
		if snap.Cached {
			h.cachedObserved.Add(1)
		}
	}
	return snap, derr
}

// pollTerminal polls GET /jobs/{id} until terminal, recording each poll
// in the job_get class.
func (h *harness) pollTerminal(id string) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		resp, err := h.client.Get(h.base + "/jobs/" + id)
		if err != nil {
			h.record(classJobGet, t0, 0, err)
			return
		}
		var snap jobSnapshot
		derr := json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		h.record(classJobGet, t0, resp.StatusCode, derr)
		switch snap.Status {
		case "done", "failed", "canceled":
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *harness) cancel(id string) {
	t0 := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, h.base+"/jobs/"+id, nil)
	resp, err := h.client.Do(req)
	if err != nil {
		h.record(classCancel, t0, 0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h.record(classCancel, t0, resp.StatusCode, err)
}

// streamEvents subscribes to the NDJSON stream and reads it to the
// terminal status record; the recorded latency is the full stream
// lifetime as a client observes it.
func (h *harness) streamEvents(id string) {
	t0 := time.Now()
	resp, err := h.client.Get(h.base + "/jobs/" + id + "/events")
	if err != nil {
		h.record(classEvents, t0, 0, err)
		return
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h.record(classEvents, t0, resp.StatusCode, cerr)
}

func (h *harness) statsProbe() {
	t0 := time.Now()
	resp, err := h.client.Get(h.base + "/stats")
	if err != nil {
		h.record(classStats, t0, 0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h.record(classStats, t0, resp.StatusCode, err)
}

// worker runs the weighted traffic mix until the deadline.
func (h *harness) worker(rng *rand.Rand, deadline time.Time) {
	for time.Now().Before(deadline) {
		g := h.graphs[rng.Intn(len(h.graphs))]
		switch p := rng.Intn(100); {
		case p < 5: // re-upload (content-dedupe path)
			h.upload(h.bodies[rng.Intn(len(h.bodies))])
		case p < 30: // fresh submit, watch to completion
			if snap, err := h.submit(g, true); err == nil {
				h.pollTerminal(snap.ID)
			}
		case p < 65: // repeat submit (cache hit once warm)
			if snap, err := h.submit(g, false); err == nil && !snap.Cached {
				h.pollTerminal(snap.ID)
			}
		case p < 75: // submit then cancel
			if snap, err := h.submit(g, true); err == nil {
				h.cancel(snap.ID)
				h.pollTerminal(snap.ID)
			}
		case p < 95: // event-stream subscriber
			if snap, err := h.submit(g, false); err == nil {
				h.streamEvents(snap.ID)
			}
		default: // operator probing /stats
			h.statsProbe()
		}
	}
}

// endpointReport is the JSON readout for one class.
type endpointReport struct {
	Count    uint64  `json:"count"`
	Errors   uint64  `json:"errors"`
	Rejected uint64  `json:"rejected,omitempty"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

type report struct {
	Generated   string                    `json:"generated"`
	Target      string                    `json:"target"`
	Spawned     bool                      `json:"spawned"`
	Concurrency int                       `json:"concurrency"`
	DurationS   float64                   `json:"duration_s"`
	Seed        int64                     `json:"seed"`
	Endpoints   map[string]endpointReport `json:"endpoints"`
	Submits     struct {
		Fresh             uint64  `json:"fresh"`
		Repeat            uint64  `json:"repeat"`
		CachedObserved    uint64  `json:"cached_observed"`
		ClientCachedRatio float64 `json:"client_cached_ratio"`
	} `json:"submits"`
	ServerCache serve.CacheStats `json:"server_cache"`
	HitRate     float64          `json:"server_cache_hit_rate"`
}

func quantMS(h *obs.Histogram, q float64) float64 {
	return h.Quantile(q) / float64(time.Millisecond)
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "", "target base URL (e.g. http://localhost:8471); empty spawns an in-process server")
		spawn    = flag.Bool("spawn", false, "spawn an in-process server on a loopback listener (implied when -addr is empty)")
		c        = flag.Int("c", 8, "concurrent load workers")
		d        = flag.Duration("d", 10*time.Second, "load duration")
		seed     = flag.Int64("seed", 1, "traffic-mix RNG seed")
		out      = flag.String("out", "-", "report path ('-' = stdout)")
		runners  = flag.Int("runners", 4, "spawned server: mining runners")
		queueCap = flag.Int("queue", 256, "spawned server: queue capacity")
		cacheCap = flag.Int("cache", 512, "spawned server: result cache entries")
	)
	flag.Parse()

	target := *addr
	spawned := *spawn || target == ""
	if spawned {
		srv := serve.New(serve.Config{Runners: *runners, QueueCap: *queueCap, CacheCap: *cacheCap, MaxRetries: 2})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderload: %v\n", err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			httpSrv.Close()
		}()
		target = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "spiderload: spawned server at %s (runners=%d queue=%d cache=%d)\n",
			target, *runners, *queueCap, *cacheCap)
	}

	h := newHarness(target)
	// Seed a few distinct hosts; the bodies are kept for re-upload
	// (dedupe) traffic during the run.
	for i := int64(0); i < 3; i++ {
		body := hostLG(100 + i)
		id, err := h.upload(body)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderload: seeding upload: %v\n", err)
			return 1
		}
		h.bodies = append(h.bodies, body)
		h.graphs = append(h.graphs, id)
	}

	fmt.Fprintf(os.Stderr, "spiderload: %d workers for %v against %s (seed %d)\n", *c, *d, target, *seed)
	deadline := time.Now().Add(*d)
	var wg sync.WaitGroup
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.worker(rand.New(rand.NewSource(*seed+int64(i))), deadline)
		}(i)
	}
	wg.Wait()

	rep := report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		Spawned:     spawned,
		Concurrency: *c,
		DurationS:   d.Seconds(),
		Seed:        *seed,
		Endpoints:   make(map[string]endpointReport, len(classes)),
	}
	for _, cl := range classes {
		s := h.stats[cl]
		rep.Endpoints[cl] = endpointReport{
			Count:    s.count.Load(),
			Errors:   s.errors.Load(),
			Rejected: s.rejected.Load(),
			P50ms:    quantMS(s.lat, 0.50),
			P95ms:    quantMS(s.lat, 0.95),
			P99ms:    quantMS(s.lat, 0.99),
		}
	}
	rep.Submits.Fresh = h.submitsFresh.Load()
	rep.Submits.Repeat = h.submitsRepeat.Load()
	rep.Submits.CachedObserved = h.cachedObserved.Load()
	if rep.Submits.Repeat > 0 {
		rep.Submits.ClientCachedRatio = float64(rep.Submits.CachedObserved) / float64(rep.Submits.Repeat)
	}
	// The server's own cache accounting (hits/misses/degraded), for the
	// authoritative hit rate beside the client-observed ratio.
	if resp, err := h.client.Get(target + "/stats"); err == nil {
		var stats struct {
			Cache serve.CacheStats `json:"cache"`
		}
		json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		rep.ServerCache = stats.Cache
		if n := stats.Cache.Hits + stats.Cache.Misses; n > 0 {
			rep.HitRate = float64(stats.Cache.Hits) / float64(n)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spiderload: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "spiderload: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "spiderload: wrote %s\n", *out)
	return 0
}
