// Command gengraph generates the paper's synthetic datasets in LG format.
//
// Usage:
//
//	gengraph -kind gid -gid 1 > gid1.lg        # Table 1 datasets
//	gengraph -kind gidlarge -gid 7 > gid7.lg   # Table 3 datasets
//	gengraph -kind er -n 1000 -deg 3 -labels 100 > er.lg
//	gengraph -kind ba -n 1000 -labels 100 > ba.lg
//	gengraph -kind dblp > dblp.lg
//	gengraph -kind callgraph > jeti.lg
//
// Binary output for out-of-core mining (see README §Out-of-core): an
// SPC1 image written with -format spc1 opens by mmap in O(1) —
// spidermine -mmap and spiderbench -host consume it without decoding:
//
//	gengraph -kind ba -n 125000 -attach 8 -format spc1 -o ba1m.spc1
//	spidermine -mmap -in ba1m.spc1 -k 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "er", "er | ba | gid | gidlarge | dblp | callgraph")
		n      = flag.Int("n", 1000, "vertex count (er/ba)")
		deg    = flag.Float64("deg", 3, "average degree (er)")
		attach = flag.Int("attach", 2, "attachment edges per vertex (ba)")
		labels = flag.Int("labels", 100, "label count (er/ba)")
		gid    = flag.Int("gid", 1, "GID for -kind gid (1-5) / gidlarge (6-10)")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "lg", "output format: lg (text) | spc1 (mmap-able CSR image) | spg1 (compact binary)")
		out    = flag.String("o", "", "output file (default stdout; required for -format spc1 written via a temp+rename)")
	)
	flag.Parse()

	var g *graph.Graph
	name := *kind
	switch *kind {
	case "er":
		g = gen.ErdosRenyi(*n, *deg, *labels, rand.New(rand.NewSource(*seed)))
	case "ba":
		g = gen.BarabasiAlbert(*n, *attach, *labels, rand.New(rand.NewSource(*seed)))
	case "gid":
		g, _ = gen.Synthetic(gen.GIDConfig(*gid, *seed))
		name = fmt.Sprintf("gid%d", *gid)
	case "gidlarge":
		g, _ = gen.Synthetic(gen.GIDConfigLarge(*gid, *seed))
		name = fmt.Sprintf("gid%d", *gid)
	case "dblp":
		g, _ = gen.DBLPLike(gen.DBLPConfig{Seed: *seed})
	case "callgraph":
		g, _ = gen.CallGraphLike(gen.CallGraphConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	if err := emit(g, name, *format, *out); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

// emit writes g in the chosen format. SPC1 goes through the atomic
// temp+fsync+rename writer when -o is set (an image is only useful as a
// seekable file); the streaming formats default to stdout.
func emit(g *graph.Graph, name, format, out string) error {
	if format == "spc1" && out != "" {
		return graph.WriteImageFile(g, out)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "lg":
		return g.WriteLG(w, name)
	case "spg1":
		bw := bufio.NewWriter(w)
		if _, err := bw.Write(g.AppendBinary(nil)); err != nil {
			return err
		}
		return bw.Flush()
	case "spc1":
		if _, err := g.WriteImage(w); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown -format %q (want lg, spc1, or spg1)", format)
	}
}
