// Command gengraph generates the paper's synthetic datasets in LG format.
//
// Usage:
//
//	gengraph -kind gid -gid 1 > gid1.lg        # Table 1 datasets
//	gengraph -kind gidlarge -gid 7 > gid7.lg   # Table 3 datasets
//	gengraph -kind er -n 1000 -deg 3 -labels 100 > er.lg
//	gengraph -kind ba -n 1000 -labels 100 > ba.lg
//	gengraph -kind dblp > dblp.lg
//	gengraph -kind callgraph > jeti.lg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "er", "er | ba | gid | gidlarge | dblp | callgraph")
		n      = flag.Int("n", 1000, "vertex count (er/ba)")
		deg    = flag.Float64("deg", 3, "average degree (er)")
		attach = flag.Int("attach", 2, "attachment edges per vertex (ba)")
		labels = flag.Int("labels", 100, "label count (er/ba)")
		gid    = flag.Int("gid", 1, "GID for -kind gid (1-5) / gidlarge (6-10)")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var g *graph.Graph
	name := *kind
	switch *kind {
	case "er":
		g = gen.ErdosRenyi(*n, *deg, *labels, rand.New(rand.NewSource(*seed)))
	case "ba":
		g = gen.BarabasiAlbert(*n, *attach, *labels, rand.New(rand.NewSource(*seed)))
	case "gid":
		g, _ = gen.Synthetic(gen.GIDConfig(*gid, *seed))
		name = fmt.Sprintf("gid%d", *gid)
	case "gidlarge":
		g, _ = gen.Synthetic(gen.GIDConfigLarge(*gid, *seed))
		name = fmt.Sprintf("gid%d", *gid)
	case "dblp":
		g, _ = gen.DBLPLike(gen.DBLPConfig{Seed: *seed})
	case "callgraph":
		g, _ = gen.CallGraphLike(gen.CallGraphConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	if err := g.WriteLG(os.Stdout, name); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
