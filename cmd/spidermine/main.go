// Command spidermine mines frequent patterns of a graph in LG format
// (see ReadLG for the format) with any registered miner — SpiderMine by
// default, or any baseline via -miner.
//
// Usage:
//
//	spidermine -in graph.lg -k 10 -support 2 -dmax 6 -epsilon 0.1
//	spidermine -in graph.lg -miner subdue -support 3
//	spidermine -in graph.lg -timeout 30s        # exit 1 if exceeded
//	spidermine -mmap -in host.spc1 -k 10        # mmap'd SPC1 image, no decode
//	spidermine -list-miners
//
// Each returned pattern is printed as an LG block plus a summary line; add
// -stats for mining statistics. A run stopped by the caller's clock — the
// -timeout deadline — exits non-zero *after* printing the deterministic
// partial results committed before the stop; output is flushed before the
// process exits (main returns the exit code to a single os.Exit at the
// top, so no deferred writer is ever skipped).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/mine"
)

func main() {
	// The only os.Exit in the program: run returns the exit code with all
	// of its defers — output flushes, file closes — already executed, so
	// committed partial results can never be lost to an early exit.
	os.Exit(run())
}

func run() int {
	var (
		in         = flag.String("in", "", "input graph file in LG format (required; - for stdin)")
		useMmap    = flag.Bool("mmap", false, "treat -in as an SPC1 graph image (gengraph -format spc1) and mmap it instead of decoding: O(1) open, mining reads from the page cache, hosts larger than RAM work")
		minerName  = flag.String("miner", "spidermine", "mining engine (see -list-miners)")
		listMiners = flag.Bool("list-miners", false, "list registered miners and exit")
		timeout    = flag.Duration("timeout", 0, "abort mining after this long and exit non-zero (0 = no limit)")
		k          = flag.Int("k", 10, "number of patterns K")
		sup        = flag.Int("support", 2, "support threshold σ")
		dmax       = flag.Int("dmax", 6, "pattern diameter bound Dmax")
		epsilon    = flag.Float64("epsilon", 0.1, "error bound ε (success probability 1-ε)")
		vmin       = flag.Int("vmin", 0, "minimum large-pattern vertex count Vmin (default |V|/10)")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "mining parallelism: 0/1 sequential, N goroutines, -1 all CPUs (mined patterns are identical across settings; -stats work counters may differ)")
		maxLeaves  = flag.Int("max-leaves", 0, "cap star-spider leaves in Stage I (0 = unlimited; bound this on scale-free graphs)")
		maxSpiders = flag.Int("max-spiders", 0, "cap Stage I spider enumeration (0 = unlimited; bound this on scale-free graphs)")
		maxPat     = flag.Int("max-patterns", 0, "cap reported patterns (0 = unlimited)")
		measure    = flag.String("measure", "all", "support measure: all | disjoint | harmful")
		stats      = flag.Bool("stats", false, "print mining statistics")
		progress   = flag.Bool("progress", false, "stream per-stage progress to stderr")
		asDOT      = flag.Bool("dot", false, "emit patterns as Graphviz DOT instead of LG")
		asJSON     = flag.Bool("json", false, "emit patterns as a JSON array")
	)
	flag.Parse()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *listMiners {
		for _, name := range mine.Names() {
			m, _ := mine.Get(name)
			fmt.Fprintf(out, "%-12s %s\n", name, m.Describe())
		}
		return 0
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spidermine: -in is required")
		flag.Usage()
		return 2
	}
	var (
		g    *mine.Graph
		name string
		err  error
	)
	switch {
	case *useMmap:
		if *in == "-" {
			return fail(errors.New("-mmap needs a seekable file, not stdin"))
		}
		m, merr := mine.OpenMapped(*in)
		if merr != nil {
			return fail(merr)
		}
		// The mapping must outlive mining and printing; run returns
		// through a single path, so the defer covers every exit.
		defer m.Close()
		g, name = m.Graph(), *in
	case *in == "-":
		g, name, err = mine.ReadLG(os.Stdin)
	default:
		f, ferr := os.Open(*in)
		if ferr != nil {
			return fail(ferr)
		}
		g, name, err = mine.ReadLG(f)
		f.Close()
	}
	if err != nil {
		return fail(err)
	}
	if name == "" {
		name = *in
	}
	fmt.Fprintf(out, "mining %s with %s: %v\n", name, *minerName, g)

	engine, err := mine.Get(*minerName)
	if err != nil {
		return fail(err)
	}
	opts := mine.Options{
		MinSupport:       *sup,
		K:                *k,
		Dmax:             *dmax,
		Epsilon:          *epsilon,
		Vmin:             *vmin,
		Seed:             *seed,
		Measure:          mine.Measure(*measure),
		Workers:          *workers,
		MaxLeavesPerStar: *maxLeaves,
		MaxSpiders:       *maxSpiders,
		MaxPatterns:      *maxPat,
	}
	if *progress {
		opts.OnProgress = func(ev mine.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "[%8.3fs] %s/%s restart=%d iter=%d patterns=%d merges=%d\n",
				ev.Elapsed.Seconds(), ev.Miner, ev.Stage, ev.Restart, ev.Iteration, ev.Patterns, ev.Merges)
		}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()

	res, err := engine.Mine(ctx, mine.SingleGraph(g), opts)
	// A fired caller ctx — our -timeout deadline, or any cancellation —
	// still carries deterministic committed partials: print them, then
	// exit non-zero.
	ctxStopped := err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
	if err != nil && !ctxStopped {
		return fail(err)
	}
	if perr := printPatterns(out, res, *asJSON, *asDOT); perr != nil {
		return fail(perr)
	}
	if *stats {
		printStats(out, res)
	}
	if ferr := out.Flush(); ferr != nil {
		return fail(ferr)
	}
	if ctxStopped {
		fmt.Fprintf(os.Stderr, "spidermine: %v (timeout %v); printed the partial results committed before the stop\n", err, *timeout)
		return 1
	}
	return 0
}

func printPatterns(out io.Writer, res *mine.Result, asJSON, asDOT bool) error {
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Patterns)
	}
	for i, p := range res.Patterns {
		fmt.Fprintf(out, "\n# pattern %d: |V|=%d |E|=%d diam=%d embeddings=%d\n",
			i+1, p.NV(), p.Size(), p.G.Diameter(), len(p.Emb))
		var err error
		if asDOT {
			err = p.G.WriteDOT(out, fmt.Sprintf("pattern-%d", i+1))
		} else {
			err = p.G.WriteLG(out, fmt.Sprintf("pattern-%d", i+1))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func printStats(out io.Writer, res *mine.Result) {
	s := res.Stats
	fmt.Fprintf(out, "\nstats{miner=%s patterns=%d spiders=%d M=%d iters=%d merges=%d isoSkip=%d isoRun=%d elapsed=%v",
		res.Miner, len(res.Patterns), s.Spiders, s.SeedDraws, s.GrowIterations, s.Merges, s.IsoSkipped, s.IsoRun, s.Elapsed.Round(time.Millisecond))
	for _, st := range s.Stages {
		fmt.Fprintf(out, " t[%s]=%v", st.Name, st.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(out, " truncated=%q}\n", string(res.Truncated))
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "spidermine: %v\n", err)
	return 1
}
