// Command spidermine mines frequent patterns of a graph in LG format
// (see ReadLG for the format) with any registered miner — SpiderMine by
// default, or any baseline via -miner.
//
// Usage:
//
//	spidermine -in graph.lg -k 10 -support 2 -dmax 6 -epsilon 0.1
//	spidermine -in graph.lg -miner subdue -support 3
//	spidermine -in graph.lg -timeout 30s        # exit 1 if exceeded
//	spidermine -list-miners
//
// Each returned pattern is printed as an LG block plus a summary line; add
// -stats for mining statistics. A run that exceeds -timeout exits
// non-zero after printing the deterministic partial results mined so far.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/mine"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph file in LG format (required; - for stdin)")
		minerName  = flag.String("miner", "spidermine", "mining engine (see -list-miners)")
		listMiners = flag.Bool("list-miners", false, "list registered miners and exit")
		timeout    = flag.Duration("timeout", 0, "abort mining after this long and exit non-zero (0 = no limit)")
		k          = flag.Int("k", 10, "number of patterns K")
		sup        = flag.Int("support", 2, "support threshold σ")
		dmax       = flag.Int("dmax", 6, "pattern diameter bound Dmax")
		epsilon    = flag.Float64("epsilon", 0.1, "error bound ε (success probability 1-ε)")
		vmin       = flag.Int("vmin", 0, "minimum large-pattern vertex count Vmin (default |V|/10)")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "mining parallelism: 0/1 sequential, N goroutines, -1 all CPUs (mined patterns are identical across settings; -stats work counters may differ)")
		maxLeaves  = flag.Int("max-leaves", 0, "cap star-spider leaves in Stage I (0 = unlimited; bound this on scale-free graphs)")
		maxSpiders = flag.Int("max-spiders", 0, "cap Stage I spider enumeration (0 = unlimited; bound this on scale-free graphs)")
		maxPat     = flag.Int("max-patterns", 0, "cap reported patterns (0 = unlimited)")
		measure    = flag.String("measure", "all", "support measure: all | disjoint | harmful")
		stats      = flag.Bool("stats", false, "print mining statistics")
		progress   = flag.Bool("progress", false, "stream per-stage progress to stderr")
		asDOT      = flag.Bool("dot", false, "emit patterns as Graphviz DOT instead of LG")
		asJSON     = flag.Bool("json", false, "emit patterns as a JSON array")
	)
	flag.Parse()
	if *listMiners {
		for _, name := range mine.Names() {
			m, _ := mine.Get(name)
			fmt.Printf("%-12s %s\n", name, m.Describe())
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spidermine: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	var (
		g    *mine.Graph
		name string
		err  error
	)
	if *in == "-" {
		g, name, err = mine.ReadLG(os.Stdin)
	} else {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		g, name, err = mine.ReadLG(f)
		f.Close()
	}
	if err != nil {
		fatal(err)
	}
	if name == "" {
		name = *in
	}
	fmt.Printf("mining %s with %s: %v\n", name, *minerName, g)

	engine, err := mine.Get(*minerName)
	if err != nil {
		fatal(err)
	}
	opts := mine.Options{
		MinSupport:       *sup,
		K:                *k,
		Dmax:             *dmax,
		Epsilon:          *epsilon,
		Vmin:             *vmin,
		Seed:             *seed,
		Measure:          mine.Measure(*measure),
		Workers:          *workers,
		MaxLeavesPerStar: *maxLeaves,
		MaxSpiders:       *maxSpiders,
		MaxPatterns:      *maxPat,
	}
	if *progress {
		opts.OnProgress = func(ev mine.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "[%8.3fs] %s/%s restart=%d iter=%d patterns=%d merges=%d\n",
				ev.Elapsed.Seconds(), ev.Miner, ev.Stage, ev.Restart, ev.Iteration, ev.Patterns, ev.Merges)
		}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()

	res, err := engine.Mine(ctx, mine.SingleGraph(g), opts)
	deadlined := err != nil && errors.Is(err, context.DeadlineExceeded)
	if err != nil && !deadlined {
		fatal(err)
	}
	printPatterns(res, *asJSON, *asDOT)
	if *stats {
		printStats(res)
	}
	if deadlined {
		fmt.Fprintf(os.Stderr, "spidermine: timeout %v exceeded; printed the partial results committed before the deadline\n", *timeout)
		os.Exit(1)
	}
}

func printPatterns(res *mine.Result, asJSON, asDOT bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Patterns); err != nil {
			fatal(err)
		}
		return
	}
	for i, p := range res.Patterns {
		fmt.Printf("\n# pattern %d: |V|=%d |E|=%d diam=%d embeddings=%d\n",
			i+1, p.NV(), p.Size(), p.G.Diameter(), len(p.Emb))
		var err error
		if asDOT {
			err = p.G.WriteDOT(os.Stdout, fmt.Sprintf("pattern-%d", i+1))
		} else {
			err = p.G.WriteLG(os.Stdout, fmt.Sprintf("pattern-%d", i+1))
		}
		if err != nil {
			fatal(err)
		}
	}
}

func printStats(res *mine.Result) {
	s := res.Stats
	fmt.Printf("\nstats{miner=%s patterns=%d spiders=%d M=%d iters=%d merges=%d isoSkip=%d isoRun=%d elapsed=%v",
		res.Miner, len(res.Patterns), s.Spiders, s.SeedDraws, s.GrowIterations, s.Merges, s.IsoSkipped, s.IsoRun, s.Elapsed.Round(time.Millisecond))
	for _, st := range s.Stages {
		fmt.Printf(" t[%s]=%v", st.Name, st.Duration.Round(time.Millisecond))
	}
	fmt.Printf(" truncated=%q}\n", string(res.Truncated))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spidermine: %v\n", err)
	os.Exit(1)
}
