// Command spidermine mines the top-K largest frequent patterns of a graph
// in LG format (see internal/graph.ReadLG for the format).
//
// Usage:
//
//	spidermine -in graph.lg -k 10 -support 2 -dmax 6 -epsilon 0.1
//
// Each returned pattern is printed as an LG block plus a summary line; add
// -stats for mining statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/spidermine"
	"repro/internal/support"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph file in LG format (required; - for stdin)")
		k          = flag.Int("k", 10, "number of patterns K")
		sup        = flag.Int("support", 2, "support threshold σ")
		dmax       = flag.Int("dmax", 6, "pattern diameter bound Dmax")
		epsilon    = flag.Float64("epsilon", 0.1, "error bound ε (success probability 1-ε)")
		vmin       = flag.Int("vmin", 0, "minimum large-pattern vertex count Vmin (default |V|/10)")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "mining parallelism: 0/1 sequential, N goroutines, -1 all CPUs (mined patterns are identical across settings; -stats work counters may differ)")
		maxLeaves  = flag.Int("max-leaves", 0, "cap star-spider leaves in Stage I (0 = unlimited; bound this on scale-free graphs)")
		maxSpiders = flag.Int("max-spiders", 0, "cap Stage I spider enumeration (0 = unlimited; bound this on scale-free graphs)")
		measure    = flag.String("measure", "all", "reported support measure: all | disjoint | harmful")
		stats      = flag.Bool("stats", false, "print mining statistics")
		asDOT      = flag.Bool("dot", false, "emit patterns as Graphviz DOT instead of LG")
		asJSON     = flag.Bool("json", false, "emit patterns as a JSON array")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spidermine: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	var (
		g    *graph.Graph
		name string
		err  error
	)
	if *in == "-" {
		g, name, err = graph.ReadLG(os.Stdin)
	} else {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		g, name, err = graph.ReadLG(f)
		f.Close()
	}
	if err != nil {
		fatal(err)
	}
	if name == "" {
		name = *in
	}
	fmt.Printf("mining %s: %v\n", name, g)

	var m support.Measure
	switch *measure {
	case "all":
		m = support.CountAll
	case "disjoint":
		m = support.EdgeDisjoint
	case "harmful":
		m = support.HarmfulOverlap
	default:
		fatal(fmt.Errorf("unknown -measure %q", *measure))
	}
	res := spidermine.Mine(g, spidermine.Config{
		MinSupport:       *sup,
		K:                *k,
		Dmax:             *dmax,
		Epsilon:          *epsilon,
		Vmin:             *vmin,
		Seed:             *seed,
		Measure:          m,
		Workers:          *workers,
		MaxLeavesPerStar: *maxLeaves,
		MaxSpiders:       *maxSpiders,
	})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Patterns); err != nil {
			fatal(err)
		}
	} else {
		for i, p := range res.Patterns {
			fmt.Printf("\n# pattern %d: |V|=%d |E|=%d diam=%d embeddings=%d %s-support=%d\n",
				i+1, p.NV(), p.Size(), p.G.Diameter(), len(p.Emb), m, support.OfPattern(p, m))
			var err error
			if *asDOT {
				err = p.G.WriteDOT(os.Stdout, fmt.Sprintf("pattern-%d", i+1))
			} else {
				err = p.G.WriteLG(os.Stdout, fmt.Sprintf("pattern-%d", i+1))
			}
			if err != nil {
				fatal(err)
			}
		}
	}
	if *stats {
		fmt.Printf("\n%v\n", res.Stats)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spidermine: %v\n", err)
	os.Exit(1)
}
