// Command spiderbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spiderbench -experiment fig4          # one experiment
//	spiderbench -all -quick               # full suite, shrunken workloads
//	spiderbench -list                     # available experiment ids
//
// Each experiment prints an aligned table whose rows mirror the data the
// paper plots; the accompanying note records the expected shape.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID      = flag.String("experiment", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast pass")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		workers    = flag.Int("workers", 0, "mining parallelism: 0/1 sequential, N goroutines, -1 all CPUs (mined patterns are identical across settings; stats columns may differ)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole invocation; exceeding it renders partial tables and exits non-zero (0 = no limit)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		verify     = flag.Bool("verify", false, "check every paper claim against regenerated artifacts")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		// Written at exit so the profile covers the whole run; GC first so
		// the heap profile reflects live retention, not transient garbage.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spiderbench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}
	params := experiments.Params{Seed: *seed, Quick: *quick, Workers: *workers}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()
	if *verify {
		lines, failures := experiments.VerifyAll(params)
		for _, l := range lines {
			fmt.Println(l)
		}
		if failures > 0 {
			fmt.Printf("\n%d claim(s) failed\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nall claims hold")
		return
	}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if id == "fig12" || id == "fig17" {
				continue // aliases of fig11/fig13
			}
			runOne(ctx, id, params)
		}
	case *expID != "":
		runOne(ctx, *expID, params)
	default:
		fmt.Fprintln(os.Stderr, "spiderbench: need -experiment <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(ctx context.Context, id string, params experiments.Params) {
	t0 := time.Now()
	rep, err := experiments.RunContext(ctx, id, params)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "spiderbench: timeout exceeded before %s could run\n", id)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "spiderbench: %v\n", err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "spiderbench: timeout exceeded; tables above may be partial\n")
		os.Exit(1)
	}
}
