// Command spiderbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spiderbench -experiment fig4          # one experiment
//	spiderbench -all -quick               # full suite, shrunken workloads
//	spiderbench -list                     # available experiment ids
//
// Each experiment prints an aligned table whose rows mirror the data the
// paper plots; the accompanying note records the expected shape.
//
// Host-file mode benchmarks out-of-core mining against a concrete file
// instead of a generated workload: open cost, Stage I star mining time,
// and heap growth, with -mmap an SPC1 image is mapped (no decode, no
// heap copy of the adjacency) versus the default decode-to-RAM path:
//
//	gengraph -kind ba -n 125000 -attach 8 -format spc1 -o ba1m.spc1
//	spiderbench -host ba1m.spc1 -mmap
//	spiderbench -host ba1m.lg             # RAM twin for comparison
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/spider"
)

func main() {
	var (
		expID      = flag.String("experiment", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast pass")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		workers    = flag.Int("workers", 0, "mining parallelism: 0/1 sequential, N goroutines, -1 all CPUs (mined patterns are identical across settings; stats columns may differ)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole invocation; exceeding it renders partial tables and exits non-zero (0 = no limit)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		verify     = flag.Bool("verify", false, "check every paper claim against regenerated artifacts")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this file (go tool pprof)")
		hostPath   = flag.String("host", "", "host-file mode: benchmark open + Stage I over this graph file (LG text, or an SPC1 image with -mmap) instead of running experiments")
		useMmap    = flag.Bool("mmap", false, "with -host: the file is an SPC1 image; mmap it instead of decoding")
		minSup     = flag.Int("support", 2, "with -host: Stage I support threshold")
		maxLeaves  = flag.Int("max-leaves", 4, "with -host: cap star-spider leaves (0 = unlimited; Stage I is combinatorial in hub degree on scale-free hosts, see Fig. 17)")
		maxSpiders = flag.Int("max-spiders", 0, "with -host: abort Stage I past this many frequent spiders (0 = unlimited)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		// Written at exit so the profile covers the whole run; GC first so
		// the heap profile reflects live retention, not transient garbage.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spiderbench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}
	if *hostPath != "" {
		if err := benchHost(*hostPath, *useMmap, spider.Options{
			MinSupport: *minSup, MaxLeaves: *maxLeaves, MaxSpiders: *maxSpiders, Workers: *workers,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "spiderbench: -host: %v\n", err)
			os.Exit(1)
		}
		return
	}
	params := experiments.Params{Seed: *seed, Quick: *quick, Workers: *workers}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()
	if *verify {
		lines, failures := experiments.VerifyAll(params)
		for _, l := range lines {
			fmt.Println(l)
		}
		if failures > 0 {
			fmt.Printf("\n%d claim(s) failed\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nall claims hold")
		return
	}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if id == "fig12" || id == "fig17" {
				continue // aliases of fig11/fig13
			}
			runOne(ctx, id, params)
		}
	case *expID != "":
		runOne(ctx, *expID, params)
	default:
		fmt.Fprintln(os.Stderr, "spiderbench: need -experiment <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
}

// benchHost is the out-of-core host benchmark: open the file (mmap'd
// SPC1 image or decoded LG), report open cost and host shape, run
// Stage I star mining, and report the heap the run grew by — the
// number the mmap path keeps flat no matter how big the host is.
func benchHost(path string, useMmap bool, opt spider.Options) error {
	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	var g *graph.Graph
	t0 := time.Now()
	if useMmap {
		m, err := graph.OpenMapped(path)
		if err != nil {
			return err
		}
		defer m.Close()
		m.Advise(graph.AdviceRandom) // Stage I reads adjacency in matcher order
		g = m.Graph()
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var name string
		g, name, err = graph.ReadLG(f)
		f.Close()
		if err != nil {
			return err
		}
		_ = name
	}
	openDur := time.Since(t0)
	fmt.Printf("host        %s (mmap=%v)\n", path, useMmap)
	fmt.Printf("open        %v\n", openDur)
	fmt.Printf("vertices    %d\n", g.N())
	fmt.Printf("edges       %d\n", g.M())
	fmt.Printf("max_degree  %d\n", g.MaxDegree())

	t1 := time.Now()
	stars := spider.MineStars(g, opt)
	mineDur := time.Since(t1)

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	heapGrowth := int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)

	fmt.Printf("stage1      %v (%d frequent stars, support>=%d, max_leaves=%d)\n", mineDur, len(stars), opt.MinSupport, opt.MaxLeaves)
	fmt.Printf("heap_growth %.1f MiB\n", float64(heapGrowth)/(1<<20))
	return nil
}

func runOne(ctx context.Context, id string, params experiments.Params) {
	t0 := time.Now()
	rep, err := experiments.RunContext(ctx, id, params)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "spiderbench: timeout exceeded before %s could run\n", id)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "spiderbench: %v\n", err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "spiderbench: timeout exceeded; tables above may be partial\n")
		os.Exit(1)
	}
}
