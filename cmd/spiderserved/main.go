// Command spiderserved is the long-running mining service: an HTTP/JSON
// API over the mine façade, backed by a content-fingerprinted graph
// store, a bounded FIFO job scheduler, and an LRU result cache (see
// internal/serve for the endpoint reference).
//
// Usage:
//
//	spiderserved -addr :8471 -runners 4 -queue 64 -cache 256
//	spiderserved -data-dir /var/lib/spiderserved   # durable, restartable
//
// Lifecycle:
//
//	curl -X POST --data-binary @host.lg localhost:8471/graphs
//	curl -X POST -d '{"graph":"<id>","miner":"spidermine","options":{"min_support":2,"k":10}}' localhost:8471/jobs
//	curl localhost:8471/jobs/j1/events        # NDJSON progress stream
//	curl localhost:8471/jobs/j1/result        # terminal result
//	curl -X DELETE localhost:8471/jobs/j1     # cancel -> committed partials
//
// On SIGTERM/SIGINT the daemon drains gracefully: HTTP intake stops,
// queued and running jobs finish, and after -drain the remaining runs
// are cancelled into their deterministic committed partials before the
// process exits.
//
// Failure semantics (see README §Failure semantics): a panicking miner
// is contained at the job boundary — the job fails with the stack, the
// daemon keeps serving; transient-classed job failures are retried up to
// -max-retries times with exponential backoff from -retry-base; full
// queues and draining reject with 503 + Retry-After; GET /healthz is
// liveness, GET /readyz readiness. Failpoints can be armed for chaos
// drills via the SPIDERSERVED_FAULTS environment variable (the
// internal/fault DSL, e.g. 'serve/cache/put=error(disk full),3').
//
// Persistence (see README §Persistence): with -data-dir the daemon
// opens a durable storage engine (internal/store) in that directory —
// uploaded graphs, cacheable mining results, and terminal job records
// survive restarts, recovered (with torn-tail repair) before the
// listener opens. Without -data-dir everything is in-memory, exactly as
// before the flag existed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8471", "listen address")
		runners  = flag.Int("runners", runtime.NumCPU(), "concurrent mining runners")
		queueCap = flag.Int("queue", 64, "job queue capacity (full queue returns 503)")
		cacheCap = flag.Int("cache", 256, "result cache capacity in entries (0 disables)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are cancelled into committed partials")
		retries  = flag.Int("max-retries", 2, "max re-runs of a job after a transient failure (0 disables retries)")
		retryB   = flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff; doubles per attempt (jittered, capped at 5s)")
		debug    = flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
		dataDir  = flag.String("data-dir", "", "directory for the durable storage engine; empty serves in-memory only")
		imgEdges = flag.Int("image-edges", 0, "edge count past which uploaded hosts also persist an SPC1 image (mmap'd back on restart); 0 = default (1M), negative disables")
	)
	flag.Parse()

	if dsl := os.Getenv("SPIDERSERVED_FAULTS"); dsl != "" {
		if err := fault.ArmAll(dsl); err != nil {
			fmt.Fprintf(os.Stderr, "spiderserved: SPIDERSERVED_FAULTS: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "spiderserved: CHAOS MODE — failpoints armed from SPIDERSERVED_FAULTS: %s\n", dsl)
	}

	// The profiler gets its own listener so pprof is never exposed on the
	// service port: the API address can face a network, the debug address
	// stays on loopback (or off, the default).
	if *debug != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderserved: -debug-addr: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "spiderserved: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				fmt.Fprintf(os.Stderr, "spiderserved: pprof server: %v\n", err)
			}
		}()
	}

	cfg := serve.Config{
		Runners: *runners, QueueCap: *queueCap, CacheCap: *cacheCap,
		MaxRetries: *retries, RetryBase: *retryB,
		ImageEdgeThreshold: *imgEdges,
	}
	var backend *store.Disk
	if *dataDir != "" {
		var err error
		backend, err = store.OpenDisk(*dataDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiderserved: -data-dir: %v\n", err)
			return 1
		}
		cfg.Backend = backend
	}
	srv, recovered, err := serve.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spiderserved: recovery: %v\n", err)
		return 1
	}
	if backend != nil {
		st := backend.Stats()
		fmt.Fprintf(os.Stderr, "spiderserved: data-dir %s: recovered %d graphs (%d mmap'd), %d job records (log truncations: %d)\n",
			*dataDir, recovered.Graphs, recovered.Mapped, recovered.Jobs, st.RecoveryTruncations)
	}
	httpSrv := &http.Server{Handler: srv}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spiderserved: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "spiderserved: listening on %s (runners=%d queue=%d cache=%d)\n",
		ln.Addr(), *runners, *queueCap, *cacheCap)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "spiderserved: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "spiderserved: draining (budget %v)\n", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the scheduler first: jobs finish (or are cancelled into
	// committed partials at the deadline), which also unblocks event
	// streams, so the HTTP shutdown after it completes promptly.
	srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "spiderserved: http shutdown: %v\n", err)
	}
	httpSrv.Close()
	// Close the storage engine after the drain: every terminal job has
	// journaled by now, and Close writes the sidecar index that makes the
	// next start's recovery O(1) instead of a full log scan.
	// Unmap recovered graph images before the backend goes away; the
	// drain above guarantees no job still reads them.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "spiderserved: unmap: %v\n", err)
	}
	if backend != nil {
		if err := backend.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spiderserved: store close: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "spiderserved: drained")
	return 0
}
