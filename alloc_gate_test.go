package repro_test

// Allocation-budget gates for the mining pipeline. These pin the pooled
// Stage I tables and the de-allocated grow/merge loop at the whole-run
// level: the budgets are several times the steady-state numbers recorded
// in BENCH_PR8.json (Stage I ~100 allocs/op, full GID-1 pipeline ~13k),
// but far below the pre-pooling baselines (24,857 and 127,269 in
// BENCH_PR5.json), so reintroducing per-run map tables or per-iteration
// churn trips them immediately while normal drift does not. Skipped under
// -short; CI runs them explicitly in the bench smoke job.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/spider"
	"repro/internal/spidermine"
)

const (
	stageIAllocBudget   = 2500  // pre-pooling: 24,857 allocs/op
	pipelineAllocBudget = 40000 // pre-pooling: 127,269 allocs/op
)

func TestStageIAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate runs in the bench smoke job")
	}
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	// Warm the generator caches; MineStars itself is cold each run — the
	// budget covers a throwaway StarMiner building every table from nil.
	allocs := testing.AllocsPerRun(5, func() {
		if stars := spider.MineStars(g, spider.Options{MinSupport: 2}); len(stars) == 0 {
			t.Fatal("no spiders")
		}
	})
	if allocs > stageIAllocBudget {
		t.Errorf("Stage I mining allocates %.0f/op, budget %d", allocs, stageIAllocBudget)
	}
}

func TestFullPipelineAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate runs in the bench smoke job")
	}
	g, _ := gen.Synthetic(gen.GIDConfig(1, 1))
	cfg := spidermine.Config{MinSupport: 2, K: 10, Dmax: 4, Seed: 1}
	allocs := testing.AllocsPerRun(3, func() {
		if res := spidermine.Mine(g, cfg); len(res.Patterns) == 0 {
			t.Fatal("no patterns")
		}
	})
	if allocs > pipelineAllocBudget {
		t.Errorf("full GID-1 pipeline allocates %.0f/op, budget %d", allocs, pipelineAllocBudget)
	}
}
