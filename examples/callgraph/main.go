// Software-backbone mining (the paper's Jeti scenario, §C.2): mine large
// call-graph patterns labeled by declaring class through the public mine
// façade; repeated large motifs expose library-usage backbones and
// cohesion/coupling smells.
//
// Run with: go run ./examples/callgraph
package main

import (
	"context"
	"fmt"
	"sort"

	"repro/mine"
)

func main() {
	g, motifs := mine.CallGraphLike(mine.CallGraphConfig{Seed: 11})
	fmt.Printf("call graph: %v (max degree %d, avg %.2f)\n", g, g.MaxDegree(), g.AvgDegree())
	fmt.Printf("planted library-usage motifs: %d\n\n", len(motifs))

	miner, err := mine.Get("spidermine")
	if err != nil {
		panic(err)
	}
	res, err := miner.Mine(context.Background(), mine.SingleGraph(g), mine.Options{
		MinSupport: 10, K: 10, Dmax: 8, Epsilon: 0.1, Seed: 11,
		Measure: mine.MeasureHarmful,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("SpiderMine top call patterns (σ=10):\n")
	for i, p := range res.Patterns {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d: %d methods, %d call edges, %d occurrences, classes: %s\n",
			i+1, p.NV(), p.Size(), len(p.Emb), classList(p.G))
	}
	if len(res.Patterns) > 0 {
		p := res.Patterns[0]
		fmt.Printf("\ncohesion report for the top pattern (methods per class):\n")
		for _, c := range classCounts(p.G) {
			fmt.Printf("  class %d: %d methods\n", c.label, c.n)
		}
		fmt.Println("a pattern spanning few classes with many internal calls = high cohesion;")
		fmt.Println("many classes with single methods each = coupling smell (cf. Fig. 24 discussion).")
	}
}

type classCount struct {
	label mine.Label
	n     int
}

func classCounts(g *mine.Graph) []classCount {
	m := map[mine.Label]int{}
	for v := 0; v < g.N(); v++ {
		m[g.Label(mine.V(v))]++
	}
	out := make([]classCount, 0, len(m))
	for l, n := range m {
		out = append(out, classCount{l, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n > out[j].n })
	return out
}

func classList(g *mine.Graph) string {
	cs := classCounts(g)
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d(x%d)", c.label, c.n)
		if i >= 4 {
			s += ", ..."
			break
		}
	}
	return s
}
