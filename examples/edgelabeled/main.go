// Edge-labeled mining (paper §3: "Our method can also be applied to
// graphs with edge labels"): a chemistry-flavored demo where bond types
// (single/double) are edge labels. Each labeled edge is subdivided by a
// midpoint vertex carrying the bond label; SpiderMine runs on the encoded
// graph through the public mine façade; results decode back to
// edge-labeled patterns.
//
// Run with: go run ./examples/edgelabeled
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/mine"
)

// atom labels
const (
	C mine.Label = 0 // carbon
	O mine.Label = 1 // oxygen
	N mine.Label = 2 // nitrogen
)

// bond labels
const (
	single mine.Label = 0
	double mine.Label = 1
)

func main() {
	var (
		labels  []mine.Label
		edges   []mine.Edge
		elabels []mine.Label
	)
	addAtom := func(l mine.Label) mine.V {
		labels = append(labels, l)
		return mine.V(len(labels) - 1)
	}
	addBond := func(u, w mine.V, bond mine.Label) {
		edges = append(edges, mine.Edge{U: u, W: w})
		elabels = append(elabels, bond)
	}
	// Plant 3 copies of a carboxyl-like motif: C(=O)-O with an N attached
	// by a single bond.
	for i := 0; i < 3; i++ {
		c := addAtom(C)
		o1 := addAtom(O)
		o2 := addAtom(O)
		n := addAtom(N)
		addBond(c, o1, double)
		addBond(c, o2, single)
		addBond(c, n, single)
	}
	// Random molecular noise.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		a := addAtom(mine.Label(rng.Intn(3)))
		b := addAtom(mine.Label(rng.Intn(3)))
		addBond(a, b, mine.Label(rng.Intn(2)))
	}
	enc, err := mine.EncodeEdgeLabels(labels, edges, elabels, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("encoded molecule graph: %v (distances doubled by subdivision)\n\n", enc)

	miner, err := mine.Get("spidermine")
	if err != nil {
		panic(err)
	}
	// Dmax doubles under the encoding: the motif has diameter 2, so 4.
	res, err := miner.Mine(context.Background(), mine.SingleGraph(enc), mine.Options{
		MinSupport: 3, K: 3, Dmax: 4, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	bondName := map[mine.Label]string{single: "-", double: "="}
	atomName := map[mine.Label]string{C: "C", O: "O", N: "N"}
	for i, p := range res.Patterns {
		vl, de, dangling, err := mine.DecodeEdgeLabels(p.G, 0)
		if err != nil {
			fmt.Printf("pattern %d does not decode (%v), skipping\n", i+1, err)
			continue
		}
		fmt.Printf("pattern %d (%d occurrences, %d dangling half-bonds):\n", i+1, len(p.Emb), dangling)
		for _, e := range de {
			fmt.Printf("  %s%d %s %s%d\n",
				atomName[vl[e.U]], e.U, bondName[e.Label], atomName[vl[e.W]], e.W)
		}
	}
	fmt.Println("\nthe carboxyl-like motif (C=O, C-O, C-N) is recovered with its bond types.")
}
