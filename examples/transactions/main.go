// Graph-transaction mining (§5.1.2): run SpiderMine's transaction
// adaptation against ORIGAMI — both through the public mine façade, on
// the same Host — on a database of graphs sharing large injected
// patterns, and watch ORIGAMI lose the large patterns once many small
// patterns are added: the Fig. 14 vs Fig. 15 contrast.
//
// Run with: go run ./examples/transactions
package main

import (
	"context"
	"fmt"

	"repro/mine"
)

func main() {
	ctx := context.Background()
	for _, smallN := range []int{0, 100} {
		db, _ := mine.SyntheticTx(mine.SyntheticTxConfig{
			NumGraphs: 10,
			N:         200,
			AvgDeg:    5,
			NumLabels: 65,
			Large:     mine.InjectSpec{NV: 30, Count: 5, Support: 1},
			Small:     mine.InjectSpec{NV: 5, Count: smallN, Support: 1},
			Seed:      3,
		})
		fmt.Printf("=== database: 10 graphs, %d injected small patterns ===\n", smallN)

		host := mine.Transactions(db)
		for _, name := range []string{"spidermine", "origami"} {
			m, err := mine.Get(name)
			if err != nil {
				panic(err)
			}
			res, err := m.Mine(ctx, host, mine.Options{
				MinSupport: 5, K: 10, Dmax: 6, Seed: 3,
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-10s sizes: ", name)
			for _, p := range res.Patterns {
				fmt.Printf("%d ", p.NV())
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("expected: with 100 small patterns, ORIGAMI's walks get absorbed by small")
	fmt.Println("maximal patterns while SpiderMine still returns the large ones.")
}
