// Graph-transaction mining (§5.1.2): run SpiderMine's transaction
// adaptation against ORIGAMI on a database of graphs sharing large
// injected patterns, and watch ORIGAMI lose the large patterns once many
// small patterns are added — the Fig. 14 vs Fig. 15 contrast.
//
// Run with: go run ./examples/transactions
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/miner/origami"
	"repro/internal/spidermine"
	"repro/internal/txdb"
)

func main() {
	for _, smallN := range []int{0, 100} {
		db, _ := txdb.SyntheticTx(txdb.SyntheticTxConfig{
			NumGraphs: 10,
			N:         200,
			AvgDeg:    5,
			NumLabels: 65,
			Large:     gen.InjectSpec{NV: 30, Count: 5, Support: 1},
			Small:     gen.InjectSpec{NV: 5, Count: smallN, Support: 1},
			Seed:      3,
		})
		fmt.Printf("=== database: 10 graphs, %d injected small patterns ===\n", smallN)

		sm := spidermine.MineTransactions(db, spidermine.Config{
			MinSupport: 5, K: 10, Dmax: 6, Seed: 3,
		})
		fmt.Printf("SpiderMine sizes: ")
		for _, p := range sm.Patterns {
			fmt.Printf("%d ", p.NV())
		}
		fmt.Println()

		or := origami.Mine(db, origami.Config{MinSupport: 5, Samples: 40, Seed: 3})
		fmt.Printf("ORIGAMI sizes:    ")
		for _, r := range or {
			fmt.Printf("%d ", r.P.NV())
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("expected: with 100 small patterns, ORIGAMI's walks get absorbed by small")
	fmt.Println("maximal patterns while SpiderMine still returns the large ones.")
}
